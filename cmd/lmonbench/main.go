// Command lmonbench regenerates the paper's evaluation tables and figures
// on the simulated cluster. With no flags it runs everything.
//
// Usage:
//
//	lmonbench [-fig 3|5|6] [-table 1] [-ablations] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"launchmon/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (3, 5 or 6)")
	table := flag.Int("table", 0, "regenerate one table (1)")
	ablations := flag.Bool("ablations", false, "run the ablation benches")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	if !*ablations && *fig == 0 && *table == 0 {
		*all = true
	}
	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "lmonbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *all || *fig == 3 {
		run("figure 3", func() error {
			rows, err := bench.Figure3()
			if err != nil {
				return err
			}
			bench.PrintFigure3(os.Stdout, rows)
			return nil
		})
	}
	if *all || *fig == 5 {
		run("figure 5", func() error {
			rows, err := bench.Figure5()
			if err != nil {
				return err
			}
			bench.PrintFigure5(os.Stdout, rows)
			return nil
		})
	}
	if *all || *fig == 6 {
		run("figure 6", func() error {
			rows, err := bench.Figure6()
			if err != nil {
				return err
			}
			bench.PrintFigure6(os.Stdout, rows)
			return nil
		})
	}
	if *all || *table == 1 {
		run("table 1", func() error {
			rows, err := bench.Table1()
			if err != nil {
				return err
			}
			bench.PrintTable1(os.Stdout, rows)
			return nil
		})
	}
	if *all || *ablations {
		run("ablations", func() error {
			bgl, err := bench.BGLAblation()
			if err != nil {
				return err
			}
			fan, err := bench.AblationFanout()
			if err != nil {
				return err
			}
			pig, err := bench.AblationPiggyback()
			if err != nil {
				return err
			}
			dbg, err := bench.AblationDebugEvents()
			if err != nil {
				return err
			}
			bench.PrintAblations(os.Stdout, bgl, fan, pig, dbg)
			pt, err := bench.AblationProctab()
			if err != nil {
				return err
			}
			fmt.Println()
			bench.PrintProctabAblation(os.Stdout, pt)
			jt, err := bench.AblationJobsnapTree()
			if err != nil {
				return err
			}
			fmt.Println()
			bench.PrintJobsnapTree(os.Stdout, jt)
			cc, err := bench.ConcurrentSessions(bench.ConcurrentSessionOpts{}, bench.ConcurrentScales)
			if err != nil {
				return err
			}
			fmt.Println()
			bench.PrintConcurrent(os.Stdout, cc)
			return nil
		})
	}
}

// Command lmonbench regenerates the paper's evaluation tables and figures
// on the simulated cluster. With no flags it runs everything.
//
// Usage:
//
//	lmonbench [-fig 3|5|6] [-table 1] [-ablations] [-failure] [-collective] [-contention] [-launch] [-million] [-mem] [-mw] [-obs] [-trace FILE] [-maxk N] [-smoke] [-json] [-all]
//
// With -json, each experiment additionally writes its rows as
// BENCH_<name>.json in the working directory (machine-readable results
// for CI and regression tracking). -smoke runs a fast reduced-scale
// subset that exercises the bench rig end to end. -maxk caps the daemon
// counts of the -failure/-collective/-contention/-launch/-mw sweeps (every simulated
// daemon holds the full RPDTAB, so the 16384-point needs tens of GB of
// host memory; CI runs -launch and -mw with -maxk 1024).
//
// -obs adds the observability rider to the -launch sweep (a second
// obs-on pass per row, checked against the wire-byte and drift
// invariants). -trace FILE runs one obs-on launch at K=1024 (capped by
// -maxk) and writes its Chrome/Perfetto trace-event JSON to FILE plus
// the harvested metrics snapshot to FILE.metrics.json; load the trace in
// ui.perfetto.dev or chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"launchmon/internal/bench"
)

var writeJSON bool

// emit optionally writes rows as BENCH_<name>.json.
func emit(name string, rows any) error {
	if !writeJSON {
		return nil
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (3, 5 or 6)")
	table := flag.Int("table", 0, "regenerate one table (1)")
	ablations := flag.Bool("ablations", false, "run the ablation benches")
	failure := flag.Bool("failure", false, "run the failure-detection ablation (K up to 16384)")
	collective := flag.Bool("collective", false, "run the collective tool-data-plane ablation (flat vs tree, K up to 16384)")
	contention := flag.Bool("contention", false, "run the collective contention ablation (lockstep serialization vs concurrent tagged streams, K up to 16384)")
	launch := flag.Bool("launch", false, "run the launch-pipeline ablation (store-and-forward vs cut-through seed, full vs sliced retention, K up to 16384)")
	million := flag.Bool("million", false, "run the million-daemon launch sweep (rank-sliced cut-through on a lean rig, K=2^20)")
	mem := flag.Bool("mem", false, "with -launch/-million/-smoke, also print the per-role peak RPDTAB memory table")
	mwpipe := flag.Bool("mw", false, "run the middleware launch-pipeline ablation (store-and-forward vs cut-through MW seed, K up to 16384)")
	obsRider := flag.Bool("obs", false, "with -launch/-smoke, add the observability rider (obs-on second pass + invariant checks)")
	tracePath := flag.String("trace", "", "run one obs-on launch at K=1024 (capped by -maxk) and write its Perfetto trace JSON to this file (+ .metrics.json)")
	maxk := flag.Int("maxk", 0, "cap the daemon counts of the failure/collective/contention/launch/mw sweeps (0 = full scale)")
	smoke := flag.Bool("smoke", false, "run a fast reduced-scale subset (CI)")
	all := flag.Bool("all", false, "run every experiment")
	flag.BoolVar(&writeJSON, "json", false, "also write results as BENCH_<name>.json")
	flag.Parse()

	if !*ablations && !*failure && !*collective && !*contention && !*launch && !*million && !*mwpipe && !*smoke && *fig == 0 && *table == 0 && *tracePath == "" {
		*all = true
	}
	// capScales filters a sweep's daemon counts under -maxk.
	capScales := func(scales []int) []int {
		if *maxk <= 0 {
			return scales
		}
		out := make([]int, 0, len(scales))
		for _, k := range scales {
			if k <= *maxk {
				out = append(out, k)
			}
		}
		return out
	}

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "lmonbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *tracePath != "" {
		run("trace export", func() error {
			k := 1024
			if *maxk > 0 && *maxk < k {
				k = *maxk
			}
			return runTrace(*tracePath, k)
		})
	}

	if *smoke {
		run("smoke", func() error { return runSmoke(*mem, *obsRider) })
		return
	}

	if *all || *fig == 3 {
		run("figure 3", func() error {
			rows, err := bench.Figure3()
			if err != nil {
				return err
			}
			bench.PrintFigure3(os.Stdout, rows)
			return emit("figure3", rows)
		})
	}
	if *all || *fig == 5 {
		run("figure 5", func() error {
			rows, err := bench.Figure5()
			if err != nil {
				return err
			}
			bench.PrintFigure5(os.Stdout, rows)
			return emit("figure5", rows)
		})
	}
	if *all || *fig == 6 {
		run("figure 6", func() error {
			rows, err := bench.Figure6()
			if err != nil {
				return err
			}
			bench.PrintFigure6(os.Stdout, rows)
			return emit("figure6", rows)
		})
	}
	if *all || *table == 1 {
		run("table 1", func() error {
			rows, err := bench.Table1()
			if err != nil {
				return err
			}
			bench.PrintTable1(os.Stdout, rows)
			return emit("table1", rows)
		})
	}
	if *all || *ablations {
		run("ablations", func() error {
			bgl, err := bench.BGLAblation()
			if err != nil {
				return err
			}
			fan, err := bench.AblationFanout()
			if err != nil {
				return err
			}
			pig, err := bench.AblationPiggyback()
			if err != nil {
				return err
			}
			dbg, err := bench.AblationDebugEvents()
			if err != nil {
				return err
			}
			bench.PrintAblations(os.Stdout, bgl, fan, pig, dbg)
			pt, err := bench.AblationProctab()
			if err != nil {
				return err
			}
			fmt.Println()
			bench.PrintProctabAblation(os.Stdout, pt)
			jt, err := bench.AblationJobsnapTree()
			if err != nil {
				return err
			}
			fmt.Println()
			bench.PrintJobsnapTree(os.Stdout, jt)
			cc, err := bench.ConcurrentSessions(bench.ConcurrentSessionOpts{}, bench.ConcurrentScales)
			if err != nil {
				return err
			}
			fmt.Println()
			bench.PrintConcurrent(os.Stdout, cc)
			if err := emit("ablation_bgl", bgl); err != nil {
				return err
			}
			if err := emit("ablation_fanout", fan); err != nil {
				return err
			}
			if err := emit("ablation_piggyback", pig); err != nil {
				return err
			}
			if err := emit("ablation_debug_events", dbg); err != nil {
				return err
			}
			if err := emit("ablation_proctab", pt); err != nil {
				return err
			}
			if err := emit("ablation_jobsnap_tree", jt); err != nil {
				return err
			}
			return emit("ablation_concurrent", cc)
		})
	}
	if *all || *collective {
		run("collective", func() error {
			rows, err := bench.CollectiveAblation(bench.CollectiveOpts{}, capScales(bench.CollectiveScales))
			if err != nil {
				return err
			}
			bench.PrintCollective(os.Stdout, rows)
			return emit("collective", rows)
		})
	}
	if *all || *contention {
		run("contention", func() error {
			rows, err := bench.ContentionAblation(bench.ContentionOpts{}, capScales(bench.ContentionScales))
			if err != nil {
				return err
			}
			bench.PrintContention(os.Stdout, rows)
			return emit("contention", rows)
		})
	}
	if *all || *launch {
		run("launch pipeline", func() error {
			rows, err := bench.LaunchPipeline(bench.LaunchPipeOpts{Obs: *obsRider}, capScales(bench.LaunchScales))
			if err != nil {
				return err
			}
			bench.PrintLaunchPipeline(os.Stdout, rows)
			if *mem {
				fmt.Println()
				bench.PrintLaunchMem(os.Stdout, rows)
			}
			if *obsRider {
				fmt.Println()
				bench.PrintLaunchObs(os.Stdout, rows)
				if err := bench.CheckObsInvariants(rows, 0); err != nil {
					return err
				}
			}
			return emit("launchpipe", rows)
		})
	}
	if *million {
		run("million launch", func() error {
			// The million sweep's peak heap is ~everything live at once (all
			// K daemons coexist until the seed drains), so the default GOGC
			// headroom nearly doubles RSS for no reclaim. Trade GC CPU for
			// the 16 GB CI budget; GOGC set in the environment wins.
			if os.Getenv("GOGC") == "" {
				defer debug.SetGCPercent(debug.SetGCPercent(30))
			}
			// A soft memory limit backstops the GOGC slack: near the
			// limit the GC collects proportionally harder, trading CPU
			// for the heap headroom GOGC=30 would otherwise keep. 13 GiB
			// leaves the full-scale run's fixed costs (a million 4 KB
			// goroutine stacks plus their descriptors, plus ~7 GB of live
			// fabric state) inside the 16 GB CI budget with margin; a
			// GOMEMLIMIT set in the environment wins. Note the limit
			// bounds what the runtime holds, not the process RSS a
			// memory-gated runner sees: freed pages returned with
			// MADV_FREE stay resident until the host is under pressure,
			// so CI additionally runs this step with
			// GODEBUG=madvdontneed=1 to make VmHWM track the limit.
			if os.Getenv("GOMEMLIMIT") == "" {
				defer debug.SetMemoryLimit(debug.SetMemoryLimit(13 << 30))
			}
			// -maxk lowers the sweep point instead of filtering it away:
			// the sweep has exactly one scale, and a reduced run should
			// still produce a row.
			scales := bench.MillionScales
			if *maxk > 0 && *maxk < scales[len(scales)-1] {
				scales = []int{*maxk}
			}
			rows, err := bench.LaunchMillion(bench.MillionOpts{}, scales)
			if err != nil {
				return err
			}
			bench.PrintLaunchPipeline(os.Stdout, rows)
			if *mem {
				fmt.Println()
				bench.PrintLaunchMem(os.Stdout, rows)
			}
			fmt.Println()
			bench.PrintMillionCost(os.Stdout, rows)
			return emit("launch_million", rows)
		})
	}
	if *all || *mwpipe {
		run("mw pipeline", func() error {
			rows, err := bench.MWPipeline(bench.MWPipeOpts{}, capScales(bench.MWScales))
			if err != nil {
				return err
			}
			bench.PrintMWPipeline(os.Stdout, rows)
			return emit("mwpipe", rows)
		})
	}
	if *all || *failure {
		run("failure detection", func() error {
			rows, err := bench.FailureDetection(bench.FailureOpts{Silent: true}, capScales(bench.FailureScales))
			if err != nil {
				return err
			}
			bench.PrintFailure(os.Stdout, rows)
			if err := emit("failure_detection", rows); err != nil {
				return err
			}
			overhead, err := bench.HeartbeatOverhead(256, bench.OverheadPeriods, 30*time.Second)
			if err != nil {
				return err
			}
			fmt.Println()
			bench.PrintOverhead(os.Stdout, overhead)
			return emit("heartbeat_overhead", overhead)
		})
	}
}

// runTrace exports one obs-on launch as a Perfetto trace (verified to
// reproduce the monotone launch mark chains before it is written) plus
// the session's harvested metrics snapshot.
func runTrace(path string, k int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	res, err := bench.TraceLaunch(k, 0, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	metrics, err := json.MarshalIndent(res.Metrics, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path+".metrics.json", append(metrics, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (K=%d, %d spans, %d instants, %d B) and %s.metrics.json\n",
		path, res.Daemons, res.Spans, res.Instants, res.TraceBytes, path)
	return nil
}

// runSmoke exercises the bench rig end to end at reduced scale: a
// concurrent-session sweep and a failure-detection sweep small enough for
// a CI step, so bench-rig regressions fail the build.
func runSmoke(mem, obsRider bool) error {
	cc, err := bench.ConcurrentSessions(bench.ConcurrentSessionOpts{NodesEach: 4, TasksPerNode: 2}, []int{1, 4})
	if err != nil {
		return err
	}
	bench.PrintConcurrent(os.Stdout, cc)
	if err := emit("smoke_concurrent", cc); err != nil {
		return err
	}
	rows, err := bench.FailureDetection(bench.FailureOpts{
		Period: 100 * time.Millisecond, Fanout: 4, Silent: true,
	}, []int{8, 32})
	if err != nil {
		return err
	}
	fmt.Println()
	bench.PrintFailure(os.Stdout, rows)
	if err := emit("smoke_failure_detection", rows); err != nil {
		return err
	}
	overhead, err := bench.HeartbeatOverhead(8, []time.Duration{500 * time.Millisecond}, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Println()
	bench.PrintOverhead(os.Stdout, overhead)
	if err := emit("smoke_heartbeat_overhead", overhead); err != nil {
		return err
	}
	cr, err := bench.CollectiveAblation(bench.CollectiveOpts{PayloadB: 128, Fanout: 4}, []int{8, 32})
	if err != nil {
		return err
	}
	fmt.Println()
	bench.PrintCollective(os.Stdout, cr)
	if err := emit("smoke_collective", cr); err != nil {
		return err
	}
	ct, err := bench.ContentionAblation(bench.ContentionOpts{PayloadB: 128, Fanout: 4}, []int{8, 32})
	if err != nil {
		return err
	}
	fmt.Println()
	bench.PrintContention(os.Stdout, ct)
	if err := emit("smoke_contention", ct); err != nil {
		return err
	}
	lp, err := bench.LaunchPipeline(bench.LaunchPipeOpts{Fanout: 4, Obs: obsRider}, []int{8, 32})
	if err != nil {
		return err
	}
	fmt.Println()
	bench.PrintLaunchPipeline(os.Stdout, lp)
	if mem {
		fmt.Println()
		bench.PrintLaunchMem(os.Stdout, lp)
	}
	if obsRider {
		fmt.Println()
		bench.PrintLaunchObs(os.Stdout, lp)
		if err := bench.CheckObsInvariants(lp, 4); err != nil {
			return err
		}
	}
	if err := emit("smoke_launchpipe", lp); err != nil {
		return err
	}
	ml, err := bench.LaunchMillion(bench.MillionOpts{Fanout: 4}, []int{64})
	if err != nil {
		return err
	}
	fmt.Println()
	bench.PrintLaunchPipeline(os.Stdout, ml)
	fmt.Println()
	bench.PrintMillionCost(os.Stdout, ml)
	if err := emit("smoke_launch_million", ml); err != nil {
		return err
	}
	mp, err := bench.MWPipeline(bench.MWPipeOpts{
		JobNodes: 4, TasksPerNode: 4, Fanout: 4, ChunkBytes: 256,
	}, []int{8, 32})
	if err != nil {
		return err
	}
	fmt.Println()
	bench.PrintMWPipeline(os.Stdout, mp)
	return emit("smoke_mwpipe", mp)
}

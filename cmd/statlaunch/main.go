// Command statlaunch runs the STAT start-up comparison (paper §5.2) at
// one scale: it starts an MPI job on a simulated cluster, launches STAT's
// stack-sampling daemons first through LaunchMON and then through the
// ad hoc rsh path, reports both start-up times, and prints the process
// equivalence classes from one sampling wave.
//
// Usage:
//
//	statlaunch [-nodes N] [-tasks-per-node T] [-skip-rsh]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/rsh"
	"launchmon/internal/tbon"
	"launchmon/internal/tools/stat"
	"launchmon/internal/vtime"
)

func main() {
	nodes := flag.Int("nodes", 64, "compute nodes the target job uses")
	tpn := flag.Int("tasks-per-node", 8, "MPI tasks per node")
	skipRsh := flag.Bool("skip-rsh", false, "skip the slow rsh baseline")
	flag.Parse()

	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: *nodes})
	if err != nil {
		fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		fatal(err)
	}
	svc, err := rsh.Install(cl, rsh.Config{})
	if err != nil {
		fatal(err)
	}
	core.Setup(cl, mgr)
	stat.Install(cl, tbon.Config{})

	var runErr error
	sim.Go("boot", func() {
		if _, err := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "mpiapp", Nodes: *nodes, TasksPerNode: *tpn})
			if err != nil {
				runErr = err
				return
			}
			p.Sim().Sleep(10 * time.Second)

			inst, err := stat.LaunchWithLaunchMON(p, j.ID(), tbon.Config{})
			if err != nil {
				runErr = err
				return
			}
			fmt.Printf("LaunchMON launch+connect: %8.3fs (%d daemons)\n",
				inst.StartupTime.Seconds(), *nodes)
			tree, err := inst.Sample()
			if err != nil {
				runErr = err
				return
			}
			fmt.Printf("\nstack sample: %d tasks, %d equivalence classes\n",
				tree.Tasks(), len(tree.EquivalenceClasses()))
			for _, c := range tree.EquivalenceClasses() {
				fmt.Println(" ", c)
			}
			inst.Close()

			if *skipRsh {
				return
			}
			tab := j.(interface{ Proctab() proctab.Table }).Proctab()
			ranks := map[string][]int{}
			for _, d := range tab {
				ranks[d.Host] = append(ranks[d.Host], d.Rank)
			}
			nat, err := stat.LaunchWithRsh(p, svc, tab.Hosts(), ranks, tbon.Config{})
			if err != nil {
				fmt.Printf("\nMRNet(rsh) launch FAILED: %v\n", err)
				return
			}
			fmt.Printf("\nMRNet(rsh) launch+connect: %8.3fs (%.1fx slower)\n",
				nat.StartupTime.Seconds(),
				float64(nat.StartupTime)/float64(inst.StartupTime))
			nat.Close()
		}}); err != nil {
			runErr = err
		}
	})
	sim.Run()
	if runErr != nil {
		fatal(runErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "statlaunch:", err)
	os.Exit(1)
}

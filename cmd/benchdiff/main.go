// Command benchdiff is the CI bench-regression gate: it compares the
// numeric metrics of BENCH_*.json files (written by lmonbench -json)
// against a committed baseline and fails when any metric drifts beyond
// the tolerance. The simulation runs in virtual time, so smoke-sweep
// metrics are deterministic — run to run they reproduce bit-for-bit, and
// a tight threshold is safe: any drift means the system's behaviour
// changed, not that the runner was slow.
//
// Usage:
//
//	benchdiff -baseline ci/bench_baseline.json BENCH_smoke_*.json   # gate
//	benchdiff -baseline ci/bench_baseline.json -write BENCH_smoke_*.json  # regenerate
//
// Metrics are keyed <file-stem>[<row>].<Field> for every numeric field of
// every row (sweep rows are emitted in deterministic order). The gate
// fails on: a metric drifting more than -tolerance in either direction
// (an unexplained improvement is as much a behaviour change as a
// regression) or a baseline metric missing from the current run. A metric
// present in the run but absent from the baseline only warns — new
// instrumentation (extra columns, extra sweep points) must not brick the
// gate before its pin lands; regenerate with -write, review the diff, and
// commit it to adopt the new metrics intentionally.
//
// Baseline stems with no file in the current run are skipped entirely
// (with a note), so the pin can hold results of sweeps too big for every
// gate invocation — the full-scale launch_million point is pinned from a
// large-memory host while CI gates only the smoke files — without the
// absent file reading as a regression. Within a stem both sides gate, a
// baseline metric missing from the run still fails: that means a sweep
// that did run lost rows or columns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// baseline is the committed pin: one flat metric map.
type baseline struct {
	// Comment documents the file for humans browsing ci/.
	Comment string `json:"comment,omitempty"`
	// Metrics maps <file-stem>[<row>].<Field> to the pinned value.
	Metrics map[string]float64 `json:"metrics"`
}

// stemOf returns the file stem of a metric key (<stem>[<row>].<Field>).
func stemOf(key string) string {
	if i := strings.IndexByte(key, '['); i >= 0 {
		return key[:i]
	}
	return key
}

// extract flattens one BENCH_*.json file into metric entries.
func extract(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w (benchdiff expects an array of row objects)", path, err)
	}
	stem := strings.TrimSuffix(filepath.Base(path), ".json")
	stem = strings.TrimPrefix(stem, "BENCH_")
	out := make(map[string]float64)
	for i, row := range rows {
		for field, v := range row {
			if num, ok := v.(float64); ok {
				out[fmt.Sprintf("%s[%d].%s", stem, i, field)] = num
			}
		}
	}
	return out, nil
}

func main() {
	basePath := flag.String("baseline", "", "path to the committed baseline JSON")
	tolerance := flag.Float64("tolerance", 0.10, "maximum relative drift per metric")
	write := flag.Bool("write", false, "regenerate the baseline from the given files instead of gating")
	flag.Parse()

	if *basePath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline <file> [-tolerance 0.10] [-write] BENCH_*.json...")
		os.Exit(2)
	}

	current := make(map[string]float64)
	curStems := make(map[string]bool)
	for _, path := range flag.Args() {
		m, err := extract(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		for k, v := range m {
			current[k] = v
			curStems[stemOf(k)] = true
		}
	}

	if *write {
		// Merge: stems covered by the given files are replaced wholesale,
		// pins for other stems carry over. Re-pinning from the smoke files
		// alone must not drop the launch_million point, which is pinned
		// from a large-memory host.
		merged := make(map[string]float64, len(current))
		if data, err := os.ReadFile(*basePath); err == nil {
			var prev baseline
			if err := json.Unmarshal(data, &prev); err == nil {
				for k, v := range prev.Metrics {
					if !curStems[stemOf(k)] {
						merged[k] = v
					}
				}
			}
		}
		for k, v := range current {
			merged[k] = v
		}
		b := baseline{
			Comment: "virtual-time bench pins for the CI smoke sweep plus the full-scale launch_million point; " +
				"-write replaces only the stems of the files it is given, so regenerate the smoke pins with: " +
				"go run ./cmd/lmonbench -smoke -json && go run ./cmd/benchdiff -baseline ci/bench_baseline.json -write BENCH_smoke_*.json " +
				"and the million pin (fits a 16 GB host, ~30 min on one core) with: " +
				"GODEBUG=madvdontneed=1 go run ./cmd/lmonbench -million -mem -json && go run ./cmd/benchdiff -baseline ci/bench_baseline.json -write BENCH_launch_million.json; " +
				"goroutine counts are virtual-time-deterministic and pinned, RSS is host-dependent and never pinned",
			Metrics: merged,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchdiff: wrote %d metrics to %s (%d from this run, %d carried over)\n",
			len(merged), *basePath, len(current), len(merged)-len(current))
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *basePath, err)
		os.Exit(1)
	}

	keys := make([]string, 0, len(base.Metrics)+len(current))
	seen := make(map[string]bool)
	for k := range base.Metrics {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range current {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	failures := 0
	checked := 0
	skippedStems := make(map[string]bool)
	for _, k := range keys {
		want, inBase := base.Metrics[k]
		got, inCur := current[k]
		switch {
		case !inBase:
			// New instrumentation, not a regression: warn so the metric is
			// visible, and let the pin catch up via -write.
			fmt.Fprintf(os.Stderr, "benchdiff: warning: NEW %s = %v not in baseline (regenerate with -write to pin)\n", k, got)
		case !inCur:
			if !curStems[stemOf(k)] {
				if stem := stemOf(k); !skippedStems[stem] {
					skippedStems[stem] = true
					fmt.Fprintf(os.Stderr, "benchdiff: note: baseline stem %q not part of this run, skipping its pins\n", stem)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "benchdiff: MISSING %s (baseline %v) absent from this run\n", k, want)
			failures++
		default:
			checked++
			drift := 0.0
			if want != 0 {
				drift = (got - want) / want
			} else if got != 0 {
				drift = math.Inf(1)
			}
			if math.Abs(drift) > *tolerance {
				direction := "REGRESSION"
				if drift < 0 {
					direction = "DRIFT (improved)"
				}
				fmt.Fprintf(os.Stderr, "benchdiff: %s %s: baseline %v, got %v (%+.1f%%)\n",
					direction, k, want, got, drift*100)
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) out of bounds (tolerance %.0f%%); "+
			"if intentional, regenerate the baseline with -write and commit the diff\n",
			failures, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d metrics within %.0f%% of baseline\n", checked, *tolerance*100)
}

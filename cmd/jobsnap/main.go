// Command jobsnap runs the Jobsnap tool (paper §5.1) against a freshly
// started MPI job on a simulated cluster and prints the per-task report:
// rank, host, executable, pid, state, program counter, thread count,
// memory statistics and CPU times — one line per task.
//
// Usage:
//
//	jobsnap [-nodes N] [-tasks-per-node T]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/tools/jobsnap"
	"launchmon/internal/vtime"
)

func main() {
	nodes := flag.Int("nodes", 16, "compute nodes the target job uses")
	tpn := flag.Int("tasks-per-node", 8, "MPI tasks per node")
	flag.Parse()

	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: *nodes})
	if err != nil {
		fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		fatal(err)
	}
	core.Setup(cl, mgr)
	jobsnap.Install(cl)

	var res jobsnap.Result
	var runErr error
	sim.Go("boot", func() {
		if _, err := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "jobsnap", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "mpiapp", Nodes: *nodes, TasksPerNode: *tpn})
			if err != nil {
				runErr = err
				return
			}
			p.Sim().Sleep(10 * time.Second) // let the job run before snapshotting
			res, runErr = jobsnap.Run(p, j.ID())
		}}); err != nil {
			runErr = err
		}
	})
	sim.Run()
	if runErr != nil {
		fatal(runErr)
	}
	fmt.Print(res.Report)
	fmt.Printf("\njobsnap: %d tasks on %d nodes; total %.3fs (launchmon %.3fs)\n",
		res.Lines, *nodes, res.Total.Seconds(), res.LaunchTime.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jobsnap:", err)
	os.Exit(1)
}

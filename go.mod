module launchmon

go 1.21

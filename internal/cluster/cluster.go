// Package cluster simulates an HPC cluster: a front-end node plus compute
// nodes, each with a process table, fork/exec cost model and per-process
// synthetic /proc metrics. Processes are virtual-time goroutines
// (internal/vtime) that reach the simulated network (internal/simnet)
// through their node's host.
//
// The package also provides the debugger-style tracing interface that the
// Automatic Process Acquisition Interface (APAI) of the resource manager
// builds on: a tracer attaches to a process, observes stop events (for
// example the MPIR_Breakpoint), reads named symbols from the process
// "address space" (charged by size) and resumes it — exactly the contract
// the LaunchMON Engine consumes.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Options configure cluster construction. Zero cost fields take defaults.
type Options struct {
	// Nodes is the number of compute nodes (required, > 0).
	Nodes int
	// Net configures the interconnect cost model.
	Net simnet.Options
	// ForkCost is the CPU time to fork+exec one process; forks on one node
	// serialize.
	ForkCost time.Duration
	// MaxProcs caps the per-node process table; Spawn fails beyond it
	// (models fork: Resource temporarily unavailable).
	MaxProcs int
	// SymbolReadBase is the fixed ptrace overhead of one symbol read.
	SymbolReadBase time.Duration
	// SymbolReadBandwidth is the bytes/second rate for tracer memory reads.
	SymbolReadBandwidth float64
}

const (
	defaultForkCost    = 900 * time.Microsecond
	defaultMaxProcs    = 8192
	defaultSymReadBase = 50 * time.Microsecond
	defaultSymReadBW   = 40e6 // ptrace peeks are slow: ~40 MB/s
	frontEndName       = "fe0"
	computeNamePrefix  = "node"
)

func (o Options) withDefaults() Options {
	if o.ForkCost == 0 {
		o.ForkCost = defaultForkCost
	}
	if o.MaxProcs == 0 {
		o.MaxProcs = defaultMaxProcs
	}
	if o.SymbolReadBase == 0 {
		o.SymbolReadBase = defaultSymReadBase
	}
	if o.SymbolReadBandwidth == 0 {
		o.SymbolReadBandwidth = defaultSymReadBW
	}
	return o
}

// ProcMain is the entry point of a simulated process.
type ProcMain func(p *Proc)

// Cluster is a simulated machine: one front-end node plus compute nodes.
type Cluster struct {
	sim  *vtime.Sim
	net  *simnet.Network
	opts Options

	frontEnd *Node
	nodes    []*Node

	mu       sync.Mutex
	registry map[string]ProcMain
}

// New builds a cluster with opts.Nodes compute nodes named node0..nodeN-1
// and a front-end node named fe0.
func New(sim *vtime.Sim, opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		return nil, errors.New("cluster: Nodes must be positive")
	}
	o := opts.withDefaults()
	c := &Cluster{
		sim:      sim,
		net:      simnet.New(sim, o.Net),
		opts:     o,
		registry: make(map[string]ProcMain),
	}
	c.frontEnd = c.newNode(frontEndName)
	for i := 0; i < o.Nodes; i++ {
		c.nodes = append(c.nodes, c.newNode(fmt.Sprintf("%s%d", computeNamePrefix, i)))
	}
	return c, nil
}

func (c *Cluster) newNode(name string) *Node {
	return &Node{
		cl:    c,
		name:  name,
		host:  c.net.Host(name),
		procs: make(map[int]*Proc),
		pid:   100,
	}
}

// Sim returns the underlying virtual-time simulation.
func (c *Cluster) Sim() *vtime.Sim { return c.sim }

// Net returns the simulated network.
func (c *Cluster) Net() *simnet.Network { return c.net }

// FrontEnd returns the front-end (login/service) node.
func (c *Cluster) FrontEnd() *Node { return c.frontEnd }

// NumNodes returns the number of compute nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns compute node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NodeByName resolves a node (front end or compute) by host name.
func (c *Cluster) NodeByName(name string) (*Node, bool) {
	if name == frontEndName {
		return c.frontEnd, true
	}
	for _, n := range c.nodes {
		if n.name == name {
			return n, true
		}
	}
	return nil, false
}

// Register binds an "executable" name to a process entry point; Spawn specs
// may then reference the executable by name, mirroring exec of an installed
// binary on every node.
func (c *Cluster) Register(exe string, main ProcMain) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registry[exe] = main
}

func (c *Cluster) lookup(exe string) (ProcMain, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.registry[exe]
	return m, ok
}

// Options returns the cluster's effective options (defaults applied).
func (c *Cluster) Options() Options { return c.opts }

// Node is one simulated machine in the cluster.
type Node struct {
	cl   *Cluster
	name string
	host *simnet.Host

	mu      sync.Mutex
	procs   map[int]*Proc
	pid     int
	cpuFree time.Duration // fork serialization point
	down    bool          // node killed by Fail/KillNode
}

// Name returns the node's host name.
func (n *Node) Name() string { return n.name }

// Host returns the node's network endpoint.
func (n *Node) Host() *simnet.Host { return n.host }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cl }

// NumProcs returns the current process count on the node.
func (n *Node) NumProcs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.procs)
}

// Proc looks up a live process by pid.
func (n *Node) Proc(pid int) (*Proc, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.procs[pid]
	return p, ok
}

// FindProcByExe returns the live process with the named executable and
// the lowest pid (nil when none runs) — how tests and tools locate a
// system process, e.g. the LaunchMON engine, for fault injection.
func (n *Node) FindProcByExe(exe string) *Proc {
	n.mu.Lock()
	defer n.mu.Unlock()
	var found *Proc
	for _, p := range n.procs {
		if p.exe == exe && (found == nil || p.pid < found.pid) {
			found = p
		}
	}
	return found
}

// ErrProcLimit is returned by Spawn when the node's process table is full
// (the simulated analogue of fork failing with EAGAIN).
var ErrProcLimit = errors.New("cluster: fork: resource temporarily unavailable")

// ErrNodeDown is returned by Spawn on a killed node.
var ErrNodeDown = errors.New("cluster: node is down")

// Down reports whether the node has been killed.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// Fail kills the node: its network host is severed (peers observe
// ErrPeerDead once in-flight data drains) and every process on it is
// force-terminated. Further spawns fail with ErrNodeDown. This is the
// fault-injection entry point for node-loss scenarios; it is idempotent.
func (n *Node) Fail() {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return
	}
	n.down = true
	procs := make([]*Proc, 0, len(n.procs))
	for _, p := range n.procs {
		procs = append(procs, p)
	}
	n.mu.Unlock()

	// Sever the interconnect first so no process "escapes" a final message
	// after the instant of failure, then reap the process table.
	n.cl.net.KillHost(n.name)
	for _, p := range procs {
		p.Kill()
	}
}

// KillNode fail-stops compute node i (injection API). See Node.Fail.
func (c *Cluster) KillNode(i int) { c.nodes[i].Fail() }

// KillNodeByName fail-stops the named node (front end or compute);
// it reports whether the node existed.
func (c *Cluster) KillNodeByName(name string) bool {
	n, ok := c.NodeByName(name)
	if !ok {
		return false
	}
	n.Fail()
	return true
}

// KillProc force-terminates one process identified by host name and pid
// (injection API); it reports whether the process was found alive.
func (c *Cluster) KillProc(host string, pid int) bool {
	n, ok := c.NodeByName(host)
	if !ok {
		return false
	}
	p, ok := n.Proc(pid)
	if !ok {
		return false
	}
	p.Kill()
	return true
}

// Spec describes a process to spawn.
type Spec struct {
	// Exe names a registered executable when Main is nil; with Main set
	// (or Passive) it is only a label.
	Exe string
	// Main is a direct entry point; when set it takes precedence over the
	// executable registry. Processes with neither Main nor a registered
	// Exe behaviour are passive: they occupy a table slot and expose
	// metrics but run no code (how simulated MPI tasks are represented).
	Main ProcMain
	// Passive marks a process with no behaviour; Exe is then a pure label
	// (the application name reported in proctables and /proc).
	Passive bool
	// Hold prevents the entry point from running until Proc.Start is
	// called, so a debugger can attach first (launch mode of the engine).
	Hold bool
	// Resident marks a process that stays alive after its entry point
	// returns: Main sets up event handlers (listener callbacks, timers)
	// and returns, but the process keeps its table slot until Exit/Kill —
	// the shape of an event-driven system daemon. Without Resident, Main
	// returning implies Exit(0).
	Resident bool
	Args     []string
	Env      map[string]string
	// EnvBase is a shared immutable environment layer under Env: the
	// process keeps the map pointer itself (no copy), so spawners that
	// start many processes with a common environment — an RM daemon
	// spawning one tool daemon per node — pay for one map, not K. Entries
	// in Env shadow EnvBase; callers must never mutate EnvBase afterwards.
	EnvBase map[string]string
}

// SpawnProc forks a process on the node, charging the fork cost to the
// calling simulated goroutine (forks on a node serialize). It is the only
// way processes come into existence; remote placement happens through
// daemons (RM or rsh) that call SpawnProc on their own node.
func (n *Node) SpawnProc(spec Spec) (*Proc, error) {
	n.chargeFork()
	return n.spawn(spec)
}

// SpawnSystemProc creates a process without charging the fork cost. It is
// for machine boot (RM node daemons, persistent system services) and may
// be called from outside the simulation, before Run.
func (n *Node) SpawnSystemProc(spec Spec) (*Proc, error) {
	return n.spawn(spec)
}

// SpawnProcAsync is SpawnProc for callers that must not block (event
// handlers running on the scheduler): the node's fork window is reserved
// immediately — so concurrent forks serialize exactly as with SpawnProc —
// and cb fires at the instant the fork completes, with the process
// spawned at that same instant.
func (n *Node) SpawnProcAsync(spec Spec, cb func(*Proc, error)) {
	d := n.cl.opts.ForkCost
	now := n.cl.sim.Now()
	n.mu.Lock()
	start := now
	if n.cpuFree > start {
		start = n.cpuFree
	}
	n.cpuFree = start + d
	wait := n.cpuFree - now
	n.mu.Unlock()
	n.cl.sim.After(wait, func() {
		p, err := n.spawn(spec)
		cb(p, err)
	})
}

func (n *Node) spawn(spec Spec) (*Proc, error) {
	main := spec.Main
	if main == nil && spec.Exe != "" && !spec.Passive {
		m, ok := n.cl.lookup(spec.Exe)
		if !ok {
			return nil, fmt.Errorf("cluster: exec %q: no such executable", spec.Exe)
		}
		main = m
	}
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, n.name)
	}
	if len(n.procs) >= n.cl.opts.MaxProcs {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w (node %s, %d procs)", ErrProcLimit, n.name, n.cl.opts.MaxProcs)
	}
	n.pid++
	p := &Proc{
		node:     n,
		pid:      n.pid,
		exe:      spec.Exe,
		args:     append([]string(nil), spec.Args...),
		env:      copyEnv(spec.Env),
		envBase:  spec.EnvBase,
		state:    StateRunning,
		started:  n.cl.sim.Now(),
		resident: spec.Resident,
	}
	if spec.Exe == "" && spec.Main == nil {
		p.exe = "task"
	}
	n.procs[p.pid] = p
	n.mu.Unlock()

	if main != nil {
		if spec.Hold {
			p.heldMain = main
		} else {
			p.run(main)
		}
	}
	return p, nil
}

func (p *Proc) run(main ProcMain) {
	p.node.cl.sim.Go(fmt.Sprintf("%s/%s[%d]", p.node.name, p.exe, p.pid), func() {
		main(p)
		if !p.resident {
			p.Exit(0)
		}
	})
}

// Start releases a process spawned with Spec.Hold. It is a no-op for
// running or passive processes.
func (p *Proc) Start() {
	p.node.mu.Lock()
	main := p.heldMain
	p.heldMain = nil
	p.node.mu.Unlock()
	if main != nil {
		p.run(main)
	}
}

// chargeFork blocks the caller for the fork cost, serializing forks per node.
func (n *Node) chargeFork() {
	d := n.cl.opts.ForkCost
	now := n.cl.sim.Now()
	n.mu.Lock()
	start := now
	if n.cpuFree > start {
		start = n.cpuFree
	}
	n.cpuFree = start + d
	wait := n.cpuFree - now
	n.mu.Unlock()
	n.cl.sim.Sleep(wait)
}

func copyEnv(env map[string]string) map[string]string {
	if len(env) == 0 {
		return nil
	}
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

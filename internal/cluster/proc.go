package cluster

import (
	"errors"
	"fmt"
	"time"

	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// State is the lifecycle state of a simulated process.
type State int

// Process lifecycle states.
const (
	StateRunning State = iota
	StateStopped       // stopped by the tracer (debug stop)
	StateExited
)

// String renders the state like /proc status letters.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "R"
	case StateStopped:
		return "T"
	case StateExited:
		return "Z"
	default:
		return "?"
	}
}

// Symbol is a named value in a process's simulated address space, with an
// explicit serialized size so tracer reads can be charged realistically.
type Symbol struct {
	Value any
	Size  int // bytes a debugger would transfer to read it
}

// Proc is a simulated process.
type Proc struct {
	node     *Node
	pid      int
	exe      string
	args     []string
	env      map[string]string // per-process overlay; wins over envBase
	envBase  map[string]string // shared immutable base (Spec.EnvBase), never copied
	started  time.Duration
	resident bool // Main returning does not imply exit (Spec.Resident)

	// All mutable state below is guarded by node.mu.
	state       State
	exitCode    int
	symbols     map[string]Symbol // lazy: nil until the first SetSymbol
	tracer      *Tracer
	heldMain    ProcMain // entry point pending Start (Spec.Hold)
	inDebugStop bool     // blocked inside DebugEvent awaiting Continue

	// Both chans are lazy: at a million nodes two eager allocations per
	// process dominate heap, and almost no process is ever waited on or
	// debug-stopped. Guarded by node.mu.
	exited *vtime.Chan[int]      // closed-with-value on exit; created by the first Wait
	resume *vtime.Chan[struct{}] // tracer Continue tokens; created by DebugEvent

	// conns are network connections adopted via AdoptConn; Exit severs
	// them so a killed process's peers observe ErrPeerDead rather than
	// hanging on a conn whose owner no longer runs.
	conns []interface{ Sever() }

	// Synthetic activity counters backing /proc snapshots; tools may bump
	// them, and Snapshot derives the rest deterministically.
	majFlt  int64
	threads int
}

// Pid returns the process id (unique per node).
func (p *Proc) Pid() int { return p.pid }

// Exe returns the executable name.
func (p *Proc) Exe() string { return p.exe }

// Args returns the argument vector.
func (p *Proc) Args() []string { return p.args }

// Node returns the node the process runs on.
func (p *Proc) Node() *Node { return p.node }

// Host returns the node's network endpoint, the process's window onto the
// interconnect.
func (p *Proc) Host() *simnet.Host { return p.node.host }

// Sim returns the simulation clock driver.
func (p *Proc) Sim() *vtime.Sim { return p.node.cl.sim }

// Env returns the value of an environment variable ("" when unset).
func (p *Proc) Env(key string) string {
	if v, ok := p.env[key]; ok {
		return v
	}
	return p.envBase[key]
}

// Environ returns a copy of the whole environment.
func (p *Proc) Environ() map[string]string {
	out := make(map[string]string, len(p.envBase)+len(p.env))
	for k, v := range p.envBase {
		out[k] = v
	}
	for k, v := range p.env {
		out[k] = v
	}
	return out
}

// State returns the current lifecycle state.
func (p *Proc) State() State {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	return p.state
}

// Compute charges d of CPU time to the process (uncontended; Atlas nodes
// are 8-core, and tool daemons are lightweight).
func (p *Proc) Compute(d time.Duration) { p.node.cl.sim.Sleep(d) }

// Spawn forks a child process on the same node.
func (p *Proc) Spawn(spec Spec) (*Proc, error) {
	return p.node.SpawnProc(spec)
}

// AdoptConn hands a network connection to the process for lifecycle
// management: when the process exits (or is killed), the connection is
// severed so remote peers observe ErrPeerDead — the same signal a node
// loss produces — instead of blocking forever on a conn nobody reads.
// Long-lived components (the engine, master daemons) adopt their FE
// connections right after dialing. Adopting on an already-exited process
// severs immediately.
func (p *Proc) AdoptConn(c interface{ Sever() }) {
	n := p.node
	n.mu.Lock()
	if p.state == StateExited {
		n.mu.Unlock()
		c.Sever()
		return
	}
	p.conns = append(p.conns, c)
	n.mu.Unlock()
}

// Exit terminates the process. Safe to call more than once; only the first
// call takes effect. Adopted connections (AdoptConn) are severed: the
// process's protocol peers see the loss as ErrPeerDead, which is what
// drives failure detection for killed-process (vs killed-node) faults.
func (p *Proc) Exit(code int) {
	n := p.node
	n.mu.Lock()
	if p.state == StateExited {
		n.mu.Unlock()
		return
	}
	p.state = StateExited
	p.exitCode = code
	delete(n.procs, p.pid)
	tr := p.tracer
	p.tracer = nil
	conns := p.conns
	p.conns = nil
	exited, resume := p.exited, p.resume
	n.mu.Unlock()
	for _, c := range conns {
		c.Sever()
	}
	if tr != nil {
		tr.events.Send(TraceEvent{Type: EventExit, Code: code})
		tr.events.Close()
	}
	if exited != nil {
		exited.Send(code)
		exited.Close()
	}
	if resume != nil {
		resume.Close()
	}
}

// Kill force-terminates the process with exit code 137 (SIGKILL-like).
func (p *Proc) Kill() { p.Exit(137) }

// Wait blocks until the process exits and returns its exit code; ok is
// false when the simulation tore down first.
func (p *Proc) Wait() (code int, ok bool) {
	n := p.node
	n.mu.Lock()
	if p.state == StateExited {
		code := p.exitCode
		n.mu.Unlock()
		return code, true
	}
	if p.exited == nil {
		p.exited = vtime.NewChan[int](n.cl.sim)
	}
	ch := p.exited
	n.mu.Unlock()
	return ch.Recv()
}

// SetSymbol publishes (or updates) a named symbol in the process's address
// space for tracers to read.
func (p *Proc) SetSymbol(name string, sym Symbol) {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	if p.symbols == nil {
		p.symbols = make(map[string]Symbol)
	}
	p.symbols[name] = sym
}

// AddThreads adjusts the synthetic thread count reported via Snapshot.
func (p *Proc) AddThreads(n int) {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	p.threads += n
}

// FaultPages bumps the synthetic major-page-fault counter.
func (p *Proc) FaultPages(n int64) {
	p.node.mu.Lock()
	defer p.node.mu.Unlock()
	p.majFlt += n
}

// --- Tracing (the substrate under the RM's APAI) ---

// TraceEventType enumerates tracer observations.
type TraceEventType int

// Trace event kinds.
const (
	// EventStop: the tracee stopped (breakpoint or debug event); the reason
	// names it, e.g. "MPIR_Breakpoint". Continue resumes it.
	EventStop TraceEventType = iota
	// EventExit: the tracee exited; Code holds the exit status.
	EventExit
)

// TraceEvent is one observation delivered to the tracer.
type TraceEvent struct {
	Type   TraceEventType
	Reason string
	Code   int
}

// Tracer is a debugger attachment to one process.
type Tracer struct {
	proc   *Proc
	events *vtime.Chan[TraceEvent]
}

// Errors from the tracing interface.
var (
	ErrAlreadyTraced = errors.New("cluster: process already traced")
	ErrNotStopped    = errors.New("cluster: tracee is not stopped")
	ErrExited        = errors.New("cluster: process has exited")
)

// Attach attaches a debugger to the process. Only one tracer may be
// attached at a time.
func (p *Proc) Attach() (*Tracer, error) {
	n := p.node
	n.mu.Lock()
	defer n.mu.Unlock()
	if p.state == StateExited {
		return nil, ErrExited
	}
	if p.tracer != nil {
		return nil, ErrAlreadyTraced
	}
	t := &Tracer{proc: p, events: vtime.NewChan[TraceEvent](n.cl.sim)}
	p.tracer = t
	return t, nil
}

// Events returns the tracer's event stream. The channel closes when the
// tracee exits or the tracer detaches.
func (t *Tracer) Events() *vtime.Chan[TraceEvent] { return t.events }

// Proc returns the traced process.
func (t *Tracer) Proc() *Proc { return t.proc }

// ReadSymbol reads a named symbol from the tracee's address space, charging
// the caller ptrace-style cost proportional to the symbol's size.
func (t *Tracer) ReadSymbol(name string) (any, error) {
	p := t.proc
	n := p.node
	n.mu.Lock()
	sym, ok := p.symbols[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: symbol %q not found in %s[%d]", name, p.exe, p.pid)
	}
	o := n.cl.opts
	cost := o.SymbolReadBase + time.Duration(float64(sym.Size)/o.SymbolReadBandwidth*float64(time.Second))
	n.cl.sim.Sleep(cost)
	return sym.Value, nil
}

// Continue resumes a debug-stopped tracee.
func (t *Tracer) Continue() error {
	p := t.proc
	n := p.node
	n.mu.Lock()
	if p.state == StateExited {
		n.mu.Unlock()
		return ErrExited
	}
	if p.state != StateStopped {
		n.mu.Unlock()
		return ErrNotStopped
	}
	p.state = StateRunning
	blocked := p.inDebugStop
	resume := p.resume
	n.mu.Unlock()
	if blocked {
		resume.Send(struct{}{})
	}
	return nil
}

// Interrupt stops a running tracee without a debug event of its own (the
// SIGSTOP a debugger sends when attaching to an already running launcher).
// The tracer receives an EventStop with reason "interrupt".
func (t *Tracer) Interrupt() error {
	p := t.proc
	n := p.node
	n.mu.Lock()
	if p.state == StateExited {
		n.mu.Unlock()
		return ErrExited
	}
	if p.state == StateStopped {
		n.mu.Unlock()
		return nil
	}
	p.state = StateStopped
	n.mu.Unlock()
	t.events.Send(TraceEvent{Type: EventStop, Reason: "interrupt"})
	return nil
}

// Detach removes the tracer; a stopped tracee is resumed first.
func (t *Tracer) Detach() {
	p := t.proc
	n := p.node
	n.mu.Lock()
	stopped := p.state == StateStopped
	blocked := p.inDebugStop
	resume := p.resume
	if p.tracer == t {
		p.tracer = nil
	}
	if stopped {
		p.state = StateRunning
	}
	n.mu.Unlock()
	if stopped && blocked {
		resume.Send(struct{}{})
	}
	t.events.Close()
}

// DebugEvent raises a debugger stop with the given reason if the process is
// traced: the process blocks until the tracer calls Continue. Untraced
// processes proceed immediately. This is how the RM launcher surfaces both
// its ordinary debug events and the MPIR_Breakpoint.
func (p *Proc) DebugEvent(reason string) {
	n := p.node
	n.mu.Lock()
	t := p.tracer
	if t == nil || p.state == StateExited {
		n.mu.Unlock()
		return
	}
	p.state = StateStopped
	p.inDebugStop = true
	if p.resume == nil {
		p.resume = vtime.NewChan[struct{}](n.cl.sim)
	}
	resume := p.resume
	n.mu.Unlock()
	t.events.Send(TraceEvent{Type: EventStop, Reason: reason})
	resume.Recv() // parked until Continue/Detach (or teardown)
	n.mu.Lock()
	p.inDebugStop = false
	n.mu.Unlock()
}

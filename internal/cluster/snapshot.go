package cluster

import (
	"time"
)

// Snapshot is a point-in-time /proc-style view of one process: identity,
// scheduler state, and the memory/time statistics Jobsnap reports
// (paper §5.1). Values are synthetic but deterministic, derived from the
// process identity and the virtual clock, so repeated runs produce
// identical output and tests can assert on it.
type Snapshot struct {
	Pid     int
	Exe     string
	State   string
	PC      uint64 // program counter
	Threads int

	VmHWMKB int64 // virtual memory high water mark
	VmLckKB int64 // locked memory
	VmRSSKB int64 // resident set

	UtimeMS  int64 // user CPU time
	StimeMS  int64 // system CPU time
	MajFault int64 // major page faults
}

// SnapshotReadCost is the per-process cost of collecting a /proc snapshot
// (several small file reads), charged to the caller of Snapshot.
const SnapshotReadCost = 150 * time.Microsecond

// Snapshot collects the process's /proc view, charging SnapshotReadCost of
// virtual time to the calling simulated goroutine.
func (p *Proc) Snapshot() Snapshot {
	p.node.cl.sim.Sleep(SnapshotReadCost)
	now := p.node.cl.sim.Now()
	alive := now - p.started
	if alive < 0 {
		alive = 0
	}
	p.node.mu.Lock()
	defer p.node.mu.Unlock()

	// Deterministic pseudo-metrics: keyed by pid and elapsed time. A task
	// spends ~70% user, ~5% system of its wall time in this model.
	seed := uint64(p.pid)*2654435761 + uint64(len(p.exe))
	threads := p.threads
	if threads <= 0 {
		threads = 1 + int(seed%4)
	}
	return Snapshot{
		Pid:      p.pid,
		Exe:      p.exe,
		State:    p.state.String(),
		PC:       0x400000 + (seed^uint64(alive/time.Millisecond))%0x10000,
		Threads:  threads,
		VmHWMKB:  int64(20000 + seed%8192),
		VmLckKB:  int64(seed % 64),
		VmRSSKB:  int64(16000 + seed%4096),
		UtimeMS:  int64(float64(alive/time.Millisecond) * 0.7),
		StimeMS:  int64(float64(alive/time.Millisecond) * 0.05),
		MajFault: p.majFlt + int64(seed%17),
	}
}

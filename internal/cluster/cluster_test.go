package cluster

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

func newCluster(t *testing.T, sim *vtime.Sim, nodes int, opts Options) *Cluster {
	t.Helper()
	opts.Nodes = nodes
	c, err := New(sim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTopology(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 4, Options{})
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if c.FrontEnd().Name() != "fe0" {
		t.Fatalf("front end name = %q", c.FrontEnd().Name())
	}
	if c.Node(2).Name() != "node2" {
		t.Fatalf("node2 name = %q", c.Node(2).Name())
	}
	if _, ok := c.NodeByName("node3"); !ok {
		t.Fatal("NodeByName(node3) failed")
	}
	if _, ok := c.NodeByName("fe0"); !ok {
		t.Fatal("NodeByName(fe0) failed")
	}
	if _, ok := c.NodeByName("nowhere"); ok {
		t.Fatal("NodeByName(nowhere) succeeded")
	}
}

func TestSpawnRunsMain(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	ran := false
	sim.Go("boot", func() {
		p, err := c.Node(0).SpawnProc(Spec{Main: func(p *Proc) {
			ran = true
			if p.Env("KEY") != "VAL" {
				t.Error("env not propagated")
			}
			if len(p.Args()) != 2 || p.Args()[1] != "b" {
				t.Error("args not propagated")
			}
		}, Args: []string{"a", "b"}, Env: map[string]string{"KEY": "VAL"}})
		if err != nil {
			t.Error(err)
			return
		}
		if code, ok := p.Wait(); !ok || code != 0 {
			t.Errorf("Wait = (%d,%v)", code, ok)
		}
	})
	sim.Run()
	if !ran {
		t.Fatal("main did not run")
	}
}

func TestForkCostSerializes(t *testing.T) {
	sim := vtime.New()
	fork := time.Millisecond
	c := newCluster(t, sim, 1, Options{ForkCost: fork})
	var done time.Duration
	sim.Go("boot", func() {
		// Two concurrent spawners on the same node must serialize.
		wg := vtime.NewWaitGroup(sim)
		wg.Add(2)
		for i := 0; i < 2; i++ {
			sim.Go("spawner", func() {
				if _, err := c.Node(0).SpawnProc(Spec{}); err != nil {
					t.Error(err)
				}
				wg.Done()
			})
		}
		wg.Wait()
		done = sim.Now()
	})
	sim.Run()
	if done != 2*fork {
		t.Fatalf("two concurrent forks completed at %v, want %v", done, 2*fork)
	}
}

func TestSpawnByRegisteredExe(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	ran := false
	c.Register("daemon", func(p *Proc) { ran = true })
	sim.Go("boot", func() {
		p, err := c.Node(0).SpawnProc(Spec{Exe: "daemon"})
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait()
	})
	sim.Run()
	if !ran {
		t.Fatal("registered exe did not run")
	}
}

func TestSpawnUnknownExe(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	var err error
	sim.Go("boot", func() { _, err = c.Node(0).SpawnProc(Spec{Exe: "missing"}) })
	sim.Run()
	if err == nil {
		t.Fatal("spawn of unknown exe succeeded")
	}
}

func TestProcLimit(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{MaxProcs: 3})
	var errAt int = -1
	sim.Go("boot", func() {
		for i := 0; i < 5; i++ {
			if _, err := c.Node(0).SpawnProc(Spec{}); err != nil {
				if !errors.Is(err, ErrProcLimit) {
					t.Errorf("unexpected error: %v", err)
				}
				errAt = i
				return
			}
		}
	})
	sim.Run()
	if errAt != 3 {
		t.Fatalf("proc limit hit at spawn %d, want 3", errAt)
	}
}

func TestExitRemovesFromTable(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	sim.Go("boot", func() {
		p, err := c.Node(0).SpawnProc(Spec{})
		if err != nil {
			t.Error(err)
			return
		}
		if c.Node(0).NumProcs() != 1 {
			t.Errorf("NumProcs = %d before exit", c.Node(0).NumProcs())
		}
		p.Exit(3)
		if c.Node(0).NumProcs() != 0 {
			t.Errorf("NumProcs = %d after exit", c.Node(0).NumProcs())
		}
		if code, ok := p.Wait(); !ok || code != 3 {
			t.Errorf("Wait = (%d,%v), want (3,true)", code, ok)
		}
		// Exit is idempotent.
		p.Exit(9)
		if p.State() != StateExited {
			t.Error("state not exited")
		}
	})
	sim.Run()
}

func TestTracerBreakpointFlow(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	var seen []string
	sim.Go("boot", func() {
		p, err := c.Node(0).SpawnProc(Spec{Main: func(p *Proc) {
			p.Compute(time.Millisecond)
			p.DebugEvent("MPIR_Breakpoint")
			p.Compute(time.Millisecond)
		}})
		if err != nil {
			t.Error(err)
			return
		}
		tr, err := p.Attach()
		if err != nil {
			t.Error(err)
			return
		}
		for {
			ev, ok := tr.Events().Recv()
			if !ok {
				break
			}
			switch ev.Type {
			case EventStop:
				seen = append(seen, "stop:"+ev.Reason)
				if p.State() != StateStopped {
					t.Error("tracee not stopped at stop event")
				}
				if err := tr.Continue(); err != nil {
					t.Error(err)
				}
			case EventExit:
				seen = append(seen, "exit")
			}
		}
	})
	sim.Run()
	if len(seen) != 2 || seen[0] != "stop:MPIR_Breakpoint" || seen[1] != "exit" {
		t.Fatalf("event sequence = %v", seen)
	}
}

func TestDebugEventWithoutTracerProceeds(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	finished := false
	sim.Go("boot", func() {
		p, _ := c.Node(0).SpawnProc(Spec{Main: func(p *Proc) {
			p.DebugEvent("MPIR_Breakpoint")
			finished = true
		}})
		p.Wait()
	})
	sim.Run()
	if !finished {
		t.Fatal("untraced process blocked at DebugEvent")
	}
}

func TestDoubleAttachFails(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	sim.Go("boot", func() {
		p, _ := c.Node(0).SpawnProc(Spec{})
		if _, err := p.Attach(); err != nil {
			t.Error(err)
		}
		if _, err := p.Attach(); !errors.Is(err, ErrAlreadyTraced) {
			t.Errorf("second attach: %v", err)
		}
	})
	sim.Run()
}

func TestReadSymbolCostScalesWithSize(t *testing.T) {
	sim := vtime.New()
	base := 100 * time.Microsecond
	bw := 1e6 // 1 MB/s
	c := newCluster(t, sim, 1, Options{SymbolReadBase: base, SymbolReadBandwidth: bw})
	var smallCost, bigCost time.Duration
	sim.Go("boot", func() {
		p, _ := c.Node(0).SpawnProc(Spec{})
		p.SetSymbol("small", Symbol{Value: 1, Size: 1000})
		p.SetSymbol("big", Symbol{Value: 2, Size: 100000})
		tr, _ := p.Attach()
		t0 := sim.Now()
		if _, err := tr.ReadSymbol("small"); err != nil {
			t.Error(err)
		}
		smallCost = sim.Now() - t0
		t0 = sim.Now()
		if _, err := tr.ReadSymbol("big"); err != nil {
			t.Error(err)
		}
		bigCost = sim.Now() - t0
		if _, err := tr.ReadSymbol("absent"); err == nil {
			t.Error("read of absent symbol succeeded")
		}
	})
	sim.Run()
	if want := base + time.Millisecond; smallCost != want {
		t.Errorf("small read cost %v, want %v", smallCost, want)
	}
	if want := base + 100*time.Millisecond; bigCost != want {
		t.Errorf("big read cost %v, want %v", bigCost, want)
	}
}

func TestDetachResumesStoppedTracee(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	finished := false
	sim.Go("boot", func() {
		p, _ := c.Node(0).SpawnProc(Spec{Main: func(p *Proc) {
			p.DebugEvent("stop1")
			finished = true
		}})
		tr, _ := p.Attach()
		ev, ok := tr.Events().Recv()
		if !ok || ev.Type != EventStop {
			t.Error("no stop event")
			return
		}
		tr.Detach()
		p.Wait()
	})
	sim.Run()
	if !finished {
		t.Fatal("tracee stayed stopped after detach")
	}
}

func TestKill(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	sim.Go("boot", func() {
		p, _ := c.Node(0).SpawnProc(Spec{})
		p.Kill()
		if code, ok := p.Wait(); !ok || code != 137 {
			t.Errorf("Wait after kill = (%d,%v)", code, ok)
		}
	})
	sim.Run()
}

func TestSnapshotDeterministicAndCharged(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 1, Options{})
	sim.Go("boot", func() {
		p, _ := c.Node(0).SpawnProc(Spec{})
		t0 := sim.Now()
		s1 := p.Snapshot()
		if cost := sim.Now() - t0; cost != SnapshotReadCost {
			t.Errorf("snapshot cost %v, want %v", cost, SnapshotReadCost)
		}
		s2 := p.Snapshot()
		if s1.Pid != s2.Pid || s1.VmHWMKB != s2.VmHWMKB || s1.Threads != s2.Threads {
			t.Errorf("snapshots differ on static fields: %+v vs %+v", s1, s2)
		}
		if s1.State != "R" {
			t.Errorf("state %q, want R", s1.State)
		}
	})
	sim.Run()
}

// Property: pids are unique per node across arbitrary spawn/exit patterns.
func TestPropertyPidUniqueness(t *testing.T) {
	f := func(ops []bool) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		sim := vtime.New()
		c, err := New(sim, Options{Nodes: 1})
		if err != nil {
			return false
		}
		okRes := true
		sim.Go("boot", func() {
			seen := map[int]bool{}
			var live []*Proc
			for _, spawn := range ops {
				if spawn || len(live) == 0 {
					p, err := c.Node(0).SpawnProc(Spec{})
					if err != nil {
						okRes = false
						return
					}
					if seen[p.Pid()] {
						okRes = false
						return
					}
					seen[p.Pid()] = true
					live = append(live, p)
				} else {
					live[0].Exit(0)
					live = live[1:]
				}
			}
		})
		sim.Run()
		return okRes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExitSeversAdoptedConns(t *testing.T) {
	sim := vtime.New()
	c := newCluster(t, sim, 2, Options{})
	sim.Go("boot", func() {
		ln, err := c.Node(0).Host().Listen(7000)
		if err != nil {
			t.Error(err)
			return
		}
		p, err := c.Node(1).SpawnProc(Spec{})
		if err != nil {
			t.Error(err)
			return
		}
		conn, err := c.Node(1).Host().Dial(ln.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		p.AdoptConn(conn)
		peer, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		// Killing the process — not its node — severs the adopted
		// connection: the peer's read surfaces ErrPeerDead, not EOF.
		p.Kill()
		if _, err := peer.Read(make([]byte, 1)); !errors.Is(err, simnet.ErrPeerDead) {
			t.Errorf("peer read after proc kill: %v, want ErrPeerDead", err)
		}
		if code, ok := p.Wait(); !ok || code != 137 {
			t.Errorf("Wait = %d, %v after Kill", code, ok)
		}

		// Adopting into an already-exited process severs immediately.
		conn2, err := c.Node(1).Host().Dial(ln.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		peer2, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		p.AdoptConn(conn2)
		if _, err := peer2.Read(make([]byte, 1)); !errors.Is(err, simnet.ErrPeerDead) {
			t.Errorf("peer read after adopt-into-dead: %v, want ErrPeerDead", err)
		}
	})
	sim.Run()
}

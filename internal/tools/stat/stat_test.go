package stat

import (
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/rsh"
	"launchmon/internal/tbon"
	"launchmon/internal/vtime"
)

func rig(t *testing.T, nodes int) (*vtime.Sim, *cluster.Cluster, rm.Manager, *rsh.Service) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rsh.Install(cl, rsh.Config{})
	if err != nil {
		t.Fatal(err)
	}
	core.Setup(cl, mgr)
	Install(cl, tbon.Config{})
	return sim, cl, mgr, svc
}

func TestLaunchMONModeSamplesAllTasks(t *testing.T) {
	sim, cl, mgr, _ := rig(t, 8)
	var classes []Class
	var tasks int
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat_fe", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 8, TasksPerNode: 4})
			if err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(2 * time.Second)
			inst, err := LaunchWithLaunchMON(p, j.ID(), tbon.Config{})
			if err != nil {
				t.Error(err)
				return
			}
			defer inst.Close()
			tree, err := inst.Sample()
			if err != nil {
				t.Error(err)
				return
			}
			tasks = tree.Tasks()
			classes = tree.EquivalenceClasses()
		}})
	})
	sim.Run()
	if tasks != 32 {
		t.Fatalf("sampled %d tasks, want 32", tasks)
	}
	if len(classes) != 3 {
		t.Fatalf("got %d equivalence classes, want 3", len(classes))
	}
	covered := 0
	for _, c := range classes {
		covered += len(c.Ranks)
	}
	if covered != 32 {
		t.Fatalf("classes cover %d ranks", covered)
	}
}

func TestNativeModeEquivalentResult(t *testing.T) {
	sim, cl, mgr, svc := rig(t, 4)
	var lmTasks, rshTasks int
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat_fe", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
			if err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(2 * time.Second)

			// LaunchMON path.
			lm, err := LaunchWithLaunchMON(p, j.ID(), tbon.Config{})
			if err != nil {
				t.Error(err)
				return
			}
			tree, err := lm.Sample()
			if err != nil {
				t.Error(err)
				return
			}
			lmTasks = tree.Tasks()
			lm.Close()

			// Native path needs the task map (the old shared-file
			// mechanism); derive it from the RM's proctable.
			jj := j.(interface{ Proctab() proctab.Table })
			tab := jj.Proctab()
			ranks := map[string][]int{}
			for _, d := range tab {
				ranks[d.Host] = append(ranks[d.Host], d.Rank)
			}
			nodes := tab.Hosts()
			nat, err := LaunchWithRsh(p, svc, nodes, ranks, tbon.Config{})
			if err != nil {
				t.Error(err)
				return
			}
			defer nat.Close()
			tree2, err := nat.Sample()
			if err != nil {
				t.Error(err)
				return
			}
			rshTasks = tree2.Tasks()
		}})
	})
	sim.Run()
	if lmTasks != 8 || rshTasks != 8 {
		t.Fatalf("tasks: launchmon=%d rsh=%d, want 8/8", lmTasks, rshTasks)
	}
}

func TestLaunchMONFasterThanRshAtScale(t *testing.T) {
	sim, cl, mgr, svc := rig(t, 32)
	var lmTime, rshTime time.Duration
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat_fe", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 32, TasksPerNode: 8})
			if err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(3 * time.Second)

			lm, err := LaunchWithLaunchMON(p, j.ID(), tbon.Config{})
			if err != nil {
				t.Error(err)
				return
			}
			lmTime = lm.StartupTime
			lm.Close()

			jj := j.(interface{ Proctab() proctab.Table })
			tab := jj.Proctab()
			ranks := map[string][]int{}
			for _, d := range tab {
				ranks[d.Host] = append(ranks[d.Host], d.Rank)
			}
			nat, err := LaunchWithRsh(p, svc, tab.Hosts(), ranks, tbon.Config{})
			if err != nil {
				t.Error(err)
				return
			}
			rshTime = nat.StartupTime
			nat.Close()
		}})
	})
	sim.Run()
	if lmTime == 0 || rshTime == 0 {
		t.Fatal("startup did not complete")
	}
	if rshTime < 3*lmTime {
		t.Fatalf("rsh startup %v not clearly slower than LaunchMON %v at 32 nodes", rshTime, lmTime)
	}
}

func TestRshModeFailsAtFrontEndLimit(t *testing.T) {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 48, MaxProcs: 24})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rsh.Install(cl, rsh.Config{AuthCost: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	Install(cl, tbon.Config{})
	var launchErr error
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat_fe", Main: func(p *cluster.Proc) {
			nodes := make([]string, 48)
			ranks := map[string][]int{}
			for i := range nodes {
				nodes[i] = cl.Node(i).Name()
				ranks[nodes[i]] = []int{i}
			}
			_, launchErr = LaunchWithRsh(p, svc, nodes, ranks, tbon.Config{})
		}})
	})
	sim.Run()
	if launchErr == nil {
		t.Fatal("rsh STAT startup beyond the front-end process limit succeeded")
	}
}

// TestCollectiveModeIdenticalToTBON runs the same sampling wave over the
// MRNet-like TBŌN and over the session's collective plane (stat-merge
// reduction at interior ICCL daemons) and requires identical equivalence
// classes — the port off the hand-rolled overlay must not change outputs.
func TestCollectiveModeIdenticalToTBON(t *testing.T) {
	sample := func(collective bool, fanout int) []Class {
		t.Helper()
		sim, cl, mgr, _ := rig(t, 8)
		var classes []Class
		sim.Go("boot", func() {
			cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat_fe", Main: func(p *cluster.Proc) {
				j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 8, TasksPerNode: 4})
				if err != nil {
					t.Error(err)
					return
				}
				p.Sim().Sleep(2 * time.Second)
				var inst *Instance
				if collective {
					inst, err = LaunchCollective(p, j.ID(), fanout)
				} else {
					inst, err = LaunchWithLaunchMON(p, j.ID(), tbon.Config{})
				}
				if err != nil {
					t.Error(err)
					return
				}
				defer inst.Close()
				tree, err := inst.Sample()
				if err != nil {
					t.Error(err)
					return
				}
				classes = tree.EquivalenceClasses()
			}})
		})
		sim.Run()
		return classes
	}
	want := sample(false, 0)
	for _, fanout := range []int{0, 2, 3} {
		got := sample(true, fanout)
		if len(got) != len(want) {
			t.Fatalf("fanout %d: %d classes vs %d over TBON", fanout, len(got), len(want))
		}
		for i := range want {
			if got[i].Path != want[i].Path || len(got[i].Ranks) != len(want[i].Ranks) {
				t.Fatalf("fanout %d class %d: %+v vs %+v", fanout, i, got[i], want[i])
			}
			for j := range want[i].Ranks {
				if got[i].Ranks[j] != want[i].Ranks[j] {
					t.Fatalf("fanout %d class %d rank set diverges", fanout, i)
				}
			}
		}
	}
}

// TestCollectiveModeRepeatedWaves drives several sampling waves over one
// collective-mode instance (each wave is one broadcast + one reduction).
func TestCollectiveModeRepeatedWaves(t *testing.T) {
	sim, cl, mgr, _ := rig(t, 4)
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "stat_fe", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
			if err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(time.Second)
			inst, err := LaunchCollective(p, j.ID(), 2)
			if err != nil {
				t.Error(err)
				return
			}
			defer inst.Close()
			for wave := 0; wave < 3; wave++ {
				tree, err := inst.Sample()
				if err != nil {
					t.Errorf("wave %d: %v", wave, err)
					return
				}
				if tree.Tasks() != 8 {
					t.Errorf("wave %d sampled %d tasks", wave, tree.Tasks())
				}
			}
		}})
	})
	sim.Run()
}

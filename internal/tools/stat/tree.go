package stat

import (
	"fmt"
	"sort"
	"strings"

	"launchmon/internal/lmonp"
)

// Tree is a call-graph prefix tree: stack traces from many tasks merged so
// that common prefixes share nodes and each node records which ranks
// reached it. Leaf membership defines the process equivalence classes
// STAT reports (tasks with identical full call paths behave alike and can
// be debugged through one representative).
type Tree struct {
	Frame    string           // function name ("" at the root)
	Ranks    []int            // ranks whose stacks pass through this node (sorted)
	Children map[string]*Tree // keyed by child frame name
}

// NewTree returns an empty root.
func NewTree() *Tree {
	return &Tree{Children: make(map[string]*Tree)}
}

// AddStack inserts one task's stack trace (outermost frame first).
func (t *Tree) AddStack(rank int, frames []string) {
	node := t
	node.Ranks = insertRank(node.Ranks, rank)
	for _, f := range frames {
		child, ok := node.Children[f]
		if !ok {
			child = &Tree{Frame: f, Children: make(map[string]*Tree)}
			node.Children[f] = child
		}
		child.Ranks = insertRank(child.Ranks, rank)
		node = child
	}
}

func insertRank(ranks []int, r int) []int {
	i := sort.SearchInts(ranks, r)
	if i < len(ranks) && ranks[i] == r {
		return ranks
	}
	ranks = append(ranks, 0)
	copy(ranks[i+1:], ranks[i:])
	ranks[i] = r
	return ranks
}

// Merge folds other into t (associative, commutative up to rank order).
func (t *Tree) Merge(other *Tree) {
	for _, r := range other.Ranks {
		t.Ranks = insertRank(t.Ranks, r)
	}
	for name, oc := range other.Children {
		tc, ok := t.Children[name]
		if !ok {
			t.Children[name] = oc
			continue
		}
		tc.Merge(oc)
	}
}

// Tasks returns the number of distinct ranks in the tree.
func (t *Tree) Tasks() int { return len(t.Ranks) }

// EquivalenceClasses returns the rank sets of all maximal call paths
// (leaves), sorted by descending size then by path — STAT's process
// equivalence classes.
func (t *Tree) EquivalenceClasses() []Class {
	var out []Class
	var walk func(n *Tree, path []string)
	walk = func(n *Tree, path []string) {
		if len(n.Children) == 0 {
			if n.Frame != "" || len(path) > 0 {
				out = append(out, Class{Path: strings.Join(path, ">"), Ranks: append([]int(nil), n.Ranks...)})
			}
			return
		}
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			walk(n.Children[name], append(path, name))
		}
	}
	walk(t, nil)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Ranks) != len(out[j].Ranks) {
			return len(out[i].Ranks) > len(out[j].Ranks)
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Class is one process equivalence class: the tasks sharing a full call
// path.
type Class struct {
	Path  string
	Ranks []int
}

// Representative returns the lowest rank of the class — the task a full
// debugger would attach to.
func (c Class) Representative() int {
	if len(c.Ranks) == 0 {
		return -1
	}
	return c.Ranks[0]
}

// String renders the class compactly.
func (c Class) String() string {
	return fmt.Sprintf("%4d tasks  rep=%-5d  %s", len(c.Ranks), c.Representative(), c.Path)
}

// Encode renders the tree for TBŌN transport.
func (t *Tree) Encode() []byte {
	var b []byte
	b = lmonp.AppendString(b, t.Frame)
	b = lmonp.AppendUint32(b, uint32(len(t.Ranks)))
	for _, r := range t.Ranks {
		b = lmonp.AppendUint32(b, uint32(r))
	}
	names := make([]string, 0, len(t.Children))
	for name := range t.Children {
		names = append(names, name)
	}
	sort.Strings(names)
	b = lmonp.AppendUint32(b, uint32(len(names)))
	for _, name := range names {
		b = lmonp.AppendBytes(b, t.Children[name].Encode())
	}
	return b
}

// DecodeTree parses an encoded tree.
func DecodeTree(raw []byte) (*Tree, error) {
	t, err := decodeTree(lmonp.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("stat: decode tree: %w", err)
	}
	return t, nil
}

func decodeTree(rd *lmonp.Reader) (*Tree, error) {
	t := NewTree()
	var err error
	if t.Frame, err = rd.String(); err != nil {
		return nil, err
	}
	nr, err := rd.Uint32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nr; i++ {
		r, err := rd.Uint32()
		if err != nil {
			return nil, err
		}
		t.Ranks = append(t.Ranks, int(r))
	}
	nc, err := rd.Uint32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nc; i++ {
		raw, err := rd.Bytes()
		if err != nil {
			return nil, err
		}
		child, err := decodeTree(lmonp.NewReader(raw))
		if err != nil {
			return nil, err
		}
		t.Children[child.Frame] = child
	}
	return t, nil
}

package stat

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddStackAndClasses(t *testing.T) {
	tr := NewTree()
	tr.AddStack(0, []string{"main", "a", "x"})
	tr.AddStack(1, []string{"main", "a", "x"})
	tr.AddStack(2, []string{"main", "b"})
	classes := tr.EquivalenceClasses()
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(classes))
	}
	if classes[0].Path != "main>a>x" || len(classes[0].Ranks) != 2 {
		t.Fatalf("largest class = %+v", classes[0])
	}
	if classes[1].Path != "main>b" || classes[1].Representative() != 2 {
		t.Fatalf("second class = %+v", classes[1])
	}
}

func TestMergeEquivalentToCombinedInsert(t *testing.T) {
	a, b, both := NewTree(), NewTree(), NewTree()
	stacks := map[int][]string{
		0: {"main", "compute"},
		1: {"main", "compute"},
		2: {"main", "io", "write"},
		3: {"main", "io", "read"},
	}
	for r, s := range stacks {
		both.AddStack(r, s)
		if r%2 == 0 {
			a.AddStack(r, s)
		} else {
			b.AddStack(r, s)
		}
	}
	a.Merge(b)
	if !reflect.DeepEqual(a.EquivalenceClasses(), both.EquivalenceClasses()) {
		t.Fatalf("merged classes differ:\n%v\n%v", a.EquivalenceClasses(), both.EquivalenceClasses())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := NewTree()
	for r := 0; r < 20; r++ {
		tr.AddStack(r, StackFor(r))
	}
	out, err := DecodeTree(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.EquivalenceClasses(), out.EquivalenceClasses()) {
		t.Fatal("roundtrip changed equivalence classes")
	}
	if out.Tasks() != 20 {
		t.Fatalf("tasks = %d", out.Tasks())
	}
}

func TestDecodeCorrupt(t *testing.T) {
	tr := NewTree()
	tr.AddStack(0, []string{"main"})
	enc := tr.Encode()
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeTree(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestStackForDeterministicClasses(t *testing.T) {
	// The synthetic profile has exactly three behaviours.
	tr := NewTree()
	for r := 0; r < 1000; r++ {
		tr.AddStack(r, StackFor(r))
	}
	classes := tr.EquivalenceClasses()
	if len(classes) != 3 {
		t.Fatalf("synthetic profile yields %d classes, want 3", len(classes))
	}
	total := 0
	for _, c := range classes {
		total += len(c.Ranks)
	}
	if total != 1000 {
		t.Fatalf("classes cover %d ranks, want 1000", total)
	}
	// The MPI-wait class dominates (the STAT motivation).
	if classes[0].Path != "main>solver_loop>exchange_halo>mpi_waitall>poll_cq" {
		t.Fatalf("dominant class = %s", classes[0].Path)
	}
}

// Property: merging any partition of stacks equals inserting them all into
// one tree (associativity of the TBŌN filter).
func TestPropertyMergeAssociative(t *testing.T) {
	f := func(split []bool) bool {
		if len(split) == 0 {
			return true
		}
		if len(split) > 200 {
			split = split[:200]
		}
		a, b, both := NewTree(), NewTree(), NewTree()
		for r, left := range split {
			s := StackFor(r)
			both.AddStack(r, s)
			if left {
				a.AddStack(r, s)
			} else {
				b.AddStack(r, s)
			}
		}
		merged := mergeFilter(mergeFilter(nil, a.Encode()), b.Encode())
		tr, err := DecodeTree(merged)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr.EquivalenceClasses(), both.EquivalenceClasses())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank insertion keeps Ranks sorted and deduplicated.
func TestPropertyInsertRank(t *testing.T) {
	f := func(rs []uint8) bool {
		var ranks []int
		seen := map[int]bool{}
		for _, r := range rs {
			ranks = insertRank(ranks, int(r))
			seen[int(r)] = true
		}
		if len(ranks) != len(seen) {
			return false
		}
		for i := 1; i < len(ranks); i++ {
			if ranks[i] <= ranks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

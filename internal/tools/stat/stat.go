// Package stat reproduces the Stack Trace Analysis Tool case study
// (paper §5.2): lightweight daemons sample stack traces from every task of
// a parallel job, merge them into a call-graph prefix tree over an
// MRNet-like TBŌN (internal/tbon), and report process equivalence classes.
//
// Two start-up paths match Figure 6:
//
//   - MRNet-native: the front end launches the stack-sampling daemons
//     itself through rsh, sequentially — slow, and failing outright at
//     512 nodes when the front end can no longer fork; and
//   - LaunchMON: attach/launchAndSpawn places the daemons through the RM,
//     and the MRNet connection information (the parent address that was
//     previously passed via command lines or a shared file) is broadcast
//     to the daemons as piggybacked tool data.
package stat

import (
	"fmt"
	"strconv"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/rsh"
	"launchmon/internal/tbon"
)

// Registered executable names.
const (
	BEExe       = "stat_be"      // LaunchMON-launched daemon (TBŌN overlay)
	NativeBEExe = "stat_be_rsh"  // rsh-launched daemon (native MRNet path)
	CollBEExe   = "stat_be_coll" // daemon sampling over the collective plane
	FilterName  = "stat-merge"   // prefix-tree merge (TBŌN and coll registries)
)

// SampleCost is the daemon-side cost of walking one task's stack.
const SampleCost = 400 * time.Microsecond

// DaemonInitCost models the stack-sampling daemon's startup (loading the
// stackwalker runtime, attaching to local tasks), paid in parallel across
// nodes before the daemon joins the overlay.
const DaemonInitCost = 300 * time.Millisecond

// Install registers STAT's daemons and the prefix-tree merge filter —
// with both overlays: the MRNet-like TBŌN and the session's own
// collective plane, where interior ICCL daemons run the merge.
func Install(cl *cluster.Cluster, cfg tbon.Config) {
	tbon.RegisterFilter(FilterName, mergeFilter)
	coll.RegisterFilter(FilterName, func(string) (coll.Combine, error) {
		return func(acc, next []byte) ([]byte, error) {
			if acc == nil {
				return append([]byte(nil), next...), nil
			}
			return mergeFilter(acc, next), nil
		}, nil
	})
	cl.Register(BEExe, func(p *cluster.Proc) { beMainLaunchMON(p) })
	cl.Register(NativeBEExe, func(p *cluster.Proc) { beMainNative(p) })
	cl.Register(CollBEExe, func(p *cluster.Proc) { beMainCollective(p) })
}

// mergeFilter merges two encoded prefix trees.
func mergeFilter(a, b []byte) []byte {
	if a == nil {
		return b
	}
	ta, errA := DecodeTree(a)
	tb, errB := DecodeTree(b)
	if errA != nil || errB != nil {
		return a
	}
	ta.Merge(tb)
	return ta.Encode()
}

// StackFor synthesizes the call stack of a task: a deterministic profile
// with a handful of behaviour classes (the shape STAT's intro motivates —
// most tasks wait in MPI while a few diverge).
func StackFor(rank int) []string {
	base := []string{"main", "solver_loop"}
	switch {
	case rank%17 == 3:
		return append(base, "io_checkpoint", "write_block", "posix_write")
	case rank%5 == 1:
		return append(base, "compute_kernel", "dgemm_inner")
	default:
		return append(base, "exchange_halo", "mpi_waitall", "poll_cq")
	}
}

// serveSampling answers TBŌN sample requests for the given local ranks.
func serveSampling(p *cluster.Proc, leaf *tbon.Leaf, ranks []int) {
	for {
		pkt, err := leaf.Recv()
		if err != nil {
			return
		}
		local := NewTree()
		for _, r := range ranks {
			p.Compute(SampleCost)
			local.AddStack(r, StackFor(r))
		}
		pkt.Data = local.Encode()
		if err := leaf.Send(pkt); err != nil {
			return
		}
	}
}

// beMainLaunchMON is the LaunchMON-launched STAT daemon: BEInit supplies
// the local tasks and the piggybacked MRNet parent address.
func beMainLaunchMON(p *cluster.Proc) {
	be, err := core.BEInit(p)
	if err != nil {
		return
	}
	p.Compute(DaemonInitCost)
	parentAddr := string(be.FEData())
	leaf, err := tbon.ConnectLeaf(p, parentAddr, be.Rank())
	if err != nil {
		return
	}
	defer leaf.Close()
	ranks := make([]int, 0, len(be.MyProctab()))
	for _, d := range be.MyProctab() {
		ranks = append(ranks, d.Rank)
	}
	serveSampling(p, leaf, ranks)
}

// beMainCollective is the STAT daemon of the collective-plane mode: no
// separate overlay at all — sample requests arrive as session broadcasts
// and the prefix trees merge inside the ICCL tree via the stat-merge
// reduction filter, so STAT needs nothing beyond LaunchMON itself.
func beMainCollective(p *cluster.Proc) {
	be, err := core.BEInit(p)
	if err != nil {
		return
	}
	p.Compute(DaemonInitCost)
	ranks := make([]int, 0, len(be.MyProctab()))
	for _, d := range be.MyProctab() {
		ranks = append(ranks, d.Rank)
	}
	for {
		req, err := be.Collective().Broadcast()
		if err != nil || string(req) == "quit" {
			be.Finalize()
			return
		}
		local := NewTree()
		for _, r := range ranks {
			p.Compute(SampleCost)
			local.AddStack(r, StackFor(r))
		}
		if err := be.Collective().Reduce(local.Encode(), FilterName); err != nil {
			return
		}
	}
}

// beMainNative is the rsh-launched daemon: everything arrives through the
// environment (the old mechanism the paper replaces), including the task
// ranks via STAT_RANKS.
func beMainNative(p *cluster.Proc) {
	rank, err := strconv.Atoi(p.Env(tbon.EnvRank))
	if err != nil {
		return
	}
	p.Compute(DaemonInitCost)
	leaf, err := tbon.ConnectLeaf(p, p.Env(tbon.EnvParent), rank)
	if err != nil {
		return
	}
	defer leaf.Close()
	var ranks []int
	for _, s := range splitCSV(p.Env("STAT_RANKS")) {
		if r, err := strconv.Atoi(s); err == nil {
			ranks = append(ranks, r)
		}
	}
	serveSampling(p, leaf, ranks)
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// Instance is a running STAT session.
type Instance struct {
	p          *cluster.Proc
	fe         *tbon.FrontEnd // nil in collective mode
	sess       *core.Session  // nil in native mode
	collective bool           // sampling rides the session's collective plane

	// StartupTime is the launch+connect duration (Figure 6's metric).
	StartupTime time.Duration
}

// LaunchWithLaunchMON attaches STAT to a running job via LaunchMON,
// broadcasting the TBŌN parent address as piggybacked tool data, and waits
// for all daemons to connect (1-deep topology).
func LaunchWithLaunchMON(p *cluster.Proc, jobID int, cfg tbon.Config) (*Instance, error) {
	start := p.Sim().Now()
	fe, err := tbon.NewFrontEnd(p, cfg)
	if err != nil {
		return nil, err
	}
	sess, err := core.AttachAndSpawn(p, core.Options{
		JobID:  jobID,
		Daemon: rm.DaemonSpec{Exe: BEExe},
		FEData: []byte(fe.Addr()),
	})
	if err != nil {
		fe.Close()
		return nil, fmt.Errorf("stat: %w", err)
	}
	n := len(sess.Daemons())
	if err := fe.AcceptChildren(n); err != nil {
		fe.Close()
		return nil, err
	}
	return &Instance{p: p, fe: fe, sess: sess, StartupTime: p.Sim().Now() - start}, nil
}

// LaunchCollective attaches STAT to a running job with no overlay
// network at all: sampling waves ride the session's collective plane
// (broadcast request, stat-merge tree reduction), merged at interior
// ICCL daemons exactly as an MRNet filter would — the paper's "MRNet on
// LaunchMON" layering collapsed into LaunchMON itself. fanout shapes the
// merge tree (0 = flat).
func LaunchCollective(p *cluster.Proc, jobID, fanout int) (*Instance, error) {
	start := p.Sim().Now()
	sess, err := core.AttachAndSpawn(p, core.Options{
		JobID:      jobID,
		Daemon:     rm.DaemonSpec{Exe: CollBEExe},
		ICCLFanout: fanout,
	})
	if err != nil {
		return nil, fmt.Errorf("stat: %w", err)
	}
	return &Instance{p: p, sess: sess, collective: true, StartupTime: p.Sim().Now() - start}, nil
}

// LaunchWithRsh starts STAT the pre-LaunchMON way: sequential rsh daemon
// launch with per-node configuration passed through the environment. tab
// maps node names to their task ranks (previously a shared file or long
// command lines).
func LaunchWithRsh(p *cluster.Proc, svc *rsh.Service, nodes []string, ranksPerNode map[string][]int, cfg tbon.Config) (*Instance, error) {
	start := p.Sim().Now()
	fe, err := tbon.NewFrontEnd(p, cfg)
	if err != nil {
		return nil, err
	}
	envs := make([]map[string]string, len(nodes))
	for i, node := range nodes {
		csv := ""
		for j, r := range ranksPerNode[node] {
			if j > 0 {
				csv += ","
			}
			csv += strconv.Itoa(r)
		}
		envs[i] = map[string]string{
			tbon.EnvParent: fe.Addr(),
			tbon.EnvRank:   strconv.Itoa(i),
			"STAT_RANKS":   csv,
		}
	}
	if err := svc.Spawn(p, nodes, NativeBEExe, nil, envs); err != nil {
		fe.Close()
		return nil, fmt.Errorf("stat: native launch: %w", err)
	}
	if err := fe.AcceptChildren(len(nodes)); err != nil {
		fe.Close()
		return nil, err
	}
	return &Instance{p: p, fe: fe, StartupTime: p.Sim().Now() - start}, nil
}

// Sample performs one stack-sample wave and returns the merged call-graph
// prefix tree — over the TBŌN in overlay modes, over the session's
// collective plane in collective mode.
func (in *Instance) Sample() (*Tree, error) {
	if in.collective {
		if err := in.sess.Broadcast([]byte("sample")); err != nil {
			return nil, err
		}
		raw, err := in.sess.Reduce()
		if err != nil {
			return nil, err
		}
		return DecodeTree(raw)
	}
	raw, err := in.fe.Request(tbon.Packet{Stream: 1, Tag: 1, Filter: FilterName})
	if err != nil {
		return nil, err
	}
	return DecodeTree(raw)
}

// Close shuts the session down (daemons observe EOF — or, in collective
// mode, the quit broadcast — and exit).
func (in *Instance) Close() {
	if in.collective {
		in.sess.Broadcast([]byte("quit")) // best effort
		in.sess.Detach()
		return
	}
	in.fe.Close()
	if in.sess != nil {
		in.sess.Detach()
	}
}

// Package tools groups the paper's three case-study tools (§5), each a
// complete front-end/back-end program built solely on the public LaunchMON
// surface of internal/core:
//
//   - tools/jobsnap — Jobsnap (§5.1): per-task /proc-style snapshots of a
//     running MPI job, gathered over the collective tool-data plane;
//   - tools/stat — the Stack Trace Analysis Tool (§5.2): stack sampling
//     with prefix-tree merging over an MRNet-like TBŌN, plus the
//     collective-plane variant that registers the merge as a reduction
//     filter; and
//   - tools/oss — Open|SpeedShop (§5.3): the DPCL-vs-LaunchMON APAI
//     acquisition comparison of Table 1.
//
// The tools double as integration tests of the launch pipeline: each one
// attaches or launches through a Session, learns the RPDTAB at its
// daemons, and moves bulk data without private fan-in code.
package tools

package jobsnap

import (
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

func rig(t *testing.T, nodes int) (*vtime.Sim, *cluster.Cluster, rm.Manager) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	core.Setup(cl, mgr)
	Install(cl)
	return sim, cl, mgr
}

func runJobsnap(t *testing.T, nodes, tpn int) Result {
	t.Helper()
	sim, cl, mgr := rig(t, nodes)
	var res Result
	var runErr error
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "jobsnap_fe", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "mpiapp", Nodes: nodes, TasksPerNode: tpn})
			if err != nil {
				runErr = err
				return
			}
			p.Sim().Sleep(5 * time.Second) // job runs a while before the snapshot
			res, runErr = Run(p, j.ID())
		}})
	})
	sim.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res
}

func TestReportOneLinePerTask(t *testing.T) {
	res := runJobsnap(t, 6, 4)
	if res.Lines != 24 {
		t.Fatalf("report has %d lines, want 24\n%s", res.Lines, res.Report)
	}
	rows := strings.Split(strings.TrimRight(res.Report, "\n"), "\n")
	if !strings.Contains(rows[0], "rank") || !strings.Contains(rows[0], "vmhwm") {
		t.Fatalf("missing header: %q", rows[0])
	}
	// Ranks appear in order 0..23 and carry the app name and a valid state.
	for i, row := range rows[1:] {
		fields := strings.Fields(row)
		if fields[0] != itoa(i) {
			t.Fatalf("row %d starts with rank %s", i, fields[0])
		}
		if fields[2] != "mpiapp" {
			t.Fatalf("row %d exe = %s", i, fields[2])
		}
		if fields[4] != "R" && fields[4] != "T" {
			t.Fatalf("row %d state = %s", i, fields[4])
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

func TestTimingDecomposition(t *testing.T) {
	res := runJobsnap(t, 8, 8)
	if res.LaunchTime <= 0 || res.Total <= 0 {
		t.Fatalf("timings not positive: %+v", res)
	}
	if res.LaunchTime > res.Total {
		t.Fatalf("launch time %v exceeds total %v", res.LaunchTime, res.Total)
	}
	// Per Figure 5, the LaunchMON portion dominates the total.
	if float64(res.LaunchTime) < 0.5*float64(res.Total) {
		t.Fatalf("launch share %v of %v unexpectedly small", res.LaunchTime, res.Total)
	}
}

func TestScalesWithDaemonCount(t *testing.T) {
	small := runJobsnap(t, 4, 8)
	big := runJobsnap(t, 16, 8)
	if big.Total <= small.Total {
		t.Fatalf("total time not increasing: %v (4 nodes) vs %v (16 nodes)", small.Total, big.Total)
	}
	// Sub-linear in daemons thanks to the parallel RM launch: 4x daemons
	// must cost well under 4x time.
	if float64(big.Total) > 3.5*float64(small.Total) {
		t.Fatalf("jobsnap scaling poor: %v -> %v", small.Total, big.Total)
	}
}

func TestDetachLeavesJobIntact(t *testing.T) {
	sim, cl, mgr := rig(t, 4)
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "jobsnap_fe", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "mpiapp", Nodes: 4, TasksPerNode: 2})
			if err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(2 * time.Second)
			if _, err := Run(p, j.ID()); err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(time.Second)
			// Tasks (2) + slurmd still present; jobsnap daemons gone.
			for i := 0; i < 4; i++ {
				if got := cl.Node(i).NumProcs(); got != 3 {
					t.Errorf("node%d has %d procs after jobsnap, want 3", i, got)
				}
			}
		}})
	})
	sim.Run()
}

func TestSnapshotConsistentAcrossRuns(t *testing.T) {
	// Two runs at the same virtual times produce identical reports
	// (deterministic simulation).
	r1 := runJobsnap(t, 4, 4)
	r2 := runJobsnap(t, 4, 4)
	if r1.Report != r2.Report {
		t.Fatal("reports differ across identical runs")
	}
	if r1.Total != r2.Total {
		t.Fatalf("timings differ: %v vs %v", r1.Total, r2.Total)
	}
}

package jobsnap

import (
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
)

// TestFigure4OperationSequence walks the exact operation sequence of the
// paper's Figure 4 with explicit assertions at each step:
//
//	fe: init → createFEBESession/attachAndSpawnDaemons → block in the
//	    collective gather until every daemon contributed ("work-done") →
//	    merge → detach
//	be: init → handshake/ready → collect per-task info → contribute to
//	    the tree-routed gather
func TestFigure4OperationSequence(t *testing.T) {
	sim, cl, mgr := rig(t, 4)
	const tpn = 3
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "jobsnap_fe", Main: func(p *cluster.Proc) {
			job, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: tpn})
			if err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(2 * time.Second)

			// Step 1: attachAndSpawnDaemons returns with the session up
			// and the RPDTAB known — before any work-done arrives.
			sess, err := core.AttachAndSpawn(p, core.Options{
				JobID:  job.ID(),
				Daemon: rm.DaemonSpec{Exe: BEExe},
			})
			if err != nil {
				t.Error(err)
				return
			}
			attachDone := p.Sim().Now()
			if len(sess.Proctab()) != 4*tpn {
				t.Errorf("proctab %d entries at attach return", len(sess.Proctab()))
			}
			if len(sess.Daemons()) != 4 {
				t.Errorf("%d daemons at attach return", len(sess.Daemons()))
			}

			// Steps 2-4 happen in the daemons; the FE blocks in the
			// collective gather until every daemon's contribution arrived
			// (the "work-done" point), then merges the report locally.
			blobs, err := sess.Gather()
			if err != nil {
				t.Error(err)
				return
			}
			workDone := p.Sim().Now()
			if workDone < attachDone {
				t.Error("work-done before attach returned")
			}
			if len(blobs) != 4 {
				t.Errorf("gathered %d contributions, want 4", len(blobs))
			}
			report, err := MergeReport(blobs)
			if err != nil {
				t.Error(err)
				return
			}
			lines := strings.Count(report, "\n") - 1
			if lines != 4*tpn {
				t.Errorf("report has %d lines, want %d", lines, 4*tpn)
			}

			// Final step: detach; the job must survive.
			if err := sess.Detach(); err != nil {
				t.Error(err)
				return
			}
			p.Sim().Sleep(time.Second)
			for i := 0; i < 4; i++ {
				// tpn tasks + slurmd per node; jobsnap daemons gone.
				if got := cl.Node(i).NumProcs(); got != tpn+1 {
					t.Errorf("node%d has %d procs after detach, want %d", i, got, tpn+1)
				}
			}
		}})
	})
	sim.Run()
}

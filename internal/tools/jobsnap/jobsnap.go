// Package jobsnap implements Jobsnap (paper §5.1): the first portable,
// scalable tool for gathering the information normally read through
// /proc for every MPI task of a running job — task personality (rank,
// executable), scheduler state (state, program counter, thread count),
// memory statistics (virtual/physical high water mark, locked memory) and
// simple performance metrics (user time, system time, major page faults)
// — presented one line per task.
//
// The tool is deliberately thin (the paper reports ~100 lines of front-end
// and ~500 lines of back-end code): the front end attachAndSpawns
// lightweight daemons, each daemon snapshots its local tasks from the
// RPDTAB and contributes it to the session's collective gather; the
// contributions stream to the front end over the ICCL tree (interior
// daemons forward bounded-size chunks — nothing funnels monolithically
// through the master), where the merged report is the "work-done" result
// of Figure 4's operation sequence.
package jobsnap

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
)

// BEExe is the registered executable name of the Jobsnap back-end daemon.
const BEExe = "jobsnap_be"

// Install registers the Jobsnap back-end executable on the cluster.
func Install(cl *cluster.Cluster) {
	cl.Register(BEExe, beMain)
}

// Line is one task's snapshot, merged at the master.
type Line struct {
	Rank    int
	Host    string
	Exe     string
	Pid     int
	State   string
	PC      uint64
	Threads int
	VmHWMKB int64
	VmLckKB int64
	UtimeMS int64
	StimeMS int64
	MajFlt  int64
}

// Format renders the line in Jobsnap's column layout.
func (l Line) Format() string {
	return fmt.Sprintf("%6d %-10s %-12s %7d %2s %#x %3d %8dkB %5dkB %8dms %7dms %6d",
		l.Rank, l.Host, l.Exe, l.Pid, l.State, l.PC, l.Threads,
		l.VmHWMKB, l.VmLckKB, l.UtimeMS, l.StimeMS, l.MajFlt)
}

// Header is the report's column header.
const Header = "  rank host       exe              pid st pc        thr    vmhwm    vmlck     utime    stime majflt"

func encodeLine(l Line) []byte {
	b := lmonp.AppendUint32(nil, uint32(l.Rank))
	b = lmonp.AppendString(b, l.Host)
	b = lmonp.AppendString(b, l.Exe)
	b = lmonp.AppendUint32(b, uint32(l.Pid))
	b = lmonp.AppendString(b, l.State)
	b = lmonp.AppendUint64(b, l.PC)
	b = lmonp.AppendUint32(b, uint32(l.Threads))
	b = lmonp.AppendUint64(b, uint64(l.VmHWMKB))
	b = lmonp.AppendUint64(b, uint64(l.VmLckKB))
	b = lmonp.AppendUint64(b, uint64(l.UtimeMS))
	b = lmonp.AppendUint64(b, uint64(l.StimeMS))
	b = lmonp.AppendUint64(b, uint64(l.MajFlt))
	return b
}

func decodeLine(rd *lmonp.Reader) (Line, error) {
	var l Line
	r32, err := rd.Uint32()
	if err != nil {
		return l, err
	}
	l.Rank = int(r32)
	if l.Host, err = rd.String(); err != nil {
		return l, err
	}
	if l.Exe, err = rd.String(); err != nil {
		return l, err
	}
	p32, err := rd.Uint32()
	if err != nil {
		return l, err
	}
	l.Pid = int(p32)
	if l.State, err = rd.String(); err != nil {
		return l, err
	}
	if l.PC, err = rd.Uint64(); err != nil {
		return l, err
	}
	t32, err := rd.Uint32()
	if err != nil {
		return l, err
	}
	l.Threads = int(t32)
	vm, err := rd.Uint64()
	if err != nil {
		return l, err
	}
	l.VmHWMKB = int64(vm)
	lck, err := rd.Uint64()
	if err != nil {
		return l, err
	}
	l.VmLckKB = int64(lck)
	ut, err := rd.Uint64()
	if err != nil {
		return l, err
	}
	l.UtimeMS = int64(ut)
	st, err := rd.Uint64()
	if err != nil {
		return l, err
	}
	l.StimeMS = int64(st)
	mf, err := rd.Uint64()
	if err != nil {
		return l, err
	}
	l.MajFlt = int64(mf)
	return l, nil
}

// beMain is the Jobsnap back-end daemon (Figure 4, right column):
// LMON_be_init → handshake/ready (inside BEInit) → collect local task
// info → contribute it to the session's collective gather. The "work-done"
// report materializes at the front end as the gather completes.
func beMain(p *cluster.Proc) {
	be, err := core.BEInit(p)
	if err != nil {
		return
	}
	// Collect a snapshot per local task.
	mine := lmonp.AppendUint32(nil, uint32(len(be.MyProctab())))
	for _, d := range be.MyProctab() {
		var line Line
		if proc, ok := p.Node().Proc(d.Pid); ok {
			snap := proc.Snapshot()
			line = Line{
				Rank: d.Rank, Host: d.Host, Exe: d.Exe, Pid: d.Pid,
				State: snap.State, PC: snap.PC, Threads: snap.Threads,
				VmHWMKB: snap.VmHWMKB, VmLckKB: snap.VmLckKB,
				UtimeMS: snap.UtimeMS, StimeMS: snap.StimeMS, MajFlt: snap.MajFault,
			}
		} else {
			line = Line{Rank: d.Rank, Host: d.Host, Exe: d.Exe, Pid: d.Pid, State: "?"}
		}
		mine = lmonp.AppendBytes(mine, encodeLine(line))
	}
	if err := be.Collective().Gather(mine); err != nil {
		return
	}
	be.Finalize()
}

// MergeReport merges the per-daemon snapshot blobs of a Session.Gather
// into the final rank-sorted report.
func MergeReport(blobs [][]byte) (string, error) {
	lines := make([]Line, 0, 64)
	for _, blob := range blobs {
		rd := lmonp.NewReader(blob)
		n, err := rd.Uint32()
		if err != nil {
			return "", err
		}
		for i := uint32(0); i < n; i++ {
			raw, err := rd.Bytes()
			if err != nil {
				return "", err
			}
			l, err := decodeLine(lmonp.NewReader(raw))
			if err != nil {
				return "", err
			}
			lines = append(lines, l)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].Rank < lines[j].Rank })
	var sb strings.Builder
	sb.WriteString(Header)
	sb.WriteByte('\n')
	for _, l := range lines {
		sb.WriteString(l.Format())
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// Result is one Jobsnap run's output and timing decomposition (Figure 5
// reports Total and the init→attachAndSpawn share).
type Result struct {
	Report     string
	Lines      int
	Total      time.Duration // whole jobsnap operation
	LaunchTime time.Duration // init → attachAndSpawnDaemons return
}

// RunOptions tune a Jobsnap invocation.
type RunOptions struct {
	// Fanout selects the collection tree shape: 0 (the default) is the
	// flat 1-deep collection the paper measured; a k-ary tree implements
	// the paper's closing suggestion ("we are considering a TBŌN
	// architecture that would reduce the impact of collecting and printing
	// information from each back-end daemon") — with the collective plane,
	// interior daemons forward bounded chunks instead of the master
	// relaying one monolithic payload.
	Fanout int
}

// Run executes Jobsnap against a running job from the calling front-end
// process (Figure 4, left column).
func Run(p *cluster.Proc, jobID int) (Result, error) {
	return RunWithOptions(p, jobID, RunOptions{})
}

// RunWithOptions is Run with explicit collection-tree options.
func RunWithOptions(p *cluster.Proc, jobID int, opts RunOptions) (Result, error) {
	start := p.Sim().Now()
	sess, err := core.AttachAndSpawn(p, core.Options{
		JobID:      jobID,
		Daemon:     rm.DaemonSpec{Exe: BEExe},
		ICCLFanout: opts.Fanout,
	})
	if err != nil {
		return Result{}, fmt.Errorf("jobsnap: %w", err)
	}
	launchDone := p.Sim().Now()

	// Blocks until every daemon contributed — the "work-done" point.
	blobs, err := sess.Gather()
	if err != nil {
		return Result{}, err
	}
	report, err := MergeReport(blobs)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Report:     report,
		Total:      p.Sim().Now() - start,
		LaunchTime: launchDone - start,
	}
	res.Lines = strings.Count(res.Report, "\n") - 1 // minus header
	if err := sess.Detach(); err != nil {
		return res, err
	}
	return res, nil
}

// Package oss reproduces the Open|SpeedShop case study (paper §5.3): a
// parallel performance toolset whose Instrumentor component acquires the
// APAI information (the proctable) before experiments can start.
//
// Two Instrumentor implementations are provided, matching the paper's
// Table 1 comparison:
//
//   - DPCLInstrumentor — the original path: the persistent DPCL daemon
//     attaches to the RM launcher, parses its binary in full, then reads
//     the proctable, plus a per-node session setup (≈34 s, roughly flat
//     from 2 to 32 nodes); and
//   - LaunchMONInstrumentor — attachAndSpawn acquires the RPDTAB through
//     the engine and starts the (augmented) daemons directly, after which
//     O|SS's own runtime initializes (≈0.6 s, flat).
package oss

import (
	"fmt"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/dpcl"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
)

// BEExe is the registered executable of the LaunchMON-started O|SS daemon.
const BEExe = "ossd"

// DaemonInitCost models the O|SS daemon runtime bootstrap (DPCL runtime
// library init inside the daemon), paid in parallel across nodes.
const DaemonInitCost = 450 * time.Millisecond

// Install registers the O|SS daemon executable.
func Install(cl *cluster.Cluster) {
	cl.Register(BEExe, func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		p.Compute(DaemonInitCost)
		// Every daemon signals readiness through a sum-reduction on the
		// collective plane: the front end's Reduce completes only when the
		// whole tree has bootstrapped its DPCL runtime — a stronger
		// guarantee than the old master-only "oss-daemons-ready" message —
		// then the daemons wait for work (none in the benchmark scenario).
		if err := be.Collective().Reduce(lmonp.AppendUint64(nil, 1), "sum"); err != nil {
			return
		}
		be.Finalize()
	})
}

// Result reports one APAI acquisition measurement.
type Result struct {
	Proctab proctab.Table
	Elapsed time.Duration
}

// Instrumentor acquires APAI information for a running job.
type Instrumentor interface {
	Name() string
	// AcquireAPAI returns the job's proctable and the elapsed virtual time
	// between experiment initiation and APAI availability.
	AcquireAPAI(p *cluster.Proc, job rm.Job) (Result, error)
}

// DPCLInstrumentor is the original O|SS path over persistent daemons.
type DPCLInstrumentor struct {
	Svc *dpcl.Service
}

// Name implements Instrumentor.
func (d *DPCLInstrumentor) Name() string { return "dpcl" }

// AcquireAPAI implements Instrumentor: full binary parse of the RM
// launcher, proctable read, then per-node daemon sessions.
func (d *DPCLInstrumentor) AcquireAPAI(p *cluster.Proc, job rm.Job) (Result, error) {
	start := p.Sim().Now()
	launcher := job.LauncherProc()
	enc, err := d.Svc.APAIViaDPCL(p, launcher.Node().Name(), launcher.Pid())
	if err != nil {
		return Result{}, fmt.Errorf("oss/dpcl: %w", err)
	}
	tab, err := proctab.Decode(enc)
	if err != nil {
		return Result{}, err
	}
	// Widen the experiment: one session per application node, serial at
	// the O|SS front end.
	for _, host := range tab.Hosts() {
		if err := d.Svc.OpenNodeSession(p, host); err != nil {
			return Result{}, err
		}
	}
	return Result{Proctab: tab, Elapsed: p.Sim().Now() - start}, nil
}

// LaunchMONInstrumentor replaces O|SS's central Instrumentor class with
// LaunchMON (the paper's integration): attachAndSpawn acquires the RPDTAB
// and starts the augmented DPCL daemons directly.
type LaunchMONInstrumentor struct{}

// Name implements Instrumentor.
func (l *LaunchMONInstrumentor) Name() string { return "launchmon" }

// AcquireAPAI implements Instrumentor via attachAndSpawn.
func (l *LaunchMONInstrumentor) AcquireAPAI(p *cluster.Proc, job rm.Job) (Result, error) {
	start := p.Sim().Now()
	sess, err := core.AttachAndSpawn(p, core.Options{
		JobID:  job.ID(),
		Daemon: rm.DaemonSpec{Exe: BEExe},
	})
	if err != nil {
		return Result{}, fmt.Errorf("oss/launchmon: %w", err)
	}
	// The daemons bootstrap their DPCL runtime and report readiness
	// through the tree-combined sum; every daemon must check in.
	ready, err := sess.Reduce()
	if err != nil {
		return Result{}, err
	}
	count, err := lmonp.NewReader(ready).Uint64()
	if err != nil {
		return Result{}, fmt.Errorf("oss/launchmon: readiness sum: %w", err)
	}
	if count != uint64(len(sess.Daemons())) {
		return Result{}, fmt.Errorf("oss/launchmon: %d of %d daemons ready", count, len(sess.Daemons()))
	}
	return Result{Proctab: sess.Proctab(), Elapsed: p.Sim().Now() - start}, nil
}

package oss

import (
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/dpcl"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

func measure(t *testing.T, nodes int, which string) Result {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := dpcl.Install(cl, dpcl.Config{})
	if err != nil {
		t.Fatal(err)
	}
	core.Setup(cl, mgr)
	Install(cl)
	var inst Instrumentor
	if which == "dpcl" {
		inst = &DPCLInstrumentor{Svc: svc}
	} else {
		inst = &LaunchMONInstrumentor{}
	}
	var res Result
	var runErr error
	sim.Go("boot", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "oss_fe", Main: func(p *cluster.Proc) {
			j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 8})
			if err != nil {
				runErr = err
				return
			}
			p.Sim().Sleep(3 * time.Second)
			res, runErr = inst.AcquireAPAI(p, j)
		}})
	})
	sim.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return res
}

func TestBothPathsReturnSameProctab(t *testing.T) {
	d := measure(t, 4, "dpcl")
	l := measure(t, 4, "launchmon")
	if len(d.Proctab) != 32 || len(l.Proctab) != 32 {
		t.Fatalf("proctab sizes: dpcl=%d launchmon=%d, want 32", len(d.Proctab), len(l.Proctab))
	}
	if err := d.Proctab.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Proctab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDPCLDominatedByBinaryParse(t *testing.T) {
	res := measure(t, 2, "dpcl")
	if res.Elapsed < 33*time.Second || res.Elapsed > 36*time.Second {
		t.Fatalf("DPCL APAI access = %v, want ~34s", res.Elapsed)
	}
}

func TestLaunchMONSubSecond(t *testing.T) {
	res := measure(t, 2, "launchmon")
	if res.Elapsed < 400*time.Millisecond || res.Elapsed > 900*time.Millisecond {
		t.Fatalf("LaunchMON APAI access = %v, want ~0.6s", res.Elapsed)
	}
}

func TestBothRoughlyConstantAcrossScale(t *testing.T) {
	d2 := measure(t, 2, "dpcl").Elapsed
	d32 := measure(t, 32, "dpcl").Elapsed
	if d32 < d2 {
		t.Fatalf("DPCL time decreased with scale: %v -> %v", d2, d32)
	}
	if float64(d32) > 1.1*float64(d2) {
		t.Fatalf("DPCL time not ~constant: %v -> %v", d2, d32)
	}
	l2 := measure(t, 2, "launchmon").Elapsed
	l32 := measure(t, 32, "launchmon").Elapsed
	if float64(l32) > 1.4*float64(l2) {
		t.Fatalf("LaunchMON time not ~constant: %v -> %v", l2, l32)
	}
	// The headline: order(s) of magnitude apart at every scale.
	if d2 < 20*l2 || d32 < 20*l32 {
		t.Fatalf("DPCL/LaunchMON gap too small: %v vs %v, %v vs %v", d2, l2, d32, l32)
	}
}

package lmonp

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHeaderIs16Bytes(t *testing.T) {
	m := &Msg{Class: ClassFEBE, Type: TypeReady}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 16 {
		t.Fatalf("empty message wire size = %d, want 16", len(buf))
	}
}

func TestRoundTrip(t *testing.T) {
	in := &Msg{
		Class:   ClassFEEngine,
		Type:    TypeProctab,
		Flags:   0xBEEF,
		Seq:     42,
		Payload: []byte("launchmon-data"),
		UsrData: []byte("tool-data"),
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestClassIsThreeBits(t *testing.T) {
	for _, c := range []MsgClass{ClassFEEngine, ClassFEBE, ClassFEMW, 7} {
		m := &Msg{Class: c, Type: TypeReady}
		buf, _ := m.Encode()
		out, err := Read(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if out.Class != c {
			t.Errorf("class %d decoded as %d", c, out.Class)
		}
	}
}

func TestBadVersionRejected(t *testing.T) {
	m := &Msg{Class: ClassFEBE, Type: TypeReady}
	buf, _ := m.Encode()
	buf[0] = (buf[0] &^ 0x1f) | 9 // corrupt version bits
	if _, err := Read(bytes.NewReader(buf)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestOversizedLengthRejected(t *testing.T) {
	m := &Msg{Class: ClassFEBE, Type: TypeReady}
	buf, _ := m.Encode()
	buf[4], buf[5], buf[6], buf[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := Read(bytes.NewReader(buf)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestShortHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("err = %v, want ErrShortHeader", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	m := &Msg{Class: ClassFEBE, Type: TypeReady, Payload: []byte("0123456789")}
	buf, _ := m.Encode()
	if _, err := Read(bytes.NewReader(buf[:len(buf)-4])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestEOFOnEmptyStream(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestConnSequenceNumbers(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	for i := 1; i <= 3; i++ {
		if err := c.Send(&Msg{Class: ClassFEBE, Type: TypeReady}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewConn(&buf)
	for i := 1; i <= 3; i++ {
		m, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != uint32(i) {
			t.Fatalf("seq = %d, want %d", m.Seq, i)
		}
	}
}

func TestExpect(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.Send(&Msg{Class: ClassFEMW, Type: TypeHandshake})
	r := NewConn(&buf)
	if _, err := r.Expect(ClassFEMW, TypeHandshake); err != nil {
		t.Fatal(err)
	}
	c.Send(&Msg{Class: ClassFEMW, Type: TypeReady})
	if _, err := r.Expect(ClassFEBE, TypeReady); err == nil {
		t.Fatal("Expect accepted wrong class")
	}
}

func TestMultipleMessagesBackToBack(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Msg{
		{Class: ClassFEEngine, Type: TypeLaunchReq, Payload: []byte("a")},
		{Class: ClassFEBE, Type: TypeHandshake, UsrData: []byte("bb")},
		{Class: ClassFEMW, Type: TypeReady},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Class != want.Class || got.Type != want.Type ||
			!bytes.Equal(got.Payload, want.Payload) || !bytes.Equal(got.UsrData, want.UsrData) {
			t.Fatalf("msg %d mismatch", i)
		}
	}
}

// Property: encode/decode round-trips arbitrary payload pairs.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(class uint8, typ uint8, flags uint16, seq uint32, payload, usr []byte) bool {
		in := &Msg{
			Class:   MsgClass(class & 0x7),
			Type:    MsgType(typ),
			Flags:   flags,
			Seq:     seq,
			Payload: payload,
			UsrData: usr,
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		if out.Class != in.Class || out.Type != in.Type || out.Flags != in.Flags || out.Seq != in.Seq {
			return false
		}
		return bytes.Equal(out.Payload, in.Payload) && bytes.Equal(out.UsrData, in.UsrData)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireHelpersRoundTrip(t *testing.T) {
	b := AppendUint32(nil, 7)
	b = AppendUint64(b, 1<<40)
	b = AppendString(b, "hello")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendStringList(b, []string{"x", "", "zzz"})
	b = AppendStringMap(b, [][2]string{{"k1", "v1"}, {"k2", "v2"}})

	r := NewReader(b)
	if v, err := r.Uint32(); err != nil || v != 7 {
		t.Fatalf("Uint32 = %d, %v", v, err)
	}
	if v, err := r.Uint64(); err != nil || v != 1<<40 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if s, err := r.String(); err != nil || s != "hello" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if p, err := r.Bytes(); err != nil || !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v, %v", p, err)
	}
	if ss, err := r.StringList(); err != nil || !reflect.DeepEqual(ss, []string{"x", "", "zzz"}) {
		t.Fatalf("StringList = %v, %v", ss, err)
	}
	if kv, err := r.StringMap(); err != nil || len(kv) != 2 || kv[1][1] != "v2" {
		t.Fatalf("StringMap = %v, %v", kv, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
}

func TestReaderTruncation(t *testing.T) {
	full := AppendString(nil, "hello")
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		if _, err := r.String(); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Hostile list count must not over-allocate or succeed.
	bad := AppendUint32(nil, 1<<30)
	if _, err := NewReader(bad).StringList(); err == nil {
		t.Fatal("hostile list count accepted")
	}
	if _, err := NewReader(bad).StringMap(); err == nil {
		t.Fatal("hostile map count accepted")
	}
}

// Property: wire helper string lists round-trip.
func TestPropertyStringList(t *testing.T) {
	f := func(ss []string) bool {
		b := AppendStringList(nil, ss)
		out, err := NewReader(b).StringList()
		if err != nil {
			return false
		}
		if len(out) != len(ss) {
			return false
		}
		for i := range ss {
			if out[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

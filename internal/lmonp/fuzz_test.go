package lmonp

import (
	"bytes"
	"testing"
)

// FuzzReader drives every Reader accessor over arbitrary bytes: no input
// may panic, and a successful read must consume a plausible number of
// bytes (never more than were available).
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendString(nil, "hello"))
	f.Add(AppendStringList(nil, []string{"a", "bb", ""}))
	f.Add(AppendStringMap(nil, [][2]string{{"k", "v"}}))
	f.Add(AppendBytes(AppendUint32(AppendUint64(nil, 1<<40), 7), []byte{1, 2, 3}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                         // absurd count
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x01}) // list claiming 2 entries, 4 bytes left

	f.Fuzz(func(t *testing.T, data []byte) {
		// Each accessor on its own Reader over the same input.
		r := NewReader(data)
		if s, err := r.String(); err == nil && len(s) > len(data) {
			t.Fatalf("String longer than input: %d > %d", len(s), len(data))
		}
		r = NewReader(data)
		if b, err := r.Bytes(); err == nil && len(b) > len(data) {
			t.Fatalf("Bytes longer than input")
		}
		r = NewReader(data)
		if ss, err := r.StringList(); err == nil {
			// n entries need at least 4 bytes each after the count.
			if len(ss)*4 > len(data)-4 {
				t.Fatalf("list of %d entries decoded from %d bytes", len(ss), len(data))
			}
		}
		r = NewReader(data)
		if kv, err := r.StringMap(); err == nil {
			if len(kv)*8 > len(data)-4 {
				t.Fatalf("map of %d entries decoded from %d bytes", len(kv), len(data))
			}
		}
		// A mixed sequence must keep Remaining consistent.
		r = NewReader(data)
		for r.Remaining() > 0 {
			before := r.Remaining()
			if _, err := r.Uint32(); err != nil {
				break
			}
			if r.Remaining() >= before {
				t.Fatal("Uint32 consumed nothing")
			}
		}
	})
}

// TestLengthGuardBoundaries pins the exact count guards: a count whose
// minimum encoding cannot fit in the remaining bytes must be rejected,
// while one that exactly fits must decode.
func TestLengthGuardBoundaries(t *testing.T) {
	// List claiming 1 entry with zero bytes left: impossible.
	if _, err := NewReader(AppendUint32(nil, 1)).StringList(); err == nil {
		t.Error("list count 1 with 0 remaining bytes accepted")
	}
	// Map claiming 1 entry with only 4 bytes left (needs >= 8).
	if _, err := NewReader(AppendUint32(AppendUint32(nil, 1), 0)).StringMap(); err == nil {
		t.Error("map count 1 with 4 remaining bytes accepted")
	}
	// Exactly-fitting boundary: n empty strings in exactly 4n bytes.
	ok := AppendStringList(nil, []string{"", "", ""})
	if ss, err := NewReader(ok).StringList(); err != nil || len(ss) != 3 {
		t.Errorf("exact-fit list rejected: %v, %v", ss, err)
	}
	okMap := AppendStringMap(nil, [][2]string{{"", ""}})
	if kv, err := NewReader(okMap).StringMap(); err != nil || len(kv) != 1 {
		t.Errorf("exact-fit map rejected: %v, %v", kv, err)
	}
}

// FuzzMsgRead feeds arbitrary bytes to the LMONP message decoder and
// round-trips whatever decodes cleanly.
func FuzzMsgRead(f *testing.F) {
	ok, _ := (&Msg{Class: ClassFEBE, Type: TypeHandshake, Payload: []byte("p"), UsrData: []byte("u")}).Encode()
	f.Add(ok)
	f.Add(ok[:HeaderSize-1])
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.WireSize() > len(data) {
			t.Fatalf("decoded %d wire bytes from %d input bytes", m.WireSize(), len(data))
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		back, err := Read(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Class != m.Class || back.Type != m.Type || !bytes.Equal(back.Payload, m.Payload) {
			t.Fatal("roundtrip mismatch")
		}
	})
}

package lmonp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file provides the compact binary encoders LaunchMON uses inside
// LMONP payload sections: length-prefixed strings, string lists, and
// key/value maps. They are deliberately simple and allocation-conscious —
// payload sizes feed the performance model (RPDTAB and handshake message
// sizes grow linearly with job scale), so the encodings must be faithful
// to what a C implementation would ship.

// ErrTruncated reports a payload shorter than its own length fields claim.
var ErrTruncated = errors.New("lmonp: truncated field")

// WriteFrame writes a 32-bit length-prefixed payload as one Write call
// (one simulated network message). It is the request/response framing used
// by RM-internal and ICCL traffic that does not need a full LMONP header.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, 0, 4+len(payload))
	buf = AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// MessageConn is the event-driven face of a message-preserving transport
// (simnet.Conn implements it): fn is invoked once per delivered message and
// once more with a terminal error. It is what lets frame consumers become
// scheduler-driven state machines instead of goroutines parked in Read.
type MessageConn interface {
	Handle(fn func(msg []byte, err error))
}

// HandleFrames registers a frame-level callback on a message connection
// whose peer writes one WriteFrame per message (the invariant all LMONP and
// ICCL traffic keeps: a frame is a single Write call). Each delivery is
// unwrapped to its payload; a malformed message surfaces as an error and no
// further callbacks fire for it. fn runs on the vtime scheduler and must
// not block.
func HandleFrames(c MessageConn, fn func(frame []byte, err error)) {
	c.Handle(func(msg []byte, err error) {
		if err != nil {
			fn(nil, err)
			return
		}
		frame, err := FrameFromMessage(msg)
		fn(frame, err)
	})
}

// FrameFromMessage unwraps one delivered network message into the frame
// payload WriteFrame produced, enforcing that the message carries exactly
// one complete frame.
func FrameFromMessage(msg []byte) ([]byte, error) {
	if len(msg) < 4 {
		return nil, fmt.Errorf("lmonp: short frame message (%d bytes)", len(msg))
	}
	n := binary.BigEndian.Uint32(msg[:4])
	if n > MaxPayload {
		return nil, ErrTooLarge
	}
	if uint32(len(msg)-4) != n {
		return nil, fmt.Errorf("lmonp: frame message length %d does not match prefix %d", len(msg)-4, n)
	}
	return msg[4:], nil
}

// ReadFrame reads one length-prefixed payload written by WriteFrame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxPayload {
		return nil, ErrTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("lmonp: truncated frame: %w", err)
	}
	return buf, nil
}

// AppendUint32 appends v big-endian.
func AppendUint32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

// AppendUint64 appends v big-endian.
func AppendUint64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

// AppendString appends a 32-bit length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendBytes appends a 32-bit length-prefixed byte slice.
func AppendBytes(b, p []byte) []byte {
	b = AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendStringList appends a count-prefixed list of strings.
func AppendStringList(b []byte, ss []string) []byte {
	b = AppendUint32(b, uint32(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendStringMap appends a count-prefixed key/value map in sorted-input
// order (callers sort when determinism matters).
func AppendStringMap(b []byte, kv [][2]string) []byte {
	b = AppendUint32(b, uint32(len(kv)))
	for _, e := range kv {
		b = AppendString(b, e[0])
		b = AppendString(b, e[1])
	}
	return b
}

// Reader consumes the encodings above.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Byte reads a single byte.
func (r *Reader) Byte() (byte, error) {
	if r.Remaining() < 1 {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Uint32()
	if err != nil {
		return "", err
	}
	if uint32(r.Remaining()) < n {
		return "", fmt.Errorf("%w: string of %d bytes, %d remain", ErrTruncated, n, r.Remaining())
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// Bytes reads a length-prefixed byte slice (aliasing the input buffer).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	if uint32(r.Remaining()) < n {
		return nil, fmt.Errorf("%w: bytes of %d, %d remain", ErrTruncated, n, r.Remaining())
	}
	p := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return p, nil
}

// StringList reads a count-prefixed string list.
func (r *Reader) StringList() ([]string, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	// Each entry needs at least its own 4-byte length prefix, and the
	// count field has already been consumed — so n entries can never need
	// more than exactly the remaining bytes. (The previous guard allowed a
	// +4 slack that admitted impossible counts at the boundary.)
	if uint64(n)*4 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: list of %d entries, %d bytes remain", ErrTruncated, n, r.Remaining())
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// StringMap reads a count-prefixed key/value list.
func (r *Reader) StringMap() ([][2]string, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	// Each entry is two length-prefixed strings: at least 8 bytes.
	if uint64(n)*8 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: map of %d entries, %d bytes remain", ErrTruncated, n, r.Remaining())
	}
	out := make([][2]string, 0, n)
	for i := uint32(0); i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, [2]string{k, v})
	}
	return out, nil
}

package lmonp

// Streaming payload checksums (FNV-1a). Chunked streams — the RPDTAB
// harvest, the ICCL seed — validate without retaining: each chunk carries
// Sum64 of its body, and the stream's end marker carries the rolling
// digest of the per-chunk sums in order, built with FoldSum from SumInit.
// A receiver verifies every chunk at O(chunk) memory and compares the
// folded digest at the end, replacing the old retain-and-compare check
// that kept a second full table per rank.

const (
	// SumInit is the initial rolling-digest state (FNV-1a offset basis).
	SumInit  uint64 = 14695981039346656037
	fnvPrime uint64 = 1099511628211
)

// Sum64 returns the FNV-1a hash of b.
func Sum64(b []byte) uint64 {
	h := SumInit
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// FoldSum folds one chunk sum into a rolling stream digest, byte by byte
// (big-endian), continuing the FNV-1a state in acc.
func FoldSum(acc, sum uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		acc ^= (sum >> uint(shift)) & 0xff
		acc *= fnvPrime
	}
	return acc
}

// Package lmonp implements the LMONP application-layer protocol
// (paper §3.5): the compact message format spoken between LaunchMON's
// components. A message has a fixed 16-byte header followed by two
// variably sized payload sections — one for LaunchMON's own data and one
// for piggybacked client-tool ("user") data, which is how tools bundle
// their bootstrap information with LaunchMON's handshake exchanges.
//
// Header layout (big endian):
//
//	byte  0      : 3-bit message class | 5-bit protocol version
//	byte  1      : message type (tag), meaningful within the class
//	bytes 2-3    : flags
//	bytes 4-7    : LaunchMON payload length
//	bytes 8-11   : user payload length
//	bytes 12-15  : sequence number
//
// LMONP only connects pairs of component representatives (front end ↔
// engine, front end ↔ master back-end daemon, front end ↔ master
// middleware daemon), which keeps the front end's connection count O(1)
// regardless of job size.
package lmonp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Version is the protocol version carried in every header.
const Version = 1

// HeaderSize is the fixed LMONP header size in bytes.
const HeaderSize = 16

// MaxPayload bounds each payload section, protecting receivers from
// corrupt or hostile length fields.
const MaxPayload = 1 << 28

// MsgClass is the 3-bit communication-pair class.
type MsgClass uint8

// The three assigned classes; the remaining five values are reserved
// (the paper suggests e.g. a middleware↔middleware class for spanning
// multiple communication fabrics).
const (
	ClassFEEngine MsgClass = 1 // front end ↔ LaunchMON engine
	ClassFEBE     MsgClass = 2 // front end ↔ master back-end daemon
	ClassFEMW     MsgClass = 3 // front end ↔ master middleware daemon
)

// String names the class for diagnostics.
func (c MsgClass) String() string {
	switch c {
	case ClassFEEngine:
		return "fe-engine"
	case ClassFEBE:
		return "fe-be"
	case ClassFEMW:
		return "fe-mw"
	default:
		return fmt.Sprintf("reserved(%d)", uint8(c))
	}
}

// MsgType tags a message within its class.
type MsgType uint8

// Message types. Tags are flat across classes for simplicity; each is
// documented with the class it travels in.
const (
	// fe-engine
	TypeLaunchReq MsgType = iota + 1 // FE→Engine: launchAndSpawn request
	TypeAttachReq                    // FE→Engine: attachAndSpawn request
	TypeSpawnReq                     // FE→Engine: spawn daemons for an attached job
	TypeProctab                      // Engine→FE: the RPDTAB
	TypeReady                        // Engine→FE / BE→FE / MW→FE: component ready
	TypeDetach                       // FE→Engine: detach from job, leave it running
	TypeKill                         // FE→Engine: kill job and daemons
	TypeShutdown                     // FE→Engine: shut down daemons, keep job
	TypeStatus                       // Engine→FE: async status notification

	// fe-be / fe-mw
	TypeHandshake // FE→BE/MW master: session parameters (+ piggyback)
	TypeUsrData   // either direction: pure tool payload
	TypeProctabBE // FE→BE/MW master: RPDTAB broadcast seed (legacy, unused)

	// RPDTAB streaming (any proctab-carrying class): the table travels as
	// bounded-size chunks so peak payload memory stays flat at
	// million-task scale, closed by an end marker carrying the total
	// entry count for reassembly validation.
	TypeProctabChunk // sender→receiver: one independently decodable RPDTAB chunk
	TypeProctabEnd   // sender→receiver: stream end; payload = uint64 total entries

	// Fault subsystem (fe-engine and fe-be): an asynchronous session
	// status transition — job exited, daemon lost, session torn down.
	// Payload codec lives in internal/health (EncodeEvent/DecodeEvent).
	TypeStatusEvent // engine→FE / BE master→FE: async status event

	// Collective tool-data plane (fe-be): user payloads routed over the
	// ICCL tree as bounded-size chunk streams. Payload carries the
	// collective header (op, tag, chunk index, rank range, filter —
	// codec in internal/coll), UsrData the chunk body; the end marker
	// carries the stream total for reassembly validation.
	TypeCollChunk // either direction: one collective chunk
	TypeCollEnd   // either direction: stream end; payload = header + uint64 total

	// Observability plane (fe-be / fe-mw): a merged obs.Snapshot blob the
	// master daemon pushes to the front end — once at session finalize,
	// covering the whole daemon set via the tree fold (codec in
	// internal/obs).
	TypeObsMetrics // BE/MW master→FE: harvested metrics snapshot
)

// String names the type for diagnostics.
func (t MsgType) String() string {
	names := map[MsgType]string{
		TypeLaunchReq: "launch-req", TypeAttachReq: "attach-req",
		TypeSpawnReq: "spawn-req", TypeProctab: "proctab",
		TypeReady: "ready", TypeDetach: "detach", TypeKill: "kill",
		TypeShutdown: "shutdown", TypeStatus: "status",
		TypeHandshake: "handshake", TypeUsrData: "usrdata",
		TypeProctabBE: "proctab-be", TypeProctabChunk: "proctab-chunk",
		TypeProctabEnd: "proctab-end", TypeStatusEvent: "status-event",
		TypeCollChunk: "coll-chunk", TypeCollEnd: "coll-end",
		TypeObsMetrics: "obs-metrics",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Msg is one LMONP message.
type Msg struct {
	Class   MsgClass
	Type    MsgType
	Flags   uint16
	Seq     uint32
	Payload []byte // LaunchMON data section
	UsrData []byte // piggybacked tool data section
}

// Errors returned by the codec.
var (
	ErrBadVersion  = errors.New("lmonp: bad protocol version")
	ErrTooLarge    = errors.New("lmonp: payload exceeds MaxPayload")
	ErrShortHeader = errors.New("lmonp: short header")
)

// WireSize returns the total encoded size of the message in bytes.
func (m *Msg) WireSize() int { return HeaderSize + len(m.Payload) + len(m.UsrData) }

// Encode renders the message into a single buffer. Oversized sections —
// including a combined Payload+UsrData beyond MaxPayload — are rejected
// here, with the offending sizes, so tool payloads that no peer could
// accept fail at the sender instead of surfacing as a truncated read on
// the other end of the connection.
func (m *Msg) Encode() ([]byte, error) {
	if len(m.Payload) > MaxPayload || len(m.UsrData) > MaxPayload ||
		len(m.Payload)+len(m.UsrData) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d + usrdata %d bytes (cap %d)",
			ErrTooLarge, len(m.Payload), len(m.UsrData), MaxPayload)
	}
	buf := make([]byte, m.WireSize())
	buf[0] = byte(m.Class&0x7)<<5 | Version&0x1f
	buf[1] = byte(m.Type)
	binary.BigEndian.PutUint16(buf[2:4], m.Flags)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(m.Payload)))
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(m.UsrData)))
	binary.BigEndian.PutUint32(buf[12:16], m.Seq)
	copy(buf[HeaderSize:], m.Payload)
	copy(buf[HeaderSize+len(m.Payload):], m.UsrData)
	return buf, nil
}

// Write encodes and writes the message to w as one Write call (one
// simulated network message).
func Write(w io.Writer, m *Msg) error {
	buf, err := m.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read reads exactly one message from r.
func Read(r io.Reader) (*Msg, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortHeader
		}
		return nil, err
	}
	if v := hdr[0] & 0x1f; v != Version {
		return nil, fmt.Errorf("%w: got %d want %d", ErrBadVersion, v, Version)
	}
	m := &Msg{
		Class: MsgClass(hdr[0] >> 5),
		Type:  MsgType(hdr[1]),
		Flags: binary.BigEndian.Uint16(hdr[2:4]),
		Seq:   binary.BigEndian.Uint32(hdr[12:16]),
	}
	plen := binary.BigEndian.Uint32(hdr[4:8])
	ulen := binary.BigEndian.Uint32(hdr[8:12])
	if plen > MaxPayload || ulen > MaxPayload || uint64(plen)+uint64(ulen) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d + usrdata %d bytes (cap %d)",
			ErrTooLarge, plen, ulen, MaxPayload)
	}
	if plen > 0 {
		m.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return nil, fmt.Errorf("lmonp: truncated payload: %w", err)
		}
	}
	if ulen > 0 {
		m.UsrData = make([]byte, ulen)
		if _, err := io.ReadFull(r, m.UsrData); err != nil {
			return nil, fmt.Errorf("lmonp: truncated usr payload: %w", err)
		}
	}
	return m, nil
}

// Conn wraps a stream with LMONP message framing and per-connection
// sequence numbering. Send is safe for concurrent use (sessions running
// in parallel goroutines may share helpers that write); Recv assumes a
// single reader per connection, which is the LMONP ownership model —
// every connection has exactly one component representative reading it.
type Conn struct {
	rw io.ReadWriter

	sendMu sync.Mutex
	seq    uint32
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// Send writes a message, stamping the connection's next sequence number.
func (c *Conn) Send(m *Msg) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.seq++
	m.Seq = c.seq
	return Write(c.rw, m)
}

// Recv reads the next message.
func (c *Conn) Recv() (*Msg, error) { return Read(c.rw) }

// Expect reads the next message and verifies its class and type.
func (c *Conn) Expect(class MsgClass, typ MsgType) (*Msg, error) {
	m, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if m.Class != class || m.Type != typ {
		return nil, fmt.Errorf("lmonp: expected %v/%v, got %v/%v", class, typ, m.Class, m.Type)
	}
	return m, nil
}

// Close closes the underlying stream when it is closable.
func (c *Conn) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Sever force-severs the underlying stream when it supports it (simnet
// connections do): the peer observes ErrPeerDead instead of a clean EOF.
// This is how cluster.Proc.Kill tears down a killed process's open
// connections — the conn is adopted by the owning proc, and teardown
// must look like a node loss, not a graceful close.
func (c *Conn) Sever() {
	if s, ok := c.rw.(interface{ Sever() }); ok {
		s.Sever()
	}
}

package core

import (
	"fmt"
	"sync"

	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/vtime"
)

// This file is the master daemon's FE-connection demultiplexer: once the
// master serves concurrent tagged collectives (or hands tool-data reads
// to one goroutine while another drives a collective), a single router
// goroutine must own the connection's read side — lmonp connections have
// exactly one reader. It sorts messages into the tool-data queue
// (RecvFromFE), the lockstep collective queue (untagged plane
// operations), and per-tag queues for user-tagged streams. The router
// starts lazily on the first read-side use — never during init, where
// the seed pipeline (seedSourceFromFE) still reads the connection
// directly, and never at all on daemons that only ever push data up.

// feRouter demultiplexes the master daemon's FE connection.
type feRouter struct {
	d *daemonSession

	usr    *vtime.Chan[[]byte]    // TypeUsrData payloads (RecvFromFE)
	legacy *vtime.Chan[collEvent] // lockstep-tagged collective frames
	tags   *tagRouter             // user-tagged collective streams

	mu  sync.Mutex
	err error // terminal router error (recorded by fail)
}

// feRouter returns the master's FE router, starting it on first use.
func (d *daemonSession) feRouter() *feRouter {
	d.feRtOnce.Do(func() {
		sim := d.p.Sim()
		rt := &feRouter{
			d:      d,
			usr:    vtime.NewChan[[]byte](sim),
			legacy: vtime.NewChan[collEvent](sim),
			tags:   newTagRouter(sim),
		}
		d.feRt = rt
		sim.Go(fmt.Sprintf("%s-master-fe-router", d.fab.kind), rt.run)
	})
	return d.feRt
}

// run owns the FE connection's read side: tool data to the usr queue,
// collective frames to their tag's stream (lockstep tags share one
// ordered queue, preserving the eager divergence check of the plane's
// down hook), anything else fails the router.
func (rt *feRouter) run() {
	for {
		msg, err := rt.d.fe.Recv()
		if err != nil {
			rt.fail(err)
			return
		}
		switch msg.Type {
		case lmonp.TypeUsrData:
			rt.usr.Send(msg.UsrData)
		case lmonp.TypeCollChunk, lmonp.TypeCollEnd:
			f, derr := coll.DecodeMsg(msg.Type == lmonp.TypeCollEnd, msg.Payload, msg.UsrData)
			switch {
			case derr != nil:
				// An undecodable frame names no trustworthy tag: poison
				// every stream so no pending collective waits forever.
				rt.legacy.Send(collEvent{err: derr})
				rt.tags.poison(derr)
			case f.H.Tag >= coll.MinUserTag:
				rt.tags.send(f.H.Tag, collEvent{f: f})
			default:
				rt.legacy.Send(collEvent{f: f})
			}
		default:
			rt.fail(fmt.Errorf("core: %v message while awaiting tool data or a collective frame", msg.Type))
			return
		}
	}
}

// fail records the terminal error and wakes every consumer: the FE link
// died (or delivered an unroutable message), so tool-data reads, lockstep
// collectives and every tagged stream must observe it.
func (rt *feRouter) fail(err error) {
	rt.mu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.mu.Unlock()
	rt.usr.Close()
	rt.legacy.Close()
	rt.tags.close()
}

// takeErr reports why the router stopped.
func (rt *feRouter) takeErr() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.err != nil {
		return rt.err
	}
	return fmt.Errorf("core: master FE connection lost")
}

// nextColl yields the tagged stream's next FE-originated collective frame
// — the plane's down hook. Lockstep tags (below coll.MinUserTag) share
// one ordered queue so an op/tag mismatch still errors eagerly in the
// plane's checkStream; user tags each drain their own stream, retired at
// its end marker.
func (rt *feRouter) nextColl(tag uint32) (coll.Frame, error) {
	user := tag >= coll.MinUserTag
	q := rt.legacy
	if user {
		q = rt.tags.q(tag)
	}
	ev, ok := q.Recv()
	if !ok {
		return coll.Frame{}, rt.takeErr()
	}
	if ev.err != nil {
		return coll.Frame{}, ev.err
	}
	if user && ev.f.End {
		rt.tags.drop(tag)
	}
	return ev.f, nil
}

package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

// rig boots a cluster with SLURM and LaunchMON installed.
func rig(t *testing.T, nodes int) (*vtime.Sim, *cluster.Cluster, rm.Manager) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := slurm.Install(cl, slurm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	Setup(cl, mgr)
	return sim, cl, mgr
}

// runFE runs fn as a tool front-end process on the FE node and returns
// after the simulation completes.
func runFE(t *testing.T, sim *vtime.Sim, cl *cluster.Cluster, fn func(p *cluster.Proc)) {
	t.Helper()
	sim.Go("tool-fe-boot", func() {
		if _, err := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "tool_fe", Main: fn}); err != nil {
			t.Error(err)
		}
	})
	sim.Run()
}

func TestLaunchAndSpawnEndToEnd(t *testing.T) {
	sim, cl, _ := rig(t, 8)
	beRanks := make(chan int, 64)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Errorf("BEInit on %s: %v", p.Node().Name(), err)
			return
		}
		beRanks <- be.Rank()
		if len(be.MyProctab()) != 4 {
			t.Errorf("rank %d sees %d local tasks, want 4", be.Rank(), len(be.MyProctab()))
		}
		if string(be.FEData()) != "tool-bootstrap" {
			t.Errorf("rank %d FEData = %q", be.Rank(), be.FEData())
		}
		be.Finalize()
	})
	var sess *Session
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 8, TasksPerNode: 4},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
			FEData: []byte("tool-bootstrap"),
		})
		if err != nil {
			t.Error(err)
			return
		}
		sess = s
		if len(s.Proctab()) != 32 {
			t.Errorf("proctab %d entries, want 32", len(s.Proctab()))
		}
		if err := s.Proctab().Validate(); err != nil {
			t.Error(err)
		}
		if len(s.Daemons()) != 8 {
			t.Errorf("daemon infos = %d, want 8", len(s.Daemons()))
		}
		for _, d := range s.Daemons() {
			if d.Tasks != 4 {
				t.Errorf("daemon %d reports %d tasks", d.Rank, d.Tasks)
			}
		}
	})
	close(beRanks)
	seen := map[int]bool{}
	for r := range beRanks {
		if seen[r] {
			t.Fatalf("duplicate BE rank %d", r)
		}
		seen[r] = true
	}
	if len(seen) != 8 {
		t.Fatalf("%d BE daemons initialized, want 8", len(seen))
	}
	if sess == nil {
		t.Fatal("no session")
	}
}

func TestTimelineMarksOrdered(t *testing.T) {
	sim, cl, _ := rig(t, 4)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Error(err)
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 8},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		// The cut-through pipeline overlaps the handshake chain with the
		// spawn window, so the marks form two monotone chains rather than
		// one (see engine/timeline.go and launchpipe_test.go).
		assertLaunchChains(t, "launch", s.Timeline)
		// Tracing cost: 12 events x 1.5ms.
		if tc, ok := s.Timeline.Get(engine.MarkTracing); !ok || tc != 18*time.Millisecond {
			t.Errorf("tracing cost = %v, want 18ms", tc)
		}
	})
}

func TestUserDataBothDirections(t *testing.T) {
	sim, cl, _ := rig(t, 4)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Error(err)
			return
		}
		// Master relays one FE message to everyone, gathers replies, and
		// sends the concatenation back to the FE.
		if be.AmIMaster() {
			data, err := be.RecvFromFE()
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := be.Broadcast(data); err != nil {
				t.Error(err)
				return
			}
			replies, err := be.Gather([]byte(fmt.Sprintf("r%d", be.Rank())))
			if err != nil {
				t.Error(err)
				return
			}
			be.SendToFE(bytes.Join(replies, []byte(",")))
		} else {
			if _, err := be.Broadcast(nil); err != nil {
				t.Error(err)
				return
			}
			if _, err := be.Gather([]byte(fmt.Sprintf("r%d", be.Rank()))); err != nil {
				t.Error(err)
			}
		}
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.SendToBE([]byte("do-work")); err != nil {
			t.Error(err)
			return
		}
		got, err := s.RecvFromBE()
		if err != nil {
			t.Error(err)
			return
		}
		if string(got) != "r0,r1,r2,r3" {
			t.Errorf("gathered reply = %q", got)
		}
	})
}

func TestAttachAndSpawn(t *testing.T) {
	sim, cl, mgr := rig(t, 4)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Error(err)
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		// A "user" starts the job outside tool control.
		j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
		if err != nil {
			t.Error(err)
			return
		}
		p.Sim().Sleep(2 * time.Second) // job reaches steady state
		s, err := AttachAndSpawn(p, Options{
			JobID:  j.ID(),
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if len(s.Proctab()) != 8 {
			t.Errorf("attached proctab = %d entries, want 8", len(s.Proctab()))
		}
		if len(s.Daemons()) != 4 {
			t.Errorf("daemons = %d, want 4", len(s.Daemons()))
		}
	})
}

func TestAttachToMissingJob(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("tool_be", func(p *cluster.Proc) {})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		if _, err := AttachAndSpawn(p, Options{JobID: 42, Daemon: rm.DaemonSpec{Exe: "tool_be"}}); err == nil {
			t.Error("attach to missing job succeeded")
		} else if !strings.Contains(err.Error(), "no such job") {
			t.Errorf("unexpected error: %v", err)
		}
	})
}

func TestKillSession(t *testing.T) {
	sim, cl, _ := rig(t, 4)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		_ = be
		// Daemon lingers; it will be killed with the job.
		vtime.NewChan[int](p.Sim()).Recv()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Kill(); err != nil {
			t.Error(err)
			return
		}
		// tasks and daemons gone; only slurmd remains per node.
		for i := 0; i < 4; i++ {
			if got := cl.Node(i).NumProcs(); got != 1 {
				t.Errorf("node%d has %d procs after kill", i, got)
			}
		}
		if err := s.Kill(); err != ErrSessionClosed {
			t.Errorf("second kill: %v", err)
		}
	})
}

func TestDetachLeavesJobRunning(t *testing.T) {
	sim, cl, _ := rig(t, 3)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 3, TasksPerNode: 2},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Detach(); err != nil {
			t.Error(err)
			return
		}
		// Application tasks still alive: 2 tasks + slurmd per node (tool
		// daemons exited on their own).
		for i := 0; i < 3; i++ {
			if got := cl.Node(i).NumProcs(); got < 3 {
				t.Errorf("node%d has %d procs after detach, want >=3", i, got)
			}
		}
		if err := s.SendToBE(nil); err != ErrSessionClosed {
			t.Errorf("SendToBE after detach: %v", err)
		}
	})
}

func TestLaunchMWAndPersonalities(t *testing.T) {
	sim, cl, _ := rig(t, 8)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Error(err)
			return
		}
		be.Finalize()
	})
	personalities := make(chan [2]int, 16)
	cl.Register("tool_mw", func(p *cluster.Proc) {
		mw, err := MWInit(p)
		if err != nil {
			t.Errorf("MWInit: %v", err)
			return
		}
		r, sz := mw.Personality()
		personalities <- [2]int{r, sz}
		if len(mw.Proctab()) != 8 {
			t.Errorf("MW rank %d proctab = %d", r, len(mw.Proctab()))
		}
		if string(mw.FEData()) != "tree-topology" {
			t.Errorf("MW rank %d FEData = %q", r, mw.FEData())
		}
		mw.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		nodes, err := s.LaunchMW(MWOptions{
			Nodes:  3,
			Daemon: rm.DaemonSpec{Exe: "tool_mw"},
			FEData: []byte("tree-topology"),
		})
		if err != nil {
			t.Error(err)
			return
		}
		if len(nodes) != 3 {
			t.Errorf("MW nodes = %v", nodes)
		}
		if len(s.MWDaemons()) != 3 {
			t.Errorf("MW daemons = %d", len(s.MWDaemons()))
		}
		// MW nodes disjoint from job nodes.
		jobHosts := map[string]bool{}
		for _, d := range s.Proctab() {
			jobHosts[d.Host] = true
		}
		for _, n := range nodes {
			if jobHosts[n] {
				t.Errorf("MW node %s overlaps job", n)
			}
		}
	})
	close(personalities)
	count := 0
	for p := range personalities {
		count++
		if p[1] != 3 {
			t.Errorf("personality size = %d, want 3", p[1])
		}
	}
	if count != 3 {
		t.Fatalf("%d MW daemons, want 3", count)
	}
}

func TestICCLFanoutOption(t *testing.T) {
	for _, fanout := range []int{0, 2, 4} {
		fanout := fanout
		t.Run(fmt.Sprintf("fanout%d", fanout), func(t *testing.T) {
			sim, cl, _ := rig(t, 9)
			inited := make(chan struct{}, 16)
			cl.Register("tool_be", func(p *cluster.Proc) {
				be, err := BEInit(p)
				if err != nil {
					t.Error(err)
					return
				}
				inited <- struct{}{}
				be.Finalize()
			})
			runFE(t, sim, cl, func(p *cluster.Proc) {
				if _, err := LaunchAndSpawn(p, Options{
					Job:        rm.JobSpec{Exe: "app", Nodes: 9, TasksPerNode: 1},
					Daemon:     rm.DaemonSpec{Exe: "tool_be"},
					ICCLFanout: fanout,
				}); err != nil {
					t.Error(err)
				}
			})
			close(inited)
			n := 0
			for range inited {
				n++
			}
			if n != 9 {
				t.Fatalf("%d daemons initialized with fanout %d", n, fanout)
			}
		})
	}
}

func TestSessionIDsDistinctAndSequential(t *testing.T) {
	sim, cl, _ := rig(t, 4)
	cl.Register("tool_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s1, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		s2, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app2", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "tool_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if s1.ID == s2.ID {
			t.Errorf("duplicate session ids %d", s1.ID)
		}
	})
}

package core

import (
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
)

// Failure-injection tests: sessions must fail with errors, not hangs,
// when daemons misbehave.

func TestDaemonCrashBeforeInitTimesOut(t *testing.T) {
	sim, cl, _ := rig(t, 4)
	cl.Register("crash_be", func(p *cluster.Proc) {
		// Crashes immediately: never calls BEInit, never dials the FE.
	})
	var err error
	var elapsed time.Duration
	runFE(t, sim, cl, func(p *cluster.Proc) {
		start := p.Sim().Now()
		_, err = LaunchAndSpawn(p, Options{
			Job:     rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon:  rm.DaemonSpec{Exe: "crash_be"},
			Timeout: 30 * time.Second,
		})
		elapsed = p.Sim().Now() - start
	})
	if err == nil {
		t.Fatal("session with crashing daemons succeeded")
	}
	if !strings.Contains(err.Error(), "master daemon did not connect") {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed > 40*time.Second {
		t.Fatalf("timeout took %v of virtual time", elapsed)
	}
}

func TestUnknownDaemonExecutableFailsCleanly(t *testing.T) {
	sim, cl, _ := rig(t, 4)
	var err error
	runFE(t, sim, cl, func(p *cluster.Proc) {
		_, err = LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "not_installed_anywhere"},
		})
	})
	if err == nil {
		t.Fatal("session with unregistered daemon exe succeeded")
	}
	if !strings.Contains(err.Error(), "no such executable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestJobLargerThanClusterFailsCleanly(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("ok_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	var err error
	runFE(t, sim, cl, func(p *cluster.Proc) {
		_, err = LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 64, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "ok_be"},
		})
	})
	if err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestMasterOnlyCrashStillTimesOut(t *testing.T) {
	// Only the master (rank 0) daemon dies; the rest come up and block in
	// ICCL bootstrap. The FE must still time out rather than hang.
	sim, cl, _ := rig(t, 4)
	cl.Register("half_be", func(p *cluster.Proc) {
		if p.Env(rm.EnvNodeID) == "0" {
			return // master crashes before dialing the FE
		}
		BEInit(p) // children block dialing the dead master, then give up
	})
	var err error
	runFE(t, sim, cl, func(p *cluster.Proc) {
		_, err = LaunchAndSpawn(p, Options{
			Job:     rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon:  rm.DaemonSpec{Exe: "half_be"},
			Timeout: 20 * time.Second,
		})
	})
	if err == nil {
		t.Fatal("session with dead master succeeded")
	}
}

func TestMWUnknownExecutableFailsCleanly(t *testing.T) {
	sim, cl, _ := rig(t, 8)
	cl.Register("ok_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	var launchErr, mwErr error
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "ok_be"},
		})
		if err != nil {
			launchErr = err
			return
		}
		_, mwErr = sess.LaunchMW(MWOptions{Nodes: 2, Daemon: rm.DaemonSpec{Exe: "ghost_mw"}})
	})
	if launchErr != nil {
		t.Fatal(launchErr)
	}
	if mwErr == nil {
		t.Fatal("MW launch with unregistered exe succeeded")
	}
}

func TestDoubleLaunchMWRejected(t *testing.T) {
	sim, cl, _ := rig(t, 8)
	cl.Register("ok_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	cl.Register("ok_mw", func(p *cluster.Proc) {
		if mw, err := MWInit(p); err == nil {
			mw.Finalize()
		}
	})
	var second error
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "ok_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.LaunchMW(MWOptions{Nodes: 2, Daemon: rm.DaemonSpec{Exe: "ok_mw"}}); err != nil {
			t.Error(err)
			return
		}
		_, second = sess.LaunchMW(MWOptions{Nodes: 1, Daemon: rm.DaemonSpec{Exe: "ok_mw"}})
	})
	if second == nil {
		t.Fatal("second LaunchMW accepted")
	}
}

func TestOperationsOnKilledSessionFail(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("ok_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "ok_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := sess.Kill(); err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.LaunchMW(MWOptions{Nodes: 1, Daemon: rm.DaemonSpec{Exe: "x"}}); err != ErrSessionClosed {
			t.Errorf("LaunchMW on killed session: %v", err)
		}
		if _, err := sess.RecvFromBE(); err != ErrSessionClosed {
			t.Errorf("RecvFromBE on killed session: %v", err)
		}
		if err := sess.Detach(); err != ErrSessionClosed {
			t.Errorf("Detach on killed session: %v", err)
		}
	})
}

package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
)

// Setup installs LaunchMON onto a cluster for the given resource manager:
// it registers the engine executable. Tools call it once before starting
// their front ends.
func Setup(cl *cluster.Cluster, mgr rm.Manager) {
	engine.Install(cl, mgr, engine.Config{})
}

// SetupWithEngineConfig is Setup with an explicit engine cost profile.
func SetupWithEngineConfig(cl *cluster.Cluster, mgr rm.Manager, cfg engine.Config) {
	engine.Install(cl, mgr, cfg)
}

// Options parameterize session creation.
type Options struct {
	// Job describes the application to launch (LaunchAndSpawn only).
	Job rm.JobSpec
	// JobID names the running job to attach to (AttachAndSpawn only).
	JobID int
	// Daemon describes the tool's back-end daemon.
	Daemon rm.DaemonSpec
	// FEData is tool bootstrap data piggybacked on the FE→master handshake
	// and broadcast to every back-end daemon together with the RPDTAB.
	FEData []byte
	// ICCLFanout is the back-end tree fanout; 0 means flat (1-deep).
	ICCLFanout int
	// Timeout bounds (in virtual time) how long the front end waits for
	// the engine and the master daemon to connect; daemons that crash
	// before dialing in surface as an error instead of a hang. Zero means
	// the default of 10 minutes.
	Timeout time.Duration
}

const defaultSessionTimeout = 10 * time.Minute

// Session binds one job and its daemon sets (paper §3.2): the handle all
// other FE operations take.
type Session struct {
	ID int

	p        *cluster.Proc
	listener *simnet.Listener
	eng      *lmonp.Conn
	beMaster *lmonp.Conn
	mwMaster *lmonp.Conn

	tab     proctab.Table
	daemons []DaemonInfo
	mwInfos []DaemonInfo
	mwNodes []string
	timeout time.Duration

	// Timeline holds the merged e0..e11 critical-path marks for this
	// session (paper Figure 2); consumed by the performance model.
	Timeline engine.Timeline

	detached bool
	killed   bool
}

// ErrSessionClosed is returned by operations on a finished session.
var ErrSessionClosed = errors.New("core: session detached or killed")

// LaunchAndSpawn launches a new job under tool control and co-locates the
// tool's daemons with it in a single operation — the paper's primary FE
// service, whose critical path is modeled in §4.
func LaunchAndSpawn(p *cluster.Proc, opts Options) (*Session, error) {
	return startSession(p, opts, false)
}

// AttachAndSpawn attaches to the running job opts.JobID and co-locates the
// tool's daemons with its tasks.
func AttachAndSpawn(p *cluster.Proc, opts Options) (*Session, error) {
	return startSession(p, opts, true)
}

func startSession(p *cluster.Proc, opts Options, attach bool) (*Session, error) {
	sim := p.Sim()
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = defaultSessionTimeout
	}
	s := &Session{ID: nextSessionID(), p: p, timeout: timeout}
	s.Timeline.Mark(engine.MarkE0, sim.Now())
	p.Compute(feStartCost)

	l, err := p.Host().Listen(0)
	if err != nil {
		return nil, err
	}
	s.listener = l
	feAddr := l.Addr().String()

	// Spawn the engine co-located with the RM process (same node).
	if _, err := p.Spawn(cluster.Spec{
		Exe: engine.ExeName,
		Env: map[string]string{engine.EnvFEAddr: feAddr},
	}); err != nil {
		l.Close()
		return nil, fmt.Errorf("core: spawning engine: %w", err)
	}
	engConnRaw, err := l.AcceptTimeout(timeout)
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("core: engine did not connect: %w", err)
	}
	s.eng = lmonp.NewConn(engConnRaw)

	// Compose the daemon bootstrap environment.
	daemon := opts.Daemon
	env := make(map[string]string, len(daemon.Env)+5)
	for k, v := range daemon.Env {
		env[k] = v
	}
	env[EnvFEAddr] = feAddr
	env[EnvSession] = fmt.Sprint(s.ID)
	env[EnvICCLPort] = fmt.Sprint(icclPortFor(s.ID, false))
	env[EnvICCLFanout] = fmt.Sprint(opts.ICCLFanout)
	env[EnvKind] = "be"
	daemon.Env = env

	var req *lmonp.Msg
	if attach {
		req = &lmonp.Msg{
			Class:   lmonp.ClassFEEngine,
			Type:    lmonp.TypeAttachReq,
			Payload: engine.EncodeAttachReq(engine.AttachReq{JobID: opts.JobID, Daemon: daemon}),
		}
	} else {
		req = &lmonp.Msg{
			Class:   lmonp.ClassFEEngine,
			Type:    lmonp.TypeLaunchReq,
			Payload: engine.EncodeLaunchReq(engine.LaunchReq{Job: opts.Job, Daemon: daemon}),
		}
	}
	if err := s.eng.Send(req); err != nil {
		s.close()
		return nil, err
	}

	// The engine replies with the RPDTAB first (it overlaps the daemon
	// spawn), then a status message once the RM finished spawning.
	msg, err := s.eng.Recv()
	if err != nil {
		s.close()
		return nil, err
	}
	if msg.Type == lmonp.TypeStatus {
		status, _, _ := engine.DecodeStatus(msg.Payload)
		s.close()
		return nil, fmt.Errorf("core: engine failed: %s", status)
	}
	if msg.Type != lmonp.TypeProctab {
		s.close()
		return nil, fmt.Errorf("core: expected proctab, got %v", msg.Type)
	}
	tab, err := proctab.Decode(msg.Payload)
	if err != nil {
		s.close()
		return nil, err
	}
	s.tab = tab

	status, engTL, err := s.recvStatus()
	if err != nil {
		s.close()
		return nil, err
	}
	if status != "daemons-spawned" {
		s.close()
		return nil, fmt.Errorf("core: engine failed: %s", status)
	}
	s.Timeline.Merge(engTL)

	// Handshake with the master back-end daemon (e7..e10).
	beConnRaw, err := l.AcceptTimeout(timeout)
	if err != nil {
		s.close()
		return nil, fmt.Errorf("core: master daemon did not connect: %w", err)
	}
	s.beMaster = lmonp.NewConn(beConnRaw)
	s.Timeline.Mark(engine.MarkE7, sim.Now())
	if err := s.beMaster.Send(&lmonp.Msg{
		Class:   lmonp.ClassFEBE,
		Type:    lmonp.TypeHandshake,
		Payload: tab.Encode(),
		UsrData: opts.FEData,
	}); err != nil {
		s.close()
		return nil, err
	}
	ready, err := s.beMaster.Expect(lmonp.ClassFEBE, lmonp.TypeReady)
	if err != nil {
		s.close()
		return nil, err
	}
	s.Timeline.Mark(engine.MarkE10, sim.Now())
	infos, beTL, err := decodeReady(ready.Payload)
	if err != nil {
		s.close()
		return nil, err
	}
	s.daemons = infos
	s.Timeline.Merge(beTL)

	p.Compute(feFinishCost)
	s.Timeline.Mark(engine.MarkE11, sim.Now())
	return s, nil
}

func (s *Session) recvStatus() (string, engine.Timeline, error) {
	msg, err := s.eng.Expect(lmonp.ClassFEEngine, lmonp.TypeStatus)
	if err != nil {
		return "", engine.Timeline{}, err
	}
	return engine.DecodeStatus(msg.Payload)
}

// Proctab returns the job's RPDTAB.
func (s *Session) Proctab() proctab.Table { return s.tab }

// Daemons returns the per-daemon records gathered during handshake.
func (s *Session) Daemons() []DaemonInfo { return s.daemons }

// SendToBE ships tool data to the master back-end daemon (which typically
// broadcasts it over ICCL).
func (s *Session) SendToBE(data []byte) error {
	if s.beMaster == nil || s.detached || s.killed {
		return ErrSessionClosed
	}
	return s.beMaster.Send(&lmonp.Msg{Class: lmonp.ClassFEBE, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromBE receives tool data from the master back-end daemon.
func (s *Session) RecvFromBE() ([]byte, error) {
	if s.beMaster == nil || s.detached || s.killed {
		return nil, ErrSessionClosed
	}
	msg, err := s.beMaster.Expect(lmonp.ClassFEBE, lmonp.TypeUsrData)
	if err != nil {
		return nil, err
	}
	return msg.UsrData, nil
}

// Detach ends tool control, leaving the job running. Daemons observe their
// FE/ICCL connections closing and shut themselves down.
func (s *Session) Detach() error {
	if s.detached || s.killed {
		return ErrSessionClosed
	}
	s.detached = true
	if err := s.eng.Send(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeDetach}); err != nil {
		return err
	}
	status, _, err := engine.DecodeStatusFromConn(s.eng)
	if err != nil {
		return err
	}
	if status != "detached" {
		return fmt.Errorf("core: detach failed: %s", status)
	}
	s.close()
	return nil
}

// Kill terminates the job, its tasks and all daemons.
func (s *Session) Kill() error {
	if s.detached || s.killed {
		return ErrSessionClosed
	}
	s.killed = true
	if err := s.eng.Send(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeKill}); err != nil {
		return err
	}
	status, _, err := engine.DecodeStatusFromConn(s.eng)
	if err != nil {
		return err
	}
	if status != "killed" {
		return fmt.Errorf("core: kill failed: %s", status)
	}
	s.close()
	return nil
}

func (s *Session) close() {
	if s.eng != nil {
		s.eng.Close()
	}
	if s.beMaster != nil {
		s.beMaster.Close()
	}
	if s.mwMaster != nil {
		s.mwMaster.Close()
	}
	if s.listener != nil {
		s.listener.Close()
	}
}

// decodeReady parses a ready payload: daemon infos + component timeline.
func decodeReady(b []byte) ([]DaemonInfo, engine.Timeline, error) {
	rd := lmonp.NewReader(b)
	infosRaw, err := rd.Bytes()
	if err != nil {
		return nil, engine.Timeline{}, err
	}
	infos, err := decodeDaemonInfos(infosRaw)
	if err != nil {
		return nil, engine.Timeline{}, err
	}
	tlRaw, err := rd.Bytes()
	if err != nil {
		return nil, engine.Timeline{}, err
	}
	tl, err := engine.DecodeTimeline(tlRaw)
	return infos, tl, err
}

func encodeReady(infos []DaemonInfo, tl engine.Timeline) []byte {
	b := lmonp.AppendBytes(nil, encodeDaemonInfos(infos))
	return lmonp.AppendBytes(b, tl.Encode())
}

// splitNodeList parses the RM-provided comma-joined node list.
func splitNodeList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

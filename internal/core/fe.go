package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/engine"
	"launchmon/internal/health"
	"launchmon/internal/hostlist"
	"launchmon/internal/lmonp"
	"launchmon/internal/obs"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/transport"
	"launchmon/internal/vtime"
)

// Setup installs LaunchMON onto a cluster for the given resource manager:
// it registers the engine executable. Tools call it once before starting
// their front ends.
func Setup(cl *cluster.Cluster, mgr rm.Manager) {
	engine.Install(cl, mgr, engine.Config{})
}

// SetupWithEngineConfig is Setup with an explicit engine cost profile.
func SetupWithEngineConfig(cl *cluster.Cluster, mgr rm.Manager, cfg engine.Config) {
	engine.Install(cl, mgr, cfg)
}

// Options parameterize session creation.
type Options struct {
	// Job describes the application to launch (LaunchAndSpawn only).
	Job rm.JobSpec
	// JobID names the running job to attach to (AttachAndSpawn only).
	JobID int
	// Daemon describes the tool's back-end daemon.
	Daemon rm.DaemonSpec
	// FEData is tool bootstrap data piggybacked on the FE→master handshake
	// and broadcast to every back-end daemon together with the RPDTAB.
	FEData []byte
	// ICCLFanout is the back-end tree fanout; 0 means flat (1-deep).
	ICCLFanout int
	// ProctabChunkBytes bounds one RPDTAB chunk payload on every LMONP
	// transfer of this session (engine→FE and FE→master daemons);
	// 0 selects proctab.DefaultChunkBytes.
	ProctabChunkBytes int
	// CollChunkBytes bounds one chunk body on every link of the session's
	// collective tool-data plane (Session.Broadcast/Scatter/Gather/Reduce
	// and the BE.Collective mirror); 0 selects coll.DefaultChunkBytes.
	CollChunkBytes int
	// CollWindow is the per-(link, tag) outstanding-chunk credit window of
	// the collective plane's flow control: a sender holds at most CollWindow
	// chunks of one tagged stream in flight per tree link, so interior
	// queue depth is bounded by CollWindow x CollChunkBytes regardless of
	// daemon count or subtree skew. 0 selects coll.DefaultWindow; negative
	// disables flow control (the unbounded ablation baseline). Planted into
	// daemon environments as LMON_COLL_WINDOW.
	CollWindow int
	// SeedMode selects the session-seed (RPDTAB + FEData) distribution
	// pipeline: SeedCutThrough (the default) or the serialized
	// SeedStoreForward baseline. See the SeedMode constants.
	SeedMode SeedMode
	// TableMode selects per-daemon RPDTAB retention under the cut-through
	// pipeline: TableSliced (the default) keeps only each daemon's rank
	// slice plus a session-shared immutable index, TableFull retains the
	// complete table at every daemon (the ablation baseline, and the only
	// shape store-forward supports). See the TableMode constants.
	TableMode TableMode
	// Timeout bounds (in virtual time) how long the front end waits for
	// the engine and the master daemon to connect; daemons that crash
	// before dialing in surface as an error instead of a hang. Zero means
	// the default of 10 minutes.
	Timeout time.Duration
	// JoinTimeout bounds (in virtual time) how long each bootstrapping
	// daemon waits for any one child to join the ICCL tree and for its
	// subtree's ready report: a daemon that dies before dialing its parent
	// then surfaces as a subtree-failure error cascading to the front end
	// instead of a hang. Zero (the default) disables the deadline — joins
	// legitimately take a long wall of virtual time at large K, so the
	// bound is opt-in and should comfortably exceed the expected spawn
	// wave (Health.Period x Miss is a reasonable floor, not a default).
	JoinTimeout time.Duration
	// Health configures the session's failure-detection subsystem
	// (internal/health). The zero value disables it: daemon loss then
	// surfaces only through connection errors at the master.
	Health HealthOptions
	// Obs enables the session observability plane (internal/obs): FE
	// spans + instants (Session.WriteTrace), per-link metrics at every
	// daemon (planted via LMON_OBS), and tree-harvested metric snapshots
	// (Session.MetricsSnapshot). Off by default; LaunchMW inherits the
	// session's setting.
	Obs ObsMode
}

// HealthOptions parameterize per-session failure detection: the back-end
// daemons run heartbeats over a tree mirroring the ICCL topology, and
// daemon/node loss is reported to the front end as DaemonExited status
// events within roughly Period x Miss.
type HealthOptions struct {
	// Period between daemon heartbeats; 0 disables the subsystem.
	Period time.Duration
	// Miss is how many consecutive periods a daemon may miss before it is
	// declared dead (default 3).
	Miss int
	// Dial forces the heartbeat tree onto dedicated dialed connections
	// (the pre-link-reuse baseline). The default false piggybacks
	// heartbeats on the established ICCL tree links (iccl.Comm.ShareLinks
	// + health.StartOnLinks), halving the session's per-daemon connection
	// count.
	Dial bool
}

const defaultSessionTimeout = 10 * time.Minute

// FrontEnd is the per-process LaunchMON front-end handle: it owns the one
// transport mux every session of this tool process shares. Any number of
// sessions may be created concurrently from separate goroutines; the mux
// routes each engine / master-daemon dial to its owning session by the
// session ID in the transport hello, so interleaved sessions never cross.
type FrontEnd struct {
	p   *cluster.Proc
	mux *transport.Mux
}

// feRegistry maps FE processes to their FrontEnd so the package-level
// LaunchAndSpawn/AttachAndSpawn entry points share one mux per process.
var (
	feRegMu sync.Mutex
	feReg   = make(map[*cluster.Proc]*FrontEnd)
)

// NewFrontEnd returns the process-wide front-end handle for p, creating
// its transport mux on first use.
func NewFrontEnd(p *cluster.Proc) (*FrontEnd, error) {
	feRegMu.Lock()
	defer feRegMu.Unlock()
	if fe, ok := feReg[p]; ok {
		return fe, nil
	}
	mux, err := transport.ListenMux(p.Sim(), p.Host())
	if err != nil {
		return nil, err
	}
	fe := &FrontEnd{p: p, mux: mux}
	feReg[p] = fe
	// Reap the mux (and the registry entry) when the process exits, so
	// long simulations with many tool processes do not accumulate muxes.
	p.Sim().Go("fe-mux-reaper", func() {
		p.Wait()
		feRegMu.Lock()
		delete(feReg, p)
		feRegMu.Unlock()
		mux.Close()
	})
	return fe, nil
}

// Mux exposes the front end's transport mux (tests and diagnostics).
func (fe *FrontEnd) Mux() *transport.Mux { return fe.mux }

// LaunchAndSpawn launches a new job under tool control and co-locates the
// tool's daemons with it in a single operation — the paper's primary FE
// service, whose critical path is modeled in §4.
func (fe *FrontEnd) LaunchAndSpawn(opts Options) (*Session, error) {
	return startSession(fe, opts, false)
}

// AttachAndSpawn attaches to the running job opts.JobID and co-locates
// the tool's daemons with its tasks.
func (fe *FrontEnd) AttachAndSpawn(opts Options) (*Session, error) {
	return startSession(fe, opts, true)
}

// Session binds one job and its daemon sets (paper §3.2): the handle all
// other FE operations take. A session's exported methods are safe to call
// from the goroutine that created it; distinct sessions of one front end
// are fully independent and may run concurrently.
type Session struct {
	ID int

	p        *cluster.Proc
	fe       *FrontEnd
	ep       *transport.Endpoint
	eng      *lmonp.Conn
	beMaster *lmonp.Conn
	mwMaster *lmonp.Conn

	tab        proctab.Table
	daemons    []DaemonInfo
	timeout    time.Duration
	chunkBytes int
	tableMode  TableMode
	collChunk  int    // collective-plane chunk bound (0 = coll default)
	collWindow int    // collective-plane credit window (0 = coll default, <0 = off)
	collTag    uint32 // BE-fabric collective sequence (FE side)
	mwTag      uint32 // MW-fabric collective sequence (FE side)
	userTags   uint32 // AllocTag counter (guarded by mu)

	// Timeline holds the merged e0..e11 critical-path marks for this
	// session (paper Figure 2); consumed by the performance model.
	Timeline engine.Timeline

	// Observability plane (nil = Options.Obs off). obsReg is the FE-local
	// metrics registry; obsRec records FE spans and instants; obsHarvest
	// stashes the latest tree-harvested snapshot per fabric.
	obsMode    ObsMode
	obsReg     *obs.Registry
	obsRec     *obs.Recorder
	obsMu      sync.Mutex
	obsHarvest map[string]obs.Snapshot

	// mu guards the lifecycle flags and middleware state below against
	// concurrent session operations.
	mu          sync.Mutex
	mwInfos     []DaemonInfo
	mwNodes     []string
	mwLaunching bool
	established bool // launch completed; conns and watchers are live
	detached    bool
	killed      bool
	faultDetail string // why the watchdog tore the session down ("" = no fault)

	// Fault subsystem state: once established, dedicated watcher
	// goroutines own all reads of the engine and BE-master connections,
	// demultiplexing synchronous status replies and tool data from
	// asynchronous status events (job exit, daemon loss).
	engStatus *vtime.Chan[[]byte]      // engine TypeStatus payloads
	engToken  *vtime.Chan[struct{}]    // serializes engine request/reply exchanges
	beUsr     *vtime.Chan[[]byte]      // BE-master TypeUsrData payloads
	beColl    *vtime.Chan[collEvent]   // BE-master collective chunk/end frames (lockstep tags)
	beTags    *tagRouter               // BE-master user-tagged collective streams
	mwUsr     *vtime.Chan[[]byte]      // MW-master TypeUsrData payloads (after LaunchMW)
	mwColl    *vtime.Chan[collEvent]   // MW-master collective chunk/end frames (lockstep tags)
	mwTags    *tagRouter               // MW-master user-tagged collective streams
	evQ       *vtime.Chan[sessionEvOp] // status-event dispatch queue
}

// collEvent is one routed collective frame — or the decode error that
// poisoned its stream, so a malformed frame fails the pending collective
// instead of leaving it waiting for an end marker that never comes.
type collEvent struct {
	f   coll.Frame
	err error
}

// sessionEvOp is one unit of work for the session's event dispatcher:
// either an event to deliver or a callback to register (and replay to).
type sessionEvOp struct {
	ev *health.Event
	cb func(health.Event)
}

// ErrSessionClosed is returned by operations on a finished session.
var ErrSessionClosed = errors.New("core: session detached or killed")

// LaunchAndSpawn launches a new job under tool control, creating (or
// reusing) the calling process's front-end handle. Concurrent calls from
// one process share a single transport mux.
func LaunchAndSpawn(p *cluster.Proc, opts Options) (*Session, error) {
	fe, err := NewFrontEnd(p)
	if err != nil {
		return nil, err
	}
	return startSession(fe, opts, false)
}

// AttachAndSpawn attaches to the running job opts.JobID and co-locates the
// tool's daemons with its tasks.
func AttachAndSpawn(p *cluster.Proc, opts Options) (*Session, error) {
	fe, err := NewFrontEnd(p)
	if err != nil {
		return nil, err
	}
	return startSession(fe, opts, true)
}

func startSession(fe *FrontEnd, opts Options, attach bool) (*Session, error) {
	p := fe.p
	sim := p.Sim()
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = defaultSessionTimeout
	}
	// Reject sizes the wire form cannot carry before they silently
	// truncate through the request's uint32 (the engine enforces the same
	// ceiling on its side).
	if opts.ProctabChunkBytes < 0 || opts.ProctabChunkBytes > 1<<30 {
		return nil, fmt.Errorf("core: ProctabChunkBytes %d out of range [0, 2^30]", opts.ProctabChunkBytes)
	}
	// Cap at half the LMONP payload ceiling so a chunk plus its header
	// always fits one message — a bound the wire would otherwise only
	// enforce mid-transfer, with the session already up.
	if opts.CollChunkBytes < 0 || opts.CollChunkBytes > lmonp.MaxPayload/2 {
		return nil, fmt.Errorf("core: CollChunkBytes %d out of range [0, %d]", opts.CollChunkBytes, lmonp.MaxPayload/2)
	}
	s := &Session{
		ID:         nextSessionID(),
		p:          p,
		fe:         fe,
		timeout:    timeout,
		chunkBytes: opts.ProctabChunkBytes,
		collChunk:  opts.CollChunkBytes,
		collWindow: opts.CollWindow,
		tableMode:  opts.TableMode,
		obsMode:    opts.Obs,
	}
	if opts.Obs.enabled() {
		s.obsReg = obs.NewRegistry()
		s.obsRec = obs.NewRecorder(sim.Now)
		// The mux is process-wide; with several concurrent obs-on sessions
		// the accept/reject counters land in whichever registry attached
		// last (they are process-level admission counts either way).
		fe.mux.SetMetrics(s.obsReg)
	}
	launchSpan := s.obsRec.Start("launch-and-spawn", -1)
	s.Timeline.Mark(engine.MarkE0, sim.Now())
	p.Compute(feStartCost)

	ep, err := fe.mux.Open(s.ID)
	if err != nil {
		return nil, err
	}
	s.ep = ep
	feAddr := fe.mux.Addr().String()

	// Spawn the engine co-located with the RM process (same node). It
	// dials back through the mux, identified by the session hello.
	if _, err := p.Spawn(cluster.Spec{
		Exe: engine.ExeName,
		Env: map[string]string{
			engine.EnvFEAddr:  feAddr,
			engine.EnvSession: encodeSessionID(s.ID),
		},
	}); err != nil {
		s.close()
		return nil, fmt.Errorf("core: spawning engine: %w", err)
	}
	engConn, err := ep.Accept(transport.RoleEngine, timeout)
	if err != nil {
		s.close()
		return nil, fmt.Errorf("core: engine did not connect: %w", err)
	}
	s.eng = engConn

	// Compose the daemon bootstrap environment.
	daemon := opts.Daemon
	env := make(map[string]string, len(daemon.Env)+5)
	for k, v := range daemon.Env {
		env[k] = v
	}
	env[EnvFEAddr] = feAddr
	env[EnvSession] = encodeSessionID(s.ID)
	env[EnvICCLPort] = fmt.Sprint(icclPortFor(s.ID, false))
	env[EnvICCLFanout] = fmt.Sprint(opts.ICCLFanout)
	env[EnvCollChunk] = fmt.Sprint(opts.CollChunkBytes)
	env[EnvCollWindow] = fmt.Sprint(opts.CollWindow)
	env[EnvSeedMode] = opts.SeedMode.envValue()
	env[EnvTableMode] = opts.TableMode.envValue()
	env[EnvProctabChunk] = fmt.Sprint(opts.ProctabChunkBytes)
	env[EnvObs] = opts.Obs.envValue()
	env[EnvKind] = "be"
	if opts.JoinTimeout > 0 {
		env[EnvJoinTimeout] = opts.JoinTimeout.String()
	}
	if opts.Health.Period > 0 {
		env[EnvHealthPeriod] = opts.Health.Period.String()
		env[EnvHealthMiss] = fmt.Sprint(opts.Health.Miss)
		env[EnvHealthLinks] = healthLinksEnv(opts.Health)
	}
	daemon.Env = env

	var req *lmonp.Msg
	if attach {
		req = &lmonp.Msg{
			Class: lmonp.ClassFEEngine,
			Type:  lmonp.TypeAttachReq,
			Payload: engine.EncodeAttachReq(engine.AttachReq{
				JobID: opts.JobID, Daemon: daemon, ChunkBytes: opts.ProctabChunkBytes,
			}),
		}
	} else {
		req = &lmonp.Msg{
			Class: lmonp.ClassFEEngine,
			Type:  lmonp.TypeLaunchReq,
			Payload: engine.EncodeLaunchReq(engine.LaunchReq{
				Job: opts.Job, Daemon: daemon, ChunkBytes: opts.ProctabChunkBytes,
			}),
		}
	}
	if err := s.eng.Send(req); err != nil {
		s.close()
		return nil, err
	}

	// Distribute the session seed (RPDTAB + FEData) and complete the
	// FE↔master handshake under the selected pipeline.
	if opts.SeedMode == SeedStoreForward {
		err = s.launchStoreForward(opts)
	} else {
		err = s.launchCutThrough(opts)
	}
	if err != nil {
		s.close()
		return nil, err
	}

	p.Compute(feFinishCost)
	s.Timeline.Mark(engine.MarkE11, sim.Now())
	launchSpan.End()

	// The session is up: hand ownership of both connections' read sides to
	// watcher goroutines (they demux async status events from synchronous
	// replies), start the event dispatcher, and report the first
	// transition.
	s.engStatus = vtime.NewChan[[]byte](sim)
	s.engToken = vtime.NewChan[struct{}](sim)
	s.engToken.Send(struct{}{})
	s.beUsr = vtime.NewChan[[]byte](sim)
	s.beColl = vtime.NewChan[collEvent](sim)
	s.beTags = newTagRouter(sim)
	s.evQ = vtime.NewChan[sessionEvOp](sim)
	s.mu.Lock()
	s.established = true
	s.mu.Unlock()
	sim.Go(fmt.Sprintf("fe-sess-%d-events", s.ID), s.eventLoop)
	sim.Go(fmt.Sprintf("fe-sess-%d-eng-watch", s.ID), s.engineReader)
	sim.Go(fmt.Sprintf("fe-sess-%d-be-watch", s.ID), s.beReader)
	s.fire(health.Event{Kind: health.EvDaemonsSpawned, Rank: -1})
	return s, nil
}

// launchStoreForward is the serialized seed pipeline (the paper's
// Figure 2 shape, kept as the ablation baseline and the pipeline the §4
// analytic model decomposes): the FE buffers the full RPDTAB from the
// engine, waits for the spawn status, and only then accepts the master
// daemon and retransmits the table behind the handshake.
func (s *Session) launchStoreForward(opts Options) error {
	sim := s.p.Sim()
	// The engine replies with the RPDTAB first, streamed as bounded
	// chunks (the transfer overlaps the daemon spawn), then a status
	// message once the RM finished spawning. An early status message
	// means the engine failed before harvesting the table.
	tab, err := proctab.RecvStream(s.eng, lmonp.ClassFEEngine, func(msg *lmonp.Msg) error {
		if msg.Type == lmonp.TypeStatus {
			status, _, _ := engine.DecodeStatus(msg.Payload)
			return fmt.Errorf("core: engine failed: %s", status)
		}
		return fmt.Errorf("core: expected proctab stream, got %v", msg.Type)
	})
	if err != nil {
		return err
	}
	s.tab = tab
	s.obsGauge("fe.table.bytes").SetMax(uint64(tab.MemBytes()))

	status, engTL, err := s.recvStatus()
	if err != nil {
		return err
	}
	if status != "daemons-spawned" {
		return fmt.Errorf("core: engine failed: %s", status)
	}
	s.Timeline.Merge(engTL)

	// Handshake with the master back-end daemon (e7..e10): the hello-
	// routed connection for this session, never another's.
	beConn, err := s.ep.Accept(transport.RoleBE, s.timeout)
	if err != nil {
		return fmt.Errorf("core: master daemon did not connect: %w", err)
	}
	s.beMaster = beConn
	s.Timeline.Mark(engine.MarkE7, sim.Now())
	if err := s.sendHandshake(s.beMaster, lmonp.ClassFEBE, opts.FEData); err != nil {
		return err
	}
	ready, err := s.beMaster.Expect(lmonp.ClassFEBE, lmonp.TypeReady)
	if err != nil {
		return err
	}
	s.Timeline.Mark(engine.MarkE10, sim.Now())
	infos, beTL, obsBlob, err := decodeReady(ready.Payload)
	if err != nil {
		return err
	}
	s.daemons = infos
	s.Timeline.Merge(beTL)
	s.stashObsHarvest("BE", obsBlob)
	return nil
}

// RegisterStatusCB mirrors lmon_fe_regStatusCB (paper §3.2): cb fires for
// every session status transition — DaemonsSpawned, JobExited,
// DaemonExited(rank), SessionTornDown. Transitions that fired before
// registration are replayed to the new callback first, in order, so a
// callback registered right after LaunchAndSpawn still observes
// DaemonsSpawned. Callbacks run on the session's event-dispatch goroutine
// and must not block indefinitely.
func (s *Session) RegisterStatusCB(cb func(health.Event)) {
	s.mu.Lock()
	q := s.evQ
	s.mu.Unlock()
	if q == nil {
		// Never-established session: no events ever fire.
		return
	}
	q.Send(sessionEvOp{cb: cb})
}

// fire delivers a status event through the dispatcher (in-order, with
// replay bookkeeping).
func (s *Session) fire(ev health.Event) {
	s.mu.Lock()
	q := s.evQ
	s.mu.Unlock()
	if q != nil {
		q.Send(sessionEvOp{ev: &ev})
	}
}

// eventLoop is the session's single event dispatcher: it serializes event
// delivery and callback registration so every callback sees every event
// exactly once, in order.
func (s *Session) eventLoop() {
	var log []health.Event
	var cbs []func(health.Event)
	for {
		op, ok := s.evQ.Recv()
		if !ok {
			return
		}
		switch {
		case op.cb != nil:
			cbs = append(cbs, op.cb)
			for _, ev := range log {
				op.cb(ev)
			}
		case op.ev != nil:
			log = append(log, *op.ev)
			for _, cb := range cbs {
				cb(*op.ev)
			}
		}
	}
}

// engineReader owns the engine connection's read side after launch: it
// routes synchronous status replies to waiting session operations and
// reacts to asynchronous status events (job exit) with the watchdog.
func (s *Session) engineReader() {
	for {
		msg, err := s.eng.Recv()
		if err != nil {
			s.engStatus.Close()
			// Only a severed link (the engine's host died) is a fault; a
			// clean EOF is the engine exiting after detach/kill.
			if errors.Is(err, simnet.ErrPeerDead) && !s.closed() {
				s.noteFault("engine connection lost")
				s.p.Sim().Go(fmt.Sprintf("fe-sess-%d-watchdog", s.ID), func() {
					s.watchdogTeardown("engine connection lost")
				})
			}
			return
		}
		switch msg.Type {
		case lmonp.TypeStatus:
			s.engStatus.Send(msg.Payload)
		case lmonp.TypeStatusEvent:
			ev, err := health.DecodeEvent(msg.Payload)
			if err != nil {
				continue
			}
			s.obsInstant("event:" + ev.Kind.String())
			s.fire(ev)
			if ev.Kind == health.EvJobExited {
				s.noteFault("job exited")
				s.p.Sim().Go(fmt.Sprintf("fe-sess-%d-watchdog", s.ID), func() {
					s.watchdogTeardown("job exited")
				})
			}
		}
	}
}

// beReader owns the BE-master connection's read side after launch: tool
// data queues for RecvFromBE; daemon-loss status events (from the health
// subsystem at the BE master) fire callbacks and trigger the watchdog. An
// unexpected connection loss means the master daemon itself (or its node)
// died.
func (s *Session) beReader() {
	s.masterReader(s.beMaster, s.beUsr, s.beColl, s.beTags, "")
}

// mwReader is the MW-fabric mirror of beReader, started when LaunchMW
// commits: it demuxes the MW master connection into the MW tool-data and
// collective queues, and reacts to MW-daemon loss (health events from the
// MW heartbeat tree, or the MW master's own link severing) exactly like
// BE-daemon loss — callbacks fire and the watchdog tears the session down.
func (s *Session) mwReader() {
	s.mu.Lock()
	conn, usrQ, collQ, tags := s.mwMaster, s.mwUsr, s.mwColl, s.mwTags
	s.mu.Unlock()
	s.masterReader(conn, usrQ, collQ, tags, "mw ")
}

// masterReader is the shared demux loop for a fabric's master-daemon
// connection. kind prefixes fault details ("" for the BE fabric, "mw "
// for the MW fabric) so tools and fault errors can tell which fabric's
// daemon was lost.
func (s *Session) masterReader(conn *lmonp.Conn, usrQ *vtime.Chan[[]byte], collQ *vtime.Chan[collEvent], tags *tagRouter, kind string) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			// A clean EOF is the master daemon finalizing (tools may leave
			// the session at any time); only a severed link — the master's
			// node died — is a fault. The fault detail is recorded before
			// the queues close so blocked receive/collective callers wake
			// to an error that says why the session died.
			if errors.Is(err, simnet.ErrPeerDead) && !s.closed() {
				s.noteFault(kind + "master daemon connection severed")
			}
			usrQ.Close()
			collQ.Close()
			tags.close()
			if errors.Is(err, simnet.ErrPeerDead) && !s.closed() {
				s.fire(health.Event{
					Kind: health.EvDaemonExited, Rank: 0,
					Detail: kind + "master daemon connection severed",
				})
				s.p.Sim().Go(fmt.Sprintf("fe-sess-%d-watchdog", s.ID), func() {
					s.watchdogTeardown(kind + "master daemon lost")
				})
			}
			return
		}
		switch msg.Type {
		case lmonp.TypeUsrData:
			usrQ.Send(msg.UsrData)
		case lmonp.TypeCollChunk, lmonp.TypeCollEnd:
			f, err := coll.DecodeMsg(msg.Type == lmonp.TypeCollEnd, msg.Payload, msg.UsrData)
			switch {
			case err != nil:
				// An undecodable frame names no trustworthy tag: poison the
				// lockstep queue and every tagged stream so no pending
				// collective waits for an end marker that never comes.
				collQ.Send(collEvent{err: err})
				tags.poison(err)
			case f.H.Tag >= coll.MinUserTag:
				tags.send(f.H.Tag, collEvent{f: f})
			default:
				collQ.Send(collEvent{f: f})
			}
		case lmonp.TypeObsMetrics:
			// The finalize-time harvest: a cumulative fabric-wide snapshot
			// folded up the tree and pushed by the master before it closes.
			fabric := "BE"
			if kind != "" {
				fabric = "MW"
			}
			s.stashObsHarvest(fabric, msg.Payload)
		case lmonp.TypeStatusEvent:
			ev, err := health.DecodeEvent(msg.Payload)
			if err != nil {
				continue
			}
			if kind != "" {
				ev.Detail = kind + "fabric: " + ev.Detail
			}
			s.obsInstant(kind + "event:" + ev.Kind.String())
			s.fire(ev)
			if ev.Kind == health.EvDaemonExited {
				detail := fmt.Sprintf("%sdaemon rank %d lost", kind, ev.Rank)
				s.noteFault(detail)
				s.p.Sim().Go(fmt.Sprintf("fe-sess-%d-watchdog", s.ID), func() {
					s.watchdogTeardown(detail)
				})
			}
		}
	}
}

// watchdogTeardown reacts to a fatal session fault: it wins the lifecycle
// transition (or yields to a teardown already in flight), best-effort
// kills the job and daemons through the engine, releases every connection,
// and fires SessionTornDown. Idempotent across the sever/heartbeat/job-exit
// detection paths racing each other.
func (s *Session) watchdogTeardown(detail string) {
	if !s.endSession(true) {
		return
	}
	_, _ = s.engExchange(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeKill}) // best effort; the engine may be gone
	s.finishTeardown("watchdog: " + detail)
}

// awaitEngPayload waits for the next engine status payload routed by the
// engine reader, bounded by the session timeout.
func (s *Session) awaitEngPayload() ([]byte, error) {
	payload, ok, timedOut := s.engStatus.RecvTimeout(s.timeout)
	if timedOut {
		return nil, fmt.Errorf("core: session %d: engine status timeout", s.ID)
	}
	if !ok {
		return nil, fmt.Errorf("core: session %d: engine connection lost", s.ID)
	}
	return payload, nil
}

// engExchange performs one request/reply exchange with the engine under
// the session's exchange token. The engine's command loop replies in
// request order while engStatus wakes waiters in park order, so two
// overlapping exchanges (say LaunchMW racing the watchdog's kill) could
// otherwise each collect the other's reply.
func (s *Session) engExchange(m *lmonp.Msg) ([]byte, error) {
	if _, ok := s.engToken.Recv(); !ok {
		return nil, fmt.Errorf("core: session %d: torn down", s.ID)
	}
	defer s.engToken.Send(struct{}{})
	if err := s.eng.Send(m); err != nil {
		return nil, err
	}
	return s.awaitEngPayload()
}

// finishTeardown releases the session's connections and delivers the
// terminal SessionTornDown event. The event dispatcher stays available so
// callbacks registered after the fact still get the full history replayed.
func (s *Session) finishTeardown(detail string) {
	s.close()
	s.fire(health.Event{Kind: health.EvSessionTornDown, Rank: -1, Detail: detail})
}

// sendHandshake sends the session handshake to a master daemon: the
// handshake message itself (carrying the piggybacked tool data), then the
// RPDTAB as a bounded-chunk stream.
func (s *Session) sendHandshake(c *lmonp.Conn, class lmonp.MsgClass, feData []byte) error {
	if err := c.Send(&lmonp.Msg{Class: class, Type: lmonp.TypeHandshake, UsrData: feData}); err != nil {
		return err
	}
	return proctab.SendStream(c, class, s.tab, s.chunkBytes)
}

func (s *Session) recvStatus() (string, engine.Timeline, error) {
	msg, err := s.eng.Expect(lmonp.ClassFEEngine, lmonp.TypeStatus)
	if err != nil {
		return "", engine.Timeline{}, err
	}
	return engine.DecodeStatus(msg.Payload)
}

// closed reports whether the session has been detached or killed.
func (s *Session) closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detached || s.killed
}

// noteFault records the first terminal fault's detail so receive paths
// can report why the session died; later faults keep the original cause.
func (s *Session) noteFault(detail string) {
	s.mu.Lock()
	// A session the tool already ended has no fault to report — late
	// events from the dying daemons must not turn a clean Detach/Kill
	// into a "torn down" error.
	if !s.detached && !s.killed && s.faultDetail == "" {
		s.faultDetail = detail
	}
	s.mu.Unlock()
}

// closedErr is what a receive path returns on a finished session: the
// bare ErrSessionClosed after a tool-initiated Detach/Kill, or — when
// the watchdog tore the session down — an error wrapping the terminal
// fault detail (e.g. "session torn down: daemon rank 3 lost"), so tools
// can report why a gather died rather than just that it did.
func (s *Session) closedErr() error {
	s.mu.Lock()
	d := s.faultDetail
	s.mu.Unlock()
	if d == "" {
		return ErrSessionClosed
	}
	return fmt.Errorf("core: session torn down: %s: %w", d, ErrSessionClosed)
}

// Proctab returns the job's RPDTAB.
func (s *Session) Proctab() proctab.Table { return s.tab }

// Daemons returns the per-daemon records gathered during handshake.
func (s *Session) Daemons() []DaemonInfo { return s.daemons }

// SendToBE ships tool data to the master back-end daemon (which typically
// broadcasts it over ICCL).
func (s *Session) SendToBE(data []byte) error {
	if s.beMaster == nil || s.closed() {
		return ErrSessionClosed
	}
	return s.beMaster.Send(&lmonp.Msg{Class: lmonp.ClassFEBE, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromBE receives tool data from the master back-end daemon (queued
// by the session's BE watcher, which filters out status events). On a
// session the watchdog tore down, the error wraps the terminal fault
// detail (see closedErr).
func (s *Session) RecvFromBE() ([]byte, error) {
	if s.beMaster == nil || s.closed() {
		return nil, s.closedErr()
	}
	data, ok := s.beUsr.Recv()
	if !ok {
		return nil, s.closedErr()
	}
	return data, nil
}

// endSession flips the given lifecycle flag exactly once; it reports
// whether the caller won the transition. A session that never finished
// launching (startSession failed before returning it) is not transitionable:
// Detach and Kill on it are idempotent no-ops, so racing them against a
// failed launch cannot touch the half-initialized connection set.
func (s *Session) endSession(kill bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.established || s.detached || s.killed {
		return false
	}
	if kill {
		s.killed = true
	} else {
		s.detached = true
	}
	return true
}

// Detach ends tool control, leaving the job running. Daemons observe their
// FE/ICCL connections closing and shut themselves down.
func (s *Session) Detach() error {
	if !s.endSession(false) {
		return ErrSessionClosed
	}
	// Tear down even when the exchange fails: the session is over either
	// way, and the mux endpoint must be released.
	defer s.finishTeardown("detached by tool")
	payload, err := s.engExchange(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeDetach})
	if err != nil {
		return err
	}
	status, _, err := engine.DecodeStatus(payload)
	if err != nil {
		return err
	}
	if status != "detached" {
		return fmt.Errorf("core: detach failed: %s", status)
	}
	return nil
}

// Kill terminates the job, its tasks and all daemons.
func (s *Session) Kill() error {
	if !s.endSession(true) {
		return ErrSessionClosed
	}
	defer s.finishTeardown("killed by tool")
	payload, err := s.engExchange(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeKill})
	if err != nil {
		return err
	}
	status, _, err := engine.DecodeStatus(payload)
	if err != nil {
		return err
	}
	if status != "killed" {
		return fmt.Errorf("core: kill failed: %s", status)
	}
	return nil
}

func (s *Session) close() {
	dropSharedSeg(s.ID)
	if s.eng != nil {
		s.eng.Close()
	}
	s.mu.Lock()
	be, mw := s.beMaster, s.mwMaster
	s.mu.Unlock()
	if be != nil {
		be.Close()
	}
	if mw != nil {
		mw.Close()
	}
	if s.ep != nil {
		s.ep.Close()
	}
}

// decodeReady parses a ready payload: daemon infos + component timeline +
// the fabric's harvested metrics snapshot (empty when observability is
// off).
func decodeReady(b []byte) ([]DaemonInfo, engine.Timeline, []byte, error) {
	rd := lmonp.NewReader(b)
	infosRaw, err := rd.Bytes()
	if err != nil {
		return nil, engine.Timeline{}, nil, err
	}
	infos, err := decodeDaemonInfos(infosRaw)
	if err != nil {
		return nil, engine.Timeline{}, nil, err
	}
	tlRaw, err := rd.Bytes()
	if err != nil {
		return nil, engine.Timeline{}, nil, err
	}
	tl, err := engine.DecodeTimeline(tlRaw)
	if err != nil {
		return nil, engine.Timeline{}, nil, err
	}
	// The harvested-metrics field is optional: an obs-off fabric omits it
	// entirely, keeping the obs-off ready message byte-identical to the
	// pre-observability wire format (zero cost when the plane is off).
	if rd.Remaining() == 0 {
		return infos, tl, nil, nil
	}
	obsBlob, err := rd.Bytes()
	return infos, tl, obsBlob, err
}

func encodeReady(infos []DaemonInfo, tl engine.Timeline, obsBlob []byte) []byte {
	b := lmonp.AppendBytes(nil, encodeDaemonInfos(infos))
	b = lmonp.AppendBytes(b, tl.Encode())
	if len(obsBlob) == 0 {
		return b
	}
	return lmonp.AppendBytes(b, obsBlob)
}

// healthLinksEnv renders the heartbeat-transport knob for the daemon
// bootstrap environment.
func healthLinksEnv(h HealthOptions) string {
	if h.Dial {
		return "dial"
	}
	return "iccl"
}

// splitNodeList parses the RM-provided node list: a hostlist-compressed
// range expression ("n[0-999999]") or a plain comma-joined list. Expansion
// interns the shared suffix structure, so a million-node list costs one
// slice, not a million independent strings.
func splitNodeList(s string) []string {
	return hostlist.Expand(s)
}

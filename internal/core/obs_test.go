package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/health"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// Observability-plane coverage: the metrics harvest and trace export of
// ObsOn sessions, their behavior on torn-down sessions (wrapped terminal
// fault, never a hang), process-kill fault surfacing through adopted
// connections, and Timeline merge determinism. Run with -race: the
// concurrent-session test drives eight obs-on sessions over one mux.

func TestObsMetricsSnapshotEndToEnd(t *testing.T) {
	sim, cl, _ := rig(t, 5)
	cl.Register("obs_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		if err := be.Collective().Gather([]byte("contribution")); err != nil {
			t.Errorf("rank %d gather: %v", be.Rank(), err)
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: 5, TasksPerNode: 2},
			Daemon:     rm.DaemonSpec{Exe: "obs_be"},
			ICCLFanout: 2,
			Obs:        ObsOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Gather(); err != nil {
			t.Fatal(err)
		}
		snap, err := s.MetricsSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		// The harvest reached the FE: daemon-side counters are summed
		// across the fabric, gauges keep the fabric-wide peak.
		if got := snap.Counters["seed.fwd.chunks"]; got == 0 {
			t.Error("no seed forwards harvested from the daemons")
		}
		if got := snap.Counters["iccl.tx.frames"]; got == 0 {
			t.Error("no iccl tx frames harvested")
		}
		if got := snap.Gauges["seed.src.bytes"]; got == 0 {
			t.Error("seed source bytes gauge missing")
		}
		if snap.Gauges["fe.table.bytes"] != uint64(s.Proctab().MemBytes()) {
			t.Errorf("fe.table.bytes = %d, want %d", snap.Gauges["fe.table.bytes"], s.Proctab().MemBytes())
		}
		// The FE-side collective counters fired for the gather.
		if snap.Counters["coll.fe.rx.frames"] == 0 {
			t.Error("FE collective rx counter never fired")
		}
		// The busiest seed link cannot beat physics: it carried at least
		// one frame and at most the whole forwarded stream.
		if lm := snap.Gauges["seed.link.bytes.max"]; lm == 0 || lm > snap.Counters["seed.fwd.bytes"] {
			t.Errorf("seed.link.bytes.max = %d, out of range (fwd total %d)", lm, snap.Counters["seed.fwd.bytes"])
		}
	})
}

func TestObsDisabledAccessors(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("off_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		// The plane is off: the FE must not have planted the obs env.
		if v := p.Env(EnvObs); v != ObsDefault.envValue() {
			t.Errorf("daemon sees %s=%q with obs off", EnvObs, v)
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "off_be"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.MetricsSnapshot(); !errors.Is(err, ErrObsDisabled) {
			t.Errorf("MetricsSnapshot with obs off: %v", err)
		}
		if err := s.WriteTrace(&bytes.Buffer{}); !errors.Is(err, ErrObsDisabled) {
			t.Errorf("WriteTrace with obs off: %v", err)
		}
	})
}

func TestObsConcurrentSessionsOverOneMux(t *testing.T) {
	// Eight obs-on sessions in parallel goroutines of one FE process:
	// every registry, recorder and harvest path runs concurrently (the
	// -race assertion), and each session's snapshot and trace stay
	// self-consistent — metrics are per-session, not cross-bled.
	const k, nodesEach, tpn = 8, 2, 1
	sim, cl, _ := rig(t, k*nodesEach)
	cl.Register("obs_cc_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		be.Collective().Gather([]byte(p.Node().Name()))
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sessions := make([]*Session, k)
		errs := make([]error, k)
		wg := vtime.NewWaitGroup(p.Sim())
		wg.Add(k)
		for i := 0; i < k; i++ {
			i := i
			p.Sim().Go(fmt.Sprintf("obs-fe-session-%d", i), func() {
				defer wg.Done()
				s, err := LaunchAndSpawn(p, Options{
					Job:        rm.JobSpec{Exe: fmt.Sprintf("app%d", i), Nodes: nodesEach, TasksPerNode: tpn},
					Daemon:     rm.DaemonSpec{Exe: "obs_cc_be"},
					ICCLFanout: 2,
					Obs:        ObsOn,
				})
				if err != nil {
					errs[i] = err
					return
				}
				if _, err := s.Gather(); err != nil {
					errs[i] = err
					return
				}
				sessions[i] = s
			})
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("session %d: %v", i, err)
			}
		}
		for i, s := range sessions {
			snap, err := s.MetricsSnapshot()
			if err != nil {
				t.Errorf("session %d snapshot: %v", i, err)
				continue
			}
			// Each session harvested exactly its own fabric: one relayed
			// table of nodesEach*tpn tasks, gathered from nodesEach daemons.
			if got := snap.Counters["coll.fe.rx.frames"]; got == 0 {
				t.Errorf("session %d: no FE collective frames counted", i)
			}
			if got := snap.Gauges["fe.table.bytes"]; got != uint64(s.Proctab().MemBytes()) {
				t.Errorf("session %d: fe.table.bytes = %d, want its own table %d",
					i, got, s.Proctab().MemBytes())
			}
			var buf bytes.Buffer
			if err := s.WriteTrace(&buf); err != nil {
				t.Errorf("session %d trace: %v", i, err)
				continue
			}
			var events []map[string]any
			if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
				t.Errorf("session %d trace not a JSON array: %v", i, err)
				continue
			}
			if len(events) == 0 || events[0]["ph"] != "M" {
				t.Errorf("session %d trace missing metadata header", i)
			}
		}
	})
}

func TestObsMetricsSnapshotOnWatchdogTornSession(t *testing.T) {
	// The satellite regression: harvesting metrics on a session the
	// watchdog tore down must return the wrapped terminal fault — not
	// hang on a dead fabric, not return half-harvested numbers.
	const nodes = 4
	sim, cl, _ := rig(t, nodes)
	registerResidentBE(t, cl, "obs_hb_be")
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "obs_hb_be"},
			Health: HealthOptions{Period: 200 * time.Millisecond, Miss: 2},
			Obs:    ObsOn,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Obs works on the live session.
		if _, err := s.MetricsSnapshot(); err != nil {
			t.Fatalf("snapshot on live session: %v", err)
		}
		chans := collectEvents(s, sim)
		p.Sim().Sleep(time.Second)
		victim := s.Daemons()[nodes-1].Host
		if !cl.KillNodeByName(victim) {
			t.Fatalf("KillNodeByName(%q) found nothing", victim)
		}
		if _, ok := chans[health.EvSessionTornDown].Recv(); !ok {
			t.Fatal("no SessionTornDown event")
		}
		_, err = s.MetricsSnapshot()
		if !errors.Is(err, ErrSessionClosed) {
			t.Errorf("snapshot on torn session: %v, want wrapped ErrSessionClosed", err)
		}
		if err == nil || !strings.Contains(err.Error(), "lost") {
			t.Errorf("snapshot error %q does not carry the terminal fault detail", err)
		}
	})
}

func TestKilledEngineSurfacesPeerDeathAndTearsDown(t *testing.T) {
	// The adopted-connection regression: killing the engine *process*
	// (its node stays up, so no node-death signal exists) must sever the
	// engine's FE connection with ErrPeerDead — the watchdog then tears
	// the session down instead of every engine operation hanging forever.
	const nodes = 4
	sim, cl, _ := rig(t, nodes)
	registerResidentBE(t, cl, "obs_ek_be")
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "obs_ek_be"},
		})
		if err != nil {
			t.Fatal(err)
		}
		chans := collectEvents(s, sim)
		p.Sim().Sleep(time.Second)

		eng := p.Node().FindProcByExe(engine.ExeName)
		if eng == nil {
			t.Fatalf("no %s process on the FE node", engine.ExeName)
		}
		eng.Kill()

		if _, ok := chans[health.EvSessionTornDown].Recv(); !ok {
			t.Fatal("no SessionTornDown after engine kill")
		}
		if _, err := s.RecvFromBE(); !errors.Is(err, ErrSessionClosed) ||
			!strings.Contains(err.Error(), "engine connection lost") {
			t.Errorf("RecvFromBE after engine kill: %v, want engine-connection-lost fault", err)
		}
	})
}

func TestTimelineMergeDeterministicAtFanoutPlusOne(t *testing.T) {
	// The merge-determinism regression at the smallest interesting tree
	// (K = fanout+1: one grandchild, so BE, MW and relay marks interleave
	// non-trivially): the merged Timeline must be sorted by (time, name),
	// and two identical runs must produce identical mark sequences.
	const fanout = 2
	const k = fanout + 1
	run := func() []engine.MarkEntry {
		var entries []engine.MarkEntry
		sim, cl, _ := rig(t, 2*k)
		cl.Register("tl_be", func(p *cluster.Proc) {
			if be, err := BEInit(p); err == nil {
				be.Finalize()
			}
		})
		cl.Register("tl_mw", func(p *cluster.Proc) {
			if mw, err := MWInit(p); err == nil {
				mw.Finalize()
			}
		})
		runFE(t, sim, cl, func(p *cluster.Proc) {
			s, err := LaunchAndSpawn(p, Options{
				Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: 1},
				Daemon:     rm.DaemonSpec{Exe: "tl_be"},
				ICCLFanout: fanout,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.LaunchMW(MWOptions{
				Nodes: k, Daemon: rm.DaemonSpec{Exe: "tl_mw"}, ICCLFanout: fanout,
			}); err != nil {
				t.Fatal(err)
			}
			entries = append([]engine.MarkEntry(nil), s.Timeline.Entries...)
		})
		return entries
	}

	first := run()
	if len(first) == 0 {
		t.Fatal("no timeline entries")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.At > b.At || (a.At == b.At && a.Name > b.Name) {
			t.Errorf("entries %d,%d out of (time, name) order: %s@%v then %s@%v",
				i-1, i, a.Name, a.At, b.Name, b.At)
		}
	}
	second := run()
	if len(first) != len(second) {
		t.Fatalf("runs differ: %d vs %d entries", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("entry %d differs between identical runs: %+v vs %+v", i, first[i], second[i])
		}
	}
}

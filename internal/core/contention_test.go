package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// Contention battery: concurrent tagged collectives multiplexing one
// session (the plane-v2 headline), the new tree primitives on both
// fabrics, mid-collective Detach/kill fault surfacing per tag, and the
// CollWindow flow-control knob end to end.

func sumU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// TestConcurrentTaggedCollectivesBothFabrics drives 8 tagged collectives
// from 4 "tool" goroutines over one session — four on the BE fabric, four
// on the MW fabric, all in flight at once. Daemons mirror each stream
// from their own per-op goroutines; the per-tag demux on every hop (FE
// reader, master FE router, tree-link routers) must keep them apart.
func TestConcurrentTaggedCollectivesBothFabrics(t *testing.T) {
	const beNodes, mwNodes = 13, 3
	sim, cl, _ := rig(t, beNodes+mwNodes)

	base := coll.MinUserTag
	beGather, beBcast, beReduce, beScatter := base, base+1, base+2, base+3
	mwGather, mwBcast, mwReduce, mwScatter := base+4, base+5, base+6, base+7
	bcast := bytes.Repeat([]byte("tagged-bcast-"), 40) // 520 B, several chunks at 128

	daemonOps := func(p *cluster.Proc, dc *DaemonCollective, rank, size int, tG, tB, tR, tS uint32) error {
		done := vtime.NewChan[error](p.Sim())
		p.Sim().Go(fmt.Sprintf("tool-g-%d", rank), func() {
			done.Send(dc.GatherTag(tG, []byte{byte(rank)}))
		})
		p.Sim().Go(fmt.Sprintf("tool-b-%d", rank), func() {
			got, err := dc.BroadcastTag(tB)
			if err == nil && !bytes.Equal(got, bcast) {
				err = fmt.Errorf("rank %d broadcast got %d bytes", rank, len(got))
			}
			done.Send(err)
		})
		p.Sim().Go(fmt.Sprintf("tool-r-%d", rank), func() {
			done.Send(dc.ReduceTag(tR, sumU64(uint64(rank+1)), "sum"))
		})
		p.Sim().Go(fmt.Sprintf("tool-s-%d", rank), func() {
			part, err := dc.ScatterTag(tS)
			if err == nil && string(part) != fmt.Sprintf("part-%d", rank) {
				err = fmt.Errorf("rank %d scatter got %q", rank, part)
			}
			done.Send(err)
		})
		for i := 0; i < 4; i++ {
			err, ok := done.Recv()
			if !ok {
				return fmt.Errorf("daemon op queue closed")
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	cl.Register("cont_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Errorf("BEInit: %v", err)
			return
		}
		if err := daemonOps(p, be.Collective(), be.Rank(), be.Size(), beGather, beBcast, beReduce, beScatter); err != nil {
			t.Errorf("BE rank %d: %v", be.Rank(), err)
			return
		}
		be.Finalize()
	})
	cl.Register("cont_mw", func(p *cluster.Proc) {
		mw, err := MWInit(p)
		if err != nil {
			t.Errorf("MWInit: %v", err)
			return
		}
		if err := daemonOps(p, mw.Collective(), mw.Rank(), mw.Size(), mwGather, mwBcast, mwReduce, mwScatter); err != nil {
			t.Errorf("MW rank %d: %v", mw.Rank(), err)
			return
		}
		mw.Finalize()
	})

	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:            rm.JobSpec{Exe: "app", Nodes: beNodes, TasksPerNode: 1},
			Daemon:         rm.DaemonSpec{Exe: "cont_be"},
			ICCLFanout:     3,
			CollChunkBytes: 128,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := s.LaunchMW(MWOptions{Nodes: mwNodes, Daemon: rm.DaemonSpec{Exe: "cont_mw"}}); err != nil {
			t.Error(err)
			return
		}
		parts := func(n int) [][]byte {
			out := make([][]byte, n)
			for rk := range out {
				out[rk] = []byte(fmt.Sprintf("part-%d", rk))
			}
			return out
		}
		checkGather := func(all [][]byte, err error, n int) error {
			if err != nil {
				return err
			}
			if len(all) != n {
				return fmt.Errorf("gathered %d of %d", len(all), n)
			}
			for rk, b := range all {
				if len(b) != 1 || b[0] != byte(rk) {
					return fmt.Errorf("rank %d slot holds %v", rk, b)
				}
			}
			return nil
		}
		checkSum := func(out []byte, err error, n int) error {
			if err != nil {
				return err
			}
			if want := uint64(n) * uint64(n+1) / 2; binary.BigEndian.Uint64(out) != want {
				return fmt.Errorf("sum %d, want %d", binary.BigEndian.Uint64(out), want)
			}
			return nil
		}

		// Four tools, each multiplexing one BE and one MW collective.
		done := vtime.NewChan[error](sim)
		sim.Go("tool-0", func() {
			all, err := s.GatherTag(beGather)
			if err := checkGather(all, err, beNodes); err != nil {
				done.Send(fmt.Errorf("be gather: %w", err))
				return
			}
			all, err = s.MWGatherTag(mwGather)
			done.Send(checkGather(all, err, mwNodes))
		})
		sim.Go("tool-1", func() {
			if err := s.BroadcastTag(beBcast, bcast); err != nil {
				done.Send(err)
				return
			}
			done.Send(s.MWBroadcastTag(mwBcast, bcast))
		})
		sim.Go("tool-2", func() {
			out, err := s.ReduceTag(beReduce)
			if err := checkSum(out, err, beNodes); err != nil {
				done.Send(fmt.Errorf("be reduce: %w", err))
				return
			}
			out, err = s.MWReduceTag(mwReduce)
			done.Send(checkSum(out, err, mwNodes))
		})
		sim.Go("tool-3", func() {
			if err := s.ScatterTag(beScatter, parts(beNodes)); err != nil {
				done.Send(err)
				return
			}
			done.Send(s.MWScatterTag(mwScatter, parts(mwNodes)))
		})
		for i := 0; i < 4; i++ {
			err, ok := done.Recv()
			if !ok {
				t.Error("tool queue closed")
				return
			}
			if err != nil {
				t.Error(err)
			}
		}
	})
}

// TestDaemonTreePrimitivesBothFabrics exercises Barrier, AllGather, and
// AllReduce — the plane-v2 primitives that never involve the front end —
// on the BE and MW fabrics of one session, then reports each daemon's
// verdict through a plain gather.
func TestDaemonTreePrimitivesBothFabrics(t *testing.T) {
	const beNodes, mwNodes = 5, 3
	sim, cl, _ := rig(t, beNodes+mwNodes)

	primitives := func(dc *DaemonCollective, rank, size int) error {
		if err := dc.Barrier(); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
		all, err := dc.AllGather([]byte{byte(rank)})
		if err != nil {
			return fmt.Errorf("allgather: %w", err)
		}
		if len(all) != size {
			return fmt.Errorf("allgather %d of %d", len(all), size)
		}
		for src, b := range all {
			if len(b) != 1 || b[0] != byte(src) {
				return fmt.Errorf("allgather slot %d holds %v", src, b)
			}
		}
		out, err := dc.AllReduce(sumU64(uint64(rank+1)), "sum")
		if err != nil {
			return fmt.Errorf("allreduce: %w", err)
		}
		if want := uint64(size) * uint64(size+1) / 2; binary.BigEndian.Uint64(out) != want {
			return fmt.Errorf("allreduce sum %d, want %d", binary.BigEndian.Uint64(out), want)
		}
		return dc.Barrier()
	}
	cl.Register("prim_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Errorf("BEInit: %v", err)
			return
		}
		verdict := []byte("ok")
		if err := primitives(be.Collective(), be.Rank(), be.Size()); err != nil {
			verdict = []byte(err.Error())
		}
		if err := be.Collective().Gather(verdict); err != nil {
			t.Errorf("BE rank %d verdict gather: %v", be.Rank(), err)
		}
		be.Finalize()
	})
	cl.Register("prim_mw", func(p *cluster.Proc) {
		mw, err := MWInit(p)
		if err != nil {
			t.Errorf("MWInit: %v", err)
			return
		}
		verdict := []byte("ok")
		if err := primitives(mw.Collective(), mw.Rank(), mw.Size()); err != nil {
			verdict = []byte(err.Error())
		}
		if err := mw.Collective().Gather(verdict); err != nil {
			t.Errorf("MW rank %d verdict gather: %v", mw.Rank(), err)
		}
		mw.Finalize()
	})

	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: beNodes, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "prim_be"},
			ICCLFanout: 4, // K = fanout+1
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := s.LaunchMW(MWOptions{Nodes: mwNodes, Daemon: rm.DaemonSpec{Exe: "prim_mw"}}); err != nil {
			t.Error(err)
			return
		}
		for kind, gather := range map[string]func() ([][]byte, error){
			"BE": s.Gather,
			"MW": s.MWGather,
		} {
			verdicts, err := gather()
			if err != nil {
				t.Errorf("%s verdict gather: %v", kind, err)
				continue
			}
			for rk, v := range verdicts {
				if string(v) != "ok" {
					t.Errorf("%s rank %d: %s", kind, rk, v)
				}
			}
		}
	})
}

// TestTaggedCollectivesDetachMidFlight detaches the session while two
// tagged collectives are blocked on daemon contributions that never come:
// both streams must wake with ErrSessionClosed — a clean tool detach, so
// the bare sentinel, not a wrapped fault — rather than hang.
func TestTaggedCollectivesDetachMidFlight(t *testing.T) {
	const n = 4
	sim, cl, _ := rig(t, n)
	cl.Register("det_be", func(p *cluster.Proc) {
		if _, err := BEInit(p); err == nil {
			vtime.NewChan[int](p.Sim()).Recv() // never contributes; detach reaps us
		}
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: n, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "det_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		tagG, tagR := s.AllocTag(), s.AllocTag()
		done := vtime.NewChan[error](sim)
		sim.Go("det-gather", func() {
			_, err := s.GatherTag(tagG)
			done.Send(err)
		})
		sim.Go("det-reduce", func() {
			_, err := s.ReduceTag(tagR)
			done.Send(err)
		})
		sim.Sleep(100 * time.Millisecond) // both streams in flight
		if err := s.Detach(); err != nil {
			t.Errorf("Detach: %v", err)
		}
		for i := 0; i < 2; i++ {
			err, ok := done.Recv()
			if !ok {
				t.Error("tagged op never returned after Detach")
				return
			}
			if !errors.Is(err, ErrSessionClosed) {
				t.Errorf("tagged op after Detach: %v, want ErrSessionClosed", err)
			}
			if err != nil && strings.Contains(err.Error(), "lost") {
				t.Errorf("clean Detach surfaced a fault detail: %v", err)
			}
		}
	})
}

// TestTaggedCollectivesKillSurfacesFaultPerTag kills a daemon's node while
// two tagged collectives wait on it: every in-flight tagged stream must
// surface the watchdog's terminal fault — ErrSessionClosed wrapped with
// which daemon died — rather than hang on its tag queue.
func TestTaggedCollectivesKillSurfacesFaultPerTag(t *testing.T) {
	const n = 6
	sim, cl, _ := rig(t, n)
	cl.Register("kill_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		if be.Rank() == 3 {
			vtime.NewChan[int](p.Sim()).Recv() // never contributes; the kill reaps us
			return
		}
		dc := be.Collective()
		p.Sim().Go(fmt.Sprintf("kg-%d", be.Rank()), func() {
			dc.GatherTag(coll.MinUserTag, []byte{byte(be.Rank())}) // errors expected at teardown
		})
		p.Sim().Go(fmt.Sprintf("kr-%d", be.Rank()), func() {
			dc.ReduceTag(coll.MinUserTag+1, sumU64(1), "sum")
		})
		vtime.NewChan[int](p.Sim()).Recv()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: n, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "kill_be"},
			ICCLFanout: 2,
			Health:     HealthOptions{Period: 200 * time.Millisecond, Miss: 2},
		})
		if err != nil {
			t.Error(err)
			return
		}
		var victimHost string
		for _, d := range s.Daemons() {
			if d.Rank == 3 {
				victimHost = d.Host
			}
		}
		done := vtime.NewChan[error](sim)
		sim.Go("kill-gather", func() {
			_, err := s.GatherTag(coll.MinUserTag)
			done.Send(err)
		})
		sim.Go("kill-reduce", func() {
			_, err := s.ReduceTag(coll.MinUserTag + 1)
			done.Send(err)
		})
		sim.Sleep(500 * time.Millisecond) // streams blocked on rank 3
		if !cl.KillNodeByName(victimHost) {
			t.Errorf("KillNodeByName(%q) found nothing", victimHost)
			return
		}
		for i := 0; i < 2; i++ {
			err, ok := done.Recv()
			if !ok {
				t.Error("tagged op never returned after daemon kill")
				return
			}
			if !errors.Is(err, ErrSessionClosed) {
				t.Errorf("tagged op after kill: %v, want wrapped ErrSessionClosed", err)
			}
			if err == nil || !strings.Contains(err.Error(), "daemon rank 3 lost") {
				t.Errorf("tagged op error %q does not carry the terminal fault detail", err)
			}
		}
	})
}

// TestCollWindowBoundsInteriorQueueDepth runs a chunked reduction with
// Options.CollWindow = 4 and checks the harvested fabric-wide
// coll.queue.depth.max gauge: the credit window must bound every interior
// (link, tag) queue at 4 chunks — the end-to-end knob test of the
// LMON_COLL_WINDOW plumbing (the iccl battery covers the per-window
// property and the unbounded ablation).
func TestCollWindowBoundsInteriorQueueDepth(t *testing.T) {
	const n, window = 13, 4
	sim, cl, _ := rig(t, n)
	payload := bytes.Repeat([]byte{0x5A}, 1024) // 16 chunks per daemon at 64 B
	cl.Register("win_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Errorf("BEInit: %v", err)
			return
		}
		if err := be.Collective().Reduce(payload, "concat"); err != nil {
			t.Errorf("rank %d reduce: %v", be.Rank(), err)
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:            rm.JobSpec{Exe: "app", Nodes: n, TasksPerNode: 1},
			Daemon:         rm.DaemonSpec{Exe: "win_be"},
			ICCLFanout:     3,
			CollChunkBytes: 64,
			CollWindow:     window,
			Obs:            ObsOn,
		})
		if err != nil {
			t.Error(err)
			return
		}
		out, err := s.Reduce()
		if err != nil {
			t.Error(err)
			return
		}
		if len(out) != n*len(payload) {
			t.Errorf("concat of %d daemons yields %d bytes, want %d", n, len(out), n*len(payload))
		}
		sim.Sleep(time.Second) // let the finalize obs pushes land
		snap, err := s.MetricsSnapshot()
		if err != nil {
			t.Error(err)
			return
		}
		depth := snap.Gauges["coll.queue.depth.max"]
		if depth == 0 {
			t.Error("no interior rank ever queued a chunk — depth gauge missing from the harvest")
		}
		if depth > window {
			t.Errorf("fabric-wide queue depth high-water %d exceeds CollWindow %d", depth, window)
		}
	})
}

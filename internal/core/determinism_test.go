package core

import (
	"reflect"
	"testing"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/rm"
)

// TestLaunchTimelineDeterministicAtTiedInstants runs the same launch
// twice at K = fanout+1 — every child of the master forks, boots and
// dials at virtual instants that collide — and requires the merged
// session timelines to be identical. Delivery order at tied virtual
// times is pinned by scheduler (time, seq) tie-break and the fabrics'
// in-rank-order forwarding; nothing may leak host-runtime scheduling
// (goroutine wakeup order, map iteration) into the virtual clock.
func TestLaunchTimelineDeterministicAtTiedInstants(t *testing.T) {
	const fanout = 4
	const nodes = fanout + 1
	launch := func() []engine.MarkEntry {
		sim, cl, _ := rig(t, nodes)
		cl.Register("det_be", func(p *cluster.Proc) {
			if be, err := BEInit(p); err == nil {
				be.Finalize()
			}
		})
		var entries []engine.MarkEntry
		runFE(t, sim, cl, func(p *cluster.Proc) {
			s, err := LaunchAndSpawn(p, Options{
				Job:        rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 2},
				Daemon:     rm.DaemonSpec{Exe: "det_be"},
				ICCLFanout: fanout,
			})
			if err != nil {
				t.Error(err)
				return
			}
			entries = append(entries, s.Timeline.Entries...)
			if err := s.Kill(); err != nil {
				t.Error(err)
			}
		})
		return entries
	}
	first, second := launch(), launch()
	if len(first) == 0 {
		t.Fatal("launch produced an empty timeline")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two identical launches produced different timelines:\n  first:  %v\n  second: %v", first, second)
	}
}

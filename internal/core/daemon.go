package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/engine"
	"launchmon/internal/health"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/obs"
	"launchmon/internal/proctab"
	"launchmon/internal/transport"
)

// This file is the fabric-agnostic daemon-side session core: everything a
// LaunchMON daemon does to join its session — master handshake, ICCL
// bootstrap with the cut-through seed stream (or the store-and-forward
// baseline), per-rank seed validation, the collective tool-data plane,
// the ready gather, and the heartbeat tree — is identical between the
// back-end and middleware fabrics up to a small profile (LMONP class,
// transport role, tree port band, timeline mark names). BEInit and MWInit
// are thin wrappers over initDaemon with their fabric's profile.

// fabricProfile names what differs between the two daemon fabrics.
type fabricProfile struct {
	kind string // diagnostic name: "BE" or "MW"
	mw   bool   // selects the MW port band (ICCL + health trees)

	class lmonp.MsgClass
	role  transport.Role

	markNetStart  string // master: handshake consumed, fabric setup begins
	markNetDone   string // master: tree fully connected
	markSeedValid string // every rank: reassembled seed validated
}

var (
	beFabric = fabricProfile{
		kind: "BE", class: lmonp.ClassFEBE, role: transport.RoleBE,
		markNetStart: engine.MarkE8, markNetDone: engine.MarkE9,
		markSeedValid: engine.MarkSeedValid,
	}
	mwFabric = fabricProfile{
		kind: "MW", mw: true, class: lmonp.ClassFEMW, role: transport.RoleMW,
		markNetStart: engine.MarkMW8, markNetDone: engine.MarkMW9,
		markSeedValid: engine.MarkMWSeedValid,
	}
)

// daemonSession is the shared daemon-side state. BackEnd and Middleware
// embed it, so its exported methods are the common daemon API of both
// fabrics.
type daemonSession struct {
	p    *cluster.Proc
	fab  fabricProfile
	comm *iccl.Comm
	fe   *lmonp.Conn     // non-nil at the master only
	mon  *health.Monitor // nil when the session has no failure detection
	coll *DaemonCollective

	tab    proctab.Table  // full table (nil under TableSliced)
	myTab  proctab.Table  // RPDTAB entries on this daemon's node (empty on MW nodes)
	sliced bool           // TableSliced retention: tab is nil, seg has the index
	seg    *sessionShared // session-shared segment (set under TableSliced)
	feData []byte
	tl     engine.Timeline

	// The master's FE-connection demultiplexer (feroute.go), started
	// lazily by the first read-side use — RecvFromFE or a plane down hook
	// — so the seed pipeline's direct reads during init are undisturbed
	// and non-master daemons never pay for it.
	feRtOnce sync.Once
	feRt     *feRouter

	// obsReg is the daemon's observability registry (nil when LMON_OBS is
	// off). Its snapshot is tree-folded to the master and rides the ready
	// message; Finalize harvests once more, best-effort, for counters that
	// only move after launch (collectives, health).
	obsReg *obs.Registry
}

// initDaemon joins the calling daemon process into its session over the
// given fabric: the master completes the LMONP handshake with the front
// end, the ICCL tree bootstraps, the session seed (RPDTAB + FEData) is
// distributed to and validated at every daemon, and per-daemon info is
// gathered to the master for the ready message. Under the default
// cut-through pipeline the seed streams through the forming tree
// (iccl.BootstrapSeed); the store-forward baseline (selected by
// LMON_SEED_MODE) buffers it at the master and broadcasts after
// bootstrap.
func initDaemon(p *cluster.Proc, fab fabricProfile) (*daemonSession, error) {
	cfg, err := icclConfigFromEnv(p, fab.mw)
	if err != nil {
		return nil, err
	}
	if p.Env(EnvObs) == ObsOn.envValue() {
		cfg.Metrics = obs.NewRegistry()
	}
	if p.Env(EnvSeedMode) == SeedStoreForward.envValue() {
		return initStoreForward(p, &cfg, fab)
	}
	return initCutThrough(p, &cfg, fab)
}

// initCutThrough receives the session seed as a chunk stream flowing
// through the still-forming ICCL tree. Every rank reassembles the table
// with a proctab.Assembler and validates it (Finish) before contributing
// to the ready gather, so the ready message at the front end implies a
// validated, byte-identical table at every daemon of the fabric.
//
// Setup (seedRouterFromEnv, masterSeedSource) and the drain loop
// (drainSeed) each run in their own frame: this function's frame is the
// one resident under the whole launch — every daemon goroutine parks
// somewhere below it — so the router closures, handshake buffers, and
// assembler state must not widen it (see iccl.bootstrap's stack note).
func initCutThrough(p *cluster.Proc, cfg *iccl.Config, fab fabricProfile) (*daemonSession, error) {
	d := &daemonSession{p: p, fab: fab, obsReg: cfg.Metrics}

	rt, err := d.seedRouterFromEnv(cfg)
	if err != nil {
		return nil, err
	}
	var src iccl.SeedSource
	if cfg.Rank == 0 {
		if src, err = d.masterSeedSource(); err != nil {
			return nil, err
		}
	}

	comm, seed, err := iccl.BootstrapSeedRouted(p, *cfg, src, rt)
	if err != nil {
		return nil, err
	}
	d.comm = comm
	if comm.IsMaster() {
		d.tl.Mark(fab.markNetDone, p.Sim().Now())
	}
	if err := d.setupCollective(); err != nil {
		return nil, err
	}
	if err := d.drainSeed(seed); err != nil {
		return nil, err
	}
	// All child forwards must drain before any other down-flowing traffic
	// may use the tree links.
	if err := seed.Wait(); err != nil {
		return nil, err
	}
	return d, d.completeInit(cfg)
}

// seedRouterFromEnv builds the rank-sliced retention router
// (TableSliced): BE daemons route the seed so each keeps only its own
// slice, consulting the session-shared host→rank map; MW daemons receive
// an empty stream (their slice is empty by construction) and read the
// table, when they need it, from the same shared index. Unset
// EnvTableMode means full retention (nil router) so hand-rolled rigs
// that bypass the FE keep the legacy shape.
func (d *daemonSession) seedRouterFromEnv(cfg *iccl.Config) (*iccl.SeedRouter, error) {
	p := d.p
	if p.Env(EnvTableMode) != TableSliced.envValue() {
		return nil, nil
	}
	session, err := strconv.Atoi(p.Env(EnvSession))
	if err != nil {
		return nil, fmt.Errorf("core: bad %s: %w", EnvSession, err)
	}
	d.sliced = true
	d.seg = sharedSegFor(session)
	if d.fab.mw {
		return nil, nil
	}
	ranks := d.seg.hostRanks(cfg.Nodelist)
	chunkBytes := 0
	if cb := p.Env(EnvProctabChunk); cb != "" {
		if chunkBytes, err = strconv.Atoi(cb); err != nil {
			return nil, fmt.Errorf("core: bad %s: %w", EnvProctabChunk, err)
		}
	}
	return &iccl.SeedRouter{
		RankOf: func(host string) (int, bool) {
			r, ok := ranks[host]
			return r, ok
		},
		ChunkBytes: chunkBytes,
	}, nil
}

// masterSeedSource connects the master to the FE through the session mux
// and consumes the handshake (the piggybacked tool data arrives ahead of
// the table stream), then adapts the connection so each relayed RPDTAB
// chunk feeds straight into the tree's seed stream as it arrives.
func (d *daemonSession) masterSeedSource() (iccl.SeedSource, error) {
	p := d.p
	fe, err := dialFE(p, d.fab.role)
	if err != nil {
		return nil, fmt.Errorf("core: %s master dialing FE: %w", d.fab.kind, err)
	}
	d.fe = fe
	handshake, err := d.fe.Expect(d.fab.class, lmonp.TypeHandshake)
	if err != nil {
		return nil, err
	}
	d.tl.Mark(d.fab.markNetStart, p.Sim().Now())
	return seedSourceFromFE(d.fe, handshake.UsrData), nil
}

// drainSeed consumes the locally delivered stream: frame 0 carries the
// piggybacked FEData, later frames the RPDTAB chunks; the end marker's
// total validates the reassembly (under TableSliced the stream — and so
// the assembled table — is just this daemon's rank slice, already
// validated chunk by chunk).
func (d *daemonSession) drainSeed(seed *iccl.Seed) error {
	var asm proctab.Assembler
	var tab proctab.Table
	for {
		f, err := seed.Next()
		if err != nil {
			return err
		}
		if f.End {
			if d.sliced {
				tab, err = asm.FinishSlice(int(f.Total))
			} else {
				tab, err = asm.Finish(int(f.Total))
			}
			if err != nil {
				return err
			}
			break
		}
		if f.H.Index == 0 {
			d.feData = append([]byte(nil), f.Body...)
			continue
		}
		if err := asm.Add(f.Body); err != nil {
			return err
		}
	}
	d.tl.Mark(d.fab.markSeedValid, d.p.Sim().Now())
	if d.sliced {
		// The routed stream carried exactly the entries this daemon owns.
		d.myTab = tab
	} else {
		d.tab = tab
		d.myTab = d.tab.OnHost(d.p.Node().Name())
	}
	return nil
}

// seedSourceFromFE adapts the master's FE connection into the tree's
// seed stream: a synthesized frame 0 with the handshake's FEData, then
// one frame per relayed RPDTAB chunk, closed by the relay's end marker.
// Chunk sums are computed here (the LMONP relay ships bare payloads); the
// end marker's digest arrives from the FE, so the master's stream check
// covers the whole engine→FE→master path.
func seedSourceFromFE(fe *lmonp.Conn, feData []byte) iccl.SeedSource {
	idx := uint32(0)
	return func() (coll.Frame, error) {
		if idx == 0 {
			idx = 1
			return coll.Frame{
				H: coll.Header{Op: coll.OpSeed, Index: 0}, Body: feData, Sum: lmonp.Sum64(feData),
			}, nil
		}
		msg, err := fe.Recv()
		if err != nil {
			return coll.Frame{}, err
		}
		switch msg.Type {
		case lmonp.TypeProctabChunk:
			f := coll.Frame{
				H: coll.Header{Op: coll.OpSeed, Index: idx}, Body: msg.Payload, Sum: lmonp.Sum64(msg.Payload),
			}
			idx++
			return f, nil
		case lmonp.TypeProctabEnd:
			total, digest, err := proctab.DecodeEndMarker(msg.Payload)
			if err != nil {
				return coll.Frame{}, fmt.Errorf("core: seed end marker: %w", err)
			}
			f := coll.Frame{H: coll.Header{Op: coll.OpSeed, Index: idx}, End: true, Total: total, Sum: digest}
			idx++
			return f, nil
		default:
			return coll.Frame{}, fmt.Errorf("core: unexpected %v message in session-seed stream", msg.Type)
		}
	}
}

// initStoreForward is the serialized baseline: the master buffers the
// full chunk-streamed RPDTAB from the FE, the tree bootstraps, and the
// seed goes out as one monolithic ICCL broadcast.
func initStoreForward(p *cluster.Proc, cfg *iccl.Config, fab fabricProfile) (*daemonSession, error) {
	d := &daemonSession{p: p, fab: fab, obsReg: cfg.Metrics}

	var masterTab proctab.Table
	var feData []byte
	if cfg.Rank == 0 {
		fe, err := dialFE(p, fab.role)
		if err != nil {
			return nil, fmt.Errorf("core: %s master dialing FE: %w", fab.kind, err)
		}
		d.fe = fe
		handshake, err := d.fe.Expect(fab.class, lmonp.TypeHandshake)
		if err != nil {
			return nil, err
		}
		d.tl.Mark(fab.markNetStart, p.Sim().Now())
		feData = handshake.UsrData
		masterTab, err = proctab.RecvStream(d.fe, fab.class, nil)
		if err != nil {
			return nil, err
		}
	}

	comm, err := iccl.Bootstrap(p, *cfg)
	if err != nil {
		return nil, err
	}
	d.comm = comm
	if comm.IsMaster() {
		d.tl.Mark(fab.markNetDone, p.Sim().Now())
	}
	if err := d.setupCollective(); err != nil {
		return nil, err
	}

	// Distribute RPDTAB + piggybacked FE data to every daemon.
	tab, data, err := distributeSessionSeed(comm, masterTab, feData)
	if err != nil {
		return nil, err
	}
	d.tab = tab
	d.tl.Mark(fab.markSeedValid, p.Sim().Now())
	d.myTab = tab.OnHost(p.Node().Name())
	d.feData = data
	return d, d.completeInit(cfg)
}

// setupCollective attaches the session's collective tool-data plane.
func (d *daemonSession) setupCollective() error {
	collChunk := 0
	if cc := d.p.Env(EnvCollChunk); cc != "" {
		var err error
		if collChunk, err = strconv.Atoi(cc); err != nil {
			return fmt.Errorf("core: bad %s: %w", EnvCollChunk, err)
		}
	}
	collWindow := 0
	if cw := d.p.Env(EnvCollWindow); cw != "" {
		var err error
		if collWindow, err = strconv.Atoi(cw); err != nil {
			return fmt.Errorf("core: bad %s: %w", EnvCollWindow, err)
		}
	}
	d.coll = newDaemonCollective(d, collChunk, collWindow)
	return nil
}

// completeInit is the shared tail of both seed pipelines: gather
// per-daemon info for the ready message, then join the heartbeat tree.
func (d *daemonSession) completeInit(cfg *iccl.Config) error {
	// Gather per-daemon info to the master; it rides the ready message.
	mine := encodeDaemonInfo(DaemonInfo{
		Rank:      d.comm.Rank(),
		Host:      d.p.Node().Name(),
		Pid:       d.p.Pid(),
		Tasks:     len(d.myTab),
		PeakBytes: d.peakTableBytes(),
	})
	all, err := d.comm.Gather(mine)
	if err != nil {
		return err
	}
	// Fold every daemon's metrics snapshot up the same tree links the
	// gather just used (per-link FIFO keeps the two in order): O(chunk)
	// per link, merged pairwise on the way up. The aggregate rides the
	// ready message so the FE has a fabric-wide launch-time snapshot
	// without any extra round trip.
	obsBlob, err := d.harvestObs()
	if err != nil {
		return err
	}
	if d.comm.IsMaster() {
		infos := make([]DaemonInfo, 0, len(all))
		for _, raw := range all {
			di, err := decodeDaemonInfo(raw)
			if err != nil {
				return err
			}
			infos = append(infos, di)
		}
		if err := d.fe.Send(&lmonp.Msg{
			Class:   d.fab.class,
			Type:    lmonp.TypeReady,
			Payload: encodeReady(infos, d.tl, obsBlob),
		}); err != nil {
			return err
		}
	}

	// Join the fabric's heartbeat tree when the front end enabled failure
	// detection; the master forwards failure reports upstream as LMONP
	// status events. Started after the ready message so the launch critical
	// path is not charged for it.
	return d.startHealth(cfg)
}

// harvestObs folds this fabric's per-daemon metrics snapshots up the
// ICCL tree: every rank contributes its registry's encoded snapshot, the
// fold merges pairwise (counters sum, gauges max), and the master gets
// the fabric-wide aggregate — O(chunk) bytes per link regardless of K.
// Nil registry (obs off) short-circuits to no traffic at all. Every rank
// must call it at the same point in the collective sequence.
func (d *daemonSession) harvestObs() ([]byte, error) {
	if d.obsReg == nil {
		return nil, nil
	}
	d.obsReg.Gauge("daemon.table.bytes.max").SetMax(uint64(d.peakTableBytes()))
	return d.comm.FoldUp(d.obsReg.Snapshot().Encode(), obs.MergeEncoded)
}

// peakTableBytes models the daemon's peak private RPDTAB memory for the
// ready gather: the whole table under full retention, just the local rank
// slice under sliced retention. The session-shared index is deliberately
// not charged here — it is owned once per session (sessionShared), and
// attributing it to every daemon would make the gathered totals scale as
// O(K x daemons) on paper when the actual fabric footprint is O(K).
func (d *daemonSession) peakTableBytes() int {
	if !d.sliced {
		return d.tab.MemBytes()
	}
	return d.myTab.MemBytes()
}

// startHealth joins the daemon into its fabric's heartbeat tree when the
// FE planted a heartbeat period in the environment (Options.Health for
// the BE fabric, MWOptions.Health for the MW fabric). By default the
// heartbeats piggyback on the established ICCL tree links (ShareLinks +
// health.StartOnLinks) — no extra connections; HealthOptions.Dial
// ("dial" in EnvHealthLinks) selects the dedicated dialed tree over the
// fabric's own port band, kept as the pre-link-reuse baseline.
func (d *daemonSession) startHealth(cfg *iccl.Config) error {
	periodStr := d.p.Env(EnvHealthPeriod)
	if periodStr == "" {
		return nil
	}
	period, err := time.ParseDuration(periodStr)
	if err != nil {
		return fmt.Errorf("core: bad %s: %w", EnvHealthPeriod, err)
	}
	miss := 0
	if ms := d.p.Env(EnvHealthMiss); ms != "" {
		if miss, err = strconv.Atoi(ms); err != nil {
			return fmt.Errorf("core: bad %s: %w", EnvHealthMiss, err)
		}
	}
	session, err := strconv.Atoi(d.p.Env(EnvSession))
	if err != nil {
		return fmt.Errorf("core: bad %s: %w", EnvSession, err)
	}
	var mon *health.Monitor
	switch mode := d.p.Env(EnvHealthLinks); mode {
	case "", "iccl":
		parent, children := d.comm.ShareLinks()
		mon, err = health.StartOnLinks(d.p, health.Config{
			Rank: cfg.Rank, Size: cfg.Size, Fanout: cfg.Fanout,
			Period: period, Miss: miss, Metrics: d.obsReg,
		}, parent, children)
	case "dial":
		mon, err = health.Start(d.p, health.Config{
			Rank: cfg.Rank, Size: cfg.Size, Fanout: cfg.Fanout,
			Nodelist: cfg.Nodelist, Port: healthPortFor(session, d.fab.mw),
			Period: period, Miss: miss, Metrics: d.obsReg,
		})
	default:
		return fmt.Errorf("core: bad %s %q", EnvHealthLinks, mode)
	}
	if err != nil {
		return err
	}
	d.mon = mon
	if d.comm.IsMaster() {
		// Forward failure reports to the front end as status events. Each
		// report is delivered as a scheduler callback (lmonp sends do not
		// block), so the master parks no forwarding goroutine for the
		// lifetime of the session.
		mon.Failures().Handle(func(r health.Report, ok bool) {
			if !ok {
				return
			}
			d.fe.Send(&lmonp.Msg{
				Class: d.fab.class,
				Type:  lmonp.TypeStatusEvent,
				Payload: health.EncodeEvent(health.Event{
					Kind: health.EvDaemonExited, Rank: r.Rank, Detail: r.Detail,
				}),
			})
		})
	}
	return nil
}

// Health returns the daemon's failure-detection monitor (nil when the
// fabric was launched without health options).
func (d *daemonSession) Health() *health.Monitor { return d.mon }

// AmIMaster reports whether this daemon is the fabric master (rank 0).
func (d *daemonSession) AmIMaster() bool { return d.comm.IsMaster() }

// Rank returns the daemon's ICCL rank.
func (d *daemonSession) Rank() int { return d.comm.Rank() }

// Size returns the number of daemons in this fabric of the session.
func (d *daemonSession) Size() int { return d.comm.Size() }

// Proctab returns the full RPDTAB of the target job. Under rank-sliced
// retention (Options.TableMode == TableSliced, the default) the daemon
// holds no full copy; the call materializes a fresh table from the
// session-shared index — an O(K) allocation the caller owns, deliberately
// paid only when a tool actually asks for the whole table. Scalable tools
// should prefer MyProctab (the local slice, held anyway).
func (d *daemonSession) Proctab() proctab.Table {
	if !d.sliced {
		return d.tab
	}
	if idx := d.seg.index(); idx != nil {
		return idx.Table()
	}
	return nil
}

// FEData returns the tool data the front end piggybacked on the handshake.
func (d *daemonSession) FEData() []byte { return d.feData }

// Timeline returns the daemon's launch marks (net-setup marks at the
// master, seed-validated at every rank). The master's copy also rides the
// ready message into the front end's merged Session.Timeline.
func (d *daemonSession) Timeline() engine.Timeline { return d.tl }

// Proc returns the daemon's process handle.
func (d *daemonSession) Proc() *cluster.Proc { return d.p }

// Barrier is the ICCL barrier over all daemons of this fabric.
func (d *daemonSession) Barrier() error { return d.comm.Barrier() }

// Broadcast distributes buf from the master to every daemon of the fabric.
func (d *daemonSession) Broadcast(buf []byte) ([]byte, error) { return d.comm.Broadcast(buf) }

// Gather collects one blob per daemon at the master (rank-indexed).
func (d *daemonSession) Gather(mine []byte) ([][]byte, error) { return d.comm.Gather(mine) }

// Scatter distributes parts[rank] from the master to each daemon.
func (d *daemonSession) Scatter(parts [][]byte) ([]byte, error) { return d.comm.Scatter(parts) }

// Collective returns the daemon's handle on its fabric's collective
// tool-data plane.
func (d *daemonSession) Collective() *DaemonCollective { return d.coll }

// SendToFE ships tool data to the front end (master only).
func (d *daemonSession) SendToFE(data []byte) error {
	if !d.AmIMaster() {
		return ErrNotMaster
	}
	return d.fe.Send(&lmonp.Msg{Class: d.fab.class, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromFE receives tool data from the front end (master only). Reads
// go through the master's FE router, so tool-data receives and
// concurrent tagged collectives share the connection safely.
func (d *daemonSession) RecvFromFE() ([]byte, error) {
	if !d.AmIMaster() {
		return nil, ErrNotMaster
	}
	rt := d.feRouter()
	data, ok := rt.usr.Recv()
	if !ok {
		return nil, rt.takeErr()
	}
	return data, nil
}

// Finalize leaves the session: it synchronizes the fabric's daemons,
// stops the failure detector, and closes the tree (and, at the master,
// the FE connection). Stopping the master's monitor cascades a teardown
// wave down the heartbeat tree, so daemons that already finalized are not
// reported as failures.
func (d *daemonSession) Finalize() error {
	err := d.comm.Barrier()
	// Final metrics harvest: counters that only move after launch
	// (collectives, heartbeats) fold up the still-connected tree, and the
	// master pushes the aggregate to the FE. Best-effort — a fabric
	// finalizing after a fault skips it — and gated identically at every
	// rank so the collective sequence stays aligned.
	if err == nil && d.obsReg != nil {
		if agg, ferr := d.harvestObs(); ferr == nil && d.comm.IsMaster() {
			d.fe.Send(&lmonp.Msg{Class: d.fab.class, Type: lmonp.TypeObsMetrics, Payload: agg})
		}
	}
	if d.mon != nil {
		d.mon.Stop()
	}
	d.comm.Close()
	if d.fe != nil {
		d.fe.Close()
	}
	return err
}

// distributeSessionSeed broadcasts the RPDTAB and the piggybacked tool
// data from the master over the ICCL fabric as one monolithic frame —
// the store-forward baseline of both fabrics' seed ablations, and the
// shape the paper's broadcast-vs-shared-file ablation measures. The
// master keeps its already-decoded table instead of re-decoding its own
// broadcast.
func distributeSessionSeed(comm *iccl.Comm, masterTab proctab.Table, feData []byte) (proctab.Table, []byte, error) {
	var seed []byte
	if comm.IsMaster() {
		seed = lmonp.AppendBytes(nil, masterTab.Encode())
		seed = lmonp.AppendBytes(seed, feData)
	}
	blob, err := comm.Broadcast(seed)
	if err != nil {
		return nil, nil, err
	}
	if comm.IsMaster() {
		return masterTab, append([]byte(nil), feData...), nil
	}
	rd := lmonp.NewReader(blob)
	tabEnc, err := rd.Bytes()
	if err != nil {
		return nil, nil, err
	}
	data, err := rd.Bytes()
	if err != nil {
		return nil, nil, err
	}
	tab, err := proctab.Decode(tabEnc)
	if err != nil {
		return nil, nil, err
	}
	return tab, append([]byte(nil), data...), nil
}

// dialFE connects a master daemon to its front end's transport mux,
// announcing the session ID and role from the bootstrap environment so
// the mux routes the connection to the owning session.
func dialFE(p *cluster.Proc, role transport.Role) (*lmonp.Conn, error) {
	feAddr, err := parseHostPort(p.Env(EnvFEAddr))
	if err != nil {
		return nil, err
	}
	session, err := strconv.Atoi(p.Env(EnvSession))
	if err != nil {
		return nil, fmt.Errorf("core: bad %s: %w", EnvSession, err)
	}
	return transport.Dial(p.Host(), feAddr, session, role)
}

package core

import (
	"fmt"

	"launchmon/internal/coll"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
)

// This file is the user-data collective plane (the successor of the flat
// SendToBE/RecvFromBE pipe for bulk tool traffic): Session.Broadcast /
// Scatter / Gather / Reduce on the front end, mirrored by the
// BE.Collective handle on every back-end daemon. Payloads ride the ICCL
// k-ary tree as bounded-size chunk streams (codec internal/coll, routing
// internal/iccl); interior daemons forward — and, for Reduce, combine —
// instead of the master relaying every byte over its single FE link.
//
// The plane is collective in the MPI sense: the front end and every
// back-end daemon must issue matching operations in the same order. A
// per-session tag advanced in lockstep on all participants turns order
// violations into protocol errors. Ordering guarantees: Gather results
// are rank-indexed; concat-style reductions combine in deterministic
// tree order (own subtree first, then children by rank), which is not
// rank order — tools needing rank order gather instead.

// nextCollTag advances the FE side of the session's collective sequence.
func (s *Session) nextCollTag() uint32 {
	s.collTag++
	return s.collTag
}

// sendFrameOn bridges one collective frame onto an LMONP connection —
// the single Frame→message mapping, shared by the FE sender and the
// master's up hook.
func sendFrameOn(c *lmonp.Conn, f coll.Frame) error {
	payload, usr := f.EncodeMsg()
	typ := lmonp.TypeCollChunk
	if f.End {
		typ = lmonp.TypeCollEnd
	}
	return c.Send(&lmonp.Msg{Class: lmonp.ClassFEBE, Type: typ, Payload: payload, UsrData: usr})
}

// sendCollFrame ships one FE-originated frame to the master daemon.
func (s *Session) sendCollFrame(f coll.Frame) error {
	return sendFrameOn(s.beMaster, f)
}

// Broadcast ships data to every back-end daemon over the ICCL tree. Every
// daemon receives it from BECollective.Broadcast.
func (s *Session) Broadcast(data []byte) error {
	if s.beMaster == nil || s.closed() {
		return s.closedErr()
	}
	tag := s.nextCollTag()
	for _, f := range coll.RawFrames(coll.OpBroadcast, tag, "", data, s.collChunk) {
		if err := s.sendCollFrame(f); err != nil {
			return err
		}
	}
	return nil
}

// Scatter delivers parts[rank] to each back-end daemon (one part per
// daemon, in rank order). Daemons receive their part from
// BECollective.Scatter; interior tree nodes route each part toward its
// rank's subtree, so no single link ever carries the whole part set.
func (s *Session) Scatter(parts [][]byte) error {
	if s.beMaster == nil || s.closed() {
		return s.closedErr()
	}
	if len(parts) != len(s.daemons) {
		return fmt.Errorf("core: scatter needs %d parts (one per daemon), got %d", len(s.daemons), len(parts))
	}
	tag := s.nextCollTag()
	entries := make([]coll.Entry, len(parts))
	for rk, p := range parts {
		entries[rk] = coll.Entry{Rank: rk, Blob: p}
	}
	for _, f := range coll.EntryFrames(coll.OpScatter, tag, entries, s.collChunk) {
		if err := s.sendCollFrame(f); err != nil {
			return err
		}
	}
	return nil
}

// recvCollFrame waits for the next collective frame routed by the BE
// watcher, surfacing a malformed frame's decode error or — if the
// session dies mid-collective — the terminal fault detail.
func (s *Session) recvCollFrame() (coll.Frame, error) {
	ev, ok := s.beColl.Recv()
	if !ok {
		return coll.Frame{}, s.closedErr()
	}
	if ev.err != nil {
		return coll.Frame{}, fmt.Errorf("core: malformed collective frame from master daemon: %w", ev.err)
	}
	return ev.f, nil
}

// Gather collects one byte slice from every back-end daemon
// (BECollective.Gather), indexed by rank. Contributions stream to the
// front end as bounded-size chunks routed up the tree, arriving as each
// subtree completes rather than as one monolithic master payload.
func (s *Session) Gather() ([][]byte, error) {
	if s.beMaster == nil || s.closed() {
		return nil, s.closedErr()
	}
	tag := s.nextCollTag()
	var asm coll.RankAssembler
	for {
		f, err := s.recvCollFrame()
		if err != nil {
			return nil, err
		}
		if f.H.Op != coll.OpGather || f.H.Tag != tag {
			return nil, fmt.Errorf("core: %v frame tag %d during gather tag %d (collective order diverged)",
				f.H.Op, f.H.Tag, tag)
		}
		if f.End {
			return asm.Finish(f.H, f.Total, len(s.daemons))
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

// Reduce receives the tree-combined reduction of every daemon's
// BECollective.Reduce contribution. The filter is chosen daemon-side and
// applied at every interior node, so per-link bytes are bounded by the
// combined result — a sum or top-k sample reaches the front end at a
// size independent of the daemon count.
func (s *Session) Reduce() ([]byte, error) {
	if s.beMaster == nil || s.closed() {
		return nil, s.closedErr()
	}
	tag := s.nextCollTag()
	var asm coll.RawAssembler
	for {
		f, err := s.recvCollFrame()
		if err != nil {
			return nil, err
		}
		if f.H.Op != coll.OpReduce || f.H.Tag != tag {
			return nil, fmt.Errorf("core: %v frame tag %d during reduce tag %d (collective order diverged)",
				f.H.Op, f.H.Tag, tag)
		}
		if f.End {
			return asm.Finish(f.H, f.Total)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

// BECollective is the daemon-side handle of the session's collective
// tool-data plane, mirroring the Session methods: what the FE broadcasts
// or scatters every daemon receives here, and what every daemon gathers
// or reduces arrives at the FE.
type BECollective struct {
	be *BackEnd
	pl *iccl.Plane
}

// Collective returns the daemon's handle on the session's collective
// tool-data plane.
func (b *BackEnd) Collective() *BECollective { return b.coll }

// newBECollective wires the plane: at the master, gather/reduce frames
// bridge onto the FE connection as TypeCollChunk/TypeCollEnd messages
// and broadcast/scatter frames are pulled from it.
func newBECollective(b *BackEnd, chunkBytes int) *BECollective {
	var up iccl.UpFn
	var down iccl.DownFn
	if b.comm.IsMaster() {
		up = func(f coll.Frame) error { return sendFrameOn(b.fe, f) }
		down = func() (coll.Frame, error) {
			msg, err := b.fe.Recv()
			if err != nil {
				return coll.Frame{}, err
			}
			switch msg.Type {
			case lmonp.TypeCollChunk, lmonp.TypeCollEnd:
				return coll.DecodeMsg(msg.Type == lmonp.TypeCollEnd, msg.Payload, msg.UsrData)
			default:
				return coll.Frame{}, fmt.Errorf("core: %v message while awaiting a collective frame", msg.Type)
			}
		}
	}
	return &BECollective{be: b, pl: b.comm.NewPlane(chunkBytes, up, down)}
}

// Broadcast receives the front end's next Session.Broadcast payload
// (every daemon gets the full data).
func (bc *BECollective) Broadcast() ([]byte, error) { return bc.pl.Broadcast() }

// Scatter receives this daemon's part of the front end's next
// Session.Scatter.
func (bc *BECollective) Scatter() ([]byte, error) { return bc.pl.Scatter() }

// Gather contributes mine to the front end's next Session.Gather.
func (bc *BECollective) Gather(mine []byte) error { return bc.pl.Gather(mine) }

// Reduce contributes mine to the front end's next Session.Reduce, folded
// at every tree node with the named filter ("concat", "sum", "topk:N",
// or any coll.RegisterFilter registration). All daemons must name the
// same filter.
func (bc *BECollective) Reduce(mine []byte, filter string) error { return bc.pl.Reduce(mine, filter) }

package core

import (
	"fmt"
	"sync"

	"launchmon/internal/coll"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/vtime"
)

// This file is the user-data collective plane (the successor of the flat
// SendToBE/RecvFromBE pipe for bulk tool traffic): Session.Broadcast /
// Scatter / Gather / Reduce on the front end, mirrored by the daemon-side
// Collective handle on every back-end daemon — and, since the MW fabric
// gained parity, Session.MWBroadcast / MWScatter / MWGather / MWReduce
// mirrored by Middleware.Collective over the MW tree. Payloads ride the
// fabric's ICCL k-ary tree as bounded-size chunk streams (codec
// internal/coll, routing internal/iccl); interior daemons forward — and,
// for Reduce, combine — instead of the master relaying every byte over
// its single FE link.
//
// Each plane is collective in the MPI sense: the front end and every
// daemon of the fabric must issue matching operations in the same order.
// A per-fabric tag advanced in lockstep on all participants turns order
// violations into protocol errors. Ordering guarantees: Gather results
// are rank-indexed; concat-style reductions combine in deterministic
// tree order (own subtree first, then children by rank), which is not
// rank order — tools needing rank order gather instead.

// feFabric is a snapshot of one fabric's FE-side plane state: the master
// connection the FE sends on, the queues its reader demuxes collective
// frames into (lockstep and user-tagged), and the daemon count the
// operations are sized against.
type feFabric struct {
	class lmonp.MsgClass
	conn  *lmonp.Conn
	collQ *vtime.Chan[collEvent]
	tags  *tagRouter
	size  int
	kind  string // "" for BE, "MW " for diagnostics
}

// beFab snapshots the BE fabric, or the session's terminal error.
func (s *Session) beFab() (feFabric, error) {
	if s.beMaster == nil || s.closed() {
		return feFabric{}, s.closedErr()
	}
	return feFabric{class: lmonp.ClassFEBE, conn: s.beMaster, collQ: s.beColl, tags: s.beTags, size: len(s.daemons)}, nil
}

// mwFab snapshots the MW fabric: an error when the session has no
// middleware daemons, the terminal error when the session is over.
func (s *Session) mwFab() (feFabric, error) {
	s.mu.Lock()
	conn, collQ, tags, size := s.mwMaster, s.mwColl, s.mwTags, len(s.mwInfos)
	s.mu.Unlock()
	if conn == nil {
		return feFabric{}, fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	if s.closed() {
		return feFabric{}, s.closedErr()
	}
	return feFabric{class: lmonp.ClassFEMW, conn: conn, collQ: collQ, tags: tags, size: size, kind: "MW "}, nil
}

// tagRouter demultiplexes one master connection's user-tagged collective
// streams into per-tag queues, so N tool goroutines can run M concurrent
// tagged collectives over one session without head-of-line blocking each
// other. All methods are nil-receiver-safe: hand-rolled Sessions (tests)
// that never use tagged operations carry a nil router.
type tagRouter struct {
	sim    *vtime.Sim
	mu     sync.Mutex
	closed bool
	bad    error // poison: fails current and future tagged streams
	tags   map[uint32]*vtime.Chan[collEvent]
}

func newTagRouter(sim *vtime.Sim) *tagRouter { return &tagRouter{sim: sim} }

// q returns (creating on demand) the queue of one tagged stream. Queues
// created after the router closed come pre-closed; queues created after a
// poison event come pre-poisoned — either way a late subscriber observes
// the failure instead of parking forever.
func (tr *tagRouter) q(tag uint32) *vtime.Chan[collEvent] {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.tags == nil {
		tr.tags = make(map[uint32]*vtime.Chan[collEvent])
	}
	q := tr.tags[tag]
	if q == nil {
		q = vtime.NewChan[collEvent](tr.sim)
		if tr.bad != nil {
			q.Send(collEvent{err: tr.bad})
		}
		if tr.closed {
			q.Close()
		}
		tr.tags[tag] = q
	}
	return q
}

// send routes one decoded frame to its tag's stream.
func (tr *tagRouter) send(tag uint32, ev collEvent) {
	if tr == nil {
		return
	}
	tr.q(tag).Send(ev)
}

// poison fails every tagged stream — current and future — with err (an
// undecodable frame names no trustworthy tag, so no stream may keep
// waiting).
func (tr *tagRouter) poison(err error) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.bad == nil {
		tr.bad = err
	}
	qs := make([]*vtime.Chan[collEvent], 0, len(tr.tags))
	for _, q := range tr.tags {
		qs = append(qs, q)
	}
	tr.mu.Unlock()
	for _, q := range qs {
		q.Send(collEvent{err: err})
	}
}

// close wakes every tagged receiver with stream end (the session died or
// the master finalized); the caller's closedErr explains why.
func (tr *tagRouter) close() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.closed = true
	qs := make([]*vtime.Chan[collEvent], 0, len(tr.tags))
	for _, q := range tr.tags {
		qs = append(qs, q)
	}
	tr.mu.Unlock()
	for _, q := range qs {
		q.Close()
	}
}

// drop retires a completed stream's queue so tag state does not
// accumulate across collectives.
func (tr *tagRouter) drop(tag uint32) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	delete(tr.tags, tag)
	tr.mu.Unlock()
}

// AllocTag allocates a session-unique user stream tag from
// [coll.MinUserTag, coll.MaxUserTag) for the tagged collective operations
// (BroadcastTag/ScatterTag/GatherTag/ReduceTag and the MW mirrors, paired
// with the daemon-side *Tag operations under the same tag). Safe to call
// from any goroutine.
func (s *Session) AllocTag() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	tag := coll.MinUserTag + s.userTags
	s.userTags++
	return tag
}

// checkUserTag validates an explicitly allocated stream tag.
func checkUserTag(tag uint32) error {
	if tag < coll.MinUserTag || tag >= coll.MaxUserTag {
		return fmt.Errorf("core: user tag %d outside [%d, %d)", tag, coll.MinUserTag, coll.MaxUserTag)
	}
	return nil
}

// tagFab validates a tagged operation's inputs against the fabric
// snapshot (tag range plus a usable tag router).
func tagFab(fab feFabric, tag uint32) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	if fab.tags == nil {
		return fmt.Errorf("core: session has no tagged-collective router")
	}
	return nil
}

// nextCollTag advances the FE side of the BE fabric's collective sequence.
func (s *Session) nextCollTag() uint32 {
	s.collTag++
	return s.collTag
}

// nextMWCollTag advances the FE side of the MW fabric's sequence.
func (s *Session) nextMWCollTag() uint32 {
	s.mwTag++
	return s.mwTag
}

// sendFrameOn bridges one collective frame onto an LMONP connection —
// the single Frame→message mapping, shared by the FE sender and the
// masters' up hooks.
func sendFrameOn(c *lmonp.Conn, class lmonp.MsgClass, f coll.Frame) error {
	payload, usr := f.EncodeMsg()
	typ := lmonp.TypeCollChunk
	if f.End {
		typ = lmonp.TypeCollEnd
	}
	return c.Send(&lmonp.Msg{Class: class, Type: typ, Payload: payload, UsrData: usr})
}

// Broadcast ships data to every back-end daemon over the ICCL tree. Every
// daemon receives it from Collective().Broadcast.
func (s *Session) Broadcast(data []byte) error {
	fab, err := s.beFab()
	if err != nil {
		return err
	}
	return s.collBroadcast(fab, s.nextCollTag(), data)
}

// MWBroadcast ships data to every middleware daemon over the MW tree
// (received by Middleware.Collective().Broadcast).
func (s *Session) MWBroadcast(data []byte) error {
	fab, err := s.mwFab()
	if err != nil {
		return err
	}
	return s.collBroadcast(fab, s.nextMWCollTag(), data)
}

// BroadcastTag is Broadcast on an explicitly tagged concurrent stream
// (daemons receive with Collective().BroadcastTag under the same tag).
func (s *Session) BroadcastTag(tag uint32, data []byte) error {
	fab, err := s.beFab()
	if err != nil {
		return err
	}
	if err := tagFab(fab, tag); err != nil {
		return err
	}
	return s.collBroadcast(fab, tag, data)
}

// MWBroadcastTag is BroadcastTag over the MW fabric.
func (s *Session) MWBroadcastTag(tag uint32, data []byte) error {
	fab, err := s.mwFab()
	if err != nil {
		return err
	}
	if err := tagFab(fab, tag); err != nil {
		return err
	}
	return s.collBroadcast(fab, tag, data)
}

func (s *Session) collBroadcast(fab feFabric, tag uint32, data []byte) error {
	sp := s.obsRec.Start("fe-broadcast", -1)
	defer sp.End()
	for _, f := range coll.RawFrames(coll.OpBroadcast, tag, "", data, s.collChunk) {
		if err := sendFrameOn(fab.conn, fab.class, f); err != nil {
			return err
		}
		s.obsCounter("coll.fe.tx.frames").Inc()
		s.obsCounter("coll.fe.tx.bytes").Add(uint64(len(f.Body)))
	}
	return nil
}

// Scatter delivers parts[rank] to each back-end daemon (one part per
// daemon, in rank order). Daemons receive their part from
// Collective().Scatter; interior tree nodes route each part toward its
// rank's subtree, so no single link ever carries the whole part set.
func (s *Session) Scatter(parts [][]byte) error {
	fab, err := s.beFab()
	if err != nil {
		return err
	}
	return s.collScatter(fab, s.nextCollTag(), parts)
}

// MWScatter delivers parts[rank] to each middleware daemon over the MW
// tree (received by Middleware.Collective().Scatter).
func (s *Session) MWScatter(parts [][]byte) error {
	fab, err := s.mwFab()
	if err != nil {
		return err
	}
	return s.collScatter(fab, s.nextMWCollTag(), parts)
}

// ScatterTag is Scatter on an explicitly tagged concurrent stream
// (daemons receive with Collective().ScatterTag under the same tag).
func (s *Session) ScatterTag(tag uint32, parts [][]byte) error {
	fab, err := s.beFab()
	if err != nil {
		return err
	}
	if err := tagFab(fab, tag); err != nil {
		return err
	}
	return s.collScatter(fab, tag, parts)
}

// MWScatterTag is ScatterTag over the MW fabric.
func (s *Session) MWScatterTag(tag uint32, parts [][]byte) error {
	fab, err := s.mwFab()
	if err != nil {
		return err
	}
	if err := tagFab(fab, tag); err != nil {
		return err
	}
	return s.collScatter(fab, tag, parts)
}

func (s *Session) collScatter(fab feFabric, tag uint32, parts [][]byte) error {
	if len(parts) != fab.size {
		return fmt.Errorf("core: scatter needs %d parts (one per daemon), got %d", fab.size, len(parts))
	}
	sp := s.obsRec.Start("fe-scatter", -1)
	defer sp.End()
	entries := make([]coll.Entry, len(parts))
	for rk, p := range parts {
		entries[rk] = coll.Entry{Rank: rk, Blob: p}
	}
	for _, f := range coll.EntryFrames(coll.OpScatter, tag, entries, s.collChunk) {
		if err := sendFrameOn(fab.conn, fab.class, f); err != nil {
			return err
		}
		s.obsCounter("coll.fe.tx.frames").Inc()
		s.obsCounter("coll.fe.tx.bytes").Add(uint64(len(f.Body)))
	}
	return nil
}

// recvCollFrame waits for the next collective frame routed by the
// fabric's watcher into q (the lockstep queue or one tagged stream),
// surfacing a malformed frame's decode error or — if the session dies
// mid-collective — the terminal fault detail.
func (s *Session) recvCollFrame(fab feFabric, q *vtime.Chan[collEvent]) (coll.Frame, error) {
	ev, ok := q.Recv()
	if !ok {
		return coll.Frame{}, s.closedErr()
	}
	if ev.err != nil {
		return coll.Frame{}, fmt.Errorf("core: malformed collective frame from %smaster daemon: %w", fab.kind, ev.err)
	}
	s.obsCounter("coll.fe.rx.frames").Inc()
	s.obsCounter("coll.fe.rx.bytes").Add(uint64(len(ev.f.Body)))
	return ev.f, nil
}

// Gather collects one byte slice from every back-end daemon
// (Collective().Gather), indexed by rank. Contributions stream to the
// front end as bounded-size chunks routed up the tree, arriving as each
// subtree completes rather than as one monolithic master payload.
func (s *Session) Gather() ([][]byte, error) {
	fab, err := s.beFab()
	if err != nil {
		return nil, err
	}
	return s.collGather(fab, fab.collQ, s.nextCollTag())
}

// MWGather collects one byte slice from every middleware daemon over the
// MW tree (contributed by Middleware.Collective().Gather).
func (s *Session) MWGather() ([][]byte, error) {
	fab, err := s.mwFab()
	if err != nil {
		return nil, err
	}
	return s.collGather(fab, fab.collQ, s.nextMWCollTag())
}

// GatherTag is Gather on an explicitly tagged concurrent stream: daemons
// contribute with Collective().GatherTag under the same tag (from
// AllocTag), and any number of tagged collectives may be in flight on the
// session at once, each driven by its own goroutine.
func (s *Session) GatherTag(tag uint32) ([][]byte, error) {
	fab, err := s.beFab()
	if err != nil {
		return nil, err
	}
	return s.tagGather(fab, tag)
}

// MWGatherTag is GatherTag over the MW fabric.
func (s *Session) MWGatherTag(tag uint32) ([][]byte, error) {
	fab, err := s.mwFab()
	if err != nil {
		return nil, err
	}
	return s.tagGather(fab, tag)
}

func (s *Session) tagGather(fab feFabric, tag uint32) ([][]byte, error) {
	if err := tagFab(fab, tag); err != nil {
		return nil, err
	}
	defer fab.tags.drop(tag)
	return s.collGather(fab, fab.tags.q(tag), tag)
}

func (s *Session) collGather(fab feFabric, q *vtime.Chan[collEvent], tag uint32) ([][]byte, error) {
	sp := s.obsRec.Start("fe-gather", -1)
	defer sp.End()
	var asm coll.RankAssembler
	for {
		f, err := s.recvCollFrame(fab, q)
		if err != nil {
			return nil, err
		}
		if f.H.Op != coll.OpGather || f.H.Tag != tag {
			return nil, fmt.Errorf("core: %v frame tag %d during gather tag %d (collective order diverged)",
				f.H.Op, f.H.Tag, tag)
		}
		if f.End {
			return asm.Finish(f.H, f.Total, fab.size)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

// Reduce receives the tree-combined reduction of every daemon's
// Collective().Reduce contribution. The filter is chosen daemon-side and
// applied at every interior node, so per-link bytes are bounded by the
// combined result — a sum or top-k sample reaches the front end at a
// size independent of the daemon count.
func (s *Session) Reduce() ([]byte, error) {
	fab, err := s.beFab()
	if err != nil {
		return nil, err
	}
	return s.collReduce(fab, fab.collQ, s.nextCollTag())
}

// MWReduce receives the tree-combined reduction of every middleware
// daemon's Collective().Reduce contribution over the MW tree.
func (s *Session) MWReduce() ([]byte, error) {
	fab, err := s.mwFab()
	if err != nil {
		return nil, err
	}
	return s.collReduce(fab, fab.collQ, s.nextMWCollTag())
}

// ReduceTag is Reduce on an explicitly tagged concurrent stream (daemons
// contribute with Collective().ReduceTag under the same tag).
func (s *Session) ReduceTag(tag uint32) ([]byte, error) {
	fab, err := s.beFab()
	if err != nil {
		return nil, err
	}
	return s.tagReduce(fab, tag)
}

// MWReduceTag is ReduceTag over the MW fabric.
func (s *Session) MWReduceTag(tag uint32) ([]byte, error) {
	fab, err := s.mwFab()
	if err != nil {
		return nil, err
	}
	return s.tagReduce(fab, tag)
}

func (s *Session) tagReduce(fab feFabric, tag uint32) ([]byte, error) {
	if err := tagFab(fab, tag); err != nil {
		return nil, err
	}
	defer fab.tags.drop(tag)
	return s.collReduce(fab, fab.tags.q(tag), tag)
}

func (s *Session) collReduce(fab feFabric, q *vtime.Chan[collEvent], tag uint32) ([]byte, error) {
	sp := s.obsRec.Start("fe-reduce", -1)
	defer sp.End()
	var asm coll.RawAssembler
	for {
		f, err := s.recvCollFrame(fab, q)
		if err != nil {
			return nil, err
		}
		// The K-independence invariant of filtered reduction: bytes landing
		// on the FE link are bounded by the combined result, not the fabric.
		s.obsCounter("coll.reduce.fe.rx.bytes").Add(uint64(len(f.Body)))
		if f.H.Op != coll.OpReduce || f.H.Tag != tag {
			return nil, fmt.Errorf("core: %v frame tag %d during reduce tag %d (collective order diverged)",
				f.H.Op, f.H.Tag, tag)
		}
		if f.End {
			return asm.Finish(f.H, f.Total)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

// DaemonCollective is the daemon-side handle of a fabric's collective
// tool-data plane, mirroring the Session methods: what the FE broadcasts
// or scatters every daemon of the fabric receives here, and what every
// daemon gathers or reduces arrives at the FE. Back-end daemons obtain
// it from BackEnd.Collective (paired with Session.Broadcast/...),
// middleware daemons from Middleware.Collective (paired with
// Session.MWBroadcast/...).
type DaemonCollective struct {
	d  *daemonSession
	pl *iccl.Plane
}

// BECollective is the back-end fabric's name for the daemon-side
// collective handle, kept from before the plane became fabric-agnostic.
type BECollective = DaemonCollective

// newDaemonCollective wires the plane: at the master, gather/reduce
// frames bridge onto the FE connection as TypeCollChunk/TypeCollEnd
// messages and broadcast/scatter frames are pulled from the master's FE
// router, which demuxes the connection by stream tag so concurrent
// tagged collectives share it. window is the per-(link, tag) credit
// budget of the tree links' flow control (0 = coll.DefaultWindow,
// negative = off); the FE hop itself carries no credits — it has exactly
// one consumer draining into per-tag queues and no fan-in skew.
func newDaemonCollective(d *daemonSession, chunkBytes, window int) *DaemonCollective {
	var up iccl.UpFn
	var down iccl.DownFn
	if d.comm.IsMaster() {
		up = func(f coll.Frame) error { return sendFrameOn(d.fe, d.fab.class, f) }
		down = func(tag uint32) (coll.Frame, error) { return d.feRouter().nextColl(tag) }
	}
	return &DaemonCollective{d: d, pl: d.comm.NewPlane(chunkBytes, window, up, down)}
}

// Broadcast receives the front end's next broadcast payload for this
// fabric (every daemon gets the full data).
func (dc *DaemonCollective) Broadcast() ([]byte, error) { return dc.pl.Broadcast() }

// BroadcastTag is Broadcast on an explicitly tagged concurrent stream
// (paired with Session.BroadcastTag under the same tag).
func (dc *DaemonCollective) BroadcastTag(tag uint32) ([]byte, error) { return dc.pl.BroadcastTag(tag) }

// Scatter receives this daemon's part of the front end's next scatter.
func (dc *DaemonCollective) Scatter() ([]byte, error) { return dc.pl.Scatter() }

// ScatterTag is Scatter on an explicitly tagged concurrent stream.
func (dc *DaemonCollective) ScatterTag(tag uint32) ([]byte, error) { return dc.pl.ScatterTag(tag) }

// Gather contributes mine to the front end's next gather on this fabric.
func (dc *DaemonCollective) Gather(mine []byte) error { return dc.pl.Gather(mine) }

// GatherTag is Gather on an explicitly tagged concurrent stream.
func (dc *DaemonCollective) GatherTag(tag uint32, mine []byte) error {
	return dc.pl.GatherTag(tag, mine)
}

// Reduce contributes mine to the front end's next reduce, folded at
// every tree node with the named filter ("concat", "sum", "topk:N", or
// any coll.RegisterFilter registration). All daemons must name the same
// filter.
func (dc *DaemonCollective) Reduce(mine []byte, filter string) error {
	return dc.pl.Reduce(mine, filter)
}

// ReduceTag is Reduce on an explicitly tagged concurrent stream.
func (dc *DaemonCollective) ReduceTag(tag uint32, mine []byte, filter string) error {
	return dc.pl.ReduceTag(tag, mine, filter)
}

// Barrier blocks until every daemon of the fabric has entered it: an
// up-phase of end markers gathers at the tree root, then a release wave
// flows back down (the two-phase crt_barrier shape). The front end is not
// involved.
func (dc *DaemonCollective) Barrier() error { return dc.pl.Barrier() }

// BarrierTag is Barrier on an explicitly tagged concurrent stream.
func (dc *DaemonCollective) BarrierTag(tag uint32) error { return dc.pl.BarrierTag(tag) }

// AllGather contributes mine and returns every daemon's contribution
// indexed by rank: a gather up-phase into the tree root, then the
// assembled rank table redistributed down in bounded chunks.
func (dc *DaemonCollective) AllGather(mine []byte) ([][]byte, error) { return dc.pl.AllGather(mine) }

// AllGatherTag is AllGather on an explicitly tagged concurrent stream.
func (dc *DaemonCollective) AllGatherTag(tag uint32, mine []byte) ([][]byte, error) {
	return dc.pl.AllGatherTag(tag, mine)
}

// AllReduce contributes mine to a reduction with the named filter and
// returns the combined result on every daemon: the Reduce up-phase folds
// into the root, whose final accumulator is redistributed down the tree.
func (dc *DaemonCollective) AllReduce(mine []byte, filter string) ([]byte, error) {
	return dc.pl.AllReduce(mine, filter)
}

// AllReduceTag is AllReduce on an explicitly tagged concurrent stream.
func (dc *DaemonCollective) AllReduceTag(tag uint32, mine []byte, filter string) ([]byte, error) {
	return dc.pl.AllReduceTag(tag, mine, filter)
}

package core

import (
	"fmt"

	"launchmon/internal/coll"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/vtime"
)

// This file is the user-data collective plane (the successor of the flat
// SendToBE/RecvFromBE pipe for bulk tool traffic): Session.Broadcast /
// Scatter / Gather / Reduce on the front end, mirrored by the daemon-side
// Collective handle on every back-end daemon — and, since the MW fabric
// gained parity, Session.MWBroadcast / MWScatter / MWGather / MWReduce
// mirrored by Middleware.Collective over the MW tree. Payloads ride the
// fabric's ICCL k-ary tree as bounded-size chunk streams (codec
// internal/coll, routing internal/iccl); interior daemons forward — and,
// for Reduce, combine — instead of the master relaying every byte over
// its single FE link.
//
// Each plane is collective in the MPI sense: the front end and every
// daemon of the fabric must issue matching operations in the same order.
// A per-fabric tag advanced in lockstep on all participants turns order
// violations into protocol errors. Ordering guarantees: Gather results
// are rank-indexed; concat-style reductions combine in deterministic
// tree order (own subtree first, then children by rank), which is not
// rank order — tools needing rank order gather instead.

// feFabric is a snapshot of one fabric's FE-side plane state: the master
// connection the FE sends on, the queue its reader demuxes collective
// frames into, and the daemon count the operations are sized against.
type feFabric struct {
	class lmonp.MsgClass
	conn  *lmonp.Conn
	collQ *vtime.Chan[collEvent]
	size  int
	kind  string // "" for BE, "MW " for diagnostics
}

// beFab snapshots the BE fabric, or the session's terminal error.
func (s *Session) beFab() (feFabric, error) {
	if s.beMaster == nil || s.closed() {
		return feFabric{}, s.closedErr()
	}
	return feFabric{class: lmonp.ClassFEBE, conn: s.beMaster, collQ: s.beColl, size: len(s.daemons)}, nil
}

// mwFab snapshots the MW fabric: an error when the session has no
// middleware daemons, the terminal error when the session is over.
func (s *Session) mwFab() (feFabric, error) {
	s.mu.Lock()
	conn, collQ, size := s.mwMaster, s.mwColl, len(s.mwInfos)
	s.mu.Unlock()
	if conn == nil {
		return feFabric{}, fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	if s.closed() {
		return feFabric{}, s.closedErr()
	}
	return feFabric{class: lmonp.ClassFEMW, conn: conn, collQ: collQ, size: size, kind: "MW "}, nil
}

// nextCollTag advances the FE side of the BE fabric's collective sequence.
func (s *Session) nextCollTag() uint32 {
	s.collTag++
	return s.collTag
}

// nextMWCollTag advances the FE side of the MW fabric's sequence.
func (s *Session) nextMWCollTag() uint32 {
	s.mwTag++
	return s.mwTag
}

// sendFrameOn bridges one collective frame onto an LMONP connection —
// the single Frame→message mapping, shared by the FE sender and the
// masters' up hooks.
func sendFrameOn(c *lmonp.Conn, class lmonp.MsgClass, f coll.Frame) error {
	payload, usr := f.EncodeMsg()
	typ := lmonp.TypeCollChunk
	if f.End {
		typ = lmonp.TypeCollEnd
	}
	return c.Send(&lmonp.Msg{Class: class, Type: typ, Payload: payload, UsrData: usr})
}

// Broadcast ships data to every back-end daemon over the ICCL tree. Every
// daemon receives it from Collective().Broadcast.
func (s *Session) Broadcast(data []byte) error {
	fab, err := s.beFab()
	if err != nil {
		return err
	}
	return s.collBroadcast(fab, s.nextCollTag(), data)
}

// MWBroadcast ships data to every middleware daemon over the MW tree
// (received by Middleware.Collective().Broadcast).
func (s *Session) MWBroadcast(data []byte) error {
	fab, err := s.mwFab()
	if err != nil {
		return err
	}
	return s.collBroadcast(fab, s.nextMWCollTag(), data)
}

func (s *Session) collBroadcast(fab feFabric, tag uint32, data []byte) error {
	sp := s.obsRec.Start("fe-broadcast", -1)
	defer sp.End()
	for _, f := range coll.RawFrames(coll.OpBroadcast, tag, "", data, s.collChunk) {
		if err := sendFrameOn(fab.conn, fab.class, f); err != nil {
			return err
		}
		s.obsCounter("coll.fe.tx.frames").Inc()
		s.obsCounter("coll.fe.tx.bytes").Add(uint64(len(f.Body)))
	}
	return nil
}

// Scatter delivers parts[rank] to each back-end daemon (one part per
// daemon, in rank order). Daemons receive their part from
// Collective().Scatter; interior tree nodes route each part toward its
// rank's subtree, so no single link ever carries the whole part set.
func (s *Session) Scatter(parts [][]byte) error {
	fab, err := s.beFab()
	if err != nil {
		return err
	}
	return s.collScatter(fab, s.nextCollTag(), parts)
}

// MWScatter delivers parts[rank] to each middleware daemon over the MW
// tree (received by Middleware.Collective().Scatter).
func (s *Session) MWScatter(parts [][]byte) error {
	fab, err := s.mwFab()
	if err != nil {
		return err
	}
	return s.collScatter(fab, s.nextMWCollTag(), parts)
}

func (s *Session) collScatter(fab feFabric, tag uint32, parts [][]byte) error {
	if len(parts) != fab.size {
		return fmt.Errorf("core: scatter needs %d parts (one per daemon), got %d", fab.size, len(parts))
	}
	sp := s.obsRec.Start("fe-scatter", -1)
	defer sp.End()
	entries := make([]coll.Entry, len(parts))
	for rk, p := range parts {
		entries[rk] = coll.Entry{Rank: rk, Blob: p}
	}
	for _, f := range coll.EntryFrames(coll.OpScatter, tag, entries, s.collChunk) {
		if err := sendFrameOn(fab.conn, fab.class, f); err != nil {
			return err
		}
		s.obsCounter("coll.fe.tx.frames").Inc()
		s.obsCounter("coll.fe.tx.bytes").Add(uint64(len(f.Body)))
	}
	return nil
}

// recvCollFrame waits for the next collective frame routed by the
// fabric's watcher, surfacing a malformed frame's decode error or — if
// the session dies mid-collective — the terminal fault detail.
func (s *Session) recvCollFrame(fab feFabric) (coll.Frame, error) {
	ev, ok := fab.collQ.Recv()
	if !ok {
		return coll.Frame{}, s.closedErr()
	}
	if ev.err != nil {
		return coll.Frame{}, fmt.Errorf("core: malformed collective frame from %smaster daemon: %w", fab.kind, ev.err)
	}
	s.obsCounter("coll.fe.rx.frames").Inc()
	s.obsCounter("coll.fe.rx.bytes").Add(uint64(len(ev.f.Body)))
	return ev.f, nil
}

// Gather collects one byte slice from every back-end daemon
// (Collective().Gather), indexed by rank. Contributions stream to the
// front end as bounded-size chunks routed up the tree, arriving as each
// subtree completes rather than as one monolithic master payload.
func (s *Session) Gather() ([][]byte, error) {
	fab, err := s.beFab()
	if err != nil {
		return nil, err
	}
	return s.collGather(fab, s.nextCollTag())
}

// MWGather collects one byte slice from every middleware daemon over the
// MW tree (contributed by Middleware.Collective().Gather).
func (s *Session) MWGather() ([][]byte, error) {
	fab, err := s.mwFab()
	if err != nil {
		return nil, err
	}
	return s.collGather(fab, s.nextMWCollTag())
}

func (s *Session) collGather(fab feFabric, tag uint32) ([][]byte, error) {
	sp := s.obsRec.Start("fe-gather", -1)
	defer sp.End()
	var asm coll.RankAssembler
	for {
		f, err := s.recvCollFrame(fab)
		if err != nil {
			return nil, err
		}
		if f.H.Op != coll.OpGather || f.H.Tag != tag {
			return nil, fmt.Errorf("core: %v frame tag %d during gather tag %d (collective order diverged)",
				f.H.Op, f.H.Tag, tag)
		}
		if f.End {
			return asm.Finish(f.H, f.Total, fab.size)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

// Reduce receives the tree-combined reduction of every daemon's
// Collective().Reduce contribution. The filter is chosen daemon-side and
// applied at every interior node, so per-link bytes are bounded by the
// combined result — a sum or top-k sample reaches the front end at a
// size independent of the daemon count.
func (s *Session) Reduce() ([]byte, error) {
	fab, err := s.beFab()
	if err != nil {
		return nil, err
	}
	return s.collReduce(fab, s.nextCollTag())
}

// MWReduce receives the tree-combined reduction of every middleware
// daemon's Collective().Reduce contribution over the MW tree.
func (s *Session) MWReduce() ([]byte, error) {
	fab, err := s.mwFab()
	if err != nil {
		return nil, err
	}
	return s.collReduce(fab, s.nextMWCollTag())
}

func (s *Session) collReduce(fab feFabric, tag uint32) ([]byte, error) {
	sp := s.obsRec.Start("fe-reduce", -1)
	defer sp.End()
	var asm coll.RawAssembler
	for {
		f, err := s.recvCollFrame(fab)
		if err != nil {
			return nil, err
		}
		// The K-independence invariant of filtered reduction: bytes landing
		// on the FE link are bounded by the combined result, not the fabric.
		s.obsCounter("coll.reduce.fe.rx.bytes").Add(uint64(len(f.Body)))
		if f.H.Op != coll.OpReduce || f.H.Tag != tag {
			return nil, fmt.Errorf("core: %v frame tag %d during reduce tag %d (collective order diverged)",
				f.H.Op, f.H.Tag, tag)
		}
		if f.End {
			return asm.Finish(f.H, f.Total)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

// DaemonCollective is the daemon-side handle of a fabric's collective
// tool-data plane, mirroring the Session methods: what the FE broadcasts
// or scatters every daemon of the fabric receives here, and what every
// daemon gathers or reduces arrives at the FE. Back-end daemons obtain
// it from BackEnd.Collective (paired with Session.Broadcast/...),
// middleware daemons from Middleware.Collective (paired with
// Session.MWBroadcast/...).
type DaemonCollective struct {
	d  *daemonSession
	pl *iccl.Plane
}

// BECollective is the back-end fabric's name for the daemon-side
// collective handle, kept from before the plane became fabric-agnostic.
type BECollective = DaemonCollective

// newDaemonCollective wires the plane: at the master, gather/reduce
// frames bridge onto the FE connection as TypeCollChunk/TypeCollEnd
// messages and broadcast/scatter frames are pulled from it.
func newDaemonCollective(d *daemonSession, chunkBytes int) *DaemonCollective {
	var up iccl.UpFn
	var down iccl.DownFn
	if d.comm.IsMaster() {
		up = func(f coll.Frame) error { return sendFrameOn(d.fe, d.fab.class, f) }
		down = func() (coll.Frame, error) {
			msg, err := d.fe.Recv()
			if err != nil {
				return coll.Frame{}, err
			}
			switch msg.Type {
			case lmonp.TypeCollChunk, lmonp.TypeCollEnd:
				return coll.DecodeMsg(msg.Type == lmonp.TypeCollEnd, msg.Payload, msg.UsrData)
			default:
				return coll.Frame{}, fmt.Errorf("core: %v message while awaiting a collective frame", msg.Type)
			}
		}
	}
	return &DaemonCollective{d: d, pl: d.comm.NewPlane(chunkBytes, up, down)}
}

// Broadcast receives the front end's next broadcast payload for this
// fabric (every daemon gets the full data).
func (dc *DaemonCollective) Broadcast() ([]byte, error) { return dc.pl.Broadcast() }

// Scatter receives this daemon's part of the front end's next scatter.
func (dc *DaemonCollective) Scatter() ([]byte, error) { return dc.pl.Scatter() }

// Gather contributes mine to the front end's next gather on this fabric.
func (dc *DaemonCollective) Gather(mine []byte) error { return dc.pl.Gather(mine) }

// Reduce contributes mine to the front end's next reduce, folded at
// every tree node with the named filter ("concat", "sum", "topk:N", or
// any coll.RegisterFilter registration). All daemons must name the same
// filter.
func (dc *DaemonCollective) Reduce(mine []byte, filter string) error {
	return dc.pl.Reduce(mine, filter)
}

package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/health"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// Fault-subsystem coverage: node and job loss mid-session must surface as
// status-callback events and end in a clean watchdog teardown. Run with
// -race; the simulation quiescing (sim.Run returning) is itself the
// no-leaked-timers assertion.

// registerResidentBE registers a daemon that joins the session and then
// stays resident (parked on a channel) until killed — the shape of a real
// tool daemon serving a debug session.
func registerResidentBE(t *testing.T, cl *cluster.Cluster, exe string) {
	t.Helper()
	cl.Register(exe, func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		_ = be
		vtime.NewChan[int](p.Sim()).Recv() // resident until killed
	})
}

// collectEvents registers a status callback that fans events out to
// per-kind channels.
func collectEvents(s *Session, sim *vtime.Sim) map[health.EventKind]*vtime.Chan[health.Event] {
	chans := map[health.EventKind]*vtime.Chan[health.Event]{
		health.EvDaemonsSpawned:  vtime.NewChan[health.Event](sim),
		health.EvJobExited:       vtime.NewChan[health.Event](sim),
		health.EvDaemonExited:    vtime.NewChan[health.Event](sim),
		health.EvSessionTornDown: vtime.NewChan[health.Event](sim),
	}
	s.RegisterStatusCB(func(ev health.Event) {
		if ch, ok := chans[ev.Kind]; ok {
			ch.Send(ev)
		}
	})
	return chans
}

func TestNodeKillMidSessionFiresDaemonExitedAndTearsDown(t *testing.T) {
	const nodes = 8
	period := 200 * time.Millisecond
	const miss = 3
	sim, cl, _ := rig(t, nodes)
	registerResidentBE(t, cl, "hb_be")

	var detectLatency time.Duration
	var exited, torn health.Event
	victimHost := ""
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 2},
			Daemon: rm.DaemonSpec{Exe: "hb_be"},
			Health: HealthOptions{Period: period, Miss: miss},
		})
		if err != nil {
			t.Error(err)
			return
		}
		chans := collectEvents(s, sim)
		if _, ok := chans[health.EvDaemonsSpawned].Recv(); !ok {
			t.Error("no DaemonsSpawned event")
			return
		}
		p.Sim().Sleep(1 * time.Second) // session steady state

		// Kill the node hosting daemon rank 5.
		const victim = 5
		for _, d := range s.Daemons() {
			if d.Rank == victim {
				victimHost = d.Host
			}
		}
		if victimHost == "" {
			t.Errorf("no daemon with rank %d", victim)
			return
		}
		killAt := p.Sim().Now()
		if !cl.KillNodeByName(victimHost) {
			t.Errorf("KillNodeByName(%q) found nothing", victimHost)
			return
		}

		ev, ok := chans[health.EvDaemonExited].Recv()
		if !ok {
			t.Error("no DaemonExited event")
			return
		}
		exited = ev
		detectLatency = p.Sim().Now() - killAt

		ev, ok = chans[health.EvSessionTornDown].Recv()
		if !ok {
			t.Error("no SessionTornDown event")
			return
		}
		torn = ev

		// The session is over: further operations are clean errors, and
		// receives report why the watchdog tore the session down.
		if err := s.Kill(); err != ErrSessionClosed {
			t.Errorf("Kill after watchdog teardown: %v", err)
		}
		if _, err := s.RecvFromBE(); !errors.Is(err, ErrSessionClosed) ||
			!strings.Contains(err.Error(), "lost") {
			t.Errorf("RecvFromBE after teardown: %v", err)
		}

		// Clean teardown: every surviving node is back to just its slurmd
		// (tasks and resident daemons reaped), and the victim is empty.
		for i := 0; i < nodes; i++ {
			n := cl.Node(i)
			want := 1
			if n.Name() == victimHost {
				want = 0
			}
			if got := n.NumProcs(); got != want {
				t.Errorf("node %s has %d procs after teardown, want %d", n.Name(), got, want)
			}
		}
	})

	if exited.Rank != 5 {
		t.Errorf("DaemonExited rank = %d, want 5", exited.Rank)
	}
	deadline := time.Duration(miss+1) * period
	if detectLatency > deadline {
		t.Errorf("detection took %v, miss-threshold deadline is %v", detectLatency, deadline)
	}
	if torn.Kind != health.EvSessionTornDown {
		t.Fatalf("unexpected teardown event %+v", torn)
	}
}

func TestJobExitFiresCallbackAndTearsDown(t *testing.T) {
	sim, cl, mgr := rig(t, 4)
	registerResidentBE(t, cl, "hb_be")

	var jobExited, torn bool
	var code int
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "hb_be"},
			Health: HealthOptions{Period: 200 * time.Millisecond},
		})
		if err != nil {
			t.Error(err)
			return
		}
		chans := collectEvents(s, sim)
		p.Sim().Sleep(500 * time.Millisecond)

		// Fault-inject the launcher itself: the engine's job watch must
		// report the exit and the watchdog must reap the orphaned tasks
		// and daemons.
		j, ok := mgr.FindJob(1)
		if !ok {
			t.Error("job 1 not found")
			return
		}
		j.LauncherProc().Kill()

		ev, ok := chans[health.EvJobExited].Recv()
		if !ok {
			t.Error("no JobExited event")
			return
		}
		jobExited, code = true, ev.Code
		if _, ok := chans[health.EvSessionTornDown].Recv(); ok {
			torn = true
		}
		// Orphan cleanup: only slurmd left per node.
		for i := 0; i < 4; i++ {
			if got := cl.Node(i).NumProcs(); got != 1 {
				t.Errorf("node%d has %d procs after job-exit teardown", i, got)
			}
		}
	})
	if !jobExited {
		t.Fatal("JobExited never fired")
	}
	if code != 137 {
		t.Errorf("JobExited code = %d, want 137", code)
	}
	if !torn {
		t.Fatal("SessionTornDown never fired")
	}
}

func TestCallbackReplayAfterTeardown(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("ok_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	var kinds []health.EventKind
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "ok_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.Kill(); err != nil {
			t.Error(err)
			return
		}
		// Registered after the fact: the full history replays in order.
		done := vtime.NewChan[struct{}](sim)
		s.RegisterStatusCB(func(ev health.Event) {
			kinds = append(kinds, ev.Kind)
			if ev.Kind == health.EvSessionTornDown {
				done.Send(struct{}{})
			}
		})
		done.Recv()
	})
	want := []health.EventKind{health.EvDaemonsSpawned, health.EvSessionTornDown}
	if len(kinds) != len(want) {
		t.Fatalf("replayed kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("replayed kinds %v, want %v", kinds, want)
		}
	}
}

func TestDetachKillOnNeverEstablishedSession(t *testing.T) {
	// Regression: Detach/Kill on a session whose launch never completed
	// must be idempotent no-ops (previously they raced the half-initialized
	// connection set and dereferenced nil conns).
	s := &Session{ID: 999}
	for i := 0; i < 2; i++ {
		if err := s.Detach(); err != ErrSessionClosed {
			t.Errorf("Detach on never-established session: %v", err)
		}
		if err := s.Kill(); err != ErrSessionClosed {
			t.Errorf("Kill on never-established session: %v", err)
		}
	}
	// Callback registration on a dead-on-arrival session is a no-op, not
	// a panic.
	s.RegisterStatusCB(func(health.Event) {})
}

func TestDetachKillRaceAgainstFailedLaunch(t *testing.T) {
	// A launch that fails (crashing daemons) must leave a session object —
	// if one ever escaped — inert: concurrent Detach/Kill during and after
	// the failure window are no-ops.
	sim, cl, _ := rig(t, 4)
	cl.Register("crash_be", func(p *cluster.Proc) {})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		_, err := LaunchAndSpawn(p, Options{
			Job:     rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon:  rm.DaemonSpec{Exe: "crash_be"},
			Timeout: 10 * time.Second,
		})
		if err == nil {
			t.Error("launch with crashing daemons succeeded")
		}
	})
}

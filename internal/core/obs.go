package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"

	"launchmon/internal/coll"
	"launchmon/internal/engine"
	"launchmon/internal/obs"
)

// This file is the front-end surface of the session observability plane
// (internal/obs): the Options.Obs knob, the FE-side registry and span
// recorder, the per-fabric metrics harvest stash, and the exported
// Session.MetricsSnapshot / Session.WriteTrace accessors. The plane runs
// entirely in virtual time but charges none itself — its only wire cost
// is the harvest fold (iccl.Comm.FoldUp) riding the ready gather and the
// finalize barrier, which the launch-pipeline bench bounds at ≤2% drift.

// ObsMode selects per-session observability: spans and instants recorded
// at the front end, per-link metrics counted at every daemon, and
// tree-harvested metric snapshots delivered with the ready message and at
// session finalize.
type ObsMode int

const (
	// ObsDefault leaves observability off — instrumented paths cost one
	// nil-check branch and no wire bytes.
	ObsDefault ObsMode = iota
	// ObsOn enables the full plane: FE recorder + registry, daemon
	// registries (planted via LMON_OBS), and the harvest folds.
	ObsOn
	// ObsOff is the explicit off value (same behavior as ObsDefault; kept
	// distinct so rigs can override an inherited default).
	ObsOff
)

// String names the mode for diagnostics and the bootstrap environment.
func (m ObsMode) String() string {
	if m == ObsOn {
		return "on"
	}
	return "off"
}

// envValue renders the mode for the daemon bootstrap environment
// (EnvObs / LMON_OBS).
func (m ObsMode) envValue() string { return m.String() }

// enabled reports whether the mode turns the plane on.
func (m ObsMode) enabled() bool { return m == ObsOn }

// ErrObsDisabled is returned by observability accessors on a session
// launched without Options.Obs = ObsOn.
var ErrObsDisabled = errors.New("core: session observability disabled (set Options.Obs)")

func init() {
	// obs/merge folds encoded metric snapshots at every tree node
	// (counters sum, gauges max) — the filter behind live, tool-driven
	// metric harvests over the collective plane: every daemon contributes
	// Collective().Reduce(snapshot, "obs/merge") and the FE's Reduce
	// returns one fabric-wide snapshot at a K-independent size.
	coll.RegisterFilter("obs/merge", func(arg string) (coll.Combine, error) {
		return obs.MergeEncoded, nil
	})
}

// obsCounter returns the named FE-side counter (nil/no-op when obs off).
func (s *Session) obsCounter(name string) *obs.Counter { return s.obsReg.Counter(name) }

// obsGauge returns the named FE-side gauge (nil/no-op when obs off).
func (s *Session) obsGauge(name string) *obs.Gauge { return s.obsReg.Gauge(name) }

// obsInstant records a point event on the front-end track at the current
// virtual time (no-op when obs off).
func (s *Session) obsInstant(name string) {
	s.obsRec.Instant(name, -1, s.p.Sim().Now())
}

// stashObsHarvest installs one fabric's harvested snapshot. Each harvest
// is a cumulative fold over the fabric's whole life, so a newer harvest
// replaces the previous one for the same fabric instead of merging into
// it (merging would double-count the ready-time harvest inside the
// finalize-time one); distinct fabrics (BE, MW) stay separate and are
// summed only at read time.
func (s *Session) stashObsHarvest(fabric string, blob []byte) {
	if s.obsReg == nil || len(blob) == 0 {
		return
	}
	snap, err := obs.DecodeSnapshot(blob)
	if err != nil {
		s.obsCounter("obs.harvest.decode.errors").Inc()
		return
	}
	s.obsMu.Lock()
	if s.obsHarvest == nil {
		s.obsHarvest = make(map[string]obs.Snapshot)
	}
	s.obsHarvest[fabric] = snap
	s.obsMu.Unlock()
	s.obsCounter("obs.harvests").Inc()
}

// MetricsSnapshot returns the session's merged metrics: the FE-local
// registry plus the most recent tree-harvested snapshot of each fabric
// (delivered with the ready message, refreshed at daemon finalize, or
// pulled live by tools reducing with the "obs/merge" filter). Counters
// sum across daemons; gauges keep the fabric-wide maximum. On a session
// the watchdog tore down it returns the wrapped terminal fault instead.
func (s *Session) MetricsSnapshot() (obs.Snapshot, error) {
	if s.obsReg == nil {
		return obs.Snapshot{}, ErrObsDisabled
	}
	s.mu.Lock()
	fault := s.faultDetail
	s.mu.Unlock()
	if fault != "" {
		return obs.Snapshot{}, s.closedErr()
	}
	// The goroutine gauge is simulator-process-wide (all sessions share
	// the Go runtime), so it is informational, not per-session.
	s.obsGauge("fe.goroutines").SetMax(uint64(runtime.NumGoroutine()))
	snap := s.obsReg.Snapshot()
	s.obsMu.Lock()
	for _, h := range s.obsHarvest {
		snap.Merge(h)
	}
	s.obsMu.Unlock()
	return snap, nil
}

// traceChains are the monotone mark chains of the launch pipeline
// (engine chain, handshake chain, MW chain — see internal/engine's mark
// docs); WriteTrace synthesizes one span per adjacent mark pair, so the
// exported trace reproduces the chains' partial order visually.
var traceChains = [][]string{
	{engine.MarkE0, engine.MarkE1, engine.MarkE2, engine.MarkE3, engine.MarkE4,
		engine.MarkE5, engine.MarkE6, engine.MarkE11},
	{engine.MarkE5, engine.MarkE7, engine.MarkE8, engine.MarkE9, engine.MarkE10, engine.MarkE11},
	{engine.MarkMW7, engine.MarkMW8, engine.MarkMW9, engine.MarkMW10},
}

// durationMarks are duration-valued timeline entries (not timestamps);
// they make no sense as trace instants and are skipped.
var durationMarks = map[string]bool{
	engine.MarkTracing: true,
	engine.MarkFetch:   true,
}

// WriteTrace exports the session as a Chrome/Perfetto trace-event JSON
// array: the live FE spans (seed relay, collective operations), one
// synthesized span per adjacent pair of each monotone mark chain, and
// every timestamp mark of the merged Timeline as an instant event. Load
// the output in ui.perfetto.dev or chrome://tracing.
func (s *Session) WriteTrace(w io.Writer) error {
	if s.obsRec == nil {
		return ErrObsDisabled
	}
	rec := obs.NewRecorder(s.p.Sim().Now)
	for _, sp := range s.obsRec.Spans() {
		rec.AddSpan(sp.Name, sp.Rank, sp.Begin, sp.Dur)
	}
	for _, in := range s.obsRec.Instants() {
		rec.Instant(in.Name, in.Rank, in.At)
	}
	for _, e := range s.Timeline.Entries {
		if !durationMarks[e.Name] {
			rec.Instant(e.Name, -1, e.At)
		}
	}
	for _, chain := range traceChains {
		for i := 0; i+1 < len(chain); i++ {
			a, okA := s.Timeline.Get(chain[i])
			b, okB := s.Timeline.Get(chain[i+1])
			if okA && okB && b >= a {
				rec.AddSpan(chain[i]+".."+chain[i+1], -1, a, b-a)
			}
		}
	}
	return rec.WriteChromeTrace(w, s.ID, fmt.Sprintf("lmon-session-%d", s.ID))
}

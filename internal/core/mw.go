package core

import (
	"fmt"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/transport"
)

// MWOptions parameterize middleware daemon launches.
type MWOptions struct {
	// Nodes is how many fresh nodes to allocate for the TBŌN daemons.
	Nodes int
	// Daemon describes the middleware daemon executable.
	Daemon rm.DaemonSpec
	// FEData is tool bootstrap data piggybacked to every MW daemon with
	// the RPDTAB (e.g. MRNet topology information).
	FEData []byte
	// ICCLFanout of the MW bootstrap fabric; 0 = flat.
	ICCLFanout int
}

// LaunchMW launches middleware (TBŌN) daemons on newly allocated nodes
// (paper §3.4): the engine asks the RM for the allocation and the scalable
// spawn; each daemon receives a personality handle (its rank), the RPDTAB,
// and a bootstrap fabric it can use to set up its own network.
func (s *Session) LaunchMW(opts MWOptions) ([]string, error) {
	s.mu.Lock()
	if s.detached || s.killed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if s.mwMaster != nil || s.mwLaunching {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: session %d already has middleware daemons", s.ID)
	}
	s.mwLaunching = true
	s.mu.Unlock()

	daemon := opts.Daemon
	env := make(map[string]string, len(daemon.Env)+5)
	for k, v := range daemon.Env {
		env[k] = v
	}
	env[EnvFEAddr] = s.fe.mux.Addr().String()
	env[EnvSession] = fmt.Sprint(s.ID)
	env[EnvICCLPort] = fmt.Sprint(icclPortFor(s.ID, true))
	env[EnvICCLFanout] = fmt.Sprint(opts.ICCLFanout)
	env[EnvKind] = "mw"
	daemon.Env = env

	// A previous timed-out attempt may have left a late MW-master dial
	// queued on this session's endpoint; shed it so this attempt cannot
	// handshake with the stale daemon set.
	s.ep.Drain(transport.RoleMW)

	// A failed launch releases the slot so the tool may retry.
	committed := false
	defer func() {
		if !committed {
			s.mu.Lock()
			s.mwLaunching = false
			s.mu.Unlock()
		}
	}()

	payload, err := s.engExchange(&lmonp.Msg{
		Class:   lmonp.ClassFEEngine,
		Type:    lmonp.TypeSpawnReq,
		Payload: engine.EncodeSpawnReq(engine.SpawnReq{Nodes: opts.Nodes, Daemon: daemon}),
	})
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(payload)
	status, err := rd.String()
	if err != nil {
		return nil, err
	}
	if status != "mw-spawned" {
		return nil, fmt.Errorf("core: middleware spawn failed: %s", status)
	}
	nodes, err := rd.StringList()
	if err != nil {
		return nil, err
	}

	// Handshake with the master middleware daemon over this session's
	// mux endpoint (hello role "mw-master").
	mwConn, err := s.ep.Accept(transport.RoleMW, s.timeout)
	if err != nil {
		return nil, fmt.Errorf("core: MW master did not connect: %w", err)
	}
	if err := s.sendHandshake(mwConn, lmonp.ClassFEMW, opts.FEData); err != nil {
		mwConn.Close()
		return nil, err
	}
	ready, err := mwConn.Expect(lmonp.ClassFEMW, lmonp.TypeReady)
	if err != nil {
		mwConn.Close()
		return nil, err
	}
	infos, _, err := decodeReady(ready.Payload)
	if err != nil {
		mwConn.Close()
		return nil, err
	}
	committed = true
	s.mu.Lock()
	s.mwMaster = mwConn
	s.mwNodes = nodes
	s.mwInfos = infos
	s.mwLaunching = false
	s.mu.Unlock()
	return nodes, nil
}

// MWNodes returns the middleware allocation (after LaunchMW).
func (s *Session) MWNodes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.mwNodes...)
}

// MWDaemons returns the per-daemon records of the middleware set.
func (s *Session) MWDaemons() []DaemonInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DaemonInfo(nil), s.mwInfos...)
}

// mwConn returns the middleware master connection, if any.
func (s *Session) mwConn() *lmonp.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mwMaster
}

// SendToMW ships tool data to the master middleware daemon.
func (s *Session) SendToMW(data []byte) error {
	c := s.mwConn()
	if c == nil {
		return fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	return c.Send(&lmonp.Msg{Class: lmonp.ClassFEMW, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromMW receives tool data from the master middleware daemon.
func (s *Session) RecvFromMW() ([]byte, error) {
	c := s.mwConn()
	if c == nil {
		return nil, fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	msg, err := c.Expect(lmonp.ClassFEMW, lmonp.TypeUsrData)
	if err != nil {
		return nil, err
	}
	return msg.UsrData, nil
}

// Middleware is the MW-daemon-side session handle (paper §3.4). Its
// personality handle is the rank, assigned by the RM spawn.
type Middleware struct {
	p    *cluster.Proc
	comm *iccl.Comm
	fe   *lmonp.Conn // master only

	tab    proctab.Table
	feData []byte
}

// MWInit joins a middleware daemon into its session, mirroring BEInit:
// master handshakes with the FE, the fabric bootstraps, and the RPDTAB and
// piggybacked data are distributed so TBŌN daemons can locate the target
// program and back-end daemons.
func MWInit(p *cluster.Proc) (*Middleware, error) {
	cfg, err := icclConfigFromEnv(p, true)
	if err != nil {
		return nil, err
	}
	mw := &Middleware{p: p}
	var masterTab proctab.Table
	var feData []byte
	var tl engine.Timeline
	if cfg.Rank == 0 {
		fe, err := dialFE(p, transport.RoleMW)
		if err != nil {
			return nil, fmt.Errorf("core: MW master dialing FE: %w", err)
		}
		mw.fe = fe
		handshake, err := mw.fe.Expect(lmonp.ClassFEMW, lmonp.TypeHandshake)
		if err != nil {
			return nil, err
		}
		feData = handshake.UsrData
		masterTab, err = proctab.RecvStream(mw.fe, lmonp.ClassFEMW, nil)
		if err != nil {
			return nil, err
		}
	}

	comm, err := iccl.Bootstrap(p, cfg)
	if err != nil {
		return nil, err
	}
	mw.comm = comm

	tab, data, err := distributeSessionSeed(comm, masterTab, feData)
	if err != nil {
		return nil, err
	}
	mw.tab = tab
	mw.feData = data

	mine := encodeDaemonInfo(DaemonInfo{Rank: comm.Rank(), Host: p.Node().Name(), Pid: p.Pid()})
	all, err := comm.Gather(mine)
	if err != nil {
		return nil, err
	}
	if comm.IsMaster() {
		infos := make([]DaemonInfo, 0, len(all))
		for _, rawInfo := range all {
			d, err := decodeDaemonInfo(rawInfo)
			if err != nil {
				return nil, err
			}
			infos = append(infos, d)
		}
		if err := mw.fe.Send(&lmonp.Msg{
			Class:   lmonp.ClassFEMW,
			Type:    lmonp.TypeReady,
			Payload: encodeReady(infos, tl),
		}); err != nil {
			return nil, err
		}
	}
	return mw, nil
}

// Personality returns the daemon's personality handle (its rank) and the
// total daemon count — the MPI-rank-like identity of §3.4.
func (m *Middleware) Personality() (rank, size int) { return m.comm.Rank(), m.comm.Size() }

// AmIMaster reports whether this daemon is the MW master.
func (m *Middleware) AmIMaster() bool { return m.comm.IsMaster() }

// Proctab returns the target job's RPDTAB.
func (m *Middleware) Proctab() proctab.Table { return m.tab }

// FEData returns the piggybacked tool bootstrap data.
func (m *Middleware) FEData() []byte { return m.feData }

// Proc returns the daemon's process handle.
func (m *Middleware) Proc() *cluster.Proc { return m.p }

// Barrier, Broadcast, Gather and Scatter expose the bootstrap fabric for
// the TBŌN's own network setup.
func (m *Middleware) Barrier() error { return m.comm.Barrier() }

// Broadcast distributes buf from the MW master to every MW daemon.
func (m *Middleware) Broadcast(buf []byte) ([]byte, error) { return m.comm.Broadcast(buf) }

// Gather collects one blob per MW daemon at the master.
func (m *Middleware) Gather(mine []byte) ([][]byte, error) { return m.comm.Gather(mine) }

// Scatter distributes parts[rank] from the MW master to each daemon.
func (m *Middleware) Scatter(parts [][]byte) ([]byte, error) { return m.comm.Scatter(parts) }

// SendToFE ships tool data to the front end (master only).
func (m *Middleware) SendToFE(data []byte) error {
	if !m.AmIMaster() {
		return ErrNotMaster
	}
	return m.fe.Send(&lmonp.Msg{Class: lmonp.ClassFEMW, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromFE receives tool data from the front end (master only).
func (m *Middleware) RecvFromFE() ([]byte, error) {
	if !m.AmIMaster() {
		return nil, ErrNotMaster
	}
	msg, err := m.fe.Expect(lmonp.ClassFEMW, lmonp.TypeUsrData)
	if err != nil {
		return nil, err
	}
	return msg.UsrData, nil
}

// Finalize leaves the session.
func (m *Middleware) Finalize() error {
	err := m.comm.Barrier()
	m.comm.Close()
	if m.fe != nil {
		m.fe.Close()
	}
	return err
}

package core

import (
	"fmt"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
)

// MWOptions parameterize middleware daemon launches.
type MWOptions struct {
	// Nodes is how many fresh nodes to allocate for the TBŌN daemons.
	Nodes int
	// Daemon describes the middleware daemon executable.
	Daemon rm.DaemonSpec
	// FEData is tool bootstrap data piggybacked to every MW daemon with
	// the RPDTAB (e.g. MRNet topology information).
	FEData []byte
	// ICCLFanout of the MW bootstrap fabric; 0 = flat.
	ICCLFanout int
}

// LaunchMW launches middleware (TBŌN) daemons on newly allocated nodes
// (paper §3.4): the engine asks the RM for the allocation and the scalable
// spawn; each daemon receives a personality handle (its rank), the RPDTAB,
// and a bootstrap fabric it can use to set up its own network.
func (s *Session) LaunchMW(opts MWOptions) ([]string, error) {
	if s.detached || s.killed {
		return nil, ErrSessionClosed
	}
	if s.mwMaster != nil {
		return nil, fmt.Errorf("core: session %d already has middleware daemons", s.ID)
	}

	daemon := opts.Daemon
	env := make(map[string]string, len(daemon.Env)+5)
	for k, v := range daemon.Env {
		env[k] = v
	}
	env[EnvFEAddr] = s.listener.Addr().String()
	env[EnvSession] = fmt.Sprint(s.ID)
	env[EnvICCLPort] = fmt.Sprint(icclPortFor(s.ID, true))
	env[EnvICCLFanout] = fmt.Sprint(opts.ICCLFanout)
	env[EnvKind] = "mw"
	daemon.Env = env

	if err := s.eng.Send(&lmonp.Msg{
		Class:   lmonp.ClassFEEngine,
		Type:    lmonp.TypeSpawnReq,
		Payload: engine.EncodeSpawnReq(engine.SpawnReq{Nodes: opts.Nodes, Daemon: daemon}),
	}); err != nil {
		return nil, err
	}
	msg, err := s.eng.Expect(lmonp.ClassFEEngine, lmonp.TypeStatus)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(msg.Payload)
	status, err := rd.String()
	if err != nil {
		return nil, err
	}
	if status != "mw-spawned" {
		return nil, fmt.Errorf("core: middleware spawn failed: %s", status)
	}
	nodes, err := rd.StringList()
	if err != nil {
		return nil, err
	}
	s.mwNodes = nodes

	// Handshake with the master middleware daemon.
	raw, err := s.listener.AcceptTimeout(s.timeout)
	if err != nil {
		return nil, fmt.Errorf("core: MW master did not connect: %w", err)
	}
	s.mwMaster = lmonp.NewConn(raw)
	if err := s.mwMaster.Send(&lmonp.Msg{
		Class:   lmonp.ClassFEMW,
		Type:    lmonp.TypeHandshake,
		Payload: s.tab.Encode(),
		UsrData: opts.FEData,
	}); err != nil {
		return nil, err
	}
	ready, err := s.mwMaster.Expect(lmonp.ClassFEMW, lmonp.TypeReady)
	if err != nil {
		return nil, err
	}
	infos, _, err := decodeReady(ready.Payload)
	if err != nil {
		return nil, err
	}
	s.mwInfos = infos
	return nodes, nil
}

// MWNodes returns the middleware allocation (after LaunchMW).
func (s *Session) MWNodes() []string { return append([]string(nil), s.mwNodes...) }

// MWDaemons returns the per-daemon records of the middleware set.
func (s *Session) MWDaemons() []DaemonInfo { return append([]DaemonInfo(nil), s.mwInfos...) }

// SendToMW ships tool data to the master middleware daemon.
func (s *Session) SendToMW(data []byte) error {
	if s.mwMaster == nil {
		return fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	return s.mwMaster.Send(&lmonp.Msg{Class: lmonp.ClassFEMW, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromMW receives tool data from the master middleware daemon.
func (s *Session) RecvFromMW() ([]byte, error) {
	if s.mwMaster == nil {
		return nil, fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	msg, err := s.mwMaster.Expect(lmonp.ClassFEMW, lmonp.TypeUsrData)
	if err != nil {
		return nil, err
	}
	return msg.UsrData, nil
}

// Middleware is the MW-daemon-side session handle (paper §3.4). Its
// personality handle is the rank, assigned by the RM spawn.
type Middleware struct {
	p    *cluster.Proc
	comm *iccl.Comm
	fe   *lmonp.Conn // master only

	tab    proctab.Table
	feData []byte
}

// MWInit joins a middleware daemon into its session, mirroring BEInit:
// master handshakes with the FE, the fabric bootstraps, and the RPDTAB and
// piggybacked data are distributed so TBŌN daemons can locate the target
// program and back-end daemons.
func MWInit(p *cluster.Proc) (*Middleware, error) {
	cfg, err := icclConfigFromEnv(p, true)
	if err != nil {
		return nil, err
	}
	mw := &Middleware{p: p}
	var handshake *lmonp.Msg
	var tl engine.Timeline
	if cfg.Rank == 0 {
		feAddr, err := parseHostPort(p.Env(EnvFEAddr))
		if err != nil {
			return nil, err
		}
		raw, err := p.Host().Dial(feAddr)
		if err != nil {
			return nil, fmt.Errorf("core: MW master dialing FE: %w", err)
		}
		mw.fe = lmonp.NewConn(raw)
		handshake, err = mw.fe.Expect(lmonp.ClassFEMW, lmonp.TypeHandshake)
		if err != nil {
			return nil, err
		}
	}

	comm, err := iccl.Bootstrap(p, cfg)
	if err != nil {
		return nil, err
	}
	mw.comm = comm

	var seed []byte
	if comm.IsMaster() {
		seed = lmonp.AppendBytes(nil, handshake.Payload)
		seed = lmonp.AppendBytes(seed, handshake.UsrData)
	}
	blob, err := comm.Broadcast(seed)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(blob)
	tabEnc, err := rd.Bytes()
	if err != nil {
		return nil, err
	}
	feData, err := rd.Bytes()
	if err != nil {
		return nil, err
	}
	tab, err := proctab.Decode(tabEnc)
	if err != nil {
		return nil, err
	}
	mw.tab = tab
	mw.feData = append([]byte(nil), feData...)

	mine := encodeDaemonInfo(DaemonInfo{Rank: comm.Rank(), Host: p.Node().Name(), Pid: p.Pid()})
	all, err := comm.Gather(mine)
	if err != nil {
		return nil, err
	}
	if comm.IsMaster() {
		infos := make([]DaemonInfo, 0, len(all))
		for _, rawInfo := range all {
			d, err := decodeDaemonInfo(rawInfo)
			if err != nil {
				return nil, err
			}
			infos = append(infos, d)
		}
		if err := mw.fe.Send(&lmonp.Msg{
			Class:   lmonp.ClassFEMW,
			Type:    lmonp.TypeReady,
			Payload: encodeReady(infos, tl),
		}); err != nil {
			return nil, err
		}
	}
	return mw, nil
}

// Personality returns the daemon's personality handle (its rank) and the
// total daemon count — the MPI-rank-like identity of §3.4.
func (m *Middleware) Personality() (rank, size int) { return m.comm.Rank(), m.comm.Size() }

// AmIMaster reports whether this daemon is the MW master.
func (m *Middleware) AmIMaster() bool { return m.comm.IsMaster() }

// Proctab returns the target job's RPDTAB.
func (m *Middleware) Proctab() proctab.Table { return m.tab }

// FEData returns the piggybacked tool bootstrap data.
func (m *Middleware) FEData() []byte { return m.feData }

// Proc returns the daemon's process handle.
func (m *Middleware) Proc() *cluster.Proc { return m.p }

// Barrier, Broadcast, Gather and Scatter expose the bootstrap fabric for
// the TBŌN's own network setup.
func (m *Middleware) Barrier() error { return m.comm.Barrier() }

// Broadcast distributes buf from the MW master to every MW daemon.
func (m *Middleware) Broadcast(buf []byte) ([]byte, error) { return m.comm.Broadcast(buf) }

// Gather collects one blob per MW daemon at the master.
func (m *Middleware) Gather(mine []byte) ([][]byte, error) { return m.comm.Gather(mine) }

// Scatter distributes parts[rank] from the MW master to each daemon.
func (m *Middleware) Scatter(parts [][]byte) ([]byte, error) { return m.comm.Scatter(parts) }

// SendToFE ships tool data to the front end (master only).
func (m *Middleware) SendToFE(data []byte) error {
	if !m.AmIMaster() {
		return ErrNotMaster
	}
	return m.fe.Send(&lmonp.Msg{Class: lmonp.ClassFEMW, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromFE receives tool data from the front end (master only).
func (m *Middleware) RecvFromFE() ([]byte, error) {
	if !m.AmIMaster() {
		return nil, ErrNotMaster
	}
	msg, err := m.fe.Expect(lmonp.ClassFEMW, lmonp.TypeUsrData)
	if err != nil {
		return nil, err
	}
	return msg.UsrData, nil
}

// Finalize leaves the session.
func (m *Middleware) Finalize() error {
	err := m.comm.Barrier()
	m.comm.Close()
	if m.fe != nil {
		m.fe.Close()
	}
	return err
}

package core

import (
	"fmt"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
	"launchmon/internal/transport"
	"launchmon/internal/vtime"
)

// MWOptions parameterize middleware daemon launches. The MW fabric gets
// the same launch/data/health stack as the back-end fabric: a cut-through
// (or store-forward) session seed, a collective tool-data plane
// (Session.MWBroadcast/... mirrored by Middleware.Collective), and an
// optional heartbeat tree whose failure reports surface as session status
// events.
type MWOptions struct {
	// Nodes is how many fresh nodes to allocate for the TBŌN daemons.
	Nodes int
	// Daemon describes the middleware daemon executable.
	Daemon rm.DaemonSpec
	// FEData is tool bootstrap data piggybacked to every MW daemon with
	// the RPDTAB (e.g. MRNet topology information).
	FEData []byte
	// ICCLFanout of the MW bootstrap fabric; 0 = flat.
	ICCLFanout int
	// SeedMode selects the MW seed pipeline, mirroring Options.SeedMode:
	// SeedCutThrough (the default) streams the session seed through the
	// forming MW tree; SeedStoreForward is the serialized baseline kept
	// for the MW launch-pipeline ablation.
	SeedMode SeedMode
	// Health configures failure detection over the MW tree, mirroring
	// Options.Health: MW-daemon loss then fires DaemonExited status
	// callbacks and the session watchdog, exactly like BE-daemon loss.
	// The zero value disables it.
	Health HealthOptions
}

// LaunchMW launches middleware (TBŌN) daemons on newly allocated nodes
// (paper §3.4): the engine asks the RM for the allocation and the scalable
// spawn; each daemon receives a personality handle (its rank), the RPDTAB,
// and the same session fabric services as the back-end daemons. Under the
// default cut-through seed the FE relays the session seed (RPDTAB +
// MWOptions.FEData) to the MW master while the RM is still spawning the
// master's siblings, and the master streams it through the forming MW tree
// with per-rank validation; the MW marks form their own monotone chain
// m7≤m8≤m9≤m10 in Session.Timeline.
func (s *Session) LaunchMW(opts MWOptions) ([]string, error) {
	s.mu.Lock()
	if s.detached || s.killed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if s.mwMaster != nil || s.mwLaunching {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: session %d already has middleware daemons", s.ID)
	}
	s.mwLaunching = true
	s.mu.Unlock()

	sp := s.obsRec.Start("launch-mw", -1)
	defer sp.End()

	sim := s.p.Sim()
	daemon := opts.Daemon
	env := make(map[string]string, len(daemon.Env)+8)
	for k, v := range daemon.Env {
		env[k] = v
	}
	env[EnvFEAddr] = s.fe.mux.Addr().String()
	env[EnvSession] = encodeSessionID(s.ID)
	env[EnvICCLPort] = fmt.Sprint(icclPortFor(s.ID, true))
	env[EnvICCLFanout] = fmt.Sprint(opts.ICCLFanout)
	env[EnvCollChunk] = fmt.Sprint(s.collChunk)
	env[EnvCollWindow] = fmt.Sprint(s.collWindow)
	env[EnvSeedMode] = opts.SeedMode.envValue()
	env[EnvTableMode] = s.tableMode.envValue()
	env[EnvProctabChunk] = fmt.Sprint(s.chunkBytes)
	env[EnvObs] = s.obsMode.envValue()
	env[EnvKind] = "mw"
	if opts.Health.Period > 0 {
		env[EnvHealthPeriod] = opts.Health.Period.String()
		env[EnvHealthMiss] = fmt.Sprint(opts.Health.Miss)
		env[EnvHealthLinks] = healthLinksEnv(opts.Health)
	}
	daemon.Env = env

	// A previous timed-out attempt may have left a late MW-master dial
	// queued on this session's endpoint; shed it so this attempt cannot
	// handshake with the stale daemon set.
	s.ep.Drain(transport.RoleMW)

	// release frees the launch slot so the tool may retry a failed launch.
	release := func() {
		s.mu.Lock()
		s.mwLaunching = false
		s.mu.Unlock()
	}

	var nodes []string
	var res relayResult
	if opts.SeedMode == SeedStoreForward {
		var err error
		if nodes, err = s.mwSpawn(opts.Nodes, daemon); err != nil {
			release()
			return nil, err
		}
		if res, err = s.mwSeedStoreForward(opts); err != nil {
			release()
			return nil, err
		}
	} else {
		// Cut-through: the relay accepts the MW master and streams the seed
		// concurrently with the spawn exchange below — the master daemon
		// dials the moment the RM spawns it, typically while its sibling
		// daemons are still coming up, and the seed flows through the
		// forming MW tree (iccl.BootstrapSeed) with per-rank validation.
		relay := newSeedRelay(s, mwFabric, opts.FEData,
			engine.MarkMW7, engine.MarkMWSeedFwd, engine.MarkMW10)
		sim.Go(fmt.Sprintf("fe-sess-%d-mw-seed-relay", s.ID), relay.run)
		if s.tableMode == TableSliced {
			// Rank-sliced retention: MW daemons own no application tasks,
			// so their slice is empty — the stream is just the FEData
			// preamble plus an empty-table end marker, and MW daemons read
			// the full table (when a tool asks) from the session-shared
			// index. The seed transfer drops from O(K) to O(1) per MW link.
			relay.items.Send(seedItem{end: true, total: 0, sum: lmonp.SumInit})
		} else {
			// The FE already holds the assembled table; re-chunk it into
			// the relay so the MW stream is bounded exactly like the BE
			// stream, folding the per-chunk sums into the end digest.
			digest := lmonp.SumInit
			for _, chunk := range s.tab.EncodeChunks(s.chunkBytes) {
				digest = lmonp.FoldSum(digest, lmonp.Sum64(chunk))
				relay.items.Send(seedItem{chunk: chunk})
			}
			relay.items.Send(seedItem{end: true, total: uint64(len(s.tab)), sum: digest})
		}

		var err error
		if nodes, err = s.mwSpawn(opts.Nodes, daemon); err != nil {
			// The relay may still be parked in Accept (no MW daemon will
			// ever dial) or mid-handshake with a daemon set that is being
			// torn down; a reaper closes whatever it hands back and only
			// then frees the launch slot, so a retry cannot race a stale
			// Accept for the next master's dial.
			relay.abort()
			sim.Go(fmt.Sprintf("fe-sess-%d-mw-relay-reaper", s.ID), func() {
				if r, ok := relay.result.Recv(); ok && r.conn != nil {
					r.conn.Close()
				}
				release()
			})
			return nil, err
		}
		var ok bool
		if res, ok = relay.result.Recv(); !ok {
			release()
			return nil, fmt.Errorf("core: session %d: MW seed relay lost", s.ID)
		}
		if res.err != nil {
			release()
			return nil, res.err
		}
	}

	s.Timeline.Merge(res.tl)
	s.stashObsHarvest("MW", res.obsBlob)
	s.mu.Lock()
	s.mwMaster = res.conn
	s.mwNodes = nodes
	s.mwInfos = res.infos
	s.mwUsr = vtime.NewChan[[]byte](sim)
	s.mwColl = vtime.NewChan[collEvent](sim)
	s.mwTags = newTagRouter(sim)
	s.mwLaunching = false
	s.mu.Unlock()
	// Hand the MW master connection's read side to a watcher goroutine
	// demuxing tool data and collective frames from async status events
	// (MW-daemon loss), mirroring the BE master's reader.
	sim.Go(fmt.Sprintf("fe-sess-%d-mw-watch", s.ID), s.mwReader)
	return nodes, nil
}

// mwSpawn asks the engine (and through it the RM) for the MW allocation
// and spawn, returning the allocated node names.
func (s *Session) mwSpawn(nodes int, daemon rm.DaemonSpec) ([]string, error) {
	payload, err := s.engExchange(&lmonp.Msg{
		Class:   lmonp.ClassFEEngine,
		Type:    lmonp.TypeSpawnReq,
		Payload: engine.EncodeSpawnReq(engine.SpawnReq{Nodes: nodes, Daemon: daemon}),
	})
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(payload)
	status, err := rd.String()
	if err != nil {
		return nil, err
	}
	if status != "mw-spawned" {
		return nil, fmt.Errorf("core: middleware spawn failed: %s", status)
	}
	return rd.StringList()
}

// mwSeedStoreForward is the serialized MW baseline: accept the master
// after the spawn completed, stream the full table behind the handshake
// (the master buffers it and broadcasts after bootstrap), await ready.
func (s *Session) mwSeedStoreForward(opts MWOptions) (relayResult, error) {
	sim := s.p.Sim()
	conn, err := s.ep.Accept(transport.RoleMW, s.timeout)
	if err != nil {
		return relayResult{}, fmt.Errorf("core: MW master did not connect: %w", err)
	}
	var tl engine.Timeline
	tl.Mark(engine.MarkMW7, sim.Now())
	if err := s.sendHandshake(conn, lmonp.ClassFEMW, opts.FEData); err != nil {
		conn.Close()
		return relayResult{}, err
	}
	ready, err := conn.Expect(lmonp.ClassFEMW, lmonp.TypeReady)
	if err != nil {
		conn.Close()
		return relayResult{}, err
	}
	tl.Mark(engine.MarkMW10, sim.Now())
	infos, masterTL, obsBlob, err := decodeReady(ready.Payload)
	if err != nil {
		conn.Close()
		return relayResult{}, err
	}
	tl.Merge(masterTL)
	return relayResult{conn: conn, infos: infos, tl: tl, obsBlob: obsBlob}, nil
}

// MWNodes returns the middleware allocation (after LaunchMW).
func (s *Session) MWNodes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.mwNodes...)
}

// MWDaemons returns the per-daemon records of the middleware set.
func (s *Session) MWDaemons() []DaemonInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DaemonInfo(nil), s.mwInfos...)
}

// mwConn returns the middleware master connection, if any.
func (s *Session) mwConn() *lmonp.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mwMaster
}

// SendToMW ships tool data to the master middleware daemon.
func (s *Session) SendToMW(data []byte) error {
	c := s.mwConn()
	if c == nil {
		return fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	if s.closed() {
		return ErrSessionClosed
	}
	return c.Send(&lmonp.Msg{Class: lmonp.ClassFEMW, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromMW receives tool data from the master middleware daemon
// (queued by the session's MW watcher, which filters out status events
// and collective frames). On a session the watchdog tore down, the error
// wraps the terminal fault detail (see closedErr).
func (s *Session) RecvFromMW() ([]byte, error) {
	s.mu.Lock()
	c, q := s.mwMaster, s.mwUsr
	s.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("core: session %d has no middleware daemons", s.ID)
	}
	if s.closed() {
		return nil, s.closedErr()
	}
	data, ok := q.Recv()
	if !ok {
		return nil, s.closedErr()
	}
	return data, nil
}

// Middleware is the MW-daemon-side session handle (paper §3.4). Its
// personality handle is the rank, assigned by the RM spawn. It shares the
// daemonSession core with BackEnd: the same seed validation, collective
// tool-data plane (Collective), heartbeat tree (Health) and FE pipe.
type Middleware struct {
	*daemonSession
}

// MWInit joins a middleware daemon into its session, mirroring BEInit:
// the master handshakes with the FE, the fabric bootstraps with the
// cut-through seed stream (or the store-forward baseline the FE selected),
// every rank validates its reassembled RPDTAB + piggybacked data, and the
// ready gather reports the daemon set to the front end.
func MWInit(p *cluster.Proc) (*Middleware, error) {
	d, err := initDaemon(p, mwFabric)
	if err != nil {
		return nil, err
	}
	return &Middleware{daemonSession: d}, nil
}

// Personality returns the daemon's personality handle (its rank) and the
// total daemon count — the MPI-rank-like identity of §3.4.
func (m *Middleware) Personality() (rank, size int) { return m.comm.Rank(), m.comm.Size() }

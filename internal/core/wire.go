package core

import (
	"launchmon/internal/lmonp"
)

// DaemonInfo is the per-daemon record gathered to the master during
// handshake and reported to the front end in the ready message: where each
// daemon landed, how many application tasks it watches, and its modeled
// peak private RPDTAB memory (the full table under TableFull; just the
// daemon's rank slice under TableSliced — the session-shared index is
// owned once per session, not per daemon, so charging it here would
// recreate on paper the O(K x daemons) footprint slicing removes). Its
// size is linear in the daemon count, which is the Region C scaling term
// of the performance model.
type DaemonInfo struct {
	Rank      int
	Host      string
	Pid       int
	Tasks     int
	PeakBytes int
}

func encodeDaemonInfo(d DaemonInfo) []byte {
	b := lmonp.AppendUint32(nil, uint32(d.Rank))
	b = lmonp.AppendString(b, d.Host)
	b = lmonp.AppendUint32(b, uint32(d.Pid))
	b = lmonp.AppendUint32(b, uint32(d.Tasks))
	b = lmonp.AppendUint64(b, uint64(d.PeakBytes))
	return b
}

func decodeDaemonInfo(b []byte) (DaemonInfo, error) {
	rd := lmonp.NewReader(b)
	var d DaemonInfo
	r, err := rd.Uint32()
	if err != nil {
		return d, err
	}
	h, err := rd.String()
	if err != nil {
		return d, err
	}
	p, err := rd.Uint32()
	if err != nil {
		return d, err
	}
	t, err := rd.Uint32()
	if err != nil {
		return d, err
	}
	pk, err := rd.Uint64()
	if err != nil {
		return d, err
	}
	return DaemonInfo{Rank: int(r), Host: h, Pid: int(p), Tasks: int(t), PeakBytes: int(pk)}, nil
}

func encodeDaemonInfos(ds []DaemonInfo) []byte {
	b := lmonp.AppendUint32(nil, uint32(len(ds)))
	for _, d := range ds {
		b = lmonp.AppendBytes(b, encodeDaemonInfo(d))
	}
	return b
}

func decodeDaemonInfos(b []byte) ([]DaemonInfo, error) {
	rd := lmonp.NewReader(b)
	n, err := rd.Uint32()
	if err != nil {
		return nil, err
	}
	out := make([]DaemonInfo, 0, n)
	for i := uint32(0); i < n; i++ {
		raw, err := rd.Bytes()
		if err != nil {
			return nil, err
		}
		d, err := decodeDaemonInfo(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/iccl"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
)

// BackEnd is the daemon-side session handle of the back-end fabric
// (paper §3.3). Tool back-end daemon mains call BEInit as their first
// act; the returned BackEnd knows the daemon's rank, the full RPDTAB,
// the local task slice, and exposes the ICCL collectives plus the
// collective tool-data plane. All of that machinery is the shared
// daemonSession core (daemon.go), which the middleware fabric reuses.
type BackEnd struct {
	*daemonSession
}

// ErrNotMaster is returned for master-only operations on non-master
// daemons.
var ErrNotMaster = errors.New("core: operation restricted to the master daemon")

// BEInit joins the calling daemon process into its session: the master
// completes the LMONP handshake with the front end, the ICCL tree
// bootstraps, the session seed (RPDTAB + FEData) is distributed to and
// validated at every daemon, and per-daemon info is gathered to the
// master for the ready message (events e7..e10 of the launch critical
// path). Under the default cut-through pipeline the seed streams through
// the forming tree (iccl.BootstrapSeed); the store-forward baseline
// (Options.SeedMode) buffers it at the master and broadcasts after
// bootstrap.
func BEInit(p *cluster.Proc) (*BackEnd, error) {
	d, err := initDaemon(p, beFabric)
	if err != nil {
		return nil, err
	}
	return &BackEnd{daemonSession: d}, nil
}

// MyProctab returns the RPDTAB entries for tasks on this daemon's node.
func (b *BackEnd) MyProctab() proctab.Table { return b.myTab }

// icclConfigFromEnv builds the tree configuration from the environment the
// RM and FE planted.
func icclConfigFromEnv(p *cluster.Proc, mw bool) (iccl.Config, error) {
	var cfg iccl.Config
	rank, err := strconv.Atoi(p.Env(rm.EnvNodeID))
	if err != nil {
		return cfg, fmt.Errorf("core: bad %s: %w", rm.EnvNodeID, err)
	}
	size, err := strconv.Atoi(p.Env(rm.EnvNNodes))
	if err != nil {
		return cfg, fmt.Errorf("core: bad %s: %w", rm.EnvNNodes, err)
	}
	port, err := strconv.Atoi(p.Env(EnvICCLPort))
	if err != nil {
		return cfg, fmt.Errorf("core: bad %s: %w", EnvICCLPort, err)
	}
	fanout := 0
	if f := p.Env(EnvICCLFanout); f != "" {
		fanout, err = strconv.Atoi(f)
		if err != nil {
			return cfg, fmt.Errorf("core: bad %s: %w", EnvICCLFanout, err)
		}
	}
	nodelist := splitNodeList(p.Env(rm.EnvNodeList))
	if len(nodelist) != size {
		return cfg, fmt.Errorf("core: nodelist has %d entries, NNODES=%d", len(nodelist), size)
	}
	if jt := p.Env(EnvJoinTimeout); jt != "" {
		if cfg.JoinTimeout, err = time.ParseDuration(jt); err != nil {
			return cfg, fmt.Errorf("core: bad %s: %w", EnvJoinTimeout, err)
		}
	}
	cfg.Rank, cfg.Size, cfg.Fanout, cfg.Port, cfg.Nodelist = rank, size, fanout, port, nodelist
	_ = mw
	return cfg, nil
}

func parseHostPort(s string) (simnet.Addr, error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			port, err := strconv.Atoi(s[i+1:])
			if err != nil {
				return simnet.Addr{}, fmt.Errorf("core: bad address %q", s)
			}
			return simnet.Addr{Host: s[:i], Port: port}, nil
		}
	}
	return simnet.Addr{}, fmt.Errorf("core: bad address %q", s)
}

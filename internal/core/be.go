package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/engine"
	"launchmon/internal/health"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/transport"
)

// BackEnd is the daemon-side session handle (paper §3.3). Tool back-end
// daemon mains call BEInit as their first act; the returned BackEnd knows
// the daemon's rank, the full RPDTAB, the local task slice, and exposes
// the ICCL collectives.
type BackEnd struct {
	p    *cluster.Proc
	comm *iccl.Comm
	fe   *lmonp.Conn     // non-nil at the master only
	mon  *health.Monitor // nil when the session has no failure detection
	coll *BECollective   // the session's collective tool-data plane

	tab    proctab.Table
	myTab  proctab.Table
	feData []byte
	tl     engine.Timeline
}

// ErrNotMaster is returned for master-only operations on non-master
// daemons.
var ErrNotMaster = errors.New("core: operation restricted to the master daemon")

// BEInit joins the calling daemon process into its session: the master
// completes the LMONP handshake with the front end, the ICCL tree
// bootstraps, the session seed (RPDTAB + FEData) is distributed to and
// validated at every daemon, and per-daemon info is gathered to the
// master for the ready message (events e7..e10 of the launch critical
// path). Under the default cut-through pipeline the seed streams through
// the forming tree (iccl.BootstrapSeed); the store-forward baseline
// (Options.SeedMode) buffers it at the master and broadcasts after
// bootstrap.
func BEInit(p *cluster.Proc) (*BackEnd, error) {
	cfg, err := icclConfigFromEnv(p, false)
	if err != nil {
		return nil, err
	}
	if p.Env(EnvSeedMode) == SeedStoreForward.envValue() {
		return beInitStoreForward(p, cfg)
	}
	return beInitCutThrough(p, cfg)
}

// beInitCutThrough receives the session seed as a chunk stream flowing
// through the still-forming ICCL tree. Every rank reassembles the table
// with a proctab.Assembler and validates it (Finish) before contributing
// to the ready gather, so EvDaemonsSpawned at the front end implies a
// validated, byte-identical table at every daemon.
func beInitCutThrough(p *cluster.Proc, cfg iccl.Config) (*BackEnd, error) {
	be := &BackEnd{p: p}

	var src iccl.SeedSource
	if cfg.Rank == 0 {
		// Master: connect to the FE through the session mux and consume
		// the handshake (the piggybacked tool data arrives ahead of the
		// table stream; e7 precedes e8), then feed each relayed RPDTAB
		// chunk straight into the tree's seed stream as it arrives.
		fe, err := dialFE(p, transport.RoleBE)
		if err != nil {
			return nil, fmt.Errorf("core: master dialing FE: %w", err)
		}
		be.fe = fe
		handshake, err := be.fe.Expect(lmonp.ClassFEBE, lmonp.TypeHandshake)
		if err != nil {
			return nil, err
		}
		be.tl.Mark(engine.MarkE8, p.Sim().Now())
		src = seedSourceFromFE(be.fe, handshake.UsrData)
	}

	comm, seed, err := iccl.BootstrapSeed(p, cfg, src)
	if err != nil {
		return nil, err
	}
	be.comm = comm
	if comm.IsMaster() {
		be.tl.Mark(engine.MarkE9, p.Sim().Now())
	}
	if err := be.setupCollective(); err != nil {
		return nil, err
	}

	// Drain the seed: frame 0 carries the piggybacked FEData, later frames
	// the RPDTAB chunks; the end marker's total validates the reassembly.
	var asm proctab.Assembler
	for {
		f, err := seed.Next()
		if err != nil {
			return nil, err
		}
		if f.End {
			tab, err := asm.Finish(int(f.Total))
			if err != nil {
				return nil, err
			}
			be.tab = tab
			break
		}
		if f.H.Index == 0 {
			be.feData = append([]byte(nil), f.Body...)
			continue
		}
		if err := asm.Add(f.Body); err != nil {
			return nil, err
		}
	}
	be.tl.Mark(engine.MarkSeedValid, p.Sim().Now())
	be.myTab = be.tab.OnHost(p.Node().Name())
	// All child forwards must drain before any other down-flowing traffic
	// may use the tree links.
	if err := seed.Wait(); err != nil {
		return nil, err
	}
	return be, be.completeInit(cfg)
}

// seedSourceFromFE adapts the master's FE connection into the tree's
// seed stream: a synthesized frame 0 with the handshake's FEData, then
// one frame per relayed RPDTAB chunk, closed by the relay's end marker.
func seedSourceFromFE(fe *lmonp.Conn, feData []byte) iccl.SeedSource {
	idx := uint32(0)
	return func() (coll.Frame, error) {
		if idx == 0 {
			idx = 1
			return coll.Frame{H: coll.Header{Op: coll.OpSeed, Index: 0}, Body: feData}, nil
		}
		msg, err := fe.Recv()
		if err != nil {
			return coll.Frame{}, err
		}
		switch msg.Type {
		case lmonp.TypeProctabChunk:
			f := coll.Frame{H: coll.Header{Op: coll.OpSeed, Index: idx}, Body: msg.Payload}
			idx++
			return f, nil
		case lmonp.TypeProctabEnd:
			total, err := lmonp.NewReader(msg.Payload).Uint64()
			if err != nil {
				return coll.Frame{}, fmt.Errorf("core: seed end marker: %w", err)
			}
			f := coll.Frame{H: coll.Header{Op: coll.OpSeed, Index: idx}, End: true, Total: total}
			idx++
			return f, nil
		default:
			return coll.Frame{}, fmt.Errorf("core: unexpected %v message in session-seed stream", msg.Type)
		}
	}
}

// beInitStoreForward is the serialized baseline: the master buffers the
// full chunk-streamed RPDTAB from the FE, the tree bootstraps, and the
// seed goes out as one monolithic ICCL broadcast.
func beInitStoreForward(p *cluster.Proc, cfg iccl.Config) (*BackEnd, error) {
	be := &BackEnd{p: p}

	var masterTab proctab.Table
	var feData []byte
	if cfg.Rank == 0 {
		fe, err := dialFE(p, transport.RoleBE)
		if err != nil {
			return nil, fmt.Errorf("core: master dialing FE: %w", err)
		}
		be.fe = fe
		handshake, err := be.fe.Expect(lmonp.ClassFEBE, lmonp.TypeHandshake)
		if err != nil {
			return nil, err
		}
		be.tl.Mark(engine.MarkE8, p.Sim().Now())
		feData = handshake.UsrData
		masterTab, err = proctab.RecvStream(be.fe, lmonp.ClassFEBE, nil)
		if err != nil {
			return nil, err
		}
	}

	comm, err := iccl.Bootstrap(p, cfg)
	if err != nil {
		return nil, err
	}
	be.comm = comm
	if comm.IsMaster() {
		be.tl.Mark(engine.MarkE9, p.Sim().Now())
	}
	if err := be.setupCollective(); err != nil {
		return nil, err
	}

	// Distribute RPDTAB + piggybacked FE data to every daemon.
	tab, data, err := distributeSessionSeed(comm, masterTab, feData)
	if err != nil {
		return nil, err
	}
	be.tab = tab
	be.tl.Mark(engine.MarkSeedValid, p.Sim().Now())
	be.myTab = tab.OnHost(p.Node().Name())
	be.feData = data
	return be, be.completeInit(cfg)
}

// setupCollective attaches the session's collective tool-data plane.
func (b *BackEnd) setupCollective() error {
	collChunk := 0
	if cc := b.p.Env(EnvCollChunk); cc != "" {
		var err error
		if collChunk, err = strconv.Atoi(cc); err != nil {
			return fmt.Errorf("core: bad %s: %w", EnvCollChunk, err)
		}
	}
	b.coll = newBECollective(b, collChunk)
	return nil
}

// completeInit is the shared tail of both seed pipelines: gather
// per-daemon info for the ready message, then join the heartbeat tree.
func (b *BackEnd) completeInit(cfg iccl.Config) error {
	// Gather per-daemon info to the master; it rides the ready message.
	mine := encodeDaemonInfo(DaemonInfo{
		Rank:  b.comm.Rank(),
		Host:  b.p.Node().Name(),
		Pid:   b.p.Pid(),
		Tasks: len(b.myTab),
	})
	all, err := b.comm.Gather(mine)
	if err != nil {
		return err
	}
	if b.comm.IsMaster() {
		infos := make([]DaemonInfo, 0, len(all))
		for _, raw := range all {
			d, err := decodeDaemonInfo(raw)
			if err != nil {
				return err
			}
			infos = append(infos, d)
		}
		if err := b.fe.Send(&lmonp.Msg{
			Class:   lmonp.ClassFEBE,
			Type:    lmonp.TypeReady,
			Payload: encodeReady(infos, b.tl),
		}); err != nil {
			return err
		}
	}

	// Join the session's heartbeat tree when the front end enabled failure
	// detection; the master forwards failure reports upstream as LMONP
	// status events. Started after the ready message so the launch critical
	// path (e7..e10) is not charged for it.
	return b.startHealth(cfg)
}

// startHealth joins the daemon into the session's heartbeat tree when the
// FE planted a heartbeat period in the environment (Options.Health).
func (b *BackEnd) startHealth(cfg iccl.Config) error {
	periodStr := b.p.Env(EnvHealthPeriod)
	if periodStr == "" {
		return nil
	}
	period, err := time.ParseDuration(periodStr)
	if err != nil {
		return fmt.Errorf("core: bad %s: %w", EnvHealthPeriod, err)
	}
	miss := 0
	if ms := b.p.Env(EnvHealthMiss); ms != "" {
		if miss, err = strconv.Atoi(ms); err != nil {
			return fmt.Errorf("core: bad %s: %w", EnvHealthMiss, err)
		}
	}
	session, err := strconv.Atoi(b.p.Env(EnvSession))
	if err != nil {
		return fmt.Errorf("core: bad %s: %w", EnvSession, err)
	}
	mon, err := health.Start(b.p, health.Config{
		Rank: cfg.Rank, Size: cfg.Size, Fanout: cfg.Fanout,
		Nodelist: cfg.Nodelist, Port: healthPortFor(session),
		Period: period, Miss: miss,
	})
	if err != nil {
		return err
	}
	b.mon = mon
	if b.comm.IsMaster() {
		// Forward failure reports to the front end as status events. The
		// goroutine ends when the monitor stops (Finalize or node death).
		b.p.Sim().Go("be-health-forward", func() {
			for {
				r, ok := mon.Failures().Recv()
				if !ok {
					return
				}
				b.fe.Send(&lmonp.Msg{
					Class: lmonp.ClassFEBE,
					Type:  lmonp.TypeStatusEvent,
					Payload: health.EncodeEvent(health.Event{
						Kind: health.EvDaemonExited, Rank: r.Rank, Detail: r.Detail,
					}),
				})
			}
		})
	}
	return nil
}

// Health returns the daemon's failure-detection monitor (nil when the
// session was created without Options.Health).
func (b *BackEnd) Health() *health.Monitor { return b.mon }

// icclConfigFromEnv builds the tree configuration from the environment the
// RM and FE planted.
func icclConfigFromEnv(p *cluster.Proc, mw bool) (iccl.Config, error) {
	var cfg iccl.Config
	rank, err := strconv.Atoi(p.Env(rm.EnvNodeID))
	if err != nil {
		return cfg, fmt.Errorf("core: bad %s: %w", rm.EnvNodeID, err)
	}
	size, err := strconv.Atoi(p.Env(rm.EnvNNodes))
	if err != nil {
		return cfg, fmt.Errorf("core: bad %s: %w", rm.EnvNNodes, err)
	}
	port, err := strconv.Atoi(p.Env(EnvICCLPort))
	if err != nil {
		return cfg, fmt.Errorf("core: bad %s: %w", EnvICCLPort, err)
	}
	fanout := 0
	if f := p.Env(EnvICCLFanout); f != "" {
		fanout, err = strconv.Atoi(f)
		if err != nil {
			return cfg, fmt.Errorf("core: bad %s: %w", EnvICCLFanout, err)
		}
	}
	nodelist := splitNodeList(p.Env(rm.EnvNodeList))
	if len(nodelist) != size {
		return cfg, fmt.Errorf("core: nodelist has %d entries, NNODES=%d", len(nodelist), size)
	}
	cfg.Rank, cfg.Size, cfg.Fanout, cfg.Port, cfg.Nodelist = rank, size, fanout, port, nodelist
	_ = mw
	return cfg, nil
}

// AmIMaster reports whether this daemon is the session master (rank 0).
func (b *BackEnd) AmIMaster() bool { return b.comm.IsMaster() }

// Rank returns the daemon's ICCL rank.
func (b *BackEnd) Rank() int { return b.comm.Rank() }

// Size returns the number of back-end daemons in the session.
func (b *BackEnd) Size() int { return b.comm.Size() }

// Proctab returns the full RPDTAB of the target job.
func (b *BackEnd) Proctab() proctab.Table { return b.tab }

// MyProctab returns the RPDTAB entries for tasks on this daemon's node.
func (b *BackEnd) MyProctab() proctab.Table { return b.myTab }

// FEData returns the tool data the front end piggybacked on the handshake.
func (b *BackEnd) FEData() []byte { return b.feData }

// Timeline returns the daemon's launch marks (e8/e9 at the master,
// seed_validated at every rank). The master's copy also rides the ready
// message into the front end's merged Session.Timeline.
func (b *BackEnd) Timeline() engine.Timeline { return b.tl }

// Proc returns the daemon's process handle.
func (b *BackEnd) Proc() *cluster.Proc { return b.p }

// Barrier is the ICCL barrier over all back-end daemons.
func (b *BackEnd) Barrier() error { return b.comm.Barrier() }

// Broadcast distributes buf from the master to every daemon.
func (b *BackEnd) Broadcast(buf []byte) ([]byte, error) { return b.comm.Broadcast(buf) }

// Gather collects one blob per daemon at the master (rank-indexed).
func (b *BackEnd) Gather(mine []byte) ([][]byte, error) { return b.comm.Gather(mine) }

// Scatter distributes parts[rank] from the master to each daemon.
func (b *BackEnd) Scatter(parts [][]byte) ([]byte, error) { return b.comm.Scatter(parts) }

// SendToFE ships tool data to the front end (master only).
func (b *BackEnd) SendToFE(data []byte) error {
	if !b.AmIMaster() {
		return ErrNotMaster
	}
	return b.fe.Send(&lmonp.Msg{Class: lmonp.ClassFEBE, Type: lmonp.TypeUsrData, UsrData: data})
}

// RecvFromFE receives tool data from the front end (master only).
func (b *BackEnd) RecvFromFE() ([]byte, error) {
	if !b.AmIMaster() {
		return nil, ErrNotMaster
	}
	msg, err := b.fe.Expect(lmonp.ClassFEBE, lmonp.TypeUsrData)
	if err != nil {
		return nil, err
	}
	return msg.UsrData, nil
}

// Finalize leaves the session: it synchronizes all daemons, stops the
// failure detector, and closes the tree (and, at the master, the FE
// connection). Stopping the master's monitor cascades a teardown wave
// down the heartbeat tree, so daemons that already finalized are not
// reported as failures.
func (b *BackEnd) Finalize() error {
	err := b.comm.Barrier()
	if b.mon != nil {
		b.mon.Stop()
	}
	b.comm.Close()
	if b.fe != nil {
		b.fe.Close()
	}
	return err
}

// dialFE connects a master daemon to its front end's transport mux,
// announcing the session ID and role from the bootstrap environment so
// the mux routes the connection to the owning session.
func dialFE(p *cluster.Proc, role transport.Role) (*lmonp.Conn, error) {
	feAddr, err := parseHostPort(p.Env(EnvFEAddr))
	if err != nil {
		return nil, err
	}
	session, err := strconv.Atoi(p.Env(EnvSession))
	if err != nil {
		return nil, fmt.Errorf("core: bad %s: %w", EnvSession, err)
	}
	return transport.Dial(p.Host(), feAddr, session, role)
}

// distributeSessionSeed broadcasts the RPDTAB and the piggybacked tool
// data from the master over the ICCL fabric as one monolithic frame —
// the store-forward baseline of the launch-pipeline ablation, still the
// pipeline of middleware daemons (MWInit) and the shape the paper's
// broadcast-vs-shared-file ablation measures. The master keeps its
// already-decoded table instead of re-decoding its own broadcast.
func distributeSessionSeed(comm *iccl.Comm, masterTab proctab.Table, feData []byte) (proctab.Table, []byte, error) {
	var seed []byte
	if comm.IsMaster() {
		seed = lmonp.AppendBytes(nil, masterTab.Encode())
		seed = lmonp.AppendBytes(seed, feData)
	}
	blob, err := comm.Broadcast(seed)
	if err != nil {
		return nil, nil, err
	}
	if comm.IsMaster() {
		return masterTab, append([]byte(nil), feData...), nil
	}
	rd := lmonp.NewReader(blob)
	tabEnc, err := rd.Bytes()
	if err != nil {
		return nil, nil, err
	}
	data, err := rd.Bytes()
	if err != nil {
		return nil, nil, err
	}
	tab, err := proctab.Decode(tabEnc)
	if err != nil {
		return nil, nil, err
	}
	return tab, append([]byte(nil), data...), nil
}

func parseHostPort(s string) (simnet.Addr, error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			port, err := strconv.Atoi(s[i+1:])
			if err != nil {
				return simnet.Addr{}, fmt.Errorf("core: bad address %q", s)
			}
			return simnet.Addr{Host: s[:i], Port: port}, nil
		}
	}
	return simnet.Addr{}, fmt.Errorf("core: bad address %q", s)
}

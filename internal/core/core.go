// Package core is the LaunchMON library proper: the front-end (FE),
// back-end (BE) and middleware (MW) APIs of the paper (§3.2–§3.4), layered
// over the engine (internal/engine), the LMONP protocol (internal/lmonp)
// and the Internal Collective Communication Layer (internal/iccl).
//
// A tool front end — itself a process on the front-end node — calls
// LaunchAndSpawn or AttachAndSpawn to obtain a Session: the binding
// abstraction for one job plus its daemons. Tool daemons call BEInit
// (back-ends, co-located with application tasks) or MWInit (middleware
// daemons on separately allocated nodes) to join the session, learn the
// RPDTAB, and use the minimal collectives.
//
// Tool bootstrap data piggybacks on LaunchMON's own handshakes in both
// directions (Options.FEData rides the FE→master handshake and is
// broadcast with the RPDTAB; BackEnd.SendToFE/Session.RecvFromBE carry
// tool data afterwards), which is what lets tools like STAT distribute
// their MRNet connection information without extra startup round trips.
//
// Bulk tool traffic rides the collective data plane instead of the flat
// master pipe: Session.Broadcast/Scatter/Gather/Reduce, mirrored by the
// BackEnd.Collective handle, stream chunked payloads over the ICCL
// k-ary tree with interior forwarding and filtered reduction (see
// internal/coll and DESIGN.md "Tool data plane"). The middleware fabric
// has full parity: Session.MWBroadcast/MWScatter/MWGather/MWReduce pair
// with Middleware.Collective over the MW tree, the MW session seed
// streams cut-through during LaunchMW, and MWOptions.Health runs the
// failure detector over the MW topology.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"launchmon/internal/proctab"
)

// Environment variables the FE plants in daemon environments (in addition
// to the rm.Env* variables the RM itself provides).
const (
	// EnvFEAddr is the front end's listener, dialed by master daemons.
	EnvFEAddr = "LMON_FE_ADDR"
	// EnvSession is the session identifier.
	EnvSession = "LMON_SESSION"
	// EnvICCLPort is the per-session TCP port of the ICCL tree.
	EnvICCLPort = "LMON_ICCL_PORT"
	// EnvICCLFanout is the ICCL tree fanout (0 = flat 1-deep).
	EnvICCLFanout = "LMON_ICCL_FANOUT"
	// EnvKind marks the daemon role: "be" or "mw".
	EnvKind = "LMON_KIND"
	// EnvCollChunk bounds one collective-plane chunk body in bytes
	// (0 or unset selects coll.DefaultChunkBytes).
	EnvCollChunk = "LMON_COLL_CHUNK"
	// EnvCollWindow is the per-(link, tag) outstanding-chunk credit
	// window of the collective plane's flow control (0 or unset selects
	// coll.DefaultWindow; negative disables flow control — the unbounded
	// ablation baseline). Planted from Options.CollWindow.
	EnvCollWindow = "LMON_COLL_WINDOW"
	// EnvSeedMode selects the session-seed (RPDTAB + FEData) distribution
	// pipeline the fabric's daemons must match: "cut-through" (or unset)
	// streams chunks through the forming ICCL tree, "store-forward" is the
	// serialized baseline (Options.SeedMode for the BE fabric,
	// MWOptions.SeedMode for the MW fabric).
	EnvSeedMode = "LMON_SEED_MODE"
	// EnvHealthPeriod is the heartbeat period of the session's failure
	// detector (a Go duration string); unset or empty disables it.
	EnvHealthPeriod = "LMON_HEALTH_PERIOD"
	// EnvHealthMiss is the missed-heartbeat threshold.
	EnvHealthMiss = "LMON_HEALTH_MISS"
	// EnvHealthLinks selects the heartbeat transport: "iccl" (the default)
	// piggybacks heartbeats on the established ICCL tree links, "dial"
	// builds the dedicated dialed heartbeat tree (the pre-link-reuse
	// baseline, Options.Health.Dial).
	EnvHealthLinks = "LMON_HEALTH_LINKS"
	// EnvTableMode selects per-daemon RPDTAB retention under the
	// cut-through seed: "sliced" keeps only the local rank slice plus the
	// session-shared host/rank index, "full" (and any unset value, so
	// hand-rolled rigs keep the legacy shape) retains the complete table
	// at every daemon (Options.TableMode).
	EnvTableMode = "LMON_TABLE_MODE"
	// EnvProctabChunk bounds re-packed RPDTAB chunk bodies on routed
	// (rank-sliced) seed links (0 or unset selects the proctab default).
	EnvProctabChunk = "LMON_PROCTAB_CHUNK"
	// EnvJoinTimeout bounds (a Go duration string) how long a bootstrapping
	// daemon waits for each successive child join and subtree-ready report
	// before failing its bootstrap (Options.JoinTimeout). Unset or empty
	// disables the deadline.
	EnvJoinTimeout = "LMON_JOIN_TIMEOUT"
	// EnvObs enables the session observability plane at every daemon
	// ("on" = per-link metrics registries + tree-harvested snapshots;
	// unset or any other value = off). Planted from Options.Obs.
	EnvObs = "LMON_OBS"
)

// Cost model constants for the FE-local bookkeeping; together with the
// engine base cost these reproduce the paper's scale-independent 12 ms
// "all other LaunchMON costs".
const (
	feStartCost  = 4 * time.Millisecond // e0→engine spawn bookkeeping
	feFinishCost = 4 * time.Millisecond // ready→e11 session table setup
)

// sessionCounter allocates distinct session ids (and thus ICCL ports)
// within one simulation.
var sessionCounter atomic.Int64

func nextSessionID() int { return int(sessionCounter.Add(1)) }

// encodeSessionID renders a session id for an environment variable at a
// fixed width, so the id's digit count never changes the byte count a
// launch ships over the simulated wire: two sessions with identical
// options must produce identical virtual-time behavior regardless of how
// many sessions ran before them (the don't-let-ties-decide invariant of
// DESIGN.md applied to id allocation). Parsers use strconv.Atoi, which
// accepts the leading zeros.
func encodeSessionID(id int) string { return fmt.Sprintf("%06d", id) }

// icclBasePort is the first port used for ICCL trees; each session uses
// two ports (BE tree, MW tree).
const icclBasePort = 51000

func icclPortFor(session int, mw bool) int {
	p := icclBasePort + session*2
	if mw {
		p++
	}
	return p
}

// healthBasePort is the first port used for per-session heartbeat trees
// (internal/health); kept clear of the ICCL port range. Each session uses
// two ports, mirroring the ICCL banding (BE tree, MW tree).
const healthBasePort = 58000

func healthPortFor(session int, mw bool) int {
	p := healthBasePort + session*2
	if mw {
		p++
	}
	return p
}

// sessionShared models one session's node-local shared memory segment
// under rank-sliced table retention (TableSliced): the immutable columnar
// RPDTAB index published by the front end once the stream validates, and
// the host→daemon-rank map the seed router consults. Every daemon holds a
// pointer into this one copy instead of materializing its own, which is
// what turns the fabric's table memory from O(K x daemons) into
// O(K/daemon + one shared index).
type sessionShared struct {
	mu     sync.Mutex
	idx    *proctab.Index
	rankOf map[string]int
}

// publishIndex installs the session's RPDTAB index. The front end calls it
// after validating the assembled stream and before relaying the seed end
// marker, so it happens-before any daemon finishing its own seed drain.
func (g *sessionShared) publishIndex(idx *proctab.Index) {
	g.mu.Lock()
	g.idx = idx
	g.mu.Unlock()
}

// index returns the published RPDTAB index (nil before publication).
func (g *sessionShared) index() *proctab.Index {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.idx
}

// hostRanks returns the fabric's host→daemon-rank map, built from the
// launch node list by the first daemon that asks and shared by the rest.
func (g *sessionShared) hostRanks(nodelist []string) map[string]int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.rankOf == nil {
		g.rankOf = make(map[string]int, len(nodelist))
		for i, h := range nodelist {
			g.rankOf[h] = i
		}
	}
	return g.rankOf
}

// sharedSegs registers the per-session shared segments by session ID.
var sharedSegs sync.Map

// sharedSegFor returns (creating on first use) the session's shared segment.
func sharedSegFor(session int) *sessionShared {
	v, _ := sharedSegs.LoadOrStore(session, &sessionShared{})
	return v.(*sessionShared)
}

// dropSharedSeg unregisters a closed session's segment. Daemons that
// captured the pointer during init keep a valid reference; only the
// registry entry is released.
func dropSharedSeg(session int) { sharedSegs.Delete(session) }

package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Cut-through launch-pipeline regressions: the e-mark partial order, the
// every-rank-validates-before-DaemonsSpawned invariant, byte-identical
// tables under both seed pipelines, and mid-stream fault surfacing.

// launchChains is the documented partial order of the critical-path
// marks (engine/timeline.go): the engine chain and the handshake chain
// are each monotone in virtual time; under cut-through the two overlap
// between e5 and e11 (e7–e9 may precede e6).
var launchChains = [][]string{
	{engine.MarkE0, engine.MarkE1, engine.MarkE2, engine.MarkE3,
		engine.MarkE4, engine.MarkE5, engine.MarkE6, engine.MarkE11},
	{engine.MarkE5, engine.MarkE7, engine.MarkE8, engine.MarkE9,
		engine.MarkE10, engine.MarkE11},
}

// assertLaunchChains checks every chain's marks are present and monotone.
func assertLaunchChains(t *testing.T, label string, tl engine.Timeline) {
	t.Helper()
	for _, chain := range launchChains {
		prev := time.Duration(-1)
		for _, name := range chain {
			at, ok := tl.Get(name)
			if !ok {
				t.Errorf("%s: mark %s missing", label, name)
				continue
			}
			if at < prev {
				t.Errorf("%s: mark %s at %v precedes previous %v", label, name, at, prev)
			}
			prev = at
		}
	}
}

// launchPipeShapes are the tree shapes of the regression sweep: a lone
// master, one more daemon than the fanout (a two-level tree with a
// single grandchild), and a prime count that fills levels unevenly.
var launchPipeShapes = []struct{ nodes, fanout int }{
	{1, 4}, {5, 4}, {7, 4},
}

func TestLaunchPipelineMarksMonotone(t *testing.T) {
	for _, shape := range launchPipeShapes {
		t.Run(fmt.Sprintf("K%d_f%d", shape.nodes, shape.fanout), func(t *testing.T) {
			sim, cl, _ := rig(t, shape.nodes)
			cl.Register("lp_be", func(p *cluster.Proc) {
				be, err := BEInit(p)
				if err != nil {
					t.Errorf("BEInit: %v", err)
					return
				}
				be.Finalize()
			})
			runFE(t, sim, cl, func(p *cluster.Proc) {
				s, err := LaunchAndSpawn(p, Options{
					Job:        rm.JobSpec{Exe: "app", Nodes: shape.nodes, TasksPerNode: 4},
					Daemon:     rm.DaemonSpec{Exe: "lp_be"},
					ICCLFanout: shape.fanout,
				})
				if err != nil {
					t.Error(err)
					return
				}
				assertLaunchChains(t, fmt.Sprintf("K=%d", shape.nodes), s.Timeline)
				// The overlap marks of the pipeline are present too.
				if _, ok := s.Timeline.Get(engine.MarkSeedFwd); !ok {
					t.Error("seed_first_forward mark missing")
				}
				if _, ok := s.Timeline.Get(engine.MarkSeedValid); !ok {
					t.Error("master seed_validated mark missing from merged timeline")
				}
			})
		})
	}
}

// TestDaemonsSpawnedAfterEveryRankValidates pins the pipeline's safety
// half: however aggressively phases overlap, the ready message (e10, and
// with it the EvDaemonsSpawned transition) must not beat any rank's
// assembler validation.
func TestDaemonsSpawnedAfterEveryRankValidates(t *testing.T) {
	for _, shape := range launchPipeShapes {
		t.Run(fmt.Sprintf("K%d_f%d", shape.nodes, shape.fanout), func(t *testing.T) {
			sim, cl, _ := rig(t, shape.nodes)
			var mu sync.Mutex
			validated := map[int]time.Duration{}
			cl.Register("lv_be", func(p *cluster.Proc) {
				be, err := BEInit(p)
				if err != nil {
					t.Errorf("BEInit: %v", err)
					return
				}
				tl := be.Timeline()
				at, ok := tl.Get(engine.MarkSeedValid)
				if !ok {
					t.Errorf("rank %d: no seed_validated mark", be.Rank())
				}
				mu.Lock()
				validated[be.Rank()] = at
				mu.Unlock()
				be.Finalize()
			})
			runFE(t, sim, cl, func(p *cluster.Proc) {
				s, err := LaunchAndSpawn(p, Options{
					Job:        rm.JobSpec{Exe: "app", Nodes: shape.nodes, TasksPerNode: 4},
					Daemon:     rm.DaemonSpec{Exe: "lv_be"},
					ICCLFanout: shape.fanout,
				})
				if err != nil {
					t.Error(err)
					return
				}
				ready, ok := s.Timeline.Get(engine.MarkE10)
				if !ok {
					t.Fatal("no e10 mark")
				}
				mu.Lock()
				defer mu.Unlock()
				if len(validated) != shape.nodes {
					t.Fatalf("%d ranks validated, want %d", len(validated), shape.nodes)
				}
				for rank, at := range validated {
					if at > ready {
						t.Errorf("rank %d validated at %v, after the ready message at %v", rank, at, ready)
					}
				}
			})
		})
	}
}

// TestSeedByteIdenticalBothModes launches under each pipeline and checks
// every rank reassembled the exact bytes the front end holds.
func TestSeedByteIdenticalBothModes(t *testing.T) {
	for _, mode := range []SeedMode{SeedCutThrough, SeedStoreForward} {
		t.Run(mode.String(), func(t *testing.T) {
			const nodes = 5
			sim, cl, _ := rig(t, nodes)
			cl.Register("bi_be", func(p *cluster.Proc) {
				be, err := BEInit(p)
				if err != nil {
					t.Errorf("BEInit: %v", err)
					return
				}
				h := fnv.New64a()
				h.Write(be.Proctab().Encode())
				h.Write(be.FEData())
				if err := be.Collective().Gather(h.Sum(nil)); err != nil {
					t.Errorf("rank %d gather: %v", be.Rank(), err)
				}
				be.Finalize()
			})
			runFE(t, sim, cl, func(p *cluster.Proc) {
				s, err := LaunchAndSpawn(p, Options{
					Job:        rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 8},
					Daemon:     rm.DaemonSpec{Exe: "bi_be"},
					FEData:     []byte("seed-fedata"),
					ICCLFanout: 2,
					SeedMode:   mode,
					// Small chunks so the stream is genuinely multi-chunk.
					ProctabChunkBytes: 256,
				})
				if err != nil {
					t.Error(err)
					return
				}
				want := fnv.New64a()
				want.Write(s.Proctab().Encode())
				want.Write([]byte("seed-fedata"))
				hashes, err := s.Gather()
				if err != nil {
					t.Error(err)
					return
				}
				for rank, h := range hashes {
					if string(h) != string(want.Sum(nil)) {
						t.Errorf("rank %d table/FEData bytes differ from the front end's", rank)
					}
				}
			})
		})
	}
}

// TestSeedMidStreamFaultSurfaces kills the master daemon's node while the
// launch is in flight: LaunchAndSpawn must return an error carrying the
// severed-link fault (not hang), and the whole simulation must quiesce —
// interior daemons blocked on in-flight seed frames included.
func TestSeedMidStreamFaultSurfaces(t *testing.T) {
	const nodes = 16
	sim, cl, _ := rig(t, nodes)
	masterHost := vtime.NewChan[string](sim)
	cl.Register("mf_be", func(p *cluster.Proc) {
		if p.Env(rm.EnvNodeID) == "0" {
			masterHost.Send(p.Node().Name())
		}
		be, err := BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sim.Go("mid-stream-killer", func() {
			host, ok := masterHost.Recv()
			if !ok {
				return
			}
			// Let the master dial in and the handshake + first chunks land,
			// then fail its node while the tree is still forming.
			sim.Sleep(3 * time.Millisecond)
			if !cl.KillNodeByName(host) {
				t.Errorf("KillNodeByName(%q) found nothing", host)
			}
		})
		_, err := LaunchAndSpawn(p, Options{
			Job:               rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 32},
			Daemon:            rm.DaemonSpec{Exe: "mf_be"},
			ICCLFanout:        2,
			ProctabChunkBytes: 256,
		})
		if err == nil {
			t.Error("LaunchAndSpawn succeeded despite the master's node dying mid-launch")
			return
		}
		if !errors.Is(err, simnet.ErrPeerDead) {
			t.Errorf("launch error does not wrap the severed-link fault: %v", err)
		}
	})
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/engine"
	"launchmon/internal/health"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Middleware-fabric parity regressions: the MW seed must be byte-identical
// to the BE table at every MW rank under both seed pipelines, the MW mark
// chain must stay monotone, MW faults must surface (mid-seed and
// mid-session) exactly like BE faults, and the MW collective plane must
// report the terminal fault detail on a torn-down session.

// mwChain is the documented monotone order of the MW seed marks
// (engine/timeline.go): the chain starts after the session established
// (e11) because middleware can only be requested on a live session.
var mwChain = []string{
	engine.MarkE11, engine.MarkMW7, engine.MarkMW8, engine.MarkMW9, engine.MarkMW10,
}

// seedHash fingerprints a daemon's reassembled seed (table + FEData).
func seedHash(tab, feData []byte) []byte {
	h := fnv.New64a()
	h.Write(tab)
	h.Write(feData)
	return h.Sum(nil)
}

// TestMWSeedByteIdenticalBothModes launches middleware under each seed
// pipeline and checks every MW rank reassembled the exact bytes the front
// end holds, gathering the fingerprints over the MW collective plane. It
// also pins the MW mark chain m7≤m8≤m9≤m10 (after e11) and the per-rank
// mw_seed_validated mark.
func TestMWSeedByteIdenticalBothModes(t *testing.T) {
	for _, mode := range []SeedMode{SeedCutThrough, SeedStoreForward} {
		t.Run(mode.String(), func(t *testing.T) {
			const jobNodes, mwNodes = 4, 5
			sim, cl, _ := rig(t, jobNodes+mwNodes)
			cl.Register("mwbi_be", func(p *cluster.Proc) {
				if be, err := BEInit(p); err == nil {
					be.Finalize()
				}
			})
			cl.Register("mwbi_mw", func(p *cluster.Proc) {
				mw, err := MWInit(p)
				if err != nil {
					t.Errorf("MWInit: %v", err)
					return
				}
				tl := mw.Timeline()
				if _, ok := tl.Get(engine.MarkMWSeedValid); !ok {
					t.Errorf("MW rank %d: no mw_seed_validated mark", mw.Rank())
				}
				if err := mw.Collective().Gather(seedHash(mw.Proctab().Encode(), mw.FEData())); err != nil {
					t.Errorf("MW rank %d gather: %v", mw.Rank(), err)
				}
				mw.Finalize()
			})
			runFE(t, sim, cl, func(p *cluster.Proc) {
				s, err := LaunchAndSpawn(p, Options{
					Job:    rm.JobSpec{Exe: "app", Nodes: jobNodes, TasksPerNode: 8},
					Daemon: rm.DaemonSpec{Exe: "mwbi_be"},
					// Small chunks so the MW stream is genuinely multi-chunk.
					ProctabChunkBytes: 256,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.LaunchMW(MWOptions{
					Nodes:      mwNodes,
					Daemon:     rm.DaemonSpec{Exe: "mwbi_mw"},
					FEData:     []byte("mw-seed-fedata"),
					ICCLFanout: 2,
					SeedMode:   mode,
				}); err != nil {
					t.Error(err)
					return
				}
				want := string(seedHash(s.Proctab().Encode(), []byte("mw-seed-fedata")))
				hashes, err := s.MWGather()
				if err != nil {
					t.Error(err)
					return
				}
				if len(hashes) != mwNodes {
					t.Fatalf("%d MW contributions, want %d", len(hashes), mwNodes)
				}
				for rank, h := range hashes {
					if string(h) != want {
						t.Errorf("MW rank %d seed bytes differ from the front end's", rank)
					}
				}
				// The MW chain is monotone and the cut-through overlap mark
				// is present.
				prev := time.Duration(-1)
				for _, name := range mwChain {
					at, ok := s.Timeline.Get(name)
					if !ok {
						t.Errorf("mark %s missing", name)
						continue
					}
					if at < prev {
						t.Errorf("mark %s at %v precedes previous %v", name, at, prev)
					}
					prev = at
				}
				if _, ok := s.Timeline.Get(engine.MarkMWSeedValid); !ok {
					t.Error("MW master mw_seed_validated mark missing from merged timeline")
				}
				if mode == SeedCutThrough {
					if _, ok := s.Timeline.Get(engine.MarkMWSeedFwd); !ok {
						t.Error("mw_seed_first_forward mark missing")
					}
				}
			})
		})
	}
}

// TestMWKillMidSeedSurfacesFault kills the MW master's node while the MW
// seed is in flight: LaunchMW must return an error wrapping the
// severed-link fault (not hang), the simulation must quiesce, and the
// launch slot must be released for a retry once the relay is reaped.
// The seed payload is sized so the relay occupies the links well past the
// kill delay — the kill must land mid-seed by construction, not by
// accident of the MW fabric's bring-up pace.
func TestMWKillMidSeedSurfacesFault(t *testing.T) {
	const jobNodes, mwNodes = 4, 8
	sim, cl, _ := rig(t, jobNodes+mwNodes)
	cl.Register("mwmf_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	masterHost := vtime.NewChan[string](sim)
	cl.Register("mwmf_mw", func(p *cluster.Proc) {
		if p.Env(rm.EnvNodeID) == "0" {
			masterHost.Send(p.Node().Name())
		}
		if mw, err := MWInit(p); err == nil {
			mw.Finalize()
		}
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:               rm.JobSpec{Exe: "app", Nodes: jobNodes, TasksPerNode: 32},
			Daemon:            rm.DaemonSpec{Exe: "mwmf_be"},
			ProctabChunkBytes: 256,
		})
		if err != nil {
			t.Error(err)
			return
		}
		sim.Go("mw-mid-seed-killer", func() {
			host, ok := masterHost.Recv()
			if !ok {
				return
			}
			// Let the MW master dial in and the handshake + first chunks
			// land, then fail its node while the MW tree is still forming.
			sim.Sleep(3 * time.Millisecond)
			if !cl.KillNodeByName(host) {
				t.Errorf("KillNodeByName(%q) found nothing", host)
			}
		})
		_, err = s.LaunchMW(MWOptions{
			Nodes:  mwNodes,
			Daemon: rm.DaemonSpec{Exe: "mwmf_mw"},
			// ~6.7 ms of link time per hop at the default 1.2 GB/s: the
			// 3 ms kill is guaranteed to sever the seed stream in flight.
			FEData:     bytes.Repeat([]byte("mw-seed-bulk"), 1<<20/2),
			ICCLFanout: 2,
		})
		if err == nil {
			t.Error("LaunchMW succeeded despite the MW master's node dying mid-seed")
			return
		}
		if !errors.Is(err, simnet.ErrPeerDead) {
			t.Errorf("LaunchMW error does not wrap the severed-link fault: %v", err)
		}
		// The session itself is still healthy: BE operations keep working.
		if err := s.Kill(); err != nil {
			t.Errorf("Kill after failed LaunchMW: %v", err)
		}
	})
}

// TestMWCollectiveOnTornDownSessionWrapsFault tears the session down via
// BE-daemon loss mid-session and checks the MW-plane receives report the
// terminal fault detail — the MW mirror of the RecvFromBE contract.
func TestMWCollectiveOnTornDownSessionWrapsFault(t *testing.T) {
	const jobNodes, mwNodes = 4, 3
	sim, cl, _ := rig(t, jobNodes+mwNodes)
	registerResidentBE(t, cl, "mwtd_be")
	cl.Register("mwtd_mw", func(p *cluster.Proc) {
		if _, err := MWInit(p); err != nil {
			return
		}
		vtime.NewChan[int](p.Sim()).Recv() // resident until killed
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: jobNodes, TasksPerNode: 2},
			Daemon: rm.DaemonSpec{Exe: "mwtd_be"},
			Health: HealthOptions{Period: 200 * time.Millisecond},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := s.LaunchMW(MWOptions{
			Nodes:  mwNodes,
			Daemon: rm.DaemonSpec{Exe: "mwtd_mw"},
		}); err != nil {
			t.Error(err)
			return
		}
		chans := collectEvents(s, sim)
		p.Sim().Sleep(500 * time.Millisecond)

		// Kill a BE daemon's node; the watchdog tears the whole session
		// down, middleware included.
		var victimHost string
		for _, d := range s.Daemons() {
			if d.Rank == 2 {
				victimHost = d.Host
			}
		}
		if !cl.KillNodeByName(victimHost) {
			t.Errorf("KillNodeByName(%q) found nothing", victimHost)
			return
		}
		if _, ok := chans[health.EvSessionTornDown].Recv(); !ok {
			t.Error("no SessionTornDown event")
			return
		}
		if _, err := s.MWGather(); !errors.Is(err, ErrSessionClosed) ||
			!strings.Contains(err.Error(), "lost") {
			t.Errorf("MWGather after teardown: %v", err)
		}
		if _, err := s.RecvFromMW(); !errors.Is(err, ErrSessionClosed) ||
			!strings.Contains(err.Error(), "lost") {
			t.Errorf("RecvFromMW after teardown: %v", err)
		}
		if err := s.SendToMW(nil); err != ErrSessionClosed {
			t.Errorf("SendToMW after teardown: %v", err)
		}
	})
}

// TestMWDaemonLossFiresCallbacksAndTearsDown enables failure detection on
// the MW fabric and kills a non-master MW daemon's node: the loss must
// reach the front end as a DaemonExited status event tagged as an MW
// fault, and the watchdog must tear the session down — exactly the BE
// semantics, on the other fabric.
func TestMWDaemonLossFiresCallbacksAndTearsDown(t *testing.T) {
	const jobNodes, mwNodes = 2, 4
	period := 200 * time.Millisecond
	sim, cl, _ := rig(t, jobNodes+mwNodes)
	registerResidentBE(t, cl, "mwhl_be")
	cl.Register("mwhl_mw", func(p *cluster.Proc) {
		if _, err := MWInit(p); err != nil {
			return
		}
		vtime.NewChan[int](p.Sim()).Recv() // resident until killed
	})
	var exited health.Event
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: jobNodes, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "mwhl_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := s.LaunchMW(MWOptions{
			Nodes:  mwNodes,
			Daemon: rm.DaemonSpec{Exe: "mwhl_mw"},
			Health: HealthOptions{Period: period, Miss: 3},
		}); err != nil {
			t.Error(err)
			return
		}
		chans := collectEvents(s, sim)
		p.Sim().Sleep(1 * time.Second)

		const victim = 2
		var victimHost string
		for _, d := range s.MWDaemons() {
			if d.Rank == victim {
				victimHost = d.Host
			}
		}
		if victimHost == "" {
			t.Errorf("no MW daemon with rank %d", victim)
			return
		}
		if !cl.KillNodeByName(victimHost) {
			t.Errorf("KillNodeByName(%q) found nothing", victimHost)
			return
		}
		ev, ok := chans[health.EvDaemonExited].Recv()
		if !ok {
			t.Error("no DaemonExited event")
			return
		}
		exited = ev
		if _, ok := chans[health.EvSessionTornDown].Recv(); !ok {
			t.Error("no SessionTornDown event")
			return
		}
		if _, err := s.MWGather(); !errors.Is(err, ErrSessionClosed) ||
			!strings.Contains(err.Error(), fmt.Sprintf("mw daemon rank %d lost", victim)) {
			t.Errorf("MWGather after MW loss: %v", err)
		}
	})
	if exited.Rank != 2 {
		t.Errorf("DaemonExited rank = %d, want 2", exited.Rank)
	}
	if !strings.Contains(exited.Detail, "mw fabric") {
		t.Errorf("DaemonExited detail %q does not name the MW fabric", exited.Detail)
	}
}

// TestDoubleLaunchMWWhileInFlight pins the launch-slot guard under the
// cut-through pipeline: a second LaunchMW issued while the first is still
// relaying the seed must be rejected without disturbing the first.
func TestDoubleLaunchMWWhileInFlight(t *testing.T) {
	const jobNodes, mwNodes = 2, 3
	sim, cl, _ := rig(t, jobNodes+mwNodes)
	cl.Register("mwdl_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	cl.Register("mwdl_mw", func(p *cluster.Proc) {
		if mw, err := MWInit(p); err == nil {
			mw.Finalize()
		}
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		s, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: jobNodes, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "mwdl_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		second := vtime.NewChan[error](sim)
		sim.Go("racing-launchmw", func() {
			// One virtual millisecond in: the first LaunchMW has claimed
			// the slot and is still relaying the seed.
			sim.Sleep(1 * time.Millisecond)
			_, err := s.LaunchMW(MWOptions{Nodes: 1, Daemon: rm.DaemonSpec{Exe: "mwdl_mw"}})
			second.Send(err)
		})
		if _, err := s.LaunchMW(MWOptions{
			Nodes:  mwNodes,
			Daemon: rm.DaemonSpec{Exe: "mwdl_mw"},
		}); err != nil {
			t.Errorf("first LaunchMW: %v", err)
		}
		if err, _ := second.Recv(); err == nil {
			t.Error("concurrent second LaunchMW accepted")
		}
		if len(s.MWDaemons()) != mwNodes {
			t.Errorf("MW daemons = %d, want %d", len(s.MWDaemons()), mwNodes)
		}
	})
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// End-to-end tests of the collective tool-data plane: FE-side
// Session.Broadcast/Scatter/Gather/Reduce against the mirrored
// BE.Collective handle, over real sessions.

func TestCollectiveRoundTripAllOps(t *testing.T) {
	for _, tc := range []struct{ nodes, fanout int }{
		{1, 0},  // single daemon, flat
		{5, 4},  // K = fanout+1
		{8, 0},  // flat tree
		{13, 3}, // prime K
	} {
		t.Run(fmt.Sprintf("n%d_f%d", tc.nodes, tc.fanout), func(t *testing.T) {
			sim, cl, _ := rig(t, tc.nodes)
			n := tc.nodes
			bcast := bytes.Repeat([]byte("payload-"), 64) // 512 B, several 128 B chunks
			cl.Register("coll_be", func(p *cluster.Proc) {
				be, err := BEInit(p)
				if err != nil {
					t.Errorf("BEInit: %v", err)
					return
				}
				c := be.Collective()
				got, err := c.Broadcast()
				if err != nil {
					t.Errorf("rank %d broadcast: %v", be.Rank(), err)
					return
				}
				if !bytes.Equal(got, bcast) {
					t.Errorf("rank %d broadcast got %d bytes", be.Rank(), len(got))
					return
				}
				part, err := c.Scatter()
				if err != nil {
					t.Errorf("rank %d scatter: %v", be.Rank(), err)
					return
				}
				want := fmt.Sprintf("part-for-%d", be.Rank())
				if string(part) != want {
					t.Errorf("rank %d scatter got %q", be.Rank(), part)
					return
				}
				if err := c.Gather([]byte(fmt.Sprintf("from-%d", be.Rank()))); err != nil {
					t.Errorf("rank %d gather: %v", be.Rank(), err)
					return
				}
				one := lmonp.AppendUint64(nil, 1)
				if err := c.Reduce(one, "sum"); err != nil {
					t.Errorf("rank %d reduce: %v", be.Rank(), err)
					return
				}
				be.Finalize()
			})
			runFE(t, sim, cl, func(p *cluster.Proc) {
				sess, err := LaunchAndSpawn(p, Options{
					Job:            rm.JobSpec{Exe: "app", Nodes: n, TasksPerNode: 1},
					Daemon:         rm.DaemonSpec{Exe: "coll_be"},
					ICCLFanout:     tc.fanout,
					CollChunkBytes: 128,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if err := sess.Broadcast(bcast); err != nil {
					t.Errorf("broadcast: %v", err)
					return
				}
				parts := make([][]byte, n)
				for rk := range parts {
					parts[rk] = []byte(fmt.Sprintf("part-for-%d", rk))
				}
				if err := sess.Scatter(parts); err != nil {
					t.Errorf("scatter: %v", err)
					return
				}
				all, err := sess.Gather()
				if err != nil {
					t.Errorf("gather: %v", err)
					return
				}
				for rk, blob := range all {
					if string(blob) != fmt.Sprintf("from-%d", rk) {
						t.Errorf("gather slot %d = %q", rk, blob)
					}
				}
				sum, err := sess.Reduce()
				if err != nil {
					t.Errorf("reduce: %v", err)
					return
				}
				v, err := lmonp.NewReader(sum).Uint64()
				if err != nil || v != uint64(n) {
					t.Errorf("reduce sum = %d (%v), want %d", v, err, n)
				}
				sess.Kill()
			})
		})
	}
}

func TestCollectiveLargePayloadChunks(t *testing.T) {
	// A gather whose per-daemon contribution exceeds the chunk size must
	// still arrive intact (oversized single entries travel whole).
	sim, cl, _ := rig(t, 4)
	big := bytes.Repeat([]byte{0xAB}, 300<<10) // 300 KiB >> 64 KiB default chunks
	cl.Register("big_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		blob := append([]byte{byte(be.Rank())}, big...)
		if err := be.Collective().Gather(blob); err != nil {
			t.Errorf("rank %d: %v", be.Rank(), err)
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "big_be"},
			ICCLFanout: 2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		all, err := sess.Gather()
		if err != nil {
			t.Error(err)
			return
		}
		for rk, blob := range all {
			if len(blob) != len(big)+1 || blob[0] != byte(rk) {
				t.Errorf("rank %d blob: %d bytes", rk, len(blob))
			}
		}
		sess.Kill()
	})
}

func TestScatterWrongPartCountRejected(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("sc_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		if _, err := be.Collective().Scatter(); err != nil {
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "sc_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := sess.Scatter([][]byte{[]byte("only-one")}); err == nil {
			t.Error("scatter with one part for two daemons accepted")
		}
		// Recover so the daemons' pending Scatter completes, then end.
		if err := sess.Scatter([][]byte{{1}, {2}}); err != nil {
			t.Error(err)
		}
		sess.Kill()
	})
}

// TestOversizedToolPayloadRejectedAtSend is the regression test for the
// encode-time size guard: a tool payload whose combined sections exceed
// lmonp.MaxPayload must fail at the sender with a sized error, not as a
// truncated read on the peer.
func TestOversizedToolPayloadRejectedAtSend(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("ok_be", func(p *cluster.Proc) {
		if _, err := BEInit(p); err == nil {
			vtime.NewChan[int](p.Sim()).Recv() // park; the kill reaps us
		}
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "ok_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		huge := make([]byte, lmonp.MaxPayload+1)
		err = sess.SendToBE(huge)
		if !errors.Is(err, lmonp.ErrTooLarge) {
			t.Errorf("SendToBE(%d bytes): %v", len(huge), err)
		}
		if err != nil && !strings.Contains(err.Error(), fmt.Sprint(len(huge))) {
			t.Errorf("oversize error does not name the size: %v", err)
		}
		sess.Kill()
	})
}

// TestGatherSurfacesTeardownDetail is the KillNode-mid-gather regression:
// a collective receive on a session the watchdog tears down must wrap the
// terminal health event's detail (which daemon died), not return a bare
// ErrSessionClosed.
func TestGatherSurfacesTeardownDetail(t *testing.T) {
	const n = 6
	sim, cl, _ := rig(t, n)
	cl.Register("stuck_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		if be.Rank() == 3 {
			// Rank 3 never contributes: the gather stalls until its node is
			// killed. Park; the node kill reaps us.
			vtime.NewChan[int](p.Sim()).Recv()
			return
		}
		// Everyone else contributes, then parks (errors expected once the
		// session dies under them).
		be.Collective().Gather([]byte("x"))
		vtime.NewChan[int](p.Sim()).Recv()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: n, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "stuck_be"},
			ICCLFanout: 2,
			Health:     HealthOptions{Period: 200 * time.Millisecond, Miss: 2},
		})
		if err != nil {
			t.Error(err)
			return
		}
		victimHost := ""
		for _, d := range sess.Daemons() {
			if d.Rank == 3 {
				victimHost = d.Host
			}
		}
		p.Sim().Sleep(time.Second) // session reaches steady state
		sim.Go("killer", func() {
			p.Sim().Sleep(500 * time.Millisecond)
			cl.KillNodeByName(victimHost)
		})
		_, err = sess.Gather() // stalls on rank 3, then dies with the session
		if err == nil {
			t.Error("gather on torn-down session succeeded")
			return
		}
		if !errors.Is(err, ErrSessionClosed) {
			t.Errorf("teardown error does not wrap ErrSessionClosed: %v", err)
		}
		if !strings.Contains(err.Error(), "daemon rank 3 lost") {
			t.Errorf("teardown error does not name the lost daemon: %v", err)
		}
		// RecvFromBE after the fact reports the same cause.
		if _, err := sess.RecvFromBE(); err == nil || !strings.Contains(err.Error(), "daemon rank 3 lost") {
			t.Errorf("RecvFromBE after teardown: %v", err)
		}
	})
}

// TestRecvFromBEPlainClosedAfterKill pins the contract that a
// tool-initiated Kill keeps returning the bare sentinel (no fault detail
// is invented for clean teardowns).
func TestRecvFromBEPlainClosedAfterKill(t *testing.T) {
	sim, cl, _ := rig(t, 2)
	cl.Register("ok_be", func(p *cluster.Proc) {
		if be, err := BEInit(p); err == nil {
			be.Finalize()
		}
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "ok_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := sess.Kill(); err != nil {
			t.Error(err)
			return
		}
		if _, err := sess.Gather(); err != ErrSessionClosed {
			t.Errorf("Gather on killed session: %v", err)
		}
		if err := sess.Broadcast(nil); err != ErrSessionClosed {
			t.Errorf("Broadcast on killed session: %v", err)
		}
	})
}

func TestCollectiveOrderDivergenceDetected(t *testing.T) {
	// FE gathers while the daemons broadcast: the lockstep tag/op check
	// must fail loudly instead of cross-wiring streams.
	sim, cl, _ := rig(t, 2)
	beErr := make(chan error, 2)
	cl.Register("div_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		// Daemons gather — but the FE broadcasts.
		beErr <- be.Collective().Gather([]byte("x"))
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "div_be"},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := sess.Broadcast([]byte("hello")); err != nil {
			t.Error(err)
			return
		}
		// The FE's broadcast stream reaches the master while it expects
		// gather traffic on its down hook — the master errors out; the FE
		// must observe the gather failing (daemons gathered, so frames of
		// the wrong op/tag reach the FE queue).
		if _, err := sess.Gather(); err == nil {
			t.Error("diverged collective order went undetected")
		}
		sess.Kill()
	})
	close(beErr)
}

func TestReduceCustomFilterAcrossSession(t *testing.T) {
	coll.RegisterFilter("test-min-u64", func(string) (coll.Combine, error) {
		return func(acc, next []byte) ([]byte, error) {
			if acc == nil {
				return append([]byte(nil), next...), nil
			}
			a, _ := lmonp.NewReader(acc).Uint64()
			b, errB := lmonp.NewReader(next).Uint64()
			if errB != nil {
				return nil, errB
			}
			if b < a {
				return append([]byte(nil), next...), nil
			}
			return acc, nil
		}, nil
	})
	sim, cl, _ := rig(t, 5)
	cl.Register("min_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		v := lmonp.AppendUint64(nil, uint64(100+be.Rank()*10))
		if err := be.Collective().Reduce(v, "test-min-u64"); err != nil {
			t.Errorf("rank %d: %v", be.Rank(), err)
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sess, err := LaunchAndSpawn(p, Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: 5, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "min_be"},
			ICCLFanout: 2,
		})
		if err != nil {
			t.Error(err)
			return
		}
		out, err := sess.Reduce()
		if err != nil {
			t.Error(err)
			return
		}
		v, _ := lmonp.NewReader(out).Uint64()
		if v != 100 {
			t.Errorf("min = %d, want 100", v)
		}
		sess.Kill()
	})
}

// TestMalformedCollectiveFrameFailsGather pins the demux contract: a
// frame the BE watcher cannot decode must fail the pending collective
// with an error, not vanish and leave Gather waiting for an end marker
// that never comes.
func TestMalformedCollectiveFrameFailsGather(t *testing.T) {
	sim := vtime.New()
	var buf bytes.Buffer
	s := &Session{
		beMaster: lmonp.NewConn(&buf),
		beColl:   vtime.NewChan[collEvent](sim),
	}
	var gatherErr error
	sim.Go("fe", func() {
		_, gatherErr = s.Gather()
	})
	sim.Go("inject", func() {
		// What beReader queues when coll.DecodeMsg rejects a frame.
		s.beColl.Send(collEvent{err: errors.New("bad header")})
	})
	sim.Run()
	if gatherErr == nil || !strings.Contains(gatherErr.Error(), "malformed collective frame") {
		t.Fatalf("gather after malformed frame: %v", gatherErr)
	}
}

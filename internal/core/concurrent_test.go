package core

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/transport"
	"launchmon/internal/vtime"
)

// Concurrent-session coverage: one FE process drives many sessions in
// parallel goroutines over a single transport mux. Run with -race.

// launchConcurrent runs k LaunchAndSpawn sessions in parallel goroutines
// of one FE process and returns the sessions (indexed by goroutine).
func launchConcurrent(t *testing.T, p *cluster.Proc, k, nodesEach, tpn int) []*Session {
	t.Helper()
	sessions := make([]*Session, k)
	errs := make([]error, k)
	wg := vtime.NewWaitGroup(p.Sim())
	wg.Add(k)
	for i := 0; i < k; i++ {
		i := i
		p.Sim().Go(fmt.Sprintf("fe-session-%d", i), func() {
			defer wg.Done()
			sessions[i], errs[i] = LaunchAndSpawn(p, Options{
				Job:    rm.JobSpec{Exe: fmt.Sprintf("app%d", i), Nodes: nodesEach, TasksPerNode: tpn},
				Daemon: rm.DaemonSpec{Exe: "cc_be"},
				FEData: []byte(fmt.Sprintf("boot-%d", i)),
			})
		})
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	return sessions
}

func TestConcurrentSessionsOverOneMux(t *testing.T) {
	const k, nodesEach, tpn = 8, 2, 2
	sim, cl, _ := rig(t, k*nodesEach)
	cl.Register("cc_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			t.Errorf("BEInit on %s: %v", p.Node().Name(), err)
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sessions := launchConcurrent(t, p, k, nodesEach, tpn)

		fe, err := NewFrontEnd(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := fe.Mux().Sessions(); got != k {
			t.Errorf("mux tracks %d sessions, want %d", got, k)
		}

		// Proctabs are complete, valid, and pairwise disjoint: every
		// session's job landed on its own nodes, and no session saw
		// another session's table through the shared mux.
		hostOwner := map[string]int{}
		idSeen := map[int]bool{}
		for i, s := range sessions {
			if s == nil {
				continue
			}
			if idSeen[s.ID] {
				t.Errorf("duplicate session id %d", s.ID)
			}
			idSeen[s.ID] = true
			tab := s.Proctab()
			if len(tab) != nodesEach*tpn {
				t.Errorf("session %d proctab has %d entries, want %d", i, len(tab), nodesEach*tpn)
			}
			if err := tab.Validate(); err != nil {
				t.Errorf("session %d proctab: %v", i, err)
			}
			for _, d := range tab {
				if d.Exe != fmt.Sprintf("app%d", i) {
					t.Errorf("session %d proctab contains foreign task %q", i, d.Exe)
				}
				if prev, ok := hostOwner[d.Host]; ok && prev != i {
					t.Errorf("host %s appears in sessions %d and %d", d.Host, prev, i)
				}
				hostOwner[d.Host] = i
			}
			if len(s.Daemons()) != nodesEach {
				t.Errorf("session %d reports %d daemons, want %d", i, len(s.Daemons()), nodesEach)
			}
		}

		// Per-session timelines: each session's critical-path chains are
		// complete and monotonic on its own clock, independent of how the
		// sessions interleaved.
		for i, s := range sessions {
			if s == nil {
				continue
			}
			assertLaunchChains(t, fmt.Sprintf("session %d", i), s.Timeline)
		}
	})
}

func TestConcurrentSessionsIndependentTeardown(t *testing.T) {
	const k, nodesEach, tpn = 4, 2, 1
	sim, cl, _ := rig(t, k*nodesEach)
	cl.Register("cc_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sessions := launchConcurrent(t, p, k, nodesEach, tpn)
		for _, s := range sessions {
			if s == nil {
				t.Fatal("missing session")
			}
		}
		// Kill the even sessions, detach the odd ones, concurrently.
		wg := vtime.NewWaitGroup(p.Sim())
		wg.Add(k)
		for i, s := range sessions {
			i, s := i, s
			p.Sim().Go(fmt.Sprintf("teardown-%d", i), func() {
				defer wg.Done()
				var err error
				if i%2 == 0 {
					err = s.Kill()
				} else {
					err = s.Detach()
				}
				if err != nil {
					t.Errorf("teardown session %d: %v", i, err)
				}
			})
		}
		wg.Wait()
		for i, s := range sessions {
			if err := s.Kill(); err != ErrSessionClosed {
				t.Errorf("session %d second teardown: %v", i, err)
			}
		}
		// Mux endpoints deregistered with their sessions.
		fe, err := NewFrontEnd(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := fe.Mux().Sessions(); got != 0 {
			t.Errorf("mux still tracks %d sessions after teardown", got)
		}
	})
}

func TestConcurrentDetachKillRacesAcrossSessions(t *testing.T) {
	// Eight parallel sessions; for each, Detach and Kill race from two
	// goroutines. Exactly one must win per session; the loser gets
	// ErrSessionClosed. Afterwards the mux must have deregistered every
	// session, and connections routed at a closed session's queues must be
	// shed with EOF.
	const k, nodesEach = 8, 2
	sim, cl, _ := rig(t, k*nodesEach)
	cl.Register("cc_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		sessions := launchConcurrent(t, p, k, nodesEach, 1)
		for _, s := range sessions {
			if s == nil {
				t.Fatal("missing session")
			}
		}
		errs := make([]error, 2*k)
		wg := vtime.NewWaitGroup(p.Sim())
		wg.Add(2 * k)
		for i, s := range sessions {
			i, s := i, s
			p.Sim().Go(fmt.Sprintf("race-detach-%d", i), func() {
				defer wg.Done()
				errs[2*i] = s.Detach()
			})
			p.Sim().Go(fmt.Sprintf("race-kill-%d", i), func() {
				defer wg.Done()
				errs[2*i+1] = s.Kill()
			})
		}
		wg.Wait()
		for i := 0; i < k; i++ {
			de, ke := errs[2*i], errs[2*i+1]
			if (de == nil) == (ke == nil) {
				t.Errorf("session %d: detach=%v kill=%v; exactly one must win", i, de, ke)
			}
			if de != nil && !errors.Is(de, ErrSessionClosed) {
				t.Errorf("session %d: losing detach got %v", i, de)
			}
			if ke != nil && !errors.Is(ke, ErrSessionClosed) {
				t.Errorf("session %d: losing kill got %v", i, ke)
			}
		}

		fe, err := NewFrontEnd(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := fe.Mux().Sessions(); got != 0 {
			t.Errorf("mux still tracks %d sessions after teardown", got)
		}

		// A dial announcing a closed session's ID is shed by the mux: the
		// dialer observes EOF (not a hang) — the queue-drain contract.
		for _, s := range sessions {
			conn, err := p.Host().Dial(fe.Mux().Addr())
			if err != nil {
				t.Fatalf("dial mux: %v", err)
			}
			if err := transport.WriteHello(conn, transport.Hello{Session: s.ID, Role: transport.RoleBE}); err != nil {
				t.Fatalf("hello: %v", err)
			}
			var buf [1]byte
			if _, err := conn.Read(buf[:]); err != io.EOF {
				t.Errorf("stale dial for session %d: read err %v, want EOF", s.ID, err)
			}
			conn.Close()
		}
	})
}

func TestConcurrentLaunchAndAttachMix(t *testing.T) {
	const nodesEach, tpn = 2, 2
	sim, cl, mgr := rig(t, 4*nodesEach)
	cl.Register("cc_be", func(p *cluster.Proc) {
		be, err := BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})
	runFE(t, sim, cl, func(p *cluster.Proc) {
		// Two jobs started outside tool control...
		var jobs []rm.Job
		for i := 0; i < 2; i++ {
			j, err := mgr.StartJob(rm.JobSpec{Exe: fmt.Sprintf("user%d", i), Nodes: nodesEach, TasksPerNode: tpn})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		p.Sim().Sleep(2 * time.Second)

		// ...attached to concurrently with two fresh launches.
		sessions := make([]*Session, 4)
		errs := make([]error, 4)
		wg := vtime.NewWaitGroup(p.Sim())
		wg.Add(4)
		for i := 0; i < 4; i++ {
			i := i
			p.Sim().Go(fmt.Sprintf("mix-%d", i), func() {
				defer wg.Done()
				if i < 2 {
					sessions[i], errs[i] = AttachAndSpawn(p, Options{
						JobID:  jobs[i].ID(),
						Daemon: rm.DaemonSpec{Exe: "cc_be"},
					})
				} else {
					sessions[i], errs[i] = LaunchAndSpawn(p, Options{
						Job:    rm.JobSpec{Exe: fmt.Sprintf("fresh%d", i), Nodes: nodesEach, TasksPerNode: tpn},
						Daemon: rm.DaemonSpec{Exe: "cc_be"},
					})
				}
			})
		}
		wg.Wait()
		for i := 0; i < 4; i++ {
			if errs[i] != nil {
				t.Errorf("session %d: %v", i, errs[i])
				continue
			}
			if got := len(sessions[i].Proctab()); got != nodesEach*tpn {
				t.Errorf("session %d proctab = %d entries, want %d", i, got, nodesEach*tpn)
			}
		}
	})
}

package core

import (
	"fmt"
	"testing"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/rm/alps"
	"launchmon/internal/rm/bgl"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

// TestPortabilityAcrossResourceManagers is the paper's m×n → m+n claim as
// a test: exactly the same tool code (front end and back-end daemon) runs
// unchanged over three structurally different resource managers — the
// SLURM-like launch tree, the BG/L-like mpirun profile, and the ALPS-like
// star — because LaunchMON confines all platform specifics to the
// rm.Manager the engine is constructed with.
func TestPortabilityAcrossResourceManagers(t *testing.T) {
	managers := []struct {
		name    string
		install func(cl *cluster.Cluster) (rm.Manager, error)
	}{
		{"slurm", func(cl *cluster.Cluster) (rm.Manager, error) { return slurm.Install(cl, slurm.Config{}) }},
		{"bgl-mpirun", func(cl *cluster.Cluster) (rm.Manager, error) { return bgl.Install(cl) }},
		{"alps", func(cl *cluster.Cluster) (rm.Manager, error) { return alps.Install(cl, alps.Config{}) }},
	}
	for _, mgr := range managers {
		mgr := mgr
		t.Run(mgr.name, func(t *testing.T) {
			sim := vtime.New()
			cl, err := cluster.New(sim, cluster.Options{Nodes: 6})
			if err != nil {
				t.Fatal(err)
			}
			m, err := mgr.install(cl)
			if err != nil {
				t.Fatal(err)
			}
			Setup(cl, m)

			// The identical tool, verbatim, for every RM.
			cl.Register("portable_be", func(p *cluster.Proc) {
				be, err := BEInit(p)
				if err != nil {
					t.Errorf("[%s] BEInit: %v", mgr.name, err)
					return
				}
				line := fmt.Sprintf("%d:%d", be.Rank(), len(be.MyProctab()))
				all, err := be.Gather([]byte(line))
				if err != nil {
					return
				}
				if be.AmIMaster() {
					var out []byte
					for _, l := range all {
						out = append(out, l...)
						out = append(out, ' ')
					}
					be.SendToFE(out)
				}
				be.Finalize()
			})

			var summary string
			runFE(t, sim, cl, func(p *cluster.Proc) {
				sess, err := LaunchAndSpawn(p, Options{
					Job:    rm.JobSpec{Exe: "app", Nodes: 6, TasksPerNode: 3},
					Daemon: rm.DaemonSpec{Exe: "portable_be"},
				})
				if err != nil {
					t.Errorf("[%s] LaunchAndSpawn: %v", mgr.name, err)
					return
				}
				if len(sess.Proctab()) != 18 {
					t.Errorf("[%s] proctab = %d entries", mgr.name, len(sess.Proctab()))
				}
				if err := sess.Proctab().Validate(); err != nil {
					t.Errorf("[%s] %v", mgr.name, err)
				}
				if len(sess.Daemons()) != 6 {
					t.Errorf("[%s] daemons = %d", mgr.name, len(sess.Daemons()))
				}
				got, err := sess.RecvFromBE()
				if err != nil {
					t.Errorf("[%s] RecvFromBE: %v", mgr.name, err)
					return
				}
				summary = string(got)
				if err := sess.Kill(); err != nil {
					t.Errorf("[%s] Kill: %v", mgr.name, err)
				}
			})
			want := "0:3 1:3 2:3 3:3 4:3 5:3 "
			if summary != want {
				t.Fatalf("[%s] gathered %q, want %q", mgr.name, summary, want)
			}
		})
	}
}

// TestAttachPortability runs attachAndSpawn across all three RMs.
func TestAttachPortability(t *testing.T) {
	managers := []struct {
		name    string
		install func(cl *cluster.Cluster) (rm.Manager, error)
	}{
		{"slurm", func(cl *cluster.Cluster) (rm.Manager, error) { return slurm.Install(cl, slurm.Config{}) }},
		{"alps", func(cl *cluster.Cluster) (rm.Manager, error) { return alps.Install(cl, alps.Config{}) }},
	}
	for _, mgr := range managers {
		mgr := mgr
		t.Run(mgr.name, func(t *testing.T) {
			sim := vtime.New()
			cl, err := cluster.New(sim, cluster.Options{Nodes: 4})
			if err != nil {
				t.Fatal(err)
			}
			m, err := mgr.install(cl)
			if err != nil {
				t.Fatal(err)
			}
			Setup(cl, m)
			cl.Register("portable_be", func(p *cluster.Proc) {
				if be, err := BEInit(p); err == nil {
					be.Finalize()
				}
			})
			runFE(t, sim, cl, func(p *cluster.Proc) {
				j, err := m.StartJob(rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
				if err != nil {
					t.Error(err)
					return
				}
				p.Sim().Sleep(10 * 1e9) // 10s: job reaches steady state
				sess, err := AttachAndSpawn(p, Options{JobID: j.ID(), Daemon: rm.DaemonSpec{Exe: "portable_be"}})
				if err != nil {
					t.Errorf("[%s] attach: %v", mgr.name, err)
					return
				}
				if len(sess.Proctab()) != 8 {
					t.Errorf("[%s] proctab = %d", mgr.name, len(sess.Proctab()))
				}
			})
		})
	}
}

package core

import (
	"fmt"

	"launchmon/internal/engine"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/vtime"
)

// This file is the front-end half of the cut-through launch pipeline
// (DESIGN.md "Life of a session"): instead of buffering the full RPDTAB
// from the engine and retransmitting it after the spawn status arrives,
// the FE relays each chunk toward the master back-end daemon as it
// arrives, and accepts the master's connection concurrently with the
// engine stream and status wait — so the FE↔BE handshake (with FEData
// ahead of the table) begins the moment the master dials in, typically
// while the RM is still spawning the master's sibling daemons.

// SeedMode selects how a session's seed — the RPDTAB plus the
// piggybacked Options.FEData — reaches every back-end daemon.
type SeedMode int

const (
	// SeedCutThrough (the default) streams the seed end to end: the FE
	// relays engine chunks to the master as they arrive, and the master
	// injects them into an ICCL seed stream that interior daemons forward
	// while the tree is still forming. No component ever store-and-forwards
	// the full table.
	SeedCutThrough SeedMode = iota
	// SeedStoreForward is the serialized baseline (the paper's Figure 2
	// pipeline): full-table buffering at the FE and again at the master,
	// which broadcasts it as one monolithic frame after bootstrap. Kept for
	// the launch-pipeline ablation and for the §4 analytic model, whose
	// decomposition assumes the serialized event chain.
	SeedStoreForward
)

// String names the mode for diagnostics and bench output.
func (m SeedMode) String() string {
	if m == SeedStoreForward {
		return "store-forward"
	}
	return "cut-through"
}

// envValue renders the mode for the daemon bootstrap environment.
func (m SeedMode) envValue() string { return m.String() }

// TableMode selects how much of the RPDTAB each daemon retains under the
// cut-through seed pipeline.
type TableMode int

const (
	// TableSliced (the default) keeps only each daemon's own rank slice:
	// interior daemons decode incoming seed chunks, retain the entries
	// whose host they own, and re-pack the rest into per-subtree streams
	// (iccl.SeedRouter), while the full table lives once per session in a
	// shared immutable index (sessionShared). Per-daemon table memory is
	// O(K/daemons) instead of O(K) — O(K) total across the fabric instead
	// of O(K²)-ish K x daemons.
	TableSliced TableMode = iota
	// TableFull retains the complete table at every daemon — the ablation
	// baseline for the memory model, and the only shape the store-forward
	// seed pipeline supports (store-forward ignores TableMode).
	TableFull
)

// String names the mode for diagnostics and bench output.
func (m TableMode) String() string {
	if m == TableFull {
		return "full"
	}
	return "sliced"
}

// envValue renders the mode for the daemon bootstrap environment.
func (m TableMode) envValue() string { return m.String() }

// seedItem is one unit of the FE→master relay: an RPDTAB chunk, or the
// end marker carrying the table's entry count and the rolling digest of
// the chunk checksums (sum).
type seedItem struct {
	chunk []byte
	end   bool
	total uint64
	sum   uint64
}

// relayResult is what the seed-relay goroutine hands back to the launch
// path: the established master connection, the decoded ready message, and
// the relay's share of the timeline (e7, e10, overlap marks).
type relayResult struct {
	conn    *lmonp.Conn
	infos   []DaemonInfo
	tl      engine.Timeline
	obsBlob []byte // harvested metrics snapshot off the ready message
	err     error
}

// seedRelay accepts a fabric's master-daemon connection and forwards the
// seed stream to it, concurrently with whatever the launch path is doing
// (draining the engine chunk stream on the BE fabric, awaiting the MW
// spawn status on the MW fabric). The fabric profile selects the LMONP
// class, the transport role, and which timeline marks the relay stamps.
type seedRelay struct {
	s      *Session
	fab    fabricProfile
	feData []byte
	items  *vtime.Chan[seedItem]
	result *vtime.Chan[relayResult]

	markAccept, markFwd, markReady string
}

// newSeedRelay builds a relay for the given fabric with its mark names.
func newSeedRelay(s *Session, fab fabricProfile, feData []byte, markAccept, markFwd, markReady string) *seedRelay {
	sim := s.p.Sim()
	return &seedRelay{
		s: s, fab: fab, feData: feData,
		items:      vtime.NewChan[seedItem](sim),
		result:     vtime.NewChan[relayResult](sim),
		markAccept: markAccept, markFwd: markFwd, markReady: markReady,
	}
}

// abort wakes a relay parked on the item queue and stops further
// forwarding: the relay checks the queue's closed flag before each item,
// so even a pre-fed queue (the MW path queues the whole re-chunked table
// up front) stops streaming to a stale dial after an abort — queued
// values surviving Close would otherwise keep the stream flowing. A
// relay parked in Endpoint.Accept is released by the caller closing the
// session (s.close closes the endpoint); one already past its end marker
// is parked on the peer's ready and is reaped by the caller instead.
func (r *seedRelay) abort() { r.items.Close() }

func (r *seedRelay) run() {
	res := r.relay()
	if res.err != nil && res.conn != nil {
		res.conn.Close()
		res.conn = nil
	}
	r.result.Send(res)
}

func (r *seedRelay) relay() relayResult {
	s := r.s
	sim := s.p.Sim()
	sp := s.obsRec.Start("seed-relay-"+r.fab.kind, -1)
	defer sp.End()
	relayChunks := s.obsCounter("fe.relay.chunks")
	relayBytes := s.obsCounter("fe.relay.bytes")
	conn, err := s.ep.Accept(r.fab.role, s.timeout)
	if err != nil {
		return relayResult{err: fmt.Errorf("core: %s master daemon did not connect: %w", r.fab.kind, err)}
	}
	var tl engine.Timeline
	tl.Mark(r.markAccept, sim.Now())
	// FEData rides the handshake ahead of the proctab stream, so every
	// daemon has its bootstrap data before the first table chunk lands.
	if err := conn.Send(&lmonp.Msg{Class: r.fab.class, Type: lmonp.TypeHandshake, UsrData: r.feData}); err != nil {
		return relayResult{conn: conn, err: fmt.Errorf("core: handshake to %s master: %w", r.fab.kind, err)}
	}
	first := true
	for {
		if r.items.Closed() {
			return relayResult{conn: conn, err: fmt.Errorf("core: session %d: seed relay aborted", s.ID)}
		}
		it, ok := r.items.Recv()
		if !ok {
			return relayResult{conn: conn, err: fmt.Errorf("core: session %d: seed relay aborted", s.ID)}
		}
		if first {
			tl.Mark(r.markFwd, sim.Now())
			first = false
		}
		if it.end {
			err = conn.Send(&lmonp.Msg{
				Class:   r.fab.class,
				Type:    lmonp.TypeProctabEnd,
				Payload: proctab.EncodeEndMarker(it.total, it.sum),
			})
		} else {
			err = conn.Send(&lmonp.Msg{
				Class:   r.fab.class,
				Type:    lmonp.TypeProctabChunk,
				Payload: it.chunk,
			})
			relayChunks.Inc()
			relayBytes.Add(uint64(len(it.chunk)))
		}
		if err != nil {
			return relayResult{conn: conn, err: fmt.Errorf("core: relaying session seed to %s master: %w", r.fab.kind, err)}
		}
		if it.end {
			break
		}
	}
	ready, err := conn.Expect(r.fab.class, lmonp.TypeReady)
	if err != nil {
		return relayResult{conn: conn, err: fmt.Errorf("core: awaiting %s master ready: %w", r.fab.kind, err)}
	}
	tl.Mark(r.markReady, sim.Now())
	infos, masterTL, obsBlob, err := decodeReady(ready.Payload)
	if err != nil {
		return relayResult{conn: conn, err: err}
	}
	tl.Merge(masterTL)
	return relayResult{conn: conn, infos: infos, tl: tl, obsBlob: obsBlob}
}

// launchCutThrough drains the engine's chunk stream and status while the
// relay goroutine independently accepts the master daemon, handshakes,
// and forwards the chunks. The FE assembles its own table copy from the
// same chunks in passing — it never waits for the full table before
// forwarding, and never retransmits it after the status arrives.
func (s *Session) launchCutThrough(opts Options) error {
	sim := s.p.Sim()
	relay := newSeedRelay(s, beFabric, opts.FEData,
		engine.MarkE7, engine.MarkSeedFwd, engine.MarkE10)
	sim.Go(fmt.Sprintf("fe-sess-%d-seed-relay", s.ID), relay.run)

	// fail abandons the relay on an engine-side error. Closing the item
	// queue only reaches a relay still forwarding; one that has relayed
	// the end marker is parked awaiting the master's ready and would
	// otherwise hand back an open connection nobody reads — leaving the
	// master (and with it the whole daemon tree) waiting on the session
	// forever. A reaper drains the result and closes that connection; a
	// relay still parked in Accept is released by the caller's s.close().
	fail := func(err error) error {
		relay.abort()
		sim.Go(fmt.Sprintf("fe-sess-%d-relay-reaper", s.ID), func() {
			if res, ok := relay.result.Recv(); ok && res.conn != nil {
				res.conn.Close()
			}
		})
		return err
	}

	var asm proctab.Assembler
	var engTL engine.Timeline
	tabDone, statusDone := false, false
	for !tabDone || !statusDone {
		msg, err := s.eng.Recv()
		if err != nil {
			return fail(err)
		}
		switch msg.Type {
		case lmonp.TypeProctabChunk:
			if tabDone {
				return fail(fmt.Errorf("core: RPDTAB chunk after end marker"))
			}
			if err := asm.Add(msg.Payload); err != nil {
				return fail(err)
			}
			relay.items.Send(seedItem{chunk: msg.Payload})
		case lmonp.TypeProctabEnd:
			if tabDone {
				return fail(fmt.Errorf("core: duplicate RPDTAB end marker"))
			}
			total, digest, err := proctab.DecodeEndMarker(msg.Payload)
			if err != nil {
				return fail(fmt.Errorf("core: RPDTAB end marker: %w", err))
			}
			if digest != asm.Digest() {
				return fail(fmt.Errorf("core: RPDTAB stream digest mismatch at FE"))
			}
			tab, err := asm.Finish(int(total))
			if err != nil {
				return fail(err)
			}
			s.tab = tab
			s.obsGauge("fe.table.bytes").SetMax(uint64(tab.MemBytes()))
			if s.tableMode == TableSliced {
				// Publish the shared index before relaying the end marker:
				// every daemon's seed drain completes only after this marker
				// flows through the tree, so the index is visible by the
				// time any daemon (or the tool code above it) consults it.
				idx, err := proctab.BuildIndex(tab)
				if err != nil {
					return fail(fmt.Errorf("core: building shared RPDTAB index: %w", err))
				}
				sharedSegFor(s.ID).publishIndex(idx)
			}
			relay.items.Send(seedItem{end: true, total: total, sum: digest})
			tabDone = true
		case lmonp.TypeStatus:
			status, tl, err := engine.DecodeStatus(msg.Payload)
			if err != nil {
				return fail(err)
			}
			if status != "daemons-spawned" {
				return fail(fmt.Errorf("core: engine failed: %s", status))
			}
			engTL = tl
			statusDone = true
		default:
			return fail(fmt.Errorf("core: unexpected %v message during launch", msg.Type))
		}
	}
	s.Timeline.Merge(engTL)

	res, ok := relay.result.Recv()
	if !ok {
		return fmt.Errorf("core: session %d: seed relay lost", s.ID)
	}
	if res.err != nil {
		return res.err
	}
	s.beMaster = res.conn
	s.daemons = res.infos
	s.Timeline.Merge(res.tl)
	s.stashObsHarvest("BE", res.obsBlob)
	return nil
}

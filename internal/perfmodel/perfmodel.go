// Package perfmodel implements the paper's §4 analytic model of
// launchAndSpawn: the decomposition of the service's critical path
// (Figure 2's events e0..e11) into the Region A/B/C components, empirical
// fitting of the T(op) cost functions from small-scale measurements, and
// prediction at larger scales — the machinery behind Figure 3's
// modeled-vs-measured comparison.
package perfmodel

import (
	"fmt"
	"time"

	"launchmon/internal/engine"
)

// Breakdown is the per-component decomposition of one launchAndSpawn.
//
// Region A (RM dominant): Job, DaemonSpawn, Setup, Collective, plus
// LaunchMON's only contribution there, Tracing. Region B: Fetch (RPDTAB).
// Region C: Collective/handshake costs at the front end. Other collects
// the scale-independent local operations (T(e0,e2), T(e10,e11), engine
// start).
type Breakdown struct {
	Job         time.Duration // T(job): spawning the application tasks
	DaemonSpawn time.Duration // T(daemon): RM spawning the tool daemons
	Setup       time.Duration // T(setup): inter-daemon fabric setup (e8..e9)
	Collective  time.Duration // T(collective): handshake bcast/gather share
	Tracing     time.Duration // engine event-handler cost (Region A, LaunchMON)
	Fetch       time.Duration // Region B: RPDTAB fetch
	Other       time.Duration // all remaining scale-independent costs
	Total       time.Duration // e0 → e11
}

// Components returns the named components in presentation order (matching
// Figure 3's stacking).
func (b Breakdown) Components() []struct {
	Name string
	D    time.Duration
} {
	return []struct {
		Name string
		D    time.Duration
	}{
		{"T(job)", b.Job},
		{"T(daemon)+T(setup)", b.DaemonSpawn + b.Setup},
		{"T(collective)", b.Collective},
		{"tracing", b.Tracing},
		{"rpdtab-fetch", b.Fetch},
		{"other", b.Other},
	}
}

// LaunchMONShare returns the fraction of the total attributable to
// LaunchMON itself (tracing + fetch + collective handshake + other) — the
// paper reports ≈5.2% at 128 nodes.
func (b Breakdown) LaunchMONShare() float64 {
	if b.Total == 0 {
		return 0
	}
	lm := b.Tracing + b.Fetch + b.Other + b.Collective
	return float64(lm) / float64(b.Total)
}

// Decompose derives the component breakdown from a merged session
// timeline.
func Decompose(tl engine.Timeline) (Breakdown, error) {
	var b Breakdown
	need := []string{engine.MarkE0, engine.MarkE2, engine.MarkE3, engine.MarkE5,
		engine.MarkE6, engine.MarkE7, engine.MarkE10, engine.MarkE11}
	for _, m := range need {
		if _, ok := tl.Get(m); !ok {
			return b, fmt.Errorf("perfmodel: timeline missing mark %s", m)
		}
	}
	b.Total = tl.Between(engine.MarkE0, engine.MarkE11)
	b.Tracing, _ = tl.Get(engine.MarkTracing)
	b.Fetch, _ = tl.Get(engine.MarkFetch)
	b.Job = tl.Between(engine.MarkE2, engine.MarkE3) - b.Tracing
	if b.Job < 0 {
		b.Job = 0
	}
	b.DaemonSpawn = tl.Between(engine.MarkE5, engine.MarkE6)
	b.Setup = tl.Between(engine.MarkE8, engine.MarkE9)
	handshake := tl.Between(engine.MarkE7, engine.MarkE10)
	if handshake > b.Setup {
		b.Collective = handshake - b.Setup
	}
	accounted := b.Job + b.DaemonSpawn + b.Setup + b.Collective + b.Tracing + b.Fetch
	if b.Total > accounted {
		b.Other = b.Total - accounted
	}
	return b, nil
}

// CriticalPath lists the e0..e11 mark names in order — the Figure 2
// contract that tests assert against.
func CriticalPath() []string {
	return []string{
		engine.MarkE0, engine.MarkE1, engine.MarkE2, engine.MarkE3,
		engine.MarkE4, engine.MarkE5, engine.MarkE6, engine.MarkE7,
		engine.MarkE8, engine.MarkE9, engine.MarkE10, engine.MarkE11,
	}
}

// Point is one calibration measurement.
type Point struct {
	Nodes int // tool daemon count (one per node)
	Tasks int // application task count
	B     Breakdown
}

// Model holds fitted affine cost functions: T(job) and fetch are affine in
// the task count; T(daemon), T(setup) and T(collective) are affine in the
// node count; tracing and other are scale-independent constants (their
// mean).
type Model struct {
	JobA, JobB               float64 // T(job) ≈ JobA + JobB·tasks (seconds)
	FetchA, FetchB           float64
	DaemonA, DaemonB         float64 // per nodes
	SetupA, SetupB           float64
	CollectiveA, CollectiveB float64
	Tracing                  float64
	Other                    float64
}

// Fit builds a Model from small-scale calibration points (≥2 required).
func Fit(points []Point) (*Model, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("perfmodel: need at least 2 points, got %d", len(points))
	}
	var m Model
	tasks := make([]float64, len(points))
	nodes := make([]float64, len(points))
	for i, p := range points {
		tasks[i] = float64(p.Tasks)
		nodes[i] = float64(p.Nodes)
	}
	col := func(f func(Breakdown) time.Duration) []float64 {
		ys := make([]float64, len(points))
		for i, p := range points {
			ys[i] = f(p.B).Seconds()
		}
		return ys
	}
	m.JobA, m.JobB = linfit(tasks, col(func(b Breakdown) time.Duration { return b.Job }))
	m.FetchA, m.FetchB = linfit(tasks, col(func(b Breakdown) time.Duration { return b.Fetch }))
	m.DaemonA, m.DaemonB = linfit(nodes, col(func(b Breakdown) time.Duration { return b.DaemonSpawn }))
	m.SetupA, m.SetupB = linfit(nodes, col(func(b Breakdown) time.Duration { return b.Setup }))
	m.CollectiveA, m.CollectiveB = linfit(nodes, col(func(b Breakdown) time.Duration { return b.Collective }))
	m.Tracing = mean(col(func(b Breakdown) time.Duration { return b.Tracing }))
	m.Other = mean(col(func(b Breakdown) time.Duration { return b.Other }))
	return &m, nil
}

// Predict evaluates the model at a target scale.
func (m *Model) Predict(nodesN, tasksN int) Breakdown {
	t := float64(tasksN)
	n := float64(nodesN)
	sec := func(s float64) time.Duration {
		if s < 0 {
			s = 0
		}
		return time.Duration(s * float64(time.Second))
	}
	b := Breakdown{
		Job:         sec(m.JobA + m.JobB*t),
		Fetch:       sec(m.FetchA + m.FetchB*t),
		DaemonSpawn: sec(m.DaemonA + m.DaemonB*n),
		Setup:       sec(m.SetupA + m.SetupB*n),
		Collective:  sec(m.CollectiveA + m.CollectiveB*n),
		Tracing:     sec(m.Tracing),
		Other:       sec(m.Other),
	}
	b.Total = b.Job + b.Fetch + b.DaemonSpawn + b.Setup + b.Collective + b.Tracing + b.Other
	return b
}

// ErrorPct returns the relative error of the model total against a
// measured total, in percent.
func ErrorPct(model, measured Breakdown) float64 {
	if measured.Total == 0 {
		return 0
	}
	diff := model.Total.Seconds() - measured.Total.Seconds()
	if diff < 0 {
		diff = -diff
	}
	return 100 * diff / measured.Total.Seconds()
}

// linfit computes the least-squares affine fit y ≈ a + b·x.
func linfit(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

func mean(ys []float64) float64 {
	var s float64
	for _, y := range ys {
		s += y
	}
	return s / float64(len(ys))
}

package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"launchmon/internal/engine"
)

// synthTimeline builds a plausible launchAndSpawn timeline.
func synthTimeline() engine.Timeline {
	var tl engine.Timeline
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	tl.Mark(engine.MarkE0, 0)
	tl.Mark(engine.MarkE1, ms(5))
	tl.Mark(engine.MarkE2, ms(9))
	tl.Mark(engine.MarkE3, ms(209)) // includes 18ms tracing
	tl.Mark(engine.MarkE4, ms(214))
	tl.Mark(engine.MarkE5, ms(215))
	tl.Mark(engine.MarkE6, ms(315))
	tl.Mark(engine.MarkE7, ms(317))
	tl.Mark(engine.MarkE8, ms(318))
	tl.Mark(engine.MarkE9, ms(340))
	tl.Mark(engine.MarkE10, ms(352))
	tl.Mark(engine.MarkE11, ms(360))
	tl.Mark(engine.MarkTracing, ms(18))
	tl.Mark(engine.MarkFetch, ms(5))
	return tl
}

func TestDecompose(t *testing.T) {
	b, err := Decompose(synthTimeline())
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 360*time.Millisecond {
		t.Errorf("Total = %v", b.Total)
	}
	if b.Job != 182*time.Millisecond { // (209-9) - 18
		t.Errorf("Job = %v", b.Job)
	}
	if b.DaemonSpawn != 100*time.Millisecond {
		t.Errorf("DaemonSpawn = %v", b.DaemonSpawn)
	}
	if b.Setup != 22*time.Millisecond {
		t.Errorf("Setup = %v", b.Setup)
	}
	if b.Collective != 13*time.Millisecond { // (352-317) - 22
		t.Errorf("Collective = %v", b.Collective)
	}
	sum := b.Job + b.DaemonSpawn + b.Setup + b.Collective + b.Tracing + b.Fetch + b.Other
	if sum != b.Total {
		t.Errorf("components sum %v != total %v", sum, b.Total)
	}
}

func TestDecomposeMissingMark(t *testing.T) {
	var tl engine.Timeline
	tl.Mark(engine.MarkE0, 0)
	if _, err := Decompose(tl); err == nil {
		t.Fatal("incomplete timeline accepted")
	}
}

func TestLaunchMONShare(t *testing.T) {
	b := Breakdown{
		Job: 800 * time.Millisecond, Tracing: 18 * time.Millisecond,
		Fetch: 5 * time.Millisecond, Other: 12 * time.Millisecond,
		Collective: 15 * time.Millisecond, Total: 850 * time.Millisecond,
	}
	share := b.LaunchMONShare()
	want := 50.0 / 850.0
	if math.Abs(share-want) > 1e-9 {
		t.Fatalf("share = %f, want %f", share, want)
	}
	if (Breakdown{}).LaunchMONShare() != 0 {
		t.Fatal("zero breakdown share not 0")
	}
}

func TestFitAndPredictRecoverAffine(t *testing.T) {
	// Generate exact affine components, fit, and predict a larger scale.
	mk := func(nodes int) Point {
		tasks := nodes * 8
		b := Breakdown{
			Job:         time.Duration(10+2*tasks) * time.Millisecond,
			Fetch:       time.Duration(tasks/100) * time.Millisecond,
			DaemonSpawn: time.Duration(5+3*nodes) * time.Millisecond,
			Setup:       time.Duration(1+nodes) * time.Millisecond,
			Collective:  time.Duration(2+nodes/2) * time.Millisecond,
			Tracing:     18 * time.Millisecond,
			Other:       12 * time.Millisecond,
		}
		b.Total = b.Job + b.Fetch + b.DaemonSpawn + b.Setup + b.Collective + b.Tracing + b.Other
		return Point{Nodes: nodes, Tasks: tasks, B: b}
	}
	m, err := Fit([]Point{mk(16), mk(32), mk(48)})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(128, 1024)
	want := mk(128).B
	if ErrorPct(pred, want) > 1.0 {
		t.Fatalf("prediction off: got %v, want %v", pred.Total, want.Total)
	}
}

func TestFitRequiresTwoPoints(t *testing.T) {
	if _, err := Fit([]Point{{Nodes: 1, Tasks: 8}}); err == nil {
		t.Fatal("single-point fit accepted")
	}
}

func TestErrorPct(t *testing.T) {
	a := Breakdown{Total: 100 * time.Millisecond}
	b := Breakdown{Total: 110 * time.Millisecond}
	if e := ErrorPct(a, b); math.Abs(e-9.0909) > 0.01 {
		t.Fatalf("ErrorPct = %f", e)
	}
	if e := ErrorPct(a, Breakdown{}); e != 0 {
		t.Fatalf("zero measured ErrorPct = %f", e)
	}
}

func TestCriticalPathOrder(t *testing.T) {
	cp := CriticalPath()
	if len(cp) != 12 {
		t.Fatalf("critical path has %d events, want 12 (e0..e11)", len(cp))
	}
	if cp[0] != engine.MarkE0 || cp[11] != engine.MarkE11 {
		t.Fatalf("endpoints wrong: %v", cp)
	}
}

// Property: linfit recovers exact affine relations.
func TestPropertyLinfitExact(t *testing.T) {
	f := func(a8, b8 int8, xs []uint8) bool {
		if len(xs) < 2 {
			return true
		}
		// Need at least two distinct x values.
		distinct := false
		for _, x := range xs[1:] {
			if x != xs[0] {
				distinct = true
			}
		}
		if !distinct {
			return true
		}
		a, b := float64(a8), float64(b8)
		fx := make([]float64, len(xs))
		fy := make([]float64, len(xs))
		for i, x := range xs {
			fx[i] = float64(x)
			fy[i] = a + b*float64(x)
		}
		ga, gb := linfit(fx, fy)
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Predict never returns negative components.
func TestPropertyPredictNonNegative(t *testing.T) {
	f := func(coef [7]int8, nodes uint8) bool {
		m := Model{
			JobA: float64(coef[0]), JobB: float64(coef[1]) / 100,
			FetchA: float64(coef[2]) / 10, DaemonA: float64(coef[3]),
			SetupB: float64(coef[4]) / 100, CollectiveA: float64(coef[5]),
			Tracing: float64(coef[6]) / 10,
		}
		b := m.Predict(int(nodes), int(nodes)*8)
		for _, c := range b.Components() {
			if c.D < 0 {
				return false
			}
		}
		return b.Total >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

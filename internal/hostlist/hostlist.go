// Package hostlist provides SLURM-style compressed host-list notation
// ("node[0-1023]") plus a process-global expansion cache. Node lists are
// the one piece of bootstrap state whose naive encoding is quadratic at
// scale: a comma-joined list of a million hosts is ~7 MB, and it is
// embedded in every tree-launch request and every daemon's environment —
// O(K) copies of an O(K) string. Compressing runs of numerically
// consecutive names keeps the wire form O(runs), and interning the
// expansion means every daemon process on a simulated node shares one
// backing []string instead of materializing its own.
package hostlist

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Compress renders nodes in compact range notation. Runs of names that
// share a prefix and carry consecutive, non-zero-padded numeric suffixes
// collapse to "prefix[lo-hi]"; everything else passes through verbatim.
// Compress(Expand(s)) round-trips any list Expand accepts.
func Compress(nodes []string) string {
	var b strings.Builder
	i := 0
	for i < len(nodes) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		prefix, num, ok := splitNumeric(nodes[i])
		if !ok {
			b.WriteString(nodes[i])
			i++
			continue
		}
		j := i + 1
		next := num + 1
		for j < len(nodes) {
			p2, n2, ok2 := splitNumeric(nodes[j])
			if !ok2 || p2 != prefix || n2 != next {
				break
			}
			next++
			j++
		}
		if j-i >= 2 {
			fmt.Fprintf(&b, "%s[%d-%d]", prefix, num, next-1)
		} else {
			b.WriteString(nodes[i])
		}
		i = j
	}
	return b.String()
}

// splitNumeric splits "node123" into ("node", 123). Names without a
// numeric suffix, or with a zero-padded one (ambiguous to re-render), are
// not compressible.
func splitNumeric(name string) (prefix string, num int, ok bool) {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) || strings.ContainsAny(name, "[],-") {
		return "", 0, false
	}
	digits := name[i:]
	if len(digits) > 1 && digits[0] == '0' {
		return "", 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil {
		return "", 0, false
	}
	return name[:i], n, true
}

// expandCache interns expansions: one shared, immutable []string per
// distinct compact string. Every daemon of a session expands the same
// LMON_NODELIST value, so the cache turns K private O(K) slices into one
// — the simulated analogue of a node-local shared segment, and the
// difference between O(K) and O(K²) session memory at million scale.
var expandCache sync.Map // string -> []string

// Expand parses a compact host list into node names, resolving
// "prefix[lo-hi]" ranges. The returned slice is shared across callers and
// MUST NOT be modified. Malformed ranges pass through verbatim (they are
// then just unresolvable host names, surfaced by the dialer).
func Expand(s string) []string {
	if s == "" {
		return nil
	}
	if cached, ok := expandCache.Load(s); ok {
		return cached.([]string)
	}
	out := expand(s)
	actual, _ := expandCache.LoadOrStore(s, out)
	return actual.([]string)
}

func expand(s string) []string {
	var out []string
	for len(s) > 0 {
		// One item ends at the first comma outside brackets.
		end, depth := len(s), 0
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '[':
				depth++
			case ']':
				depth--
			case ',':
				if depth == 0 {
					end = i
					goto found
				}
			}
		}
	found:
		item := s[:end]
		if end < len(s) {
			s = s[end+1:]
		} else {
			s = ""
		}
		out = appendItem(out, item)
	}
	return out
}

func appendItem(out []string, item string) []string {
	open := strings.IndexByte(item, '[')
	if open < 0 || !strings.HasSuffix(item, "]") {
		return append(out, item)
	}
	prefix, rng := item[:open], item[open+1:len(item)-1]
	dash := strings.IndexByte(rng, '-')
	if dash < 0 {
		return append(out, item)
	}
	lo, err1 := strconv.Atoi(rng[:dash])
	hi, err2 := strconv.Atoi(rng[dash+1:])
	if err1 != nil || err2 != nil || hi < lo {
		return append(out, item)
	}
	for n := lo; n <= hi; n++ {
		out = append(out, prefix+strconv.Itoa(n))
	}
	return out
}

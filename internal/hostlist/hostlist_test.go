package hostlist

import (
	"fmt"
	"reflect"
	"testing"
)

func TestCompressExpandRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{"fe0"},
		{"node0"},
		{"node0", "node1", "node2", "node3"},
		{"node5", "node7", "node8", "node9", "alpha"},
		{"node0", "node1", "fe0", "node3", "node4", "node5"},
		{"a1", "a2", "b1", "b2"},
		{"zero-pad01", "zero-pad02"}, // not compressible, must pass through
	}
	for _, nodes := range cases {
		s := Compress(nodes)
		got := Expand(s)
		if len(nodes) == 0 {
			if len(got) != 0 {
				t.Errorf("Expand(Compress(%v)) = %v", nodes, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, nodes) {
			t.Errorf("Expand(Compress(%v)) = %v (compact %q)", nodes, got, s)
		}
	}
}

func TestCompressLargeRunIsCompact(t *testing.T) {
	nodes := make([]string, 100000)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d", i)
	}
	s := Compress(nodes)
	if s != "node[0-99999]" {
		t.Fatalf("Compress = %q, want node[0-99999]", s)
	}
	got := Expand(s)
	if len(got) != len(nodes) || got[0] != "node0" || got[99999] != "node99999" {
		t.Fatalf("Expand round-trip broken: len %d, first %q, last %q", len(got), got[0], got[len(got)-1])
	}
}

func TestExpandInterned(t *testing.T) {
	a := Expand("node[0-63]")
	b := Expand("node[0-63]")
	if len(a) != 64 || len(b) != 64 {
		t.Fatalf("bad expansion lengths %d/%d", len(a), len(b))
	}
	if &a[0] != &b[0] {
		t.Fatal("Expand did not intern: same input returned distinct backing arrays")
	}
}

func TestExpandPlainList(t *testing.T) {
	got := Expand("node3,node4,other")
	want := []string{"node3", "node4", "other"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Expand = %v, want %v", got, want)
	}
}

package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{Session: 0, Role: RoleEngine},
		{Session: 7, Role: RoleBE},
		{Session: 1 << 20, Role: RoleMW},
	} {
		buf, err := EncodeHello(h)
		if err != nil {
			t.Fatalf("encode %+v: %v", h, err)
		}
		got, err := ReadHello(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("decode %+v: %v", h, err)
		}
		if got != h {
			t.Errorf("roundtrip %+v -> %+v", h, got)
		}
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	if _, err := EncodeHello(Hello{Session: 1, Role: 9}); err == nil {
		t.Error("invalid role encoded")
	}
	if _, err := EncodeHello(Hello{Session: -1, Role: RoleBE}); err == nil {
		t.Error("negative session encoded")
	}
	good, _ := EncodeHello(Hello{Session: 1, Role: RoleBE})
	cases := map[string][]byte{
		"short":       good[:6],
		"bad magic":   append([]byte{0, 0, 0, 0}, good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"bad role":    append(append([]byte{}, good[:5]...), append([]byte{0}, good[6:]...)...),
	}
	for name, buf := range cases {
		if _, err := ReadHello(bytes.NewReader(buf)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// muxRig builds a two-host network with a mux listening on "fe".
func muxRig(t *testing.T) (*vtime.Sim, *simnet.Network, *Mux) {
	t.Helper()
	sim := vtime.New()
	net := simnet.New(sim, simnet.Options{})
	mux, err := ListenMux(sim, net.Host("fe"))
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, mux
}

func TestMuxRoutesBySessionAndRole(t *testing.T) {
	sim, net, mux := muxRig(t)
	ep1, err := mux.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := mux.Open(2)
	if err != nil {
		t.Fatal(err)
	}

	type got struct {
		session int
		role    Role
		payload string
	}
	results := make(chan got, 8)
	accept := func(ep *Endpoint, role Role) {
		sim.Go("accept", func() {
			c, err := ep.Accept(role, 10*time.Second)
			if err != nil {
				t.Errorf("accept session %d role %v: %v", ep.Session(), role, err)
				return
			}
			msg, err := c.Recv()
			if err != nil {
				t.Errorf("recv session %d role %v: %v", ep.Session(), role, err)
				return
			}
			results <- got{ep.Session(), role, string(msg.Payload)}
		})
	}
	accept(ep1, RoleEngine)
	accept(ep1, RoleBE)
	accept(ep2, RoleBE)

	dial := func(session int, role Role, payload string) {
		sim.Go("dial", func() {
			c, err := Dial(net.Host("node0"), mux.Addr(), session, role)
			if err != nil {
				t.Errorf("dial session %d role %v: %v", session, role, err)
				return
			}
			if err := c.Send(&lmonp.Msg{Class: lmonp.ClassFEBE, Type: lmonp.TypeUsrData, Payload: []byte(payload)}); err != nil {
				t.Error(err)
			}
		})
	}
	// Dial out of session order to prove arrival order no longer matters.
	dial(2, RoleBE, "s2-be")
	dial(1, RoleBE, "s1-be")
	dial(1, RoleEngine, "s1-eng")

	sim.Run()
	close(results)
	want := map[got]bool{
		{1, RoleEngine, "s1-eng"}: true,
		{1, RoleBE, "s1-be"}:      true,
		{2, RoleBE, "s2-be"}:      true,
	}
	n := 0
	for g := range results {
		if !want[g] {
			t.Errorf("unexpected routing result %+v", g)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("%d connections routed, want 3", n)
	}
}

func TestMuxUnknownSessionGetsEOF(t *testing.T) {
	sim, net, mux := muxRig(t)
	if _, err := mux.Open(1); err != nil {
		t.Fatal(err)
	}
	var readErr error
	sim.Go("dial", func() {
		raw, err := net.Host("node0").Dial(mux.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		if err := WriteHello(raw, Hello{Session: 99, Role: RoleBE}); err != nil {
			t.Error(err)
			return
		}
		var b [1]byte
		_, readErr = raw.Read(b[:])
	})
	sim.Run()
	if readErr != io.EOF {
		t.Fatalf("read on rejected connection = %v, want EOF", readErr)
	}
}

func TestMuxAcceptTimeout(t *testing.T) {
	sim, _, mux := muxRig(t)
	ep, err := mux.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	var acceptErr error
	var elapsed time.Duration
	sim.Go("accept", func() {
		start := sim.Now()
		_, acceptErr = ep.Accept(RoleBE, 3*time.Second)
		elapsed = sim.Now() - start
	})
	sim.Run()
	if !errors.Is(acceptErr, ErrAcceptTimeout) {
		t.Fatalf("accept error = %v, want ErrAcceptTimeout", acceptErr)
	}
	if elapsed != 3*time.Second {
		t.Fatalf("timed out after %v of virtual time, want 3s", elapsed)
	}
}

func TestMuxDuplicateSessionRejected(t *testing.T) {
	_, _, mux := muxRig(t)
	if _, err := mux.Open(5); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.Open(5); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate open = %v", err)
	}
	if mux.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1", mux.Sessions())
	}
}

func TestEndpointDrainShedsStaleDials(t *testing.T) {
	sim, net, mux := muxRig(t)
	ep, err := mux.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	sim.Go("scenario", func() {
		// A late dial from a timed-out previous attempt...
		stale, err := net.Host("node0").Dial(mux.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		if err := WriteHello(stale, Hello{Session: 1, Role: RoleMW}); err != nil {
			t.Error(err)
			return
		}
		sim.Sleep(time.Second) // routed into the RoleMW queue
		if n := ep.Drain(RoleMW); n != 1 {
			t.Errorf("drained %d connections, want 1", n)
		}
		var b [1]byte
		if _, err := stale.Read(b[:]); err != io.EOF {
			t.Errorf("stale dialer read = %v, want EOF", err)
		}
		// The retry's fresh dial is the one Accept returns.
		fresh, err := Dial(net.Host("node1"), mux.Addr(), 1, RoleMW)
		if err != nil {
			t.Error(err)
			return
		}
		if err := fresh.Send(&lmonp.Msg{Class: lmonp.ClassFEMW, Type: lmonp.TypeUsrData, Payload: []byte("fresh")}); err != nil {
			t.Error(err)
			return
		}
		c, err := ep.Accept(RoleMW, 10*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		msg, err := c.Recv()
		if err != nil || string(msg.Payload) != "fresh" {
			t.Errorf("accepted connection carries %q, %v; want fresh dial", msg.Payload, err)
		}
	})
	sim.Run()
}

func TestEndpointCloseDeregistersAndDrains(t *testing.T) {
	sim, net, mux := muxRig(t)
	ep, err := mux.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	var readErr error
	sim.Go("scenario", func() {
		// Queue a connection that the session never accepts ...
		raw, err := net.Host("node0").Dial(mux.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		if err := WriteHello(raw, Hello{Session: 1, Role: RoleBE}); err != nil {
			t.Error(err)
			return
		}
		sim.Sleep(time.Second) // let the mux route it
		ep.Close()
		// ... closing the endpoint must close the queued connection.
		var b [1]byte
		_, readErr = raw.Read(b[:])
		// And the ID becomes reusable.
		if _, err := mux.Open(1); err != nil {
			t.Errorf("reopen after close: %v", err)
		}
		if _, err := ep.Accept(RoleBE, time.Second); !errors.Is(err, ErrEndpointClosed) {
			t.Errorf("accept on closed endpoint: %v", err)
		}
	})
	sim.Run()
	if readErr != io.EOF {
		t.Fatalf("read on drained connection = %v, want EOF", readErr)
	}
}

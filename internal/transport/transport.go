// Package transport is the connection-lifecycle layer underneath the
// LaunchMON FE/BE/MW APIs. One front-end process owns exactly one Mux — a
// single listener — and every peer that must reach the front end (the
// per-session engine, the master back-end daemon, the master middleware
// daemon) dials that one address and identifies itself with a small hello
// frame carrying its session ID and role. The Mux demultiplexes incoming
// connections onto per-session, per-role queues, so N concurrent tool
// sessions share one listener without their LMONP streams ever crossing.
//
// This replaces the seed's per-session listener plus strictly ordered
// AcceptTimeout choreography: sessions no longer depend on connection
// arrival order, and a dial belonging to session A can never be handed to
// session B.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
)

// Role identifies which LaunchMON component representative is dialing the
// front end.
type Role uint8

// The three dialing roles, mirroring the three LMONP connection classes.
const (
	RoleEngine Role = 1 // the session's LaunchMON engine
	RoleBE     Role = 2 // the master back-end daemon
	RoleMW     Role = 3 // the master middleware daemon
)

// String names the role for diagnostics.
func (r Role) String() string {
	switch r {
	case RoleEngine:
		return "engine"
	case RoleBE:
		return "be-master"
	case RoleMW:
		return "mw-master"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

func (r Role) valid() bool { return r >= RoleEngine && r <= RoleMW }

// Hello is the connection preamble every dialer sends immediately after
// connecting to the front-end mux.
type Hello struct {
	Session int
	Role    Role
}

// Hello frame layout (big endian, one Write call / one simulated message):
//
//	bytes 0-3  : magic "LMTX"
//	byte  4    : hello version
//	byte  5    : role
//	bytes 6-7  : reserved (zero)
//	bytes 8-11 : session id
const (
	helloMagic   = 0x4c4d5458 // "LMTX"
	helloVersion = 1
	helloSize    = 12
)

// Errors returned by the hello codec and the mux.
var (
	ErrBadHello       = errors.New("transport: bad hello frame")
	ErrMuxClosed      = errors.New("transport: mux closed")
	ErrSessionExists  = errors.New("transport: session already registered")
	ErrEndpointClosed = errors.New("transport: endpoint closed")
	ErrAcceptTimeout  = errors.New("transport: accept timeout")
)

// EncodeHello renders the hello frame.
func EncodeHello(h Hello) ([]byte, error) {
	if !h.Role.valid() {
		return nil, fmt.Errorf("%w: invalid role %d", ErrBadHello, h.Role)
	}
	if h.Session < 0 || int64(h.Session) > int64(^uint32(0)) {
		return nil, fmt.Errorf("%w: session %d out of range", ErrBadHello, h.Session)
	}
	buf := make([]byte, helloSize)
	binary.BigEndian.PutUint32(buf[0:4], helloMagic)
	buf[4] = helloVersion
	buf[5] = byte(h.Role)
	binary.BigEndian.PutUint32(buf[8:12], uint32(h.Session))
	return buf, nil
}

// WriteHello writes the hello frame as a single Write call (one simulated
// network message).
func WriteHello(w io.Writer, h Hello) error {
	buf, err := EncodeHello(h)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadHello reads one hello frame.
func ReadHello(r io.Reader) (Hello, error) {
	var buf [helloSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Hello{}, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	if binary.BigEndian.Uint32(buf[0:4]) != helloMagic {
		return Hello{}, fmt.Errorf("%w: bad magic", ErrBadHello)
	}
	if buf[4] != helloVersion {
		return Hello{}, fmt.Errorf("%w: version %d, want %d", ErrBadHello, buf[4], helloVersion)
	}
	h := Hello{Session: int(binary.BigEndian.Uint32(buf[8:12])), Role: Role(buf[5])}
	if !h.Role.valid() {
		return Hello{}, fmt.Errorf("%w: invalid role %d", ErrBadHello, buf[5])
	}
	return h, nil
}

// Dial connects from host to the front-end mux at addr, announces the
// session/role hello, and returns the connection framed for LMONP.
func Dial(host *simnet.Host, addr simnet.Addr, session int, role Role) (*lmonp.Conn, error) {
	raw, err := host.Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := WriteHello(raw, Hello{Session: session, Role: role}); err != nil {
		raw.Close()
		return nil, err
	}
	return lmonp.NewConn(raw), nil
}

package transport

import (
	"fmt"
	"sync"
	"time"

	"launchmon/internal/lmonp"
	"launchmon/internal/obs"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Mux is the front-end connection multiplexer: one listener shared by
// every session of one front-end process. An accept loop reads the hello
// frame off each incoming connection and routes it to the owning session's
// endpoint; sessions wait on their own per-role queues, never on the raw
// listener, so concurrent sessions cannot steal each other's connections.
type Mux struct {
	sim *vtime.Sim
	l   *simnet.Listener

	mu       sync.Mutex
	sessions map[int]*Endpoint
	closed   bool
	metrics  *obs.Registry // nil = observability off
}

// SetMetrics attaches an observability registry: the accept path then
// counts admitted and rejected hellos (mux.accept / mux.reject). Safe to
// call concurrently with the accept loop; a nil registry detaches.
func (m *Mux) SetMetrics(reg *obs.Registry) {
	m.mu.Lock()
	m.metrics = reg
	m.mu.Unlock()
}

// metric returns the named counter under the registry lock (nil-safe).
func (m *Mux) metric(name string) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.metrics.Counter(name)
}

// ListenMux opens the process-wide mux on an ephemeral port of host and
// starts its accept loop.
func ListenMux(sim *vtime.Sim, host *simnet.Host) (*Mux, error) {
	l, err := host.Listen(0)
	if err != nil {
		return nil, err
	}
	m := &Mux{sim: sim, l: l, sessions: make(map[int]*Endpoint)}
	sim.Go("transport-mux", m.serve)
	return m, nil
}

// Addr returns the mux's listening address — the single address every
// engine and master daemon of this front end dials.
func (m *Mux) Addr() simnet.Addr { return m.l.Addr() }

// serve accepts connections forever, handing each to its own greeter
// goroutine so a peer that is slow to send its hello cannot head-of-line
// block other sessions' dials.
func (m *Mux) serve() {
	for {
		conn, err := m.l.Accept()
		if err != nil {
			return
		}
		m.sim.Go("transport-mux-hello", func() { m.admit(conn) })
	}
}

// admit reads the hello frame and routes the connection to its session's
// endpoint. Connections for unknown sessions or malformed hellos are
// closed (the dialer observes EOF).
func (m *Mux) admit(conn *simnet.Conn) {
	h, err := ReadHello(conn)
	if err != nil {
		m.metric("mux.reject").Inc()
		conn.Close()
		return
	}
	m.mu.Lock()
	ep := m.sessions[h.Session]
	if ep == nil || ep.closed {
		m.metrics.Counter("mux.reject").Inc()
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.metrics.Counter("mux.accept").Inc()
	// Enqueue while still holding the registry lock so a concurrent
	// Endpoint.Close cannot slip between the lookup and the send (Close
	// drains the queues after deregistering, so the connection is either
	// delivered or closed, never dropped).
	ep.queues[h.Role].Send(conn)
	m.mu.Unlock()
}

// Open registers a session and returns its endpoint. Session IDs must be
// unique within the mux.
func (m *Mux) Open(session int) (*Endpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrMuxClosed
	}
	if m.sessions[session] != nil {
		return nil, fmt.Errorf("%w: id %d", ErrSessionExists, session)
	}
	ep := &Endpoint{mux: m, session: session}
	for _, r := range []Role{RoleEngine, RoleBE, RoleMW} {
		ep.queues[r] = vtime.NewChan[*simnet.Conn](m.sim)
	}
	m.sessions[session] = ep
	return ep, nil
}

// Sessions returns the number of currently registered sessions.
func (m *Mux) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Close stops the accept loop and tears down every endpoint.
func (m *Mux) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	eps := make([]*Endpoint, 0, len(m.sessions))
	for _, ep := range m.sessions {
		eps = append(eps, ep)
	}
	m.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	m.l.Close()
}

// Endpoint is one session's demultiplexed view of the mux: a queue of
// accepted connections per dialing role.
type Endpoint struct {
	mux     *Mux
	session int
	queues  [4]*vtime.Chan[*simnet.Conn] // indexed by Role; slot 0 unused
	closed  bool                         // guarded by mux.mu
}

// Session returns the endpoint's session ID.
func (e *Endpoint) Session() int { return e.session }

// Accept blocks in virtual time until a connection for the given role
// arrives, the timeout elapses, or the endpoint closes. The returned
// connection is framed for LMONP.
func (e *Endpoint) Accept(role Role, timeout time.Duration) (*lmonp.Conn, error) {
	if !role.valid() {
		return nil, fmt.Errorf("transport: accept: invalid role %d", role)
	}
	conn, ok, timedOut := e.queues[role].RecvTimeout(timeout)
	if timedOut {
		return nil, fmt.Errorf("%w: no %v connection for session %d within %v",
			ErrAcceptTimeout, role, e.session, timeout)
	}
	if !ok {
		return nil, ErrEndpointClosed
	}
	return lmonp.NewConn(conn), nil
}

// Drain closes and discards any queued, not-yet-accepted connections for
// the given role, returning how many were dropped. Callers retrying a
// daemon launch use it to shed a late dial left over from a timed-out
// previous attempt, so the retry cannot bind to the stale connection.
func (e *Endpoint) Drain(role Role) int {
	if !role.valid() {
		return 0
	}
	n := 0
	for {
		conn, ok := e.queues[role].TryRecv()
		if !ok {
			return n
		}
		conn.Close()
		n++
	}
}

// Close deregisters the session from the mux and closes its queues; any
// queued, never-accepted connections are closed so their dialers observe
// EOF instead of hanging.
func (e *Endpoint) Close() {
	m := e.mux
	m.mu.Lock()
	if e.closed {
		m.mu.Unlock()
		return
	}
	e.closed = true
	delete(m.sessions, e.session)
	m.mu.Unlock()
	for _, r := range []Role{RoleEngine, RoleBE, RoleMW} {
		q := e.queues[r]
		for {
			conn, ok := q.TryRecv()
			if !ok {
				break
			}
			conn.Close()
		}
		q.Close()
	}
}

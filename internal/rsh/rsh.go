// Package rsh implements the ad hoc remote-shell daemon launching that
// tools used before LaunchMON (paper §2): a front end sequentially forks
// one rsh/ssh client per target node; each client authenticates against
// the remote node's shell daemon and asks it to exec the tool daemon.
//
// This is the baseline of the STAT start-up experiment (Figure 6). Its two
// scalability pathologies are modeled mechanistically:
//
//   - the launch is sequential and each remote shell costs a connection
//     plus authentication plus remote fork, so total time is linear in the
//     node count (≈0.24 s/node on the paper's Atlas measurements); and
//   - every rsh client remains resident on the front-end node as the
//     daemon's control channel, so the front end's process table fills and
//     fork eventually fails (the paper observed consistent failures at 512
//     nodes).
package rsh

import (
	"errors"
	"fmt"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Port of the per-node remote shell daemon (sshd-like).
const Port = 22

// Config models the cost of one remote shell invocation.
type Config struct {
	// ClientForkCost is the front-end fork+exec of the rsh client binary
	// (default 6ms; rsh clients are fat).
	ClientForkCost time.Duration
	// AuthCost is connection setup + authentication + shell startup on the
	// remote side (default 225ms, matching the paper's ≈0.24 s/node ad hoc
	// launch slope).
	AuthCost time.Duration
	// RemoteForkCost is the remote daemon exec (default 4ms).
	RemoteForkCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.ClientForkCost == 0 {
		c.ClientForkCost = 6 * time.Millisecond
	}
	if c.AuthCost == 0 {
		c.AuthCost = 225 * time.Millisecond
	}
	if c.RemoteForkCost == 0 {
		c.RemoteForkCost = 4 * time.Millisecond
	}
	return c
}

// Service is an installed remote-shell infrastructure.
type Service struct {
	cl  *cluster.Cluster
	cfg Config
}

// Install boots an sshd-like daemon on every compute node.
func Install(cl *cluster.Cluster, cfg Config) (*Service, error) {
	s := &Service{cl: cl, cfg: cfg.withDefaults()}
	for i := 0; i < cl.NumNodes(); i++ {
		node := cl.Node(i)
		if _, err := node.SpawnSystemProc(cluster.Spec{Exe: "sshd", Main: s.sshdMain(node)}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// sshdMain accepts rsh sessions and execs requested commands locally.
func (s *Service) sshdMain(node *cluster.Node) cluster.ProcMain {
	return func(p *cluster.Proc) {
		l, err := p.Host().Listen(Port)
		if err != nil {
			return
		}
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			p.Sim().Go("sshd-session", func() {
				defer conn.Close()
				req, err := lmonp.ReadFrame(conn)
				if err != nil {
					return
				}
				// Authentication and shell startup happen on the remote
				// side of the connection.
				p.Compute(s.cfg.AuthCost)
				rd := lmonp.NewReader(req)
				exe, _ := rd.String()
				args, _ := rd.StringList()
				kv, err := rd.StringMap()
				if err != nil {
					lmonp.WriteFrame(conn, lmonp.AppendString(nil, "bad request"))
					return
				}
				env := make(map[string]string, len(kv))
				for _, e := range kv {
					env[e[0]] = e[1]
				}
				p.Compute(s.cfg.RemoteForkCost)
				proc, err := node.SpawnProc(cluster.Spec{Exe: exe, Args: args, Env: env})
				if err != nil {
					lmonp.WriteFrame(conn, lmonp.AppendString(nil, err.Error()))
					return
				}
				out := lmonp.AppendString(nil, "")
				out = lmonp.AppendUint32(out, uint32(proc.Pid()))
				lmonp.WriteFrame(conn, out)
				// The rsh session lingers as the daemon's stdio/control
				// channel until the daemon exits.
				proc.Wait()
			})
		}
	}
}

// ErrSpawn wraps remote daemon spawn failures.
var ErrSpawn = errors.New("rsh: remote spawn failed")

// Spawn launches one daemon on each target node sequentially from the
// calling front-end process, the way pre-LaunchMON MRNet/STAT did. Each
// launch forks a resident rsh client on the caller's node; the spawn fails
// when the front-end process table fills. env[i] extends the daemon
// environment per node.
func (s *Service) Spawn(p *cluster.Proc, nodes []string, exe string, args []string, env []map[string]string) error {
	for i, node := range nodes {
		if err := s.spawnOne(p, node, exe, args, env[i]); err != nil {
			return fmt.Errorf("%w: node %s (%d of %d): %v", ErrSpawn, node, i+1, len(nodes), err)
		}
	}
	return nil
}

// spawnOne runs one rsh client: fork locally, connect, authenticate,
// remote-exec, then leave the client resident as the control channel.
func (s *Service) spawnOne(p *cluster.Proc, node, exe string, args []string, env map[string]string) error {
	// Fork the rsh client on the front end; it stays alive as the control
	// channel, so the process stays in the table until the daemon dies.
	done := vtime.NewChan[error](p.Sim())
	_, err := p.Spawn(cluster.Spec{Exe: "rsh", Main: func(client *cluster.Proc) {
		client.Compute(s.cfg.ClientForkCost)
		conn, err := client.Host().Dial(simnet.Addr{Host: node, Port: Port})
		if err != nil {
			done.Send(err)
			return
		}
		defer conn.Close()
		req := lmonp.AppendString(nil, exe)
		req = lmonp.AppendStringList(req, args)
		kv := make([][2]string, 0, len(env))
		for k, v := range env {
			kv = append(kv, [2]string{k, v})
		}
		req = lmonp.AppendStringMap(req, kv)
		if err := lmonp.WriteFrame(conn, req); err != nil {
			done.Send(err)
			return
		}
		resp, err := lmonp.ReadFrame(conn)
		if err != nil {
			done.Send(err)
			return
		}
		rd := lmonp.NewReader(resp)
		emsg, err := rd.String()
		if err != nil {
			done.Send(err)
			return
		}
		if emsg != "" {
			done.Send(errors.New(emsg))
			return
		}
		done.Send(nil)
		// Linger as the daemon's control channel: block until the remote
		// side closes (daemon exit), then terminate.
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}})
	if err != nil {
		return err // fork on the front end failed (process table full)
	}
	res, ok := done.Recv()
	if !ok {
		return errors.New("rsh: client torn down")
	}
	return res
}

package rsh

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/vtime"
)

func rig(t *testing.T, nodes int, clOpts cluster.Options, cfg Config) (*vtime.Sim, *cluster.Cluster, *Service) {
	t.Helper()
	sim := vtime.New()
	clOpts.Nodes = nodes
	cl, err := cluster.New(sim, clOpts)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Install(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, cl, svc
}

func TestSpawnPlacesDaemonsWithEnv(t *testing.T) {
	sim, cl, svc := rig(t, 4, cluster.Options{}, Config{})
	var hosts []string
	var ids []string
	cl.Register("mydaemon", func(p *cluster.Proc) {
		hosts = append(hosts, p.Node().Name())
		ids = append(ids, p.Env("ID"))
	})
	sim.Go("fe", func() {
		p, err := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "tool", Main: func(p *cluster.Proc) {
			nodes := []string{"node0", "node1", "node2", "node3"}
			envs := make([]map[string]string, len(nodes))
			for i := range envs {
				envs[i] = map[string]string{"ID": strconv.Itoa(i)}
			}
			if err := svc.Spawn(p, nodes, "mydaemon", nil, envs); err != nil {
				t.Error(err)
			}
		}})
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait()
	})
	sim.Run()
	if len(hosts) != 4 {
		t.Fatalf("daemons on %d nodes", len(hosts))
	}
	for i, h := range hosts {
		if h != "node"+ids[i] {
			t.Errorf("daemon with ID %s on %s", ids[i], h)
		}
	}
}

func TestSequentialLinearCost(t *testing.T) {
	timeFor := func(n int) time.Duration {
		sim, cl, svc := rig(t, n, cluster.Options{}, Config{})
		cl.Register("d", func(p *cluster.Proc) { vtime.NewChan[int](p.Sim()).Recv() })
		var dur time.Duration
		sim.Go("fe", func() {
			cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "tool", Main: func(p *cluster.Proc) {
				nodes := make([]string, n)
				envs := make([]map[string]string, n)
				for i := range nodes {
					nodes[i] = cl.Node(i).Name()
				}
				start := p.Sim().Now()
				if err := svc.Spawn(p, nodes, "d", nil, envs); err != nil {
					t.Error(err)
					return
				}
				dur = p.Sim().Now() - start
			}})
		})
		sim.Run()
		return dur
	}
	t4 := timeFor(4)
	t16 := timeFor(16)
	if t4 == 0 || t16 == 0 {
		t.Fatal("spawn did not complete")
	}
	ratio := float64(t16) / float64(t4)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("rsh spawn not linear: t4=%v t16=%v ratio=%.2f", t4, t16, ratio)
	}
	// Per-node cost should be in the paper's ballpark (~0.24 s/node).
	perNode := t16 / 16
	if perNode < 150*time.Millisecond || perNode > 350*time.Millisecond {
		t.Fatalf("per-node rsh cost %v outside calibrated range", perNode)
	}
}

func TestFrontEndProcessLimitFailure(t *testing.T) {
	// With a front-end process table capped at 40, a 64-node rsh launch
	// must fail partway: the resident rsh clients exhaust the table (the
	// paper's consistent failure at 512 nodes, scaled down).
	sim, cl, svc := rig(t, 64, cluster.Options{MaxProcs: 40}, Config{AuthCost: time.Millisecond})
	cl.Register("d", func(p *cluster.Proc) { vtime.NewChan[int](p.Sim()).Recv() })
	var spawnErr error
	sim.Go("fe", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "tool", Main: func(p *cluster.Proc) {
			nodes := make([]string, 64)
			envs := make([]map[string]string, 64)
			for i := range nodes {
				nodes[i] = cl.Node(i).Name()
			}
			spawnErr = svc.Spawn(p, nodes, "d", nil, envs)
		}})
	})
	sim.Run()
	if spawnErr == nil {
		t.Fatal("64-node rsh launch with a 40-proc front end succeeded")
	}
	if !errors.Is(spawnErr, ErrSpawn) {
		t.Fatalf("error = %v, want ErrSpawn wrap", spawnErr)
	}
	if !errors.Is(spawnErr, cluster.ErrProcLimit) && !strings.Contains(spawnErr.Error(), "resource temporarily unavailable") {
		t.Fatalf("failure not a fork limit: %v", spawnErr)
	}
}

func TestClientsLingerUntilDaemonExit(t *testing.T) {
	sim, cl, svc := rig(t, 2, cluster.Options{}, Config{AuthCost: time.Millisecond})
	var daemons []*cluster.Proc
	cl.Register("d", func(p *cluster.Proc) {
		daemons = append(daemons, p)
		vtime.NewChan[int](p.Sim()).Recv() // lingers until killed
	})
	var midCount, endCount int
	sim.Go("fe", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "tool", Main: func(p *cluster.Proc) {
			nodes := []string{"node0", "node1"}
			envs := make([]map[string]string, 2)
			if err := svc.Spawn(p, nodes, "d", nil, envs); err != nil {
				t.Error(err)
				return
			}
			// tool + 2 resident rsh clients.
			midCount = cl.FrontEnd().NumProcs()
			for _, d := range daemons {
				d.Kill()
			}
			p.Sim().Sleep(time.Second) // EOF propagates, clients exit
			endCount = cl.FrontEnd().NumProcs()
		}})
	})
	sim.Run()
	if midCount != 3 {
		t.Fatalf("front end has %d procs during session, want 3 (tool + 2 rsh)", midCount)
	}
	if endCount != 1 {
		t.Fatalf("front end has %d procs after daemon exit, want 1", endCount)
	}
}

// Package engine implements the LaunchMON Engine (paper §3.1): the
// component that interacts with the resource manager on behalf of the
// tool. It runs as its own process on the front-end node (co-located with
// the RM launcher it traces), attaches debugger-style to the launcher,
// harvests the RPDTAB at MPIR_Breakpoint, triggers scalable daemon
// launches through the RM's native services, and proxies control commands
// (detach, kill, middleware spawn) between the front end and the RM over
// LMONP.
//
// The engine is the only LaunchMON component with platform dependencies;
// they are confined to the rm.Manager it is constructed with (the
// "platform-specific adaptation" layer of Figure 1) and the EventDecoder
// parameterization.
package engine

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/health"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/transport"
)

// ExeName is the registered executable name of the engine binary.
const ExeName = "lmon_engine"

// EnvFEAddr tells a freshly spawned engine where its front end's
// transport mux listens.
const EnvFEAddr = "LMON_ENGINE_FE_ADDR"

// EnvSession tells a freshly spawned engine which session it serves; the
// engine announces it in the transport hello so the front-end mux routes
// the connection to the owning session.
const EnvSession = "LMON_ENGINE_SESSION"

// Config tunes engine behaviour.
type Config struct {
	// HandlerCost is the engine CPU time per dispatched trace event
	// (default 1.5ms: 12 SLURM events → the paper's 18 ms tracing cost).
	HandlerCost time.Duration
	// BaseCost models the engine's fixed startup bookkeeping (default 3ms).
	BaseCost time.Duration
	// ProctabChunkBytes bounds one RPDTAB chunk payload on the engine→FE
	// stream (default proctab.DefaultChunkBytes). Requests may override it
	// per session.
	ProctabChunkBytes int
}

func (c Config) withDefaults() Config {
	if c.HandlerCost == 0 {
		c.HandlerCost = 1500 * time.Microsecond
	}
	if c.BaseCost == 0 {
		c.BaseCost = 3 * time.Millisecond
	}
	if c.ProctabChunkBytes == 0 {
		c.ProctabChunkBytes = proctab.DefaultChunkBytes
	}
	return c
}

// Install registers the engine executable on the cluster, bound to the
// given resource manager. Tool front ends then spawn ExeName on the
// front-end node once per session.
func Install(cl *cluster.Cluster, mgr rm.Manager, cfg Config) {
	c := cfg.withDefaults()
	cl.Register(ExeName, func(p *cluster.Proc) {
		e := &Engine{proc: p, mgr: mgr, cfg: c}
		e.main()
	})
}

// Engine is one session's engine instance.
type Engine struct {
	proc *cluster.Proc
	mgr  rm.Manager
	cfg  Config

	session    int
	chunkBytes int // effective RPDTAB chunk size for this session

	fe  *lmonp.Conn
	job rm.Job
	tr  *cluster.Tracer
	tl  Timeline
}

func (e *Engine) main() {
	start := e.proc.Sim().Now()
	e.tl.Mark(MarkE1, start)
	e.proc.Compute(e.cfg.BaseCost)
	e.chunkBytes = e.cfg.ProctabChunkBytes

	addr, err := parseAddr(e.proc.Env(EnvFEAddr))
	if err != nil {
		return
	}
	e.session, err = strconv.Atoi(e.proc.Env(EnvSession))
	if err != nil {
		return
	}
	conn, err := transport.Dial(e.proc.Host(), addr, e.session, transport.RoleEngine)
	if err != nil {
		return
	}
	e.fe = conn
	defer e.fe.Close()
	// If this engine process is killed mid-protocol (fault injection), the
	// adopted conn severs and the front end observes ErrPeerDead instead of
	// waiting forever on a corpse.
	e.proc.AdoptConn(conn)

	req, err := e.fe.Recv()
	if err != nil {
		return
	}
	switch req.Type {
	case lmonp.TypeLaunchReq:
		err = e.serveLaunch(req)
	case lmonp.TypeAttachReq:
		err = e.serveAttach(req)
	default:
		err = fmt.Errorf("engine: unexpected first message %v", req.Type)
	}
	if err != nil {
		e.sendStatus("error: " + err.Error())
		return
	}
	// The session is up: watch the traced launcher for an asynchronous
	// exit (job death) while the command loop serves the front end.
	e.proc.Sim().Go("engine-job-watch", e.watchJob)
	e.commandLoop()
}

func (e *Engine) sendStatus(s string) {
	payload := lmonp.AppendString(nil, s)
	payload = lmonp.AppendBytes(payload, e.tl.Encode())
	e.fe.Send(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeStatus, Payload: payload})
}

// watchJob drains the tracer's event stream after launch. A launcher exit
// is forwarded to the front end as an asynchronous JobExited status event
// (the FE's watchdog reacts by tearing the session down). The stream
// closes when the engine detaches, ending the watch.
func (e *Engine) watchJob() {
	for {
		ev, ok := e.tr.Events().Recv()
		if !ok {
			return
		}
		if ev.Type == cluster.EventExit {
			e.fe.Send(&lmonp.Msg{
				Class: lmonp.ClassFEEngine,
				Type:  lmonp.TypeStatusEvent,
				Payload: health.EncodeEvent(health.Event{
					Kind: health.EvJobExited, Rank: -1, Code: ev.Code,
					Detail: "launcher exited",
				}),
			})
			return
		}
	}
}

// serveLaunch implements launchAndSpawn's engine half: events e1..e6.
func (e *Engine) serveLaunch(req *lmonp.Msg) error {
	lr, err := DecodeLaunchReq(req.Payload)
	if err != nil {
		return err
	}
	if lr.ChunkBytes > 0 {
		e.chunkBytes = lr.ChunkBytes
	}
	job, err := e.mgr.StartJobHeld(lr.Job)
	if err != nil {
		return err
	}
	e.job = job
	tr, err := job.LauncherProc().Attach()
	if err != nil {
		return err
	}
	e.tr = tr
	job.Start()
	e.tl.Mark(MarkE2, e.proc.Sim().Now())

	// Drive the launcher to MPIR_Breakpoint through the event pipeline.
	drv := NewDriver(e.proc, NewEventManager(tr), NewEventDecoder(rm.BPName), e.cfg.HandlerCost)
	drv.Handle(EvLauncherStop, func(Event) (bool, error) {
		return false, tr.Continue()
	})
	drv.Handle(EvBreakpoint, func(Event) (bool, error) { return true, nil })
	drv.Handle(EvLauncherExit, func(ev Event) (bool, error) {
		return true, fmt.Errorf("engine: launcher exited with code %d before MPIR_Breakpoint", ev.Code)
	})
	if _, err := drv.Run(); err != nil {
		return err
	}
	e.tl.Mark(MarkE3, e.proc.Sim().Now())
	e.tl.Mark(MarkTracing, drv.TracingCost)

	return e.harvestAndSpawn(lr.Daemon, tr)
}

// serveAttach implements attachAndSpawn's engine half for a running job.
func (e *Engine) serveAttach(req *lmonp.Msg) error {
	ar, err := DecodeAttachReq(req.Payload)
	if err != nil {
		return err
	}
	if ar.ChunkBytes > 0 {
		e.chunkBytes = ar.ChunkBytes
	}
	job, ok := e.mgr.FindJob(ar.JobID)
	if !ok {
		return fmt.Errorf("%w: id %d", rm.ErrNoSuchJob, ar.JobID)
	}
	e.job = job
	tr, err := job.LauncherProc().Attach()
	if err != nil {
		return err
	}
	e.tr = tr
	e.tl.Mark(MarkE2, e.proc.Sim().Now())

	// Interrupt the running launcher, consume the stop, and proceed as in
	// launch mode from the breakpoint-equivalent state.
	if err := tr.Interrupt(); err != nil {
		return err
	}
	drv := NewDriver(e.proc, NewEventManager(tr), NewEventDecoder(rm.BPName), e.cfg.HandlerCost)
	drv.Handle(EvAttachStop, func(Event) (bool, error) { return true, nil })
	drv.Handle(EvLauncherExit, func(Event) (bool, error) {
		return true, errors.New("engine: launcher exited during attach")
	})
	if _, err := drv.Run(); err != nil {
		return err
	}
	e.tl.Mark(MarkE3, e.proc.Sim().Now())
	e.tl.Mark(MarkTracing, drv.TracingCost)

	return e.harvestAndSpawn(ar.Daemon, tr)
}

// harvestAndSpawn fetches the RPDTAB (Region B), ships it to the FE, and
// has the RM co-locate the tool daemons (e5..e6).
func (e *Engine) harvestAndSpawn(spec rm.DaemonSpec, tr *cluster.Tracer) error {
	fetchStart := e.proc.Sim().Now()
	// Stream the harvest: each launcher-published chunk symbol is read,
	// decoded, and immediately re-chunked onto the engine→FE stream at the
	// session chunk size — the engine's transient is O(chunk), it never
	// materializes the table (let alone a second full copy, which the old
	// read-then-encode path held). Under the cut-through pipeline the FE
	// relays each chunk onward to the master daemon as it arrives (and the
	// master into the forming ICCL tree), so chunks flow end to end
	// without a full-table stop anywhere. All symbol reads complete before
	// the launcher is resumed, per the APAI contract.
	total := 0
	w := proctab.NewChunkWriter(e.chunkBytes, func(chunk []byte, _ uint64) error {
		return e.fe.Send(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeProctabChunk, Payload: chunk})
	})
	err := rm.ReadProctabChunks(tr, func(chunk []byte, _, _ int) error {
		entries, err := proctab.Decode(chunk)
		if err != nil {
			return err
		}
		total += len(entries)
		return w.AddTable(entries)
	})
	if err != nil {
		return err
	}
	e.tl.Mark(MarkE4, e.proc.Sim().Now())
	e.tl.Mark(MarkFetch, e.proc.Sim().Now()-fetchStart)
	if err := w.Flush(); err != nil {
		return err
	}
	if err := e.fe.Send(&lmonp.Msg{
		Class:   lmonp.ClassFEEngine,
		Type:    lmonp.TypeProctabEnd,
		Payload: proctab.EncodeEndMarker(uint64(total), w.Digest()),
	}); err != nil {
		return err
	}

	// Resume the launcher; it must be servicing commands for SpawnDaemons.
	if err := tr.Continue(); err != nil && !errors.Is(err, cluster.ErrNotStopped) {
		return err
	}

	e.tl.Mark(MarkE5, e.proc.Sim().Now())
	if err := e.job.SpawnDaemons(spec); err != nil {
		return err
	}
	e.tl.Mark(MarkE6, e.proc.Sim().Now())
	e.sendStatus("daemons-spawned")
	return nil
}

// commandLoop services FE control requests for the rest of the session.
func (e *Engine) commandLoop() {
	for {
		msg, err := e.fe.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case lmonp.TypeSpawnReq:
			sr, err := DecodeSpawnReq(msg.Payload)
			if err != nil {
				e.sendStatus("error: " + err.Error())
				continue
			}
			nodes, err := e.job.AllocateAndSpawn(sr.Nodes, sr.Daemon)
			if err != nil {
				e.sendStatus("error: " + err.Error())
				continue
			}
			payload := lmonp.AppendString(nil, "mw-spawned")
			payload = lmonp.AppendStringList(payload, nodes)
			e.fe.Send(&lmonp.Msg{Class: lmonp.ClassFEEngine, Type: lmonp.TypeStatus, Payload: payload})
		case lmonp.TypeDetach:
			if e.tr != nil {
				e.tr.Detach()
			}
			e.sendStatus("detached")
			return
		case lmonp.TypeKill:
			if e.tr != nil {
				e.tr.Detach()
			}
			// An already-dead job (node loss, launcher exit) still counts
			// as killed: the watchdog teardown path must converge.
			if err := e.job.Kill(); err != nil && !errors.Is(err, rm.ErrAlreadyKilled) {
				e.sendStatus("error: " + err.Error())
				return
			}
			e.sendStatus("killed")
			return
		default:
			e.sendStatus(fmt.Sprintf("error: unexpected message %v", msg.Type))
		}
	}
}

func parseAddr(s string) (simnet.Addr, error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			port, err := strconv.Atoi(s[i+1:])
			if err != nil {
				return simnet.Addr{}, fmt.Errorf("engine: bad address %q", s)
			}
			return simnet.Addr{Host: s[:i], Port: port}, nil
		}
	}
	return simnet.Addr{}, fmt.Errorf("engine: bad address %q", s)
}

package engine

import (
	"sort"
	"time"

	"launchmon/internal/lmonp"
)

// The critical-path events of launchAndSpawn (paper §4, Figure 2). Marks
// record the virtual time each event occurred; the perfmodel package turns
// mark differences into the Region A/B/C component breakdown of Figure 3.
//
// Under the cut-through launch pipeline (the default; see DESIGN.md "Life
// of a session") the marks form a partial order, not a single chain: the
// engine chain e0≤e1≤…≤e6≤e11 and the handshake chain e5≤e7≤e8≤e9≤e10≤e11
// each stay monotone, but e7–e9 may precede e6 — the master daemon dials
// the front end, receives the handshake and starts forming the ICCL tree
// while the RM is still spawning its sibling daemons. The store-and-forward
// pipeline (core.SeedStoreForward, the paper's serialized Figure 2 shape)
// keeps the full e0…e11 chain monotone.
const (
	MarkE0  = "e0_fe_call"         // client calls the FE API
	MarkE1  = "e1_engine_start"    // LaunchMON engine invoked
	MarkE2  = "e2_launcher_exec"   // RM job launcher started under trace
	MarkE3  = "e3_breakpoint"      // launcher stopped at MPIR_Breakpoint
	MarkE4  = "e4_rpdtab_fetched"  // engine finished fetching the RPDTAB
	MarkE5  = "e5_spawn_req"       // daemon launch command issued to the RM
	MarkE6  = "e6_spawn_done"      // RM finished spawning tool daemons
	MarkE7  = "e7_handshake_start" // FE began handshake with master daemon
	MarkE8  = "e8_netsetup_start"  // master daemon began ICCL fabric setup
	MarkE9  = "e9_netsetup_done"   // inter-daemon network established
	MarkE10 = "e10_ready"          // FE received the master's ready message
	MarkE11 = "e11_return"         // FE API returned to the client
)

// Derived duration marks (not timestamps).
const (
	MarkTracing = "tracing_cost" // accumulated engine event-handler time
	MarkFetch   = "rpdtab_fetch" // symbolic read duration (Region B)
)

// Overlap marks of the cut-through launch pipeline (timestamps). They
// instrument the phases the pipeline overlaps: the FE relays RPDTAB
// chunks toward the master while still draining the engine stream, and
// every daemon validates its reassembled table before contributing to
// the ready gather.
const (
	MarkSeedFwd   = "seed_first_forward" // FE relayed the first RPDTAB chunk to the master
	MarkSeedValid = "seed_validated"     // daemon-side assembler validated the reassembled RPDTAB
)

// Middleware seed-chain marks (timestamps): LaunchMW distributes the
// same session seed over the MW fabric, and its events form their own
// monotone chain m7≤m8≤m9≤m10 — the MW analogue of the back-end
// handshake chain e7≤e8≤e9≤e10, starting after e11 (the session must be
// established before middleware daemons can be requested).
const (
	MarkMW7         = "m7_mw_handshake_start" // FE accepted the MW master's dial, handshake begins
	MarkMW8         = "m8_mw_netsetup_start"  // MW master consumed the handshake, starts ICCL fabric setup
	MarkMW9         = "m9_mw_netsetup_done"   // MW tree fully connected
	MarkMW10        = "m10_mw_ready"          // FE received the MW master's ready message
	MarkMWSeedFwd   = "mw_seed_first_forward" // FE relayed the first seed chunk to the MW master
	MarkMWSeedValid = "mw_seed_validated"     // MW-daemon assembler validated the reassembled RPDTAB
)

// MarkEntry is one named timestamp or duration on a Timeline.
type MarkEntry struct {
	Name string
	At   time.Duration
}

// Timeline is an append-only list of named virtual-time marks collected
// across LaunchMON's components. It is intentionally a plain value: the
// engine encodes its marks into LMONP status payloads and the front end
// merges them with its own.
type Timeline struct {
	Entries []MarkEntry
}

// Mark appends a named timestamp.
func (t *Timeline) Mark(name string, at time.Duration) {
	t.Entries = append(t.Entries, MarkEntry{Name: name, At: at})
}

// Get returns the first mark with the given name.
func (t *Timeline) Get(name string) (time.Duration, bool) {
	for _, e := range t.Entries {
		if e.Name == name {
			return e.At, true
		}
	}
	return 0, false
}

// Between returns the duration between two marks (0 when either is absent).
func (t *Timeline) Between(from, to string) time.Duration {
	a, okA := t.Get(from)
	b, okB := t.Get(to)
	if !okA || !okB || b < a {
		return 0
	}
	return b - a
}

// Merge folds in all entries of other and re-sorts the merged list by
// (time, name). The sort makes the merged order a pure function of the
// mark set: BE and MW fabrics report their chains concurrently, and
// without it the merged order depended on which watcher ran first —
// nondeterministic output from deterministic virtual-time inputs.
func (t *Timeline) Merge(other Timeline) {
	t.Entries = append(t.Entries, other.Entries...)
	sort.SliceStable(t.Entries, func(i, j int) bool {
		if t.Entries[i].At != t.Entries[j].At {
			return t.Entries[i].At < t.Entries[j].At
		}
		return t.Entries[i].Name < t.Entries[j].Name
	})
}

// Encode renders the timeline for an LMONP payload.
func (t Timeline) Encode() []byte {
	b := lmonp.AppendUint32(nil, uint32(len(t.Entries)))
	for _, e := range t.Entries {
		b = lmonp.AppendString(b, e.Name)
		b = lmonp.AppendUint64(b, uint64(e.At))
	}
	return b
}

// DecodeTimeline parses an encoded timeline.
func DecodeTimeline(b []byte) (Timeline, error) {
	var t Timeline
	rd := lmonp.NewReader(b)
	n, err := rd.Uint32()
	if err != nil {
		return t, err
	}
	for i := uint32(0); i < n; i++ {
		name, err := rd.String()
		if err != nil {
			return t, err
		}
		at, err := rd.Uint64()
		if err != nil {
			return t, err
		}
		t.Entries = append(t.Entries, MarkEntry{Name: name, At: time.Duration(at)})
	}
	return t, nil
}

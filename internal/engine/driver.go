package engine

import (
	"fmt"
	"time"

	"launchmon/internal/cluster"
)

// This file implements the engine's internal event pipeline (paper §3.1):
// the Driver organizes the main operations, calling the EventManager to
// poll the traced RM process, the EventDecoder to lift native OS-level
// trace events into LaunchMON events, and the EventHandler table to react.
// The modular split is what makes ports cheap: a new platform supplies a
// different EventManager/Decoder parameterization while the Driver and
// handlers stay fixed.

// EventKind classifies decoded LaunchMON events.
type EventKind int

// LaunchMON event kinds.
const (
	// EvLauncherStop: the launcher stopped on an ordinary debug event.
	EvLauncherStop EventKind = iota
	// EvBreakpoint: the launcher reached MPIR_Breakpoint (job ready).
	EvBreakpoint
	// EvAttachStop: the launcher stopped due to a tracer interrupt.
	EvAttachStop
	// EvLauncherExit: the launcher exited.
	EvLauncherExit
)

// Event is a decoded LaunchMON event.
type Event struct {
	Kind   EventKind
	Reason string
	Code   int // exit code for EvLauncherExit
}

// EventManager polls the target RM process for native trace events.
type EventManager struct {
	tr *cluster.Tracer
}

// NewEventManager wraps an attached tracer.
func NewEventManager(tr *cluster.Tracer) *EventManager { return &EventManager{tr: tr} }

// Poll blocks for the next native event; ok is false when the event stream
// has closed (tracee exited or tracer detached).
func (em *EventManager) Poll() (cluster.TraceEvent, bool) {
	return em.tr.Events().Recv()
}

// EventDecoder converts native trace events into LaunchMON events.
type EventDecoder struct {
	breakpointName string
}

// NewEventDecoder builds a decoder recognizing the platform's APAI
// breakpoint symbol.
func NewEventDecoder(breakpointName string) *EventDecoder {
	return &EventDecoder{breakpointName: breakpointName}
}

// Decode lifts a native event.
func (d *EventDecoder) Decode(ev cluster.TraceEvent) Event {
	switch ev.Type {
	case cluster.EventExit:
		return Event{Kind: EvLauncherExit, Code: ev.Code}
	case cluster.EventStop:
		switch ev.Reason {
		case d.breakpointName:
			return Event{Kind: EvBreakpoint, Reason: ev.Reason}
		case "interrupt":
			return Event{Kind: EvAttachStop, Reason: ev.Reason}
		default:
			return Event{Kind: EvLauncherStop, Reason: ev.Reason}
		}
	default:
		return Event{Kind: EvLauncherStop, Reason: ev.Reason}
	}
}

// Handler reacts to one LaunchMON event. Returning stop=true ends the
// driver loop (with the event as the loop's result).
type Handler func(Event) (stop bool, err error)

// Driver owns the poll→decode→dispatch loop.
type Driver struct {
	proc        *cluster.Proc // the engine process (charged handler cost)
	em          *EventManager
	dec         *EventDecoder
	handlers    map[EventKind]Handler
	handlerCost time.Duration

	// TracingCost accumulates the engine CPU time spent handling events —
	// LaunchMON's only contribution to Region A of the model.
	TracingCost time.Duration
	// EventsSeen counts dispatched events.
	EventsSeen int
}

// NewDriver assembles the pipeline. handlerCost is charged per dispatched
// event (the paper's measured per-event handler cost; 18 ms total for
// SLURM's 12 events at the 1.5 ms default).
func NewDriver(proc *cluster.Proc, em *EventManager, dec *EventDecoder, handlerCost time.Duration) *Driver {
	return &Driver{
		proc:        proc,
		em:          em,
		dec:         dec,
		handlers:    make(map[EventKind]Handler),
		handlerCost: handlerCost,
	}
}

// Handle registers the handler for an event kind.
func (d *Driver) Handle(kind EventKind, h Handler) { d.handlers[kind] = h }

// Run polls, decodes and dispatches until a handler stops the loop or the
// event stream ends. It returns the stopping event.
func (d *Driver) Run() (Event, error) {
	for {
		native, ok := d.em.Poll()
		if !ok {
			return Event{Kind: EvLauncherExit, Code: -1}, fmt.Errorf("engine: event stream closed")
		}
		ev := d.dec.Decode(native)
		d.proc.Compute(d.handlerCost)
		d.TracingCost += d.handlerCost
		d.EventsSeen++
		h, found := d.handlers[ev.Kind]
		if !found {
			continue
		}
		stop, err := h(ev)
		if err != nil {
			return ev, err
		}
		if stop {
			return ev, nil
		}
	}
}

package engine

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

func TestTimelineEncodeDecode(t *testing.T) {
	var tl Timeline
	tl.Mark(MarkE0, 0)
	tl.Mark(MarkE3, 120*time.Millisecond)
	tl.Mark(MarkTracing, 18*time.Millisecond)
	out, err := DecodeTimeline(tl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl, out) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", tl, out)
	}
}

func TestTimelineBetween(t *testing.T) {
	var tl Timeline
	tl.Mark(MarkE2, 10*time.Millisecond)
	tl.Mark(MarkE3, 35*time.Millisecond)
	if d := tl.Between(MarkE2, MarkE3); d != 25*time.Millisecond {
		t.Fatalf("Between = %v", d)
	}
	if d := tl.Between(MarkE3, MarkE2); d != 0 {
		t.Fatalf("reversed Between = %v, want 0", d)
	}
	if d := tl.Between(MarkE2, "missing"); d != 0 {
		t.Fatalf("missing Between = %v, want 0", d)
	}
}

func TestTimelineMerge(t *testing.T) {
	var a, b Timeline
	a.Mark(MarkE0, 1)
	b.Mark(MarkE1, 2)
	a.Merge(b)
	if _, ok := a.Get(MarkE1); !ok {
		t.Fatal("merge lost entry")
	}
}

// Property: timeline codec round-trips arbitrary mark lists.
func TestPropertyTimelineRoundTrip(t *testing.T) {
	f := func(names []string, ats []uint32) bool {
		var tl Timeline
		for i, n := range names {
			at := time.Duration(0)
			if i < len(ats) {
				at = time.Duration(ats[i])
			}
			tl.Mark(n, at)
		}
		out, err := DecodeTimeline(tl.Encode())
		if err != nil {
			return false
		}
		if len(out.Entries) != len(tl.Entries) {
			return false
		}
		for i := range tl.Entries {
			if out.Entries[i] != tl.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	lr := LaunchReq{
		Job:    rm.JobSpec{Name: "j", Exe: "app", Nodes: 7, TasksPerNode: 3},
		Daemon: rm.DaemonSpec{Exe: "d", Args: []string{"-v"}, Env: map[string]string{"A": "1", "B": "2"}},
	}
	gotLR, err := DecodeLaunchReq(EncodeLaunchReq(lr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lr, gotLR) {
		t.Fatalf("LaunchReq roundtrip: %+v vs %+v", lr, gotLR)
	}

	ar := AttachReq{JobID: 42, Daemon: rm.DaemonSpec{Exe: "d", Env: map[string]string{}}}
	gotAR, err := DecodeAttachReq(EncodeAttachReq(ar))
	if err != nil {
		t.Fatal(err)
	}
	if gotAR.JobID != 42 || gotAR.Daemon.Exe != "d" {
		t.Fatalf("AttachReq roundtrip: %+v", gotAR)
	}

	sr := SpawnReq{Nodes: 5, Daemon: rm.DaemonSpec{Exe: "mw", Env: map[string]string{}}}
	gotSR, err := DecodeSpawnReq(EncodeSpawnReq(sr))
	if err != nil {
		t.Fatal(err)
	}
	if gotSR.Nodes != 5 || gotSR.Daemon.Exe != "mw" {
		t.Fatalf("SpawnReq roundtrip: %+v", gotSR)
	}
}

func TestCodecTruncation(t *testing.T) {
	enc := EncodeLaunchReq(LaunchReq{Job: rm.JobSpec{Exe: "x", Nodes: 1, TasksPerNode: 1}, Daemon: rm.DaemonSpec{Exe: "d"}})
	for _, cut := range []int{0, 3, len(enc) / 2} {
		if _, err := DecodeLaunchReq(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDriverPipeline(t *testing.T) {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	var seen []EventKind
	var tracing time.Duration
	sim.Go("test", func() {
		tracee, err := cl.Node(0).SpawnProc(cluster.Spec{Main: func(p *cluster.Proc) {
			p.DebugEvent("load")
			p.DebugEvent("load")
			p.DebugEvent(rm.BPName)
		}, Hold: true})
		if err != nil {
			t.Error(err)
			return
		}
		tr, err := tracee.Attach()
		if err != nil {
			t.Error(err)
			return
		}
		tracee.Start()
		eng, _ := cl.Node(0).SpawnProc(cluster.Spec{Main: func(p *cluster.Proc) {
			drv := NewDriver(p, NewEventManager(tr), NewEventDecoder(rm.BPName), time.Millisecond)
			drv.Handle(EvLauncherStop, func(ev Event) (bool, error) {
				seen = append(seen, ev.Kind)
				return false, tr.Continue()
			})
			drv.Handle(EvBreakpoint, func(ev Event) (bool, error) {
				seen = append(seen, ev.Kind)
				return true, nil
			})
			if _, err := drv.Run(); err != nil {
				t.Error(err)
			}
			tracing = drv.TracingCost
			tr.Continue()
		}})
		eng.Wait()
	})
	sim.Run()
	want := []EventKind{EvLauncherStop, EvLauncherStop, EvBreakpoint}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("event sequence = %v, want %v", seen, want)
	}
	if tracing != 3*time.Millisecond {
		t.Fatalf("tracing cost = %v, want 3ms", tracing)
	}
}

func TestDecoderClassification(t *testing.T) {
	d := NewEventDecoder(rm.BPName)
	cases := []struct {
		in   cluster.TraceEvent
		want EventKind
	}{
		{cluster.TraceEvent{Type: cluster.EventStop, Reason: rm.BPName}, EvBreakpoint},
		{cluster.TraceEvent{Type: cluster.EventStop, Reason: "interrupt"}, EvAttachStop},
		{cluster.TraceEvent{Type: cluster.EventStop, Reason: "dlopen"}, EvLauncherStop},
		{cluster.TraceEvent{Type: cluster.EventExit, Code: 3}, EvLauncherExit},
	}
	for i, c := range cases {
		if got := d.Decode(c.in); got.Kind != c.want {
			t.Errorf("case %d: kind %v, want %v", i, got.Kind, c.want)
		}
	}
}

func TestParseAddr(t *testing.T) {
	if a, err := parseAddr("fe0:1234"); err != nil || a.Host != "fe0" || a.Port != 1234 {
		t.Fatalf("parseAddr = %+v, %v", a, err)
	}
	for _, bad := range []string{"", "fe0", "fe0:abc", ":"} {
		if _, err := parseAddr(bad); err == nil {
			t.Errorf("parseAddr(%q) accepted", bad)
		}
	}
}

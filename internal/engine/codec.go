package engine

import (
	"fmt"

	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
)

// Request payload codecs for the fe-engine LMONP class.

// LaunchReq asks the engine to launch a job and co-locate daemons.
type LaunchReq struct {
	Job    rm.JobSpec
	Daemon rm.DaemonSpec
	// ChunkBytes overrides the engine's RPDTAB chunk size for this
	// session; 0 keeps the engine default.
	ChunkBytes int
}

// AttachReq asks the engine to attach to a running job and co-locate
// daemons.
type AttachReq struct {
	JobID  int
	Daemon rm.DaemonSpec
	// ChunkBytes overrides the engine's RPDTAB chunk size; 0 = default.
	ChunkBytes int
}

// SpawnReq asks the engine to allocate fresh nodes and spawn middleware
// daemons on them.
type SpawnReq struct {
	Nodes  int
	Daemon rm.DaemonSpec
}

func appendJobSpec(b []byte, s rm.JobSpec) []byte {
	b = lmonp.AppendString(b, s.Name)
	b = lmonp.AppendString(b, s.Exe)
	b = lmonp.AppendUint32(b, uint32(s.Nodes))
	b = lmonp.AppendUint32(b, uint32(s.TasksPerNode))
	return b
}

func readJobSpec(rd *lmonp.Reader) (rm.JobSpec, error) {
	var s rm.JobSpec
	var err error
	if s.Name, err = rd.String(); err != nil {
		return s, err
	}
	if s.Exe, err = rd.String(); err != nil {
		return s, err
	}
	n, err := rd.Uint32()
	if err != nil {
		return s, err
	}
	t, err := rd.Uint32()
	if err != nil {
		return s, err
	}
	s.Nodes, s.TasksPerNode = int(n), int(t)
	return s, nil
}

func appendDaemonSpec(b []byte, s rm.DaemonSpec) []byte {
	b = lmonp.AppendString(b, s.Exe)
	b = lmonp.AppendStringList(b, s.Args)
	kv := make([][2]string, 0, len(s.Env))
	for k, v := range s.Env {
		kv = append(kv, [2]string{k, v})
	}
	// Deterministic order.
	for i := 1; i < len(kv); i++ {
		for j := i; j > 0 && kv[j][0] < kv[j-1][0]; j-- {
			kv[j], kv[j-1] = kv[j-1], kv[j]
		}
	}
	return lmonp.AppendStringMap(b, kv)
}

func readDaemonSpec(rd *lmonp.Reader) (rm.DaemonSpec, error) {
	var s rm.DaemonSpec
	var err error
	if s.Exe, err = rd.String(); err != nil {
		return s, err
	}
	if s.Args, err = rd.StringList(); err != nil {
		return s, err
	}
	kv, err := rd.StringMap()
	if err != nil {
		return s, err
	}
	s.Env = make(map[string]string, len(kv))
	for _, e := range kv {
		s.Env[e[0]] = e[1]
	}
	return s, nil
}

// EncodeLaunchReq renders a LaunchReq payload.
func EncodeLaunchReq(r LaunchReq) []byte {
	b := appendJobSpec(nil, r.Job)
	b = appendDaemonSpec(b, r.Daemon)
	return lmonp.AppendUint32(b, uint32(r.ChunkBytes))
}

// DecodeLaunchReq parses a LaunchReq payload.
func DecodeLaunchReq(b []byte) (LaunchReq, error) {
	rd := lmonp.NewReader(b)
	var r LaunchReq
	var err error
	if r.Job, err = readJobSpec(rd); err != nil {
		return r, err
	}
	if r.Daemon, err = readDaemonSpec(rd); err != nil {
		return r, err
	}
	if r.ChunkBytes, err = readChunkBytes(rd); err != nil {
		return r, err
	}
	return r, nil
}

// EncodeAttachReq renders an AttachReq payload.
func EncodeAttachReq(r AttachReq) []byte {
	b := lmonp.AppendUint32(nil, uint32(r.JobID))
	b = appendDaemonSpec(b, r.Daemon)
	return lmonp.AppendUint32(b, uint32(r.ChunkBytes))
}

// DecodeAttachReq parses an AttachReq payload.
func DecodeAttachReq(b []byte) (AttachReq, error) {
	rd := lmonp.NewReader(b)
	var r AttachReq
	id, err := rd.Uint32()
	if err != nil {
		return r, err
	}
	r.JobID = int(id)
	if r.Daemon, err = readDaemonSpec(rd); err != nil {
		return r, err
	}
	if r.ChunkBytes, err = readChunkBytes(rd); err != nil {
		return r, err
	}
	return r, nil
}

// readChunkBytes reads the trailing chunk-size override of a session
// request, rejecting values that overflow int chunk arithmetic.
func readChunkBytes(rd *lmonp.Reader) (int, error) {
	v, err := rd.Uint32()
	if err != nil {
		return 0, err
	}
	if v > 1<<30 {
		return 0, fmt.Errorf("engine: chunk size %d out of range", v)
	}
	return int(v), nil
}

// EncodeSpawnReq renders a SpawnReq payload.
func EncodeSpawnReq(r SpawnReq) []byte {
	b := lmonp.AppendUint32(nil, uint32(r.Nodes))
	return appendDaemonSpec(b, r.Daemon)
}

// DecodeSpawnReq parses a SpawnReq payload.
func DecodeSpawnReq(b []byte) (SpawnReq, error) {
	rd := lmonp.NewReader(b)
	var r SpawnReq
	n, err := rd.Uint32()
	if err != nil {
		return r, err
	}
	r.Nodes = int(n)
	if r.Daemon, err = readDaemonSpec(rd); err != nil {
		return r, err
	}
	return r, nil
}

// DecodeStatusFromConn reads the next message from c, requiring it to be a
// fe-engine status, and decodes it.
func DecodeStatusFromConn(c *lmonp.Conn) (string, Timeline, error) {
	msg, err := c.Expect(lmonp.ClassFEEngine, lmonp.TypeStatus)
	if err != nil {
		return "", Timeline{}, err
	}
	return DecodeStatus(msg.Payload)
}

// DecodeStatus parses a status payload into its message and any timeline.
func DecodeStatus(b []byte) (string, Timeline, error) {
	rd := lmonp.NewReader(b)
	msg, err := rd.String()
	if err != nil {
		return "", Timeline{}, err
	}
	if rd.Remaining() == 0 {
		return msg, Timeline{}, nil
	}
	enc, err := rd.Bytes()
	if err != nil {
		return msg, Timeline{}, err
	}
	tl, err := DecodeTimeline(enc)
	return msg, tl, err
}

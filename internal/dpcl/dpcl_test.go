package dpcl

import (
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

func rig(t *testing.T, nodes int, cfg Config) (*vtime.Sim, *cluster.Cluster, *Service) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Install(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, cl, svc
}

func TestAPAIViaDPCLReadsProctab(t *testing.T) {
	sim, cl, svc := rig(t, 2, Config{BinaryParseCost: 50 * time.Millisecond})
	want := proctab.Table{{Host: "node0", Exe: "app", Pid: 7, Rank: 0}}
	sim.Go("test", func() {
		// A fake launcher exposing the MPIR symbols.
		launcher, err := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "srun", Passive: true})
		if err != nil {
			t.Error(err)
			return
		}
		enc := want.Encode()
		launcher.SetSymbol(rm.SymProctab, cluster.Symbol{Value: enc, Size: len(enc)})
		client, _ := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "oss", Main: func(p *cluster.Proc) {
			got, err := svc.APAIViaDPCL(p, "fe0", launcher.Pid())
			if err != nil {
				t.Error(err)
				return
			}
			tab, err := proctab.Decode(got)
			if err != nil {
				t.Error(err)
				return
			}
			if len(tab) != 1 || tab[0].Host != "node0" {
				t.Errorf("tab = %+v", tab)
			}
		}})
		client.Wait()
	})
	sim.Run()
}

func TestAPAICostDominatedByParse(t *testing.T) {
	parse := 500 * time.Millisecond
	sim, cl, svc := rig(t, 1, Config{BinaryParseCost: parse})
	var cost time.Duration
	sim.Go("test", func() {
		launcher, _ := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "srun", Passive: true})
		enc := proctab.Table{{Host: "node0", Exe: "a", Pid: 1, Rank: 0}}.Encode()
		launcher.SetSymbol(rm.SymProctab, cluster.Symbol{Value: enc, Size: len(enc)})
		client, _ := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "oss", Main: func(p *cluster.Proc) {
			start := p.Sim().Now()
			if _, err := svc.APAIViaDPCL(p, "fe0", launcher.Pid()); err != nil {
				t.Error(err)
				return
			}
			cost = p.Sim().Now() - start
		}})
		client.Wait()
	})
	sim.Run()
	if cost < parse {
		t.Fatalf("APAI access %v below the binary parse cost %v", cost, parse)
	}
	if cost > parse+300*time.Millisecond {
		t.Fatalf("APAI access %v far above parse cost %v", cost, parse)
	}
}

func TestAPAIMissingProcess(t *testing.T) {
	sim, cl, svc := rig(t, 1, Config{BinaryParseCost: time.Millisecond})
	sim.Go("test", func() {
		client, _ := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "oss", Main: func(p *cluster.Proc) {
			if _, err := svc.APAIViaDPCL(p, "fe0", 424242); err == nil {
				t.Error("APAI against missing pid succeeded")
			}
		}})
		client.Wait()
	})
	sim.Run()
}

func TestAPAIUnknownHost(t *testing.T) {
	sim, cl, svc := rig(t, 1, Config{BinaryParseCost: time.Millisecond})
	sim.Go("test", func() {
		client, _ := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "oss", Main: func(p *cluster.Proc) {
			if _, err := svc.APAIViaDPCL(p, "ghost-node", 1); err == nil {
				t.Error("APAI against unknown host succeeded")
			}
		}})
		client.Wait()
	})
	sim.Run()
}

func TestNodeSessionsCharged(t *testing.T) {
	per := 10 * time.Millisecond
	sim, cl, svc := rig(t, 4, Config{PerNodeSessionCost: per, BinaryParseCost: time.Millisecond})
	var cost time.Duration
	sim.Go("test", func() {
		client, _ := cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "oss", Main: func(p *cluster.Proc) {
			start := p.Sim().Now()
			for i := 0; i < 4; i++ {
				if err := svc.OpenNodeSession(p, cl.Node(i).Name()); err != nil {
					t.Error(err)
					return
				}
			}
			cost = p.Sim().Now() - start
		}})
		client.Wait()
	})
	sim.Run()
	if cost < 4*per {
		t.Fatalf("4 node sessions cost %v, want >= %v", cost, 4*per)
	}
}

func TestPersistentDaemonsPreinstalled(t *testing.T) {
	_, cl, _ := rig(t, 3, Config{})
	// The root-daemon model: dpcld occupies a slot on every node (and the
	// front end) before any tool runs — the deployment burden §2 criticizes.
	if got := cl.FrontEnd().NumProcs(); got != 1 {
		t.Fatalf("front end has %d procs, want 1 (dpcld)", got)
	}
	for i := 0; i < 3; i++ {
		if got := cl.Node(i).NumProcs(); got != 1 {
			t.Fatalf("node%d has %d procs, want 1 (dpcld)", i, got)
		}
	}
}

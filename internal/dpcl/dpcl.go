// Package dpcl simulates the Dynamic Probe Class Library substrate that
// Open|SpeedShop builds on (paper §5.3): persistent, root-privileged
// "super daemons" pre-installed on every node, a client library that
// connects to them, and a general-purpose binary-instrumentation path to
// process information.
//
// Its defining costs for the paper's Table 1 are that DPCL treats the RM
// launcher like any instrumentation target — including parsing its binary
// fully (~33.5 s) — before it can read the APAI proctable, and that this
// cost is essentially independent of job size. The security/deployment
// problems of the persistent-root-daemon model (paper §2) are what
// LaunchMON's on-demand launching removes.
package dpcl

import (
	"errors"
	"fmt"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
)

// Port of the persistent dpcld super daemon.
const Port = 7878

// Config models DPCL's cost profile.
type Config struct {
	// BinaryParseCost is the full parse of a target binary before any
	// instrumentation (default 33.5s for the RM launcher — the Table 1
	// constant).
	BinaryParseCost time.Duration
	// AttachCost is the ptrace attach + bootstrap of the instrumentation
	// runtime in the target (default 150ms).
	AttachCost time.Duration
	// PerNodeSessionCost is the per-node daemon session setup the client
	// pays when widening an experiment (default 28ms — Table 1's slight
	// growth from 33.77s at 2 nodes to 34.66s at 32).
	PerNodeSessionCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.BinaryParseCost == 0 {
		c.BinaryParseCost = 33500 * time.Millisecond
	}
	if c.AttachCost == 0 {
		c.AttachCost = 150 * time.Millisecond
	}
	if c.PerNodeSessionCost == 0 {
		c.PerNodeSessionCost = 28 * time.Millisecond
	}
	return c
}

// Service is an installed DPCL infrastructure.
type Service struct {
	cl  *cluster.Cluster
	cfg Config
}

// Install boots a persistent dpcld on the front end and on every compute
// node (the root-daemon deployment model).
func Install(cl *cluster.Cluster, cfg Config) (*Service, error) {
	s := &Service{cl: cl, cfg: cfg.withDefaults()}
	nodes := []*cluster.Node{cl.FrontEnd()}
	for i := 0; i < cl.NumNodes(); i++ {
		nodes = append(nodes, cl.Node(i))
	}
	for _, n := range nodes {
		n := n
		if _, err := n.SpawnSystemProc(cluster.Spec{Exe: "dpcld", Main: s.dpcldMain(n)}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// dpcld opcodes.
const (
	opAPAI    = 1 // attach to pid, parse binary, read MPIR_proctable
	opSession = 2 // set up an instrumentation session on this node
)

func (s *Service) dpcldMain(node *cluster.Node) cluster.ProcMain {
	return func(p *cluster.Proc) {
		l, err := p.Host().Listen(Port)
		if err != nil {
			return
		}
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			p.Sim().Go("dpcld-session", func() {
				defer conn.Close()
				s.handle(p, node, conn)
			})
		}
	}
}

func (s *Service) handle(p *cluster.Proc, node *cluster.Node, conn *simnet.Conn) {
	req, err := lmonp.ReadFrame(conn)
	if err != nil {
		return
	}
	rd := lmonp.NewReader(req)
	op, _ := rd.Uint32()
	switch op {
	case opAPAI:
		pid32, err := rd.Uint32()
		if err != nil {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, "bad request"))
			return
		}
		target, ok := node.Proc(int(pid32))
		if !ok {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, fmt.Sprintf("no process %d", pid32)))
			return
		}
		tr, err := target.Attach()
		if err != nil {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, err.Error()))
			return
		}
		defer tr.Detach()
		// DPCL's general-purpose path: attach, then parse the target
		// binary in full before touching any symbol.
		p.Compute(s.cfg.AttachCost)
		p.Compute(s.cfg.BinaryParseCost)
		tab, err := rm.ProctabFromLauncher(tr)
		if err != nil {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, err.Error()))
			return
		}
		enc := tab.Encode()
		out := lmonp.AppendString(nil, "")
		out = lmonp.AppendBytes(out, enc)
		lmonp.WriteFrame(conn, out)
	case opSession:
		p.Compute(s.cfg.PerNodeSessionCost)
		lmonp.WriteFrame(conn, lmonp.AppendString(nil, ""))
	default:
		lmonp.WriteFrame(conn, lmonp.AppendString(nil, "bad op"))
	}
}

// Client errors.
var ErrDPCL = errors.New("dpcl: request failed")

// APAIViaDPCL performs the DPCL-style APAI access from the calling
// process: connect to the local dpcld, have it attach to the launcher,
// parse its binary in full, and return the proctable bytes.
func (s *Service) APAIViaDPCL(p *cluster.Proc, launcherNode string, launcherPid int) ([]byte, error) {
	conn, err := p.Host().Dial(simnet.Addr{Host: launcherNode, Port: Port})
	if err != nil {
		return nil, fmt.Errorf("%w: dial: %v", ErrDPCL, err)
	}
	defer conn.Close()
	req := lmonp.AppendUint32(nil, opAPAI)
	req = lmonp.AppendUint32(req, uint32(launcherPid))
	if err := lmonp.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	resp, err := lmonp.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(resp)
	emsg, err := rd.String()
	if err != nil {
		return nil, err
	}
	if emsg != "" {
		return nil, fmt.Errorf("%w: %s", ErrDPCL, emsg)
	}
	return rd.Bytes()
}

// OpenNodeSession sets up an instrumentation session with one node's
// persistent daemon (the per-node serial step of widening an experiment).
func (s *Service) OpenNodeSession(p *cluster.Proc, node string) error {
	conn, err := p.Host().Dial(simnet.Addr{Host: node, Port: Port})
	if err != nil {
		return fmt.Errorf("%w: dial %s: %v", ErrDPCL, node, err)
	}
	defer conn.Close()
	if err := lmonp.WriteFrame(conn, lmonp.AppendUint32(nil, opSession)); err != nil {
		return err
	}
	resp, err := lmonp.ReadFrame(conn)
	if err != nil {
		return err
	}
	rd := lmonp.NewReader(resp)
	emsg, err := rd.String()
	if err != nil {
		return err
	}
	if emsg != "" {
		return fmt.Errorf("%w: %s", ErrDPCL, emsg)
	}
	return nil
}

package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/tools/jobsnap"
)

// JobsnapTreeRow compares Jobsnap's flat collection against the TBŌN-style
// k-ary gather the paper proposes as future work.
type JobsnapTreeRow struct {
	Fanout  int // 0 = flat (the paper's measured configuration)
	Daemons int
	Total   time.Duration
	Launch  time.Duration
}

// AblationJobsnapTree measures Jobsnap at 512 daemons with flat and k-ary
// collection trees — the paper's §5.1 closing suggestion quantified.
func AblationJobsnapTree() ([]JobsnapTreeRow, error) {
	const daemons, tpd = 512, 8
	var rows []JobsnapTreeRow
	for _, fanout := range []int{0, 8, 32} {
		r, err := NewRig(RigOptions{Nodes: daemons})
		if err != nil {
			return nil, err
		}
		var res jobsnap.Result
		err = r.RunFE(func(p *cluster.Proc) error {
			j, err := r.Mgr.StartJob(rm.JobSpec{Exe: "mpiapp", Nodes: daemons, TasksPerNode: tpd})
			if err != nil {
				return err
			}
			p.Sim().Sleep(5 * time.Second)
			res, err = jobsnap.RunWithOptions(p, j.ID(), jobsnap.RunOptions{Fanout: fanout})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("jobsnap tree ablation (fanout %d): %w", fanout, err)
		}
		if res.Lines != daemons*tpd {
			return nil, fmt.Errorf("jobsnap tree ablation (fanout %d): %d lines", fanout, res.Lines)
		}
		rows = append(rows, JobsnapTreeRow{Fanout: fanout, Daemons: daemons, Total: res.Total, Launch: res.LaunchTime})
	}
	return rows, nil
}

// PrintJobsnapTree renders the comparison.
func PrintJobsnapTree(w io.Writer, rows []JobsnapTreeRow) {
	fmt.Fprintln(w, "Ablation — Jobsnap collection tree (512 daemons, 8 tasks/daemon)")
	fmt.Fprintln(w, "fanout    total      launch")
	for _, r := range rows {
		name := fmt.Sprint(r.Fanout)
		if r.Fanout == 0 {
			name = "flat"
		}
		fmt.Fprintf(w, "%-9s %9.3fs %9.3fs\n", name, r.Total.Seconds(), r.Launch.Seconds())
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/engine"
	"launchmon/internal/perfmodel"
	"launchmon/internal/rm"
	"launchmon/internal/rm/alps"
	"launchmon/internal/rm/bgl"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

// This file holds the ablation benchmarks for design decisions the paper
// calls out (DESIGN.md §4): the BG/L RM cost contrast (§4's closing
// observation), ICCL tree fan-out, user-data piggybacking, RPDTAB
// distribution mechanism, and RM debug-event scaling.

// BGLRow compares launchAndSpawn on the SLURM-like and BG/L-like RMs.
type BGLRow struct {
	RM       string
	Measured perfmodel.Breakdown
}

// BGLAblation measures launchAndSpawn at 64 nodes across the three RM
// implementations, reproducing the paper's note that BG/L's
// T(job)/T(daemon) dominate while LaunchMON's own costs stay put — and
// extending it with the ALPS-like star launcher.
func BGLAblation() ([]BGLRow, error) {
	const nodes, tpd = 64, 8
	measure := func(which string, install func(cl *cluster.Cluster) (rm.Manager, error)) (perfmodel.Breakdown, error) {
		sim := vtime.New()
		cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
		if err != nil {
			return perfmodel.Breakdown{}, err
		}
		mgr, err := install(cl)
		if err != nil {
			return perfmodel.Breakdown{}, err
		}
		core.Setup(cl, mgr)
		registerNoopBE(cl, "abl_be")
		var b perfmodel.Breakdown
		var ferr error
		sim.Go("abl-fe", func() {
			cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "abl_fe", Main: func(p *cluster.Proc) {
				sess, err := core.LaunchAndSpawn(p, core.Options{
					Job:    rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: tpd},
					Daemon: rm.DaemonSpec{Exe: "abl_be"},
				})
				if err != nil {
					ferr = err
					return
				}
				b, ferr = perfmodel.Decompose(sess.Timeline)
			}})
		})
		sim.Run()
		if ferr != nil {
			return b, fmt.Errorf("rm ablation (%s): %w", which, ferr)
		}
		return b, nil
	}
	installs := []struct {
		name    string
		install func(cl *cluster.Cluster) (rm.Manager, error)
	}{
		{"slurm", func(cl *cluster.Cluster) (rm.Manager, error) { return slurm.Install(cl, slurm.Config{}) }},
		{"bgl-mpirun", func(cl *cluster.Cluster) (rm.Manager, error) { return bgl.Install(cl) }},
		{"alps", func(cl *cluster.Cluster) (rm.Manager, error) { return alps.Install(cl, alps.Config{}) }},
	}
	var rows []BGLRow
	for _, in := range installs {
		b, err := measure(in.name, in.install)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BGLRow{RM: in.name, Measured: b})
	}
	return rows, nil
}

// FanoutRow is one ICCL tree shape measurement.
type FanoutRow struct {
	Fanout     int // 0 = flat (1-deep)
	Setup      time.Duration
	Collective time.Duration
	Total      time.Duration
}

// AblationFanout measures launchAndSpawn at 128 daemons across ICCL tree
// fan-outs: flat trees concentrate the handshake at the master daemon,
// k-ary trees distribute it.
func AblationFanout() ([]FanoutRow, error) {
	const nodes, tpd = 128, 8
	var rows []FanoutRow
	for _, fanout := range []int{0, 4, 16, 32} {
		r, err := NewRig(RigOptions{Nodes: nodes})
		if err != nil {
			return nil, err
		}
		registerNoopBE(r.Cl, "abl_be")
		var b perfmodel.Breakdown
		err = r.RunFE(func(p *cluster.Proc) error {
			sess, err := core.LaunchAndSpawn(p, core.Options{
				Job:        rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: tpd},
				Daemon:     rm.DaemonSpec{Exe: "abl_be"},
				ICCLFanout: fanout,
			})
			if err != nil {
				return err
			}
			b, err = perfmodel.Decompose(sess.Timeline)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fanout ablation (%d): %w", fanout, err)
		}
		rows = append(rows, FanoutRow{Fanout: fanout, Setup: b.Setup, Collective: b.Collective, Total: b.Total})
	}
	return rows, nil
}

// PiggybackRow compares delivering tool bootstrap data piggybacked on the
// handshake versus as a separate post-ready exchange.
type PiggybackRow struct {
	Mode  string
	Total time.Duration
}

// AblationPiggyback quantifies the startup saving of piggybacking tool
// data on LaunchMON's handshake (paper §3.2's pack/unpack design) against
// a separate FE→master→broadcast round after ready.
func AblationPiggyback() ([]PiggybackRow, error) {
	const nodes, tpd = 128, 8
	payload := make([]byte, 4096)
	var rows []PiggybackRow

	// Piggybacked: FEData rides the handshake and the RPDTAB broadcast.
	{
		r, err := NewRig(RigOptions{Nodes: nodes})
		if err != nil {
			return nil, err
		}
		r.Cl.Register("pig_be", func(p *cluster.Proc) {
			be, err := core.BEInit(p)
			if err != nil {
				return
			}
			if len(be.FEData()) != len(payload) {
				return
			}
			be.Finalize()
		})
		var total time.Duration
		err = r.RunFE(func(p *cluster.Proc) error {
			start := p.Sim().Now()
			_, err := core.LaunchAndSpawn(p, core.Options{
				Job:    rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: tpd},
				Daemon: rm.DaemonSpec{Exe: "pig_be"},
				FEData: payload,
			})
			total = p.Sim().Now() - start
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("piggyback ablation: %w", err)
		}
		rows = append(rows, PiggybackRow{Mode: "piggybacked", Total: total})
	}

	// Separate: empty handshake, then an explicit usr-data message that
	// the master broadcasts, with a confirmation gather back to the FE.
	{
		r, err := NewRig(RigOptions{Nodes: nodes})
		if err != nil {
			return nil, err
		}
		r.Cl.Register("sep_be", func(p *cluster.Proc) {
			be, err := core.BEInit(p)
			if err != nil {
				return
			}
			var data []byte
			if be.AmIMaster() {
				data, err = be.RecvFromFE()
				if err != nil {
					return
				}
			}
			if _, err := be.Broadcast(data); err != nil {
				return
			}
			if _, err := be.Gather([]byte{1}); err != nil {
				return
			}
			if be.AmIMaster() {
				be.SendToFE([]byte("ok"))
			}
			be.Finalize()
		})
		var total time.Duration
		err = r.RunFE(func(p *cluster.Proc) error {
			start := p.Sim().Now()
			sess, err := core.LaunchAndSpawn(p, core.Options{
				Job:    rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: tpd},
				Daemon: rm.DaemonSpec{Exe: "sep_be"},
			})
			if err != nil {
				return err
			}
			if err := sess.SendToBE(payload); err != nil {
				return err
			}
			if _, err := sess.RecvFromBE(); err != nil {
				return err
			}
			total = p.Sim().Now() - start
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("separate-exchange ablation: %w", err)
		}
		rows = append(rows, PiggybackRow{Mode: "separate", Total: total})
	}
	return rows, nil
}

// DebugEventsRow shows engine tracing cost under different RM debug-event
// behaviours.
type DebugEventsRow struct {
	Mode    string
	Daemons int
	Tracing time.Duration
}

// AblationDebugEvents contrasts a fixed-event RM (SLURM after the fix the
// paper describes) with a hypothetical RM whose debug events grow with
// scale — the pathology the LaunchMON work got fixed in SLURM.
func AblationDebugEvents() ([]DebugEventsRow, error) {
	var rows []DebugEventsRow
	for _, scale := range []int{16, 64, 128} {
		for _, mode := range []string{"fixed", "scaling"} {
			events := 11
			if mode == "scaling" {
				events = 11 + scale/2 // grows with node count
			}
			r, err := NewRig(RigOptions{
				Nodes: scale,
				Slurm: slurm.Config{DebugEvents: events},
			})
			if err != nil {
				return nil, err
			}
			registerNoopBE(r.Cl, "dbg_be")
			var tracing time.Duration
			err = r.RunFE(func(p *cluster.Proc) error {
				sess, err := core.LaunchAndSpawn(p, core.Options{
					Job:    rm.JobSpec{Exe: "app", Nodes: scale, TasksPerNode: 8},
					Daemon: rm.DaemonSpec{Exe: "dbg_be"},
				})
				if err != nil {
					return err
				}
				tracing, _ = sess.Timeline.Get(engine.MarkTracing)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("debug-events ablation: %w", err)
			}
			rows = append(rows, DebugEventsRow{Mode: mode, Daemons: scale, Tracing: tracing})
		}
	}
	return rows, nil
}

// PrintAblations renders all ablation results.
func PrintAblations(w io.Writer, bglRows []BGLRow, fanRows []FanoutRow, pigRows []PiggybackRow, dbgRows []DebugEventsRow) {
	fmt.Fprintln(w, "Ablation — RM cost profile (64 daemons, 8 tasks/daemon)")
	fmt.Fprintln(w, "rm           T(job)    T(daemon) tracing   total")
	for _, r := range bglRows {
		fmt.Fprintf(w, "%-12s %8.3fs %8.3fs %8.3fs %8.3fs\n", r.RM,
			r.Measured.Job.Seconds(), r.Measured.DaemonSpawn.Seconds(),
			r.Measured.Tracing.Seconds(), r.Measured.Total.Seconds())
	}
	fmt.Fprintln(w, "\nAblation — ICCL fan-out (128 daemons)")
	fmt.Fprintln(w, "fanout    setup     collective total")
	for _, r := range fanRows {
		name := fmt.Sprint(r.Fanout)
		if r.Fanout == 0 {
			name = "flat"
		}
		fmt.Fprintf(w, "%-9s %8.3fs %8.3fs %8.3fs\n", name, r.Setup.Seconds(), r.Collective.Seconds(), r.Total.Seconds())
	}
	fmt.Fprintln(w, "\nAblation — tool data piggybacking (128 daemons, 4 KiB payload)")
	for _, r := range pigRows {
		fmt.Fprintf(w, "%-12s %8.3fs\n", r.Mode, r.Total.Seconds())
	}
	fmt.Fprintln(w, "\nAblation — RM debug-event scaling (engine tracing cost)")
	fmt.Fprintln(w, "mode     daemons  tracing")
	for _, r := range dbgRows {
		fmt.Fprintf(w, "%-8s %7d %8.3fs\n", r.Mode, r.Daemons, r.Tracing.Seconds())
	}
}

// Package bench regenerates every table and figure of the paper's
// evaluation: Figure 3 (launchAndSpawn model vs measured), Figure 5
// (Jobsnap performance), Figure 6 (STAT start-up: MRNet-rsh vs LaunchMON)
// and Table 1 (O|SS APAI access times), plus the ablation studies listed
// in DESIGN.md. Each generator builds a fresh simulated cluster per data
// point, so rows are independent and deterministic.
package bench

import (
	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/dpcl"
	"launchmon/internal/engine"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/rsh"
	"launchmon/internal/tbon"
	"launchmon/internal/tools/jobsnap"
	"launchmon/internal/tools/oss"
	"launchmon/internal/tools/stat"
	"launchmon/internal/vtime"
)

// Rig is one experiment environment: a booted cluster with the RM,
// LaunchMON, the rsh substrate, DPCL and all tools installed.
type Rig struct {
	Sim *vtime.Sim
	Cl  *cluster.Cluster
	Mgr rm.Manager
	Rsh *rsh.Service
	Dpc *dpcl.Service
}

// RigOptions parameterize environment construction.
type RigOptions struct {
	Nodes    int
	MaxProcs int // 0 = default (front-end process table size)
	Slurm    slurm.Config
	Rsh      rsh.Config
	Tbon     tbon.Config
	Engine   engine.Config
	// Lean skips the per-node system services the launch path does not
	// need (sshd, dpcld) and the tool registrations, leaving only the RM
	// and LaunchMON. The full rig spawns two parked system processes per
	// node, which dominates host memory at the million-node scale of
	// LaunchMillion; Rig.Rsh and Rig.Dpc are nil on a lean rig.
	Lean bool
}

// NewRig boots the environment. It must be called before Sim.Run; run
// experiment bodies with Rig.RunFE.
func NewRig(o RigOptions) (*Rig, error) {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: o.Nodes, MaxProcs: o.MaxProcs})
	if err != nil {
		return nil, err
	}
	mgr, err := slurm.Install(cl, o.Slurm)
	if err != nil {
		return nil, err
	}
	if o.Lean {
		core.SetupWithEngineConfig(cl, mgr, o.Engine)
		return &Rig{Sim: sim, Cl: cl, Mgr: mgr}, nil
	}
	svc, err := rsh.Install(cl, o.Rsh)
	if err != nil {
		return nil, err
	}
	dsvc, err := dpcl.Install(cl, dpcl.Config{})
	if err != nil {
		return nil, err
	}
	core.SetupWithEngineConfig(cl, mgr, o.Engine)
	jobsnap.Install(cl)
	stat.Install(cl, o.Tbon)
	oss.Install(cl)
	return &Rig{Sim: sim, Cl: cl, Mgr: mgr, Rsh: svc, Dpc: dsvc}, nil
}

// RunFE executes fn as a tool front-end process and drives the simulation
// to completion, returning fn's error.
func (r *Rig) RunFE(fn func(p *cluster.Proc) error) error {
	var ferr error
	r.Sim.Go("bench-fe-boot", func() {
		if _, err := r.Cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "bench_fe", Main: func(p *cluster.Proc) {
			ferr = fn(p)
		}}); err != nil {
			ferr = err
		}
	})
	r.Sim.Run()
	return ferr
}

// registerNoopBE registers a minimal LaunchMON back-end daemon used by the
// launch benchmarks (BEInit then exit, like a tool that only needs the
// session up).
func registerNoopBE(cl *cluster.Cluster, exe string) {
	cl.Register(exe, func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		be.Finalize()
	})
}

package bench

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/engine"
	"launchmon/internal/obs"
	"launchmon/internal/rm"
)

// Observability ablation riders of the launch-pipeline sweep
// (LaunchPipeOpts.Obs): every pipeline/retention row gets a second
// identical launch with Options.Obs = ObsOn, and the harvested metrics
// feed two wire-byte invariants plus the virtual-time drift bound —
// enabling the plane must never change what flows over the seed links,
// and its only time cost (the harvest folds) must stay within 2% of the
// obs-off time-to-ready.

// launchPipeObsBE is the obs pass's back-end daemon: after init it
// contributes one 8-byte word to a sum reduction (the K-independence
// probe — the tree-combined result reaching the FE stays 8 bytes no
// matter how many daemons contributed) and finalizes, which pushes the
// end-of-session metrics harvest.
func launchPipeObsBE(p *cluster.Proc) {
	be, err := core.BEInit(p)
	if err != nil {
		return
	}
	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], 1)
	be.Collective().Reduce(word[:], "sum")
	be.Finalize()
}

// measureLaunchPipeObs reruns one sweep row with observability on and
// fills the row's Obs* fields from the session's harvested metrics.
func measureLaunchPipeObs(row *LaunchPipeRow, k int, cfg launchPipeConfig, o LaunchPipeOpts) error {
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return err
	}
	r.Cl.Register("lp_obs_be", launchPipeObsBE)
	return r.RunFE(func(p *cluster.Proc) error {
		t0 := p.Sim().Now()
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: o.TasksPerNode},
			Daemon:     rm.DaemonSpec{Exe: "lp_obs_be"},
			ICCLFanout: o.Fanout,
			SeedMode:   cfg.seed,
			TableMode:  cfg.table,
			Obs:        core.ObsOn,
		})
		if err != nil {
			return err
		}
		row.ObsReady = p.Sim().Now() - t0
		if _, err := sess.Reduce(); err != nil {
			return err
		}
		snap, err := sess.MetricsSnapshot()
		if err != nil {
			return err
		}
		row.SeedSrcB = snap.Gauges["seed.src.bytes"]
		row.SeedLinkMaxB = snap.Gauges["seed.link.bytes.max"]
		row.ReduceFEB = snap.Counters["coll.reduce.fe.rx.bytes"]
		if row.Ready > 0 {
			row.ObsDriftPct = 100 * math.Abs(row.ObsReady.Seconds()-row.Ready.Seconds()) / row.Ready.Seconds()
		}
		return nil
	})
}

// CheckObsInvariants enforces the observability acceptance bounds over an
// obs-enabled launch-pipeline sweep (LaunchPipeOpts.Obs):
//
//  1. Per-link seed bytes under rank-sliced routing: the busiest seed
//     link carries O(table/K · subtree) — at most the root slice divided
//     by the fanout, within framing slack. Full-copy retention must show
//     the contrast (every link carries the whole table).
//  2. Filtered-reduce FE bytes are K-independent: the bytes landing on
//     the FE link for a sum reduction are identical at every scale.
//  3. Virtual-time drift: enabling the plane moves time-to-ready by at
//     most 2% (the harvest folds are its only virtual-time cost).
func CheckObsInvariants(rows []LaunchPipeRow, fanout int) error {
	if fanout <= 0 {
		fanout = 32
	}
	var reduceSeen bool
	var reduceFEB uint64
	for _, r := range rows {
		if r.ObsReady == 0 {
			return fmt.Errorf("obs invariants: row %s/%s K=%d has no obs pass", r.Mode, r.Table, r.Daemons)
		}
		if r.ObsDriftPct > 2.0 {
			return fmt.Errorf("obs invariants: %s/%s K=%d: obs-on time-to-ready drifts %.2f%% (> 2%%) from obs-off (%v vs %v)",
				r.Mode, r.Table, r.Daemons, r.ObsDriftPct, r.ObsReady, r.Ready)
		}
		if r.Mode == core.SeedCutThrough.String() {
			if r.SeedSrcB == 0 || r.SeedLinkMaxB == 0 {
				return fmt.Errorf("obs invariants: %s/%s K=%d: seed wire metrics missing (src=%d link-max=%d)",
					r.Mode, r.Table, r.Daemons, r.SeedSrcB, r.SeedLinkMaxB)
			}
			if r.Table == core.TableSliced.String() {
				// Slack covers per-chunk framing, the FEData frame and the
				// end marker, all forwarded on every link regardless of slice.
				bound := 2*r.SeedSrcB/uint64(fanout) + 4096
				if r.SeedLinkMaxB > bound {
					return fmt.Errorf("obs invariants: sliced K=%d: busiest seed link carried %d B > bound %d B (src %d B / fanout %d)",
						r.Daemons, r.SeedLinkMaxB, bound, r.SeedSrcB, fanout)
				}
			} else if r.SeedLinkMaxB < r.SeedSrcB {
				return fmt.Errorf("obs invariants: full-copy K=%d: busiest seed link carried %d B < table %d B (full retention must relay everything everywhere)",
					r.Daemons, r.SeedLinkMaxB, r.SeedSrcB)
			}
		}
		if !reduceSeen {
			reduceSeen, reduceFEB = true, r.ReduceFEB
		} else if r.ReduceFEB != reduceFEB {
			return fmt.Errorf("obs invariants: reduce FE bytes not K-independent: %d B vs %d B (%s/%s K=%d)",
				r.ReduceFEB, reduceFEB, r.Mode, r.Table, r.Daemons)
		}
	}
	if reduceSeen && reduceFEB == 0 {
		return fmt.Errorf("obs invariants: reduce FE byte counter never fired")
	}
	return nil
}

// PrintLaunchObs renders the observability rider columns of an
// obs-enabled launch-pipeline sweep.
func PrintLaunchObs(w io.Writer, rows []LaunchPipeRow) {
	fmt.Fprintln(w, "Observability rider (obs-on second pass per row; wire-byte invariants + drift bound)")
	fmt.Fprintln(w, "mode           table   daemons  ready-obs  drift%%  seed-src-B  link-max-B  reduce-fe-B")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-7s %7d %9.3fs %6.2f %11d %11d %12d\n",
			r.Mode, r.Table, r.Daemons, r.ObsReady.Seconds(), r.ObsDriftPct, r.SeedSrcB, r.SeedLinkMaxB, r.ReduceFEB)
	}
}

// TraceResult summarizes one traced launch (lmonbench -trace).
type TraceResult struct {
	Daemons    int
	Spans      int
	Instants   int
	TraceBytes int
	Metrics    obs.Snapshot
}

// TraceLaunch runs one obs-on launch at K daemons on a lean rig, writes
// the session's Chrome/Perfetto trace-event JSON to w, and verifies —
// before writing — that the exported spans reproduce the monotone launch
// mark chains (engine chain e0…e6,e11 and handshake chain e5,e7…e11).
func TraceLaunch(k, fanout int, w io.Writer) (TraceResult, error) {
	res := TraceResult{Daemons: k}
	if fanout <= 0 {
		fanout = 32
	}
	r, err := NewRig(RigOptions{Nodes: k, Lean: true})
	if err != nil {
		return res, err
	}
	registerNoopBE(r.Cl, "trace_be")
	err = r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "trace_be"},
			ICCLFanout: fanout,
			Obs:        core.ObsOn,
		})
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := sess.WriteTrace(&buf); err != nil {
			return err
		}
		spans, instants, err := verifyTrace(buf.Bytes())
		if err != nil {
			return err
		}
		snap, err := sess.MetricsSnapshot()
		if err != nil {
			return err
		}
		res.Spans, res.Instants, res.TraceBytes, res.Metrics = spans, instants, buf.Len(), snap
		_, err = w.Write(buf.Bytes())
		return err
	})
	return res, err
}

// traceEvent is the subset of the Chrome trace-event schema the verifier
// reads back.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

// launchChains are the monotone mark chains a BE-only launch must
// reproduce as spans ("a..b" per adjacent pair) in the exported trace.
var launchChains = [][]string{
	{engine.MarkE0, engine.MarkE1, engine.MarkE2, engine.MarkE3, engine.MarkE4,
		engine.MarkE5, engine.MarkE6, engine.MarkE11},
	{engine.MarkE5, engine.MarkE7, engine.MarkE8, engine.MarkE9, engine.MarkE10, engine.MarkE11},
}

// verifyTrace parses an exported trace and checks it is a loadable
// trace-event array whose chain spans exist, never run backward, and
// tile: each span of a chain ends exactly where the next one begins.
func verifyTrace(data []byte) (spans, instants int, err error) {
	var events []traceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return 0, 0, fmt.Errorf("trace is not a JSON event array: %w", err)
	}
	if len(events) == 0 || events[0].Ph != "M" {
		return 0, 0, fmt.Errorf("trace must open with metadata events, got %+v", events[:min(1, len(events))])
	}
	byName := map[string]traceEvent{}
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur < 0 {
				return 0, 0, fmt.Errorf("span %q has negative duration %f", ev.Name, ev.Dur)
			}
			byName[ev.Name] = ev
		case "i":
			instants++
		}
	}
	const eps = 1e-6 // µs; timestamps are exact virtual-time divisions
	for _, chain := range launchChains {
		var prev *traceEvent
		for i := 0; i+1 < len(chain); i++ {
			name := chain[i] + ".." + chain[i+1]
			ev, ok := byName[name]
			if !ok {
				return 0, 0, fmt.Errorf("trace is missing chain span %q", name)
			}
			if prev != nil && math.Abs(prev.Ts+prev.Dur-ev.Ts) > eps {
				return 0, 0, fmt.Errorf("chain spans %q and %q do not tile (%f+%f vs %f)",
					prev.Name, name, prev.Ts, prev.Dur, ev.Ts)
			}
			cp := ev
			prev = &cp
		}
	}
	return spans, instants, nil
}

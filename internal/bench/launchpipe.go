package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
)

// Launch-pipeline ablation: time-to-DaemonsSpawned under the serialized
// store-and-forward seed pipeline (the paper's Figure 2 shape: full-table
// buffering at the FE and again at the master, monolithic broadcast after
// bootstrap) versus the cut-through pipeline (chunks relayed FE→master as
// they arrive from the engine and streamed through the still-forming ICCL
// tree). Both runs verify that every rank reassembled a byte-identical
// RPDTAB — the pipeline must never trade correctness for overlap.

// LaunchPipeRow is one mode × scale measurement.
type LaunchPipeRow struct {
	Mode    string        // "cut-through" or "store-forward"
	Daemons int           // K daemons (one per node)
	Tasks   int           // application tasks
	Ready   time.Duration // LaunchAndSpawn call → return (e0→e11, the DaemonsSpawned transition)
	TableOK bool          // every rank's RPDTAB byte-identical to the FE's
}

// LaunchScales are the daemon counts of the pipeline sweep.
var LaunchScales = []int{64, 1024, 16384}

// LaunchPipeOpts parameterize the ablation.
type LaunchPipeOpts struct {
	// TasksPerNode sizes the RPDTAB (default 1, like the other 16384-scale
	// sweeps: every simulated daemon holds the full table, so task count
	// is bounded by host memory, not virtual time).
	TasksPerNode int
	Fanout       int // ICCL tree fanout (default 32)
}

func (o LaunchPipeOpts) withDefaults() LaunchPipeOpts {
	if o.TasksPerNode == 0 {
		o.TasksPerNode = 1
	}
	if o.Fanout == 0 {
		o.Fanout = 32
	}
	return o
}

// LaunchPipeline measures both pipelines at each scale.
func LaunchPipeline(opts LaunchPipeOpts, scales []int) ([]LaunchPipeRow, error) {
	o := opts.withDefaults()
	rows := make([]LaunchPipeRow, 0, 2*len(scales))
	for _, k := range scales {
		for _, mode := range []core.SeedMode{core.SeedStoreForward, core.SeedCutThrough} {
			row, err := measureLaunchPipe(k, mode, o)
			if err != nil {
				return nil, fmt.Errorf("launch pipeline %v at K=%d: %w", mode, k, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// tableHash fingerprints a daemon's reassembled seed for the
// byte-identical check.
func tableHash(encoded []byte) []byte {
	h := fnv.New64a()
	h.Write(encoded)
	return h.Sum(nil)
}

func measureLaunchPipe(k int, mode core.SeedMode, o LaunchPipeOpts) (LaunchPipeRow, error) {
	row := LaunchPipeRow{Mode: mode.String(), Daemons: k, Tasks: k * o.TasksPerNode}
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return row, err
	}
	// Every daemon gathers its table fingerprint to the FE over the
	// collective plane — after the launch, so the verification does not
	// perturb the time-to-ready measurement.
	r.Cl.Register("lp_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		be.Collective().Gather(tableHash(be.Proctab().Encode()))
		be.Finalize()
	})
	err = r.RunFE(func(p *cluster.Proc) error {
		t0 := p.Sim().Now()
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: o.TasksPerNode},
			Daemon:     rm.DaemonSpec{Exe: "lp_be"},
			ICCLFanout: o.Fanout,
			SeedMode:   mode,
		})
		if err != nil {
			return err
		}
		row.Ready = p.Sim().Now() - t0
		hashes, err := sess.Gather()
		if err != nil {
			return err
		}
		want := string(tableHash(sess.Proctab().Encode()))
		row.TableOK = len(hashes) == k
		for _, h := range hashes {
			if string(h) != want {
				row.TableOK = false
			}
		}
		return nil
	})
	return row, err
}

// PrintLaunchPipeline renders the comparison.
func PrintLaunchPipeline(w io.Writer, rows []LaunchPipeRow) {
	fmt.Fprintln(w, "Ablation — launch pipeline (time to DaemonsSpawned, byte-identical RPDTAB at every rank)")
	fmt.Fprintln(w, "mode           daemons    tasks   ready      tables")
	for _, r := range rows {
		ok := "identical"
		if !r.TableOK {
			ok = "MISMATCH"
		}
		fmt.Fprintf(w, "%-14s %7d %8d %8.3fs  %s\n", r.Mode, r.Daemons, r.Tasks, r.Ready.Seconds(), ok)
	}
}

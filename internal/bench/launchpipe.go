package bench

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/iccl"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
)

// Launch-pipeline ablation: time-to-DaemonsSpawned under the serialized
// store-and-forward seed pipeline (the paper's Figure 2 shape: full-table
// buffering at the FE and again at the master, monolithic broadcast after
// bootstrap) versus the cut-through pipeline (chunks relayed FE→master as
// they arrive from the engine and streamed through the still-forming ICCL
// tree), and — under cut-through — full-table retention at every daemon
// versus rank-sliced retention with one shared index (the memory model of
// DESIGN.md). Every run verifies that the union of the daemons' rank
// slices is byte-identical to the FE's table — the pipeline must never
// trade correctness for overlap, and slicing must never lose an entry.

// LaunchPipeRow is one pipeline × retention × scale measurement.
type LaunchPipeRow struct {
	Mode    string        // seed pipeline: "cut-through" or "store-forward"
	Table   string        // RPDTAB retention: "full" or "sliced"
	Daemons int           // K daemons (one per node)
	Tasks   int           // application tasks
	Ready   time.Duration // LaunchAndSpawn call → return (e0→e11, the DaemonsSpawned transition)
	TableOK bool          // slice union (and, under full retention, every rank's copy) matches the FE table

	// Peak RPDTAB bytes per pipeline role — the memory-model headline:
	// sliced retention keeps every daemon's private footprint at
	// O(K/daemons), with the full table living once per session in the
	// shared index, where full retention is O(K) per daemon.
	MemEngine   int // largest encoded chunk the engine buffers (O(chunk), both pipelines)
	MemFE       int // FE table copy
	MemIndex    int // session-shared immutable index (once per session; 0 under full retention)
	MemMaster   int // rank 0
	MemInterior int // max over daemons with ICCL children (0 when the tree is flat)
	MemLeaf     int // max over childless daemons

	// Observability rider (LaunchPipeOpts.Obs): a second identical launch
	// with Options.Obs = ObsOn, plus one sum reduction as the
	// K-independence probe. Zero when the rider is off.
	ObsReady     time.Duration `json:",omitempty"` // obs-on time-to-ready
	ObsDriftPct  float64       `json:",omitempty"` // |obs-on − obs-off| / obs-off, percent
	SeedSrcB     uint64        `json:",omitempty"` // seed.src.bytes: seed body bytes injected at the root
	SeedLinkMaxB uint64        `json:",omitempty"` // seed.link.bytes.max: busiest seed link, fabric-wide
	ReduceFEB    uint64        `json:",omitempty"` // coll.reduce.fe.rx.bytes: reduce bytes landing on the FE link

	// Simulator host-cost columns (LaunchMillion only): the event-driven
	// simnet budget that lets K=2^20 fit a 16 GB runner. GoroutinesPeak is
	// vtime.Sim.PeakLive over the whole run — every simulated process main
	// plus every transient helper the fabric ever parked at once;
	// GoroutinesPerNode normalizes by K (the ≤1.25 acceptance bound).
	// RSSPeakB is the host process's peak resident set (VmHWM), a
	// machine-dependent observable: report it, never pin it.
	GoroutinesPeak    int     `json:",omitempty"`
	GoroutinesPerNode float64 `json:",omitempty"`
	RSSPeakB          uint64  `json:",omitempty"`
}

// LaunchScales are the daemon counts of the pipeline sweep.
var LaunchScales = []int{64, 1024, 16384}

// LaunchPipeOpts parameterize the ablation.
type LaunchPipeOpts struct {
	// TasksPerNode sizes the RPDTAB (default 1, like the other 16384-scale
	// sweeps: table memory at the FE bounds task count, not virtual time).
	TasksPerNode int
	Fanout       int // ICCL tree fanout (default 32)
	// Obs adds the observability rider: every row is measured a second
	// time with Options.Obs = ObsOn, populating the Obs*/Seed*/Reduce*
	// columns (checked by CheckObsInvariants).
	Obs bool
}

func (o LaunchPipeOpts) withDefaults() LaunchPipeOpts {
	if o.TasksPerNode == 0 {
		o.TasksPerNode = 1
	}
	if o.Fanout == 0 {
		o.Fanout = 32
	}
	return o
}

// launchPipeConfig is one pipeline/retention combination of the sweep.
type launchPipeConfig struct {
	seed  core.SeedMode
	table core.TableMode
}

// launchPipeConfigs are the three measured combinations: the serialized
// baseline, cut-through with the full-copy ablation, and cut-through with
// rank-sliced retention (the default). Store-forward ignores TableMode,
// so its sliced variant would duplicate the full row.
var launchPipeConfigs = []launchPipeConfig{
	{core.SeedStoreForward, core.TableFull},
	{core.SeedCutThrough, core.TableFull},
	{core.SeedCutThrough, core.TableSliced},
}

// LaunchPipeline measures every pipeline/retention combination at each
// scale.
func LaunchPipeline(opts LaunchPipeOpts, scales []int) ([]LaunchPipeRow, error) {
	o := opts.withDefaults()
	rows := make([]LaunchPipeRow, 0, len(launchPipeConfigs)*len(scales))
	for _, k := range scales {
		for _, cfg := range launchPipeConfigs {
			row, err := measureLaunchPipe(k, cfg, o)
			if err != nil {
				return nil, fmt.Errorf("launch pipeline %v/%v at K=%d: %w", cfg.seed, cfg.table, k, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// tableHash fingerprints a daemon's reassembled seed for the
// byte-identical check.
func tableHash(encoded []byte) []byte {
	h := fnv.New64a()
	h.Write(encoded)
	return h.Sum(nil)
}

// launchPipeBE is the ablation's back-end daemon: it gathers its own rank
// slice (every retention mode has one) prefixed by a fingerprint of its
// full table copy — empty under sliced retention, where no such copy
// exists and materializing one through Proctab would defeat the
// measurement.
func launchPipeBE(p *cluster.Proc) {
	be, err := core.BEInit(p)
	if err != nil {
		return
	}
	var full []byte
	if p.Env(core.EnvTableMode) != core.TableSliced.String() {
		full = tableHash(be.Proctab().Encode())
	}
	payload := lmonp.AppendBytes(nil, full)
	payload = lmonp.AppendBytes(payload, be.MyProctab().Encode())
	be.Collective().Gather(payload)
	be.Finalize()
}

// checkLaunchTables verifies the gathered contributions against the FE's
// table: the union of the per-daemon rank slices must be byte-identical
// to the full table, and under full retention every daemon's own copy
// must fingerprint like the FE's.
func checkLaunchTables(contribs [][]byte, feTab proctab.Table, table core.TableMode) bool {
	want := append(proctab.Table(nil), feTab...)
	want.SortByRank()
	fullHash := string(tableHash(feTab.Encode()))
	var union proctab.Table
	for _, raw := range contribs {
		rd := lmonp.NewReader(raw)
		full, err := rd.Bytes()
		if err != nil {
			return false
		}
		if table == core.TableFull && string(full) != fullHash {
			return false
		}
		sliceRaw, err := rd.Bytes()
		if err != nil {
			return false
		}
		slice, err := proctab.Decode(sliceRaw)
		if err != nil {
			return false
		}
		union = append(union, slice...)
	}
	union.SortByRank()
	return bytes.Equal(union.Encode(), want.Encode())
}

// roleMem splits the gathered per-daemon table footprints by tree role.
func roleMem(row *LaunchPipeRow, infos []core.DaemonInfo, fanout int) {
	size := len(infos)
	eff := fanout
	if eff <= 0 {
		eff = size // flat: rank 0 parents everyone
	}
	for _, d := range infos {
		switch {
		case d.Rank == 0:
			row.MemMaster = max(row.MemMaster, d.PeakBytes)
		case len(iccl.Children(d.Rank, size, eff)) > 0:
			row.MemInterior = max(row.MemInterior, d.PeakBytes)
		default:
			row.MemLeaf = max(row.MemLeaf, d.PeakBytes)
		}
	}
}

func measureLaunchPipe(k int, cfg launchPipeConfig, o LaunchPipeOpts) (LaunchPipeRow, error) {
	row := LaunchPipeRow{
		Mode:    cfg.seed.String(),
		Table:   cfg.table.String(),
		Daemons: k,
		Tasks:   k * o.TasksPerNode,
	}
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return row, err
	}
	// Every daemon gathers its rank slice (plus, under full retention, a
	// full-copy fingerprint) to the FE over the collective plane — after
	// the launch, so verification does not perturb the time-to-ready
	// measurement.
	r.Cl.Register("lp_be", launchPipeBE)
	err = r.RunFE(func(p *cluster.Proc) error {
		t0 := p.Sim().Now()
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: o.TasksPerNode},
			Daemon:     rm.DaemonSpec{Exe: "lp_be"},
			ICCLFanout: o.Fanout,
			SeedMode:   cfg.seed,
			TableMode:  cfg.table,
		})
		if err != nil {
			return err
		}
		row.Ready = p.Sim().Now() - t0
		contribs, err := sess.Gather()
		if err != nil {
			return err
		}
		row.TableOK = len(contribs) == k && checkLaunchTables(contribs, sess.Proctab(), cfg.table)
		for _, chunk := range sess.Proctab().EncodeChunks(0) {
			row.MemEngine = max(row.MemEngine, len(chunk))
		}
		row.MemFE = sess.Proctab().MemBytes()
		if cfg.seed == core.SeedCutThrough && cfg.table == core.TableSliced {
			sorted := append(proctab.Table(nil), sess.Proctab()...)
			sorted.SortByRank()
			idx, err := proctab.BuildIndex(sorted)
			if err != nil {
				return err
			}
			row.MemIndex = idx.MemBytes()
		}
		roleMem(&row, sess.Daemons(), o.Fanout)
		return nil
	})
	if err == nil && o.Obs {
		err = measureLaunchPipeObs(&row, k, cfg, o)
	}
	return row, err
}

// PrintLaunchPipeline renders the comparison.
func PrintLaunchPipeline(w io.Writer, rows []LaunchPipeRow) {
	fmt.Fprintln(w, "Ablation — launch pipeline (time to DaemonsSpawned, slice union byte-identical at the FE)")
	fmt.Fprintln(w, "mode           table   daemons    tasks   ready      master-B  interior-B  leaf-B  tables")
	for _, r := range rows {
		ok := "identical"
		if !r.TableOK {
			ok = "MISMATCH"
		}
		fmt.Fprintf(w, "%-14s %-7s %7d %8d %8.3fs %9d %11d %7d  %s\n",
			r.Mode, r.Table, r.Daemons, r.Tasks, r.Ready.Seconds(), r.MemMaster, r.MemInterior, r.MemLeaf, ok)
	}
}

// PrintLaunchMem renders the full per-role peak-memory breakdown of a
// launch sweep (lmonbench -mem).
func PrintLaunchMem(w io.Writer, rows []LaunchPipeRow) {
	fmt.Fprintln(w, "Peak RPDTAB bytes per role (index is session-shared, counted once)")
	fmt.Fprintln(w, "mode           table   daemons  engine-B      fe-B   index-B  master-B  interior-B  leaf-B")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-7s %7d %9d %9d %9d %9d %11d %7d\n",
			r.Mode, r.Table, r.Daemons, r.MemEngine, r.MemFE, r.MemIndex, r.MemMaster, r.MemInterior, r.MemLeaf)
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/tbon"
	"launchmon/internal/tools/stat"
)

// Fig6Row is one STAT start-up measurement: MRNet's native rsh launch
// versus the LaunchMON integration, 1-deep topology.
type Fig6Row struct {
	Daemons       int
	Tasks         int
	MRNet         time.Duration // native rsh launch+connect; 0 when failed
	MRNetFailed   bool
	MRNetEstimate time.Duration // linear extrapolation when failed
	LaunchMON     time.Duration
}

// Figure6Scales are the daemon counts of the STAT start-up experiment
// (8 tasks per daemon; the rsh path fails at 512 on a 512-process front
// end, as on Atlas).
var Figure6Scales = []int{4, 16, 64, 128, 256, 512}

// figure6FrontEndProcLimit models Atlas's per-user process limit on the
// front-end node: the resident rsh clients exhaust it at 512 daemons.
const figure6FrontEndProcLimit = 512

// Figure6 regenerates the STAT start-up comparison.
func Figure6() ([]Fig6Row, error) {
	return figure6At(Figure6Scales, figure6FrontEndProcLimit)
}

// Figure6Small is the fast variant for unit tests.
func Figure6Small() ([]Fig6Row, error) {
	return figure6At([]int{4, 8, 16}, 12)
}

func figure6At(scales []int, feLimit int) ([]Fig6Row, error) {
	const tasksPerDaemon = 8
	rows := make([]Fig6Row, 0, len(scales))
	var slope float64 // seconds per daemon from successful rsh runs
	for _, n := range scales {
		row := Fig6Row{Daemons: n, Tasks: n * tasksPerDaemon}

		// LaunchMON path.
		lm, err := measureSTATLaunchMON(n, tasksPerDaemon)
		if err != nil {
			return nil, fmt.Errorf("figure6 launchmon at %d: %w", n, err)
		}
		row.LaunchMON = lm

		// Native MRNet (rsh) path on a fresh rig with the front-end
		// process limit in force.
		mr, failed, err := measureSTATNative(n, tasksPerDaemon, feLimit)
		if err != nil {
			return nil, fmt.Errorf("figure6 native at %d: %w", n, err)
		}
		row.MRNet, row.MRNetFailed = mr, failed
		if !failed && n > 0 {
			slope = mr.Seconds() / float64(n)
		}
		if failed {
			row.MRNetEstimate = time.Duration(slope * float64(n) * float64(time.Second))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureSTATLaunchMON(daemons, tasksPerDaemon int) (time.Duration, error) {
	r, err := NewRig(RigOptions{Nodes: daemons})
	if err != nil {
		return 0, err
	}
	var startup time.Duration
	err = r.RunFE(func(p *cluster.Proc) error {
		j, err := r.Mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: daemons, TasksPerNode: tasksPerDaemon})
		if err != nil {
			return err
		}
		p.Sim().Sleep(5 * time.Second)
		inst, err := stat.LaunchWithLaunchMON(p, j.ID(), tbon.Config{})
		if err != nil {
			return err
		}
		defer inst.Close()
		startup = inst.StartupTime
		// Sanity: the overlay must actually work after startup.
		tree, err := inst.Sample()
		if err != nil {
			return err
		}
		if tree.Tasks() != daemons*tasksPerDaemon {
			return fmt.Errorf("sampled %d tasks, want %d", tree.Tasks(), daemons*tasksPerDaemon)
		}
		return nil
	})
	return startup, err
}

// measureSTATNative returns the rsh-based startup time, or failed=true
// when the front end could not fork all rsh clients (the paper's 512-node
// failure).
func measureSTATNative(daemons, tasksPerDaemon, feLimit int) (time.Duration, bool, error) {
	r, err := NewRig(RigOptions{Nodes: daemons, MaxProcs: feLimit})
	if err != nil {
		return 0, false, err
	}
	var startup time.Duration
	failed := false
	err = r.RunFE(func(p *cluster.Proc) error {
		j, err := r.Mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: daemons, TasksPerNode: tasksPerDaemon})
		if err != nil {
			return err
		}
		p.Sim().Sleep(5 * time.Second)
		tab := j.(interface{ Proctab() proctab.Table }).Proctab()
		ranks := map[string][]int{}
		for _, d := range tab {
			ranks[d.Host] = append(ranks[d.Host], d.Rank)
		}
		inst, err := stat.LaunchWithRsh(p, r.Rsh, tab.Hosts(), ranks, tbon.Config{})
		if err != nil {
			failed = true
			return nil // expected at the largest scale
		}
		defer inst.Close()
		startup = inst.StartupTime
		return nil
	})
	return startup, failed, err
}

// PrintFigure6 renders the comparison like the paper's chart.
func PrintFigure6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6 — STAT start-up: MRNet(rsh) vs LaunchMON, 1-deep (8 tasks/daemon)")
	fmt.Fprintln(w, "daemons  tasks   MRNet-rsh        LaunchMON")
	for _, r := range rows {
		mr := fmt.Sprintf("%9.3fs", r.MRNet.Seconds())
		if r.MRNetFailed {
			mr = fmt.Sprintf("FAILED(~%.0fs est)", r.MRNetEstimate.Seconds())
		}
		fmt.Fprintf(w, "%7d %6d %-16s %9.3fs\n", r.Daemons, r.Tasks, mr, r.LaunchMON.Seconds())
	}
}

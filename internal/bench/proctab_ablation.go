package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
)

// ProctabRow compares RPDTAB distribution mechanisms.
type ProctabRow struct {
	Mode     string
	Daemons  int
	Duration time.Duration
}

// AblationProctab contrasts LaunchMON's RPDTAB broadcast over the ICCL
// tree against the mechanism STAT used before the integration (paper
// §5.2): every daemon independently reading the table from a single
// shared file on the front end, which serializes at the file server.
func AblationProctab() ([]ProctabRow, error) {
	var rows []ProctabRow
	for _, n := range []int{64, 256} {
		bcast, err := measureProctabBroadcast(n)
		if err != nil {
			return nil, fmt.Errorf("proctab ablation bcast at %d: %w", n, err)
		}
		rows = append(rows, ProctabRow{Mode: "iccl-broadcast", Daemons: n, Duration: bcast})
		file, err := measureProctabSharedFile(n)
		if err != nil {
			return nil, fmt.Errorf("proctab ablation file at %d: %w", n, err)
		}
		rows = append(rows, ProctabRow{Mode: "shared-file", Daemons: n, Duration: file})
	}
	return rows, nil
}

// measureProctabBroadcast times the RPDTAB reaching every daemon via the
// ICCL broadcast: the daemons synchronize with a barrier, the master
// stamps the clock, the table is broadcast, and a closing barrier bounds
// the last delivery.
func measureProctabBroadcast(n int) (time.Duration, error) {
	r, err := NewRig(RigOptions{Nodes: n})
	if err != nil {
		return 0, err
	}
	r.Cl.Register("pt_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		if err := be.Barrier(); err != nil {
			return
		}
		start := p.Sim().Now()
		var seed []byte
		if be.AmIMaster() {
			seed = be.Proctab().Encode()
		}
		if _, err := be.Broadcast(seed); err != nil {
			return
		}
		if err := be.Barrier(); err != nil {
			return
		}
		if be.AmIMaster() {
			be.SendToFE([]byte(fmt.Sprint(int64(p.Sim().Now() - start))))
		}
	})
	return runTimedDistribution(r, n, "pt_be")
}

// runTimedDistribution launches the session and reads the master-reported
// distribution duration.
func runTimedDistribution(r *Rig, n int, exe string) (time.Duration, error) {
	var dur time.Duration
	err := r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: n, TasksPerNode: 8},
			Daemon: rm.DaemonSpec{Exe: exe},
		})
		if err != nil {
			return err
		}
		raw, err := sess.RecvFromBE()
		if err != nil {
			return err
		}
		var ns int64
		if _, err := fmt.Sscanf(string(raw), "%d", &ns); err != nil {
			return err
		}
		dur = time.Duration(ns)
		return nil
	})
	return dur, err
}

// measureProctabSharedFile times every daemon fetching the table from one
// front-end "file server" (reads serialize at the server, the old STAT
// mechanism's bottleneck).
func measureProctabSharedFile(n int) (time.Duration, error) {
	r, err := NewRig(RigOptions{Nodes: n})
	if err != nil {
		return 0, err
	}
	const fileServerPort = 9999
	const perReadCost = 2 * time.Millisecond // open+read+close of the shared file
	r.Cl.Register("ptf_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		if err := be.Barrier(); err != nil {
			return
		}
		start := p.Sim().Now()
		conn, err := p.Host().Dial(simnet.Addr{Host: "fe0", Port: fileServerPort})
		if err != nil {
			return
		}
		if _, err := lmonp.ReadFrame(conn); err != nil {
			return
		}
		conn.Close()
		if err := be.Barrier(); err != nil {
			return
		}
		if be.AmIMaster() {
			be.SendToFE([]byte(fmt.Sprint(int64(p.Sim().Now() - start))))
		}
	})
	// The "NFS server" serving the shared proctab file is a system service
	// present from boot; its serialized per-read cost is the mechanism
	// under test.
	if _, err := r.Cl.FrontEnd().SpawnSystemProc(cluster.Spec{Exe: "nfsd", Main: func(p *cluster.Proc) {
		l, err := p.Host().Listen(fileServerPort)
		if err != nil {
			return
		}
		blob := make([]byte, 40+16*n) // proctab-file-sized payload
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			p.Compute(perReadCost) // server-side read serialization
			lmonp.WriteFrame(conn, blob)
			conn.Close()
		}
	}}); err != nil {
		return 0, err
	}
	return runTimedDistribution(r, n, "ptf_be")
}

// PrintProctabAblation renders the comparison.
func PrintProctabAblation(w io.Writer, rows []ProctabRow) {
	fmt.Fprintln(w, "Ablation — RPDTAB distribution (8 tasks/daemon)")
	fmt.Fprintln(w, "mode            daemons  time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %7d %8.3fs\n", r.Mode, r.Daemons, r.Duration.Seconds())
	}
}

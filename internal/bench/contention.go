package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// Contention ablation: N tool components multiplexing collectives on one
// session. Before concurrent tagged streams, a session's collective plane
// was lockstep — every component's request/response serialized behind
// every other's. With per-tag streams the same operations interleave on
// the shared links under the credit window. The workload is the
// query/response shape real tools have: each tool broadcasts a query and
// gathers the per-daemon responses (PayloadB bytes each), so a tool's
// round trip cannot start until its query goes down — which is exactly
// what the lockstep plane cannot overlap, while one-directional streams
// (a bare sequence of gathers) pipeline even without tags because
// daemons race ahead of the FE. Both phases run the identical set of
// collectives on a fresh rig per measurement, timed from the first query
// to the last tool's completed response at the FE:
//
//   - serialized: the lockstep plane — Session.Broadcast then
//     Session.Gather per tool, back to back, the pre-tag baseline;
//   - concurrent: Tools FE goroutines each driving its own tagged
//     BroadcastTag/GatherTag round trip, daemons running the mirror
//     goroutines.

// ContentionRow is one scale's measurements.
type ContentionRow struct {
	Daemons  int
	Tools    int // concurrent tool components on the one session
	PayloadB int // per-daemon gather contribution bytes
	Fanout   int // ICCL tree fanout
	Window   int // credit window (0 = coll.DefaultWindow)

	Serialized time.Duration // go-signal → last result, lockstep plane
	Concurrent time.Duration // go-signal → last result, tagged streams

	SerializedBytes int64 // network bytes of the serialized phase
	ConcurrentBytes int64 // network bytes of the concurrent phase

	Speedup float64 // Serialized / Concurrent
}

// ContentionScales are the daemon counts of the sweep.
var ContentionScales = []int{64, 1024, 16384}

// ContentionOpts parameterize the ablation.
type ContentionOpts struct {
	Tools    int // concurrent tool components (default 4)
	PayloadB int // per-daemon gather contribution (default 256)
	Fanout   int // tree fanout (default 32)
	Window   int // credit window (default 0 → coll.DefaultWindow)
}

func (o ContentionOpts) withDefaults() ContentionOpts {
	if o.Tools == 0 {
		o.Tools = 4
	}
	if o.PayloadB == 0 {
		o.PayloadB = 256
	}
	if o.Fanout == 0 {
		o.Fanout = 32
	}
	return o
}

// ContentionAblation measures both phases at each scale.
func ContentionAblation(opts ContentionOpts, scales []int) ([]ContentionRow, error) {
	o := opts.withDefaults()
	rows := make([]ContentionRow, 0, len(scales))
	for _, k := range scales {
		row := ContentionRow{
			Daemons: k, Tools: o.Tools, PayloadB: o.PayloadB,
			Fanout: o.Fanout, Window: o.Window,
		}
		var err error
		if row.Serialized, row.SerializedBytes, err = measureContention(k, o, false); err != nil {
			return nil, fmt.Errorf("serialized at K=%d: %w", k, err)
		}
		if row.Concurrent, row.ConcurrentBytes, err = measureContention(k, o, true); err != nil {
			return nil, fmt.Errorf("concurrent at K=%d: %w", k, err)
		}
		if row.Concurrent > 0 {
			row.Speedup = float64(row.Serialized) / float64(row.Concurrent)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// contentionTags returns tool i's (broadcast, gather) tag pair. Both
// sides derive the pair independently — tags are just agreed stream
// names, so a fixed scheme needs no coordination round.
func contentionTags(i int) (uint32, uint32) {
	base := coll.MinUserTag + uint32(2*i)
	return base, base + 1
}

// contentionQuery is the fixed query a tool broadcasts to its daemons.
var contentionQuery = []byte("query: report status")

// measureContention runs one phase: every tool performs one
// query-broadcast / response-gather round trip, serialized over the
// lockstep plane or concurrently over tagged streams.
func measureContention(k int, o ContentionOpts, tagged bool) (time.Duration, int64, error) {
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return 0, 0, err
	}
	exe := "cont_serial_be"
	if tagged {
		exe = "cont_tagged_be"
	}
	r.Cl.Register(exe, func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		dc := be.Collective()
		contrib := payloadFor(be.Rank(), o.PayloadB)
		if !tagged {
			for i := 0; i < o.Tools; i++ {
				if _, err := dc.Broadcast(); err != nil {
					return
				}
				if err := dc.Gather(contrib); err != nil {
					return
				}
			}
		} else {
			done := vtime.NewChan[error](p.Sim())
			for i := 0; i < o.Tools; i++ {
				bTag, gTag := contentionTags(i)
				p.Sim().Go(fmt.Sprintf("cont-be-tool-%d", i), func() {
					if _, err := dc.BroadcastTag(bTag); err != nil {
						done.Send(err)
						return
					}
					done.Send(dc.GatherTag(gTag, contrib))
				})
			}
			for i := 0; i < o.Tools; i++ {
				if err, _ := done.Recv(); err != nil {
					return
				}
			}
		}
		be.Finalize()
	})
	var elapsed time.Duration
	var bytes int64
	err = r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: exe},
			ICCLFanout: o.Fanout,
			CollWindow: o.Window,
		})
		if err != nil {
			return err
		}
		// One tool's round trip: the gathered responses must hold every
		// daemon's contribution.
		check := func(all [][]byte, gerr error) error {
			if gerr != nil {
				return gerr
			}
			if len(all) != k {
				return fmt.Errorf("gather returned %d of %d contributions", len(all), k)
			}
			return nil
		}
		start := p.Sim().Now()
		before := r.Cl.Net().Stats()
		if !tagged {
			for i := 0; i < o.Tools; i++ {
				if err := sess.Broadcast(contentionQuery); err != nil {
					return err
				}
				all, gerr := sess.Gather()
				if err := check(all, gerr); err != nil {
					return fmt.Errorf("tool %d: %w", i, err)
				}
			}
		} else {
			done := vtime.NewChan[error](p.Sim())
			for i := 0; i < o.Tools; i++ {
				i := i
				bTag, gTag := contentionTags(i)
				p.Sim().Go(fmt.Sprintf("cont-fe-tool-%d", i), func() {
					if err := sess.BroadcastTag(bTag, contentionQuery); err != nil {
						done.Send(fmt.Errorf("tool %d: %w", i, err))
						return
					}
					all, gerr := sess.GatherTag(gTag)
					if err := check(all, gerr); err != nil {
						done.Send(fmt.Errorf("tool %d: %w", i, err))
						return
					}
					done.Send(nil)
				})
			}
			for i := 0; i < o.Tools; i++ {
				if err, _ := done.Recv(); err != nil {
					return err
				}
			}
		}
		elapsed = p.Sim().Now() - start
		bytes = r.Cl.Net().Stats().Bytes - before.Bytes
		return nil
	})
	return elapsed, bytes, err
}

// PrintContention renders the rows.
func PrintContention(w io.Writer, rows []ContentionRow) {
	fmt.Fprintln(w, "Ablation — collective contention (lockstep serialization vs concurrent tagged streams)")
	fmt.Fprintln(w, "daemons  tools payload fanout window  serialized concurrent speedup")
	for _, r := range rows {
		win := r.Window
		if win == 0 {
			win = coll.DefaultWindow
		}
		fmt.Fprintf(w, "%7d %6d %6dB %6d %6d %10.3fs %9.3fs %6.2fx\n",
			r.Daemons, r.Tools, r.PayloadB, r.Fanout, win,
			r.Serialized.Seconds(), r.Concurrent.Seconds(), r.Speedup)
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/health"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// Failure-detection ablation: how fast does a node loss mid-session reach
// the front end as a DaemonExited callback, and what does the heartbeat
// fabric cost while nothing is failing? Two sweeps:
//
//   - detection latency vs node count (K daemons, kill the deepest-ranked
//     daemon's node; both the fail-stop sever path and the silent
//     link-drop path are measured), plus the time to the watchdog's full
//     session teardown; and
//   - heartbeat overhead vs period (messages/bytes on the wire during an
//     otherwise idle session window).

// FailureRow is one detection-latency measurement at a node count.
type FailureRow struct {
	Nodes        int
	Period       time.Duration
	Miss         int
	DetectSever  time.Duration // node killed: conns sever (fail-stop path)
	DetectSilent time.Duration // link dropped: heartbeat-miss path
	Teardown     time.Duration // node killed → SessionTornDown at the FE
}

// OverheadRow is one heartbeat-cost measurement at a period.
type OverheadRow struct {
	Nodes      int
	Period     time.Duration
	Window     time.Duration
	Messages   int64
	Bytes      int64
	MsgsPerSec float64
}

// FailureScales are the daemon counts of the detection-latency sweep.
var FailureScales = []int{64, 1024, 16384}

// OverheadPeriods are the heartbeat periods of the overhead sweep.
var OverheadPeriods = []time.Duration{
	2 * time.Second, time.Second, 500 * time.Millisecond, 200 * time.Millisecond,
}

// FailureOpts parameterize the failure ablation.
type FailureOpts struct {
	Period time.Duration // heartbeat period (default 500ms)
	Miss   int           // miss threshold (default 3)
	Fanout int           // ICCL/heartbeat tree fanout (default 32)
	Silent bool          // also measure the silent link-drop path (slower: one extra rig per scale)
}

func (o FailureOpts) withDefaults() FailureOpts {
	if o.Period == 0 {
		o.Period = 500 * time.Millisecond
	}
	if o.Miss == 0 {
		o.Miss = 3
	}
	if o.Fanout == 0 {
		o.Fanout = 32
	}
	return o
}

// FailureDetection measures detection and teardown latency for each scale.
func FailureDetection(opts FailureOpts, scales []int) ([]FailureRow, error) {
	o := opts.withDefaults()
	rows := make([]FailureRow, 0, len(scales))
	for _, k := range scales {
		row, err := measureFailure(k, o, false)
		if err != nil {
			return nil, fmt.Errorf("failure detection at K=%d: %w", k, err)
		}
		if o.Silent {
			silent, err := measureFailure(k, o, true)
			if err != nil {
				return nil, fmt.Errorf("silent failure at K=%d: %w", k, err)
			}
			row.DetectSilent = silent.DetectSilent
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// registerResidentBE registers a BE daemon that joins the session and
// parks until killed (the resident shape a monitoring tool has).
func registerResidentBE(cl *cluster.Cluster, exe string) {
	cl.Register(exe, func(p *cluster.Proc) {
		if _, err := core.BEInit(p); err != nil {
			return
		}
		vtime.NewChan[int](p.Sim()).Recv()
	})
}

// measureFailure kills (or, silent, partitions) the node of the
// deepest-ranked daemon and times the FE-side callbacks.
func measureFailure(k int, o FailureOpts, silent bool) (FailureRow, error) {
	row := FailureRow{Nodes: k, Period: o.Period, Miss: o.Miss}
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return row, err
	}
	registerResidentBE(r.Cl, "fd_be")
	err = r.RunFE(func(p *cluster.Proc) error {
		s, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "fd_be"},
			ICCLFanout: o.Fanout,
			Health:     core.HealthOptions{Period: o.Period, Miss: o.Miss},
		})
		if err != nil {
			return err
		}
		victim := k - 1 // deepest rank: worst-case report propagation
		victimHost := ""
		parentHost := ""
		nodelist := make([]string, k)
		for _, d := range s.Daemons() {
			nodelist[d.Rank] = d.Host
		}
		victimHost = nodelist[victim]
		if victim > 0 {
			parentHost = nodelist[(victim-1)/o.Fanout]
		}

		exitedCh := vtime.NewChan[health.Event](p.Sim())
		tornCh := vtime.NewChan[health.Event](p.Sim())
		s.RegisterStatusCB(func(ev health.Event) {
			switch ev.Kind {
			case health.EvDaemonExited:
				exitedCh.Send(ev)
			case health.EvSessionTornDown:
				tornCh.Send(ev)
			}
		})
		p.Sim().Sleep(2 * time.Second) // steady state

		failAt := p.Sim().Now()
		if silent {
			// Partition the victim from its heartbeat parent; only the
			// miss threshold can see this.
			r.Cl.Net().DropLink(victimHost, parentHost)
		} else {
			r.Cl.KillNodeByName(victimHost)
		}

		ev, ok := exitedCh.Recv()
		if !ok {
			return fmt.Errorf("no DaemonExited event")
		}
		if ev.Rank != victim {
			return fmt.Errorf("DaemonExited rank %d, want %d", ev.Rank, victim)
		}
		detect := p.Sim().Now() - failAt
		if silent {
			row.DetectSilent = detect
			// Heal the partition so the watchdog's kill tree can reach the
			// victim's subtree again.
			r.Cl.Net().RestoreLink(victimHost, parentHost)
		} else {
			row.DetectSever = detect
		}

		if _, ok := tornCh.Recv(); !ok {
			return fmt.Errorf("no SessionTornDown event")
		}
		row.Teardown = p.Sim().Now() - failAt
		return nil
	})
	return row, err
}

// HeartbeatOverhead measures heartbeat wire traffic during an idle window
// at each period.
func HeartbeatOverhead(nodes int, periods []time.Duration, window time.Duration) ([]OverheadRow, error) {
	rows := make([]OverheadRow, 0, len(periods))
	for _, period := range periods {
		row, err := measureOverhead(nodes, period, window)
		if err != nil {
			return nil, fmt.Errorf("heartbeat overhead at period=%v: %w", period, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureOverhead(nodes int, period, window time.Duration) (OverheadRow, error) {
	row := OverheadRow{Nodes: nodes, Period: period, Window: window}
	r, err := NewRig(RigOptions{Nodes: nodes})
	if err != nil {
		return row, err
	}
	registerResidentBE(r.Cl, "ov_be")
	err = r.RunFE(func(p *cluster.Proc) error {
		s, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "ov_be"},
			ICCLFanout: 32,
			Health:     core.HealthOptions{Period: period},
		})
		if err != nil {
			return err
		}
		p.Sim().Sleep(2 * period) // settle past the priming beats
		before := r.Cl.Net().Stats()
		p.Sim().Sleep(window)
		after := r.Cl.Net().Stats()
		row.Messages = after.Messages - before.Messages
		row.Bytes = after.Bytes - before.Bytes
		row.MsgsPerSec = float64(row.Messages) / window.Seconds()
		return s.Kill()
	})
	return row, err
}

// PrintFailure renders the detection-latency rows.
func PrintFailure(w io.Writer, rows []FailureRow) {
	fmt.Fprintln(w, "Ablation — failure detection latency (kill deepest-ranked daemon's node)")
	fmt.Fprintln(w, "daemons   period   miss  detect(sever)  detect(silent)  teardown")
	for _, r := range rows {
		silent := "-"
		if r.DetectSilent > 0 {
			silent = fmt.Sprintf("%.3fs", r.DetectSilent.Seconds())
		}
		fmt.Fprintf(w, "%7d %8s %5d %14.6fs %15s %8.3fs\n",
			r.Nodes, r.Period, r.Miss, r.DetectSever.Seconds(), silent, r.Teardown.Seconds())
	}
}

// PrintOverhead renders the heartbeat-overhead rows.
func PrintOverhead(w io.Writer, rows []OverheadRow) {
	fmt.Fprintln(w, "Ablation — heartbeat overhead vs period (idle session window)")
	fmt.Fprintln(w, "daemons   period   window    msgs      bytes     msgs/vsec")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d %8s %8s %7d %10d %11.1f\n",
			r.Nodes, r.Period, r.Window, r.Messages, r.Bytes, r.MsgsPerSec)
	}
}

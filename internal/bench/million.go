package bench

import (
	"fmt"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
)

// The million-daemon launch sweep — the ROADMAP's headline scale target.
// Only the rank-sliced cut-through pipeline can reach K=10⁶ on a bounded
// host: full retention would put a ~60 MB table copy in every one of a
// million simulated daemons. The sweep runs on a lean rig (RM and
// LaunchMON only — the full rig parks two extra system processes per
// node, which at this scale costs more host memory than LaunchMON
// itself) with health detection off, one task per node, and no
// post-launch verification gather (the slice-union byte check runs in
// LaunchPipeline at K≤16384, where full retention exists to compare
// against).

// MillionScales are the daemon counts of the million sweep.
var MillionScales = []int{1 << 20}

// MillionOpts parameterize the sweep.
type MillionOpts struct {
	TasksPerNode int // default 1
	Fanout       int // ICCL tree fanout (default 64)
}

func (o MillionOpts) withDefaults() MillionOpts {
	if o.TasksPerNode == 0 {
		o.TasksPerNode = 1
	}
	if o.Fanout == 0 {
		o.Fanout = 64
	}
	return o
}

// LaunchMillion measures the rank-sliced cut-through launch at each
// scale, reporting the same row shape as LaunchPipeline.
func LaunchMillion(opts MillionOpts, scales []int) ([]LaunchPipeRow, error) {
	o := opts.withDefaults()
	rows := make([]LaunchPipeRow, 0, len(scales))
	for _, k := range scales {
		row, err := measureLaunchMillion(k, o)
		if err != nil {
			return nil, fmt.Errorf("million launch sweep at K=%d: %w", k, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureLaunchMillion(k int, o MillionOpts) (LaunchPipeRow, error) {
	row := LaunchPipeRow{
		Mode:    core.SeedCutThrough.String(),
		Table:   core.TableSliced.String(),
		Daemons: k,
		Tasks:   k * o.TasksPerNode,
	}
	r, err := NewRig(RigOptions{Nodes: k, Lean: true})
	if err != nil {
		return row, err
	}
	registerNoopBE(r.Cl, "million_be")
	err = r.RunFE(func(p *cluster.Proc) error {
		t0 := p.Sim().Now()
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: o.TasksPerNode},
			Daemon:     rm.DaemonSpec{Exe: "million_be"},
			ICCLFanout: o.Fanout,
			SeedMode:   core.SeedCutThrough,
			TableMode:  core.TableSliced,
		})
		if err != nil {
			return err
		}
		row.Ready = p.Sim().Now() - t0
		row.TableOK = true // verified against full retention in LaunchPipeline at K≤16384
		for _, chunk := range sess.Proctab().EncodeChunks(0) {
			row.MemEngine = max(row.MemEngine, len(chunk))
		}
		row.MemFE = sess.Proctab().MemBytes()
		sorted := append(proctab.Table(nil), sess.Proctab()...)
		sorted.SortByRank()
		idx, err := proctab.BuildIndex(sorted)
		if err != nil {
			return err
		}
		row.MemIndex = idx.MemBytes()
		roleMem(&row, sess.Daemons(), o.Fanout)
		return nil
	})
	return row, err
}

package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
)

// The million-daemon launch sweep — the ROADMAP's headline scale target.
// Only the rank-sliced cut-through pipeline can reach K=10⁶ on a bounded
// host: full retention would put a ~60 MB table copy in every one of a
// million simulated daemons. The sweep runs on a lean rig (RM and
// LaunchMON only — the full rig parks two extra system processes per
// node, which at this scale costs more host memory than LaunchMON
// itself) with health detection off, one task per node, and no
// post-launch verification gather (the slice-union byte check runs in
// LaunchPipeline at K≤16384, where full retention exists to compare
// against).

// MillionScales are the daemon counts of the million sweep.
var MillionScales = []int{1 << 20}

// MillionOpts parameterize the sweep.
type MillionOpts struct {
	TasksPerNode int // default 1
	Fanout       int // ICCL tree fanout (default 64)
}

func (o MillionOpts) withDefaults() MillionOpts {
	if o.TasksPerNode == 0 {
		o.TasksPerNode = 1
	}
	if o.Fanout == 0 {
		o.Fanout = 64
	}
	return o
}

// LaunchMillion measures the rank-sliced cut-through launch at each
// scale, reporting the same row shape as LaunchPipeline.
func LaunchMillion(opts MillionOpts, scales []int) ([]LaunchPipeRow, error) {
	o := opts.withDefaults()
	rows := make([]LaunchPipeRow, 0, len(scales))
	for _, k := range scales {
		row, err := measureLaunchMillion(k, o)
		if err != nil {
			return nil, fmt.Errorf("million launch sweep at K=%d: %w", k, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureLaunchMillion(k int, o MillionOpts) (LaunchPipeRow, error) {
	row := LaunchPipeRow{
		Mode:    core.SeedCutThrough.String(),
		Table:   core.TableSliced.String(),
		Daemons: k,
		Tasks:   k * o.TasksPerNode,
	}
	r, err := NewRig(RigOptions{Nodes: k, Lean: true})
	if err != nil {
		return row, err
	}
	registerNoopBE(r.Cl, "million_be")
	err = r.RunFE(func(p *cluster.Proc) error {
		t0 := p.Sim().Now()
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: o.TasksPerNode},
			Daemon:     rm.DaemonSpec{Exe: "million_be"},
			ICCLFanout: o.Fanout,
			SeedMode:   core.SeedCutThrough,
			TableMode:  core.TableSliced,
		})
		if err != nil {
			return err
		}
		row.Ready = p.Sim().Now() - t0
		row.TableOK = true // verified against full retention in LaunchPipeline at K≤16384
		for _, chunk := range sess.Proctab().EncodeChunks(0) {
			row.MemEngine = max(row.MemEngine, len(chunk))
		}
		row.MemFE = sess.Proctab().MemBytes()
		sorted := append(proctab.Table(nil), sess.Proctab()...)
		sorted.SortByRank()
		idx, err := proctab.BuildIndex(sorted)
		if err != nil {
			return err
		}
		row.MemIndex = idx.MemBytes()
		roleMem(&row, sess.Daemons(), o.Fanout)
		return nil
	})
	// Host-cost columns: the sweep's acceptance bound is ≤1.25 parked
	// goroutines per simulated node (DESIGN.md "Simulator cost model").
	row.GoroutinesPeak = r.Sim.PeakLive()
	row.GoroutinesPerNode = float64(row.GoroutinesPeak) / float64(k)
	row.RSSPeakB = hostRSSPeak()
	return row, err
}

// hostRSSPeak reads this process's peak resident set (VmHWM) in bytes.
// Returns 0 where /proc is unavailable; the column is then omitted.
func hostRSSPeak() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		f := bytes.Fields(line[len("VmHWM:"):])
		if len(f) < 1 {
			return 0
		}
		kb, err := strconv.ParseUint(string(f[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// PrintMillionCost renders the simulator host-cost columns of a million
// sweep: the per-node goroutine budget is the deterministic, pinnable
// figure; peak RSS depends on the host Go runtime and is informational.
func PrintMillionCost(w io.Writer, rows []LaunchPipeRow) {
	fmt.Fprintln(w, "Simulator host cost (goroutines are virtual-time-deterministic; RSS is host-dependent)")
	fmt.Fprintln(w, "daemons   goroutines-peak  goroutines/node  rss-peak-MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d %17d %16.3f %12.1f\n",
			r.Daemons, r.GoroutinesPeak, r.GoroutinesPerNode, float64(r.RSSPeakB)/(1<<20))
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
)

// Collective tool-data-plane ablation: the flat pipe the paper's tools
// used — every daemon's contribution funneling through the master and
// relayed monolithically over its single FE link — against the
// tree-routed collective plane, where interior daemons forward bounded
// chunks (gather) or combine contributions (reduce) so per-link message
// counts are bounded by the fanout rather than the daemon count. Three
// phases per scale, each timed from a broadcast go-signal to the merged
// result at the FE:
//
//   - flat:   legacy ICCL gather on a 1-deep tree, master relays one
//     monolithic UsrData payload to the FE (the old SendToFE idiom);
//   - tree:   Session.Gather over a k-ary tree, chunk-streamed;
//   - reduce: Session.Reduce with the sum filter — the root-bound bytes
//     are independent of K entirely.

// CollectiveRow is one scale's measurements.
type CollectiveRow struct {
	Daemons  int
	PayloadB int // per-daemon contribution bytes (gather phases)
	Fanout   int // tree fanout of the tree/reduce phases

	FlatGather time.Duration // go-signal → merged report, flat master relay
	TreeGather time.Duration // go-signal → merged report, collective plane
	ReduceSum  time.Duration // go-signal → combined sum at the FE

	FlatBytes   int64 // network bytes of the flat gather phase
	TreeBytes   int64 // network bytes of the tree gather phase
	ReduceBytes int64 // network bytes of the reduce phase

	FlatMasterLinks int // inbound tree links at the master: K-1
	TreeMasterLinks int // inbound tree links at the master: min(fanout, K-1)
}

// CollectiveScales are the daemon counts of the sweep.
var CollectiveScales = []int{64, 1024, 16384}

// CollectiveOpts parameterize the ablation.
type CollectiveOpts struct {
	PayloadB int // per-daemon contribution (default 256)
	Fanout   int // tree fanout (default 32)
}

func (o CollectiveOpts) withDefaults() CollectiveOpts {
	if o.PayloadB == 0 {
		o.PayloadB = 256
	}
	if o.Fanout == 0 {
		o.Fanout = 32
	}
	return o
}

// CollectiveAblation measures all three phases at each scale.
func CollectiveAblation(opts CollectiveOpts, scales []int) ([]CollectiveRow, error) {
	o := opts.withDefaults()
	rows := make([]CollectiveRow, 0, len(scales))
	for _, k := range scales {
		row := CollectiveRow{
			Daemons: k, PayloadB: o.PayloadB, Fanout: o.Fanout,
			FlatMasterLinks: k - 1,
			TreeMasterLinks: min(o.Fanout, k-1),
		}
		var err error
		if row.FlatGather, row.FlatBytes, err = measureFlatGather(k, o.PayloadB); err != nil {
			return nil, fmt.Errorf("flat gather at K=%d: %w", k, err)
		}
		if row.TreeGather, row.TreeBytes, err = measureTreeGather(k, o.Fanout, o.PayloadB); err != nil {
			return nil, fmt.Errorf("tree gather at K=%d: %w", k, err)
		}
		if row.ReduceSum, row.ReduceBytes, err = measureReduceSum(k, o.Fanout); err != nil {
			return nil, fmt.Errorf("reduce at K=%d: %w", k, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func payloadFor(rank, bytes int) []byte {
	b := make([]byte, bytes)
	for i := range b {
		b[i] = byte(rank)
	}
	return b
}

// measureFlatGather is the legacy shape: flat (1-deep) ICCL tree, every
// contribution crosses one hop to the master, which relays the
// concatenation as one monolithic UsrData message.
func measureFlatGather(k, payloadB int) (time.Duration, int64, error) {
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return 0, 0, err
	}
	r.Cl.Register("cflat_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		var data []byte
		if be.AmIMaster() {
			if data, err = be.RecvFromFE(); err != nil {
				return
			}
		}
		if _, err := be.Broadcast(data); err != nil { // go-signal
			return
		}
		all, err := be.Gather(payloadFor(be.Rank(), payloadB))
		if err != nil {
			return
		}
		if be.AmIMaster() {
			blob := lmonp.AppendUint32(nil, uint32(len(all)))
			for _, contrib := range all {
				blob = lmonp.AppendBytes(blob, contrib)
			}
			be.SendToFE(blob)
		}
		be.Finalize()
	})
	var elapsed time.Duration
	var bytes int64
	err = r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: 1},
			Daemon: rm.DaemonSpec{Exe: "cflat_be"},
		})
		if err != nil {
			return err
		}
		start := p.Sim().Now()
		before := r.Cl.Net().Stats()
		if err := sess.SendToBE([]byte("go")); err != nil {
			return err
		}
		blob, err := sess.RecvFromBE()
		if err != nil {
			return err
		}
		elapsed = p.Sim().Now() - start
		bytes = r.Cl.Net().Stats().Bytes - before.Bytes
		rd := lmonp.NewReader(blob)
		n, err := rd.Uint32()
		if err != nil || int(n) != k {
			return fmt.Errorf("flat gather merged %d of %d contributions (%v)", n, k, err)
		}
		return nil
	})
	return elapsed, bytes, err
}

// measureTreeGather is the collective plane: k-ary tree, interior daemons
// forward bounded chunks, the FE assembles rank-indexed contributions.
func measureTreeGather(k, fanout, payloadB int) (time.Duration, int64, error) {
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return 0, 0, err
	}
	r.Cl.Register("ctree_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		if _, err := be.Collective().Broadcast(); err != nil { // go-signal
			return
		}
		if err := be.Collective().Gather(payloadFor(be.Rank(), payloadB)); err != nil {
			return
		}
		be.Finalize()
	})
	var elapsed time.Duration
	var bytes int64
	err = r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "ctree_be"},
			ICCLFanout: fanout,
		})
		if err != nil {
			return err
		}
		start := p.Sim().Now()
		before := r.Cl.Net().Stats()
		if err := sess.Broadcast([]byte("go")); err != nil {
			return err
		}
		all, err := sess.Gather()
		if err != nil {
			return err
		}
		elapsed = p.Sim().Now() - start
		bytes = r.Cl.Net().Stats().Bytes - before.Bytes
		if len(all) != k {
			return fmt.Errorf("tree gather returned %d of %d contributions", len(all), k)
		}
		return nil
	})
	return elapsed, bytes, err
}

// measureReduceSum is the combining plane: every daemon contributes one
// uint64, interior daemons sum, the FE receives 8 bytes no matter K.
func measureReduceSum(k, fanout int) (time.Duration, int64, error) {
	r, err := NewRig(RigOptions{Nodes: k})
	if err != nil {
		return 0, 0, err
	}
	r.Cl.Register("cred_be", func(p *cluster.Proc) {
		be, err := core.BEInit(p)
		if err != nil {
			return
		}
		if _, err := be.Collective().Broadcast(); err != nil { // go-signal
			return
		}
		if err := be.Collective().Reduce(lmonp.AppendUint64(nil, 1), "sum"); err != nil {
			return
		}
		be.Finalize()
	})
	var elapsed time.Duration
	var bytes int64
	err = r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:        rm.JobSpec{Exe: "app", Nodes: k, TasksPerNode: 1},
			Daemon:     rm.DaemonSpec{Exe: "cred_be"},
			ICCLFanout: fanout,
		})
		if err != nil {
			return err
		}
		start := p.Sim().Now()
		before := r.Cl.Net().Stats()
		if err := sess.Broadcast([]byte("go")); err != nil {
			return err
		}
		sum, err := sess.Reduce()
		if err != nil {
			return err
		}
		elapsed = p.Sim().Now() - start
		bytes = r.Cl.Net().Stats().Bytes - before.Bytes
		v, err := lmonp.NewReader(sum).Uint64()
		if err != nil || v != uint64(k) {
			return fmt.Errorf("reduce summed %d of %d daemons (%v)", v, k, err)
		}
		return nil
	})
	return elapsed, bytes, err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PrintCollective renders the rows.
func PrintCollective(w io.Writer, rows []CollectiveRow) {
	fmt.Fprintln(w, "Ablation — collective tool-data plane (flat master relay vs tree routing)")
	fmt.Fprintln(w, "daemons  payload fanout  flat-gather tree-gather reduce-sum  master-links(flat/tree)")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d %7dB %6d %11.3fs %10.3fs %9.3fs  %6d / %d\n",
			r.Daemons, r.PayloadB, r.Fanout,
			r.FlatGather.Seconds(), r.TreeGather.Seconds(), r.ReduceSum.Seconds(),
			r.FlatMasterLinks, r.TreeMasterLinks)
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
)

// Middleware launch-pipeline ablation: time-to-ready of LaunchMW under
// the serialized store-and-forward MW seed (full-table buffering at the
// MW master, monolithic broadcast after bootstrap — the pre-parity MW
// pipeline) versus the cut-through seed (FE relays table chunks to the
// MW master while the RM is still spawning its siblings, and the master
// streams them through the still-forming MW tree). Both runs verify that
// every MW rank reassembled a byte-identical RPDTAB over the MW
// collective plane — the same never-trade-correctness-for-overlap check
// as the BE launch-pipeline ablation.

// MWPipeRow is one mode × scale measurement.
type MWPipeRow struct {
	Mode    string        // "cut-through" or "store-forward"
	Daemons int           // K middleware daemons (one per fresh node)
	Tasks   int           // application tasks (sizes the seed)
	Ready   time.Duration // LaunchMW call → return (m7..m10 chain complete)
	TableOK bool          // every MW rank's RPDTAB byte-identical to the FE's
}

// MWScales are the middleware daemon counts of the pipeline sweep.
var MWScales = []int{64, 1024, 16384}

// MWPipeOpts parameterize the ablation.
type MWPipeOpts struct {
	// JobNodes sizes the application job the middleware observes
	// (default 64 at 16 tasks per node: a ~1k-entry RPDTAB, so the MW
	// seed transfer is meaningfully multi-chunk without the K=16384
	// point holding gigabytes per host).
	JobNodes     int
	TasksPerNode int
	Fanout       int // MW ICCL tree fanout (default 32)
	// ChunkBytes bounds one RPDTAB chunk (default 4 KiB so the sweep's
	// seed streams are multi-chunk at every scale).
	ChunkBytes int
}

func (o MWPipeOpts) withDefaults() MWPipeOpts {
	if o.JobNodes == 0 {
		o.JobNodes = 64
	}
	if o.TasksPerNode == 0 {
		o.TasksPerNode = 16
	}
	if o.Fanout == 0 {
		o.Fanout = 32
	}
	if o.ChunkBytes == 0 {
		o.ChunkBytes = 4 << 10
	}
	return o
}

// MWPipeline measures both MW seed pipelines at each scale.
func MWPipeline(opts MWPipeOpts, scales []int) ([]MWPipeRow, error) {
	o := opts.withDefaults()
	rows := make([]MWPipeRow, 0, 2*len(scales))
	for _, k := range scales {
		for _, mode := range []core.SeedMode{core.SeedStoreForward, core.SeedCutThrough} {
			row, err := measureMWPipe(k, mode, o)
			if err != nil {
				return nil, fmt.Errorf("mw pipeline %v at K=%d: %w", mode, k, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func measureMWPipe(k int, mode core.SeedMode, o MWPipeOpts) (MWPipeRow, error) {
	row := MWPipeRow{Mode: mode.String(), Daemons: k, Tasks: o.JobNodes * o.TasksPerNode}
	r, err := NewRig(RigOptions{Nodes: o.JobNodes + k})
	if err != nil {
		return row, err
	}
	registerNoopBE(r.Cl, "mwp_be")
	// Every MW daemon gathers its table fingerprint to the FE over the MW
	// collective plane — after the launch, so the verification does not
	// perturb the time-to-ready measurement.
	r.Cl.Register("mwp_mw", func(p *cluster.Proc) {
		mw, err := core.MWInit(p)
		if err != nil {
			return
		}
		mw.Collective().Gather(tableHash(mw.Proctab().Encode()))
		mw.Finalize()
	})
	err = r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:               rm.JobSpec{Exe: "app", Nodes: o.JobNodes, TasksPerNode: o.TasksPerNode},
			Daemon:            rm.DaemonSpec{Exe: "mwp_be"},
			ICCLFanout:        o.Fanout,
			ProctabChunkBytes: o.ChunkBytes,
		})
		if err != nil {
			return err
		}
		t0 := p.Sim().Now()
		if _, err := sess.LaunchMW(core.MWOptions{
			Nodes:      k,
			Daemon:     rm.DaemonSpec{Exe: "mwp_mw"},
			ICCLFanout: o.Fanout,
			SeedMode:   mode,
		}); err != nil {
			return err
		}
		row.Ready = p.Sim().Now() - t0
		hashes, err := sess.MWGather()
		if err != nil {
			return err
		}
		want := string(tableHash(sess.Proctab().Encode()))
		row.TableOK = len(hashes) == k
		for _, h := range hashes {
			if string(h) != want {
				row.TableOK = false
			}
		}
		return nil
	})
	return row, err
}

// PrintMWPipeline renders the comparison.
func PrintMWPipeline(w io.Writer, rows []MWPipeRow) {
	fmt.Fprintln(w, "Ablation — MW launch pipeline (LaunchMW time to ready, byte-identical RPDTAB at every MW rank)")
	fmt.Fprintln(w, "mode           mw-daemons    tasks   ready      tables")
	for _, r := range rows {
		ok := "identical"
		if !r.TableOK {
			ok = "MISMATCH"
		}
		fmt.Fprintf(w, "%-14s %10d %8d %8.3fs  %s\n", r.Mode, r.Daemons, r.Tasks, r.Ready.Seconds(), ok)
	}
}

package bench

import (
	"fmt"
	"io"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/perfmodel"
	"launchmon/internal/rm"
)

// Fig3Row is one scale point of the Figure 3 reproduction: the measured
// launchAndSpawn breakdown, the analytic model's prediction, and the
// relative error of the modeled total.
type Fig3Row struct {
	Daemons  int
	Tasks    int
	Measured perfmodel.Breakdown
	Model    perfmodel.Breakdown
	ErrPct   float64
}

// Figure3Scales are the paper's daemon counts (8 MPI tasks per daemon,
// one daemon per node, 16..128 step 16).
var Figure3Scales = []int{16, 32, 48, 64, 80, 96, 112, 128}

// Figure3CalibrationScales are the small scales the model is fitted on;
// the remaining scales are pure prediction (the paper fits T(op) "at small
// scales and then fit models for them").
var Figure3CalibrationScales = []int{16, 32, 48}

// measureLaunchAndSpawn runs one launchAndSpawn at the given scale and
// decomposes its timeline.
func measureLaunchAndSpawn(daemons, tasksPerDaemon int) (perfmodel.Breakdown, error) {
	r, err := NewRig(RigOptions{Nodes: daemons})
	if err != nil {
		return perfmodel.Breakdown{}, err
	}
	registerNoopBE(r.Cl, "f3_be")
	var b perfmodel.Breakdown
	err = r.RunFE(func(p *cluster.Proc) error {
		sess, err := core.LaunchAndSpawn(p, core.Options{
			Job:    rm.JobSpec{Exe: "app", Nodes: daemons, TasksPerNode: tasksPerDaemon},
			Daemon: rm.DaemonSpec{Exe: "f3_be"},
			// Figure 3 reproduces the paper's serialized pipeline: the §4
			// model decomposes the Figure 2 event chain, whose components
			// (T(daemon), T(setup), T(collective)) are disjoint only when
			// the phases do not overlap. The cut-through pipeline is
			// measured by its own ablation (launchpipe.go).
			SeedMode: core.SeedStoreForward,
		})
		if err != nil {
			return err
		}
		b, err = perfmodel.Decompose(sess.Timeline)
		return err
	})
	return b, err
}

// Figure3 regenerates the modeled-vs-measured launchAndSpawn comparison:
// it measures every scale, fits the analytic model on the calibration
// scales only, and reports predictions alongside measurements.
func Figure3() ([]Fig3Row, error) {
	const tasksPerDaemon = 8
	measured := make(map[int]perfmodel.Breakdown, len(Figure3Scales))
	for _, n := range Figure3Scales {
		b, err := measureLaunchAndSpawn(n, tasksPerDaemon)
		if err != nil {
			return nil, fmt.Errorf("figure3 at %d daemons: %w", n, err)
		}
		measured[n] = b
	}
	var pts []perfmodel.Point
	for _, n := range Figure3CalibrationScales {
		pts = append(pts, perfmodel.Point{Nodes: n, Tasks: n * tasksPerDaemon, B: measured[n]})
	}
	model, err := perfmodel.Fit(pts)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig3Row, 0, len(Figure3Scales))
	for _, n := range Figure3Scales {
		pred := model.Predict(n, n*tasksPerDaemon)
		rows = append(rows, Fig3Row{
			Daemons:  n,
			Tasks:    n * tasksPerDaemon,
			Measured: measured[n],
			Model:    pred,
			ErrPct:   perfmodel.ErrorPct(pred, measured[n]),
		})
	}
	return rows, nil
}

// PrintFigure3 renders the rows like the paper's stacked chart, one line
// per scale with the component columns.
func PrintFigure3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3 — launchAndSpawn: modeled vs measured (8 tasks/daemon)")
	fmt.Fprintln(w, "daemons  tasks  T(job)   T(dmn+setup) T(coll)  tracing  fetch    other    measured  model    err%   lmon%")
	for _, r := range rows {
		m := r.Measured
		fmt.Fprintf(w, "%7d %6d %8.3f %12.3f %8.3f %8.3f %8.3f %8.3f %9.3f %8.3f %6.1f %6.1f\n",
			r.Daemons, r.Tasks,
			m.Job.Seconds(), (m.DaemonSpawn + m.Setup).Seconds(), m.Collective.Seconds(),
			m.Tracing.Seconds(), m.Fetch.Seconds(), m.Other.Seconds(),
			m.Total.Seconds(), r.Model.Total.Seconds(), r.ErrPct, 100*m.LaunchMONShare())
	}
}

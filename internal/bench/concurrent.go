package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/core"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// Concurrent-session ablation: one front-end process drives K tool
// sessions at once over its single transport mux — the multi-session
// workload the seed's one-listener-per-session design could not express.
// Because the RM spawns each session's job and daemons on disjoint nodes,
// the per-node work of the K sessions overlaps almost entirely and
// aggregate session-setup throughput should rise with K.

// ConcurrentRow is one K-sessions measurement.
type ConcurrentRow struct {
	Sessions   int           // K concurrent sessions
	NodesEach  int           // nodes (daemons) per session
	Wall       time.Duration // first launch call → last session ready (virtual)
	Slowest    time.Duration // slowest single session's setup time
	Throughput float64       // sessions per virtual second (aggregate)
}

// ConcurrentScales are the session counts of the ablation.
var ConcurrentScales = []int{1, 4, 8}

// ConcurrentSessionOpts sizes one session of the ablation.
type ConcurrentSessionOpts struct {
	NodesEach    int // default 16
	TasksPerNode int // default 8
}

func (o ConcurrentSessionOpts) withDefaults() ConcurrentSessionOpts {
	if o.NodesEach == 0 {
		o.NodesEach = 16
	}
	if o.TasksPerNode == 0 {
		o.TasksPerNode = 8
	}
	return o
}

// ConcurrentSessions measures aggregate launchAndSpawn throughput for
// each K in scales: K sessions launched from parallel goroutines of one
// FE process on a fresh rig sized to hold all K jobs.
func ConcurrentSessions(opts ConcurrentSessionOpts, scales []int) ([]ConcurrentRow, error) {
	o := opts.withDefaults()
	rows := make([]ConcurrentRow, 0, len(scales))
	for _, k := range scales {
		row, err := measureConcurrent(k, o)
		if err != nil {
			return nil, fmt.Errorf("concurrent sessions at K=%d: %w", k, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func measureConcurrent(k int, o ConcurrentSessionOpts) (ConcurrentRow, error) {
	row := ConcurrentRow{Sessions: k, NodesEach: o.NodesEach}
	r, err := NewRig(RigOptions{Nodes: k * o.NodesEach})
	if err != nil {
		return row, err
	}
	registerNoopBE(r.Cl, "cc_be")
	err = r.RunFE(func(p *cluster.Proc) error {
		start := p.Sim().Now()
		errs := make([]error, k)
		durs := make([]time.Duration, k)
		wg := vtime.NewWaitGroup(p.Sim())
		wg.Add(k)
		for i := 0; i < k; i++ {
			i := i
			p.Sim().Go(fmt.Sprintf("cc-session-%d", i), func() {
				defer wg.Done()
				t0 := p.Sim().Now()
				_, err := core.LaunchAndSpawn(p, core.Options{
					Job:    rm.JobSpec{Exe: "app", Nodes: o.NodesEach, TasksPerNode: o.TasksPerNode},
					Daemon: rm.DaemonSpec{Exe: "cc_be"},
				})
				durs[i] = p.Sim().Now() - t0
				errs[i] = err
			})
		}
		wg.Wait()
		row.Wall = p.Sim().Now() - start
		for i := 0; i < k; i++ {
			if errs[i] != nil {
				return fmt.Errorf("session %d: %w", i, errs[i])
			}
			if durs[i] > row.Slowest {
				row.Slowest = durs[i]
			}
		}
		return nil
	})
	if err != nil {
		return row, err
	}
	if row.Wall > 0 {
		row.Throughput = float64(row.Sessions) / row.Wall.Seconds()
	}
	return row, nil
}

// PrintConcurrent renders the concurrent-session rows.
func PrintConcurrent(w io.Writer, rows []ConcurrentRow) {
	fmt.Fprintln(w, "Ablation — concurrent sessions per FE process (one transport mux)")
	fmt.Fprintln(w, "sessions  nodes/sess  wall      slowest   sessions/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %11d %8.3fs %8.3fs %10.2f\n",
			r.Sessions, r.NodesEach, r.Wall.Seconds(), r.Slowest.Seconds(), r.Throughput)
	}
}

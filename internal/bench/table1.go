package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/tools/oss"
)

// T1Row is one O|SS APAI-access measurement pair.
type T1Row struct {
	Nodes     int
	DPCL      time.Duration
	LaunchMON time.Duration
}

// Table1Scales are the paper's node counts.
var Table1Scales = []int{2, 4, 8, 16, 32}

// Table1 regenerates the O|SS APAI access-time comparison: the DPCL path
// (persistent root daemons + full binary parse of the RM launcher) versus
// the LaunchMON integration.
func Table1() ([]T1Row, error) {
	rows := make([]T1Row, 0, len(Table1Scales))
	for _, n := range Table1Scales {
		d, err := measureOSS(n, "dpcl")
		if err != nil {
			return nil, fmt.Errorf("table1 dpcl at %d: %w", n, err)
		}
		l, err := measureOSS(n, "launchmon")
		if err != nil {
			return nil, fmt.Errorf("table1 launchmon at %d: %w", n, err)
		}
		rows = append(rows, T1Row{Nodes: n, DPCL: d, LaunchMON: l})
	}
	return rows, nil
}

func measureOSS(nodes int, which string) (time.Duration, error) {
	r, err := NewRig(RigOptions{Nodes: nodes})
	if err != nil {
		return 0, err
	}
	var inst oss.Instrumentor
	if which == "dpcl" {
		inst = &oss.DPCLInstrumentor{Svc: r.Dpc}
	} else {
		inst = &oss.LaunchMONInstrumentor{}
	}
	var elapsed time.Duration
	err = r.RunFE(func(p *cluster.Proc) error {
		j, err := r.Mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: 8})
		if err != nil {
			return err
		}
		p.Sim().Sleep(3 * time.Second)
		res, err := inst.AcquireAPAI(p, j)
		if err != nil {
			return err
		}
		if len(res.Proctab) != nodes*8 {
			return fmt.Errorf("proctab %d entries, want %d", len(res.Proctab), nodes*8)
		}
		elapsed = res.Elapsed
		return nil
	})
	return elapsed, err
}

// PrintTable1 renders the table in the paper's layout.
func PrintTable1(w io.Writer, rows []T1Row) {
	fmt.Fprintln(w, "Table 1 — O|SS APAI access times")
	fmt.Fprint(w, "Number of Nodes ")
	for _, r := range rows {
		fmt.Fprintf(w, "%9d", r.Nodes)
	}
	fmt.Fprint(w, "\nDPCL            ")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2fs", r.DPCL.Seconds())
	}
	fmt.Fprint(w, "\nLaunchMON       ")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.3fs", r.LaunchMON.Seconds())
	}
	fmt.Fprintln(w)
}

package bench

import (
	"fmt"
	"io"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/tools/jobsnap"
)

// Fig5Row is one Jobsnap measurement: total operation time and the
// init→attachAndSpawn (LaunchMON) share, per the paper's two series.
type Fig5Row struct {
	Daemons int
	Tasks   int
	Total   time.Duration
	Launch  time.Duration // init → attachAndSpawnDaemons
	Lines   int
}

// Figure5Scales are the daemon counts of the Jobsnap experiment
// (8 tasks per daemon; the paper sweeps to 1024 daemons / 8192 tasks).
var Figure5Scales = []int{64, 128, 256, 512, 768, 1024}

// Figure5 regenerates the Jobsnap performance series.
func Figure5() ([]Fig5Row, error) {
	return figure5At(Figure5Scales)
}

// Figure5Small is the fast variant used by unit tests and -short benches.
func Figure5Small() ([]Fig5Row, error) {
	return figure5At([]int{16, 32, 64})
}

func figure5At(scales []int) ([]Fig5Row, error) {
	const tasksPerDaemon = 8
	rows := make([]Fig5Row, 0, len(scales))
	for _, n := range scales {
		r, err := NewRig(RigOptions{Nodes: n})
		if err != nil {
			return nil, err
		}
		var res jobsnap.Result
		err = r.RunFE(func(p *cluster.Proc) error {
			j, err := r.Mgr.StartJob(rm.JobSpec{Exe: "mpiapp", Nodes: n, TasksPerNode: tasksPerDaemon})
			if err != nil {
				return err
			}
			p.Sim().Sleep(5 * time.Second)
			res, err = jobsnap.Run(p, j.ID())
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("figure5 at %d daemons: %w", n, err)
		}
		if res.Lines != n*tasksPerDaemon {
			return nil, fmt.Errorf("figure5 at %d daemons: report has %d lines, want %d", n, res.Lines, n*tasksPerDaemon)
		}
		rows = append(rows, Fig5Row{
			Daemons: n, Tasks: n * tasksPerDaemon,
			Total: res.Total, Launch: res.LaunchTime, Lines: res.Lines,
		})
	}
	return rows, nil
}

// PrintFigure5 renders the two series of the paper's chart.
func PrintFigure5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Figure 5 — Jobsnap performance (8 tasks/daemon)")
	fmt.Fprintln(w, "daemons  tasks   total      init→attachAndSpawn")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d %6d %9.3fs %9.3fs\n", r.Daemons, r.Tasks, r.Total.Seconds(), r.Launch.Seconds())
	}
}

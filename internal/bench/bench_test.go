package bench

import (
	"bytes"
	"testing"
	"time"
)

// The unit tests here run the generators at reduced scale and assert the
// qualitative claims (shapes, winners, crossovers) the paper makes; the
// full-scale regenerators run in the repository-root benchmarks and
// cmd/lmonbench.

func TestFigure3ShapeAndModel(t *testing.T) {
	rows, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure3Scales) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		// Paper: launchAndSpawn stays under one second through 128 nodes.
		if r.Measured.Total > time.Second {
			t.Errorf("total at %d daemons = %v, want <1s", r.Daemons, r.Measured.Total)
		}
		// Tracing cost is scale-independent 18ms; "other" ~constant.
		if r.Measured.Tracing != 18*time.Millisecond {
			t.Errorf("tracing at %d = %v", r.Daemons, r.Measured.Tracing)
		}
		if i > 0 && r.Measured.Total <= rows[i-1].Measured.Total {
			t.Errorf("total not increasing at %d daemons", r.Daemons)
		}
		// The model (fitted at ≤48 daemons) tracks measurements within 10%.
		if r.ErrPct > 10 {
			t.Errorf("model error at %d daemons = %.1f%%", r.Daemons, r.ErrPct)
		}
	}
	// LaunchMON's share is a small fraction at full scale (paper: ~5.2%).
	last := rows[len(rows)-1]
	if s := last.Measured.LaunchMONShare(); s > 0.12 {
		t.Errorf("LaunchMON share at 128 daemons = %.1f%%, want ~5-10%%", 100*s)
	}
}

func TestFigure5ShapeSmall(t *testing.T) {
	rows, err := Figure5Small()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Lines != r.Tasks {
			t.Errorf("row %d: %d lines for %d tasks", i, r.Lines, r.Tasks)
		}
		if r.Launch > r.Total {
			t.Errorf("row %d: launch %v > total %v", i, r.Launch, r.Total)
		}
		// The LaunchMON portion dominates Jobsnap (paper: 2.76 of 2.92s).
		if float64(r.Launch) < 0.5*float64(r.Total) {
			t.Errorf("row %d: launch share too small: %v of %v", i, r.Launch, r.Total)
		}
		if i > 0 && r.Total <= rows[i-1].Total {
			t.Errorf("total not increasing at %d daemons", r.Daemons)
		}
	}
}

func TestFigure6ShapeSmall(t *testing.T) {
	rows, err := Figure6Small()
	if err != nil {
		t.Fatal(err)
	}
	var sawFailure bool
	for _, r := range rows {
		if r.MRNetFailed {
			sawFailure = true
			if r.MRNetEstimate == 0 {
				t.Error("failed row missing extrapolation")
			}
			continue
		}
		// LaunchMON wins at every scale (paper: already at 4 nodes).
		if r.LaunchMON >= r.MRNet {
			t.Errorf("LaunchMON %v not faster than rsh %v at %d daemons", r.LaunchMON, r.MRNet, r.Daemons)
		}
	}
	if !sawFailure {
		t.Error("rsh path never hit the front-end process limit")
	}
	// LaunchMON keeps working at the scale rsh fails.
	last := rows[len(rows)-1]
	if !last.MRNetFailed || last.LaunchMON == 0 {
		t.Errorf("expected rsh failure + LaunchMON success at %d daemons", last.Daemons)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// DPCL ~34s, LaunchMON sub-second, both ~flat (paper Table 1).
		if r.DPCL < 33*time.Second || r.DPCL > 36*time.Second {
			t.Errorf("DPCL at %d nodes = %v", r.Nodes, r.DPCL)
		}
		if r.LaunchMON > time.Second {
			t.Errorf("LaunchMON at %d nodes = %v", r.Nodes, r.LaunchMON)
		}
		if r.DPCL < 20*r.LaunchMON {
			t.Errorf("gap too small at %d nodes: %v vs %v", r.Nodes, r.DPCL, r.LaunchMON)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if float64(last.DPCL) > 1.1*float64(first.DPCL) {
		t.Errorf("DPCL not ~constant: %v -> %v", first.DPCL, last.DPCL)
	}
}

func TestBGLAblationShape(t *testing.T) {
	rows, err := BGLAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	slurmRow, bglRow, alpsRow := rows[0], rows[1], rows[2]
	if alpsRow.Measured.Total == 0 {
		t.Error("alps row empty")
	}
	// All three RMs keep LaunchMON's tracing cost in the same band
	// (handler cost × O(1) events).
	if alpsRow.Measured.Tracing > 3*slurmRow.Measured.Tracing {
		t.Errorf("alps tracing %v far above slurm %v", alpsRow.Measured.Tracing, slurmRow.Measured.Tracing)
	}
	// Paper §4: BG/L's T(job)/T(daemon) significantly higher, LaunchMON's
	// own overheads similar.
	if bglRow.Measured.Job < 2*slurmRow.Measured.Job {
		t.Errorf("BG/L T(job) %v not clearly above SLURM %v", bglRow.Measured.Job, slurmRow.Measured.Job)
	}
	if bglRow.Measured.DaemonSpawn < 2*slurmRow.Measured.DaemonSpawn {
		t.Errorf("BG/L T(daemon) %v not clearly above SLURM %v", bglRow.Measured.DaemonSpawn, slurmRow.Measured.DaemonSpawn)
	}
	dTrace := bglRow.Measured.Tracing - slurmRow.Measured.Tracing
	if dTrace < 0 {
		dTrace = -dTrace
	}
	if dTrace > 5*time.Millisecond {
		t.Errorf("tracing costs diverge: %v vs %v", slurmRow.Measured.Tracing, bglRow.Measured.Tracing)
	}
}

func TestFanoutAblationShape(t *testing.T) {
	rows, err := AblationFanout()
	if err != nil {
		t.Fatal(err)
	}
	flat := rows[0]
	if flat.Fanout != 0 {
		t.Fatal("first row not flat")
	}
	for _, r := range rows[1:] {
		if r.Setup >= flat.Setup {
			t.Errorf("fanout %d setup %v not below flat %v", r.Fanout, r.Setup, flat.Setup)
		}
	}
}

func TestPiggybackAblationShape(t *testing.T) {
	rows, err := AblationPiggyback()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Total >= rows[1].Total {
		t.Errorf("piggybacked %v not faster than separate %v", rows[0].Total, rows[1].Total)
	}
}

func TestProctabAblationShape(t *testing.T) {
	rows, err := AblationProctab()
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]map[int]time.Duration{}
	for _, r := range rows {
		if byMode[r.Mode] == nil {
			byMode[r.Mode] = map[int]time.Duration{}
		}
		byMode[r.Mode][r.Daemons] = r.Duration
	}
	for _, n := range []int{64, 256} {
		if byMode["iccl-broadcast"][n] >= byMode["shared-file"][n] {
			t.Errorf("broadcast %v not faster than shared file %v at %d daemons",
				byMode["iccl-broadcast"][n], byMode["shared-file"][n], n)
		}
	}
}

func TestJobsnapTreeAblationShape(t *testing.T) {
	rows, err := AblationJobsnapTree()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Fanout != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	flat := rows[0]
	for _, r := range rows[1:] {
		// The k-ary collection tree must not be slower than flat gather at
		// 512 daemons (the paper's future-work hypothesis). Tolerance: the
		// three rows run under different session IDs, and a session ID with
		// one more decimal digit grows every spawned daemon's environment by
		// a byte, shifting launch cost by a few ns — byte-accounting noise at
		// parts-per-billion of the 938 ms launch, not a tree-shape effect.
		if r.Total > flat.Total+time.Microsecond {
			t.Errorf("fanout %d total %v above flat %v", r.Fanout, r.Total, flat.Total)
		}
	}
}

func TestConcurrentSessionsShape(t *testing.T) {
	// Reduced scale: 4 nodes per session keeps the rigs small.
	rows, err := ConcurrentSessions(ConcurrentSessionOpts{NodesEach: 4, TasksPerNode: 4}, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Wall <= 0 || r.Slowest <= 0 || r.Slowest > r.Wall {
			t.Errorf("K=%d: wall %v, slowest %v", r.Sessions, r.Wall, r.Slowest)
		}
	}
	// Sessions overlap on disjoint nodes, so aggregate throughput must
	// rise with K — the scaling the shared mux exists to deliver.
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput <= rows[i-1].Throughput {
			t.Errorf("throughput not increasing: K=%d %.2f/s vs K=%d %.2f/s",
				rows[i].Sessions, rows[i].Throughput, rows[i-1].Sessions, rows[i-1].Throughput)
		}
	}
}

func TestContentionShapeSmall(t *testing.T) {
	rows, err := ContentionAblation(ContentionOpts{PayloadB: 128, Fanout: 4}, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Serialized <= 0 || r.Concurrent <= 0 {
			t.Errorf("K=%d: non-positive times %v / %v", r.Daemons, r.Serialized, r.Concurrent)
		}
		// The same collectives interleaved on tagged streams must beat
		// running them back to back on the lockstep plane — that is the
		// point of concurrent streams.
		if r.Concurrent >= r.Serialized {
			t.Errorf("K=%d: concurrent %v not faster than serialized %v", r.Daemons, r.Concurrent, r.Serialized)
		}
		// Both phases move the same payloads; tagging adds per-stream
		// headers and credit frames, not data, so bytes stay comparable
		// (within 25%).
		if r.ConcurrentBytes > r.SerializedBytes*5/4 || r.ConcurrentBytes < r.SerializedBytes*3/4 {
			t.Errorf("K=%d: concurrent bytes %d vs serialized %d — not comparable", r.Daemons, r.ConcurrentBytes, r.SerializedBytes)
		}
	}
}

func TestDebugEventsAblationShape(t *testing.T) {
	rows, err := AblationDebugEvents()
	if err != nil {
		t.Fatal(err)
	}
	fixed := map[int]time.Duration{}
	scaling := map[int]time.Duration{}
	for _, r := range rows {
		if r.Mode == "fixed" {
			fixed[r.Daemons] = r.Tracing
		} else {
			scaling[r.Daemons] = r.Tracing
		}
	}
	if fixed[16] != fixed[128] {
		t.Errorf("fixed-mode tracing varies: %v vs %v", fixed[16], fixed[128])
	}
	if scaling[128] <= scaling[16] {
		t.Errorf("scaling-mode tracing flat: %v vs %v", scaling[16], scaling[128])
	}
}

func TestFailureDetectionShapeSmall(t *testing.T) {
	period := 100 * time.Millisecond
	const miss = 3
	rows, err := FailureDetection(FailureOpts{Period: period, Miss: miss, Fanout: 4, Silent: true}, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Fail-stop (sever) detection is the fast path: the parent sees the
		// dead connection well before a heartbeat is even due.
		if r.DetectSever > period {
			t.Errorf("K=%d: sever detection %v above one period %v", r.Nodes, r.DetectSever, period)
		}
		// Silent (link-drop) detection is bounded by the miss threshold but
		// cannot beat it.
		deadline := time.Duration(miss+1) * period
		if r.DetectSilent > deadline {
			t.Errorf("K=%d: silent detection %v above deadline %v", r.Nodes, r.DetectSilent, deadline)
		}
		if r.DetectSilent < time.Duration(miss-1)*period {
			t.Errorf("K=%d: silent detection %v implausibly below threshold", r.Nodes, r.DetectSilent)
		}
		if r.Teardown < r.DetectSever {
			t.Errorf("K=%d: teardown %v before detection %v", r.Nodes, r.Teardown, r.DetectSever)
		}
	}
}

func TestHeartbeatOverheadScalesWithPeriod(t *testing.T) {
	rows, err := HeartbeatOverhead(16, []time.Duration{400 * time.Millisecond, 100 * time.Millisecond}, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	slow, fast := rows[0], rows[1]
	if fast.Messages <= slow.Messages {
		t.Errorf("4x faster heartbeat sent %d msgs vs %d — overhead not period-bound", fast.Messages, slow.Messages)
	}
	// 15 beating daemons at 4x the rate: expect roughly 4x the messages.
	if fast.Messages < 3*slow.Messages {
		t.Errorf("message ratio %d/%d below ~4x", fast.Messages, slow.Messages)
	}
}

func TestPrinters(t *testing.T) {
	// Smoke-test every printer against tiny inputs.
	var buf bytes.Buffer
	PrintFigure3(&buf, []Fig3Row{{Daemons: 1, Tasks: 8}})
	PrintFigure5(&buf, []Fig5Row{{Daemons: 1, Tasks: 8}})
	PrintFigure6(&buf, []Fig6Row{{Daemons: 1, Tasks: 8, MRNetFailed: true}})
	PrintTable1(&buf, []T1Row{{Nodes: 2}})
	PrintAblations(&buf, []BGLRow{{RM: "x"}}, []FanoutRow{{}}, []PiggybackRow{{Mode: "m"}}, []DebugEventsRow{{Mode: "f"}})
	PrintProctabAblation(&buf, []ProctabRow{{Mode: "m"}})
	PrintFailure(&buf, []FailureRow{{Nodes: 8, Period: time.Second, Miss: 3}})
	PrintOverhead(&buf, []OverheadRow{{Nodes: 8, Period: time.Second, Window: time.Second}})
	if buf.Len() == 0 {
		t.Fatal("printers produced nothing")
	}
}

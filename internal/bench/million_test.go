package bench

import (
	"testing"
	"time"
)

// Host-cost regressions for the event-driven simulator: the budgets that
// let the K=2^20 million sweep fit a 16 GB runner, checked here at small
// scale so `go test` catches a goroutine-per-node regression without a
// bench run (DESIGN.md "Simulator cost model").

// TestIdleRigParksConstantGoroutines boots a lean rig and checks that
// once the boot wave drains, the idle cluster parks a constant number of
// goroutines regardless of node count: resident slurmds return their
// mains (cluster.Spec.Resident) and serve connections from listener
// callbacks, so an idle node holds zero parked goroutines — well under
// the ≤1-per-idle-node budget.
func TestIdleRigParksConstantGoroutines(t *testing.T) {
	const nodes = 256
	r, err := NewRig(RigOptions{Nodes: nodes, Lean: true})
	if err != nil {
		t.Fatal(err)
	}
	var live int
	r.Sim.After(2*time.Second, func() { live = r.Sim.Live() })
	r.Sim.Run()
	// The sampled count includes the sampler's own timer context at most;
	// 4 leaves headroom for RM housekeeping, not for per-node parking.
	if live > 4 {
		t.Errorf("idle %d-node rig parks %d goroutines, want a node-count-independent handful (≤4)", nodes, live)
	}
}

// TestMillionGoroutineBudgetAtSmallScale runs the million-sweep
// measurement at K=256 and checks the acceptance bound the full sweep is
// pinned to: at most 1.25 peak goroutines per simulated node. The peak is
// virtual-time-deterministic (vtime.Sim.PeakLive), so a regression here
// reproduces exactly.
func TestMillionGoroutineBudgetAtSmallScale(t *testing.T) {
	const k = 256
	rows, err := LaunchMillion(MillionOpts{Fanout: 8}, []int{k})
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Ready <= 0 {
		t.Fatalf("no ready time measured: %+v", row)
	}
	if row.GoroutinesPeak <= 0 {
		t.Fatalf("no goroutine peak measured: %+v", row)
	}
	if row.GoroutinesPerNode > 1.25 {
		t.Errorf("peak %d goroutines for %d nodes = %.3f per node, budget 1.25",
			row.GoroutinesPeak, k, row.GoroutinesPerNode)
	}
}

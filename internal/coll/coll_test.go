package coll

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"launchmon/internal/lmonp"
)

func TestHeaderRoundTrip(t *testing.T) {
	for _, h := range []Header{
		{Op: OpBroadcast, Tag: 1},
		{Op: OpScatter, Tag: 7, Index: 3, Lo: 10, Hi: 20},
		{Op: OpGather, Tag: 1 << 30, Index: 0xffffffff, Lo: 0, Hi: 1},
		{Op: OpReduce, Tag: 2, Filter: "topk:8"},
		{Op: OpSeed, Index: 5},
	} {
		got, err := DecodeHeader(lmonp.NewReader(h.Encode()))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip %+v -> %+v", h, got)
		}
	}
}

func TestDecodeHeaderRejectsBadOp(t *testing.T) {
	h := Header{Op: OpBroadcast, Tag: 1}
	enc := h.Encode()
	enc[0] = 99
	if _, err := DecodeHeader(lmonp.NewReader(enc)); err == nil {
		t.Fatal("op 99 accepted")
	}
	if _, err := DecodeHeader(lmonp.NewReader(nil)); err == nil {
		t.Fatal("empty header accepted")
	}
}

func TestMsgRoundTrip(t *testing.T) {
	chunk := Frame{H: Header{Op: OpGather, Tag: 3, Index: 1, Lo: 4, Hi: 9}, Body: []byte("body")}
	payload, usr := chunk.EncodeMsg()
	got, err := DecodeMsg(false, payload, usr)
	if err != nil {
		t.Fatal(err)
	}
	if got.H != chunk.H || !bytes.Equal(got.Body, chunk.Body) || got.End {
		t.Fatalf("chunk round trip: %+v", got)
	}

	end := Frame{H: Header{Op: OpGather, Tag: 3, Index: 2}, End: true, Total: 42}
	payload, usr = end.EncodeMsg()
	got, err = DecodeMsg(true, payload, usr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.End || got.Total != 42 || got.H != end.H {
		t.Fatalf("end round trip: %+v", got)
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	in := []Entry{{Rank: 0, Blob: []byte("a")}, {Rank: 17, Blob: nil}, {Rank: 3, Blob: bytes.Repeat([]byte{7}, 100)}}
	out, err := DecodeEntries(AppendEntries(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d entries", len(out))
	}
	for i := range in {
		if out[i].Rank != in[i].Rank || !bytes.Equal(out[i].Blob, in[i].Blob) {
			t.Fatalf("entry %d: %+v", i, out[i])
		}
	}
}

func TestSplitRawBounds(t *testing.T) {
	data := bytes.Repeat([]byte{1}, 1000)
	chunks := SplitRaw(data, 256)
	if len(chunks) != 4 {
		t.Fatalf("%d chunks", len(chunks))
	}
	var joined []byte
	for _, ch := range chunks {
		if len(ch) > 256 {
			t.Fatalf("chunk of %d bytes", len(ch))
		}
		joined = append(joined, ch...)
	}
	if !bytes.Equal(joined, data) {
		t.Fatal("chunks do not rejoin")
	}
	if got := SplitRaw(nil, 256); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty data: %v", got)
	}
}

// Reassembly validation, mirroring the proctab Assembler tests: FIFO
// links mean a duplicate or out-of-order chunk is a corrupted peer and
// must be rejected, not silently misassembled.

func TestRawAssemblerInOrder(t *testing.T) {
	frames := RawFrames(OpBroadcast, 5, "", bytes.Repeat([]byte{9}, 700), 256)
	var asm RawAssembler
	for _, f := range frames[:len(frames)-1] {
		if err := asm.Add(f.H, f.Body); err != nil {
			t.Fatal(err)
		}
	}
	end := frames[len(frames)-1]
	data, err := asm.Finish(end.H, end.Total)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 700 {
		t.Fatalf("%d bytes", len(data))
	}
}

func TestRawAssemblerRejectsDuplicateChunk(t *testing.T) {
	frames := RawFrames(OpBroadcast, 5, "", bytes.Repeat([]byte{9}, 700), 256)
	var asm RawAssembler
	if err := asm.Add(frames[0].H, frames[0].Body); err != nil {
		t.Fatal(err)
	}
	if err := asm.Add(frames[0].H, frames[0].Body); !errors.Is(err, ErrChunkDup) {
		t.Fatalf("duplicate chunk: %v", err)
	}
}

func TestRawAssemblerRejectsOutOfOrderChunk(t *testing.T) {
	frames := RawFrames(OpBroadcast, 5, "", bytes.Repeat([]byte{9}, 700), 256)
	var asm RawAssembler
	if err := asm.Add(frames[1].H, frames[1].Body); !errors.Is(err, ErrChunkGap) {
		t.Fatalf("chunk 1 first: %v", err)
	}
}

func TestRawAssemblerRejectsMixedStreams(t *testing.T) {
	var asm RawAssembler
	if err := asm.Add(Header{Op: OpBroadcast, Tag: 1}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := asm.Add(Header{Op: OpBroadcast, Tag: 2, Index: 1}, []byte("y")); !errors.Is(err, ErrStreamMix) {
		t.Fatalf("tag switch: %v", err)
	}
}

func TestRawAssemblerRejectsShortTotal(t *testing.T) {
	var asm RawAssembler
	if err := asm.Add(Header{Op: OpBroadcast, Tag: 1}, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Finish(Header{Op: OpBroadcast, Tag: 1, Index: 1}, 99); !errors.Is(err, ErrShortTotal) {
		t.Fatalf("bad total: %v", err)
	}
}

func TestRankAssemblerRejectsDuplicateRank(t *testing.T) {
	var asm RankAssembler
	body := AppendEntries(nil, []Entry{{Rank: 2, Blob: []byte("a")}})
	if err := asm.Add(Header{Op: OpGather, Tag: 1}, body); err != nil {
		t.Fatal(err)
	}
	body = AppendEntries(nil, []Entry{{Rank: 2, Blob: []byte("b")}})
	if err := asm.Add(Header{Op: OpGather, Tag: 1, Index: 1}, body); err == nil {
		t.Fatal("duplicate rank accepted")
	}
}

func TestRankAssemblerFinishValidatesCoverage(t *testing.T) {
	build := func(ranks ...int) *RankAssembler {
		var asm RankAssembler
		for i, rk := range ranks {
			body := AppendEntries(nil, []Entry{{Rank: rk, Blob: []byte{byte(rk)}}})
			if err := asm.Add(Header{Op: OpGather, Tag: 1, Index: uint32(i)}, body); err != nil {
				t.Fatal(err)
			}
		}
		return &asm
	}
	asm := build(0, 1, 2)
	out, err := asm.Finish(Header{Op: OpGather, Tag: 1, Index: 3}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for rk, blob := range out {
		if len(blob) != 1 || blob[0] != byte(rk) {
			t.Fatalf("rank %d slot: %v", rk, blob)
		}
	}
	// Missing rank.
	asm = build(0, 2)
	if _, err := asm.Finish(Header{Op: OpGather, Tag: 1, Index: 2}, 2, 3); err == nil {
		t.Fatal("missing rank accepted")
	}
	// Out-of-range rank.
	asm = build(0, 1, 5)
	if _, err := asm.Finish(Header{Op: OpGather, Tag: 1, Index: 3}, 3, 3); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestEntryFramesPackAndRejoin(t *testing.T) {
	var entries []Entry
	for rk := 0; rk < 40; rk++ {
		entries = append(entries, Entry{Rank: rk, Blob: bytes.Repeat([]byte{byte(rk)}, 50)})
	}
	frames := EntryFrames(OpGather, 9, entries, 256)
	if len(frames) < 5 {
		t.Fatalf("only %d frames for 2000 bytes at 256/chunk", len(frames))
	}
	var asm RankAssembler
	for _, f := range frames {
		if f.End {
			out, err := asm.Finish(f.H, f.Total, 40)
			if err != nil {
				t.Fatal(err)
			}
			for rk, blob := range out {
				if !bytes.Equal(blob, entries[rk].Blob) {
					t.Fatalf("rank %d mismatch", rk)
				}
			}
			return
		}
		if len(f.Body) > 256+64 {
			t.Fatalf("frame body %d bytes", len(f.Body))
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("no end frame")
}

func TestFilterConcat(t *testing.T) {
	fn, err := LookupFilter("concat")
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := fn(nil, []byte("ab"))
	acc, _ = fn(acc, []byte("cd"))
	if string(acc) != "abcd" {
		t.Fatalf("%q", acc)
	}
}

func TestFilterSum(t *testing.T) {
	fn, err := LookupFilter("sum")
	if err != nil {
		t.Fatal(err)
	}
	v := func(xs ...uint64) []byte {
		var b []byte
		for _, x := range xs {
			b = lmonp.AppendUint64(b, x)
		}
		return b
	}
	acc, err := fn(nil, v(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	acc, err = fn(acc, v(2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(acc, v(3, 30)) {
		t.Fatalf("%x", acc)
	}
	if _, err := fn(acc, v(1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := fn(nil, []byte{1, 2, 3}); err == nil {
		t.Fatal("non-vector accepted")
	}
}

func TestFilterTopK(t *testing.T) {
	fn, err := LookupFilter("topk:3")
	if err != nil {
		t.Fatal(err)
	}
	var acc []byte
	for i := 0; i < 5; i++ {
		acc, err = fn(acc, EncodeSample([][]byte{[]byte(fmt.Sprintf("item-%d", i))}))
		if err != nil {
			t.Fatal(err)
		}
	}
	items, err := DecodeSample(acc)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("kept %d items", len(items))
	}
	if _, err := LookupFilter("topk:0"); err == nil {
		t.Fatal("topk:0 accepted")
	}
	if _, err := LookupFilter("topk:x"); err == nil {
		t.Fatal("topk:x accepted")
	}
}

func TestLookupUnknownFilter(t *testing.T) {
	if _, err := LookupFilter("no-such-filter"); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func TestRegisterFilterCustom(t *testing.T) {
	RegisterFilter("test-max", func(string) (Combine, error) {
		return func(acc, next []byte) ([]byte, error) {
			if acc == nil || bytes.Compare(next, acc) > 0 {
				return append([]byte(nil), next...), nil
			}
			return acc, nil
		}, nil
	})
	fn, err := LookupFilter("test-max")
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := fn(nil, []byte("b"))
	acc, _ = fn(acc, []byte("a"))
	acc, _ = fn(acc, []byte("c"))
	if string(acc) != "c" {
		t.Fatalf("%q", acc)
	}
}

package coll

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// A Combine folds one more contribution into an accumulator at a tree
// node. acc is nil for the node's first contribution; implementations
// must not retain next (it may alias a network buffer) and must be
// associative — interior nodes combine their subtree in tree order, so a
// non-associative filter would make the result depend on the fanout.
type Combine func(acc, next []byte) ([]byte, error)

// A FilterMaker builds a Combine from the argument part of a filter spec
// ("topk:8" → arg "8"; specs without an argument get "").
type FilterMaker func(arg string) (Combine, error)

var (
	filterMu sync.RWMutex
	filters  = map[string]FilterMaker{}
)

// RegisterFilter installs (or replaces) a named reduction filter. Tools
// register their own combiners — e.g. STAT's prefix-tree merge — next to
// the built-in concat/sum/topk.
func RegisterFilter(name string, mk FilterMaker) {
	filterMu.Lock()
	defer filterMu.Unlock()
	filters[name] = mk
}

// LookupFilter resolves a filter spec of the form "name" or "name:arg".
func LookupFilter(spec string) (Combine, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	filterMu.RLock()
	mk, ok := filters[name]
	filterMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("coll: unknown reduction filter %q", name)
	}
	return mk(arg)
}

func init() {
	RegisterFilter("concat", func(string) (Combine, error) {
		return func(acc, next []byte) ([]byte, error) {
			return append(acc, next...), nil
		}, nil
	})
	RegisterFilter("sum", func(string) (Combine, error) {
		return combineSum, nil
	})
	RegisterFilter("topk", func(arg string) (Combine, error) {
		k, err := strconv.Atoi(arg)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("coll: topk filter needs a positive count, got %q", arg)
		}
		return makeTopK(k), nil
	})
}

// combineSum adds big-endian uint64 vectors element-wise (with wraparound,
// like C counters). Contributions must agree on vector length.
func combineSum(acc, next []byte) ([]byte, error) {
	if len(next)%8 != 0 {
		return nil, fmt.Errorf("coll: sum contribution of %d bytes is not a uint64 vector", len(next))
	}
	if acc == nil {
		return append([]byte(nil), next...), nil
	}
	if len(acc) != len(next) {
		return nil, fmt.Errorf("coll: sum vectors disagree: %d vs %d bytes", len(acc), len(next))
	}
	for i := 0; i < len(acc); i += 8 {
		v := binary.BigEndian.Uint64(acc[i:]) + binary.BigEndian.Uint64(next[i:])
		binary.BigEndian.PutUint64(acc[i:], v)
	}
	return acc, nil
}

// makeTopK keeps at most k sample items from the union of all
// contributions, so the root-bound payload stays bounded regardless of
// the daemon count. Contributions are EncodeSample item lists.
func makeTopK(k int) Combine {
	return func(acc, next []byte) ([]byte, error) {
		items, err := DecodeSample(acc)
		if err != nil {
			return nil, err
		}
		more, err := DecodeSample(next)
		if err != nil {
			return nil, err
		}
		for _, it := range more {
			if len(items) >= k {
				break
			}
			items = append(items, append([]byte(nil), it...))
		}
		return EncodeSample(items), nil
	}
}

// EncodeSample renders a sample item list for the topk filter.
func EncodeSample(items [][]byte) []byte {
	b := make([]byte, 0, 4)
	b = appendUint32(b, uint32(len(items)))
	for _, it := range items {
		b = appendUint32(b, uint32(len(it)))
		b = append(b, it...)
	}
	return b
}

// DecodeSample parses a sample item list (nil decodes to no items).
func DecodeSample(b []byte) ([][]byte, error) {
	if b == nil {
		return nil, nil
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("coll: short sample list")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(n)*4 > uint64(len(b)) {
		return nil, fmt.Errorf("coll: sample list claims %d items in %d bytes", n, len(b))
	}
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("coll: truncated sample item")
		}
		l := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint64(l) > uint64(len(b)) {
			return nil, fmt.Errorf("coll: sample item of %d bytes, %d remain", l, len(b))
		}
		out = append(out, b[:l])
		b = b[l:]
	}
	return out, nil
}

func appendUint32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

package coll

import (
	"bytes"
	"testing"

	"launchmon/internal/lmonp"
)

// FuzzCollChunkDecode hardens the collective chunk decoders against
// corrupt or hostile frames: header + entry-list + end-marker parsing and
// the reassembly validators must reject garbage without panicking, and
// anything that decodes must re-encode to an equivalent wire form.
func FuzzCollChunkDecode(f *testing.F) {
	f.Add([]byte{}, []byte{}, false)
	chunk := Frame{H: Header{Op: OpGather, Tag: 3, Index: 1, Lo: 4, Hi: 9}, Body: []byte("body")}
	p, u := chunk.EncodeMsg()
	f.Add(p, u, false)
	end := Frame{H: Header{Op: OpReduce, Tag: 7, Index: 2, Filter: "topk:4"}, End: true, Total: 99}
	p, u = end.EncodeMsg()
	f.Add(p, u, true)
	f.Add(AppendEntries(nil, []Entry{{Rank: 1, Blob: []byte("x")}}), []byte{0, 0, 0, 1}, false)

	f.Fuzz(func(t *testing.T, payload, usr []byte, isEnd bool) {
		fr, err := DecodeMsg(isEnd, payload, usr)
		if err == nil {
			// Round trip: re-encoding a decoded frame reproduces the header
			// section and preserves the body.
			p2, u2 := fr.EncodeMsg()
			fr2, err := DecodeMsg(fr.End, p2, u2)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if fr2.H != fr.H || fr2.End != fr.End || fr2.Total != fr.Total || !bytes.Equal(fr2.Body, fr.Body) {
				t.Fatalf("round trip diverged: %+v vs %+v", fr, fr2)
			}
			// Feeding the frame to the assemblers must never panic.
			var raw RawAssembler
			if fr.End {
				raw.Finish(fr.H, fr.Total)
			} else {
				raw.Add(fr.H, fr.Body)
			}
			var rank RankAssembler
			if !fr.End {
				rank.Add(fr.H, fr.Body)
			}
		}
		// Entry decoding on arbitrary bytes must not panic; whatever
		// decodes must re-encode losslessly.
		if entries, err := DecodeEntries(usr); err == nil {
			re, err := DecodeEntries(AppendEntries(nil, entries))
			if err != nil || len(re) != len(entries) {
				t.Fatalf("entries re-decode: %v (%d vs %d)", err, len(re), len(entries))
			}
		}
		// Header decode directly over the raw payload.
		DecodeHeader(lmonp.NewReader(payload))
		// Sample lists feed the topk filter from untrusted peers.
		if items, err := DecodeSample(usr); err == nil {
			if _, err := DecodeSample(EncodeSample(items)); err != nil {
				t.Fatalf("sample re-decode: %v", err)
			}
		}
	})
}

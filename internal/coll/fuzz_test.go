package coll

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
)

// FuzzCollChunkDecode hardens the collective chunk decoders against
// corrupt or hostile frames: header + entry-list + end-marker parsing and
// the reassembly validators must reject garbage without panicking, and
// anything that decodes must re-encode to an equivalent wire form.
func FuzzCollChunkDecode(f *testing.F) {
	f.Add([]byte{}, []byte{}, false)
	chunk := Frame{H: Header{Op: OpGather, Tag: 3, Index: 1, Lo: 4, Hi: 9}, Body: []byte("body")}
	p, u := chunk.EncodeMsg()
	f.Add(p, u, false)
	end := Frame{H: Header{Op: OpReduce, Tag: 7, Index: 2, Filter: "topk:4"}, End: true, Total: 99}
	p, u = end.EncodeMsg()
	f.Add(p, u, true)
	f.Add(AppendEntries(nil, []Entry{{Rank: 1, Blob: []byte("x")}}), []byte{0, 0, 0, 1}, false)
	// The v2 plane's frames: flow-control credits (count rides Index),
	// the body-less two-phase barrier markers, and the all-variants whose
	// down-phase reuses the entry/raw stream layouts.
	cr := CreditFrame(MinUserTag+2, 5)
	p, u = cr.EncodeMsg()
	f.Add(p, u, false)
	bar := Frame{H: Header{Op: OpBarrier, Tag: MaxUserTag + 1}, End: true, Total: 0, Sum: lmonp.SumInit}
	p, u = bar.EncodeMsg()
	f.Add(p, u, true)
	ag := EntryFrames(OpAllGather, MinUserTag, []Entry{{Rank: 0, Blob: []byte("a")}, {Rank: 2, Blob: []byte("bb")}}, 64)
	p, u = ag[0].EncodeMsg()
	f.Add(p, u, false)
	ar := RawFrames(OpAllReduce, 9, "sum", []byte{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	p, u = ar[0].EncodeMsg()
	f.Add(p, u, false)
	p, u = ar[len(ar)-1].EncodeMsg()
	f.Add(p, u, true)

	f.Fuzz(func(t *testing.T, payload, usr []byte, isEnd bool) {
		fr, err := DecodeMsg(isEnd, payload, usr)
		if err == nil {
			// Round trip: re-encoding a decoded frame reproduces the header
			// section and preserves the body.
			p2, u2 := fr.EncodeMsg()
			fr2, err := DecodeMsg(fr.End, p2, u2)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if fr2.H != fr.H || fr2.End != fr.End || fr2.Total != fr.Total || !bytes.Equal(fr2.Body, fr.Body) {
				t.Fatalf("round trip diverged: %+v vs %+v", fr, fr2)
			}
			// Feeding the frame to the assemblers must never panic.
			var raw RawAssembler
			if fr.End {
				raw.Finish(fr.H, fr.Total)
			} else {
				raw.Add(fr.H, fr.Body)
			}
			var rank RankAssembler
			if !fr.End {
				rank.Add(fr.H, fr.Body)
			}
		}
		// Entry decoding on arbitrary bytes must not panic; whatever
		// decodes must re-encode losslessly.
		if entries, err := DecodeEntries(usr); err == nil {
			re, err := DecodeEntries(AppendEntries(nil, entries))
			if err != nil || len(re) != len(entries) {
				t.Fatalf("entries re-decode: %v (%d vs %d)", err, len(re), len(entries))
			}
		}
		// Header decode directly over the raw payload.
		DecodeHeader(lmonp.NewReader(payload))
		// Sample lists feed the topk filter from untrusted peers.
		if items, err := DecodeSample(usr); err == nil {
			if _, err := DecodeSample(EncodeSample(items)); err != nil {
				t.Fatalf("sample re-decode: %v", err)
			}
		}
	})
}

// FuzzSeedStreamValidate exercises the streaming seed-validation path
// (SeqCheck.AdmitFrame over the rolling-checksum contract): a pristine
// seed stream — FEData frame 0, RPDTAB chunks from 1, digest-bearing end
// marker — must always validate, and flipping any single body byte must
// be rejected before the stream is accepted.
func FuzzSeedStreamValidate(f *testing.F) {
	f.Add(0, 64, uint16(0), byte(0))
	f.Add(3, 64, uint16(2), byte(1))
	f.Add(100, 128, uint16(500), byte(0xff))
	f.Add(512, 32, uint16(9999), byte(7))

	f.Fuzz(func(t *testing.T, entries, chunkBytes int, corruptAt uint16, xor byte) {
		if entries < 0 {
			entries = -entries
		}
		entries %= 513
		if chunkBytes < 0 {
			chunkBytes = -chunkBytes
		}
		chunkBytes = 32 + chunkBytes%4096
		tab := make(proctab.Table, 0, entries)
		for i := 0; i < entries; i++ {
			tab = append(tab, proctab.ProcDesc{
				Host: fmt.Sprintf("node%d", i/4), Exe: "app", Pid: 100 + i, Rank: i,
			})
		}

		feData := []byte("fe-bootstrap-data")
		frames := []Frame{{
			H: Header{Op: OpSeed, Index: 0}, Body: feData, Sum: lmonp.Sum64(feData),
		}}
		w := proctab.NewChunkWriter(chunkBytes, func(chunk []byte, sum uint64) error {
			frames = append(frames, Frame{
				H: Header{Op: OpSeed, Index: uint32(len(frames))}, Body: chunk, Sum: sum,
			})
			return nil
		})
		if err := w.AddTable(tab); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, Frame{
			H: Header{Op: OpSeed, Index: uint32(len(frames))}, End: true,
			Total: uint64(entries), Sum: w.Digest(),
		})

		// The pristine stream must validate end to end.
		var chk SeqCheck
		for _, fr := range frames {
			if err := chk.AdmitFrame(fr); err != nil {
				t.Fatalf("pristine seed stream rejected: %v", err)
			}
		}
		if chk.Digest() != w.Digest() {
			t.Fatalf("link digest %#x != writer digest %#x", chk.Digest(), w.Digest())
		}

		if xor == 0 {
			return
		}
		// Flip one body byte somewhere in the stream: validation must fail.
		bodyBytes := 0
		for _, fr := range frames {
			bodyBytes += len(fr.Body)
		}
		if bodyBytes == 0 {
			return
		}
		target := int(corruptAt) % bodyBytes
		var bad SeqCheck
		failed := false
		for _, fr := range frames {
			if !fr.End && target >= 0 && target < len(fr.Body) {
				mut := append([]byte(nil), fr.Body...)
				mut[target] ^= xor
				fr.Body = mut
			}
			if !fr.End {
				target -= len(fr.Body)
			}
			if err := bad.AdmitFrame(fr); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			t.Fatal("corrupted seed stream validated")
		}
	})
}

// FuzzMultiTagSeqCheck exercises the per-tag stream discipline that the
// concurrent tagged collectives rely on: frames of several tagged streams
// interleaved arbitrarily on one link must validate when demultiplexed
// into per-tag SeqChecks, and a duplicated delivery, a dropped chunk, or
// a frame misrouted into another tag's checker must each be rejected by
// exactly the tag it corrupts — never by an unrelated one.
func FuzzMultiTagSeqCheck(f *testing.F) {
	f.Add(2, 300, 64, byte(0), uint16(0))
	f.Add(3, 1000, 48, byte(1), uint16(5))
	f.Add(4, 256, 32, byte(2), uint16(2))
	f.Add(4, 2048, 96, byte(3), uint16(11))
	f.Add(1, 0, 64, byte(1), uint16(0))

	f.Fuzz(func(t *testing.T, tags, payloadLen, chunkBytes int, mutate byte, at uint16) {
		if tags < 0 {
			tags = -tags
		}
		tags = 1 + tags%4
		if payloadLen < 0 {
			payloadLen = -payloadLen
		}
		payloadLen %= 4096
		if chunkBytes < 0 {
			chunkBytes = -chunkBytes
		}
		chunkBytes = 16 + chunkBytes%512

		// One chunked stream per tag, cycling through the raw-stream ops
		// (reduce carries a filter, which SeqCheck pins per stream).
		ops := []Op{OpReduce, OpAllReduce, OpBroadcast, OpGather}
		streams := make([][]Frame, tags)
		for i := range streams {
			op := ops[i%len(ops)]
			var filter string
			if op == OpReduce || op == OpAllReduce {
				filter = "concat"
			}
			body := bytes.Repeat([]byte{byte(0x30 + i)}, payloadLen)
			streams[i] = RawFrames(op, MinUserTag+uint32(i), filter, body, chunkBytes)
		}
		// Round-robin the streams into one link delivery order.
		var link []Frame
		cursor := make([]int, tags)
		for {
			advanced := false
			for i := range streams {
				if cursor[i] < len(streams[i]) {
					link = append(link, streams[i][cursor[i]])
					cursor[i]++
					advanced = true
				}
			}
			if !advanced {
				break
			}
		}

		admit := func(chk map[uint32]*SeqCheck, fr Frame) error {
			c := chk[fr.H.Tag]
			if c == nil {
				c = new(SeqCheck)
				chk[fr.H.Tag] = c
			}
			return c.AdmitFrame(fr)
		}

		// The pristine interleaving must validate on every tag.
		pristine := make(map[uint32]*SeqCheck, tags)
		for _, fr := range link {
			if err := admit(pristine, fr); err != nil {
				t.Fatalf("pristine interleaved stream rejected (tag %d): %v", fr.H.Tag, err)
			}
		}

		target := int(at) % len(link)
		victim := link[target]
		switch mutate % 4 {
		case 0:
			// No corruption round for this input.
		case 1:
			// Duplicate delivery of one frame: the victim tag must reject
			// the replay as a duplicate; other tags stay clean.
			bad := make(map[uint32]*SeqCheck, tags)
			for i, fr := range link {
				if err := admit(bad, fr); err != nil {
					t.Fatalf("clean frame rejected before replay (tag %d): %v", fr.H.Tag, err)
				}
				if i == target {
					err := admit(bad, fr)
					if !errors.Is(err, ErrChunkDup) {
						t.Fatalf("replayed frame (tag %d index %d): got %v, want ErrChunkDup", fr.H.Tag, fr.H.Index, err)
					}
					return
				}
			}
		case 2:
			// Drop one chunk: the victim tag's next frame must report a
			// gap. Dropping the end marker is undetectable by sequencing
			// alone (the stream simply never completes), so skip that case.
			if victim.End {
				return
			}
			bad := make(map[uint32]*SeqCheck, tags)
			for i, fr := range link {
				if i == target {
					continue
				}
				err := admit(bad, fr)
				if fr.H.Tag == victim.H.Tag && fr.H.Index > victim.H.Index {
					if !errors.Is(err, ErrChunkGap) {
						t.Fatalf("frame after dropped chunk (tag %d): got %v, want ErrChunkGap", fr.H.Tag, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("unrelated tag %d rejected after drop on tag %d: %v", fr.H.Tag, victim.H.Tag, err)
				}
			}
			t.Fatalf("dropped chunk (tag %d index %d) never detected", victim.H.Tag, victim.H.Index)
		case 3:
			// Misroute one frame into another tag's checker: the tag pin
			// must reject the foreign frame as a mixed stream. The target
			// must land after the first round-robin cycle so every tag's
			// checker has started (an unstarted checker pins whatever tag
			// it sees first — that is the demultiplexer's job to prevent,
			// not SeqCheck's).
			if tags < 2 {
				return
			}
			if target < tags {
				target += tags
				victim = link[target]
			}
			other := (victim.H.Tag-MinUserTag+1)%uint32(tags) + MinUserTag
			bad := make(map[uint32]*SeqCheck, tags)
			for i, fr := range link {
				if err := admit(bad, fr); err != nil {
					t.Fatalf("clean frame rejected before misroute (tag %d): %v", fr.H.Tag, err)
				}
				if i == target {
					err := bad[other].AdmitFrame(victim)
					if !errors.Is(err, ErrStreamMix) {
						t.Fatalf("misrouted frame (tag %d into %d): got %v, want ErrStreamMix", victim.H.Tag, other, err)
					}
					return
				}
			}
		}
	})
}

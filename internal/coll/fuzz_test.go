package coll

import (
	"bytes"
	"fmt"
	"testing"

	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
)

// FuzzCollChunkDecode hardens the collective chunk decoders against
// corrupt or hostile frames: header + entry-list + end-marker parsing and
// the reassembly validators must reject garbage without panicking, and
// anything that decodes must re-encode to an equivalent wire form.
func FuzzCollChunkDecode(f *testing.F) {
	f.Add([]byte{}, []byte{}, false)
	chunk := Frame{H: Header{Op: OpGather, Tag: 3, Index: 1, Lo: 4, Hi: 9}, Body: []byte("body")}
	p, u := chunk.EncodeMsg()
	f.Add(p, u, false)
	end := Frame{H: Header{Op: OpReduce, Tag: 7, Index: 2, Filter: "topk:4"}, End: true, Total: 99}
	p, u = end.EncodeMsg()
	f.Add(p, u, true)
	f.Add(AppendEntries(nil, []Entry{{Rank: 1, Blob: []byte("x")}}), []byte{0, 0, 0, 1}, false)

	f.Fuzz(func(t *testing.T, payload, usr []byte, isEnd bool) {
		fr, err := DecodeMsg(isEnd, payload, usr)
		if err == nil {
			// Round trip: re-encoding a decoded frame reproduces the header
			// section and preserves the body.
			p2, u2 := fr.EncodeMsg()
			fr2, err := DecodeMsg(fr.End, p2, u2)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if fr2.H != fr.H || fr2.End != fr.End || fr2.Total != fr.Total || !bytes.Equal(fr2.Body, fr.Body) {
				t.Fatalf("round trip diverged: %+v vs %+v", fr, fr2)
			}
			// Feeding the frame to the assemblers must never panic.
			var raw RawAssembler
			if fr.End {
				raw.Finish(fr.H, fr.Total)
			} else {
				raw.Add(fr.H, fr.Body)
			}
			var rank RankAssembler
			if !fr.End {
				rank.Add(fr.H, fr.Body)
			}
		}
		// Entry decoding on arbitrary bytes must not panic; whatever
		// decodes must re-encode losslessly.
		if entries, err := DecodeEntries(usr); err == nil {
			re, err := DecodeEntries(AppendEntries(nil, entries))
			if err != nil || len(re) != len(entries) {
				t.Fatalf("entries re-decode: %v (%d vs %d)", err, len(re), len(entries))
			}
		}
		// Header decode directly over the raw payload.
		DecodeHeader(lmonp.NewReader(payload))
		// Sample lists feed the topk filter from untrusted peers.
		if items, err := DecodeSample(usr); err == nil {
			if _, err := DecodeSample(EncodeSample(items)); err != nil {
				t.Fatalf("sample re-decode: %v", err)
			}
		}
	})
}

// FuzzSeedStreamValidate exercises the streaming seed-validation path
// (SeqCheck.AdmitFrame over the rolling-checksum contract): a pristine
// seed stream — FEData frame 0, RPDTAB chunks from 1, digest-bearing end
// marker — must always validate, and flipping any single body byte must
// be rejected before the stream is accepted.
func FuzzSeedStreamValidate(f *testing.F) {
	f.Add(0, 64, uint16(0), byte(0))
	f.Add(3, 64, uint16(2), byte(1))
	f.Add(100, 128, uint16(500), byte(0xff))
	f.Add(512, 32, uint16(9999), byte(7))

	f.Fuzz(func(t *testing.T, entries, chunkBytes int, corruptAt uint16, xor byte) {
		if entries < 0 {
			entries = -entries
		}
		entries %= 513
		if chunkBytes < 0 {
			chunkBytes = -chunkBytes
		}
		chunkBytes = 32 + chunkBytes%4096
		tab := make(proctab.Table, 0, entries)
		for i := 0; i < entries; i++ {
			tab = append(tab, proctab.ProcDesc{
				Host: fmt.Sprintf("node%d", i/4), Exe: "app", Pid: 100 + i, Rank: i,
			})
		}

		feData := []byte("fe-bootstrap-data")
		frames := []Frame{{
			H: Header{Op: OpSeed, Index: 0}, Body: feData, Sum: lmonp.Sum64(feData),
		}}
		w := proctab.NewChunkWriter(chunkBytes, func(chunk []byte, sum uint64) error {
			frames = append(frames, Frame{
				H: Header{Op: OpSeed, Index: uint32(len(frames))}, Body: chunk, Sum: sum,
			})
			return nil
		})
		if err := w.AddTable(tab); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, Frame{
			H: Header{Op: OpSeed, Index: uint32(len(frames))}, End: true,
			Total: uint64(entries), Sum: w.Digest(),
		})

		// The pristine stream must validate end to end.
		var chk SeqCheck
		for _, fr := range frames {
			if err := chk.AdmitFrame(fr); err != nil {
				t.Fatalf("pristine seed stream rejected: %v", err)
			}
		}
		if chk.Digest() != w.Digest() {
			t.Fatalf("link digest %#x != writer digest %#x", chk.Digest(), w.Digest())
		}

		if xor == 0 {
			return
		}
		// Flip one body byte somewhere in the stream: validation must fail.
		bodyBytes := 0
		for _, fr := range frames {
			bodyBytes += len(fr.Body)
		}
		if bodyBytes == 0 {
			return
		}
		target := int(corruptAt) % bodyBytes
		var bad SeqCheck
		failed := false
		for _, fr := range frames {
			if !fr.End && target >= 0 && target < len(fr.Body) {
				mut := append([]byte(nil), fr.Body...)
				mut[target] ^= xor
				fr.Body = mut
			}
			if !fr.End {
				target -= len(fr.Body)
			}
			if err := bad.AdmitFrame(fr); err != nil {
				failed = true
				break
			}
		}
		if !failed {
			t.Fatal("corrupted seed stream validated")
		}
	})
}

// Package coll is the wire codec of the collective tool-data plane: the
// chunk framing, rank-tagged entry encoding, stream reassembly and
// pluggable reduction filters shared by the FE-side Session collectives
// (internal/core), the ICCL tree routing (internal/iccl) and the tools.
//
// A collective payload travels as a stream of bounded-size chunks — the
// same idiom as the chunked RPDTAB transfer (internal/proctab/stream.go)
// — closed by an end marker carrying a total for reassembly validation.
// Every chunk is preceded by a Header naming the operation, the
// session-wide collective tag, the chunk's index within its stream, and
// the rank range its entries cover; reduce streams additionally carry the
// filter spec so every tree node combines with the same function.
package coll

import (
	"errors"
	"fmt"

	"launchmon/internal/lmonp"
)

// Op identifies the collective operation a chunk belongs to.
type Op uint8

// The four collectives of the tool-data plane, plus the launch-time
// session-seed stream.
const (
	OpBroadcast Op = iota + 1 // FE → every daemon: raw byte stream
	OpScatter                 // FE → per-rank parts: rank-tagged entries
	OpGather                  // every daemon → FE: rank-tagged entries
	OpReduce                  // every daemon → FE: combined at interior nodes

	// OpSeed is the cut-through session-seed stream of the launch pipeline
	// (iccl.BootstrapSeed): frame 0 carries the piggybacked FEData, later
	// frames carry RPDTAB chunks, and the end marker's Total is the table's
	// entry count. It never shares a link direction with the tool-data
	// collectives — the seed completes before the plane is usable — so it
	// needs no tag discipline; Tag is always 0.
	OpSeed

	// OpBarrier is the two-phase tree barrier (DAOS crt_barrier model):
	// an up-phase of End markers gathering at the root, then a release
	// wave of End markers back down. Barrier streams carry no chunks.
	OpBarrier
	// OpAllGather is a gather whose reassembled rank table is then
	// redistributed down the tree, so every daemon ends with all K
	// contributions.
	OpAllGather
	// OpAllReduce is a reduce whose up-phase combine is redistributed down
	// the tree, so every daemon ends with the combined result.
	OpAllReduce

	// OpCredit is the flow-control frame of the credit window: a receiver
	// returns Index credits for the (link, tag) stream as it consumes
	// chunks, releasing the sender to put more chunks in flight. Credit
	// frames never carry a body and never consume credit themselves.
	OpCredit
)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpBroadcast:
		return "broadcast"
	case OpScatter:
		return "scatter"
	case OpGather:
		return "gather"
	case OpReduce:
		return "reduce"
	case OpSeed:
		return "seed"
	case OpBarrier:
		return "barrier"
	case OpAllGather:
		return "allgather"
	case OpAllReduce:
		return "allreduce"
	case OpCredit:
		return "credit"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// DefaultChunkBytes bounds one collective chunk body when the session does
// not configure a size (core.Options.CollChunkBytes).
const DefaultChunkBytes = 64 << 10

// DefaultWindow is the per-(link, tag) outstanding-chunk credit budget
// when the session does not configure one (core.Options.CollWindow):
// a sender may have at most this many un-credited chunks in flight on
// one link for one tagged stream, bounding interior queue depth at
// window × chunk bytes regardless of tree size or subtree skew.
const DefaultWindow = 32

// Tag spaces of the collective plane. Lockstep (SPMD-ordered) session
// collectives use tags below MinUserTag; concurrent tagged streams
// allocated by Session.AllocTag live in [MinUserTag, MaxUserTag); tags
// at or above MaxUserTag are reserved for tree-internal lockstep
// sequences. The split lets readers route tagged frames to per-tag
// queues while lockstep traffic keeps its legacy single-queue path.
const (
	MinUserTag uint32 = 1 << 16
	MaxUserTag uint32 = 1 << 31
)

// CreditFrame builds an OpCredit frame returning n credits for the
// tagged stream. Credits ride in the header's Index field: the frame
// has no body, no end marker and no checksum.
func CreditFrame(tag uint32, n uint32) Frame {
	return Frame{H: Header{Op: OpCredit, Tag: tag, Index: n}}
}

// Credits returns the credit count of an OpCredit frame.
func (f Frame) Credits() uint32 { return f.H.Index }

// Header precedes every collective chunk and end marker.
type Header struct {
	Op     Op
	Tag    uint32 // session-wide collective sequence number
	Index  uint32 // chunk index within its per-link stream, from 0
	Lo, Hi uint32 // rank range [Lo, Hi) covered by this chunk's entries
	Filter string // reduction filter spec (OpReduce streams only)
}

// Encode renders the header.
func (h Header) Encode() []byte {
	b := []byte{byte(h.Op)}
	b = lmonp.AppendUint32(b, h.Tag)
	b = lmonp.AppendUint32(b, h.Index)
	b = lmonp.AppendUint32(b, h.Lo)
	b = lmonp.AppendUint32(b, h.Hi)
	b = lmonp.AppendString(b, h.Filter)
	return b
}

// ErrBadHeader reports an undecodable or inconsistent collective header.
var ErrBadHeader = errors.New("coll: bad header")

// DecodeHeader consumes one encoded header from rd.
func DecodeHeader(rd *lmonp.Reader) (Header, error) {
	var h Header
	op, err := rd.Byte()
	if err != nil {
		return h, err
	}
	h.Op = Op(op)
	if h.Op < OpBroadcast || h.Op > OpCredit {
		return h, fmt.Errorf("%w: op %d", ErrBadHeader, op)
	}
	if h.Tag, err = rd.Uint32(); err != nil {
		return h, err
	}
	if h.Index, err = rd.Uint32(); err != nil {
		return h, err
	}
	if h.Lo, err = rd.Uint32(); err != nil {
		return h, err
	}
	if h.Hi, err = rd.Uint32(); err != nil {
		return h, err
	}
	if h.Filter, err = rd.String(); err != nil {
		return h, err
	}
	return h, nil
}

// Frame is one unit of a collective stream on any link: a chunk (Body
// holds data) or the end marker (Total holds the stream's byte or entry
// count, matching the proctab end-marker idiom). Sum is the frame's
// checksum: Sum64 of the body for chunks, the stream's rolling digest
// for end markers — what lets a receiver validate a stream at O(chunk)
// memory instead of retaining it for comparison.
type Frame struct {
	H     Header
	Body  []byte
	End   bool
	Total uint64
	Sum   uint64
}

// EncodeMsg renders the frame as the two LMONP payload sections of a
// TypeCollChunk (chunks) or TypeCollEnd (end markers) message: the header
// — plus the total, for end markers — and the checksum in the LaunchMON
// section, the chunk body as piggybacked tool data.
func (f Frame) EncodeMsg() (payload, usr []byte) {
	payload = f.H.Encode()
	if f.End {
		payload = lmonp.AppendUint64(payload, f.Total)
		payload = lmonp.AppendUint64(payload, f.Sum)
		return payload, nil
	}
	payload = lmonp.AppendUint64(payload, f.Sum)
	return payload, f.Body
}

// DecodeMsg parses the payload sections of a collective LMONP message
// (end selects the TypeCollEnd layout).
func DecodeMsg(end bool, payload, usr []byte) (Frame, error) {
	rd := lmonp.NewReader(payload)
	h, err := DecodeHeader(rd)
	if err != nil {
		return Frame{}, err
	}
	f := Frame{H: h}
	if end {
		if f.Total, err = rd.Uint64(); err != nil {
			return Frame{}, fmt.Errorf("%w: end total: %v", ErrBadHeader, err)
		}
		if f.Sum, err = rd.Uint64(); err != nil {
			return Frame{}, fmt.Errorf("%w: end sum: %v", ErrBadHeader, err)
		}
		f.End = true
		return f, nil
	}
	if f.Sum, err = rd.Uint64(); err != nil {
		return Frame{}, fmt.Errorf("%w: chunk sum: %v", ErrBadHeader, err)
	}
	f.Body = usr
	return f, nil
}

// Entry is one rank-tagged blob inside a scatter or gather chunk.
type Entry struct {
	Rank int
	Blob []byte
}

// AppendEntries encodes a count-prefixed list of rank-tagged blobs.
func AppendEntries(b []byte, entries []Entry) []byte {
	b = lmonp.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = lmonp.AppendUint32(b, uint32(e.Rank))
		b = lmonp.AppendBytes(b, e.Blob)
	}
	return b
}

// DecodeEntries parses an entry list (blobs alias the input buffer).
func DecodeEntries(b []byte) ([]Entry, error) {
	rd := lmonp.NewReader(b)
	n, err := rd.Uint32()
	if err != nil {
		return nil, err
	}
	// Each entry needs at least its rank and blob-length fields.
	if uint64(n)*8 > uint64(rd.Remaining()) {
		return nil, fmt.Errorf("%w: %d entries, %d bytes remain", lmonp.ErrTruncated, n, rd.Remaining())
	}
	out := make([]Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		rk, err := rd.Uint32()
		if err != nil {
			return nil, err
		}
		blob, err := rd.Bytes()
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{Rank: int(rk), Blob: blob})
	}
	return out, nil
}

// SplitRaw splits data into chunk bodies of at most maxBytes each
// (maxBytes <= 0 selects DefaultChunkBytes). Empty data yields a single
// empty chunk, mirroring proctab.EncodeChunks.
func SplitRaw(data []byte, maxBytes int) [][]byte {
	if maxBytes <= 0 {
		maxBytes = DefaultChunkBytes
	}
	if len(data) == 0 {
		return [][]byte{nil}
	}
	var chunks [][]byte
	for len(data) > 0 {
		n := maxBytes
		if n > len(data) {
			n = len(data)
		}
		chunks = append(chunks, data[:n])
		data = data[n:]
	}
	return chunks
}

// RawFrames renders a raw byte stream (broadcast payloads, reduce
// results) as its chunk frames plus the end marker (Total = byte count).
func RawFrames(op Op, tag uint32, filter string, data []byte, maxBytes int) []Frame {
	chunks := SplitRaw(data, maxBytes)
	out := make([]Frame, 0, len(chunks)+1)
	digest := lmonp.SumInit
	for i, ch := range chunks {
		sum := lmonp.Sum64(ch)
		digest = lmonp.FoldSum(digest, sum)
		out = append(out, Frame{
			H:    Header{Op: op, Tag: tag, Index: uint32(i), Filter: filter},
			Body: ch,
			Sum:  sum,
		})
	}
	out = append(out, Frame{
		H:     Header{Op: op, Tag: tag, Index: uint32(len(chunks)), Filter: filter},
		End:   true,
		Total: uint64(len(data)),
		Sum:   digest,
	})
	return out
}

// Packer coalesces rank-tagged entries into chunk frames of at most
// ChunkBytes each on one outgoing stream, emitting them through Emit as
// they fill, closed by an end marker carrying the entry total. It is the
// single implementation of the entry-packing invariant, shared by the
// FE-originated scatter framing and the interior re-bucketing /
// gather-coalescing hops. A single entry larger than ChunkBytes travels
// as one oversized chunk rather than an error, like an oversized proctab
// entry.
type Packer struct {
	Op         Op
	Tag        uint32
	ChunkBytes int
	Emit       func(Frame) error

	pend   []Entry
	size   int
	index  uint32
	total  uint64
	digest uint64
}

// Add appends one entry (copying its blob), flushing a frame when the
// pending chunk would exceed the bound.
func (p *Packer) Add(e Entry) error {
	if p.ChunkBytes <= 0 {
		p.ChunkBytes = DefaultChunkBytes
	}
	add := 8 + len(e.Blob) // rank + blob-length prefixes + blob
	if len(p.pend) > 0 && p.size+add > p.ChunkBytes {
		if err := p.flush(); err != nil {
			return err
		}
	}
	if len(p.pend) == 0 {
		p.size = 4 // the chunk's entry-count prefix
	}
	p.pend = append(p.pend, Entry{Rank: e.Rank, Blob: append([]byte(nil), e.Blob...)})
	p.size += add
	p.total++
	return nil
}

func (p *Packer) flush() error {
	if len(p.pend) == 0 {
		return nil
	}
	lo, hi := uint32(p.pend[0].Rank), uint32(p.pend[0].Rank)+1
	for _, e := range p.pend[1:] {
		if uint32(e.Rank) < lo {
			lo = uint32(e.Rank)
		}
		if uint32(e.Rank)+1 > hi {
			hi = uint32(e.Rank) + 1
		}
	}
	body := AppendEntries(nil, p.pend)
	sum := lmonp.Sum64(body)
	if p.index == 0 {
		p.digest = lmonp.SumInit
	}
	p.digest = lmonp.FoldSum(p.digest, sum)
	f := Frame{
		H:    Header{Op: p.Op, Tag: p.Tag, Index: p.index, Lo: lo, Hi: hi},
		Body: body,
		Sum:  sum,
	}
	p.pend, p.size = nil, 0
	p.index++
	return p.Emit(f)
}

// End flushes the final partial chunk and emits the end marker.
func (p *Packer) End() error {
	if err := p.flush(); err != nil {
		return err
	}
	if p.index == 0 {
		p.digest = lmonp.SumInit
	}
	return p.Emit(Frame{
		H:     Header{Op: p.Op, Tag: p.Tag, Index: p.index},
		End:   true,
		Total: p.total,
		Sum:   p.digest,
	})
}

// EntryFrames packs rank-tagged entries into chunk frames of roughly
// maxBytes each plus the end marker (Total = entry count).
func EntryFrames(op Op, tag uint32, entries []Entry, maxBytes int) []Frame {
	var out []Frame
	p := Packer{Op: op, Tag: tag, ChunkBytes: maxBytes, Emit: func(f Frame) error {
		out = append(out, f)
		return nil
	}}
	for _, e := range entries {
		p.Add(e)
	}
	p.End()
	return out
}

// Stream-reassembly errors (mirrored on the proctab Assembler contract;
// the duplicate/out-of-order distinction matters to tests and fuzzing —
// links are FIFO, so either means a corrupted or hostile peer).
var (
	ErrChunkDup   = errors.New("coll: duplicate or out-of-order chunk")
	ErrChunkGap   = errors.New("coll: chunk gap")
	ErrStreamMix  = errors.New("coll: mixed streams")
	ErrShortTotal = errors.New("coll: reassembly total mismatch")
)

// stream pins the op/tag/filter of a chunk stream and validates the chunk
// index sequence.
type stream struct {
	started bool
	h       Header // op/tag/filter of the stream
	next    uint32
}

func (s *stream) admit(h Header) error {
	if !s.started {
		s.started, s.h = true, h
	} else if h.Op != s.h.Op || h.Tag != s.h.Tag || h.Filter != s.h.Filter {
		return fmt.Errorf("%w: %v/tag %d/filter %q in %v/tag %d/filter %q stream",
			ErrStreamMix, h.Op, h.Tag, h.Filter, s.h.Op, s.h.Tag, s.h.Filter)
	}
	switch {
	case h.Index < s.next:
		return fmt.Errorf("%w: chunk %d after %d", ErrChunkDup, h.Index, s.next)
	case h.Index > s.next:
		return fmt.Errorf("%w: chunk %d, expected %d", ErrChunkGap, h.Index, s.next)
	}
	s.next++
	return nil
}

// SeqCheck validates a per-link chunk stream — op/tag/filter consistency
// and in-order, duplicate-free indices — without retaining data, for
// interior nodes that forward frames verbatim. AdmitFrame additionally
// verifies per-chunk checksums and rolls the stream digest, so every
// rank of a seed stream validates its link's bytes at O(chunk) memory.
type SeqCheck struct {
	s      stream
	digest uint64
	rolled bool
}

// Admit validates the next frame header of the stream.
func (c *SeqCheck) Admit(h Header) error { return c.s.admit(h) }

// AdmitFrame validates the next frame of a checksummed stream: header
// sequencing, the chunk body against its Sum, and — for the end marker —
// the sender's digest against the locally rolled one. Seed streams carry
// the piggybacked FEData as frame 0; it is checksummed like any chunk
// but excluded from the payload digest, so the link digest equals the
// digest of the RPDTAB chunk stream alone.
func (c *SeqCheck) AdmitFrame(f Frame) error {
	if err := c.s.admit(f.H); err != nil {
		return err
	}
	if !c.rolled {
		c.digest = lmonp.SumInit
		c.rolled = true
	}
	if f.End {
		if f.Sum != c.digest {
			return fmt.Errorf("coll: %v stream digest mismatch: end marker %#x, rolled %#x", f.H.Op, f.Sum, c.digest)
		}
		return nil
	}
	if sum := lmonp.Sum64(f.Body); f.Sum != sum {
		return fmt.Errorf("coll: %v chunk %d checksum mismatch: frame %#x, body %#x", f.H.Op, f.H.Index, f.Sum, sum)
	}
	if f.H.Op != OpSeed || f.H.Index >= 1 {
		c.digest = lmonp.FoldSum(c.digest, f.Sum)
	}
	return nil
}

// Digest returns the rolling digest over the chunk frames admitted so
// far (SumInit before any).
func (c *SeqCheck) Digest() uint64 {
	if !c.rolled {
		return lmonp.SumInit
	}
	return c.digest
}

// RawAssembler reassembles a raw chunk stream (broadcast payloads,
// reduce results), validating in-order duplicate-free chunk indices.
type RawAssembler struct {
	s    stream
	data []byte
}

// Add validates and appends one chunk.
func (a *RawAssembler) Add(h Header, body []byte) error {
	if err := a.s.admit(h); err != nil {
		return err
	}
	a.data = append(a.data, body...)
	return nil
}

// Finish validates the end marker (h continues the stream's index
// sequence; total is the stream's byte count) and returns the payload.
func (a *RawAssembler) Finish(h Header, total uint64) ([]byte, error) {
	if err := a.s.admit(h); err != nil {
		return nil, err
	}
	if uint64(len(a.data)) != total {
		return nil, fmt.Errorf("%w: reassembled %d bytes, end marker says %d", ErrShortTotal, len(a.data), total)
	}
	return a.data, nil
}

// Filter returns the stream's filter spec (reduce streams).
func (a *RawAssembler) Filter() string { return a.s.h.Filter }

// RankAssembler reassembles a rank-tagged entry stream (the FE side of a
// gather), validating chunk order and that no rank contributes twice.
type RankAssembler struct {
	s      stream
	byRank map[int][]byte
}

// Add validates one chunk and indexes its entries by rank.
func (a *RankAssembler) Add(h Header, body []byte) error {
	if err := a.s.admit(h); err != nil {
		return err
	}
	entries, err := DecodeEntries(body)
	if err != nil {
		return err
	}
	if a.byRank == nil {
		a.byRank = make(map[int][]byte)
	}
	for _, e := range entries {
		if _, dup := a.byRank[e.Rank]; dup {
			return fmt.Errorf("coll: rank %d contributed twice", e.Rank)
		}
		a.byRank[e.Rank] = append([]byte(nil), e.Blob...)
	}
	return nil
}

// Finish validates the end marker against the expected participant count
// and returns the contributions indexed by rank (every rank in [0, size)
// exactly once).
func (a *RankAssembler) Finish(h Header, total uint64, size int) ([][]byte, error) {
	if err := a.s.admit(h); err != nil {
		return nil, err
	}
	if total != uint64(len(a.byRank)) || len(a.byRank) != size {
		return nil, fmt.Errorf("%w: %d contributions, end marker says %d, expected %d",
			ErrShortTotal, len(a.byRank), total, size)
	}
	out := make([][]byte, size)
	for rk, blob := range a.byRank {
		if rk < 0 || rk >= size {
			return nil, fmt.Errorf("coll: contribution from out-of-range rank %d", rk)
		}
		out[rk] = blob
	}
	return out, nil
}

package simnet

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"launchmon/internal/vtime"
)

func pair(t *testing.T, sim *vtime.Sim, opts Options) (*Network, *Host, *Host) {
	t.Helper()
	n := New(sim, opts)
	return n, n.Host("a"), n.Host("b")
}

func TestDialAndEcho(t *testing.T) {
	sim := vtime.New()
	_, a, b := pair(t, sim, Options{})
	l, err := b.Listen(9000)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	sim.Go("server", func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 16)
		n, err := c.Read(buf)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write(buf[:n]); err != nil {
			t.Error(err)
		}
	})
	sim.Go("client", func() {
		c, err := a.Dial(Addr{Host: "b", Port: 9000})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Write([]byte("hello")); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 16)
		n, err := c.Read(buf)
		if err != nil {
			t.Error(err)
			return
		}
		got = buf[:n]
	})
	sim.Run()
	if string(got) != "hello" {
		t.Fatalf("echo = %q", got)
	}
}

func TestDialLatencyCost(t *testing.T) {
	sim := vtime.New()
	lat := time.Millisecond
	_, a, b := pair(t, sim, Options{Latency: lat})
	l, _ := b.Listen(1)
	var dialDone, acceptAt time.Duration
	sim.Go("srv", func() {
		if _, err := l.Accept(); err == nil {
			acceptAt = sim.Now()
		}
	})
	sim.Go("cli", func() {
		if _, err := a.Dial(l.Addr()); err != nil {
			t.Error(err)
			return
		}
		dialDone = sim.Now()
	})
	sim.Run()
	if acceptAt != lat {
		t.Errorf("accept at %v, want %v", acceptAt, lat)
	}
	if dialDone != 2*lat {
		t.Errorf("dial returned at %v, want %v", dialDone, 2*lat)
	}
}

func TestDialNoListener(t *testing.T) {
	sim := vtime.New()
	_, a, _ := pair(t, sim, Options{})
	var err error
	sim.Go("cli", func() {
		_, err = a.Dial(Addr{Host: "b", Port: 77})
	})
	sim.Run()
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestDialUnknownHost(t *testing.T) {
	sim := vtime.New()
	n := New(sim, Options{})
	a := n.Host("a")
	var err error
	sim.Go("cli", func() { _, err = a.Dial(Addr{Host: "ghost", Port: 1}) })
	sim.Run()
	if err == nil {
		t.Fatal("dial to unknown host succeeded")
	}
}

func TestMessageLatencyAndBandwidth(t *testing.T) {
	sim := vtime.New()
	lat := time.Millisecond
	bw := 1e6 // 1 MB/s
	_, a, b := pair(t, sim, Options{Latency: lat, Bandwidth: bw})
	l, _ := b.Listen(1)
	size := 10000 // 10 ms of transmission at 1 MB/s
	var recvAt time.Duration
	sim.Go("srv", func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		if _, err := io.ReadFull(c, make([]byte, size)); err != nil {
			t.Error(err)
			return
		}
		recvAt = sim.Now()
	})
	sim.Go("cli", func() {
		c, err := a.Dial(l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(make([]byte, size))
	})
	sim.Run()
	// dial completes at 2ms; tx takes 10ms; arrival +1ms latency = 13ms.
	want := 2*lat + 10*time.Millisecond + lat
	if recvAt != want {
		t.Fatalf("large message arrived at %v, want %v", recvAt, want)
	}
}

func TestBackToBackWritesSerialize(t *testing.T) {
	sim := vtime.New()
	lat := time.Millisecond
	bw := 1e6
	_, a, b := pair(t, sim, Options{Latency: lat, Bandwidth: bw})
	l, _ := b.Listen(1)
	var lastAt time.Duration
	const msgs, size = 5, 1000 // each 1ms of tx
	sim.Go("srv", func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		if _, err := io.ReadFull(c, make([]byte, msgs*size)); err != nil {
			t.Error(err)
			return
		}
		lastAt = sim.Now()
	})
	sim.Go("cli", func() {
		c, err := a.Dial(l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < msgs; i++ {
			c.Write(make([]byte, size)) // non-blocking; must serialize on wire
		}
	})
	sim.Run()
	want := 2*lat + msgs*time.Millisecond + lat
	if lastAt != want {
		t.Fatalf("last byte at %v, want %v", lastAt, want)
	}
}

func TestLoopbackIsFaster(t *testing.T) {
	sim := vtime.New()
	n := New(sim, Options{Latency: time.Millisecond, LoopbackLatency: time.Microsecond})
	a := n.Host("a")
	l, _ := a.Listen(5)
	var dialDone time.Duration
	sim.Go("srv", func() { l.Accept() })
	sim.Go("cli", func() {
		if _, err := a.Dial(l.Addr()); err != nil {
			t.Error(err)
			return
		}
		dialDone = sim.Now()
	})
	sim.Run()
	if dialDone != 2*time.Microsecond {
		t.Fatalf("loopback dial took %v, want 2us", dialDone)
	}
}

func TestCloseDeliversEOFAfterData(t *testing.T) {
	sim := vtime.New()
	_, a, b := pair(t, sim, Options{})
	l, _ := b.Listen(1)
	var got []byte
	var readErr error
	sim.Go("srv", func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		got, readErr = io.ReadAll(c)
	})
	sim.Go("cli", func() {
		c, err := a.Dial(l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("payload"))
		c.Close()
	})
	sim.Run()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(got) != "payload" {
		t.Fatalf("got %q before EOF", got)
	}
}

func TestWriteAfterClose(t *testing.T) {
	sim := vtime.New()
	_, a, b := pair(t, sim, Options{})
	l, _ := b.Listen(1)
	var err error
	sim.Go("srv", func() { l.Accept() })
	sim.Go("cli", func() {
		c, derr := a.Dial(l.Addr())
		if derr != nil {
			t.Error(derr)
			return
		}
		c.Close()
		_, err = c.Write([]byte("x"))
	})
	sim.Run()
	if err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	sim := vtime.New()
	_, _, b := pair(t, sim, Options{})
	l, _ := b.Listen(1)
	var err error
	sim.Go("srv", func() { _, err = l.Accept() })
	sim.Go("closer", func() {
		sim.Sleep(time.Second)
		l.Close()
	})
	sim.Run()
	if err == nil {
		t.Fatal("Accept returned nil error after listener close")
	}
}

func TestPortReuseAfterClose(t *testing.T) {
	sim := vtime.New()
	_, _, b := pair(t, sim, Options{})
	l, err := b.Listen(1234)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen(1234); err == nil {
		t.Fatal("double listen succeeded")
	}
	l.Close()
	if _, err := b.Listen(1234); err != nil {
		t.Fatalf("listen after close: %v", err)
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	sim := vtime.New()
	_, _, b := pair(t, sim, Options{})
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		l, err := b.Listen(0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[l.Addr().Port] {
			t.Fatalf("duplicate ephemeral port %d", l.Addr().Port)
		}
		seen[l.Addr().Port] = true
	}
}

func TestAcceptTimeout(t *testing.T) {
	sim := vtime.New()
	_, _, b := pair(t, sim, Options{})
	l, _ := b.Listen(1)
	var err error
	sim.Go("srv", func() { _, err = l.AcceptTimeout(time.Second) })
	end := sim.Run()
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if end != time.Second {
		t.Fatalf("sim ended at %v", end)
	}
}

func TestStatsCount(t *testing.T) {
	sim := vtime.New()
	n := New(sim, Options{})
	a, b := n.Host("a"), n.Host("b")
	l, _ := b.Listen(1)
	sim.Go("srv", func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.ReadAll(c)
	})
	sim.Go("cli", func() {
		c, err := a.Dial(l.Addr())
		if err != nil {
			return
		}
		c.Write(make([]byte, 100))
		c.Write(make([]byte, 50))
		c.Close()
	})
	sim.Run()
	st := n.Stats()
	if st.Dials != 1 || st.Messages != 2 || st.Bytes != 150 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: an arbitrary sequence of writes arrives intact and in order.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(seed int64, nMsgs uint8) bool {
		cnt := int(nMsgs%20) + 1
		rng := rand.New(rand.NewSource(seed))
		var sent bytes.Buffer
		chunks := make([][]byte, cnt)
		for i := range chunks {
			chunk := make([]byte, rng.Intn(4096)+1)
			rng.Read(chunk)
			chunks[i] = chunk
			sent.Write(chunk)
		}
		sim := vtime.New()
		n := New(sim, Options{})
		a, b := n.Host("a"), n.Host("b")
		l, _ := b.Listen(1)
		var got []byte
		sim.Go("srv", func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			got, _ = io.ReadAll(c)
		})
		sim.Go("cli", func() {
			c, err := a.Dial(l.Addr())
			if err != nil {
				return
			}
			for _, ch := range chunks {
				c.Write(ch)
				if rng.Intn(2) == 0 {
					sim.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				}
			}
			c.Close()
		})
		sim.Run()
		return bytes.Equal(got, sent.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time never decreases for successive messages on one
// connection (FIFO in virtual time).
func TestPropertyFIFODelivery(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 30 {
			sizes = sizes[:30]
		}
		sim := vtime.New()
		n := New(sim, Options{Latency: 100 * time.Microsecond, Bandwidth: 1e7})
		a, b := n.Host("a"), n.Host("b")
		l, _ := b.Listen(1)
		var arrivals []time.Duration
		var order []int
		sim.Go("srv", func() {
			c, err := l.Accept()
			if err != nil {
				return
			}
			for i := range sizes {
				buf := make([]byte, int(sizes[i])+4)
				if _, err := io.ReadFull(c, buf); err != nil {
					return
				}
				arrivals = append(arrivals, sim.Now())
				order = append(order, int(buf[0]))
			}
		})
		sim.Go("cli", func() {
			c, err := a.Dial(l.Addr())
			if err != nil {
				return
			}
			for i, sz := range sizes {
				buf := make([]byte, int(sz)+4)
				buf[0] = byte(i)
				c.Write(buf)
			}
		})
		sim.Run()
		if len(arrivals) != len(sizes) {
			return false
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i] < arrivals[i-1] {
				return false
			}
		}
		for i, o := range order {
			if o != i%256 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Package simnet provides a simulated TCP-like network running in virtual
// time (internal/vtime). Hosts own listeners; Dial establishes a bidirected
// stream connection whose Read/Write implement io.Reader/io.Writer, so the
// LaunchMON protocol stack runs over simnet exactly as it would over real
// sockets while every transfer is charged latency + size/bandwidth in
// virtual time.
//
// The cost model per message (one Write call) is:
//
//	start  = max(now, lastSendDone)   // per-direction serialization
//	txDone = start + size/bandwidth
//	arrive = txDone + latency
//
// which preserves FIFO ordering per connection and models a dedicated
// full-duplex link per connection (adequate for the paper's experiments,
// which are dominated by per-node spawn costs and message counts/sizes,
// not by shared-fabric congestion).
package simnet

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"launchmon/internal/vtime"
)

// Options configure the network cost model. Zero fields take defaults.
type Options struct {
	// Latency is the one-way latency between distinct hosts.
	Latency time.Duration
	// LoopbackLatency is the one-way latency within one host.
	LoopbackLatency time.Duration
	// Bandwidth is the per-connection bandwidth in bytes/second between
	// distinct hosts.
	Bandwidth float64
	// LoopbackBandwidth is the per-connection loopback bandwidth.
	LoopbackBandwidth float64

	// SlowHosts maps host names to a slowdown factor (> 1): connections
	// touching a slow host see their latency multiplied and bandwidth
	// divided by the factor (the fault model's slow-node knob). The larger
	// factor wins when both endpoints are slow.
	SlowHosts map[string]float64
	// DropLinks lists host pairs whose links start out down (see
	// Network.DropLink): messages between them are silently discarded and
	// new dials fail with ErrLinkDown.
	DropLinks [][2]string
}

// DefaultOptions models a 2008-era Infiniband cluster interconnect
// (4x DDR): ~30us MPI-level latency, ~1.2 GB/s per stream, and fast local
// loopback.
func DefaultOptions() Options {
	return Options{
		Latency:           30 * time.Microsecond,
		LoopbackLatency:   6 * time.Microsecond,
		Bandwidth:         1.2e9,
		LoopbackBandwidth: 4e9,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Latency == 0 {
		o.Latency = d.Latency
	}
	if o.LoopbackLatency == 0 {
		o.LoopbackLatency = d.LoopbackLatency
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = d.Bandwidth
	}
	if o.LoopbackBandwidth == 0 {
		o.LoopbackBandwidth = d.LoopbackBandwidth
	}
	return o
}

// Addr identifies a network endpoint.
type Addr struct {
	Host string
	Port int
}

// String renders the address as host:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Stats aggregates traffic counters for the whole network.
type Stats struct {
	Messages int64 // Write calls delivered
	Bytes    int64 // payload bytes delivered
	Dials    int64 // successful connections
}

// Network is a set of hosts in one virtual-time simulation.
type Network struct {
	sim  *vtime.Sim
	opts Options

	mu        sync.Mutex
	hosts     map[string]*Host
	stats     Stats
	dead      map[string]bool           // hosts killed by KillHost
	downLinks map[[2]string]bool        // severed host pairs (normalized order)
	conns     map[string]map[*Conn]bool // live conn endpoints by host name
}

// New creates an empty network bound to sim.
func New(sim *vtime.Sim, opts Options) *Network {
	n := &Network{
		sim:       sim,
		opts:      opts.withDefaults(),
		hosts:     make(map[string]*Host),
		dead:      make(map[string]bool),
		downLinks: make(map[[2]string]bool),
		conns:     make(map[string]map[*Conn]bool),
	}
	for _, pair := range n.opts.DropLinks {
		n.downLinks[linkKey(pair[0], pair[1])] = true
	}
	return n
}

// linkKey normalizes an unordered host pair.
func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Sim returns the simulation the network runs on.
func (n *Network) Sim() *vtime.Sim { return n.sim }

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Host returns the host with the given name, creating it if needed.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if !ok {
		h = &Host{net: n, name: name, listeners: make(map[int]*Listener), nextPort: 40000}
		n.hosts[name] = h
	}
	return h
}

// LookupHost returns the named host, or nil when it does not exist.
func (n *Network) LookupHost(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// HostDead reports whether KillHost has been called for name.
func (n *Network) HostDead(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dead[name]
}

// KillHost marks a host dead: its listeners close, new dials to or from it
// fail with ErrPeerDead, and every established connection touching it is
// severed — the remote peer reads any in-flight data, then observes
// ErrPeerDead (after the link latency drains) instead of a clean EOF.
// Killing an unknown or already-dead host is a no-op.
func (n *Network) KillHost(name string) {
	n.mu.Lock()
	h := n.hosts[name]
	if h == nil || n.dead[name] {
		n.mu.Unlock()
		return
	}
	n.dead[name] = true
	listeners := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]*Conn, 0, len(n.conns[name]))
	for c := range n.conns[name] {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.sever()
	}
}

// DropLink severs the link between hosts a and b: in-flight and future
// messages between them are silently discarded (neither side learns — the
// failure-detection layer's heartbeat-miss case) and new dials across the
// link fail with ErrLinkDown.
func (n *Network) DropLink(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downLinks[linkKey(a, b)] = true
}

// RestoreLink brings a dropped link back up. Established connections
// resume delivering (messages dropped while down stay lost).
func (n *Network) RestoreLink(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downLinks, linkKey(a, b))
}

// linkDown reports whether the a↔b link is currently dropped.
func (n *Network) linkDown(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.downLinks[linkKey(a, b)]
}

// registerLocked tracks a conn endpoint under its host for fault
// injection. Caller holds n.mu (registration must be atomic with the
// dead-host check in Dial, or a racing KillHost misses the new conn).
func (n *Network) registerLocked(host string, c *Conn) {
	set := n.conns[host]
	if set == nil {
		set = make(map[*Conn]bool)
		n.conns[host] = set
	}
	set[c] = true
}

// unregister drops a closed conn endpoint from the fault-injection index.
func (n *Network) unregister(host string, c *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if set := n.conns[host]; set != nil {
		delete(set, c)
		if len(set) == 0 {
			delete(n.conns, host)
		}
	}
}

// slowFactor returns the effective slowdown for a conn between two hosts
// (1 when neither is slow).
func (o Options) slowFactor(a, b string) float64 {
	f := 1.0
	if s, ok := o.SlowHosts[a]; ok && s > f {
		f = s
	}
	if s, ok := o.SlowHosts[b]; ok && s > f {
		f = s
	}
	return f
}

// Host is a network endpoint that can listen and dial.
type Host struct {
	net       *Network
	name      string
	listeners map[int]*Listener
	nextPort  int
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Errors returned by the network layer.
var (
	ErrPortInUse     = errors.New("simnet: port already in use")
	ErrConnRefused   = errors.New("simnet: connection refused")
	ErrClosed        = errors.New("simnet: use of closed connection")
	ErrListenerClose = errors.New("simnet: listener closed")
	// ErrPeerDead is returned by reads and writes on connections whose
	// remote (or local) host has been killed, once any in-flight data has
	// drained — the simulated analogue of ECONNRESET after a node loss.
	ErrPeerDead = errors.New("simnet: peer host is dead")
	// ErrLinkDown is returned when dialing across a dropped link.
	ErrLinkDown = errors.New("simnet: link is down")
	// ErrReadTimeout is returned by RecvMessageTimeout when the deadline
	// passes before a message arrives.
	ErrReadTimeout = errors.New("simnet: read timeout")
)

// Listen opens a listener on the given port; port 0 selects an ephemeral
// port.
func (h *Host) Listen(port int) (*Listener, error) {
	h.net.mu.Lock()
	defer h.net.mu.Unlock()
	if h.net.dead[h.name] {
		return nil, fmt.Errorf("%w: %s", ErrPeerDead, h.name)
	}
	if port == 0 {
		for h.listeners[h.nextPort] != nil {
			h.nextPort++
		}
		port = h.nextPort
		h.nextPort++
	}
	if h.listeners[port] != nil {
		return nil, fmt.Errorf("%w: %s:%d", ErrPortInUse, h.name, port)
	}
	l := &Listener{
		host:     h,
		addr:     Addr{Host: h.name, Port: port},
		incoming: vtime.NewChan[*Conn](h.net.sim),
	}
	h.listeners[port] = l
	return l, nil
}

// Listener accepts incoming connections on one port.
type Listener struct {
	host     *Host
	addr     Addr
	incoming *vtime.Chan[*Conn]
	closed   bool
}

// Addr returns the listening address.
func (l *Listener) Addr() Addr { return l.addr }

// Accept blocks in virtual time for the next incoming connection.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := l.incoming.Recv()
	if !ok {
		return nil, ErrListenerClose
	}
	return c, nil
}

// AcceptTimeout is Accept with a virtual-time deadline; ok is false and err
// nil when the deadline passed.
func (l *Listener) AcceptTimeout(d time.Duration) (*Conn, error) {
	c, ok, timedOut := l.incoming.RecvTimeout(d)
	if timedOut {
		return nil, fmt.Errorf("simnet: accept timeout on %s", l.addr)
	}
	if !ok {
		return nil, ErrListenerClose
	}
	return c, nil
}

// Handle switches the listener to event-driven accept: fn runs on the
// vtime scheduler for every incoming connection (queued ones first, in
// arrival order), and once with ErrListenerClose after Close. It replaces a
// parked accept-loop goroutine; fn must not block. Handle may not be mixed
// with Accept and may be installed once.
func (l *Listener) Handle(fn func(*Conn, error)) {
	l.incoming.Handle(func(c *Conn, ok bool) {
		if !ok {
			fn(nil, ErrListenerClose)
			return
		}
		fn(c, nil)
	})
}

// Close stops the listener; blocked Accept calls return ErrListenerClose.
func (l *Listener) Close() {
	l.host.net.mu.Lock()
	if !l.closed {
		l.closed = true
		delete(l.host.listeners, l.addr.Port)
	}
	l.host.net.mu.Unlock()
	l.incoming.Close()
}

// Dial connects from h to addr, blocking for the connection handshake
// (one round trip). It fails immediately when no listener exists, when
// either host is dead, or when the link between them is down.
func (h *Host) Dial(addr Addr) (*Conn, error) {
	a, b, incoming, lat, err := h.dialSetup(addr)
	if err != nil {
		return nil, err
	}
	// SYN reaches the listener after one latency; the dialer's connect
	// completes after a full round trip.
	h.net.sim.After(lat, func() { incoming.Send(b) })
	h.net.sim.Sleep(2 * lat)
	return a, nil
}

// DialAsync is Dial without a blocked goroutine: cb fires on the vtime
// scheduler with the established connection after the same one-round-trip
// handshake (or with Dial's error, still as a scheduled event so callers
// get a uniform asynchronous contract). cb must not block.
func (h *Host) DialAsync(addr Addr, cb func(*Conn, error)) {
	a, b, incoming, lat, err := h.dialSetup(addr)
	if err != nil {
		h.net.sim.After(0, func() { cb(nil, err) })
		return
	}
	h.net.sim.After(lat, func() { incoming.Send(b) })
	h.net.sim.After(2*lat, func() { cb(a, nil) })
}

// dialSetup performs the synchronous half of a dial — error checks, conn
// pair creation, registration — and returns the pieces both Dial flavors
// schedule from.
func (h *Host) dialSetup(addr Addr) (a, b *Conn, incoming *vtime.Chan[*Conn], lat time.Duration, err error) {
	n := h.net
	n.mu.Lock()
	if n.dead[h.name] || n.dead[addr.Host] {
		n.mu.Unlock()
		return nil, nil, nil, 0, fmt.Errorf("%w: %s", ErrPeerDead, addr)
	}
	if n.downLinks[linkKey(h.name, addr.Host)] {
		n.mu.Unlock()
		return nil, nil, nil, 0, fmt.Errorf("%w: %s <-> %s", ErrLinkDown, h.name, addr.Host)
	}
	dst := n.hosts[addr.Host]
	if dst == nil {
		n.mu.Unlock()
		return nil, nil, nil, 0, fmt.Errorf("%w: no host %q", ErrConnRefused, addr.Host)
	}
	l := dst.listeners[addr.Port]
	if l == nil || l.closed {
		n.mu.Unlock()
		return nil, nil, nil, 0, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	lat = n.opts.Latency
	bw := n.opts.Bandwidth
	if addr.Host == h.name {
		lat, bw = n.opts.LoopbackLatency, n.opts.LoopbackBandwidth
	}
	if f := n.opts.slowFactor(h.name, addr.Host); f > 1 {
		lat = time.Duration(float64(lat) * f)
		bw /= f
	}
	local := Addr{Host: h.name, Port: -1} // anonymous client port
	a = &Conn{net: n, local: local, remote: addr, lat: lat, bw: bw, in: vtime.NewChan[[]byte](n.sim)}
	b = &Conn{net: n, local: addr, remote: local, lat: lat, bw: bw, in: vtime.NewChan[[]byte](n.sim)}
	a.peer, b.peer = b, a
	n.registerLocked(h.name, a)
	n.registerLocked(addr.Host, b)
	n.stats.Dials++
	n.mu.Unlock()
	return a, b, l.incoming, lat, nil
}

// Conn is one direction-pair stream connection endpoint.
type Conn struct {
	net    *Network
	local  Addr
	remote Addr
	lat    time.Duration
	bw     float64

	in   *vtime.Chan[[]byte] // arriving payloads
	rbuf []byte              // partially consumed arrival

	peer *Conn

	mu       sync.Mutex
	sendDone time.Duration // virtual time the previous Write finishes on the wire
	closed   bool
	peerDead bool // the other endpoint's host was killed (reads/writes fail)
}

// LocalAddr returns the local endpoint address.
func (c *Conn) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer endpoint address.
func (c *Conn) RemoteAddr() Addr { return c.remote }

// Write sends p to the peer. It returns immediately (socket-buffer
// semantics); delivery is charged serialization + latency in virtual time.
// Messages crossing a dropped link are silently discarded at delivery
// time; writes to a severed (dead-host) connection fail with ErrPeerDead.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	if c.peerDead {
		c.mu.Unlock()
		return 0, ErrPeerDead
	}
	now := c.net.sim.Now()
	start := now
	if c.sendDone > start {
		start = c.sendDone
	}
	tx := time.Duration(float64(len(p)) / c.bw * float64(time.Second))
	c.sendDone = start + tx
	arrive := c.sendDone + c.lat
	peerIn := c.peer.in
	c.mu.Unlock()

	buf := make([]byte, len(p))
	copy(buf, p)
	c.net.sim.After(arrive-now, func() {
		// Delivery-time checks: packets vanish on a down link or when the
		// destination died while they were in flight.
		if c.net.linkDown(c.local.Host, c.remote.Host) || c.net.HostDead(c.remote.Host) {
			return
		}
		c.net.mu.Lock()
		c.net.stats.Messages++
		c.net.stats.Bytes += int64(len(buf))
		c.net.mu.Unlock()
		peerIn.Send(buf)
	})
	return len(p), nil
}

// Read fills p with received bytes, blocking in virtual time until data is
// available. It returns io.EOF after the peer closes and all data is
// consumed, or ErrPeerDead once a severed connection's in-flight data has
// drained.
func (c *Conn) Read(p []byte) (int, error) {
	for len(c.rbuf) == 0 {
		buf, ok := c.in.Recv()
		if !ok {
			c.mu.Lock()
			dead := c.peerDead
			c.mu.Unlock()
			if dead {
				return 0, ErrPeerDead
			}
			return 0, io.EOF
		}
		c.rbuf = buf
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// RecvMessageTimeout returns the next delivered message (one peer Write)
// whole, with a virtual-time deadline: ErrReadTimeout when it passes with
// nothing delivered, io.EOF/ErrPeerDead per Read's contract otherwise. It
// must be called on a message boundary (no partially consumed arrival) —
// the caller is reading a message-per-frame protocol.
func (c *Conn) RecvMessageTimeout(d time.Duration) ([]byte, error) {
	if len(c.rbuf) != 0 {
		panic("simnet: RecvMessageTimeout with a partially read message")
	}
	buf, ok, timedOut := c.in.RecvTimeout(d)
	if timedOut {
		return nil, fmt.Errorf("%w: no message from %s within %v", ErrReadTimeout, c.remote, d)
	}
	if !ok {
		c.mu.Lock()
		dead := c.peerDead
		c.mu.Unlock()
		if dead {
			return nil, ErrPeerDead
		}
		return nil, io.EOF
	}
	return buf, nil
}

// Handle switches the connection's receive side to event-driven delivery:
// fn runs on the vtime scheduler once per delivered message (one Write call
// on the peer = one callback, so framed protocols that write one frame per
// Write receive exactly one complete frame per event), in arrival order
// under the scheduler's deterministic (time, seq) tie-break. After the peer
// closes (or the link severs) and queued messages drain, fn fires once with
// err — io.EOF for a clean close, ErrPeerDead for a severed connection.
// It replaces a goroutine parked in Read; fn must not block. Handle may not
// be mixed with Read while installed and must be installed on a message
// boundary (no partially consumed arrival). Unhandle hands the receive side
// back to blocking Read — a framer that owns only one phase of the
// connection's life (e.g. a bootstrap-time stream) detaches at its final
// frame, leaving later arrivals queued for whoever reads next.
func (c *Conn) Handle(fn func(msg []byte, err error)) {
	if len(c.rbuf) != 0 {
		panic("simnet: Conn.Handle with a partially read message")
	}
	c.in.Handle(func(buf []byte, ok bool) {
		if !ok {
			c.mu.Lock()
			dead := c.peerDead
			c.mu.Unlock()
			if dead {
				fn(nil, ErrPeerDead)
			} else {
				fn(nil, io.EOF)
			}
			return
		}
		fn(buf, nil)
	})
}

// Unhandle detaches the message handler installed by Handle and returns
// the connection to blocking-Read delivery. Messages that arrived but were
// not yet delivered to the handler stay queued for Read. Call it from the
// handler itself (on the scheduler goroutine) at a message boundary.
func (c *Conn) Unhandle() { c.in.Unhandle() }

// Sever force-severs the connection as if this endpoint's host died:
// local reads/writes fail at once with ErrPeerDead, and the remote peer
// observes ErrPeerDead after in-flight data (and one link latency)
// drains. It is the per-connection slice of KillHost, used by process
// (rather than node) fault injection: a killed process's adopted
// connections sever without taking the whole host down. Idempotent; safe
// on closed connections.
func (c *Conn) Sever() { c.sever() }

// sever marks this endpoint's host dead: local reads/writes fail at once,
// and the remote peer observes ErrPeerDead after the in-flight data (and
// one link latency) drains. Idempotent; safe on closed connections.
func (c *Conn) sever() {
	c.mu.Lock()
	if c.closed || c.peerDead {
		c.mu.Unlock()
		return
	}
	// The local side belongs to the dead host: fail its I/O immediately.
	c.peerDead = true
	now := c.net.sim.Now()
	fin := c.sendDone
	if fin < now {
		fin = now
	}
	fin += c.lat
	peer := c.peer
	c.mu.Unlock()
	c.in.Close()
	c.net.unregister(c.local.Host, c)
	c.net.sim.After(fin-now, func() {
		peer.net.unregister(peer.local.Host, peer)
		peer.mu.Lock()
		if peer.closed {
			// The survivor already closed its side; nothing to observe.
			peer.mu.Unlock()
			return
		}
		peer.peerDead = true
		peer.mu.Unlock()
		peer.in.Close()
	})
}

// Close shuts down the local endpoint; after one latency the peer observes
// EOF (once queued data drains). The local side's blocked readers wake
// with EOF too, once buffered data is consumed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	// EOF must not overtake in-flight data.
	now := c.net.sim.Now()
	fin := c.sendDone
	if fin < now {
		fin = now
	}
	fin += c.lat
	peer := c.peer
	c.mu.Unlock()
	c.in.Close()
	c.net.unregister(c.local.Host, c)
	c.net.sim.After(fin-now, func() { peer.in.Close() })
	return nil
}

var _ io.ReadWriteCloser = (*Conn)(nil)

package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Recorder collects virtual-time spans and instant events for one trace
// (one session). It is safe for concurrent use — the FE relay, collective
// helpers and watcher goroutines all record into the session's recorder.
// A nil recorder no-ops everywhere, so instrumentation points need no
// obs-on conditionals.
type Recorder struct {
	now func() time.Duration

	mu       sync.Mutex
	spans    []SpanEvent
	instants []InstantEvent
}

// NewRecorder builds a recorder reading timestamps from now (the
// simulation clock). now must be safe for concurrent use.
func NewRecorder(now func() time.Duration) *Recorder {
	return &Recorder{now: now}
}

// SpanEvent is one completed span: a named interval on a rank's track.
type SpanEvent struct {
	Name  string
	Rank  int // -1 = the front end / no specific rank
	Begin time.Duration
	Dur   time.Duration
}

// InstantEvent is one point event (Timeline marks fold in as these).
type InstantEvent struct {
	Name string
	Rank int
	At   time.Duration
}

// Span is an open interval returned by Start; End closes it and commits
// it to the recorder.
type Span struct {
	rec   *Recorder
	name  string
	rank  int
	begin time.Duration
}

// Start opens a span on the given rank's track (rank -1 for the front
// end). Nil-safe: a nil recorder returns a nil span whose End no-ops.
func (r *Recorder) Start(name string, rank int) *Span {
	if r == nil {
		return nil
	}
	return &Span{rec: r, name: name, rank: rank, begin: r.now()}
}

// End closes the span at the current virtual time and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	end := r.now()
	r.mu.Lock()
	r.spans = append(r.spans, SpanEvent{Name: s.name, Rank: s.rank, Begin: s.begin, Dur: end - s.begin})
	r.mu.Unlock()
}

// AddSpan records a pre-computed complete span (how Timeline mark chains
// become spans at export time).
func (r *Recorder) AddSpan(name string, rank int, begin, dur time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, SpanEvent{Name: name, Rank: rank, Begin: begin, Dur: dur})
	r.mu.Unlock()
}

// Instant records a point event.
func (r *Recorder) Instant(name string, rank int, at time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.instants = append(r.instants, InstantEvent{Name: name, Rank: rank, At: at})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (r *Recorder) Spans() []SpanEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanEvent(nil), r.spans...)
}

// Instants returns a copy of the recorded instant events.
func (r *Recorder) Instants() []InstantEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]InstantEvent(nil), r.instants...)
}

// chromeEvent is one entry of the Chrome/Perfetto trace-event JSON array
// (the "JSON Array Format" every trace viewer loads).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // metadata payload
}

// WriteChromeTrace renders the recorder's spans and instants as a
// Chrome/Perfetto trace-event JSON array: one process (pid = the session
// ID, named process), one thread track per rank (tid = rank+2, so the
// front-end track rank -1 lands on tid 1). Events are emitted sorted by
// (ts, name) so equal traces produce equal bytes.
func (r *Recorder) WriteChromeTrace(w io.Writer, pid int, process string) error {
	spans := r.Spans()
	instants := r.Instants()

	tid := func(rank int) int { return rank + 2 }
	events := make([]chromeEvent, 0, len(spans)+len(instants)+8)
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts: float64(s.Begin) / 1e3, Dur: float64(s.Dur) / 1e3,
			Pid: pid, Tid: tid(s.Rank),
		})
	}
	for _, i := range instants {
		events = append(events, chromeEvent{
			Name: i.Name, Ph: "i", S: "t",
			Ts:  float64(i.At) / 1e3,
			Pid: pid, Tid: tid(i.Rank),
		})
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].Ts != events[b].Ts {
			return events[a].Ts < events[b].Ts
		}
		return events[a].Name < events[b].Name
	})

	// Track-naming metadata first, then the sorted payload events.
	ranks := map[int]bool{}
	for _, s := range spans {
		ranks[s.Rank] = true
	}
	for _, i := range instants {
		ranks[i.Rank] = true
	}
	sortedRanks := make([]int, 0, len(ranks))
	for rk := range ranks {
		sortedRanks = append(sortedRanks, rk)
	}
	sort.Ints(sortedRanks)
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": process},
	}}
	for _, rk := range sortedRanks {
		name := "front-end"
		if rk >= 0 {
			name = trackName(rk)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid(rk),
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	all := append(meta, events...)
	return enc.Encode(all)
}

// trackName names a daemon rank's thread track.
func trackName(rank int) string {
	// Staying allocation-light is pointless at export time; plain Sprintf
	// would be fine, but strconv avoids the fmt import here.
	return "rank-" + itoa(rank)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

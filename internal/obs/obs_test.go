package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx.bytes")
	c.Add(10)
	c.Inc()
	if got := c.Load(); got != 11 {
		t.Errorf("counter = %d, want 11", got)
	}
	if r.Counter("tx.bytes") != c {
		t.Error("counter handle not interned")
	}
	g := r.Gauge("peak")
	g.Set(5)
	g.SetMax(3) // lower: no-op
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Errorf("gauge = %d, want 9", got)
	}

	snap := r.Snapshot()
	if snap.Counters["tx.bytes"] != 11 || snap.Gauges["peak"] != 9 {
		t.Errorf("snapshot = %+v", snap)
	}
	// Zero-valued metrics survive: existence is a signal.
	r.Counter("never.fired")
	if v, ok := r.Snapshot().Counters["never.fired"]; !ok || v != 0 {
		t.Error("zero-valued counter dropped from snapshot")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.SetMax(2)
	if g.Load() != 0 {
		t.Error("nil gauge accumulated")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("peak").SetMax(uint64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Gauge("peak").Load(); got != 999 {
		t.Errorf("concurrent gauge = %d, want 999", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{Counters: map[string]uint64{"c": 3}, Gauges: map[string]uint64{"g": 7, "h": 2}}
	b := Snapshot{Counters: map[string]uint64{"c": 4, "d": 1}, Gauges: map[string]uint64{"g": 5, "h": 9}}
	a.Merge(b)
	if a.Counters["c"] != 7 || a.Counters["d"] != 1 {
		t.Errorf("merged counters = %v", a.Counters)
	}
	if a.Gauges["g"] != 7 || a.Gauges["h"] != 9 {
		t.Errorf("merged gauges = %v", a.Gauges)
	}
	// Merge into a zero-valued snapshot initializes the maps.
	var z Snapshot
	z.Merge(b)
	if z.Counters["d"] != 1 || z.Gauges["h"] != 9 {
		t.Errorf("merge into zero snapshot = %+v", z)
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := Snapshot{
		Counters: map[string]uint64{"a.b": 1, "z": 1 << 60},
		Gauges:   map[string]uint64{"peak.bytes": 42},
	}
	enc := s.Encode()
	// Deterministic: equal snapshots encode to equal bytes.
	if !bytes.Equal(enc, s.Encode()) {
		t.Error("encoding is not deterministic")
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["a.b"] != 1 || got.Counters["z"] != 1<<60 || got.Gauges["peak.bytes"] != 42 {
		t.Errorf("round trip = %+v", got)
	}
	// Empty input is the obs-off harvest blob.
	if empty, err := DecodeSnapshot(nil); err != nil || len(empty.Counters) != 0 {
		t.Errorf("empty decode = %+v, %v", empty, err)
	}
	for _, bad := range [][]byte{{1, 2, 3}, append([]byte(nil), enc[:6]...), append(enc, 0)} {
		if _, err := DecodeSnapshot(bad); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("DecodeSnapshot(%v) = %v, want ErrBadSnapshot", bad, err)
		}
	}
}

func TestMergeEncodedFoldShape(t *testing.T) {
	s1 := Snapshot{Counters: map[string]uint64{"n": 1}, Gauges: map[string]uint64{"p": 10}}
	s2 := Snapshot{Counters: map[string]uint64{"n": 2}, Gauges: map[string]uint64{"p": 30}}
	s3 := Snapshot{Counters: map[string]uint64{"n": 4}, Gauges: map[string]uint64{"p": 20}}

	// coll.Combine shape: acc is nil on the first call.
	acc, err := MergeEncoded(nil, s1.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, next := range []Snapshot{s2, s3} {
		if acc, err = MergeEncoded(acc, next.Encode()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeSnapshot(acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["n"] != 7 || got.Gauges["p"] != 30 {
		t.Errorf("fold = %+v", got)
	}
	if _, err := MergeEncoded(acc, []byte("junk")); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("merging junk: %v", err)
	}
}

func TestRecorderSpansAndInstants(t *testing.T) {
	now := time.Duration(0)
	rec := NewRecorder(func() time.Duration { return now })
	sp := rec.Start("phase", 3)
	now = 5 * time.Millisecond
	sp.End()
	rec.Instant("mark", -1, 2*time.Millisecond)
	rec.AddSpan("pre", -1, time.Millisecond, 2*time.Millisecond)

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "phase" || spans[0].Rank != 3 || spans[0].Dur != 5*time.Millisecond {
		t.Errorf("span = %+v", spans[0])
	}
	if ins := rec.Instants(); len(ins) != 1 || ins[0].At != 2*time.Millisecond {
		t.Errorf("instants = %+v", rec.Instants())
	}

	// Nil recorder and nil span are silent no-ops.
	var nilRec *Recorder
	nilRec.Start("x", 0).End()
	nilRec.Instant("y", 0, 0)
	nilRec.AddSpan("z", 0, 0, 0)
	if nilRec.Spans() != nil || nilRec.Instants() != nil {
		t.Error("nil recorder returned events")
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	now := time.Duration(0)
	rec := NewRecorder(func() time.Duration { return now })
	rec.AddSpan("b-span", 0, 2*time.Microsecond, 3*time.Microsecond)
	rec.AddSpan("a-span", -1, 2*time.Microsecond, time.Microsecond)
	rec.Instant("tick", 1, time.Microsecond)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, 7, "sess"); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	// Metadata first: process name, then one thread_name per track
	// (front-end tid 1, rank-0 tid 2, rank-1 tid 3).
	if events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Errorf("first event = %v", events[0])
	}
	names := map[string]bool{}
	var payload []map[string]any
	for _, ev := range events {
		if ev["ph"] == "M" {
			if args, ok := ev["args"].(map[string]any); ok {
				names[args["name"].(string)] = true
			}
			continue
		}
		payload = append(payload, ev)
	}
	for _, want := range []string{"sess", "front-end", "rank-0", "rank-1"} {
		if !names[want] {
			t.Errorf("missing track name %q in %v", want, names)
		}
	}
	// Payload sorted by (ts, name): tick@1, then a-span before b-span @2.
	order := make([]string, 0, len(payload))
	for _, ev := range payload {
		order = append(order, ev["name"].(string))
	}
	want := []string{"tick", "a-span", "b-span"}
	if len(order) != len(want) {
		t.Fatalf("payload = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("payload order = %v, want %v", order, want)
		}
	}
	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := rec.WriteChromeTrace(&buf2, 7, "sess"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("trace export is not deterministic")
	}
}

package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Snapshot wire format (big endian), self-contained so the tree fold and
// the coll "obs/merge" filter can merge blobs without a schema exchange:
//
//	uint32 magic "OBS1"
//	uint32 counter count, then per counter: uint16 name len, name, uint64
//	uint32 gauge count,   then per gauge:   uint16 name len, name, uint64
//
// Names are encoded in lexical order, so equal snapshots produce equal
// bytes and harvest message sizes are deterministic run to run.
const snapMagic = 0x4f425331 // "OBS1"

// ErrBadSnapshot is returned when decoding malformed snapshot bytes.
var ErrBadSnapshot = errors.New("obs: bad snapshot encoding")

// Encode renders the snapshot into the wire format.
func (s Snapshot) Encode() []byte {
	size := 12
	for name := range s.Counters {
		size += 2 + len(name) + 8
	}
	for name := range s.Gauges {
		size += 2 + len(name) + 8
	}
	b := make([]byte, 0, size)
	b = binary.BigEndian.AppendUint32(b, snapMagic)
	b = appendSection(b, s.Counters)
	b = appendSection(b, s.Gauges)
	return b
}

func appendSection(b []byte, m map[string]uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(m)))
	for _, name := range sortedKeys(m) {
		b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
		b = append(b, name...)
		b = binary.BigEndian.AppendUint64(b, m[name])
	}
	return b
}

// DecodeSnapshot parses wire-format snapshot bytes. Empty input decodes
// to an empty snapshot (the obs-off harvest blob).
func DecodeSnapshot(b []byte) (Snapshot, error) {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]uint64{}}
	if len(b) == 0 {
		return s, nil
	}
	if len(b) < 4 || binary.BigEndian.Uint32(b) != snapMagic {
		return s, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	rest, err := decodeSection(b[4:], s.Counters)
	if err != nil {
		return s, err
	}
	rest, err = decodeSection(rest, s.Gauges)
	if err != nil {
		return s, err
	}
	if len(rest) != 0 {
		return s, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(rest))
	}
	return s, nil
}

func decodeSection(b []byte, m map[string]uint64) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: short section header", ErrBadSnapshot)
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: short name length", ErrBadSnapshot)
		}
		nl := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < nl+8 {
			return nil, fmt.Errorf("%w: short entry", ErrBadSnapshot)
		}
		name := string(b[:nl])
		m[name] = binary.BigEndian.Uint64(b[nl:])
		b = b[nl+8:]
	}
	return b, nil
}

// MergeEncoded merges two wire-format snapshots into one, shaped like a
// coll.Combine (acc nil on the first call) so the same function serves
// both the iccl tree fold and the registered "obs/merge" collective
// filter. It is associative and commutative: counters sum, gauges max.
func MergeEncoded(acc, next []byte) ([]byte, error) {
	if acc == nil {
		a, err := DecodeSnapshot(next)
		if err != nil {
			return nil, err
		}
		return a.Encode(), nil
	}
	a, err := DecodeSnapshot(acc)
	if err != nil {
		return nil, err
	}
	b, err := DecodeSnapshot(next)
	if err != nil {
		return nil, err
	}
	a.Merge(b)
	return a.Encode(), nil
}

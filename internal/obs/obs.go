// Package obs is LaunchMON's session-scoped observability plane: an
// allocation-light metrics registry (counters and gauges), a virtual-time
// span recorder, and a Chrome/Perfetto trace-event exporter. It is built
// for the simulator's rules: nothing in this package calls Compute or
// Sleep, so enabling observability never charges virtual time directly —
// the only virtual-time cost of the plane is the real wire messages of the
// metrics harvest (the tree fold in internal/iccl and the obs/merge
// collective filter), which the launch-pipeline bench bounds at ≤2% drift.
//
// Everything is nil-safe: a nil *Registry hands out nil *Counter/*Gauge,
// and nil receivers no-op, so instrumented hot paths cost one predictable
// branch when observability is off (the default) and need no conditional
// wiring at the call sites.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-or-peak-value metric. Merged across daemons it keeps
// the maximum, so "peak bytes" and "max queue depth" survive the tree
// fold unchanged.
type Gauge struct{ v atomic.Uint64 }

// Set stores n. No-op on a nil gauge.
func (g *Gauge) Set(n uint64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n when n exceeds the current value.
func (g *Gauge) SetMax(n uint64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 on a nil gauge).
func (g *Gauge) Load() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is one component's named-metric table. Counter/Gauge intern
// the metric on first use; the returned handles are lock-free afterward,
// so hot paths hold their handles instead of re-looking-up names.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter — observability off.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot captures the registry as plain maps (nil registry → empty
// snapshot). Zero-valued metrics are kept: a counter that exists but
// never fired is itself a signal.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]uint64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, the unit of the metrics
// harvest: every daemon encodes one, and the tree fold merges them pairwise
// on the way to the root.
type Snapshot struct {
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]uint64 `json:"gauges"`
}

// Merge folds other into s: counters sum (total work across daemons),
// gauges keep the maximum (peaks survive aggregation).
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]uint64{}
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if v > s.Gauges[name] {
			s.Gauges[name] = v
		}
	}
}

// sortedKeys returns m's keys in lexical order, the canonical encoding
// order (deterministic wire bytes for deterministic virtual-time costs).
func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

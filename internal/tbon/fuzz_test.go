package tbon

import (
	"bytes"
	"testing"
)

// FuzzDecodePacket hardens the TBŌN packet codec — the only wire decoder
// in the stack that parses peer-controlled bytes on every overlay hop —
// against corrupt or hostile frames: it must never panic, and whatever it
// accepts must re-encode to a decode-equal packet.
func FuzzDecodePacket(f *testing.F) {
	seeds := []Packet{
		{},
		{Stream: 1, Tag: 7, Filter: "concat", Data: []byte("go")},
		{Stream: ^uint32(0), Tag: ^uint32(0), Filter: "sum-test", Data: bytes.Repeat([]byte{0xff}, 64)},
	}
	for _, p := range seeds {
		f.Add(encodePacket(p))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := decodePacket(raw)
		if err != nil {
			return
		}
		re := encodePacket(p)
		q, err := decodePacket(re)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if q.Stream != p.Stream || q.Tag != p.Tag || q.Filter != p.Filter || !bytes.Equal(q.Data, p.Data) {
			t.Fatalf("round trip mismatch: %+v vs %+v", p, q)
		}
	})
}

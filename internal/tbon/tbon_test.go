package tbon

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rsh"
	"launchmon/internal/vtime"
)

func rig(t *testing.T, nodes int) (*vtime.Sim, *cluster.Cluster) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return sim, cl
}

// spawnLeaves starts n leaf daemons that connect to parentAddr and answer
// one request with fn(rank).
func spawnLeaves(t *testing.T, cl *cluster.Cluster, n int, parentAddr string, fn func(rank int, pkt Packet) []byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		i := i
		if _, err := cl.Node(i).SpawnProc(cluster.Spec{Exe: "leaf", Main: func(p *cluster.Proc) {
			l, err := ConnectLeaf(p, parentAddr, i)
			if err != nil {
				t.Errorf("leaf %d: %v", i, err)
				return
			}
			defer l.Close()
			for {
				pkt, err := l.Recv()
				if err != nil {
					return
				}
				pkt.Data = fn(i, pkt)
				if err := l.Send(pkt); err != nil {
					return
				}
			}
		}}); err != nil {
			t.Error(err)
			return
		}
	}
}

func TestFlatRequestReduce(t *testing.T) {
	sim, cl := rig(t, 8)
	RegisterFilter("sum-test", func(a, b []byte) []byte {
		if a == nil {
			return b
		}
		x, _ := strconv.Atoi(string(a))
		y, _ := strconv.Atoi(string(b))
		return []byte(strconv.Itoa(x + y))
	})
	var got string
	sim.Go("root", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "fe", Main: func(p *cluster.Proc) {
			fe, err := NewFrontEnd(p, Config{})
			if err != nil {
				t.Error(err)
				return
			}
			defer fe.Close()
			spawnLeaves(t, cl, 8, fe.Addr(), func(rank int, pkt Packet) []byte {
				return []byte(strconv.Itoa(rank))
			})
			if err := fe.AcceptChildren(8); err != nil {
				t.Error(err)
				return
			}
			if fe.Leaves() != 8 {
				t.Errorf("leaves = %d", fe.Leaves())
			}
			out, err := fe.Request(Packet{Stream: 1, Tag: 7, Filter: "sum-test", Data: []byte("go")})
			if err != nil {
				t.Error(err)
				return
			}
			got = string(out)
		}})
	})
	sim.Run()
	if got != "28" { // 0+1+...+7
		t.Fatalf("reduced sum = %q, want 28", got)
	}
}

func TestConcatDefaultFilterCollectsAll(t *testing.T) {
	sim, cl := rig(t, 5)
	var got string
	sim.Go("root", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "fe", Main: func(p *cluster.Proc) {
			fe, err := NewFrontEnd(p, Config{})
			if err != nil {
				t.Error(err)
				return
			}
			defer fe.Close()
			spawnLeaves(t, cl, 5, fe.Addr(), func(rank int, pkt Packet) []byte {
				return []byte(fmt.Sprintf("<%d>", rank))
			})
			if err := fe.AcceptChildren(5); err != nil {
				t.Error(err)
				return
			}
			out, err := fe.Request(Packet{Stream: 1, Filter: "concat"})
			if err != nil {
				t.Error(err)
				return
			}
			got = string(out)
		}})
	})
	sim.Run()
	for r := 0; r < 5; r++ {
		if !strings.Contains(got, fmt.Sprintf("<%d>", r)) {
			t.Fatalf("reply %q missing rank %d", got, r)
		}
	}
}

func TestTwoLevelTreeWithCommNodes(t *testing.T) {
	// 2 comm nodes, each with 3 leaves: the root sees 2 children covering
	// 6 leaves, and upstream merging happens at the comm nodes.
	sim, cl := rig(t, 9)
	var gotLeaves int
	var merged string
	sim.Go("root", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "fe", Main: func(p *cluster.Proc) {
			fe, err := NewFrontEnd(p, Config{})
			if err != nil {
				t.Error(err)
				return
			}
			defer fe.Close()
			// Comm nodes on nodes 6,7; leaves on nodes 0..5.
			commAddr := vtime.NewChan[[2]string](p.Sim())
			for ci := 0; ci < 2; ci++ {
				ci := ci
				cl.Node(6 + ci).SpawnProc(cluster.Spec{Exe: "comm", Main: func(p *cluster.Proc) {
					cn, err := StartCommNodeDeferredHello(p, fe.Addr(), 100+ci, 3, Config{})
					if err != nil {
						t.Errorf("comm %d: %v", ci, err)
						return
					}
					commAddr.Send([2]string{fmt.Sprint(ci), cn.Addr()})
					if err := cn.FinishHandshakeAndServe(); err != nil {
						t.Errorf("comm %d serve: %v", ci, err)
					}
				}})
			}
			addrs := map[string]string{}
			for i := 0; i < 2; i++ {
				kv, ok := commAddr.Recv()
				if !ok {
					t.Error("comm nodes did not come up")
					return
				}
				addrs[kv[0]] = kv[1]
			}
			for li := 0; li < 6; li++ {
				li := li
				parent := addrs[fmt.Sprint(li/3)]
				cl.Node(li).SpawnProc(cluster.Spec{Exe: "leaf", Main: func(p *cluster.Proc) {
					l, err := ConnectLeaf(p, parent, li)
					if err != nil {
						t.Errorf("leaf %d: %v", li, err)
						return
					}
					defer l.Close()
					for {
						pkt, err := l.Recv()
						if err != nil {
							return
						}
						pkt.Data = []byte(fmt.Sprintf("%d,", li))
						if err := l.Send(pkt); err != nil {
							return
						}
					}
				}})
			}
			if err := fe.AcceptChildren(2); err != nil {
				t.Error(err)
				return
			}
			gotLeaves = fe.Leaves()
			out, err := fe.Request(Packet{Stream: 1, Filter: "concat"})
			if err != nil {
				t.Error(err)
				return
			}
			merged = string(out)
		}})
	})
	sim.Run()
	if gotLeaves != 6 {
		t.Fatalf("root sees %d leaves, want 6", gotLeaves)
	}
	parts := strings.Split(strings.TrimSuffix(merged, ","), ",")
	sort.Strings(parts)
	if len(parts) != 6 {
		t.Fatalf("merged %q has %d parts", merged, len(parts))
	}
}

func TestNativeLaunchViaRsh(t *testing.T) {
	sim, cl := rig(t, 4)
	svc, err := rsh.Install(cl, rsh.Config{AuthCost: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cl.Register("tbon_leaf", func(p *cluster.Proc) {
		rank, _ := strconv.Atoi(p.Env(EnvRank))
		l, err := ConnectLeaf(p, p.Env(EnvParent), rank)
		if err != nil {
			t.Errorf("leaf: %v", err)
			return
		}
		defer l.Close()
		for {
			pkt, err := l.Recv()
			if err != nil {
				return
			}
			pkt.Data = []byte{byte(rank)}
			if err := l.Send(pkt); err != nil {
				return
			}
		}
	})
	var leaves int
	sim.Go("root", func() {
		cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "fe", Main: func(p *cluster.Proc) {
			fe, err := LaunchNativeFlat(p, svc, []string{"node0", "node1", "node2", "node3"}, "tbon_leaf", nil, Config{})
			if err != nil {
				t.Error(err)
				return
			}
			defer fe.Close()
			leaves = fe.Leaves()
			if _, err := fe.Request(Packet{Stream: 1, Filter: "concat"}); err != nil {
				t.Error(err)
			}
		}})
	})
	sim.Run()
	if leaves != 4 {
		t.Fatalf("native launch connected %d leaves", leaves)
	}
}

func TestAcceptCostLinearInChildren(t *testing.T) {
	connectTime := func(n int) time.Duration {
		sim, cl := rig(t, n)
		var dur time.Duration
		sim.Go("root", func() {
			cl.FrontEnd().SpawnProc(cluster.Spec{Exe: "fe", Main: func(p *cluster.Proc) {
				fe, err := NewFrontEnd(p, Config{})
				if err != nil {
					t.Error(err)
					return
				}
				defer fe.Close()
				spawnLeaves(t, cl, n, fe.Addr(), func(int, Packet) []byte { return nil })
				start := p.Sim().Now()
				if err := fe.AcceptChildren(n); err != nil {
					t.Error(err)
					return
				}
				dur = p.Sim().Now() - start
			}})
		})
		sim.Run()
		return dur
	}
	t8 := connectTime(8)
	t32 := connectTime(32)
	if t8 == 0 || t32 == 0 {
		t.Fatal("connect did not complete")
	}
	ratio := float64(t32) / float64(t8)
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("1-deep connect not ~linear: t8=%v t32=%v", t8, t32)
	}
}

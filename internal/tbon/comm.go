package tbon

import (
	"fmt"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
)

// CommNode is an internal communication process: it relays downstream
// multicasts to its children and merges the upstream response wave with
// the packet's filter before forwarding it — where a TBŌN earns its
// scalability (distributed reduction instead of a root hot spot).
type CommNode struct {
	p        *cluster.Proc
	cfg      Config
	rank     int
	expect   int
	parent   *simnet.Conn
	listener *simnet.Listener
	children []child
	leaves   int
}

// StartCommNodeDeferredHello dials the parent and opens the child-facing
// listener, but defers the upward hello until FinishHandshakeAndServe has
// accepted the whole subtree — so the root's AcceptChildren accounts for
// complete subtrees. The comm node's Addr is available (for distributing
// to its leaves) as soon as this returns.
func StartCommNodeDeferredHello(p *cluster.Proc, parentAddr string, rank, expectChildren int, cfg Config) (*CommNode, error) {
	cfg = cfg.withDefaults()
	l, err := p.Host().Listen(0)
	if err != nil {
		return nil, err
	}
	cn := &CommNode{p: p, cfg: cfg, rank: rank, expect: expectChildren, listener: l}

	addr, err := parseHostPort(parentAddr)
	if err != nil {
		return nil, err
	}
	var conn *simnet.Conn
	for attempt := 0; attempt < 2000; attempt++ {
		conn, err = p.Host().Dial(addr)
		if err == nil {
			break
		}
		p.Sim().Sleep(5 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("tbon: comm node dialing parent: %w", err)
	}
	cn.parent = conn
	return cn, nil
}

// Addr returns the comm node's child-facing listen address.
func (cn *CommNode) Addr() string { return cn.listener.Addr().String() }

// FinishHandshakeAndServe accepts the expected children, sends the upward
// hello, and enters the relay loop.
func (cn *CommNode) FinishHandshakeAndServe() error {
	for i := 0; i < cn.expect; i++ {
		c, err := cn.listener.Accept()
		if err != nil {
			return err
		}
		cn.p.Compute(cn.cfg.PerChildAcceptCost)
		hello, err := lmonp.ReadFrame(c)
		if err != nil {
			return err
		}
		cn.p.Compute(cn.cfg.HandshakeCost)
		rd := lmonp.NewReader(hello)
		rk, _ := rd.Uint32()
		lv, err := rd.Uint32()
		if err != nil {
			return err
		}
		cn.children = append(cn.children, child{conn: c, rank: int(rk), leaves: int(lv)})
		cn.leaves += int(lv)
	}
	hello := lmonp.AppendUint32(nil, uint32(cn.rank))
	hello = lmonp.AppendUint32(hello, uint32(cn.leaves))
	if err := lmonp.WriteFrame(cn.parent, hello); err != nil {
		return err
	}
	return cn.Serve()
}

// Serve relays request/response waves until the parent closes the link:
// forward each downstream packet to all children, collect one response per
// child, merge with the packet's filter, and send the reduction upstream.
func (cn *CommNode) Serve() error {
	for {
		raw, err := lmonp.ReadFrame(cn.parent)
		if err != nil {
			cn.close()
			return nil // parent closed: normal shutdown
		}
		pkt, err := decodePacket(raw)
		if err != nil {
			cn.close()
			return err
		}
		for _, c := range cn.children {
			if err := lmonp.WriteFrame(c.conn, raw); err != nil {
				cn.close()
				return err
			}
		}
		f := lookupFilter(pkt.Filter)
		var acc []byte
		for _, c := range cn.children {
			resp, err := lmonp.ReadFrame(c.conn)
			if err != nil {
				cn.close()
				return err
			}
			rpkt, err := decodePacket(resp)
			if err != nil {
				cn.close()
				return err
			}
			cn.p.Compute(cn.cfg.HandshakeCost / 3)
			acc = f(acc, rpkt.Data)
		}
		up := pkt
		up.Data = acc
		if err := lmonp.WriteFrame(cn.parent, encodePacket(up)); err != nil {
			cn.close()
			return err
		}
	}
}

func (cn *CommNode) close() {
	for _, c := range cn.children {
		c.conn.Close()
	}
	cn.listener.Close()
	cn.parent.Close()
}

// Package tbon implements an MRNet-like Tree-Based Overlay Network
// (TBŌN): a front end, optional internal communication-process layer, and
// leaf back-ends, carrying multicast requests downstream and
// filter-reduced responses upstream (Roth, Arnold & Miller, SC'03 — the
// infrastructure STAT builds on, paper §5.2).
//
// Two bootstrap paths exist, matching the paper's Figure 6 comparison:
//
//   - native: the front end launches every daemon itself through the rsh
//     substrate (internal/rsh), sequentially — the pre-LaunchMON ad hoc
//     mechanism; and
//   - LaunchMON: daemons arrive via the RM through internal/core, receive
//     the parent address from piggybacked tool data, and dial in.
//
// Either way the overlay protocol afterwards is identical; only launch
// and connection establishment differ.
package tbon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/rsh"
	"launchmon/internal/simnet"
)

// Environment keys for natively launched daemons.
const (
	EnvParent = "TBON_PARENT" // parent host:port to dial
	EnvRank   = "TBON_RANK"   // leaf rank
)

// Packet is one TBŌN message. Downstream packets carry the stream's filter
// name so internal nodes know how to merge the reply wave.
type Packet struct {
	Stream uint32
	Tag    uint32
	Filter string // merge filter for the response wave ("" = concat)
	Data   []byte
}

func encodePacket(p Packet) []byte {
	b := lmonp.AppendUint32(nil, p.Stream)
	b = lmonp.AppendUint32(b, p.Tag)
	b = lmonp.AppendString(b, p.Filter)
	return lmonp.AppendBytes(b, p.Data)
}

func decodePacket(raw []byte) (Packet, error) {
	rd := lmonp.NewReader(raw)
	var p Packet
	var err error
	if p.Stream, err = rd.Uint32(); err != nil {
		return p, err
	}
	if p.Tag, err = rd.Uint32(); err != nil {
		return p, err
	}
	if p.Filter, err = rd.String(); err != nil {
		return p, err
	}
	data, err := rd.Bytes()
	if err != nil {
		return p, err
	}
	p.Data = append([]byte(nil), data...)
	return p, nil
}

// Filter merges two upstream payloads; it must be associative. A nil
// accumulator (first contribution) is passed as a==nil.
type Filter func(a, b []byte) []byte

var (
	filterMu  sync.Mutex
	filterReg = map[string]Filter{}
)

// RegisterFilter installs a named merge filter; internal nodes and the
// front end resolve filters by the name carried in downstream packets.
func RegisterFilter(name string, f Filter) {
	filterMu.Lock()
	defer filterMu.Unlock()
	filterReg[name] = f
}

func lookupFilter(name string) Filter {
	filterMu.Lock()
	defer filterMu.Unlock()
	if f, ok := filterReg[name]; ok {
		return f
	}
	// Default: concatenation.
	return func(a, b []byte) []byte { return append(a, b...) }
}

func init() {
	RegisterFilter("concat", func(a, b []byte) []byte { return append(a, b...) })
}

// Config tunes the overlay cost model.
type Config struct {
	// PerChildAcceptCost is the root/internal-node CPU cost to accept and
	// set up one child connection (thread spin-up, fd bookkeeping;
	// default 4ms — MRNet's dominant serial term at the root).
	PerChildAcceptCost time.Duration
	// HandshakeCost is the per-child protocol handshake processing
	// (default 3ms; ≈0.77 s at 256 children, the paper's measured MRNet
	// handshake share).
	HandshakeCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.PerChildAcceptCost == 0 {
		c.PerChildAcceptCost = 4 * time.Millisecond
	}
	if c.HandshakeCost == 0 {
		c.HandshakeCost = 3 * time.Millisecond
	}
	return c
}

// child is one downstream connection at the front end or a comm node.
type child struct {
	conn   *simnet.Conn
	rank   int
	leaves int // leaf back-ends in this child's subtree
}

// FrontEnd is the overlay root, owned by the tool's front-end process.
type FrontEnd struct {
	p        *cluster.Proc
	cfg      Config
	listener *simnet.Listener
	children []child
	leaves   int
}

// NewFrontEnd opens the overlay root on an ephemeral port.
func NewFrontEnd(p *cluster.Proc, cfg Config) (*FrontEnd, error) {
	l, err := p.Host().Listen(0)
	if err != nil {
		return nil, err
	}
	return &FrontEnd{p: p, cfg: cfg.withDefaults(), listener: l}, nil
}

// Addr returns the root's listen address (host:port) for daemons to dial.
func (fe *FrontEnd) Addr() string { return fe.listener.Addr().String() }

// AcceptChildren accepts exactly n direct children, charging the per-child
// accept and handshake costs — the connection-establishment phase whose
// serial root cost dominates MRNet's 1-deep startup.
func (fe *FrontEnd) AcceptChildren(n int) error {
	for i := 0; i < n; i++ {
		conn, err := fe.listener.Accept()
		if err != nil {
			return err
		}
		fe.p.Compute(fe.cfg.PerChildAcceptCost)
		hello, err := lmonp.ReadFrame(conn)
		if err != nil {
			return err
		}
		fe.p.Compute(fe.cfg.HandshakeCost)
		rd := lmonp.NewReader(hello)
		rank, _ := rd.Uint32()
		leaves, err := rd.Uint32()
		if err != nil {
			return fmt.Errorf("tbon: bad hello: %w", err)
		}
		fe.children = append(fe.children, child{conn: conn, rank: int(rank), leaves: int(leaves)})
		fe.leaves += int(leaves)
	}
	return nil
}

// Leaves returns the number of leaf back-ends connected (directly or
// through comm nodes).
func (fe *FrontEnd) Leaves() int { return fe.leaves }

// Multicast sends pkt down the whole tree.
func (fe *FrontEnd) Multicast(pkt Packet) error {
	raw := encodePacket(pkt)
	for _, c := range fe.children {
		if err := lmonp.WriteFrame(c.conn, raw); err != nil {
			return err
		}
	}
	return nil
}

// GatherMerged reads one (possibly pre-merged) response per direct child
// and merges them with pkt's filter, returning the reduced payload.
func (fe *FrontEnd) GatherMerged(filter string) ([]byte, error) {
	f := lookupFilter(filter)
	var acc []byte
	for _, c := range fe.children {
		raw, err := lmonp.ReadFrame(c.conn)
		if err != nil {
			return nil, err
		}
		pkt, err := decodePacket(raw)
		if err != nil {
			return nil, err
		}
		fe.p.Compute(fe.cfg.HandshakeCost / 3) // per-packet processing
		acc = f(acc, pkt.Data)
	}
	return acc, nil
}

// Request multicasts a request and returns the filter-merged responses —
// the round-trip STAT uses per stack-sample wave.
func (fe *FrontEnd) Request(pkt Packet) ([]byte, error) {
	if err := fe.Multicast(pkt); err != nil {
		return nil, err
	}
	return fe.GatherMerged(pkt.Filter)
}

// Close shuts the overlay down (children observe EOF).
func (fe *FrontEnd) Close() {
	for _, c := range fe.children {
		c.conn.Close()
	}
	fe.listener.Close()
}

// Leaf is a back-end endpoint of the overlay.
type Leaf struct {
	conn *simnet.Conn
	rank int
}

// ErrNoParent reports a missing/invalid parent address.
var ErrNoParent = errors.New("tbon: no parent address")

// ConnectLeaf dials the parent and sends the hello. rank identifies the
// leaf; retry covers parents that are still coming up.
func ConnectLeaf(p *cluster.Proc, parentAddr string, rank int) (*Leaf, error) {
	addr, err := parseHostPort(parentAddr)
	if err != nil {
		return nil, err
	}
	var conn *simnet.Conn
	for attempt := 0; attempt < 2000; attempt++ {
		conn, err = p.Host().Dial(addr)
		if err == nil {
			break
		}
		p.Sim().Sleep(5 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("tbon: leaf %d dialing %s: %w", rank, parentAddr, err)
	}
	hello := lmonp.AppendUint32(nil, uint32(rank))
	hello = lmonp.AppendUint32(hello, 1)
	if err := lmonp.WriteFrame(conn, hello); err != nil {
		return nil, err
	}
	return &Leaf{conn: conn, rank: rank}, nil
}

// Rank returns the leaf's rank.
func (l *Leaf) Rank() int { return l.rank }

// Recv blocks for the next downstream packet.
func (l *Leaf) Recv() (Packet, error) {
	raw, err := lmonp.ReadFrame(l.conn)
	if err != nil {
		return Packet{}, err
	}
	return decodePacket(raw)
}

// Send ships an upstream packet.
func (l *Leaf) Send(pkt Packet) error {
	return lmonp.WriteFrame(l.conn, encodePacket(pkt))
}

// Close closes the leaf's uplink.
func (l *Leaf) Close() { l.conn.Close() }

// LaunchNativeFlat reproduces MRNet's native 1-deep startup: the front end
// launches one leaf daemon per node through the rsh substrate
// (sequentially, the ad hoc mechanism of paper §2) and then accepts all of
// them directly. baseEnv is merged into every daemon's environment; the
// parent address and rank ride EnvParent/EnvRank.
func LaunchNativeFlat(p *cluster.Proc, svc *rsh.Service, nodes []string, leafExe string, baseEnv map[string]string, cfg Config) (*FrontEnd, error) {
	fe, err := NewFrontEnd(p, cfg)
	if err != nil {
		return nil, err
	}
	envs := make([]map[string]string, len(nodes))
	for i := range nodes {
		env := make(map[string]string, len(baseEnv)+2)
		for k, v := range baseEnv {
			env[k] = v
		}
		env[EnvParent] = fe.Addr()
		env[EnvRank] = fmt.Sprint(i)
		envs[i] = env
	}
	if err := svc.Spawn(p, nodes, leafExe, nil, envs); err != nil {
		fe.Close()
		return nil, err
	}
	if err := fe.AcceptChildren(len(nodes)); err != nil {
		fe.Close()
		return nil, err
	}
	return fe, nil
}

func parseHostPort(s string) (simnet.Addr, error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			var port int
			if _, err := fmt.Sscanf(s[i+1:], "%d", &port); err != nil {
				return simnet.Addr{}, fmt.Errorf("%w: %q", ErrNoParent, s)
			}
			return simnet.Addr{Host: s[:i], Port: port}, nil
		}
	}
	return simnet.Addr{}, fmt.Errorf("%w: %q", ErrNoParent, s)
}

// Package rm defines the resource-manager abstraction LaunchMON builds on:
// starting a parallel job under tracer control, the MPIR-style Automatic
// Process Acquisition Interface (APAI) contract, scalable co-located tool
// daemon spawning, and extra-node allocation for middleware daemons.
//
// Concrete managers (internal/rm/slurm, internal/rm/bgl) install their
// launcher and node daemons onto a simulated cluster and implement this
// interface; the LaunchMON engine is written purely against it, which is
// the m×n → m+n portability argument of the paper made concrete.
package rm

import (
	"errors"
	"fmt"

	"launchmon/internal/cluster"
	"launchmon/internal/proctab"
)

// Well-known environment variables the RM provides to spawned tool
// daemons. They correspond to the bootstrap information real LaunchMON
// passes via the RM's environment plumbing.
const (
	// EnvNodeID is the daemon's 0-based index within the launch node list
	// (doubles as the ICCL rank).
	EnvNodeID = "LMON_NODEID"
	// EnvNNodes is the total number of daemons launched together.
	EnvNNodes = "LMON_NNODES"
	// EnvNodeList is the comma-joined node list of the launch.
	EnvNodeList = "LMON_NODELIST"
	// EnvJobID identifies the target job.
	EnvJobID = "LMON_JOBID"
)

// MPIR symbol names exposed by launcher processes (the APAI contract).
const (
	SymProctab       = "MPIR_proctable"        // encoded proctab.Table (monolithic, legacy)
	SymProctabLen    = "MPIR_proctable_size"   // entry count
	SymProctabChunks = "MPIR_proctable_chunks" // chunk count (chunked publication)
	SymDebugState    = "MPIR_debug_state"      // launch progress indicator
	BPName           = "MPIR_Breakpoint"       // debug-event reason at launch-done
)

// SymProctabChunk names the i-th chunk symbol of a chunked RPDTAB
// publication (rank-sorted bounded chunks, see PublishProctab).
func SymProctabChunk(i int) string { return fmt.Sprintf("MPIR_proctable_chunk_%d", i) }

// ProctabChunkBytes bounds one published proctab chunk. It mirrors the
// chunk granularity of the rest of the launch pipeline, so the engine's
// per-read transient stays O(chunk) no matter the job scale.
const ProctabChunkBytes = proctab.DefaultChunkBytes

// JobSpec describes a parallel application launch.
type JobSpec struct {
	Name         string // job name (diagnostics)
	Exe          string // application executable name
	Nodes        int    // number of compute nodes
	TasksPerNode int    // MPI tasks per node
}

// Tasks returns the total task count.
func (s JobSpec) Tasks() int { return s.Nodes * s.TasksPerNode }

// DaemonSpec describes tool daemons for the RM to spawn (one per node).
type DaemonSpec struct {
	Exe  string // registered executable name
	Args []string
	Env  map[string]string // session bootstrap environment (LMON_*)
}

// Errors common to manager implementations.
var (
	ErrNoSuchJob     = errors.New("rm: no such job")
	ErrInsufficient  = errors.New("rm: insufficient nodes available")
	ErrJobNotReady   = errors.New("rm: job has not reached MPIR_Breakpoint")
	ErrAlreadyKilled = errors.New("rm: job already terminated")
)

// Job is a handle onto one running (or launching) parallel job, obtained
// from a Manager. The launcher process it wraps is the tracee of the
// LaunchMON engine.
type Job interface {
	// ID returns the RM-assigned job id.
	ID() int
	// LauncherProc returns the job-launcher process (srun/mpirun); the
	// engine attaches its tracer to it.
	LauncherProc() *cluster.Proc
	// Start releases a held launcher (launch mode spawns the launcher held
	// so the engine can attach before it runs).
	Start()
	// Nodes returns the node names of the job's allocation (empty until the
	// launch reaches MPIR_Breakpoint).
	Nodes() []string
	// SpawnDaemons scalably spawns one tool daemon per job node through the
	// RM's native launch fabric, merging extra per-node variables into
	// spec.Env. It blocks until every daemon process exists.
	SpawnDaemons(spec DaemonSpec) error
	// AllocateAndSpawn allocates n fresh nodes (disjoint from the job's)
	// and spawns one daemon per node; it returns the new node names.
	AllocateAndSpawn(n int, spec DaemonSpec) ([]string, error)
	// Kill terminates the job's tasks and all daemons spawned through it.
	Kill() error
}

// Manager abstracts one resource-manager installation on a cluster.
type Manager interface {
	// Name identifies the RM ("slurm", "bgl-mpirun").
	Name() string
	// StartJobHeld creates the job-launcher process on the front-end node
	// in the held state and registers the job. The caller attaches a tracer
	// and then calls Job.Start.
	StartJobHeld(spec JobSpec) (Job, error)
	// StartJob creates and immediately starts a job (no tracer), the way a
	// user would from a shell; tools attach to it later.
	StartJob(spec JobSpec) (Job, error)
	// FindJob looks up a running job by id (attach mode).
	FindJob(id int) (Job, bool)
	// DebugEventCount reports how many tracer stop events the launcher
	// raises before MPIR_Breakpoint (SLURM after the fix described in the
	// paper raises a scale-independent number).
	DebugEventCount(spec JobSpec) int
}

// PublishProctab publishes a launcher's RPDTAB through the APAI symbols
// in chunked form: the rank-sorted table is split into bounded chunks
// (SymProctabChunk(i), ProctabChunkBytes each) with SymProctabChunks
// carrying the count, alongside SymProctabLen. The engine reads one
// chunk symbol at a time, so neither side ever materializes a second
// full encoded table — the launcher-side half of the chunked harvest.
func PublishProctab(p *cluster.Proc, tab proctab.Table) {
	n := 0
	w := proctab.NewChunkWriter(ProctabChunkBytes, func(chunk []byte, sum uint64) error {
		// SetSymbol keeps a reference, not a copy; each chunk is freshly
		// allocated by the writer's encoder.
		p.SetSymbol(SymProctabChunk(n), cluster.Symbol{Value: append([]byte(nil), chunk...), Size: len(chunk)})
		n++
		return nil
	})
	if err := w.AddTable(tab); err == nil {
		_ = w.Flush()
	}
	p.SetSymbol(SymProctabChunks, cluster.Symbol{Value: n, Size: 4})
	p.SetSymbol(SymProctabLen, cluster.Symbol{Value: len(tab), Size: 4})
}

// ProctabFromLauncher reads and decodes the RPDTAB from a launcher process
// through an attached tracer — the engine's Region B operation, in its
// whole-table form (tools and the DPCL daemon use it; the engine's launch
// path streams via ReadProctabChunks instead). Chunked publication is
// preferred; launchers publishing only the legacy monolithic SymProctab
// still work. The cost charged by ReadSymbol is proportional to the
// bytes read either way.
func ProctabFromLauncher(tr *cluster.Tracer) (proctab.Table, error) {
	var tab proctab.Table
	err := ReadProctabChunks(tr, func(chunk []byte, i, total int) error {
		entries, err := proctab.Decode(chunk)
		if err != nil {
			return err
		}
		tab = append(tab, entries...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tab, nil
}

// ReadProctabChunks streams the launcher's published RPDTAB chunk by
// chunk: fn receives each encoded chunk (with its index and the chunk
// count) right after its symbol read, so a caller re-streaming the table
// holds O(chunk) bytes at a time. Launchers that only publish the legacy
// monolithic SymProctab yield a single chunk.
func ReadProctabChunks(tr *cluster.Tracer, fn func(chunk []byte, i, total int) error) error {
	if raw, err := tr.ReadSymbol(SymProctabChunks); err == nil {
		n, ok := raw.(int)
		if !ok {
			return errors.New("rm: MPIR_proctable_chunks symbol has unexpected type")
		}
		for i := 0; i < n; i++ {
			craw, err := tr.ReadSymbol(SymProctabChunk(i))
			if err != nil {
				return err
			}
			chunk, ok := craw.([]byte)
			if !ok {
				return fmt.Errorf("rm: %s symbol has unexpected type", SymProctabChunk(i))
			}
			if err := fn(chunk, i, n); err != nil {
				return err
			}
		}
		return nil
	}
	raw, err := tr.ReadSymbol(SymProctab)
	if err != nil {
		return err
	}
	enc, ok := raw.([]byte)
	if !ok {
		return errors.New("rm: MPIR_proctable symbol has unexpected type")
	}
	return fn(enc, 0, 1)
}

// Package bgl provides a BlueGene/L-like resource manager: the same
// launch-tree contract as the SLURM-like manager, but with the cost
// profile the paper reports for BG/L's mpirun — substantially higher
// T(job) and T(daemon) (per-task and per-node launcher costs), a single
// dedicated service-node launch path, and a higher per-request cost on
// the I/O-node side.
//
// The paper (§4) found LaunchMON's own overheads on BG/L similar to
// Atlas, with the RM's job/daemon spawn times significantly higher; this
// manager reproduces that contrast in the BG/L ablation benchmark.
package bgl

import (
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
)

// Install boots the BG/L-like mpirun RM onto the cluster.
func Install(cl *cluster.Cluster) (rm.Manager, error) {
	return slurm.Install(cl, Config())
}

// Config returns the BG/L mpirun cost profile: ~5x the per-task launcher
// cost and ~4x the per-node daemon spawn cost of the SLURM profile, plus a
// shallower (flat) service-node fan-out.
func Config() slurm.Config {
	return slurm.Config{
		Name:                 "bgl-mpirun",
		Fanout:               8,
		DebugEvents:          12,
		PerTaskRootCost:      2500 * time.Microsecond,
		PerNodeSpawnRootCost: 7200 * time.Microsecond,
		PerMsgCost:           300 * time.Microsecond,
		AllocBase:            15 * time.Millisecond,
		AllocPerNode:         60 * time.Microsecond,
	}
}

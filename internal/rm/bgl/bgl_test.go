package bgl

import (
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/rm/slurm"
	"launchmon/internal/vtime"
)

func TestInstallAndLaunch(t *testing.T) {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := Install(cl)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Name() != "bgl-mpirun" {
		t.Fatalf("name = %q", mgr.Name())
	}
	var tab int
	sim.Go("test", func() {
		j, err := mgr.StartJob(rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
		if err != nil {
			t.Error(err)
			return
		}
		sim.Sleep(30 * time.Second)
		tab = len(j.(interface{ Nodes() []string }).Nodes())
	})
	sim.Run()
	if tab != 4 {
		t.Fatalf("job spans %d nodes", tab)
	}
}

func TestCostProfileAboveSLURM(t *testing.T) {
	launchTime := func(install func(cl *cluster.Cluster) (rm.Manager, error)) time.Duration {
		sim := vtime.New()
		cl, err := cluster.New(sim, cluster.Options{Nodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := install(cl)
		if err != nil {
			t.Fatal(err)
		}
		var dur time.Duration
		sim.Go("test", func() {
			j, err := mgr.StartJobHeld(rm.JobSpec{Exe: "app", Nodes: 16, TasksPerNode: 8})
			if err != nil {
				t.Error(err)
				return
			}
			tr, err := j.LauncherProc().Attach()
			if err != nil {
				t.Error(err)
				return
			}
			j.Start()
			start := sim.Now()
			for {
				ev, ok := tr.Events().Recv()
				if !ok || ev.Type == cluster.EventExit {
					return
				}
				if ev.Reason == rm.BPName {
					dur = sim.Now() - start
					tr.Detach()
					return
				}
				tr.Continue()
			}
		})
		sim.Run()
		return dur
	}
	bglTime := launchTime(Install)
	slurmTime := launchTime(func(cl *cluster.Cluster) (rm.Manager, error) {
		return slurm.Install(cl, slurm.Config{})
	})
	if bglTime == 0 || slurmTime == 0 {
		t.Fatal("launches did not complete")
	}
	// The paper found BG/L's T(job) significantly higher.
	if bglTime < 3*slurmTime {
		t.Fatalf("BG/L launch %v not clearly above SLURM %v", bglTime, slurmTime)
	}
}

func TestDebugEventCountMatchesSLURMContract(t *testing.T) {
	sim := vtime.New()
	cl, _ := cluster.New(sim, cluster.Options{Nodes: 1})
	mgr, err := Install(cl)
	if err != nil {
		t.Fatal(err)
	}
	small := mgr.DebugEventCount(rm.JobSpec{Nodes: 1, TasksPerNode: 1})
	big := mgr.DebugEventCount(rm.JobSpec{Nodes: 1024, TasksPerNode: 8})
	if small != big {
		t.Fatalf("BG/L debug events scale: %d vs %d", small, big)
	}
}

package slurm

import (
	"fmt"
	"sync"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// slurmd opcodes.
const (
	opLaunch = 10 // launch job tasks over the tree
	opSpawn  = 11 // spawn one tool daemon per node over the tree
	opKill   = 12 // kill a job's tasks and daemons over the tree
)

// slurmd is the per-node RM daemon. It receives tree requests, forwards
// them to its children in the launch node list (k-ary heap layout), acts
// locally, and aggregates replies.
type slurmd struct {
	m    *Manager
	node *cluster.Node

	mu       sync.Mutex
	jobProcs map[int][]*cluster.Proc // processes started for each job id
}

func (d *slurmd) main(p *cluster.Proc) {
	l, err := p.Host().Listen(SlurmdPort)
	if err != nil {
		return
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		p.Sim().Go("slurmd-conn", func() {
			defer conn.Close()
			d.handle(p, conn)
		})
	}
}

func (d *slurmd) handle(p *cluster.Proc, conn *simnet.Conn) {
	req, err := readFrame(conn)
	if err != nil {
		return
	}
	p.Compute(d.m.cfg.PerMsgCost)
	rd := lmonp.NewReader(req)
	op, err := rd.Uint32()
	if err != nil {
		return
	}
	var resp []byte
	switch op {
	case opLaunch:
		resp = d.handleLaunch(p, req, rd)
	case opSpawn:
		resp = d.handleSpawn(p, req, rd)
	case opKill:
		resp = d.handleKill(p, req, rd)
	default:
		resp = lmonp.AppendString(nil, fmt.Sprintf("slurmd: bad op %d", op))
	}
	writeFrame(conn, resp)
}

// children returns the k-ary heap children indices of self within a node
// list of the given length.
func children(self, n, fanout int) []int {
	var out []int
	for c := self*fanout + 1; c <= self*fanout+fanout && c < n; c++ {
		out = append(out, c)
	}
	return out
}

// forward fans the raw request out to the children of self in nodelist,
// rewriting the self-index field, and collects one reply payload each.
// The self index is encoded as the uint32 immediately after the opcode by
// all tree requests, letting forwarding work generically. With tolerant
// set, unreachable children are skipped (their reply slot stays nil)
// instead of failing the whole request — the kill path uses this, since a
// dead child's processes died with its node.
func (d *slurmd) forward(p *cluster.Proc, raw []byte, nodelist []string, self int, tolerant bool) ([][]byte, error) {
	kids := children(self, len(nodelist), d.m.cfg.Fanout)
	replies := make([][]byte, len(kids))
	errs := make([]error, len(kids))
	wg := vtime.NewWaitGroup(p.Sim())
	wg.Add(len(kids))
	for i, k := range kids {
		i, k := i, k
		p.Sim().Go("slurmd-fwd", func() {
			defer wg.Done()
			req := make([]byte, len(raw))
			copy(req, raw)
			// Rewrite the self index (bytes 4..8, right after the opcode).
			req[4] = byte(uint32(k) >> 24)
			req[5] = byte(uint32(k) >> 16)
			req[6] = byte(uint32(k) >> 8)
			req[7] = byte(uint32(k))
			conn, err := p.Host().Dial(simnet.Addr{Host: nodelist[k], Port: SlurmdPort})
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			if err := writeFrame(conn, req); err != nil {
				errs[i] = err
				return
			}
			replies[i], errs[i] = readFrame(conn)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !tolerant {
			return nil, err
		}
	}
	return replies, nil
}

// launch request layout: op, self, jobid, tasksPerNode, exe, nodelist.
func encodeLaunch(jobid, tasksPerNode int, exe string, nodelist []string) []byte {
	b := lmonp.AppendUint32(nil, opLaunch)
	b = lmonp.AppendUint32(b, 0) // self index; rewritten per hop
	b = lmonp.AppendUint32(b, uint32(jobid))
	b = lmonp.AppendUint32(b, uint32(tasksPerNode))
	b = lmonp.AppendString(b, exe)
	b = lmonp.AppendString(b, joinNodes(nodelist))
	return b
}

func (d *slurmd) handleLaunch(p *cluster.Proc, raw []byte, rd *lmonp.Reader) []byte {
	self32, _ := rd.Uint32()
	jobid32, _ := rd.Uint32()
	tpn32, _ := rd.Uint32()
	exe, _ := rd.String()
	nl, err := rd.String()
	if err != nil {
		return lmonp.AppendString(nil, "slurmd: bad launch request")
	}
	self, jobid, tpn := int(self32), int(jobid32), int(tpn32)
	nodelist := splitNodes(nl)

	// Forward first so subtrees overlap with local forking.
	type fwdResult struct {
		replies [][]byte
		err     error
	}
	fwdCh := vtime.NewChan[fwdResult](p.Sim())
	p.Sim().Go("slurmd-launch-fwd", func() {
		r, err := d.forward(p, raw, nodelist, self, false)
		fwdCh.Send(fwdResult{r, err})
	})

	// Fork the local tasks (block rank distribution: node i owns ranks
	// i*tpn .. i*tpn+tpn-1).
	local := make(proctab.Table, 0, tpn)
	for i := 0; i < tpn; i++ {
		proc, err := d.node.SpawnProc(cluster.Spec{Exe: exe, Passive: true})
		if err != nil {
			return lmonp.AppendString(nil, fmt.Sprintf("slurmd %s: %v", d.node.Name(), err))
		}
		d.track(jobid, proc)
		local = append(local, proctab.ProcDesc{
			Host: d.node.Name(), Exe: exe, Pid: proc.Pid(), Rank: self*tpn + i,
		})
	}

	fr, _ := fwdCh.Recv()
	if fr.err != nil {
		return lmonp.AppendString(nil, fr.err.Error())
	}
	merged := local
	for _, rep := range fr.replies {
		rrd := lmonp.NewReader(rep)
		emsg, err := rrd.String()
		if err != nil || emsg != "" {
			return lmonp.AppendString(nil, "slurmd: child launch failed: "+emsg)
		}
		enc, err := rrd.Bytes()
		if err != nil {
			return lmonp.AppendString(nil, err.Error())
		}
		sub, err := proctab.Decode(enc)
		if err != nil {
			return lmonp.AppendString(nil, err.Error())
		}
		merged = append(merged, sub...)
	}
	out := lmonp.AppendString(nil, "")
	return lmonp.AppendBytes(out, merged.Encode())
}

// spawn request layout: op, self, jobid, exe, args, env, nodelist.
func encodeSpawn(jobid int, spec rm.DaemonSpec, nodelist []string) []byte {
	b := lmonp.AppendUint32(nil, opSpawn)
	b = lmonp.AppendUint32(b, 0) // self index; rewritten per hop
	b = lmonp.AppendUint32(b, uint32(jobid))
	b = lmonp.AppendString(b, spec.Exe)
	b = lmonp.AppendStringList(b, spec.Args)
	b = lmonp.AppendStringMap(b, sortedEnv(spec.Env))
	b = lmonp.AppendString(b, joinNodes(nodelist))
	return b
}

func (d *slurmd) handleSpawn(p *cluster.Proc, raw []byte, rd *lmonp.Reader) []byte {
	self32, _ := rd.Uint32()
	jobid32, _ := rd.Uint32()
	exe, _ := rd.String()
	args, _ := rd.StringList()
	kv, _ := rd.StringMap()
	nl, err := rd.String()
	if err != nil {
		return lmonp.AppendString(nil, "slurmd: bad spawn request")
	}
	self, jobid := int(self32), int(jobid32)
	nodelist := splitNodes(nl)

	type fwdResult struct {
		replies [][]byte
		err     error
	}
	fwdCh := vtime.NewChan[fwdResult](p.Sim())
	p.Sim().Go("slurmd-spawn-fwd", func() {
		r, err := d.forward(p, raw, nodelist, self, false)
		fwdCh.Send(fwdResult{r, err})
	})

	env := make(map[string]string, len(kv)+4)
	for _, e := range kv {
		env[e[0]] = e[1]
	}
	env[rm.EnvNodeID] = fmt.Sprint(self)
	env[rm.EnvNNodes] = fmt.Sprint(len(nodelist))
	env[rm.EnvNodeList] = nl
	env[rm.EnvJobID] = fmt.Sprint(jobid)
	proc, err := d.node.SpawnProc(cluster.Spec{Exe: exe, Args: args, Env: env})
	if err != nil {
		return lmonp.AppendString(nil, fmt.Sprintf("slurmd %s: %v", d.node.Name(), err))
	}
	d.track(jobid, proc)

	fr, _ := fwdCh.Recv()
	if fr.err != nil {
		return lmonp.AppendString(nil, fr.err.Error())
	}
	count := uint32(1)
	for _, rep := range fr.replies {
		rrd := lmonp.NewReader(rep)
		emsg, err := rrd.String()
		if err != nil || emsg != "" {
			return lmonp.AppendString(nil, "slurmd: child spawn failed: "+emsg)
		}
		c, err := rrd.Uint32()
		if err != nil {
			return lmonp.AppendString(nil, err.Error())
		}
		count += c
	}
	out := lmonp.AppendString(nil, "")
	return lmonp.AppendUint32(out, count)
}

// kill request layout: op, self, jobid, nodelist.
func encodeKill(jobid int, nodelist []string) []byte {
	b := lmonp.AppendUint32(nil, opKill)
	b = lmonp.AppendUint32(b, 0)
	b = lmonp.AppendUint32(b, uint32(jobid))
	b = lmonp.AppendString(b, joinNodes(nodelist))
	return b
}

func (d *slurmd) handleKill(p *cluster.Proc, raw []byte, rd *lmonp.Reader) []byte {
	self32, _ := rd.Uint32()
	jobid32, _ := rd.Uint32()
	nl, err := rd.String()
	if err != nil {
		return lmonp.AppendString(nil, "slurmd: bad kill request")
	}
	self, jobid := int(self32), int(jobid32)
	nodelist := splitNodes(nl)

	type fwdResult struct {
		err error
	}
	fwdCh := vtime.NewChan[fwdResult](p.Sim())
	p.Sim().Go("slurmd-kill-fwd", func() {
		_, err := d.forward(p, raw, nodelist, self, true)
		fwdCh.Send(fwdResult{err})
	})

	d.mu.Lock()
	procs := d.jobProcs[jobid]
	delete(d.jobProcs, jobid)
	d.mu.Unlock()
	for _, proc := range procs {
		proc.Kill()
	}

	fr, _ := fwdCh.Recv()
	if fr.err != nil {
		return lmonp.AppendString(nil, fr.err.Error())
	}
	return lmonp.AppendString(nil, "")
}

func (d *slurmd) track(jobid int, p *cluster.Proc) {
	d.mu.Lock()
	d.jobProcs[jobid] = append(d.jobProcs[jobid], p)
	d.mu.Unlock()
}

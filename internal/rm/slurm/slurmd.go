package slurm

import (
	"fmt"
	"sync"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
)

// slurmd opcodes.
const (
	opLaunch = 10 // launch job tasks over the tree
	opSpawn  = 11 // spawn one tool daemon per node over the tree
	opKill   = 12 // kill a job's tasks and daemons over the tree
)

// slurmd is the per-node RM daemon. It receives tree requests, forwards
// them to its children in the launch node list (k-ary heap layout), acts
// locally, and aggregates replies.
//
// It is fully event-driven: the listener, per-request processing, child
// forwards and local forks all run as vtime scheduler callbacks, so an
// idle slurmd parks no goroutine at all — at a million nodes the resident
// RM fabric costs table slots, not stacks. Virtual-time behaviour is
// identical to the previous goroutine-per-connection shape: the same
// per-request PerMsgCost charge, the same dial/fork instants, and a reply
// written at the same completion time (max of local work and the last
// child reply).
type slurmd struct {
	m    *Manager
	node *cluster.Node

	mu       sync.Mutex
	jobProcs map[int][]*cluster.Proc // processes started for each job id
}

func (d *slurmd) main(p *cluster.Proc) {
	l, err := p.Host().Listen(SlurmdPort)
	if err != nil {
		return
	}
	l.Handle(func(conn *simnet.Conn, err error) {
		if err != nil {
			return
		}
		d.serve(p, conn)
	})
	// The process stays alive through Spec.Resident; there is no accept
	// loop to park in.
}

// serve arms one accepted connection: the first frame is the request,
// charged PerMsgCost of handling CPU and then dispatched. Anything after
// it (stray frames, the requester's EOF) is ignored.
func (d *slurmd) serve(p *cluster.Proc, conn *simnet.Conn) {
	got := false
	lmonp.HandleFrames(conn, func(req []byte, err error) {
		if got {
			return
		}
		got = true
		if err != nil {
			conn.Close()
			return
		}
		p.Sim().After(d.m.cfg.PerMsgCost, func() {
			d.dispatch(p, conn, req)
		})
	})
}

func (d *slurmd) dispatch(p *cluster.Proc, conn *simnet.Conn, req []byte) {
	rd := lmonp.NewReader(req)
	op, err := rd.Uint32()
	if err != nil {
		conn.Close()
		return
	}
	reply := func(resp []byte) {
		writeFrame(conn, resp)
		conn.Close()
	}
	switch op {
	case opLaunch:
		d.handleLaunch(p, req, rd, reply)
	case opSpawn:
		d.handleSpawn(p, req, rd, reply)
	case opKill:
		d.handleKill(p, req, rd, reply)
	default:
		reply(lmonp.AppendString(nil, fmt.Sprintf("slurmd: bad op %d", op)))
	}
}

// children returns the k-ary heap children indices of self within a node
// list of the given length.
func children(self, n, fanout int) []int {
	var out []int
	for c := self*fanout + 1; c <= self*fanout+fanout && c < n; c++ {
		out = append(out, c)
	}
	return out
}

// treeCall tracks one in-flight tree request: every child forward plus
// the node's local work counts toward pending, and when the last of them
// completes the finish callback assembles and writes the reply — at
// max(local done, slowest child reply), exactly when the old blocking
// shape (serial local work, then wait for the forward fan-out) replied.
// abort ends the call early with an error reply (the old "return on local
// fork failure" path); late completions after an abort are dropped. All
// state transitions happen on scheduler callbacks, so no lock is needed.
type treeCall struct {
	pending int
	done    bool
	replies [][]byte
	errs    []error
	reply   func([]byte)
	finish  func()
}

func newTreeCall(kids int, reply func([]byte)) *treeCall {
	return &treeCall{
		pending: kids + 1, // +1 for the local work unit
		replies: make([][]byte, kids),
		errs:    make([]error, kids),
		reply:   reply,
	}
}

func (t *treeCall) complete() {
	t.pending--
	if t.pending == 0 && !t.done {
		t.done = true
		t.finish()
	}
}

func (t *treeCall) abort(resp []byte) {
	if t.done {
		return
	}
	t.done = true
	t.reply(resp)
}

// firstErr returns the first forward error in child order (the error the
// old sequential check surfaced).
func (t *treeCall) firstErr() error {
	for _, err := range t.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forwardKids fans the raw request out to the children of self in
// nodelist, rewriting the self-index field (the uint32 right after the
// opcode, letting forwarding work generically), and records one reply
// payload or error per child in st. Each child costs a dial callback and
// a frame handler — no forwarding goroutine — and its connection is
// closed as soon as its reply lands. Replies are uncharged, as before.
func (d *slurmd) forwardKids(p *cluster.Proc, raw []byte, nodelist []string, kids []int, st *treeCall) {
	for i, k := range kids {
		i, k := i, k
		req := make([]byte, len(raw))
		copy(req, raw)
		req[4] = byte(uint32(k) >> 24)
		req[5] = byte(uint32(k) >> 16)
		req[6] = byte(uint32(k) >> 8)
		req[7] = byte(uint32(k))
		p.Host().DialAsync(simnet.Addr{Host: nodelist[k], Port: SlurmdPort}, func(conn *simnet.Conn, err error) {
			if err != nil {
				st.errs[i] = err
				st.complete()
				return
			}
			if err := writeFrame(conn, req); err != nil {
				conn.Close()
				st.errs[i] = err
				st.complete()
				return
			}
			answered := false
			lmonp.HandleFrames(conn, func(rep []byte, err error) {
				if answered {
					return
				}
				answered = true
				conn.Close()
				st.replies[i], st.errs[i] = rep, err
				st.complete()
			})
		})
	}
}

// launch request layout: op, self, jobid, tasksPerNode, exe, nodelist.
func encodeLaunch(jobid, tasksPerNode int, exe string, nodelist []string) []byte {
	b := lmonp.AppendUint32(nil, opLaunch)
	b = lmonp.AppendUint32(b, 0) // self index; rewritten per hop
	b = lmonp.AppendUint32(b, uint32(jobid))
	b = lmonp.AppendUint32(b, uint32(tasksPerNode))
	b = lmonp.AppendString(b, exe)
	b = lmonp.AppendString(b, joinNodes(nodelist))
	return b
}

func (d *slurmd) handleLaunch(p *cluster.Proc, raw []byte, rd *lmonp.Reader, reply func([]byte)) {
	self32, _ := rd.Uint32()
	jobid32, _ := rd.Uint32()
	tpn32, _ := rd.Uint32()
	exe, _ := rd.String()
	nl, err := rd.String()
	if err != nil {
		reply(lmonp.AppendString(nil, "slurmd: bad launch request"))
		return
	}
	self, jobid, tpn := int(self32), int(jobid32), int(tpn32)
	nodelist := splitNodes(nl)

	kids := children(self, len(nodelist), d.m.cfg.Fanout)
	st := newTreeCall(len(kids), reply)
	local := make(proctab.Table, 0, tpn)
	st.finish = func() {
		if err := st.firstErr(); err != nil {
			st.reply(lmonp.AppendString(nil, err.Error()))
			return
		}
		merged := local
		for _, rep := range st.replies {
			rrd := lmonp.NewReader(rep)
			emsg, err := rrd.String()
			if err != nil || emsg != "" {
				st.reply(lmonp.AppendString(nil, "slurmd: child launch failed: "+emsg))
				return
			}
			enc, err := rrd.Bytes()
			if err != nil {
				st.reply(lmonp.AppendString(nil, err.Error()))
				return
			}
			sub, err := proctab.Decode(enc)
			if err != nil {
				st.reply(lmonp.AppendString(nil, err.Error()))
				return
			}
			merged = append(merged, sub...)
		}
		out := lmonp.AppendString(nil, "")
		st.reply(lmonp.AppendBytes(out, merged.Encode()))
	}

	// Forward first so subtrees overlap with local forking.
	d.forwardKids(p, raw, nodelist, kids, st)

	// Fork the local tasks (block rank distribution: node i owns ranks
	// i*tpn .. i*tpn+tpn-1), chained so they serialize on this node's fork
	// window in request order, as the old blocking loop did.
	var forkNext func(i int)
	forkNext = func(i int) {
		if i == tpn {
			st.complete()
			return
		}
		d.node.SpawnProcAsync(cluster.Spec{Exe: exe, Passive: true}, func(proc *cluster.Proc, err error) {
			if err != nil {
				st.abort(lmonp.AppendString(nil, fmt.Sprintf("slurmd %s: %v", d.node.Name(), err)))
				return
			}
			d.track(jobid, proc)
			local = append(local, proctab.ProcDesc{
				Host: d.node.Name(), Exe: exe, Pid: proc.Pid(), Rank: self*tpn + i,
			})
			forkNext(i + 1)
		})
	}
	forkNext(0)
}

// spawn request layout: op, self, jobid, exe, args, env, nodelist.
func encodeSpawn(jobid int, spec rm.DaemonSpec, nodelist []string) []byte {
	b := lmonp.AppendUint32(nil, opSpawn)
	b = lmonp.AppendUint32(b, 0) // self index; rewritten per hop
	b = lmonp.AppendUint32(b, uint32(jobid))
	b = lmonp.AppendString(b, spec.Exe)
	b = lmonp.AppendStringList(b, spec.Args)
	b = lmonp.AppendStringMap(b, sortedEnv(spec.Env))
	b = lmonp.AppendString(b, joinNodes(nodelist))
	return b
}

func (d *slurmd) handleSpawn(p *cluster.Proc, raw []byte, rd *lmonp.Reader, reply func([]byte)) {
	self32, _ := rd.Uint32()
	jobid32, _ := rd.Uint32()
	exe, _ := rd.String()
	args, _ := rd.StringList()
	kv, _ := rd.StringMap()
	nl, err := rd.String()
	if err != nil {
		reply(lmonp.AppendString(nil, "slurmd: bad spawn request"))
		return
	}
	self, jobid := int(self32), int(jobid32)
	nodelist := splitNodes(nl)

	kids := children(self, len(nodelist), d.m.cfg.Fanout)
	st := newTreeCall(len(kids), reply)
	st.finish = func() {
		if err := st.firstErr(); err != nil {
			st.reply(lmonp.AppendString(nil, err.Error()))
			return
		}
		count := uint32(1)
		for _, rep := range st.replies {
			rrd := lmonp.NewReader(rep)
			emsg, err := rrd.String()
			if err != nil || emsg != "" {
				st.reply(lmonp.AppendString(nil, "slurmd: child spawn failed: "+emsg))
				return
			}
			c, err := rrd.Uint32()
			if err != nil {
				st.reply(lmonp.AppendString(nil, err.Error()))
				return
			}
			count += c
		}
		out := lmonp.AppendString(nil, "")
		st.reply(lmonp.AppendUint32(out, count))
	}

	d.forwardKids(p, raw, nodelist, kids, st)

	// Only the node index differs across the K spawned daemons; the rest
	// of the environment is interned once per request body and shared as
	// the processes' base layer — one map for the whole fabric instead of
	// one ~16-entry map per node.
	base := internSpawnEnv(raw[8:], func() map[string]string {
		env := make(map[string]string, len(kv)+3)
		for _, e := range kv {
			env[e[0]] = e[1]
		}
		env[rm.EnvNNodes] = fmt.Sprint(len(nodelist))
		env[rm.EnvNodeList] = nl
		env[rm.EnvJobID] = fmt.Sprint(jobid)
		return env
	})
	overlay := map[string]string{rm.EnvNodeID: fmt.Sprint(self)}
	d.node.SpawnProcAsync(cluster.Spec{Exe: exe, Args: args, Env: overlay, EnvBase: base}, func(proc *cluster.Proc, err error) {
		if err != nil {
			st.abort(lmonp.AppendString(nil, fmt.Sprintf("slurmd %s: %v", d.node.Name(), err)))
			return
		}
		d.track(jobid, proc)
		st.complete()
	})
}

// kill request layout: op, self, jobid, nodelist.
func encodeKill(jobid int, nodelist []string) []byte {
	b := lmonp.AppendUint32(nil, opKill)
	b = lmonp.AppendUint32(b, 0)
	b = lmonp.AppendUint32(b, uint32(jobid))
	b = lmonp.AppendString(b, joinNodes(nodelist))
	return b
}

func (d *slurmd) handleKill(p *cluster.Proc, raw []byte, rd *lmonp.Reader, reply func([]byte)) {
	self32, _ := rd.Uint32()
	jobid32, _ := rd.Uint32()
	nl, err := rd.String()
	if err != nil {
		reply(lmonp.AppendString(nil, "slurmd: bad kill request"))
		return
	}
	self, jobid := int(self32), int(jobid32)
	nodelist := splitNodes(nl)

	kids := children(self, len(nodelist), d.m.cfg.Fanout)
	st := newTreeCall(len(kids), reply)
	st.finish = func() {
		// Kill is tolerant: an unreachable child's processes died with its
		// node, so forward errors are not failures.
		st.reply(lmonp.AppendString(nil, ""))
	}

	d.forwardKids(p, raw, nodelist, kids, st)

	d.mu.Lock()
	procs := d.jobProcs[jobid]
	delete(d.jobProcs, jobid)
	d.mu.Unlock()
	for _, proc := range procs {
		proc.Kill()
	}
	st.complete()
}

// spawnEnvCache interns the shared daemon-environment layer by the spawn
// request body (identical at every node: the self-index field is excluded
// by the caller). Like the hostlist expansion cache, it is the simulated
// analogue of K nodes parsing the same request: one decoded value, shared.
var spawnEnvCache sync.Map // string(request body) -> map[string]string

func internSpawnEnv(body []byte, build func() map[string]string) map[string]string {
	key := string(body)
	if cached, ok := spawnEnvCache.Load(key); ok {
		return cached.(map[string]string)
	}
	actual, _ := spawnEnvCache.LoadOrStore(key, build())
	return actual.(map[string]string)
}

func (d *slurmd) track(jobid int, p *cluster.Proc) {
	d.mu.Lock()
	d.jobProcs[jobid] = append(d.jobProcs[jobid], p)
	d.mu.Unlock()
}

// Package slurm implements the rm.Manager contract as a SLURM-like
// resource manager on a simulated cluster: a controller process on the
// front-end node, one node daemon (slurmd) per compute node, and an
// srun-like job launcher that exposes the MPIR APAI symbols and raises
// MPIR_Breakpoint once the job is launched.
//
// Job launch and tool daemon spawning both travel down a k-ary tree of
// slurmd daemons computed over the launch node list, with per-node forks
// happening in parallel across nodes — the scalable native launch fabric
// the paper's LaunchMON delegates to. Cost constants default to values
// calibrated against the paper's Atlas measurements (see
// internal/bench/calibrate.go).
package slurm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/hostlist"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Well-known ports of the RM services.
const (
	CtrlPort   = 6817
	SlurmdPort = 6818
)

// Config tunes the RM's behaviour and cost model. Zero fields default.
type Config struct {
	// Name overrides the manager name (default "slurm").
	Name string
	// Fanout of the slurmd launch tree (default 32).
	Fanout int
	// DebugEvents is the number of tracer stops the launcher raises before
	// MPIR_Breakpoint; scale-independent, per the SLURM fix the paper
	// describes (default 11, for 12 total stops including the breakpoint).
	DebugEvents int
	// PerTaskRootCost is srun's per-task bookkeeping (stdio wiring, task
	// records); the dominant linear term of T(job) (default 500us,
	// calibrated to the paper's Atlas measurements).
	PerTaskRootCost time.Duration
	// PerNodeSpawnRootCost is srun's per-node ack processing when spawning
	// tool daemons; the linear term of T(daemon) (default 1.8ms).
	PerNodeSpawnRootCost time.Duration
	// PerMsgCost is slurmd's request handling CPU cost (default 120us).
	PerMsgCost time.Duration
	// AllocBase/AllocPerNode are the controller's allocation costs
	// (defaults 2ms / 20us).
	AllocBase    time.Duration
	AllocPerNode time.Duration
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "slurm"
	}
	if c.Fanout == 0 {
		c.Fanout = 32
	}
	if c.DebugEvents == 0 {
		c.DebugEvents = 11
	}
	if c.PerTaskRootCost == 0 {
		c.PerTaskRootCost = 500 * time.Microsecond
	}
	if c.PerNodeSpawnRootCost == 0 {
		c.PerNodeSpawnRootCost = 1800 * time.Microsecond
	}
	if c.PerMsgCost == 0 {
		c.PerMsgCost = 120 * time.Microsecond
	}
	if c.AllocBase == 0 {
		c.AllocBase = 2 * time.Millisecond
	}
	if c.AllocPerNode == 0 {
		c.AllocPerNode = 20 * time.Microsecond
	}
	return c
}

// Manager is the SLURM-like rm.Manager implementation.
type Manager struct {
	cl  *cluster.Cluster
	cfg Config

	mu     sync.Mutex
	nextID int
	jobs   map[int]*job
}

var _ rm.Manager = (*Manager)(nil)

// Install boots the RM onto the cluster: controller on the front end,
// slurmd on every compute node. Call before running the simulation.
func Install(cl *cluster.Cluster, cfg Config) (*Manager, error) {
	m := &Manager{cl: cl, cfg: cfg.withDefaults(), jobs: make(map[int]*job)}
	if _, err := cl.FrontEnd().SpawnSystemProc(cluster.Spec{
		Exe: m.cfg.Name + "ctld", Passive: false, Main: m.controllerMain,
	}); err != nil {
		return nil, err
	}
	for i := 0; i < cl.NumNodes(); i++ {
		node := cl.Node(i)
		d := &slurmd{m: m, node: node, jobProcs: make(map[int][]*cluster.Proc)}
		if _, err := node.SpawnSystemProc(cluster.Spec{
			Exe: m.cfg.Name + "d", Main: d.main, Resident: true,
		}); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Name implements rm.Manager.
func (m *Manager) Name() string { return m.cfg.Name }

// Config returns the effective configuration.
func (m *Manager) Config() Config { return m.cfg }

// DebugEventCount implements rm.Manager; SLURM's count is scale-free.
func (m *Manager) DebugEventCount(rm.JobSpec) int { return m.cfg.DebugEvents }

// StartJobHeld implements rm.Manager.
func (m *Manager) StartJobHeld(spec rm.JobSpec) (rm.Job, error) {
	return m.startJob(spec, true)
}

// StartJob implements rm.Manager.
func (m *Manager) StartJob(spec rm.JobSpec) (rm.Job, error) {
	return m.startJob(spec, false)
}

func (m *Manager) startJob(spec rm.JobSpec, hold bool) (rm.Job, error) {
	if spec.Nodes <= 0 || spec.TasksPerNode <= 0 {
		return nil, errors.New("slurm: job needs positive Nodes and TasksPerNode")
	}
	if spec.Nodes > m.cl.NumNodes() {
		return nil, fmt.Errorf("%w: want %d, have %d", rm.ErrInsufficient, spec.Nodes, m.cl.NumNodes())
	}
	m.mu.Lock()
	m.nextID++
	j := &job{
		m:    m,
		id:   m.nextID,
		spec: spec,
		cmds: vtime.NewChan[command](m.cl.Sim()),
	}
	m.jobs[j.id] = j
	m.mu.Unlock()

	p, err := m.cl.FrontEnd().SpawnProc(cluster.Spec{
		Exe:  "srun",
		Main: j.launcherMain,
		Hold: hold,
		Args: []string{fmt.Sprintf("-N%d", spec.Nodes), fmt.Sprintf("--ntasks-per-node=%d", spec.TasksPerNode), spec.Exe},
	})
	if err != nil {
		return nil, err
	}
	j.proc = p
	// The reaper serves control commands once the launcher dies, so a kill
	// against a lost launcher still reaps the job instead of hanging.
	m.cl.Sim().Go(fmt.Sprintf("slurm-job-reaper-%d", j.id), j.reaper)
	return j, nil
}

// FindJob implements rm.Manager.
func (m *Manager) FindJob(id int) (rm.Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// --- controller ---

// Controller request opcodes.
const (
	opAlloc = 1 // payload: n uint32, exclude []string → status, nodelist
)

func (m *Manager) controllerMain(p *cluster.Proc) {
	l, err := p.Host().Listen(CtrlPort)
	if err != nil {
		return
	}
	free := make(map[string]bool, m.cl.NumNodes())
	order := make([]string, 0, m.cl.NumNodes())
	for i := 0; i < m.cl.NumNodes(); i++ {
		name := m.cl.Node(i).Name()
		free[name] = true
		order = append(order, name)
	}
	var mu sync.Mutex
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		p.Sim().Go("slurmctld-conn", func() {
			defer conn.Close()
			r, err := readFrame(conn)
			if err != nil {
				return
			}
			rd := lmonp.NewReader(r)
			op, _ := rd.Uint32()
			if op != opAlloc {
				writeFrame(conn, lmonp.AppendString(nil, "bad op"))
				return
			}
			n32, _ := rd.Uint32()
			exclude, _ := rd.StringList()
			n := int(n32)
			p.Compute(m.cfg.AllocBase + time.Duration(n)*m.cfg.AllocPerNode)
			ex := make(map[string]bool, len(exclude))
			for _, e := range exclude {
				ex[e] = true
			}
			mu.Lock()
			var picked []string
			for _, name := range order {
				if len(picked) == n {
					break
				}
				if free[name] && !ex[name] {
					picked = append(picked, name)
				}
			}
			if len(picked) < n {
				mu.Unlock()
				writeFrame(conn, lmonp.AppendString(nil, "insufficient nodes"))
				return
			}
			for _, name := range picked {
				free[name] = false
			}
			mu.Unlock()
			out := lmonp.AppendString(nil, "") // empty error
			out = lmonp.AppendStringList(out, picked)
			writeFrame(conn, out)
		})
	}
}

// allocate asks the controller for n nodes, excluding the given ones.
func (m *Manager) allocate(from *simnet.Host, n int, exclude []string) ([]string, error) {
	conn, err := from.Dial(simnet.Addr{Host: m.cl.FrontEnd().Name(), Port: CtrlPort})
	if err != nil {
		return nil, fmt.Errorf("slurm: controller unreachable: %w", err)
	}
	defer conn.Close()
	req := lmonp.AppendUint32(nil, opAlloc)
	req = lmonp.AppendUint32(req, uint32(n))
	req = lmonp.AppendStringList(req, exclude)
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	resp, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(resp)
	emsg, err := rd.String()
	if err != nil {
		return nil, err
	}
	if emsg != "" {
		return nil, fmt.Errorf("%w: %s", rm.ErrInsufficient, emsg)
	}
	return rd.StringList()
}

// Frame helpers shared with the wire package.
var (
	writeFrame = lmonp.WriteFrame
	readFrame  = lmonp.ReadFrame
)

// joinNodes and splitNodes carry node lists on the wire and in the
// daemon environment in SLURM's compressed hostlist form
// ("node[0-99999]"): at 10^6 nodes a comma-joined list is ~7 MB per
// message and per environment, a compressed run is a few bytes.
// splitNodes returns a shared interned slice — callers must not mutate.
func joinNodes(nodes []string) string { return hostlist.Compress(nodes) }
func splitNodes(s string) []string    { return hostlist.Expand(s) }
func sortedEnv(env map[string]string) [][2]string {
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kv := make([][2]string, 0, len(keys))
	for _, k := range keys {
		kv = append(kv, [2]string{k, env[k]})
	}
	return kv
}

var _ = proctab.Table(nil) // used by sibling files

package slurm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// testRig boots a cluster with the RM installed.
func testRig(t *testing.T, nodes int, cfg Config) (*vtime.Sim, *cluster.Cluster, *Manager) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Install(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, cl, m
}

// launchToBreakpoint starts a held job under a tracer and drives it to
// MPIR_Breakpoint, returning the tracer. Must run inside a sim goroutine.
func launchToBreakpoint(t *testing.T, m *Manager, spec rm.JobSpec) (rm.Job, *cluster.Tracer) {
	t.Helper()
	j, err := m.StartJobHeld(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := j.LauncherProc().Attach()
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	for {
		ev, ok := tr.Events().Recv()
		if !ok {
			t.Fatal("launcher exited before MPIR_Breakpoint")
		}
		if ev.Type == cluster.EventExit {
			t.Fatal("launcher exited before MPIR_Breakpoint")
		}
		if ev.Reason == rm.BPName {
			return j, tr
		}
		if err := tr.Continue(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLaunchReachesBreakpointWithValidProctab(t *testing.T) {
	sim, _, m := testRig(t, 8, Config{})
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 8, TasksPerNode: 4})
		// The launcher is stopped at the breakpoint; read the APAI data
		// while stopped (the MPIR contract), then resume it.
		tab, err := rm.ProctabFromLauncher(tr)
		if err != nil {
			t.Error(err)
			return
		}
		if len(tab) != 32 {
			t.Errorf("proctab has %d entries, want 32", len(tab))
		}
		if err := tab.Validate(); err != nil {
			t.Error(err)
		}
		if got := len(tab.Hosts()); got != 8 {
			t.Errorf("proctab spans %d hosts, want 8", got)
		}
		// Block distribution: rank r on node r/4.
		for _, d := range tab {
			want := fmt.Sprintf("node%d", d.Rank/4)
			if d.Host != want {
				t.Errorf("rank %d on %s, want %s", d.Rank, d.Host, want)
			}
		}
		if len(j.Nodes()) != 8 {
			t.Errorf("job nodes = %v", j.Nodes())
		}
	})
	sim.Run()
}

func TestDebugEventCountScaleFree(t *testing.T) {
	_, _, m := testRig(t, 4, Config{})
	small := m.DebugEventCount(rm.JobSpec{Nodes: 1, TasksPerNode: 1})
	big := m.DebugEventCount(rm.JobSpec{Nodes: 1024, TasksPerNode: 8})
	if small != big {
		t.Fatalf("debug event count varies with scale: %d vs %d", small, big)
	}
	if small != 11 {
		t.Fatalf("default debug events = %d, want 11 (12 stops with the breakpoint)", small)
	}
}

func TestTracerSeesConfiguredDebugEvents(t *testing.T) {
	sim, _, m := testRig(t, 2, Config{DebugEvents: 5})
	events := 0
	sim.Go("test", func() {
		_, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "a", Nodes: 2, TasksPerNode: 1})
		_ = tr
	})
	// Count by re-running with an explicit counter.
	sim.Run()
	sim2 := vtime.New()
	cl2, _ := cluster.New(sim2, cluster.Options{Nodes: 2})
	m2, _ := Install(cl2, Config{DebugEvents: 5})
	sim2.Go("test", func() {
		j, _ := m2.StartJobHeld(rm.JobSpec{Exe: "a", Nodes: 2, TasksPerNode: 1})
		tr, _ := j.LauncherProc().Attach()
		j.Start()
		for {
			ev, ok := tr.Events().Recv()
			if !ok || ev.Type == cluster.EventExit {
				t.Error("launcher died early")
				return
			}
			if ev.Reason == rm.BPName {
				return
			}
			events++
			tr.Continue()
		}
	})
	sim2.Run()
	if events != 5 {
		t.Fatalf("saw %d pre-breakpoint events, want 5", events)
	}
}

func TestSpawnDaemonsCoLocated(t *testing.T) {
	sim, cl, m := testRig(t, 6, Config{})
	var gotNodes []string
	var gotEnv []map[string]string
	cl.Register("toolbe", func(p *cluster.Proc) {
		gotNodes = append(gotNodes, p.Node().Name())
		gotEnv = append(gotEnv, p.Environ())
		// Daemon stays alive briefly.
		p.Compute(time.Millisecond)
	})
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 6, TasksPerNode: 2})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		err := j.SpawnDaemons(rm.DaemonSpec{Exe: "toolbe", Env: map[string]string{"LMON_FE_ADDR": "fe0:5555"}})
		if err != nil {
			t.Error(err)
		}
		tr.Detach()
	})
	sim.Run()
	if len(gotNodes) != 6 {
		t.Fatalf("daemons ran on %d nodes, want 6", len(gotNodes))
	}
	seen := map[string]bool{}
	for i, n := range gotNodes {
		seen[n] = true
		env := gotEnv[i]
		if env["LMON_FE_ADDR"] != "fe0:5555" {
			t.Errorf("daemon %d missing tool env", i)
		}
		if env[rm.EnvNNodes] != "6" {
			t.Errorf("daemon %d NNODES = %q", i, env[rm.EnvNNodes])
		}
		if env[rm.EnvNodeList] == "" || env[rm.EnvNodeID] == "" || env[rm.EnvJobID] == "" {
			t.Errorf("daemon %d missing RM env: %v", i, env)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("daemons not co-located 1/node: %v", gotNodes)
	}
}

func TestAllocateAndSpawnDisjointNodes(t *testing.T) {
	sim, cl, m := testRig(t, 10, Config{})
	var mwNodes []string
	cl.Register("mwd", func(p *cluster.Proc) { p.Compute(time.Millisecond) })
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		nodes, err := j.AllocateAndSpawn(3, rm.DaemonSpec{Exe: "mwd"})
		if err != nil {
			t.Error(err)
			return
		}
		mwNodes = nodes
		jobSet := map[string]bool{}
		for _, n := range j.Nodes() {
			jobSet[n] = true
		}
		for _, n := range nodes {
			if jobSet[n] {
				t.Errorf("MW node %s overlaps job allocation", n)
			}
		}
		tr.Detach()
	})
	sim.Run()
	if len(mwNodes) != 3 {
		t.Fatalf("allocated %d MW nodes, want 3", len(mwNodes))
	}
}

func TestAllocateInsufficientNodes(t *testing.T) {
	sim, _, m := testRig(t, 4, Config{})
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		if _, err := j.AllocateAndSpawn(2, rm.DaemonSpec{Exe: "x"}); err == nil {
			t.Error("overallocation succeeded")
		}
		tr.Detach()
	})
	sim.Run()
}

func TestJobTooLargeRejected(t *testing.T) {
	_, _, m := testRig(t, 2, Config{})
	if _, err := m.StartJob(rm.JobSpec{Exe: "a", Nodes: 5, TasksPerNode: 1}); !errors.Is(err, rm.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestKillRemovesTasksAndDaemons(t *testing.T) {
	sim, cl, m := testRig(t, 4, Config{})
	cl.Register("toolbe", func(p *cluster.Proc) {
		// Daemon blocks forever (until killed).
		c := vtime.NewChan[int](p.Sim())
		c.Recv()
	})
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		if err := j.SpawnDaemons(rm.DaemonSpec{Exe: "toolbe"}); err != nil {
			t.Error(err)
			return
		}
		// 2 tasks + 1 daemon + 1 slurmd per node.
		if got := cl.Node(0).NumProcs(); got != 4 {
			t.Errorf("node0 has %d procs before kill, want 4", got)
		}
		tr.Detach()
		if err := j.Kill(); err != nil {
			t.Error(err)
			return
		}
		if got := cl.Node(0).NumProcs(); got != 1 {
			t.Errorf("node0 has %d procs after kill, want 1 (slurmd)", got)
		}
		if err := j.Kill(); !errors.Is(err, rm.ErrAlreadyKilled) {
			t.Errorf("second kill: %v", err)
		}
	})
	sim.Run()
}

func TestKillThroughDeepTree(t *testing.T) {
	// A fanout-2 tree over 9 nodes has depth 4: kill must reach every leaf.
	sim, cl, m := testRig(t, 9, Config{Fanout: 2})
	cl.Register("toolbe", func(p *cluster.Proc) {
		vtime.NewChan[int](p.Sim()).Recv()
	})
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 9, TasksPerNode: 2})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		if err := j.SpawnDaemons(rm.DaemonSpec{Exe: "toolbe"}); err != nil {
			t.Error(err)
			return
		}
		tr.Detach()
		if err := j.Kill(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 9; i++ {
			if got := cl.Node(i).NumProcs(); got != 1 {
				t.Errorf("node%d has %d procs after deep-tree kill", i, got)
			}
		}
	})
	sim.Run()
}

func TestFindJob(t *testing.T) {
	sim, _, m := testRig(t, 2, Config{})
	sim.Go("test", func() {
		j, err := m.StartJob(rm.JobSpec{Exe: "app", Nodes: 2, TasksPerNode: 1})
		if err != nil {
			t.Error(err)
			return
		}
		got, ok := m.FindJob(j.ID())
		if !ok || got.ID() != j.ID() {
			t.Error("FindJob failed")
		}
		if _, ok := m.FindJob(999); ok {
			t.Error("FindJob(999) succeeded")
		}
	})
	sim.Run()
}

func TestUntracedJobRunsToBreakpointAlone(t *testing.T) {
	sim, _, m := testRig(t, 3, Config{})
	var tab int
	sim.Go("test", func() {
		j, err := m.StartJob(rm.JobSpec{Exe: "app", Nodes: 3, TasksPerNode: 2})
		if err != nil {
			t.Error(err)
			return
		}
		// Give the launch time to complete, then attach and read directly.
		sim.Sleep(5 * time.Second)
		jj := j.(*job)
		tab = len(jj.Proctab())
	})
	sim.Run()
	if tab != 6 {
		t.Fatalf("untraced job proctab has %d entries, want 6", tab)
	}
}

func TestLaunchCostScalesWithTasks(t *testing.T) {
	timeFor := func(nodes, tpn int) time.Duration {
		sim := vtime.New()
		cl, _ := cluster.New(sim, cluster.Options{Nodes: nodes})
		m, _ := Install(cl, Config{})
		var dur time.Duration
		sim.Go("test", func() {
			start := sim.Now()
			j, err := m.StartJobHeld(rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: tpn})
			if err != nil {
				return
			}
			tr, _ := j.LauncherProc().Attach()
			j.Start()
			for {
				ev, ok := tr.Events().Recv()
				if !ok || ev.Type == cluster.EventExit {
					return
				}
				if ev.Reason == rm.BPName {
					dur = sim.Now() - start
					tr.Detach()
					return
				}
				tr.Continue()
			}
		})
		sim.Run()
		return dur
	}
	small := timeFor(8, 8)
	big := timeFor(64, 8)
	if small == 0 || big == 0 {
		t.Fatal("launch did not complete")
	}
	if big <= small {
		t.Fatalf("T(job) not increasing: %v (64 tasks) vs %v (512 tasks)", small, big)
	}
	// Should be roughly linear in tasks: 8x tasks => between 2x and 12x.
	if big > 12*small || big < 2*small {
		t.Fatalf("T(job) scaling off: %v -> %v", small, big)
	}
}

// Property: for any fanout and node count, the k-ary children sets
// partition 1..n-1 exactly.
func TestPropertyTreeChildrenPartition(t *testing.T) {
	f := func(nRaw, fRaw uint8) bool {
		n := int(nRaw%200) + 1
		fanout := int(fRaw%8) + 1
		seen := make([]int, n)
		for self := 0; self < n; self++ {
			for _, c := range children(self, n, fanout) {
				if c <= self || c >= n {
					return false
				}
				seen[c]++
			}
		}
		for i := 1; i < n; i++ {
			if seen[i] != 1 {
				return false
			}
		}
		return seen[0] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: proctab from launch is always valid with exactly n*tpn entries
// across any small cluster shape.
func TestPropertyLaunchProctabValid(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		nodes := int(nRaw%6) + 1
		tpn := int(tRaw%4) + 1
		sim := vtime.New()
		cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
		if err != nil {
			return false
		}
		m, err := Install(cl, Config{Fanout: 2})
		if err != nil {
			return false
		}
		ok := true
		sim.Go("test", func() {
			j, err := m.StartJob(rm.JobSpec{Exe: "app", Nodes: nodes, TasksPerNode: tpn})
			if err != nil {
				ok = false
				return
			}
			sim.Sleep(10 * time.Second)
			tab := j.(*job).Proctab()
			if len(tab) != nodes*tpn || tab.Validate() != nil {
				ok = false
			}
		})
		sim.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package slurm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// command is a control request delivered to the running launcher process
// (the simulated analogue of LaunchMON instructing the existing launcher,
// or running "srun --jobid=N" against the allocation).
type command struct {
	kind  cmdKind
	spec  rm.DaemonSpec
	n     int // AllocateAndSpawn node count
	reply *vtime.Chan[cmdResult]
}

type cmdKind int

const (
	cmdSpawnDaemons cmdKind = iota
	cmdAllocSpawn
	cmdKill
)

type cmdResult struct {
	nodes []string
	err   error
}

// job implements rm.Job for the SLURM-like manager.
type job struct {
	m    *Manager
	id   int
	spec rm.JobSpec
	proc *cluster.Proc
	cmds *vtime.Chan[command]

	mu      sync.Mutex
	nodes   []string
	mwNodes []string // AllocateAndSpawn allocations, reaped with the job
	ptab    proctab.Table
	killed  bool
}

var _ rm.Job = (*job)(nil)

// ID implements rm.Job.
func (j *job) ID() int { return j.id }

// LauncherProc implements rm.Job.
func (j *job) LauncherProc() *cluster.Proc { return j.proc }

// Start implements rm.Job.
func (j *job) Start() { j.proc.Start() }

// Nodes implements rm.Job.
func (j *job) Nodes() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.nodes...)
}

// Proctab returns the job's RPDTAB as known by the launcher (empty before
// MPIR_Breakpoint). The engine normally obtains it through the tracer
// (charged); this accessor exists for tests and the RM's own bookkeeping.
func (j *job) Proctab() proctab.Table {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append(proctab.Table(nil), j.ptab...)
}

// SpawnDaemons implements rm.Job.
func (j *job) SpawnDaemons(spec rm.DaemonSpec) error {
	res := j.send(command{kind: cmdSpawnDaemons, spec: spec})
	return res.err
}

// AllocateAndSpawn implements rm.Job.
func (j *job) AllocateAndSpawn(n int, spec rm.DaemonSpec) ([]string, error) {
	res := j.send(command{kind: cmdAllocSpawn, spec: spec, n: n})
	return res.nodes, res.err
}

// Kill implements rm.Job. It terminates the job even when the launcher
// itself is gone (killed directly, or lost with its node): the command is
// then served by the job's reaper instead of the launcher loop.
func (j *job) Kill() error {
	j.mu.Lock()
	if j.killed {
		j.mu.Unlock()
		return rm.ErrAlreadyKilled
	}
	j.mu.Unlock()
	res := j.send(command{kind: cmdKill})
	return res.err
}

func (j *job) send(c command) cmdResult {
	c.reply = vtime.NewChan[cmdResult](j.m.cl.Sim())
	j.cmds.Send(c)
	res, ok := c.reply.Recv()
	if !ok {
		return cmdResult{err: errors.New("slurm: launcher gone")}
	}
	return res
}

// reaper takes over the command queue once the launcher process has
// exited, so control requests against a dead launcher fail fast instead of
// hanging — and a kill still reaps the job's remaining processes (the
// orphan-cleanup path of the fault model).
func (j *job) reaper() {
	j.proc.Wait()
	for {
		cmd, ok := j.cmds.Recv()
		if !ok {
			return
		}
		j.serveOrphanCmd(cmd)
	}
}

// serveOrphanCmd handles one control command after launcher death.
func (j *job) serveOrphanCmd(cmd command) {
	switch cmd.kind {
	case cmdKill:
		cmd.reply.Send(cmdResult{err: j.directKill()})
	default:
		cmd.reply.Send(cmdResult{err: errors.New("slurm: launcher gone")})
	}
}

// directKill reaps the job's tasks and daemons without the launcher: one
// kill request per node, issued in parallel from the front-end node (where
// srun ran), best-effort — dead nodes are skipped, their processes died
// with them. The flat fan-out trades the tree's message economy for
// independence from dead interior nodes.
func (j *job) directKill() error {
	j.mu.Lock()
	if j.killed {
		j.mu.Unlock()
		return rm.ErrAlreadyKilled
	}
	nodes := append([]string(nil), j.nodes...)
	nodes = append(nodes, j.mwNodes...)
	j.mu.Unlock()
	h := j.m.cl.FrontEnd().Host()
	sim := j.m.cl.Sim()
	wg := vtime.NewWaitGroup(sim)
	wg.Add(len(nodes))
	for _, node := range nodes {
		node := node
		sim.Go("slurm-direct-kill", func() {
			defer wg.Done()
			single := []string{node}
			_, _ = j.treeRequest(h, single, encodeKill(j.id, single))
		})
	}
	wg.Wait()
	j.mu.Lock()
	j.killed = true
	j.mu.Unlock()
	return nil
}

// launcherMain is the srun-like process body: allocate, launch the tasks
// through the slurmd tree, publish the MPIR symbols, stop at
// MPIR_Breakpoint, then service control commands.
func (j *job) launcherMain(p *cluster.Proc) {
	cfg := j.m.cfg

	// Early debug events a tracer observes while the launcher initializes
	// (library loads, thread creation). SLURM's count is scale-independent
	// — the property the paper credits for the flat 18 ms tracing cost.
	for i := 0; i < cfg.DebugEvents; i++ {
		p.DebugEvent(fmt.Sprintf("launcher-init-%d", i))
	}

	nodes, err := j.m.allocate(p.Host(), j.spec.Nodes, nil)
	if err != nil {
		p.SetSymbol(rm.SymDebugState, cluster.Symbol{Value: "alloc-failed: " + err.Error(), Size: 64})
		return
	}
	j.mu.Lock()
	j.nodes = nodes
	j.mu.Unlock()

	tab, err := j.treeLaunch(p, nodes)
	if err != nil {
		p.SetSymbol(rm.SymDebugState, cluster.Symbol{Value: "launch-failed: " + err.Error(), Size: 64})
		return
	}

	// Root-side per-task bookkeeping: stdio wiring, task records — the
	// linear-in-tasks term of T(job).
	p.Compute(time.Duration(len(tab)) * cfg.PerTaskRootCost)

	j.mu.Lock()
	j.ptab = tab
	j.mu.Unlock()

	// The tree merge delivers tasks grouped by the spawn tree's traversal
	// order; the APAI contract (and chunked publication) wants rank order.
	tab.SortByRank()
	rm.PublishProctab(p, tab)
	p.SetSymbol(rm.SymDebugState, cluster.Symbol{Value: "spawned", Size: 4})

	// The APAI rendezvous: a traced launcher stops here and the debugger
	// (the LaunchMON engine) harvests the proctable.
	p.DebugEvent(rm.BPName)

	// Service control commands until killed or torn down.
	for {
		cmd, ok := j.cmds.Recv()
		if !ok {
			return
		}
		if p.State() == cluster.StateExited {
			// The launcher was force-killed while parked here; do not act
			// as a zombie — hand the command to the orphan path.
			j.serveOrphanCmd(cmd)
			return
		}
		switch cmd.kind {
		case cmdSpawnDaemons:
			err := j.treeSpawn(p, nodes, cmd.spec)
			// Root-side per-node ack processing for the daemon spawn.
			p.Compute(time.Duration(len(nodes)) * cfg.PerNodeSpawnRootCost)
			cmd.reply.Send(cmdResult{err: err})
		case cmdAllocSpawn:
			mwNodes, err := j.m.allocate(p.Host(), cmd.n, nodes)
			if err != nil {
				cmd.reply.Send(cmdResult{err: err})
				continue
			}
			// Record the allocation before spawning so a later kill reaps
			// the middleware daemons together with the job even when the
			// spawn only partially succeeded (kills are best-effort per
			// node; nodes that never got a daemon are harmless to sweep).
			j.mu.Lock()
			j.mwNodes = append(j.mwNodes, mwNodes...)
			j.mu.Unlock()
			err = j.treeSpawn(p, mwNodes, cmd.spec)
			p.Compute(time.Duration(len(mwNodes)) * cfg.PerNodeSpawnRootCost)
			cmd.reply.Send(cmdResult{nodes: mwNodes, err: err})
		case cmdKill:
			err := j.treeKill(p, nodes)
			// The middleware allocation is disjoint from the job's nodes;
			// reap it through its own slurmd tree.
			j.mu.Lock()
			mw := append([]string(nil), j.mwNodes...)
			j.mu.Unlock()
			if err == nil && len(mw) > 0 {
				err = j.treeKill(p, mw)
			}
			if err != nil {
				// The tree root may have died with its node; fall back to
				// the flat best-effort reap so survivors are still cleaned.
				err = j.directKill()
			}
			j.mu.Lock()
			j.killed = true
			j.mu.Unlock()
			cmd.reply.Send(cmdResult{err: err})
			return
		}
	}
}

// treeRequest sends a raw request to the root slurmd of nodelist and
// returns the reply payload (past the error string, which it checks).
func (j *job) treeRequest(h *simnet.Host, nodelist []string, raw []byte) (*lmonp.Reader, error) {
	conn, err := h.Dial(simnet.Addr{Host: nodelist[0], Port: SlurmdPort})
	if err != nil {
		return nil, fmt.Errorf("slurm: root slurmd unreachable: %w", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, raw); err != nil {
		return nil, err
	}
	resp, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(resp)
	emsg, err := rd.String()
	if err != nil {
		return nil, err
	}
	if emsg != "" {
		return nil, errors.New(emsg)
	}
	return rd, nil
}

func (j *job) treeLaunch(p *cluster.Proc, nodes []string) (proctab.Table, error) {
	rd, err := j.treeRequest(p.Host(), nodes, encodeLaunch(j.id, j.spec.TasksPerNode, j.spec.Exe, nodes))
	if err != nil {
		return nil, err
	}
	enc, err := rd.Bytes()
	if err != nil {
		return nil, err
	}
	tab, err := proctab.Decode(enc)
	if err != nil {
		return nil, err
	}
	if err := tab.Validate(); err != nil {
		return nil, err
	}
	return tab, nil
}

func (j *job) treeSpawn(p *cluster.Proc, nodes []string, spec rm.DaemonSpec) error {
	rd, err := j.treeRequest(p.Host(), nodes, encodeSpawn(j.id, spec, nodes))
	if err != nil {
		return err
	}
	count, err := rd.Uint32()
	if err != nil {
		return err
	}
	if int(count) != len(nodes) {
		return fmt.Errorf("slurm: spawned %d daemons on %d nodes", count, len(nodes))
	}
	return nil
}

func (j *job) treeKill(p *cluster.Proc, nodes []string) error {
	_, err := j.treeRequest(p.Host(), nodes, encodeKill(j.id, nodes))
	return err
}

// Package alps implements a Cray ALPS/YOD-like resource manager: a
// structurally different launch architecture from the SLURM-like tree
// (internal/rm/slurm), used to demonstrate the paper's portability claim
// — the LaunchMON engine and APIs run unchanged across resource managers
// because they only consume the rm.Manager contract.
//
// Architecture: an apsched allocation service on the front end, a
// lightweight apinit daemon on every compute node, and an aprun-like
// launcher. Unlike the slurmd k-ary tree, aprun drives a *star*: it
// submits the launch to each node's apinit directly from the service
// node, pipelined (submissions overlap with remote forks), and gathers
// acknowledgements asynchronously. Placement is by NID (node id) rather
// than hostname lists, matching ALPS conventions.
package alps

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/hostlist"
	"launchmon/internal/lmonp"
	"launchmon/internal/rm"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// Service ports.
const (
	ApschedPort = 601 // allocation service on the front end
	ApinitPort  = 602 // per-node launch daemon
)

// Config tunes the RM's cost model. Zero fields default.
type Config struct {
	// DebugEvents raised by aprun before MPIR_Breakpoint (default 14;
	// scale-independent, like fixed SLURM).
	DebugEvents int
	// PerNodeSubmit is aprun's serial cost to submit one node's launch
	// (default 350us; the star's linear term).
	PerNodeSubmit time.Duration
	// PerTaskRootCost is aprun's per-task bookkeeping (default 550us).
	PerTaskRootCost time.Duration
	// ApinitPerMsg is apinit's request-handling cost (default 150us).
	ApinitPerMsg time.Duration
	// AllocBase is apsched's allocation cost (default 4ms).
	AllocBase time.Duration
}

func (c Config) withDefaults() Config {
	if c.DebugEvents == 0 {
		c.DebugEvents = 14
	}
	if c.PerNodeSubmit == 0 {
		c.PerNodeSubmit = 350 * time.Microsecond
	}
	if c.PerTaskRootCost == 0 {
		c.PerTaskRootCost = 550 * time.Microsecond
	}
	if c.ApinitPerMsg == 0 {
		c.ApinitPerMsg = 150 * time.Microsecond
	}
	if c.AllocBase == 0 {
		c.AllocBase = 4 * time.Millisecond
	}
	return c
}

// Manager is the ALPS-like rm.Manager.
type Manager struct {
	cl  *cluster.Cluster
	cfg Config

	mu     sync.Mutex
	nextID int
	jobs   map[int]*job
}

var _ rm.Manager = (*Manager)(nil)

// Install boots apsched on the front end and apinit on every compute node.
func Install(cl *cluster.Cluster, cfg Config) (*Manager, error) {
	m := &Manager{cl: cl, cfg: cfg.withDefaults(), jobs: make(map[int]*job)}
	if _, err := cl.FrontEnd().SpawnSystemProc(cluster.Spec{Exe: "apsched", Main: m.apschedMain}); err != nil {
		return nil, err
	}
	for i := 0; i < cl.NumNodes(); i++ {
		node := cl.Node(i)
		a := &apinit{m: m, node: node, jobProcs: make(map[int][]*cluster.Proc)}
		if _, err := node.SpawnSystemProc(cluster.Spec{Exe: "apinit", Main: a.main}); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Name implements rm.Manager.
func (m *Manager) Name() string { return "alps" }

// DebugEventCount implements rm.Manager.
func (m *Manager) DebugEventCount(rm.JobSpec) int { return m.cfg.DebugEvents }

// StartJobHeld implements rm.Manager.
func (m *Manager) StartJobHeld(spec rm.JobSpec) (rm.Job, error) { return m.start(spec, true) }

// StartJob implements rm.Manager.
func (m *Manager) StartJob(spec rm.JobSpec) (rm.Job, error) { return m.start(spec, false) }

func (m *Manager) start(spec rm.JobSpec, hold bool) (rm.Job, error) {
	if spec.Nodes <= 0 || spec.TasksPerNode <= 0 {
		return nil, errors.New("alps: job needs positive Nodes and TasksPerNode")
	}
	if spec.Nodes > m.cl.NumNodes() {
		return nil, fmt.Errorf("%w: want %d, have %d", rm.ErrInsufficient, spec.Nodes, m.cl.NumNodes())
	}
	m.mu.Lock()
	m.nextID++
	j := &job{m: m, id: m.nextID, spec: spec, cmds: vtime.NewChan[command](m.cl.Sim())}
	m.jobs[j.id] = j
	m.mu.Unlock()

	p, err := m.cl.FrontEnd().SpawnProc(cluster.Spec{
		Exe:  "aprun",
		Main: j.launcherMain,
		Hold: hold,
		Args: []string{fmt.Sprintf("-n%d", spec.Tasks()), fmt.Sprintf("-N%d", spec.TasksPerNode), spec.Exe},
	})
	if err != nil {
		return nil, err
	}
	j.proc = p
	return j, nil
}

// FindJob implements rm.Manager.
func (m *Manager) FindJob(id int) (rm.Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// --- apsched (allocation service) ---

func (m *Manager) apschedMain(p *cluster.Proc) {
	l, err := p.Host().Listen(ApschedPort)
	if err != nil {
		return
	}
	free := make(map[string]bool, m.cl.NumNodes())
	order := make([]string, 0, m.cl.NumNodes())
	for i := 0; i < m.cl.NumNodes(); i++ {
		name := m.cl.Node(i).Name()
		free[name] = true
		order = append(order, name)
	}
	var mu sync.Mutex
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		p.Sim().Go("apsched-conn", func() {
			defer conn.Close()
			req, err := lmonp.ReadFrame(conn)
			if err != nil {
				return
			}
			p.Compute(m.cfg.AllocBase)
			rd := lmonp.NewReader(req)
			n32, _ := rd.Uint32()
			exclude, err := rd.StringList()
			if err != nil {
				return
			}
			ex := make(map[string]bool, len(exclude))
			for _, e := range exclude {
				ex[e] = true
			}
			mu.Lock()
			var picked []string
			for _, name := range order {
				if len(picked) == int(n32) {
					break
				}
				if free[name] && !ex[name] {
					picked = append(picked, name)
				}
			}
			if len(picked) < int(n32) {
				mu.Unlock()
				lmonp.WriteFrame(conn, lmonp.AppendString(nil, "claim exceeds reservation"))
				return
			}
			for _, name := range picked {
				free[name] = false
			}
			mu.Unlock()
			out := lmonp.AppendString(nil, "")
			out = lmonp.AppendStringList(out, picked)
			lmonp.WriteFrame(conn, out)
		})
	}
}

func (m *Manager) allocate(from *simnet.Host, n int, exclude []string) ([]string, error) {
	conn, err := from.Dial(simnet.Addr{Host: m.cl.FrontEnd().Name(), Port: ApschedPort})
	if err != nil {
		return nil, fmt.Errorf("alps: apsched unreachable: %w", err)
	}
	defer conn.Close()
	req := lmonp.AppendUint32(nil, uint32(n))
	req = lmonp.AppendStringList(req, exclude)
	if err := lmonp.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	resp, err := lmonp.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(resp)
	emsg, err := rd.String()
	if err != nil {
		return nil, err
	}
	if emsg != "" {
		return nil, fmt.Errorf("%w: %s", rm.ErrInsufficient, emsg)
	}
	return rd.StringList()
}

// joinNIDs carries the placement node list in compressed hostlist form
// (ALPS NID lists are naturally dense ranges, "nid[0-9999]"), keeping
// the apinit spawn environment O(1) in job scale.
func joinNIDs(nodes []string) string { return hostlist.Compress(nodes) }

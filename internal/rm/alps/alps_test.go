package alps

import (
	"testing"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

func testRig(t *testing.T, nodes int) (*vtime.Sim, *cluster.Cluster, *Manager) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Install(cl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sim, cl, m
}

func launchToBreakpoint(t *testing.T, m *Manager, spec rm.JobSpec) (rm.Job, *cluster.Tracer) {
	t.Helper()
	j, err := m.StartJobHeld(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := j.LauncherProc().Attach()
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	for {
		ev, ok := tr.Events().Recv()
		if !ok || ev.Type == cluster.EventExit {
			t.Fatal("aprun exited before MPIR_Breakpoint")
		}
		if ev.Reason == rm.BPName {
			return j, tr
		}
		if err := tr.Continue(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStarLaunchProctabValid(t *testing.T) {
	sim, _, m := testRig(t, 6)
	sim.Go("test", func() {
		_, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 6, TasksPerNode: 4})
		tab, err := rm.ProctabFromLauncher(tr)
		if err != nil {
			t.Error(err)
			return
		}
		if len(tab) != 24 {
			t.Errorf("proctab has %d entries", len(tab))
		}
		if err := tab.Validate(); err != nil {
			t.Error(err)
		}
		if got := len(tab.Hosts()); got != 6 {
			t.Errorf("proctab spans %d hosts", got)
		}
		tr.Detach()
	})
	sim.Run()
}

func TestStarSpawnDaemonsCoLocatedWithEnv(t *testing.T) {
	sim, cl, m := testRig(t, 5)
	var hosts []string
	var envs []map[string]string
	cl.Register("toolbe", func(p *cluster.Proc) {
		hosts = append(hosts, p.Node().Name())
		envs = append(envs, p.Environ())
	})
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 5, TasksPerNode: 2})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		if err := j.SpawnDaemons(rm.DaemonSpec{Exe: "toolbe", Env: map[string]string{"X": "y"}}); err != nil {
			t.Error(err)
		}
		tr.Detach()
	})
	sim.Run()
	if len(hosts) != 5 {
		t.Fatalf("daemons on %d nodes", len(hosts))
	}
	seen := map[string]bool{}
	for i, h := range hosts {
		seen[h] = true
		if envs[i][rm.EnvNNodes] != "5" || envs[i][rm.EnvNodeList] == "" || envs[i]["X"] != "y" {
			t.Errorf("daemon %d env incomplete: %v", i, envs[i])
		}
	}
	if len(seen) != 5 {
		t.Fatal("daemons not 1/node")
	}
}

func TestKillClearsNodes(t *testing.T) {
	sim, cl, m := testRig(t, 4)
	cl.Register("toolbe", func(p *cluster.Proc) { vtime.NewChan[int](p.Sim()).Recv() })
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 2})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		if err := j.SpawnDaemons(rm.DaemonSpec{Exe: "toolbe"}); err != nil {
			t.Error(err)
			return
		}
		tr.Detach()
		if err := j.Kill(); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 4; i++ {
			if got := cl.Node(i).NumProcs(); got != 1 {
				t.Errorf("node%d has %d procs after kill, want 1 (apinit)", i, got)
			}
		}
	})
	sim.Run()
}

func TestMWAllocationDisjoint(t *testing.T) {
	sim, cl, m := testRig(t, 8)
	cl.Register("mwd", func(p *cluster.Proc) { p.Compute(time.Millisecond) })
	sim.Go("test", func() {
		j, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 4, TasksPerNode: 1})
		if err := tr.Continue(); err != nil {
			t.Error(err)
			return
		}
		nodes, err := j.AllocateAndSpawn(2, rm.DaemonSpec{Exe: "mwd"})
		if err != nil {
			t.Error(err)
			return
		}
		jobSet := map[string]bool{}
		for _, n := range j.Nodes() {
			jobSet[n] = true
		}
		for _, n := range nodes {
			if jobSet[n] {
				t.Errorf("MW node %s overlaps job", n)
			}
		}
		tr.Detach()
	})
	sim.Run()
}

func TestPipelinedLaunchFasterThanSerialSubmit(t *testing.T) {
	// The star pipelines remote forks: total launch must be far below
	// nodes × (submit + fork + rtt) serial time.
	sim, _, m := testRig(t, 32)
	var dur time.Duration
	sim.Go("test", func() {
		start := sim.Now()
		_, tr := launchToBreakpoint(t, m, rm.JobSpec{Exe: "app", Nodes: 32, TasksPerNode: 8})
		dur = sim.Now() - start
		tr.Detach()
	})
	sim.Run()
	if dur == 0 {
		t.Fatal("launch did not complete")
	}
	serialFloor := 32 * (8*900*time.Microsecond + time.Millisecond) // forks if fully serial
	if dur >= serialFloor {
		t.Fatalf("star launch %v not pipelined (serial floor %v)", dur, serialFloor)
	}
}

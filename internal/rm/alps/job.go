package alps

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/proctab"
	"launchmon/internal/rm"
	"launchmon/internal/vtime"
)

// command is a control request to the running aprun launcher.
type command struct {
	kind  cmdKind
	spec  rm.DaemonSpec
	n     int
	reply *vtime.Chan[cmdResult]
}

type cmdKind int

const (
	cmdSpawnDaemons cmdKind = iota
	cmdAllocSpawn
	cmdKill
)

type cmdResult struct {
	nodes []string
	err   error
}

// job implements rm.Job for the ALPS-like manager.
type job struct {
	m    *Manager
	id   int
	spec rm.JobSpec
	proc *cluster.Proc
	cmds *vtime.Chan[command]

	mu     sync.Mutex
	nodes  []string
	killed bool
}

var _ rm.Job = (*job)(nil)

// ID implements rm.Job.
func (j *job) ID() int { return j.id }

// LauncherProc implements rm.Job.
func (j *job) LauncherProc() *cluster.Proc { return j.proc }

// Start implements rm.Job.
func (j *job) Start() { j.proc.Start() }

// Nodes implements rm.Job.
func (j *job) Nodes() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.nodes...)
}

// SpawnDaemons implements rm.Job.
func (j *job) SpawnDaemons(spec rm.DaemonSpec) error {
	return j.send(command{kind: cmdSpawnDaemons, spec: spec}).err
}

// AllocateAndSpawn implements rm.Job.
func (j *job) AllocateAndSpawn(n int, spec rm.DaemonSpec) ([]string, error) {
	res := j.send(command{kind: cmdAllocSpawn, spec: spec, n: n})
	return res.nodes, res.err
}

// Kill implements rm.Job.
func (j *job) Kill() error {
	j.mu.Lock()
	if j.killed {
		j.mu.Unlock()
		return rm.ErrAlreadyKilled
	}
	j.mu.Unlock()
	return j.send(command{kind: cmdKill}).err
}

func (j *job) send(c command) cmdResult {
	c.reply = vtime.NewChan[cmdResult](j.m.cl.Sim())
	j.cmds.Send(c)
	res, ok := c.reply.Recv()
	if !ok {
		return cmdResult{err: errors.New("alps: launcher gone")}
	}
	return res
}

// launcherMain is the aprun-like process: allocate, star-launch the tasks,
// publish the MPIR symbols, stop at MPIR_Breakpoint, service commands.
func (j *job) launcherMain(p *cluster.Proc) {
	cfg := j.m.cfg
	for i := 0; i < cfg.DebugEvents; i++ {
		p.DebugEvent(fmt.Sprintf("aprun-init-%d", i))
	}

	nodes, err := j.m.allocate(p.Host(), j.spec.Nodes, nil)
	if err != nil {
		p.SetSymbol(rm.SymDebugState, cluster.Symbol{Value: "alloc-failed: " + err.Error(), Size: 64})
		return
	}
	j.mu.Lock()
	j.nodes = nodes
	j.mu.Unlock()

	tab, err := j.starLaunch(p, nodes)
	if err != nil {
		p.SetSymbol(rm.SymDebugState, cluster.Symbol{Value: "launch-failed: " + err.Error(), Size: 64})
		return
	}
	p.Compute(time.Duration(len(tab)) * cfg.PerTaskRootCost)

	rm.PublishProctab(p, tab)
	p.SetSymbol(rm.SymDebugState, cluster.Symbol{Value: "spawned", Size: 4})
	p.DebugEvent(rm.BPName)

	for {
		cmd, ok := j.cmds.Recv()
		if !ok {
			return
		}
		switch cmd.kind {
		case cmdSpawnDaemons:
			cmd.reply.Send(cmdResult{err: j.starSpawn(p, nodes, cmd.spec)})
		case cmdAllocSpawn:
			mwNodes, err := j.m.allocate(p.Host(), cmd.n, nodes)
			if err != nil {
				cmd.reply.Send(cmdResult{err: err})
				continue
			}
			cmd.reply.Send(cmdResult{nodes: mwNodes, err: j.starSpawn(p, mwNodes, cmd.spec)})
		case cmdKill:
			err := j.starKill(p, nodes)
			j.mu.Lock()
			j.killed = true
			j.mu.Unlock()
			cmd.reply.Send(cmdResult{err: err})
			return
		}
	}
}

// starLaunch submits the task launch to every node's apinit, pipelined:
// each submission costs PerNodeSubmit at aprun, the remote forks overlap.
func (j *job) starLaunch(p *cluster.Proc, nodes []string) (proctab.Table, error) {
	type nodeResult struct {
		idx int
		tab proctab.Table
		err error
	}
	results := vtime.NewChan[nodeResult](p.Sim())
	tpn := j.spec.TasksPerNode
	for i, node := range nodes {
		i, node := i, node
		p.Compute(j.m.cfg.PerNodeSubmit) // serial submit at aprun
		p.Sim().Go("aprun-submit", func() {
			req := lmonp.AppendUint32(nil, opLaunchTasks)
			req = lmonp.AppendUint32(req, uint32(j.id))
			req = lmonp.AppendUint32(req, uint32(i*tpn))
			req = lmonp.AppendUint32(req, uint32(tpn))
			req = lmonp.AppendString(req, j.spec.Exe)
			rd, err := starCall(p, node, req)
			if err != nil {
				results.Send(nodeResult{idx: i, err: err})
				return
			}
			n32, _ := rd.Uint32()
			var sub proctab.Table
			for k := 0; k < int(n32); k++ {
				rank32, _ := rd.Uint32()
				pid32, err := rd.Uint32()
				if err != nil {
					results.Send(nodeResult{idx: i, err: err})
					return
				}
				sub = append(sub, proctab.ProcDesc{Host: node, Exe: j.spec.Exe, Pid: int(pid32), Rank: int(rank32)})
			}
			results.Send(nodeResult{idx: i, tab: sub})
		})
	}
	tab := make(proctab.Table, 0, len(nodes)*tpn)
	for range nodes {
		res, ok := results.Recv()
		if !ok {
			return nil, errors.New("alps: launch interrupted")
		}
		if res.err != nil {
			return nil, res.err
		}
		tab = append(tab, res.tab...)
	}
	// Acks arrive in completion order; restore rank order for the table.
	sorted := make(proctab.Table, len(tab))
	for _, d := range tab {
		if d.Rank < 0 || d.Rank >= len(sorted) {
			return nil, fmt.Errorf("alps: rank %d out of range", d.Rank)
		}
		sorted[d.Rank] = d
	}
	if err := sorted.Validate(); err != nil {
		return nil, err
	}
	return sorted, nil
}

// starSpawn places one tool daemon per node, pipelined like starLaunch,
// merging the RM-provided environment (the same contract slurmd honours).
func (j *job) starSpawn(p *cluster.Proc, nodes []string, spec rm.DaemonSpec) error {
	type nodeResult struct{ err error }
	results := vtime.NewChan[nodeResult](p.Sim())
	nidList := joinNIDs(nodes)
	for i, node := range nodes {
		i, node := i, node
		p.Compute(j.m.cfg.PerNodeSubmit)
		p.Sim().Go("aprun-spawn", func() {
			env := make(map[string]string, len(spec.Env)+4)
			for k, v := range spec.Env {
				env[k] = v
			}
			env[rm.EnvNodeID] = fmt.Sprint(i)
			env[rm.EnvNNodes] = fmt.Sprint(len(nodes))
			env[rm.EnvNodeList] = nidList
			env[rm.EnvJobID] = fmt.Sprint(j.id)
			kv := make([][2]string, 0, len(env))
			for k, v := range env {
				kv = append(kv, [2]string{k, v})
			}
			req := lmonp.AppendUint32(nil, opSpawnDaemon)
			req = lmonp.AppendUint32(req, uint32(j.id))
			req = lmonp.AppendString(req, spec.Exe)
			req = lmonp.AppendStringList(req, spec.Args)
			req = lmonp.AppendStringMap(req, kv)
			_, err := starCall(p, node, req)
			results.Send(nodeResult{err: err})
		})
	}
	for range nodes {
		res, ok := results.Recv()
		if !ok {
			return errors.New("alps: spawn interrupted")
		}
		if res.err != nil {
			return res.err
		}
	}
	return nil
}

// starKill fans the kill to every node's apinit.
func (j *job) starKill(p *cluster.Proc, nodes []string) error {
	type nodeResult struct{ err error }
	results := vtime.NewChan[nodeResult](p.Sim())
	for _, node := range nodes {
		node := node
		p.Sim().Go("aprun-kill", func() {
			req := lmonp.AppendUint32(nil, opKillJob)
			req = lmonp.AppendUint32(req, uint32(j.id))
			_, err := starCall(p, node, req)
			results.Send(nodeResult{err: err})
		})
	}
	for range nodes {
		res, ok := results.Recv()
		if !ok {
			return errors.New("alps: kill interrupted")
		}
		if res.err != nil {
			return res.err
		}
	}
	return nil
}

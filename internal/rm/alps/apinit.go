package alps

import (
	"fmt"
	"sync"

	"launchmon/internal/cluster"
	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
)

// apinit opcodes (star protocol: aprun contacts every apinit directly).
const (
	opLaunchTasks = 1 // fork tasks for a job; reply with pids
	opSpawnDaemon = 2 // fork one tool daemon; reply with pid
	opKillJob     = 3 // kill all local processes of a job
)

// apinit is the per-node launch daemon; it only ever acts locally (no
// forwarding — the star topology keeps it trivial compared to slurmd).
type apinit struct {
	m    *Manager
	node *cluster.Node

	mu       sync.Mutex
	jobProcs map[int][]*cluster.Proc
}

func (a *apinit) main(p *cluster.Proc) {
	l, err := p.Host().Listen(ApinitPort)
	if err != nil {
		return
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		p.Sim().Go("apinit-conn", func() {
			defer conn.Close()
			a.handle(p, conn)
		})
	}
}

func (a *apinit) handle(p *cluster.Proc, conn *simnet.Conn) {
	req, err := lmonp.ReadFrame(conn)
	if err != nil {
		return
	}
	p.Compute(a.m.cfg.ApinitPerMsg)
	rd := lmonp.NewReader(req)
	op, _ := rd.Uint32()
	switch op {
	case opLaunchTasks:
		jobid32, _ := rd.Uint32()
		baseRank32, _ := rd.Uint32()
		count32, _ := rd.Uint32()
		exe, err := rd.String()
		if err != nil {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, "bad launch request"))
			return
		}
		out := lmonp.AppendString(nil, "")
		out = lmonp.AppendUint32(out, count32)
		for i := 0; i < int(count32); i++ {
			proc, err := a.node.SpawnProc(cluster.Spec{Exe: exe, Passive: true})
			if err != nil {
				lmonp.WriteFrame(conn, lmonp.AppendString(nil, err.Error()))
				return
			}
			a.track(int(jobid32), proc)
			out = lmonp.AppendUint32(out, uint32(int(baseRank32)+i))
			out = lmonp.AppendUint32(out, uint32(proc.Pid()))
		}
		lmonp.WriteFrame(conn, out)
	case opSpawnDaemon:
		jobid32, _ := rd.Uint32()
		exe, _ := rd.String()
		args, _ := rd.StringList()
		kv, err := rd.StringMap()
		if err != nil {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, "bad spawn request"))
			return
		}
		env := make(map[string]string, len(kv))
		for _, e := range kv {
			env[e[0]] = e[1]
		}
		proc, err := a.node.SpawnProc(cluster.Spec{Exe: exe, Args: args, Env: env})
		if err != nil {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, err.Error()))
			return
		}
		a.track(int(jobid32), proc)
		out := lmonp.AppendString(nil, "")
		out = lmonp.AppendUint32(out, uint32(proc.Pid()))
		lmonp.WriteFrame(conn, out)
	case opKillJob:
		jobid32, err := rd.Uint32()
		if err != nil {
			lmonp.WriteFrame(conn, lmonp.AppendString(nil, "bad kill request"))
			return
		}
		a.mu.Lock()
		procs := a.jobProcs[int(jobid32)]
		delete(a.jobProcs, int(jobid32))
		a.mu.Unlock()
		for _, proc := range procs {
			proc.Kill()
		}
		lmonp.WriteFrame(conn, lmonp.AppendString(nil, ""))
	default:
		lmonp.WriteFrame(conn, lmonp.AppendString(nil, fmt.Sprintf("apinit: bad op %d", op)))
	}
}

func (a *apinit) track(jobid int, p *cluster.Proc) {
	a.mu.Lock()
	a.jobProcs[jobid] = append(a.jobProcs[jobid], p)
	a.mu.Unlock()
}

// starCall performs one request/response against a node's apinit.
func starCall(p *cluster.Proc, node string, req []byte) (*lmonp.Reader, error) {
	conn, err := p.Host().Dial(simnet.Addr{Host: node, Port: ApinitPort})
	if err != nil {
		return nil, fmt.Errorf("alps: apinit on %s unreachable: %w", node, err)
	}
	defer conn.Close()
	if err := lmonp.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	resp, err := lmonp.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	rd := lmonp.NewReader(resp)
	emsg, err := rd.String()
	if err != nil {
		return nil, err
	}
	if emsg != "" {
		return nil, fmt.Errorf("alps: apinit on %s: %s", node, emsg)
	}
	return rd, nil
}

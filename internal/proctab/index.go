package proctab

import (
	"fmt"
	"sort"
)

// This file is the memory-model half of the RPDTAB: the immutable,
// columnar Index a session builds once and shares, and the per-daemon
// rank Slice that replaces private full-table retention. The old layout
// kept K full copies of a K-entry table alive (one per daemon), O(K²)
// session memory; the sliced layout keeps one index plus K slices of
// K/daemons entries each — O(K + index) total. The Index models the
// node-local shared segment a real deployment would map read-only into
// every daemon; in the simulation it is published by the front end and
// looked up by session id.

// Index is an immutable columnar host/exe/pid index over a rank-sorted
// RPDTAB. Entry i describes rank i. Host and exe strings are pooled, so
// the index costs ~12 bytes per rank plus the distinct-string pool —
// orders of magnitude below a materialized Table of ProcDesc structs.
type Index struct {
	pool []string
	host []uint32 // rank -> pool index
	exe  []uint32 // rank -> pool index
	pid  []uint32 // rank -> pid
}

// BuildIndex constructs the index from a validated, rank-sorted table
// (entry i must carry rank i — what Table.SortByRank establishes).
func BuildIndex(t Table) (*Index, error) {
	x := &Index{
		host: make([]uint32, len(t)),
		exe:  make([]uint32, len(t)),
		pid:  make([]uint32, len(t)),
	}
	index := make(map[string]uint32)
	intern := func(s string) uint32 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint32(len(x.pool))
		index[s] = i
		x.pool = append(x.pool, s)
		return i
	}
	for i, d := range t {
		if d.Rank != i {
			return nil, fmt.Errorf("proctab: index needs rank-sorted table, entry %d has rank %d", i, d.Rank)
		}
		x.host[i] = intern(d.Host)
		x.exe[i] = intern(d.Exe)
		x.pid[i] = uint32(d.Pid)
	}
	return x, nil
}

// Len returns the number of ranks.
func (x *Index) Len() int { return len(x.host) }

// Entry returns the descriptor of one rank.
func (x *Index) Entry(rank int) ProcDesc {
	return ProcDesc{
		Host: x.pool[x.host[rank]],
		Exe:  x.pool[x.exe[rank]],
		Pid:  int(x.pid[rank]),
		Rank: rank,
	}
}

// Table materializes the full table from the index. Callers own the
// result; the index itself stays immutable.
func (x *Index) Table() Table {
	t := make(Table, x.Len())
	for i := range t {
		t[i] = x.Entry(i)
	}
	return t
}

// MemBytes models the index's resident size: 12 bytes of columns per
// rank plus the pooled strings (16 bytes string-header overhead each).
func (x *Index) MemBytes() int {
	b := 12 * x.Len()
	for _, s := range x.pool {
		b += 16 + len(s)
	}
	return b
}

// SortByRank sorts the table in place so entry i carries rank i — the
// order chunked streams rely on for contiguous rank ranges per chunk.
func (t Table) SortByRank() {
	sort.Slice(t, func(i, j int) bool { return t[i].Rank < t[j].Rank })
}

// MemBytes models the resident size of a materialized table: the
// ProcDesc struct per entry (two string headers, two ints: 48 bytes)
// plus the distinct host/exe strings. This is the retention metric the
// launch benches report per role.
func (t Table) MemBytes() int {
	seen := make(map[string]bool)
	b := 48 * len(t)
	for _, d := range t {
		if !seen[d.Host] {
			seen[d.Host] = true
			b += len(d.Host)
		}
		if !seen[d.Exe] {
			seen[d.Exe] = true
			b += len(d.Exe)
		}
	}
	return b
}

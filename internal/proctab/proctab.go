// Package proctab defines the Remote Process Descriptor Table (RPDTAB) —
// the host name / executable name / process id / rank record for every
// task of a parallel job that the resource manager's Automatic Process
// Acquisition Interface exposes (MPIR_proctable in the MPIR convention) —
// together with its compact wire encoding used inside LMONP payloads.
package proctab

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"launchmon/internal/lmonp"
)

// ProcDesc describes one task of the parallel job.
type ProcDesc struct {
	Host string // node the task runs on
	Exe  string // executable name
	Pid  int    // node-local process id
	Rank int    // MPI rank
}

// Table is the RPDTAB: one entry per task, ordered by rank.
type Table []ProcDesc

// Encode renders the table in LaunchMON's compact wire form. Host and
// executable strings are pooled: real RPDTABs repeat the same executable
// for every task and the same host for every task on a node, and the
// compact form is what keeps the linear-in-tasks transfer affordable.
func (t Table) Encode() []byte {
	pool := make([]string, 0, 16)
	index := make(map[string]uint32)
	intern := func(s string) uint32 {
		if i, ok := index[s]; ok {
			return i
		}
		i := uint32(len(pool))
		index[s] = i
		pool = append(pool, s)
		return i
	}
	entries := make([]byte, 0, len(t)*16)
	for _, d := range t {
		entries = lmonp.AppendUint32(entries, intern(d.Host))
		entries = lmonp.AppendUint32(entries, intern(d.Exe))
		entries = lmonp.AppendUint32(entries, uint32(d.Pid))
		entries = lmonp.AppendUint32(entries, uint32(d.Rank))
	}
	out := lmonp.AppendStringList(nil, pool)
	out = lmonp.AppendUint32(out, uint32(len(t)))
	return append(out, entries...)
}

// readPool reads the string pool as substrings of one shared backing
// string. A decoded table otherwise holds one small string allocation per
// distinct host — hundreds of millions of GC-traceable objects when every
// daemon of a 10^4-node job decodes the full RPDTAB — where one backing
// object per table costs the collector nothing.
func readPool(r *lmonp.Reader) ([]string, error) {
	n, err := r.Uint32()
	if err != nil {
		return nil, err
	}
	// Each entry needs at least its 4-byte length prefix.
	if uint64(n)*4 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("pool of %d entries, %d bytes remain", n, r.Remaining())
	}
	raw := make([][]byte, 0, n)
	var b strings.Builder
	for i := uint32(0); i < n; i++ {
		s, err := r.Bytes()
		if err != nil {
			return nil, err
		}
		raw = append(raw, s)
		b.Write(s)
	}
	backing := b.String()
	pool := make([]string, 0, n)
	off := 0
	for _, s := range raw {
		pool = append(pool, backing[off:off+len(s)])
		off += len(s)
	}
	return pool, nil
}

// Decode parses a table encoded by Encode.
func Decode(b []byte) (Table, error) {
	r := lmonp.NewReader(b)
	pool, err := readPool(r)
	if err != nil {
		return nil, fmt.Errorf("proctab: pool: %w", err)
	}
	n, err := r.Uint32()
	if err != nil {
		return nil, fmt.Errorf("proctab: count: %w", err)
	}
	if uint64(n)*16 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("proctab: truncated: %d entries, %d bytes", n, r.Remaining())
	}
	t := make(Table, 0, n)
	for i := uint32(0); i < n; i++ {
		hi, _ := r.Uint32()
		ei, _ := r.Uint32()
		pid, _ := r.Uint32()
		rank, err := r.Uint32()
		if err != nil {
			return nil, fmt.Errorf("proctab: entry %d: %w", i, err)
		}
		if int(hi) >= len(pool) || int(ei) >= len(pool) {
			return nil, fmt.Errorf("proctab: entry %d: pool index out of range", i)
		}
		// Pid and Rank travel as uint32 but live as int: values past
		// MaxInt32 cannot round-trip through Encode (a negative int cast to
		// uint32 lands here too), so reject them instead of smuggling
		// corrupt identities into the table.
		if pid > math.MaxInt32 {
			return nil, fmt.Errorf("proctab: entry %d: pid %d overflows", i, pid)
		}
		if rank > math.MaxInt32 {
			return nil, fmt.Errorf("proctab: entry %d: rank %d overflows", i, rank)
		}
		t = append(t, ProcDesc{Host: pool[hi], Exe: pool[ei], Pid: int(pid), Rank: int(rank)})
	}
	return t, nil
}

// Hosts returns the distinct hosts in table order of first appearance.
func (t Table) Hosts() []string {
	seen := make(map[string]bool)
	var hosts []string
	for _, d := range t {
		if !seen[d.Host] {
			seen[d.Host] = true
			hosts = append(hosts, d.Host)
		}
	}
	return hosts
}

// OnHost returns the entries placed on the given host, ordered by rank.
func (t Table) OnHost(host string) Table {
	var out Table
	for _, d := range t {
		if d.Host == host {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// Validate checks structural invariants: ranks 0..len-1 each exactly once
// and no empty host or executable names.
func (t Table) Validate() error {
	seen := make([]bool, len(t))
	for i, d := range t {
		if d.Rank < 0 || d.Rank >= len(t) {
			return fmt.Errorf("proctab: entry %d: rank %d out of range [0,%d)", i, d.Rank, len(t))
		}
		if seen[d.Rank] {
			return fmt.Errorf("proctab: duplicate rank %d", d.Rank)
		}
		seen[d.Rank] = true
		if d.Host == "" {
			return fmt.Errorf("proctab: entry %d: empty host", i)
		}
		if d.Exe == "" {
			return fmt.Errorf("proctab: entry %d: empty exe", i)
		}
	}
	return nil
}

// ValidateSlice checks the invariants of a rank slice of a larger table
// (rank-sliced seed delivery): the entries keep their global ranks, so
// instead of Validate's dense-rank requirement it demands strictly
// increasing non-negative ranks — which a stream routed in global rank
// order preserves, and which still rules out duplicates — plus non-empty
// host and executable names.
func (t Table) ValidateSlice() error {
	prev := -1
	for i, d := range t {
		if d.Rank < 0 {
			return fmt.Errorf("proctab: entry %d: negative rank %d", i, d.Rank)
		}
		if d.Rank <= prev {
			return fmt.Errorf("proctab: entry %d: rank %d not increasing (prev %d)", i, d.Rank, prev)
		}
		prev = d.Rank
		if d.Host == "" {
			return fmt.Errorf("proctab: entry %d: empty host", i)
		}
		if d.Exe == "" {
			return fmt.Errorf("proctab: entry %d: empty exe", i)
		}
	}
	return nil
}

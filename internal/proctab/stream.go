package proctab

import (
	"fmt"

	"launchmon/internal/lmonp"
)

// This file implements the chunked RPDTAB transfer: instead of shipping
// the whole table as one monolithic LMONP payload (16 MB+ at million-task
// scale), the sender splits it into independently decodable chunks of
// bounded encoded size, closed by an end marker carrying the total entry
// count. Receivers reassemble and validate. Chunks on a connection are
// FIFO, so reassembly is a straight append; because each chunk is a
// complete mini-table (its own string pool), a receiver's peak
// per-message memory is bounded by the chunk size regardless of job
// scale, and early chunks overlap the tail of the transfer (and, on the
// engine→FE path, the daemon-spawn window) on the wire.

// DefaultChunkBytes bounds one encoded RPDTAB chunk when the caller does
// not configure a size. 64 KiB keeps paper-scale tables (≤8192 tasks) in
// a handful of chunks while capping million-task payloads.
const DefaultChunkBytes = 64 << 10

// EncodeChunks splits the table into encoded chunks of at most maxBytes
// each (maxBytes <= 0 selects DefaultChunkBytes). Every chunk is a
// complete Encode output for a contiguous slice of the table, so Decode
// applies to each chunk on its own. A chunk always carries at least one
// entry; a single entry whose pooled strings alone exceed maxBytes yields
// one oversized chunk rather than an error. An empty table encodes to one
// empty chunk.
func (t Table) EncodeChunks(maxBytes int) [][]byte {
	if maxBytes <= 0 {
		maxBytes = DefaultChunkBytes
	}
	// Fixed per-chunk framing: pool count (4) + entry count (4).
	const chunkOverhead, entryBytes = 8, 16
	var chunks [][]byte
	start := 0
	size := chunkOverhead
	pooled := make(map[string]bool)
	for i, d := range t {
		add := entryBytes
		if !pooled[d.Host] {
			add += 4 + len(d.Host)
		}
		if !pooled[d.Exe] && d.Exe != d.Host {
			add += 4 + len(d.Exe)
		}
		if i > start && size+add > maxBytes {
			chunks = append(chunks, t[start:i].Encode())
			start = i
			size = chunkOverhead
			clear(pooled)
			add = entryBytes + 4 + len(d.Host)
			if d.Exe != d.Host {
				add += 4 + len(d.Exe)
			}
		}
		pooled[d.Host] = true
		pooled[d.Exe] = true
		size += add
	}
	return append(chunks, t[start:].Encode())
}

// Assembler reassembles a chunk stream back into a Table.
type Assembler struct {
	tab    Table
	chunks int
}

// Add decodes one chunk and appends its entries.
func (a *Assembler) Add(chunk []byte) error {
	t, err := Decode(chunk)
	if err != nil {
		return fmt.Errorf("proctab: chunk %d: %w", a.chunks, err)
	}
	a.chunks++
	a.tab = append(a.tab, t...)
	return nil
}

// Chunks returns the number of chunks added so far.
func (a *Assembler) Chunks() int { return a.chunks }

// Finish checks the reassembled table against the end marker's total and
// the structural invariants (Table.Validate: every rank exactly once,
// no empty names) and returns it.
func (a *Assembler) Finish(total int) (Table, error) {
	if total < 0 || len(a.tab) != total {
		return nil, fmt.Errorf("proctab: reassembled %d entries, end marker says %d", len(a.tab), total)
	}
	if err := a.tab.Validate(); err != nil {
		return nil, fmt.Errorf("proctab: reassembled table: %w", err)
	}
	return a.tab, nil
}

// SendStream writes the table to c as TypeProctabChunk messages of at
// most maxBytes payload each, closed by a TypeProctabEnd marker carrying
// the total entry count.
func SendStream(c *lmonp.Conn, class lmonp.MsgClass, t Table, maxBytes int) error {
	for _, chunk := range t.EncodeChunks(maxBytes) {
		if err := c.Send(&lmonp.Msg{Class: class, Type: lmonp.TypeProctabChunk, Payload: chunk}); err != nil {
			return err
		}
	}
	return c.Send(&lmonp.Msg{
		Class:   class,
		Type:    lmonp.TypeProctabEnd,
		Payload: lmonp.AppendUint64(nil, uint64(len(t))),
	})
}

// RecvStream consumes a chunk stream from c until the end marker and
// returns the validated table. Messages of other types are passed to
// onOther when non-nil (so callers can interleave status handling); a nil
// onOther treats them as protocol errors. A non-nil error from onOther
// aborts the stream.
func RecvStream(c *lmonp.Conn, class lmonp.MsgClass, onOther func(*lmonp.Msg) error) (Table, error) {
	var asm Assembler
	for {
		msg, err := c.Recv()
		if err != nil {
			return nil, err
		}
		if msg.Class != class {
			return nil, fmt.Errorf("proctab: stream message on class %v, want %v", msg.Class, class)
		}
		switch msg.Type {
		case lmonp.TypeProctabChunk:
			if err := asm.Add(msg.Payload); err != nil {
				return nil, err
			}
		case lmonp.TypeProctabEnd:
			rd := lmonp.NewReader(msg.Payload)
			total, err := rd.Uint64()
			if err != nil {
				return nil, fmt.Errorf("proctab: end marker: %w", err)
			}
			if total > uint64(len(asm.tab)) {
				return nil, fmt.Errorf("proctab: end marker claims %d entries, received %d", total, len(asm.tab))
			}
			return asm.Finish(int(total))
		default:
			if onOther == nil {
				return nil, fmt.Errorf("proctab: unexpected %v message in RPDTAB stream", msg.Type)
			}
			if err := onOther(msg); err != nil {
				return nil, err
			}
		}
	}
}

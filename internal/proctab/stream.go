package proctab

import (
	"fmt"

	"launchmon/internal/lmonp"
)

// This file implements the chunked RPDTAB transfer: instead of shipping
// the whole table as one monolithic LMONP payload (16 MB+ at million-task
// scale), the sender splits it into independently decodable chunks of
// bounded encoded size, closed by an end marker carrying the total entry
// count and the rolling digest of the chunk stream. Receivers reassemble
// and validate. Chunks on a connection are FIFO, so reassembly is a
// straight append; because each chunk is a complete mini-table (its own
// string pool), a receiver's peak per-message memory is bounded by the
// chunk size regardless of job scale, and early chunks overlap the tail
// of the transfer (and, on the engine→FE path, the daemon-spawn window)
// on the wire.

// DefaultChunkBytes bounds one encoded RPDTAB chunk when the caller does
// not configure a size. 64 KiB keeps paper-scale tables (≤8192 tasks) in
// a handful of chunks while capping million-task payloads.
const DefaultChunkBytes = 64 << 10

// Fixed per-chunk framing: pool count (4) + entry count (4).
const chunkOverhead, entryBytes = 8, 16

// ChunkWriter streams entries into encoded chunks of at most maxBytes
// each, handing every finished chunk (and its FNV-1a sum) to emit. It
// produces exactly the chunk boundaries EncodeChunks produces for the
// same input, so a sender that never materializes the full table — the
// engine re-chunking the launcher's harvest, an interior seed router
// re-packing a rank slice — stays byte-compatible with one that does.
type ChunkWriter struct {
	maxBytes int
	emit     func(chunk []byte, sum uint64) error

	pend   Table
	size   int
	pooled map[string]bool
	count  int
	chunks int
	digest uint64
}

// NewChunkWriter returns a writer emitting chunks of at most maxBytes
// (maxBytes <= 0 selects DefaultChunkBytes).
func NewChunkWriter(maxBytes int, emit func(chunk []byte, sum uint64) error) *ChunkWriter {
	if maxBytes <= 0 {
		maxBytes = DefaultChunkBytes
	}
	return &ChunkWriter{
		maxBytes: maxBytes,
		emit:     emit,
		size:     chunkOverhead,
		pooled:   make(map[string]bool),
		digest:   lmonp.SumInit,
	}
}

// Add appends one entry, emitting the pending chunk first when the entry
// would push its encoded size past maxBytes. A chunk always carries at
// least one entry; a single entry whose pooled strings alone exceed
// maxBytes yields one oversized chunk rather than an error.
func (w *ChunkWriter) Add(d ProcDesc) error {
	add := entryBytes
	if !w.pooled[d.Host] {
		add += 4 + len(d.Host)
	}
	if !w.pooled[d.Exe] && d.Exe != d.Host {
		add += 4 + len(d.Exe)
	}
	if len(w.pend) > 0 && w.size+add > w.maxBytes {
		if err := w.flush(); err != nil {
			return err
		}
		add = entryBytes + 4 + len(d.Host)
		if d.Exe != d.Host {
			add += 4 + len(d.Exe)
		}
	}
	w.pooled[d.Host] = true
	w.pooled[d.Exe] = true
	w.size += add
	w.pend = append(w.pend, d)
	w.count++
	return nil
}

// AddTable appends every entry of t.
func (w *ChunkWriter) AddTable(t Table) error {
	for _, d := range t {
		if err := w.Add(d); err != nil {
			return err
		}
	}
	return nil
}

func (w *ChunkWriter) flush() error {
	chunk := w.pend.Encode()
	sum := lmonp.Sum64(chunk)
	w.digest = lmonp.FoldSum(w.digest, sum)
	w.chunks++
	w.pend = w.pend[:0]
	w.size = chunkOverhead
	clear(w.pooled)
	return w.emit(chunk, sum)
}

// Flush emits the pending tail chunk. An empty stream still emits one
// empty chunk, mirroring EncodeChunks on an empty table.
func (w *ChunkWriter) Flush() error {
	if len(w.pend) > 0 || w.chunks == 0 {
		return w.flush()
	}
	return nil
}

// Count returns the number of entries added so far.
func (w *ChunkWriter) Count() int { return w.count }

// Chunks returns the number of chunks emitted so far.
func (w *ChunkWriter) Chunks() int { return w.chunks }

// Digest returns the rolling digest of the emitted chunk sums, the value
// the stream's end marker carries.
func (w *ChunkWriter) Digest() uint64 { return w.digest }

// EncodeChunks splits the table into encoded chunks of at most maxBytes
// each (maxBytes <= 0 selects DefaultChunkBytes). Every chunk is a
// complete Encode output for a contiguous slice of the table, so Decode
// applies to each chunk on its own. An empty table encodes to one empty
// chunk.
func (t Table) EncodeChunks(maxBytes int) [][]byte {
	var chunks [][]byte
	w := NewChunkWriter(maxBytes, func(chunk []byte, _ uint64) error {
		chunks = append(chunks, chunk)
		return nil
	})
	w.AddTable(t)
	w.Flush()
	return chunks
}

// EncodeEndMarker renders a stream end-marker payload: total entry count
// plus the rolling digest of the chunk stream it closes.
func EncodeEndMarker(total uint64, digest uint64) []byte {
	payload := lmonp.AppendUint64(nil, total)
	return lmonp.AppendUint64(payload, digest)
}

// DecodeEndMarker parses an end-marker payload.
func DecodeEndMarker(payload []byte) (total uint64, digest uint64, err error) {
	rd := lmonp.NewReader(payload)
	if total, err = rd.Uint64(); err != nil {
		return 0, 0, fmt.Errorf("proctab: end marker: %w", err)
	}
	if digest, err = rd.Uint64(); err != nil {
		return 0, 0, fmt.Errorf("proctab: end marker digest: %w", err)
	}
	return total, digest, nil
}

// Assembler reassembles a chunk stream back into a Table, folding the
// rolling digest as chunks arrive so validation needs no second copy.
type Assembler struct {
	tab    Table
	chunks int
	digest uint64
}

// Add decodes one chunk and appends its entries.
func (a *Assembler) Add(chunk []byte) error {
	t, err := Decode(chunk)
	if err != nil {
		return fmt.Errorf("proctab: chunk %d: %w", a.chunks, err)
	}
	a.digest = lmonp.FoldSum(a.startDigest(), lmonp.Sum64(chunk))
	a.chunks++
	a.tab = append(a.tab, t...)
	return nil
}

func (a *Assembler) startDigest() uint64 {
	if a.chunks == 0 {
		return lmonp.SumInit
	}
	return a.digest
}

// Chunks returns the number of chunks added so far.
func (a *Assembler) Chunks() int { return a.chunks }

// Digest returns the rolling digest over the chunks added so far, for
// comparison against the sender's end marker.
func (a *Assembler) Digest() uint64 { return a.startDigest() }

// Finish checks the reassembled table against the end marker's total and
// the structural invariants (Table.Validate: every rank exactly once,
// no empty names) and returns it.
func (a *Assembler) Finish(total int) (Table, error) {
	if total < 0 || len(a.tab) != total {
		return nil, fmt.Errorf("proctab: reassembled %d entries, end marker says %d", len(a.tab), total)
	}
	if err := a.tab.Validate(); err != nil {
		return nil, fmt.Errorf("proctab: reassembled table: %w", err)
	}
	return a.tab, nil
}

// FinishSlice is Finish for a rank slice of a larger table (rank-sliced
// seed routing): the entries keep their global ranks, so instead of
// Validate's dense-rank check it requires strictly increasing ranks —
// the order the routed stream preserves — and non-empty names.
func (a *Assembler) FinishSlice(total int) (Table, error) {
	if total < 0 || len(a.tab) != total {
		return nil, fmt.Errorf("proctab: reassembled %d entries, end marker says %d", len(a.tab), total)
	}
	if err := a.tab.ValidateSlice(); err != nil {
		return nil, fmt.Errorf("proctab: reassembled slice: %w", err)
	}
	return a.tab, nil
}

// SendStream writes the table to c as TypeProctabChunk messages of at
// most maxBytes payload each, closed by a TypeProctabEnd marker carrying
// the total entry count and stream digest.
func SendStream(c *lmonp.Conn, class lmonp.MsgClass, t Table, maxBytes int) error {
	w := NewChunkWriter(maxBytes, func(chunk []byte, _ uint64) error {
		return c.Send(&lmonp.Msg{Class: class, Type: lmonp.TypeProctabChunk, Payload: chunk})
	})
	if err := w.AddTable(t); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return c.Send(&lmonp.Msg{
		Class:   class,
		Type:    lmonp.TypeProctabEnd,
		Payload: EncodeEndMarker(uint64(len(t)), w.Digest()),
	})
}

// RecvStream consumes a chunk stream from c until the end marker and
// returns the validated table. Messages of other types are passed to
// onOther when non-nil (so callers can interleave status handling); a nil
// onOther treats them as protocol errors. A non-nil error from onOther
// aborts the stream.
func RecvStream(c *lmonp.Conn, class lmonp.MsgClass, onOther func(*lmonp.Msg) error) (Table, error) {
	var asm Assembler
	for {
		msg, err := c.Recv()
		if err != nil {
			return nil, err
		}
		if msg.Class != class {
			return nil, fmt.Errorf("proctab: stream message on class %v, want %v", msg.Class, class)
		}
		switch msg.Type {
		case lmonp.TypeProctabChunk:
			if err := asm.Add(msg.Payload); err != nil {
				return nil, err
			}
		case lmonp.TypeProctabEnd:
			total, digest, err := DecodeEndMarker(msg.Payload)
			if err != nil {
				return nil, err
			}
			if total > uint64(len(asm.tab)) {
				return nil, fmt.Errorf("proctab: end marker claims %d entries, received %d", total, len(asm.tab))
			}
			if digest != asm.Digest() {
				return nil, fmt.Errorf("proctab: stream digest mismatch: sender %#x, received %#x", digest, asm.Digest())
			}
			return asm.Finish(int(total))
		default:
			if onOther == nil {
				return nil, fmt.Errorf("proctab: unexpected %v message in RPDTAB stream", msg.Type)
			}
			if err := onOther(msg); err != nil {
				return nil, err
			}
		}
	}
}

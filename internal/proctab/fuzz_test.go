package proctab

import (
	"reflect"
	"testing"
)

// FuzzProctabDecode hardens the RPDTAB decoder against truncated and
// hostile inputs: it must never panic, never fabricate more entries than
// the input could physically encode, and everything it accepts must
// re-encode/re-decode to the same table.
func FuzzProctabDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(synthTable(0).Encode())
	f.Add(synthTable(3).Encode())
	f.Add(synthTable(64).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                                    // absurd pool count
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})                        // absurd entry count
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 'h', 0, 0, 0, 1, 0, 0, 0, 9, 9, 9}) // truncated entry

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Decode(data)
		if err != nil {
			return
		}
		// Each entry consumes 16 bytes of input past the pool.
		if len(tab)*16 > len(data) {
			t.Fatalf("%d entries decoded from %d bytes", len(tab), len(data))
		}
		for i, d := range tab {
			if d.Pid < 0 || d.Rank < 0 {
				t.Fatalf("entry %d decoded negative identity: %+v", i, d)
			}
		}
		back, err := Decode(tab.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted table failed: %v", err)
		}
		if len(tab) == 0 {
			return
		}
		if !reflect.DeepEqual(back, tab) {
			t.Fatal("re-encode roundtrip mismatch")
		}
	})
}

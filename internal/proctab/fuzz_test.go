package proctab

import (
	"fmt"
	"reflect"
	"testing"

	"launchmon/internal/lmonp"
)

// FuzzProctabDecode hardens the RPDTAB decoder against truncated and
// hostile inputs: it must never panic, never fabricate more entries than
// the input could physically encode, and everything it accepts must
// re-encode/re-decode to the same table.
func FuzzProctabDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(synthTable(0).Encode())
	f.Add(synthTable(3).Encode())
	f.Add(synthTable(64).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                                    // absurd pool count
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f})                        // absurd entry count
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 'h', 0, 0, 0, 1, 0, 0, 0, 9, 9, 9}) // truncated entry

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Decode(data)
		if err != nil {
			return
		}
		// Each entry consumes 16 bytes of input past the pool.
		if len(tab)*16 > len(data) {
			t.Fatalf("%d entries decoded from %d bytes", len(tab), len(data))
		}
		for i, d := range tab {
			if d.Pid < 0 || d.Rank < 0 {
				t.Fatalf("entry %d decoded negative identity: %+v", i, d)
			}
		}
		back, err := Decode(tab.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted table failed: %v", err)
		}
		if len(tab) == 0 {
			return
		}
		if !reflect.DeepEqual(back, tab) {
			t.Fatal("re-encode roundtrip mismatch")
		}
	})
}

// FuzzSeedStreamValidate exercises the streaming seed-validation path end
// to end: a rank slice goes through ChunkWriter (the sender side of every
// hop — engine, FE relay, interior seed router) and back through
// Assembler/FinishSlice (the receiver side), with the rolling digest
// standing in for the end marker. An uncorrupted stream must reassemble
// to the exact slice with matching digests; a stream with any single bit
// flipped in any chunk must never pass silently — decode failure, digest
// mismatch, or slice validation must catch it. The digest carries the
// whole burden when the flipped chunk still decodes (FNV-1a over the raw
// chunk bytes changes on any byte change), so this is the property that
// lets every rank validate its slice before the ready gather without a
// second table copy.
func FuzzSeedStreamValidate(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(0), uint32(0), false)
	f.Add(uint16(1), uint16(64), uint16(0), uint32(0), true)
	f.Add(uint16(200), uint16(128), uint16(3), uint32(9999), true)
	f.Add(uint16(300), uint16(97), uint16(1), uint32(17), true)

	f.Fuzz(func(t *testing.T, n, chunkBytes, stride uint16, flipAt uint32, flip bool) {
		// A rank slice of a larger table: strided global ranks, like the
		// slice a daemon hosting every stride-th rank would receive.
		entries := int(n) % 512
		step := int(stride)%7 + 1
		slice := make(Table, 0, entries)
		for i := 0; i < entries; i++ {
			slice = append(slice, ProcDesc{
				Host: fmt.Sprintf("n%d", i/4),
				Exe:  "app",
				Pid:  100 + i,
				Rank: i * step,
			})
		}

		var chunks [][]byte
		w := NewChunkWriter(int(chunkBytes), func(chunk []byte, sum uint64) error {
			if sum != lmonp.Sum64(chunk) {
				t.Fatalf("writer emitted sum %#x != Sum64(chunk)", sum)
			}
			chunks = append(chunks, chunk)
			return nil
		})
		if err := w.AddTable(slice); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		// Optionally flip one bit somewhere in the stream.
		corrupted := false
		if flip {
			var total int
			for _, c := range chunks {
				total += len(c)
			}
			if total > 0 {
				off := int(flipAt % uint32(total))
				for ci := range chunks {
					if off < len(chunks[ci]) {
						mut := append([]byte(nil), chunks[ci]...)
						mut[off] ^= 1 << (flipAt % 8)
						chunks[ci] = mut
						corrupted = true
						break
					}
					off -= len(chunks[ci])
				}
			}
		}

		var asm Assembler
		var addErr error
		for _, c := range chunks {
			if addErr = asm.Add(c); addErr != nil {
				break
			}
		}
		digestOK := addErr == nil && asm.Digest() == w.Digest()
		var tab Table
		var finErr error
		if addErr == nil {
			tab, finErr = asm.FinishSlice(entries)
		}

		if !corrupted {
			if addErr != nil {
				t.Fatalf("clean stream rejected by Add: %v", addErr)
			}
			if !digestOK {
				t.Fatalf("clean stream digest mismatch: writer %#x, assembler %#x", w.Digest(), asm.Digest())
			}
			if finErr != nil {
				t.Fatalf("clean stream rejected by FinishSlice: %v", finErr)
			}
			if entries > 0 && !reflect.DeepEqual(tab, slice) {
				t.Fatal("clean stream reassembled to a different slice")
			}
			return
		}
		// Corruption must be caught by at least one of the three layers.
		if addErr == nil && digestOK && finErr == nil {
			t.Fatal("single-bit corruption passed decode, digest and slice validation silently")
		}
	})
}

package proctab

import (
	"bytes"
	"reflect"
	"testing"

	"launchmon/internal/lmonp"
)

func TestIndexRoundTrip(t *testing.T) {
	tab := synthTable(100)
	x, err := BuildIndex(tab)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != 100 {
		t.Fatalf("Len = %d", x.Len())
	}
	if !reflect.DeepEqual(x.Table(), tab) {
		t.Fatal("Index.Table() does not round-trip")
	}
	if got, want := x.Entry(42), tab[42]; got != want {
		t.Fatalf("Entry(42) = %+v, want %+v", got, want)
	}
	if x.MemBytes() <= 0 || x.MemBytes() >= tab.MemBytes() {
		t.Fatalf("index MemBytes %d should be positive and below table MemBytes %d", x.MemBytes(), tab.MemBytes())
	}
}

func TestBuildIndexRejectsUnsorted(t *testing.T) {
	tab := synthTable(8)
	tab[0], tab[7] = tab[7], tab[0]
	if _, err := BuildIndex(tab); err == nil {
		t.Fatal("unsorted table accepted")
	}
	tab.SortByRank()
	if _, err := BuildIndex(tab); err != nil {
		t.Fatal(err)
	}
}

func TestChunkWriterMatchesEncodeChunks(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 500} {
		for _, maxBytes := range []int{0, 64, 256, 1 << 20} {
			tab := synthTable(n)
			want := tab.EncodeChunks(maxBytes)
			var got [][]byte
			w := NewChunkWriter(maxBytes, func(chunk []byte, sum uint64) error {
				if sum != lmonp.Sum64(chunk) {
					t.Fatalf("emitted sum %#x != Sum64(chunk)", sum)
				}
				got = append(got, chunk)
				return nil
			})
			if err := w.AddTable(tab); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d max=%d: writer emitted %d chunks, EncodeChunks %d", n, maxBytes, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("n=%d max=%d: chunk %d differs", n, maxBytes, i)
				}
			}
			if w.Count() != n {
				t.Fatalf("Count = %d, want %d", w.Count(), n)
			}
			// Writer digest must match an assembler fed the same chunks.
			var asm Assembler
			for _, c := range got {
				if err := asm.Add(c); err != nil {
					t.Fatal(err)
				}
			}
			if asm.Digest() != w.Digest() {
				t.Fatalf("digest mismatch: writer %#x, assembler %#x", w.Digest(), asm.Digest())
			}
		}
	}
}

func TestAssemblerFinishEdgeCases(t *testing.T) {
	// Zero-chunk finish: nothing added, total 0 is the only valid close.
	var empty Assembler
	if _, err := empty.Finish(0); err != nil {
		t.Fatalf("zero-chunk finish with total 0: %v", err)
	}
	var empty2 Assembler
	if _, err := empty2.Finish(3); err == nil {
		t.Error("zero-chunk finish with nonzero total accepted")
	}
	var empty3 Assembler
	if _, err := empty3.Finish(-1); err == nil {
		t.Error("negative total accepted")
	}

	// Total mismatch in both directions.
	tab := synthTable(16)
	for _, total := range []int{15, 17} {
		var asm Assembler
		for _, c := range tab.EncodeChunks(64) {
			if err := asm.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := asm.Finish(total); err == nil {
			t.Errorf("total %d accepted for 16-entry stream", total)
		}
	}

	// Duplicate final chunk: a replayed tail duplicates ranks, which must
	// fail validation even when the claimed total matches the entry count.
	chunks := tab.EncodeChunks(64)
	final := chunks[len(chunks)-1]
	finalEntries, err := Decode(final)
	if err != nil {
		t.Fatal(err)
	}
	var dup Assembler
	for _, c := range append(chunks, final) {
		if err := dup.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dup.Finish(16 + len(finalEntries)); err == nil {
		t.Error("duplicate final chunk accepted")
	}
}

func TestFinishSliceEdgeCases(t *testing.T) {
	// Zero-chunk finish mirrors Finish: total 0 is the only valid close.
	var empty Assembler
	if _, err := empty.FinishSlice(0); err != nil {
		t.Fatalf("zero-chunk finish with total 0: %v", err)
	}
	var empty2 Assembler
	if _, err := empty2.FinishSlice(2); err == nil {
		t.Error("zero-chunk finish with nonzero total accepted")
	}
	var empty3 Assembler
	if _, err := empty3.FinishSlice(-1); err == nil {
		t.Error("negative total accepted")
	}

	// A slice keeps its global ranks: sparse, increasing ranks that Finish
	// (dense 0..n-1) would reject must pass FinishSlice.
	sparse := Table{
		{Host: "n0", Exe: "app", Pid: 1, Rank: 5},
		{Host: "n1", Exe: "app", Pid: 2, Rank: 900},
	}
	var asm Assembler
	for _, c := range sparse.EncodeChunks(64) {
		if err := asm.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := asm.FinishSlice(2); err != nil {
		t.Fatalf("sparse increasing slice rejected: %v", err)
	}

	// Total mismatch in both directions.
	for _, total := range []int{1, 3} {
		var a Assembler
		for _, c := range sparse.EncodeChunks(64) {
			if err := a.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.FinishSlice(total); err == nil {
			t.Errorf("total %d accepted for 2-entry slice", total)
		}
	}

	// A duplicated final chunk repeats ranks: strictly-increasing fails
	// even though the stream still decodes and the total matches.
	chunks := sparse.EncodeChunks(64)
	var dup Assembler
	for _, c := range append(chunks, chunks[len(chunks)-1]) {
		if err := dup.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dup.FinishSlice(2 + 2); err == nil {
		t.Error("duplicate final chunk accepted by FinishSlice")
	}
}

func TestValidateSlice(t *testing.T) {
	cases := []struct {
		name string
		tab  Table
		ok   bool
	}{
		{"empty", nil, true},
		{"sparse increasing", Table{
			{Host: "a", Exe: "x", Rank: 3}, {Host: "b", Exe: "x", Rank: 7},
		}, true},
		{"duplicate rank", Table{
			{Host: "a", Exe: "x", Rank: 3}, {Host: "b", Exe: "x", Rank: 3},
		}, false},
		{"decreasing rank", Table{
			{Host: "a", Exe: "x", Rank: 7}, {Host: "b", Exe: "x", Rank: 3},
		}, false},
		{"negative rank", Table{{Host: "a", Exe: "x", Rank: -1}}, false},
		{"empty host", Table{{Host: "", Exe: "x", Rank: 0}}, false},
		{"empty exe", Table{{Host: "a", Exe: "", Rank: 0}}, false},
	}
	for _, c := range cases {
		if err := c.tab.ValidateSlice(); (err == nil) != c.ok {
			t.Errorf("%s: ValidateSlice = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRecvStreamRejectsCorruptDigest(t *testing.T) {
	// An end marker whose digest does not match the received chunks must
	// fail the stream even when the total matches.
	tab := synthTable(32)
	var asm Assembler
	for _, c := range tab.EncodeChunks(128) {
		if err := asm.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	total, digest, err := DecodeEndMarker(EncodeEndMarker(32, asm.Digest()))
	if err != nil || total != 32 || digest != asm.Digest() {
		t.Fatalf("end marker round-trip broken: %d %#x %v", total, digest, err)
	}
}

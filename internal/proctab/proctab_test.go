package proctab

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTable(nodes, perNode int) Table {
	var t Table
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			t = append(t, ProcDesc{
				Host: fmt.Sprintf("node%d", n),
				Exe:  "app",
				Pid:  1000 + n*perNode + i,
				Rank: n*perNode + i,
			})
		}
	}
	return t
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tab := sampleTable(4, 8)
	out, err := Decode(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, out) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestEncodeEmpty(t *testing.T) {
	out, err := Decode(Table{}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d entries from empty table", len(out))
	}
}

func TestEncodingPoolsStrings(t *testing.T) {
	// 1024 tasks across 128 nodes: pooled encoding must stay well under
	// the naive per-entry string encoding.
	tab := sampleTable(128, 8)
	enc := tab.Encode()
	naive := 0
	for _, d := range tab {
		naive += 4 + len(d.Host) + 4 + len(d.Exe) + 8
	}
	if len(enc) >= naive {
		t.Fatalf("pooled encoding %dB not smaller than naive %dB", len(enc), naive)
	}
	// Size must still be linear in task count (16B/entry + pool).
	if len(enc) < 16*len(tab) {
		t.Fatalf("encoding %dB is below the 16B/entry floor", len(enc))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	tab := sampleTable(2, 2)
	enc := tab.Encode()
	for _, cut := range []int{1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Out-of-range pool index.
	bad := Table{{Host: "h", Exe: "e", Pid: 1, Rank: 0}}.Encode()
	bad[len(bad)-13] = 0xff // corrupt host index of the single entry
	if _, err := Decode(bad); err == nil {
		t.Fatal("corrupt pool index accepted")
	}
}

func TestHostsAndOnHost(t *testing.T) {
	tab := sampleTable(3, 4)
	hosts := tab.Hosts()
	if len(hosts) != 3 || hosts[0] != "node0" || hosts[2] != "node2" {
		t.Fatalf("Hosts = %v", hosts)
	}
	on1 := tab.OnHost("node1")
	if len(on1) != 4 {
		t.Fatalf("OnHost(node1) has %d entries", len(on1))
	}
	for i, d := range on1 {
		if d.Host != "node1" {
			t.Fatalf("entry %d host = %s", i, d.Host)
		}
		if i > 0 && on1[i].Rank < on1[i-1].Rank {
			t.Fatal("OnHost not rank ordered")
		}
	}
	if len(tab.OnHost("absent")) != 0 {
		t.Fatal("OnHost(absent) nonempty")
	}
}

func TestValidate(t *testing.T) {
	good := sampleTable(2, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	dup := sampleTable(2, 2)
	dup[3].Rank = 0
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	oob := sampleTable(1, 2)
	oob[0].Rank = 5
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	empty := Table{{Host: "", Exe: "x", Rank: 0}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty host accepted")
	}
}

// Property: encode/decode round-trips arbitrary structurally valid tables.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(hostSeeds []uint8) bool {
		var tab Table
		for i, h := range hostSeeds {
			tab = append(tab, ProcDesc{
				Host: fmt.Sprintf("n%d", h%16),
				Exe:  fmt.Sprintf("exe%d", h%3),
				Pid:  int(h) + i,
				Rank: i,
			})
		}
		out, err := Decode(tab.Encode())
		if err != nil {
			return false
		}
		if len(tab) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(tab, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded size is linear in entries with a bounded pool term.
func TestPropertySizeLinear(t *testing.T) {
	f := func(n uint8) bool {
		nodes := int(n%32) + 1
		tab := sampleTable(nodes, 8)
		enc := len(tab.Encode())
		// 16 bytes per entry + pool (hosts ~ "nodeX" + "app") + 8 framing.
		poolMax := nodes*12 + 16 + 8
		return enc >= 16*len(tab) && enc <= 16*len(tab)+poolMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

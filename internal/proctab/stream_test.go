package proctab

import (
	"fmt"
	"reflect"
	"testing"

	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

func synthTable(n int) Table {
	t := make(Table, 0, n)
	for i := 0; i < n; i++ {
		t = append(t, ProcDesc{
			Host: fmt.Sprintf("node%d", i/8),
			Exe:  "app",
			Pid:  1000 + i,
			Rank: i,
		})
	}
	return t
}

func TestEncodeChunksReassembles(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 500} {
		for _, maxBytes := range []int{0, 64, 256, 1 << 20} {
			tab := synthTable(n)
			chunks := tab.EncodeChunks(maxBytes)
			if len(chunks) == 0 {
				t.Fatalf("n=%d max=%d: no chunks", n, maxBytes)
			}
			var asm Assembler
			for _, c := range chunks {
				if err := asm.Add(c); err != nil {
					t.Fatalf("n=%d max=%d: %v", n, maxBytes, err)
				}
			}
			got, err := asm.Finish(n)
			if err != nil {
				t.Fatalf("n=%d max=%d: finish: %v", n, maxBytes, err)
			}
			if n == 0 {
				if len(got) != 0 {
					t.Fatalf("n=0: got %d entries", len(got))
				}
				continue
			}
			if !reflect.DeepEqual(got, tab) {
				t.Fatalf("n=%d max=%d: reassembly mismatch", n, maxBytes)
			}
		}
	}
}

func TestEncodeChunksBoundedAtMillionTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task table in -short mode")
	}
	const tasks = 1 << 20 // 1M tasks, 8 per node
	const maxBytes = DefaultChunkBytes
	tab := synthTable(tasks)
	whole := len(tab.Encode())
	chunks := tab.EncodeChunks(maxBytes)
	if len(chunks) < whole/maxBytes {
		t.Fatalf("%d chunks cannot cover %d encoded bytes at %d bytes/chunk", len(chunks), whole, maxBytes)
	}
	total := 0
	for i, c := range chunks {
		if len(c) > maxBytes {
			t.Fatalf("chunk %d is %d bytes, exceeds configured %d", i, len(c), maxBytes)
		}
		total += len(c)
	}
	// Chunking costs only duplicated pool strings, not entry blowup.
	if total > whole+whole/4 {
		t.Fatalf("chunked total %d far above monolithic %d", total, whole)
	}
	var asm Assembler
	for _, c := range chunks {
		if err := asm.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := asm.Finish(tasks); err != nil {
		t.Fatal(err)
	}
}

func TestAssemblerFinishRejectsMismatch(t *testing.T) {
	tab := synthTable(16)
	var asm Assembler
	for _, c := range tab.EncodeChunks(64) {
		if err := asm.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := asm.Finish(15); err == nil {
		t.Error("short total accepted")
	}
	var dup Assembler
	chunk := synthTable(4).Encode()
	if err := dup.Add(chunk); err != nil {
		t.Fatal(err)
	}
	if err := dup.Add(chunk); err != nil {
		t.Fatal(err)
	}
	// Duplicate ranks must be caught by Validate at Finish.
	if _, err := dup.Finish(8); err == nil {
		t.Error("duplicate-rank reassembly accepted")
	}
}

func TestSendRecvStream(t *testing.T) {
	sim := vtime.New()
	net := simnet.New(sim, simnet.Options{})
	l, err := net.Host("a").Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	tab := synthTable(100)
	var got Table
	var recvErr error
	sim.Go("recv", func() {
		raw, err := l.Accept()
		if err != nil {
			recvErr = err
			return
		}
		got, recvErr = RecvStream(lmonp.NewConn(raw), lmonp.ClassFEBE, nil)
	})
	sim.Go("send", func() {
		raw, err := net.Host("b").Dial(simnet.Addr{Host: "a", Port: l.Addr().Port})
		if err != nil {
			t.Error(err)
			return
		}
		if err := SendStream(lmonp.NewConn(raw), lmonp.ClassFEBE, tab, 256); err != nil {
			t.Error(err)
		}
	})
	sim.Run()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if !reflect.DeepEqual(got, tab) {
		t.Fatal("stream roundtrip mismatch")
	}
}

package iccl

import (
	"bytes"
	"fmt"
	"testing"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
)

// Collective-plane tests. The root's FE bridge is replaced by in-memory
// hooks: down() replays pre-built FE frames, up() records the FE-bound
// stream for assembly — exactly the framing internal/core speaks over
// the LMONP connection.

// feDriver is an in-memory front end for one collective op at the root.
type feDriver struct {
	send []coll.Frame // frames the "FE" ships down
	sent int
	recv []coll.Frame // frames the root ships up
}

func (d *feDriver) down(uint32) (coll.Frame, error) {
	if d.sent >= len(d.send) {
		return coll.Frame{}, fmt.Errorf("fe driver: out of frames")
	}
	f := d.send[d.sent]
	d.sent++
	return f, nil
}

func (d *feDriver) up(f coll.Frame) error {
	d.recv = append(d.recv, f)
	return nil
}

// gatherAtFE assembles the recorded up-stream like Session.Gather does.
func (d *feDriver) gatherAtFE(size int) ([][]byte, error) {
	var asm coll.RankAssembler
	for _, f := range d.recv {
		if f.End {
			return asm.Finish(f.H, f.Total, size)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("no end frame")
}

// reduceAtFE assembles the recorded up-stream like Session.Reduce does.
func (d *feDriver) reduceAtFE() ([]byte, error) {
	var asm coll.RawAssembler
	for _, f := range d.recv {
		if f.End {
			return asm.Finish(f.H, f.Total)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("no end frame")
}

// planeRig runs fn on every daemon of an n-wide fanout-f tree; the root's
// plane gets the driver's hooks.
func planeRig(t *testing.T, n, fanout, chunkBytes int, driver *feDriver, fn func(pl *Plane, c *Comm) error) {
	t.Helper()
	rig(t, n, fanout, func(c *Comm, p *cluster.Proc) error {
		var pl *Plane
		if c.IsMaster() {
			pl = c.NewPlane(chunkBytes, 0, driver.up, driver.down)
		} else {
			pl = c.NewPlane(chunkBytes, 0, nil, nil)
		}
		return fn(pl, c)
	})
}

// treeShapes are the shapes the satellite calls out: K=1, K=fanout+1,
// prime K, plus larger non-power-of-k counts.
var treeShapes = []struct{ n, fanout int }{
	{1, 2},  // K=1: the master is the whole tree
	{4, 3},  // K = k+1: one interior level, one partial
	{5, 4},  // K = k+1
	{13, 3}, // prime K
	{17, 4}, // prime K
	{23, 4}, // prime K, deeper
	{9, 2},  // non-power-of-k
}

func TestPlaneGatherShapes(t *testing.T) {
	for _, tc := range treeShapes {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			d := &feDriver{}
			planeRig(t, tc.n, tc.fanout, 64, d, func(pl *Plane, c *Comm) error {
				mine := bytes.Repeat([]byte{byte(c.Rank())}, 10+c.Rank()*7%50)
				return pl.Gather(mine)
			})
			out, err := d.gatherAtFE(tc.n)
			if err != nil {
				t.Fatal(err)
			}
			for rk, blob := range out {
				want := bytes.Repeat([]byte{byte(rk)}, 10+rk*7%50)
				if !bytes.Equal(blob, want) {
					t.Fatalf("rank %d: %d bytes, want %d", rk, len(blob), len(want))
				}
			}
		})
	}
}

func TestPlaneScatterShapes(t *testing.T) {
	for _, tc := range treeShapes {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			entries := make([]coll.Entry, tc.n)
			for rk := range entries {
				entries[rk] = coll.Entry{Rank: rk, Blob: bytes.Repeat([]byte{byte(rk + 1)}, 5+rk*13%40)}
			}
			d := &feDriver{send: coll.EntryFrames(coll.OpScatter, 1, entries, 64)}
			got := make([][]byte, tc.n)
			planeRig(t, tc.n, tc.fanout, 64, d, func(pl *Plane, c *Comm) error {
				mine, err := pl.Scatter()
				if err != nil {
					return err
				}
				got[c.Rank()] = mine
				return nil
			})
			for rk, blob := range got {
				if !bytes.Equal(blob, entries[rk].Blob) {
					t.Fatalf("rank %d got %d bytes, want %d", rk, len(blob), len(entries[rk].Blob))
				}
			}
		})
	}
}

func TestPlaneBroadcastChunkedShapes(t *testing.T) {
	payload := bytes.Repeat([]byte("broadcast-data-"), 40) // 600 bytes, chunked at 64
	for _, tc := range treeShapes {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			d := &feDriver{send: coll.RawFrames(coll.OpBroadcast, 1, "", payload, 64)}
			got := make([][]byte, tc.n)
			planeRig(t, tc.n, tc.fanout, 64, d, func(pl *Plane, c *Comm) error {
				data, err := pl.Broadcast()
				if err != nil {
					return err
				}
				got[c.Rank()] = data
				return nil
			})
			for rk, g := range got {
				if !bytes.Equal(g, payload) {
					t.Fatalf("rank %d got %d bytes", rk, len(g))
				}
			}
		})
	}
}

func TestPlaneReduceConcatAndSum(t *testing.T) {
	for _, tc := range treeShapes {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			d := &feDriver{}
			planeRig(t, tc.n, tc.fanout, 64, d, func(pl *Plane, c *Comm) error {
				mine := make([]byte, 8)
				mine[7] = 1 // uint64(1) big-endian
				return pl.Reduce(mine, "sum")
			})
			out, err := d.reduceAtFE()
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 8 {
				t.Fatalf("%d bytes", len(out))
			}
			sum := uint64(out[4])<<24 | uint64(out[5])<<16 | uint64(out[6])<<8 | uint64(out[7])
			if sum != uint64(tc.n) {
				t.Fatalf("sum %d, want %d", sum, tc.n)
			}
		})
	}

	// Concat: every daemon's byte appears exactly once; interior nodes
	// combine, so the FE-bound stream carries n bytes regardless of shape.
	d := &feDriver{}
	n := 13
	planeRig(t, n, 3, 64, d, func(pl *Plane, c *Comm) error {
		return pl.Reduce([]byte{byte(c.Rank())}, "concat")
	})
	out, err := d.reduceAtFE()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("concat of %d daemons yields %d bytes", n, len(out))
	}
	seen := make([]bool, n)
	for _, b := range out {
		if int(b) >= n || seen[b] {
			t.Fatalf("byte %d duplicated or out of range", b)
		}
		seen[b] = true
	}
}

func TestPlaneReduceTopKBoundsRootPayload(t *testing.T) {
	const n, k = 17, 4
	d := &feDriver{}
	planeRig(t, n, 3, 0, d, func(pl *Plane, c *Comm) error {
		item := []byte(fmt.Sprintf("sample-from-rank-%d", c.Rank()))
		return pl.Reduce(coll.EncodeSample([][]byte{item}), fmt.Sprintf("topk:%d", k))
	})
	out, err := d.reduceAtFE()
	if err != nil {
		t.Fatal(err)
	}
	items, err := coll.DecodeSample(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != k {
		t.Fatalf("root sample has %d items, want %d", len(items), k)
	}
}

func TestPlaneSequenceMixedOps(t *testing.T) {
	// broadcast → gather → scatter → reduce in one session: the lockstep
	// tag must keep the streams apart.
	const n, fanout = 9, 2
	bcast := []byte("seed")
	entries := make([]coll.Entry, n)
	for rk := range entries {
		entries[rk] = coll.Entry{Rank: rk, Blob: []byte{byte(rk * 2)}}
	}
	d := &feDriver{}
	d.send = append(d.send, coll.RawFrames(coll.OpBroadcast, 1, "", bcast, 0)...)
	d.send = append(d.send, coll.EntryFrames(coll.OpScatter, 3, entries, 0)...)
	gotScatter := make([][]byte, n)
	planeRig(t, n, fanout, 0, d, func(pl *Plane, c *Comm) error {
		b, err := pl.Broadcast() // tag 1
		if err != nil {
			return err
		}
		if err := pl.Gather(append(b, byte(c.Rank()))); err != nil { // tag 2
			return err
		}
		mine, err := pl.Scatter() // tag 3
		if err != nil {
			return err
		}
		gotScatter[c.Rank()] = mine
		return pl.Reduce([]byte{1}, "concat") // tag 4
	})
	// Split the up-stream by tag: gather frames (tag 2) then reduce (tag 4).
	var dGather, dReduce feDriver
	for _, f := range d.recv {
		if f.H.Tag == 2 {
			dGather.recv = append(dGather.recv, f)
		} else {
			dReduce.recv = append(dReduce.recv, f)
		}
	}
	all, err := dGather.gatherAtFE(n)
	if err != nil {
		t.Fatal(err)
	}
	for rk, blob := range all {
		if string(blob) != "seed"+string(byte(rk)) {
			t.Fatalf("rank %d gathered %q", rk, blob)
		}
	}
	for rk, blob := range gotScatter {
		if len(blob) != 1 || blob[0] != byte(rk*2) {
			t.Fatalf("rank %d scatter part %v", rk, blob)
		}
	}
	red, err := dReduce.reduceAtFE()
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != n {
		t.Fatalf("reduce concat %d bytes", len(red))
	}
}

func TestPlaneGatherPerLinkFramesBounded(t *testing.T) {
	// Every FE-bound frame respects the chunk bound — never a monolithic
	// K-entry payload.
	const n, fanout, chunk = 23, 4, 128
	d := &feDriver{}
	planeRig(t, n, fanout, chunk, d, func(pl *Plane, c *Comm) error {
		return pl.Gather(bytes.Repeat([]byte{1}, 100))
	})
	if len(d.recv) < 2 || len(d.recv) > n+1 {
		t.Fatalf("%d frames at the root for %d daemons", len(d.recv), n)
	}
	for _, f := range d.recv {
		if len(f.Body) > chunk+120 {
			t.Fatalf("root-bound frame of %d bytes exceeds chunk bound", len(f.Body))
		}
	}
}

func TestPlaneGatherCoalescesSmallEntries(t *testing.T) {
	// Interior nodes re-pack small contributions: the message count on
	// the root link is bounded by payload-bytes/chunk, not the daemon
	// count — the tree's whole point at scale.
	const n, fanout, chunk = 64, 4, 4096
	d := &feDriver{}
	planeRig(t, n, fanout, chunk, d, func(pl *Plane, c *Comm) error {
		return pl.Gather(bytes.Repeat([]byte{byte(c.Rank())}, 16))
	})
	// 64 entries x 24 bytes ≈ 1.5 KiB: a handful of frames, far fewer
	// than one per daemon.
	if len(d.recv) > 8 {
		t.Fatalf("%d root-bound frames for %d daemons at %d B/entry — not coalescing", len(d.recv), n, 16)
	}
	if _, err := d.gatherAtFE(n); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneUnknownReduceFilter(t *testing.T) {
	rig(t, 1, 2, func(c *Comm, p *cluster.Proc) error {
		pl := c.NewPlane(0, 0, func(coll.Frame) error { return nil }, nil)
		if err := pl.Reduce([]byte{1}, "definitely-not-registered"); err == nil {
			return fmt.Errorf("unknown filter accepted")
		}
		return nil
	})
}

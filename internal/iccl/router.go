package iccl

import (
	"encoding/binary"
	"fmt"
	"sync"

	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// This file is the per-connection demultiplexer of collective plane v2:
// once a daemon starts using tagged (possibly concurrent) collective
// streams, a router goroutine owns each tree connection's receive side
// and sorts frames into per-tag queues, the base-opcode queue (barrier/
// fold/bcast of the bootstrap-era Comm collectives), and the credit
// gates of the flow-control window. The router starts lazily on the
// first plane operation — never at plane creation — so the session-seed
// stream (which flows through the same connections during bootstrap)
// and the million-daemon noop profile (whose daemons never run a plane
// op, and must not pay a goroutine per link) are untouched.

// connRouter demultiplexes one tree connection.
type connRouter struct {
	c *Comm

	mu     sync.Mutex
	base   *vtime.Chan[[]byte]                // non-plane tree frames
	tags   map[uint32]*vtime.Chan[coll.Frame] // per-tag collective streams
	qBytes map[uint32]uint64                  // queued body bytes per tag
	gates  map[uint32]*creditGate             // send-side credit per tag
	err    error
	closed bool
}

// startRouter idempotently switches every tree connection of the
// communicator to routed mode and spawns one router goroutine per link.
// Every public Plane operation calls it on entry. After it runs, base
// collective receives (Comm.Barrier, FoldUp, ...) are served from the
// router's base queue — they must not overlap the first plane operation
// on the same link direction, which holds for the session lifecycle
// (init-time gathers precede plane traffic; the finalize barrier
// follows it).
func (c *Comm) startRouter() {
	c.rtMu.Lock()
	defer c.rtMu.Unlock()
	if c.routers != nil {
		return
	}
	c.routers = make(map[*simnet.Conn]*connRouter, len(c.children)+1)
	conns := make([]*simnet.Conn, 0, len(c.children)+1)
	if c.parent != nil {
		conns = append(conns, c.parent)
	}
	conns = append(conns, c.children...)
	for _, conn := range conns {
		rt := &connRouter{
			c:    c,
			base: vtime.NewChan[[]byte](c.p.Sim()),
		}
		c.routers[conn] = rt
		conn := conn
		c.p.Sim().Go(fmt.Sprintf("iccl-router-%d", c.rank), func() { c.routeConn(conn, rt) })
	}
}

// routerFor returns the router owning conn, or nil when routing has not
// started (or conn is not a tree link of this communicator).
func (c *Comm) routerFor(conn *simnet.Conn) *connRouter {
	c.rtMu.Lock()
	defer c.rtMu.Unlock()
	return c.routers[conn]
}

// routeConn is the router goroutine: it reads raw tree frames off one
// connection and routes collective-plane frames by tag, credit frames
// to their gates, and everything else to the base queue. It never
// blocks on a consumer (all queues are unbounded), so one stalled
// tagged stream cannot head-of-line-block another tag or the credits
// that would un-stall it.
func (c *Comm) routeConn(conn *simnet.Conn, rt *connRouter) {
	for {
		raw, err := c.recvRawDirect(conn)
		if err != nil {
			rt.fail(err)
			return
		}
		if len(raw) >= 4 {
			switch binary.BigEndian.Uint32(raw) {
			case opCollChunk, opCollEnd:
				f, err := parseFrameOp(raw, opCollChunk, opCollEnd)
				if err != nil {
					rt.fail(err)
					return
				}
				rt.enqueue(f)
				continue
			case opCredit:
				f, err := parseCredit(raw)
				if err != nil {
					rt.fail(err)
					return
				}
				rt.credit(f.H.Tag, f.Credits())
				continue
			}
		}
		rt.base.Send(raw)
	}
}

// enqueue routes one collective frame to its tag queue, maintaining the
// interior-depth observability gauges: coll.queue.depth.max is the
// high-water data-chunk count of any one (link, tag) queue at this
// daemon, coll.link.bytes.max the high-water queued body bytes. End
// markers ride outside the credit window (they carry no payload and
// each stream has exactly one), so the depth gauge excludes them and
// the flow-control invariant is exact: depth ≤ window when the window
// is on; O(stream) when off.
func (rt *connRouter) enqueue(f coll.Frame) {
	rt.mu.Lock()
	q := rt.tagQLocked(f.H.Tag)
	if rt.qBytes == nil {
		rt.qBytes = make(map[uint32]uint64)
	}
	rt.qBytes[f.H.Tag] += uint64(len(f.Body))
	depth := uint64(q.Len() + 1)
	bytes := rt.qBytes[f.H.Tag]
	rt.mu.Unlock()
	if !f.End {
		rt.c.collDepthMax.SetMax(depth)
	}
	rt.c.collBytesMax.SetMax(bytes)
	q.Send(f)
}

// dequeued tells the router one frame left its tag queue (consumed by
// recvTagged), keeping the queued-bytes accounting honest.
func (rt *connRouter) dequeued(f coll.Frame) {
	rt.mu.Lock()
	if n := rt.qBytes[f.H.Tag]; n >= uint64(len(f.Body)) {
		rt.qBytes[f.H.Tag] = n - uint64(len(f.Body))
	}
	rt.mu.Unlock()
}

// tagQ returns (creating on demand) the queue of one tagged stream. On
// a severed router the returned queue is closed, so receivers observe
// the failure instead of parking forever.
func (rt *connRouter) tagQ(tag uint32) *vtime.Chan[coll.Frame] {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tagQLocked(tag)
}

func (rt *connRouter) tagQLocked(tag uint32) *vtime.Chan[coll.Frame] {
	if rt.tags == nil {
		rt.tags = make(map[uint32]*vtime.Chan[coll.Frame])
	}
	q := rt.tags[tag]
	if q == nil {
		q = vtime.NewChan[coll.Frame](rt.c.p.Sim())
		if rt.closed {
			q.Close()
		}
		rt.tags[tag] = q
	}
	return q
}

// dropTag retires a completed stream's queue so tag state does not
// accumulate across collectives.
func (rt *connRouter) dropTag(tag uint32) {
	rt.mu.Lock()
	delete(rt.tags, tag)
	delete(rt.qBytes, tag)
	rt.mu.Unlock()
}

// gate returns (creating on demand, preloaded with window tokens) the
// send-side credit gate of one tagged stream on this link.
func (rt *connRouter) gate(tag uint32, window int) *creditGate {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.gates == nil {
		rt.gates = make(map[uint32]*creditGate)
	}
	g := rt.gates[tag]
	if g == nil {
		g = newCreditGate(rt.c.p.Sim(), window)
		if rt.closed {
			g.sever()
		}
		rt.gates[tag] = g
	}
	return g
}

// dropGate retires a stream's credit gate once its End frame is on the
// wire; credits still in flight for it are dropped on arrival.
func (rt *connRouter) dropGate(tag uint32) {
	rt.mu.Lock()
	delete(rt.gates, tag)
	rt.mu.Unlock()
}

// credit applies n returned credits to the tag's gate, dropping credits
// for already-retired streams.
func (rt *connRouter) credit(tag uint32, n uint32) {
	rt.mu.Lock()
	g := rt.gates[tag]
	rt.mu.Unlock()
	if g != nil {
		g.credit(int(n))
	}
}

// fail severs the router: the link died (or delivered garbage), so
// every consumer — base receivers, tagged receivers, senders blocked on
// credit — must wake and observe the failure.
func (rt *connRouter) fail(err error) {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.err = err
	tags := rt.tags
	gates := rt.gates
	rt.mu.Unlock()
	rt.base.Close()
	for _, q := range tags {
		q.Close()
	}
	for _, g := range gates {
		g.sever()
	}
}

// takeErr reports why the router severed (ErrSevered-wrapped for a
// clean link death).
func (rt *connRouter) takeErr() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.err == nil || rt.err == ErrSevered {
		return ErrSevered
	}
	return fmt.Errorf("%w: %v", ErrSevered, rt.err)
}

// creditGate is the send side of the per-(link, tag) outstanding-chunk
// window: acquire takes one credit before a chunk goes on the wire
// (blocking in virtual time while the window is exhausted), credit
// returns credits as the receiver consumes chunks. A nil tokens channel
// means flow control is off (the unbounded ablation baseline).
type creditGate struct {
	tokens *vtime.Chan[struct{}]
}

func newCreditGate(sim *vtime.Sim, window int) *creditGate {
	g := &creditGate{}
	if window > 0 {
		g.tokens = vtime.NewChan[struct{}](sim)
		for i := 0; i < window; i++ {
			g.tokens.Send(struct{}{})
		}
	}
	return g
}

// acquire blocks until a credit is available; it fails when the link
// severed while the sender was waiting.
func (g *creditGate) acquire() error {
	if g.tokens == nil {
		return nil
	}
	if _, ok := g.tokens.Recv(); !ok {
		return ErrSevered
	}
	return nil
}

// credit returns n credits to the window.
func (g *creditGate) credit(n int) {
	if g.tokens == nil {
		return
	}
	for i := 0; i < n; i++ {
		g.tokens.Send(struct{}{})
	}
}

// sever wakes any sender blocked in acquire.
func (g *creditGate) sever() {
	if g.tokens != nil {
		g.tokens.Close()
	}
}

// parseCredit decodes one opCredit tree frame: the opcode and the
// encoded coll header whose Index field carries the credit count.
func parseCredit(raw []byte) (coll.Frame, error) {
	rd := lmonp.NewReader(raw)
	if _, err := rd.Uint32(); err != nil {
		return coll.Frame{}, err
	}
	hraw, err := rd.Bytes()
	if err != nil {
		return coll.Frame{}, err
	}
	h, err := coll.DecodeHeader(lmonp.NewReader(hraw))
	if err != nil {
		return coll.Frame{}, err
	}
	if h.Op != coll.OpCredit {
		return coll.Frame{}, fmt.Errorf("%w: op %v in a credit frame", ErrProtocol, h.Op)
	}
	return coll.Frame{H: h}, nil
}

// sendCredit returns n credits for a tagged stream to the peer on conn.
// Credit frames ride the generic tree-frame path (counted in the iccl
// tx metrics plus a dedicated credit counter) but deliberately not the
// coll.tx data counters, so wire-byte invariants on collective payload
// still hold with flow control on.
func (c *Comm) sendCredit(conn *simnet.Conn, tag uint32, n uint32) error {
	cf := coll.CreditFrame(tag, n)
	b := lmonp.AppendUint32(nil, opCredit)
	b = lmonp.AppendBytes(b, cf.H.Encode())
	c.creditTxFrames.Inc()
	return c.send(conn, b)
}

package iccl

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/vtime"
)

// rig spawns n daemons (one per node) that each call Bootstrap and then fn,
// and returns after the sim completes. Errors inside daemons fail the test.
func rig(t *testing.T, n, fanout int, fn func(c *Comm, p *cluster.Proc) error) time.Duration {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	nodelist := make([]string, n)
	for i := range nodelist {
		nodelist[i] = cl.Node(i).Name()
	}
	errs := make([]error, n)
	sim.Go("boot", func() {
		for i := 0; i < n; i++ {
			i := i
			if _, err := cl.Node(i).SpawnProc(cluster.Spec{Exe: "d", Main: func(p *cluster.Proc) {
				c, err := Bootstrap(p, Config{
					Rank: i, Size: n, Fanout: fanout, Nodelist: nodelist, Port: 50001,
				})
				if err != nil {
					errs[i] = err
					return
				}
				defer c.Close()
				errs[i] = fn(c, p)
			}}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	end := sim.Run()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
	}
	return end
}

func TestBootstrapShapes(t *testing.T) {
	for _, tc := range []struct{ n, fanout int }{
		{1, 2}, {2, 2}, {5, 2}, {8, 0 /* flat */}, {9, 3}, {16, 4},
	} {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			rig(t, tc.n, tc.fanout, func(c *Comm, p *cluster.Proc) error {
				if c.Size() != tc.n {
					return fmt.Errorf("size %d", c.Size())
				}
				return nil
			})
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	n := 7
	exitTimes := make([]time.Duration, n)
	enterTimes := make([]time.Duration, n)
	rig(t, n, 2, func(c *Comm, p *cluster.Proc) error {
		// Stagger arrivals: rank r waits r milliseconds.
		p.Compute(time.Duration(c.Rank()) * time.Millisecond)
		enterTimes[c.Rank()] = p.Sim().Now()
		if err := c.Barrier(); err != nil {
			return err
		}
		exitTimes[c.Rank()] = p.Sim().Now()
		return nil
	})
	var latestEnter time.Duration
	for _, e := range enterTimes {
		if e > latestEnter {
			latestEnter = e
		}
	}
	for r, x := range exitTimes {
		if x < latestEnter {
			t.Fatalf("rank %d left barrier at %v before last entry %v", r, x, latestEnter)
		}
	}
}

func TestBroadcastDeliversToAll(t *testing.T) {
	n := 9
	payload := []byte("rpdtab-seed-payload")
	got := make([][]byte, n)
	rig(t, n, 3, func(c *Comm, p *cluster.Proc) error {
		var in []byte
		if c.IsMaster() {
			in = payload
		}
		out, err := c.Broadcast(in)
		if err != nil {
			return err
		}
		got[c.Rank()] = out
		return nil
	})
	for r, g := range got {
		if !bytes.Equal(g, payload) {
			t.Fatalf("rank %d got %q", r, g)
		}
	}
}

func TestGatherRankOrdered(t *testing.T) {
	n := 10
	var result [][]byte
	rig(t, n, 3, func(c *Comm, p *cluster.Proc) error {
		mine := []byte(fmt.Sprintf("from-%d", c.Rank()))
		all, err := c.Gather(mine)
		if err != nil {
			return err
		}
		if c.IsMaster() {
			result = all
		} else if all != nil {
			return fmt.Errorf("non-master got gather result")
		}
		return nil
	})
	if len(result) != n {
		t.Fatalf("gathered %d entries", len(result))
	}
	for r, blob := range result {
		if string(blob) != fmt.Sprintf("from-%d", r) {
			t.Fatalf("rank %d slot holds %q", r, blob)
		}
	}
}

func TestScatterDelivery(t *testing.T) {
	n := 11
	got := make([][]byte, n)
	rig(t, n, 4, func(c *Comm, p *cluster.Proc) error {
		var parts [][]byte
		if c.IsMaster() {
			for i := 0; i < n; i++ {
				parts = append(parts, []byte(fmt.Sprintf("part-%d", i)))
			}
		}
		mine, err := c.Scatter(parts)
		if err != nil {
			return err
		}
		got[c.Rank()] = mine
		return nil
	})
	for r, g := range got {
		if string(g) != fmt.Sprintf("part-%d", r) {
			t.Fatalf("rank %d got %q", r, g)
		}
	}
}

func TestCollectiveSequenceMixed(t *testing.T) {
	n := 6
	rig(t, n, 2, func(c *Comm, p *cluster.Proc) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		var seed []byte
		if c.IsMaster() {
			seed = []byte("x")
		}
		b, err := c.Broadcast(seed)
		if err != nil {
			return err
		}
		all, err := c.Gather(append(b, byte('0'+c.Rank())))
		if err != nil {
			return err
		}
		if c.IsMaster() {
			for r, blob := range all {
				if string(blob) != "x"+string(byte('0'+r)) {
					return fmt.Errorf("slot %d = %q", r, blob)
				}
			}
		}
		return c.Barrier()
	})
}

func TestScatterWrongPartsCount(t *testing.T) {
	rig(t, 3, 2, func(c *Comm, p *cluster.Proc) error {
		if !c.IsMaster() {
			_, err := c.Scatter(nil)
			return err
		}
		if _, err := c.Scatter([][]byte{[]byte("only-one")}); err == nil {
			return fmt.Errorf("scatter with wrong count accepted")
		}
		// Recover with a correct scatter so peers unblock.
		_, err := c.Scatter([][]byte{{1}, {2}, {3}})
		return err
	})
}

func TestBadConfigRejected(t *testing.T) {
	sim := vtime.New()
	cl, _ := cluster.New(sim, cluster.Options{Nodes: 1})
	sim.Go("t", func() {
		p, _ := cl.Node(0).SpawnProc(cluster.Spec{})
		if _, err := Bootstrap(p, Config{Rank: 0, Size: 0}); err == nil {
			t.Error("size 0 accepted")
		}
		if _, err := Bootstrap(p, Config{Rank: 2, Size: 2, Nodelist: []string{"a", "b"}}); err == nil {
			t.Error("rank out of range accepted")
		}
		if _, err := Bootstrap(p, Config{Rank: 0, Size: 3, Nodelist: []string{"a"}}); err == nil {
			t.Error("short nodelist accepted")
		}
	})
	sim.Run()
}

func TestFlatTreeIsSingleLevel(t *testing.T) {
	// In a flat (1-deep) tree every non-master is a direct child of rank 0.
	n := 8
	for r := 1; r < n; r++ {
		if Parent(r, n) != 0 {
			t.Fatalf("flat parent of %d = %d", r, Parent(r, n))
		}
	}
	if got := len(Children(0, n, n)); got != n-1 {
		t.Fatalf("flat root has %d children", got)
	}
}

func TestSubtreeRanks(t *testing.T) {
	// n=7, fanout=2: subtree of 1 is {1,3,4}; of 2 is {2,5,6}.
	got := SubtreeRanks(1, 7, 2)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("SubtreeRanks(1) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SubtreeRanks(1) = %v", got)
		}
	}
}

// Property: Parent/Children are mutually consistent and subtree ranks
// partition 0..n-1.
func TestPropertyTreeConsistency(t *testing.T) {
	f := func(nRaw, fRaw uint8) bool {
		n := int(nRaw%100) + 1
		fanout := int(fRaw%6) + 1
		for r := 1; r < n; r++ {
			par := Parent(r, fanout)
			found := false
			for _, c := range Children(par, n, fanout) {
				if c == r {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		all := SubtreeRanks(0, n, fanout)
		if len(all) != n {
			return false
		}
		for i, r := range all {
			if r != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: gather returns exactly the per-rank contribution for random
// tree shapes and payload sizes.
func TestPropertyGatherExact(t *testing.T) {
	f := func(nRaw, fRaw, szRaw uint8) bool {
		n := int(nRaw%12) + 1
		fanout := int(fRaw % 5) // 0 = flat
		sz := int(szRaw%64) + 1
		sim := vtime.New()
		cl, err := cluster.New(sim, cluster.Options{Nodes: n})
		if err != nil {
			return false
		}
		nodelist := make([]string, n)
		for i := range nodelist {
			nodelist[i] = cl.Node(i).Name()
		}
		okAll := true
		sim.Go("boot", func() {
			for i := 0; i < n; i++ {
				i := i
				cl.Node(i).SpawnProc(cluster.Spec{Main: func(p *cluster.Proc) {
					c, err := Bootstrap(p, Config{Rank: i, Size: n, Fanout: fanout, Nodelist: nodelist, Port: 50002})
					if err != nil {
						okAll = false
						return
					}
					defer c.Close()
					mine := bytes.Repeat([]byte{byte(i)}, sz)
					all, err := c.Gather(mine)
					if err != nil {
						okAll = false
						return
					}
					if c.IsMaster() {
						for r, blob := range all {
							if len(blob) != sz || blob[0] != byte(r) {
								okAll = false
							}
						}
					}
				}})
			}
		})
		sim.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeeperTreeFasterThanFlatAtScale(t *testing.T) {
	// With per-message root costs, a fanout-8 tree should gather faster
	// than a flat tree at 64 daemons (the paper's motivation for TBŌNs).
	gatherTime := func(fanout int) time.Duration {
		var start, end time.Duration
		n := 64
		rig(t, n, fanout, func(c *Comm, p *cluster.Proc) error {
			if c.IsMaster() {
				start = p.Sim().Now()
			}
			_, err := c.Gather(bytes.Repeat([]byte{1}, 256))
			if c.IsMaster() {
				end = p.Sim().Now()
			}
			return err
		})
		return end - start
	}
	flat := gatherTime(0)
	tree := gatherTime(8)
	if tree >= flat {
		t.Fatalf("fanout-8 gather (%v) not faster than flat (%v) at 64 daemons", tree, flat)
	}
}

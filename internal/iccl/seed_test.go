package iccl

import (
	"bytes"
	"fmt"
	"testing"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/vtime"
)

// seedRig bootstraps n daemons with BootstrapSeed: the root feeds the
// scripted frame bodies, every daemon drains its local stream and then
// runs fn on the fully formed communicator.
func seedRig(t *testing.T, n, fanout int, bodies [][]byte, fn func(c *Comm, got [][]byte, p *cluster.Proc) error) {
	t.Helper()
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	nodelist := make([]string, n)
	for i := range nodelist {
		nodelist[i] = cl.Node(i).Name()
	}
	errs := make([]error, n)
	sim.Go("boot", func() {
		for i := 0; i < n; i++ {
			i := i
			if _, err := cl.Node(i).SpawnProc(cluster.Spec{Exe: "d", Main: func(p *cluster.Proc) {
				var src SeedSource
				if i == 0 {
					// The stream digest covers the chunk frames (from index
					// 1); frame 0 is the FEData preamble.
					digest := lmonp.SumInit
					for _, b := range bodies[1:] {
						digest = lmonp.FoldSum(digest, lmonp.Sum64(b))
					}
					idx := 0
					src = func() (coll.Frame, error) {
						if idx < len(bodies) {
							f := coll.Frame{
								H:    coll.Header{Op: coll.OpSeed, Index: uint32(idx)},
								Body: bodies[idx],
								Sum:  lmonp.Sum64(bodies[idx]),
							}
							idx++
							return f, nil
						}
						return coll.Frame{
							H:     coll.Header{Op: coll.OpSeed, Index: uint32(idx)},
							End:   true,
							Total: uint64(len(bodies)),
							Sum:   digest,
						}, nil
					}
				}
				c, seed, err := BootstrapSeed(p, Config{
					Rank: i, Size: n, Fanout: fanout, Nodelist: nodelist, Port: 50002,
				}, src)
				if err != nil {
					errs[i] = err
					return
				}
				defer c.Close()
				var got [][]byte
				for {
					f, err := seed.Next()
					if err != nil {
						errs[i] = err
						return
					}
					if f.End {
						if f.Total != uint64(len(got)) {
							errs[i] = fmt.Errorf("end total %d, received %d frames", f.Total, len(got))
							return
						}
						break
					}
					got = append(got, append([]byte(nil), f.Body...))
				}
				if err := seed.Wait(); err != nil {
					errs[i] = err
					return
				}
				errs[i] = fn(c, got, p)
			}}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	sim.Run()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
	}
}

// TestSeedStreamDeliversEverywhere checks every rank receives the exact
// frame sequence across tree shapes, and that the communicator is fully
// usable afterwards (the seed must have drained off every link).
func TestSeedStreamDeliversEverywhere(t *testing.T) {
	bodies := [][]byte{[]byte("fedata"), []byte("chunk-0"), []byte("chunk-1"), {}, []byte("chunk-3")}
	for _, tc := range []struct{ n, fanout int }{
		{1, 2}, {2, 2}, {5, 4}, {7, 2}, {8, 0 /* flat */}, {13, 3},
	} {
		t.Run(fmt.Sprintf("n%d_f%d", tc.n, tc.fanout), func(t *testing.T) {
			seedRig(t, tc.n, tc.fanout, bodies, func(c *Comm, got [][]byte, p *cluster.Proc) error {
				if len(got) != len(bodies) {
					return fmt.Errorf("rank %d received %d frames, want %d", c.Rank(), len(got), len(bodies))
				}
				for i := range bodies {
					if !bytes.Equal(got[i], bodies[i]) {
						return fmt.Errorf("rank %d frame %d = %q, want %q", c.Rank(), i, got[i], bodies[i])
					}
				}
				// The tree is immediately usable for collectives.
				return c.Barrier()
			})
		})
	}
}

// TestSeedSourceOnlyAtRoot pins the configuration contract.
func TestSeedSourceOnlyAtRoot(t *testing.T) {
	sim := vtime.New()
	cl, err := cluster.New(sim, cluster.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim.Go("boot", func() {
		cl.Node(0).SpawnProc(cluster.Spec{Exe: "d", Main: func(p *cluster.Proc) {
			if _, _, err := BootstrapSeed(p, Config{
				Rank: 0, Size: 1, Nodelist: []string{cl.Node(0).Name()}, Port: 50003,
			}, nil); err == nil {
				t.Error("rank 0 without a seed source accepted")
			}
			if _, _, err := BootstrapSeed(p, Config{
				Rank: 1, Size: 2, Nodelist: []string{cl.Node(0).Name(), "x"}, Port: 50003,
			}, func() (coll.Frame, error) { return coll.Frame{}, nil }); err == nil {
				t.Error("rank 1 with a seed source accepted")
			}
		}})
	})
	sim.Run()
}

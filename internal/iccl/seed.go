package iccl

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/obs"
	"launchmon/internal/proctab"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// This file implements the cut-through session-seed stream of the launch
// pipeline: the RPDTAB (plus the piggybacked FEData) flows down the ICCL
// tree as bounded coll-codec chunks *while the tree is still forming*,
// instead of the root buffering the whole table and broadcasting it as
// one monolithic frame after bootstrap completes. Every daemon starts
// receiving as soon as its parent link exists (right after its join is
// sent, before its own subtree's ready wave), and forwards each chunk to
// a child the moment that child's join is accepted — so at no point does
// any node store-and-forward the full table, and the transfer overlaps
// the join/ready waves of the subtree below it.
//
// Goroutine budget: only ranks that must forward concurrently with their
// own bootstrap — the root and interior nodes, whose accept loop blocks
// while upstream chunks keep arriving — run a pump goroutine, and child
// forwarders are spawned lazily when the child joins and exit once its
// End frame is on the wire. Leaves (the overwhelming majority of a k-ary
// tree) spawn nothing: their consumer pulls frames straight off the
// parent link inside Seed.Next, with identical virtual-time charging.

// Seed-stream opcodes on tree links (the frame layout is the shared
// coll.Frame codec, see writeFrameOp).
const (
	opSeedChunk = 10
	opSeedEnd   = 11
)

// SeedSource yields successive seed frames at the tree root (the master
// daemon pulls them off its front-end connection as they arrive). Frames
// must carry coll.OpSeed with a contiguous Index sequence, closed by an
// End frame; every chunk carries Sum64 of its body and the End frame
// carries the rolling digest of the RPDTAB chunk sums (frames from
// index 1 — index 0 is the FEData preamble, excluded from the digest).
type SeedSource func() (coll.Frame, error)

// SeedRouter enables rank-sliced seed delivery: instead of relaying every
// RPDTAB chunk to every child (each daemon ending up with the full K-entry
// table), every node decodes the chunks it receives, keeps only the
// entries whose host maps to its own daemon rank, and re-packs the rest
// into fresh bounded chunk streams — one per child subtree, each with its
// own index sequence, per-chunk sums, and digest-bearing end marker. No
// daemon ever materializes more than O(chunk + own slice) table bytes.
type SeedRouter struct {
	// RankOf maps an RPDTAB host name to the daemon rank that owns it.
	// The map behind it is shared across the session (modeling a
	// node-local shared segment), so routing costs no per-daemon memory.
	RankOf func(host string) (int, bool)
	// ChunkBytes bounds re-packed chunk bodies per link (<= 0 selects
	// coll.DefaultChunkBytes).
	ChunkBytes int
}

// seedSplitter is the per-node routing state: one ChunkWriter per child
// slot plus one for the locally retained slice, each emitting coll.Frames
// with a fresh contiguous index sequence (FEData stays frame 0 on every
// link, chunks start at 1).
type seedSplitter struct {
	rt     *SeedRouter
	rank   int
	fanout int
	local  *vtime.Chan[coll.Frame]
	outs   []*vtime.Chan[coll.Frame]
	slotOf map[int]int // direct child rank → slot

	locW   *proctab.ChunkWriter
	locIx  uint32
	slotW  []*proctab.ChunkWriter
	slotIx []uint32
}

func newSeedSplitter(rt *SeedRouter, cfg Config, kids []int, local *vtime.Chan[coll.Frame], outs []*vtime.Chan[coll.Frame]) *seedSplitter {
	cb := rt.ChunkBytes
	if cb <= 0 {
		cb = coll.DefaultChunkBytes
	}
	s := &seedSplitter{
		rt: rt, rank: cfg.Rank, fanout: cfg.Fanout,
		local: local, outs: outs,
		slotOf: make(map[int]int, len(kids)),
		slotW:  make([]*proctab.ChunkWriter, len(kids)),
		slotIx: make([]uint32, len(kids)),
	}
	for slot, rk := range kids {
		s.slotOf[rk] = slot
		slot := slot
		s.slotW[slot] = proctab.NewChunkWriter(cb, func(chunk []byte, sum uint64) error {
			s.slotIx[slot]++
			s.outs[slot].Send(coll.Frame{
				H: coll.Header{Op: coll.OpSeed, Index: s.slotIx[slot]}, Body: chunk, Sum: sum,
			})
			return nil
		})
	}
	s.locW = proctab.NewChunkWriter(cb, func(chunk []byte, sum uint64) error {
		s.locIx++
		s.local.Send(coll.Frame{
			H: coll.Header{Op: coll.OpSeed, Index: s.locIx}, Body: chunk, Sum: sum,
		})
		return nil
	})
	return s
}

// slotFor walks rk's ancestor chain up to this node and returns the child
// slot whose subtree holds rk, or -1 when rk is outside the subtree.
func (s *seedSplitter) slotFor(rk int) int {
	for rk > 0 {
		p := Parent(rk, s.fanout)
		if p == s.rank {
			if slot, ok := s.slotOf[rk]; ok {
				return slot
			}
			return -1
		}
		rk = p
	}
	return -1
}

// chunk routes one admitted seed frame. FEData (frame 0) is forwarded
// verbatim everywhere; RPDTAB chunks are decoded and their entries split
// between the local slice and the owning child subtrees.
func (s *seedSplitter) chunk(f coll.Frame) error {
	if f.H.Index == 0 {
		s.local.Send(f)
		for i := range s.outs {
			s.outs[i].Send(f)
		}
		return nil
	}
	entries, err := proctab.Decode(f.Body)
	if err != nil {
		return err
	}
	for _, d := range entries {
		rk, ok := s.rt.RankOf(d.Host)
		if !ok {
			return fmt.Errorf("%w: no daemon rank for host %q in seed route", ErrProtocol, d.Host)
		}
		if rk == s.rank {
			if err := s.locW.Add(d); err != nil {
				return err
			}
			continue
		}
		slot := s.slotFor(rk)
		if slot < 0 {
			return fmt.Errorf("%w: seed entry for rank %d outside rank %d's subtree", ErrProtocol, rk, s.rank)
		}
		if err := s.slotW[slot].Add(d); err != nil {
			return err
		}
	}
	return nil
}

// finish flushes every stream on the incoming End frame, verifies the
// routed entry count against the end marker's claimed total, and closes
// each outgoing stream with its own per-subtree total and digest.
func (s *seedSplitter) finish(f coll.Frame) error {
	if err := s.locW.Flush(); err != nil {
		return err
	}
	routed := uint64(s.locW.Count())
	for i := range s.slotW {
		if err := s.slotW[i].Flush(); err != nil {
			return err
		}
		routed += uint64(s.slotW[i].Count())
	}
	if routed != f.Total {
		return fmt.Errorf("%w: routed %d seed entries at rank %d, end marker says %d",
			ErrProtocol, routed, s.rank, f.Total)
	}
	for i := range s.outs {
		s.outs[i].Send(coll.Frame{
			H:   coll.Header{Op: coll.OpSeed, Index: s.slotIx[i] + 1},
			End: true, Total: uint64(s.slotW[i].Count()), Sum: s.slotW[i].Digest(),
		})
	}
	s.local.Send(coll.Frame{
		H:   coll.Header{Op: coll.OpSeed, Index: s.locIx + 1},
		End: true, Total: uint64(s.locW.Count()), Sum: s.locW.Digest(),
	})
	return nil
}

// seedEngine is one rank's seed-stream state machine: streaming sequence
// validation plus routing (or verbatim fanout) of each admitted frame. The
// root and interior ranks drive it from a pump goroutine — they must keep
// forwarding while their own bootstrap blocks in the accept loop — while
// leaves drive it inline from Seed.Next, so a leaf spawns no seed
// goroutine at all.
type seedEngine struct {
	cfg      Config
	seed     *Seed
	abort    func()
	split    *seedSplitter
	outs     []*vtime.Chan[coll.Frame]
	chk      coll.SeqCheck
	pumped   uint64
	srcBytes *obs.Gauge
}

// step admits one incoming frame, fanning it out locally and to the child
// outboxes. It returns true when the stream is finished — the End frame
// was processed, or a validation failure aborted it.
func (e *seedEngine) step(f coll.Frame) bool {
	if e.cfg.Rank == 0 {
		// Total seed bytes entering the tree at the root: the
		// denominator of the per-link wire-byte invariants.
		e.pumped += uint64(len(f.Body))
		if f.End {
			e.srcBytes.SetMax(e.pumped)
		}
	}
	if f.H.Op != coll.OpSeed {
		e.seed.fail(fmt.Errorf("%w: %v frame in seed stream", ErrProtocol, f.H.Op))
		e.abort()
		return true
	}
	// Streaming validation: per-chunk sums and, at End, the rolling
	// digest — every rank verifies the stream it saw without retaining it.
	if err := e.chk.AdmitFrame(f); err != nil {
		e.seed.fail(err)
		e.abort()
		return true
	}
	if e.split != nil {
		var err error
		if f.End {
			err = e.split.finish(f)
		} else {
			err = e.split.chunk(f)
		}
		if err != nil {
			e.seed.fail(err)
			e.abort()
			return true
		}
		return f.End
	}
	e.seed.local.Send(f)
	for i := range e.outs {
		e.outs[i].Send(f)
	}
	return f.End
}

// Seed is one daemon's handle on an in-flight session-seed stream. Next
// yields the locally delivered frames (forwarding to children happens
// independently, as frames arrive); Wait blocks until every child
// forward has drained, which callers must do before issuing any other
// down-flowing traffic on the communicator.
type Seed struct {
	local *vtime.Chan[coll.Frame]
	wg    *vtime.WaitGroup

	mu  sync.Mutex
	err error
}

// fail records the stream's first error (later ones keep the original).
func (s *Seed) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Seed) firstErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Next returns the next locally delivered seed frame, blocking in virtual
// time. The frame whose End is set is the last one. The park under Next is
// the one stack a quiescent daemon holds while its seed is in flight —
// deliberately shallow (a plain queue receive, no read/decode frames
// below it), because at a million daemons every KB of parked stack is a
// GB of simulator RSS.
func (s *Seed) Next() (coll.Frame, error) {
	f, ok := s.local.Recv()
	if !ok {
		if err := s.firstErr(); err != nil {
			return coll.Frame{}, err
		}
		return coll.Frame{}, fmt.Errorf("%w: seed stream aborted", ErrBootstrap)
	}
	return f, nil
}

// Wait blocks until the pump and every child forwarder have finished and
// returns the stream's first error. After a nil Wait (and a consumed End
// frame from Next) the communicator's links carry no more seed traffic.
func (s *Seed) Wait() error {
	s.wg.Wait()
	return s.firstErr()
}

// BootstrapSeed is Bootstrap with the cut-through session-seed stream
// layered over the forming tree. src must be non-nil exactly at the root
// (rank 0); every other rank receives the stream from its parent. The
// returned Seed delivers the frames locally; the caller must drain it to
// the End frame and then Wait before using the communicator.
//
// On a bootstrap error the seed stream is aborted (Next and Wait report
// it); on a mid-stream link failure — a child's node dying while chunks
// are in flight — the affected forwarder records the error for Wait while
// bootstrap itself surfaces the broken tree.
func BootstrapSeed(p *cluster.Proc, cfg Config, src SeedSource) (*Comm, *Seed, error) {
	return BootstrapSeedRouted(p, cfg, src, nil)
}

// BootstrapSeedRouted is BootstrapSeed with optional rank-slice routing:
// with a non-nil router the locally delivered stream carries only this
// daemon's slice of the RPDTAB (plus the FEData preamble), and children
// receive freshly packed streams covering exactly their subtrees. With a
// nil router every frame is relayed verbatim everywhere (full-table
// mode, the ablation baseline).
func BootstrapSeedRouted(p *cluster.Proc, cfg Config, src SeedSource, rt *SeedRouter) (*Comm, *Seed, error) {
	cfg = cfg.withDefaults()
	if (cfg.Rank == 0) != (src != nil) {
		return nil, nil, fmt.Errorf("%w: seed source must be set at rank 0 only (rank %d)", ErrBootstrap, cfg.Rank)
	}
	pl := newSeedPlumbing(p, &cfg, src, rt)
	c, err := bootstrap(p, &cfg, pl.onParent, pl.onChild)
	if err != nil {
		pl.seed.fail(err)
		pl.abort()
		return nil, nil, err
	}
	return c, pl.seed, nil
}

// seedPlumbing is one rank's seed-stream wiring, built before the tree
// forms: the local delivery channel, the per-child outboxes with their
// forwarder callbacks, and the bootstrap hooks that arm them as links
// appear. Construction lives in its own function — not inline in
// BootstrapSeedRouted — so the frame holding the engine, splitter, metric
// handles, and closure records pops before bootstrap's dial/accept
// machinery runs below it; the daemon's parked stack keeps only the thin
// caller chain (see bootstrap's stack note).
type seedPlumbing struct {
	seed     *Seed
	abort    func()
	onParent func(*simnet.Conn)
	onChild  func(slot int, conn *simnet.Conn)
}

func newSeedPlumbing(p *cluster.Proc, cfg *Config, src SeedSource, rt *SeedRouter) *seedPlumbing {
	sim := p.Sim()
	seed := &Seed{local: vtime.NewChan[coll.Frame](sim), wg: vtime.NewWaitGroup(sim)}
	kids := Children(cfg.Rank, cfg.Size, cfg.Fanout)
	outs := make([]*vtime.Chan[coll.Frame], len(kids))
	for i := range kids {
		outs[i] = vtime.NewChan[coll.Frame](sim)
	}
	abort := func() {
		seed.local.Close()
		for i := range kids {
			outs[i].Close()
		}
	}

	// Observability handles (nil registry → all no-ops). seed.link.bytes.max
	// is the peak per-link forwarded byte count across the whole tree once
	// harvested — the measured quantity behind the O(table/K · subtree)
	// per-link claim of rank-sliced routing.
	fwdChunks := cfg.Metrics.Counter("seed.fwd.chunks")
	fwdBytes := cfg.Metrics.Counter("seed.fwd.bytes")
	linkMax := cfg.Metrics.Gauge("seed.link.bytes.max")
	queueMax := cfg.Metrics.Gauge("seed.queue.depth.max")

	eng := &seedEngine{
		cfg: *cfg, seed: seed, abort: abort, outs: outs,
		srcBytes: cfg.Metrics.Gauge("seed.src.bytes"),
	}
	if rt != nil {
		eng.split = newSeedSplitter(rt, *cfg, kids, seed.local, outs)
	}

	// One forwarder per *joined* child, armed lazily from onChild and
	// finished after relaying the subtree's End frame (or when the stream
	// aborts / the child link dies mid-stream). A forwarder is not a
	// goroutine: link writes never block in virtual time, so relaying is a
	// per-frame outbox callback — a million-daemon tree forwards its whole
	// seed without parking a single stack on a child link.
	startForwarder := func(i int, conn *simnet.Conn) {
		seed.wg.Add(1)
		var linkBytes uint64
		done := false
		finish := func() {
			done = true
			linkMax.SetMax(linkBytes)
			seed.wg.Done()
		}
		outs[i].Handle(func(f coll.Frame, ok bool) {
			if done {
				return // stream already finished or failed; drop stragglers
			}
			if !ok {
				finish()
				return
			}
			queueMax.SetMax(uint64(outs[i].Len()))
			n, err := writeFrameOp(conn, opSeedChunk, opSeedEnd, f)
			if err != nil {
				seed.fail(fmt.Errorf("iccl: seed forward to rank %d: %w", kids[i], err))
				finish()
				return
			}
			fwdChunks.Inc()
			fwdBytes.Add(uint64(n))
			linkBytes += uint64(n)
			if f.End {
				finish()
			}
		})
	}

	// The pump owns the incoming stream at ranks that must forward while
	// their own bootstrap still blocks accepting children — the source
	// callback at the root, the parent link at interior ranks. Leaves skip
	// it: with no children to feed and a consumer that starts the moment
	// bootstrap returns, Seed.Next pulls the parent link directly.
	startPump := func(next func() (coll.Frame, error)) {
		seed.wg.Add(1)
		sim.Go(fmt.Sprintf("iccl-seed-pump-%d", cfg.Rank), func() {
			defer seed.wg.Done()
			for {
				f, err := next()
				if err != nil {
					seed.fail(fmt.Errorf("iccl: seed stream at rank %d: %w", cfg.Rank, err))
					abort()
					return
				}
				if eng.step(f) {
					return
				}
			}
		})
	}
	if cfg.Rank == 0 {
		startPump(src)
	}

	onParent := func(conn *simnet.Conn) {
		if len(kids) == 0 {
			// Leaf: no pump either — an event-driven framer owns the
			// parent link while the seed is in flight, reproducing the
			// serial reader's charging on a busy-until horizon (frame i
			// lands at max(arrival_i, done_{i-1}) + PerMsgCost) and
			// detaching at the End frame's arrival so pre-ShareLinks
			// collective traffic block-reads the same conn as before.
			// Decoding and engine admission run behind the horizon, like
			// the reader they replace.
			var busyUntil time.Duration
			lmonp.HandleFrames(conn, func(raw []byte, err error) {
				now := sim.Now()
				if err != nil {
					// The serial reader would only observe the failure
					// after charging every frame before it.
					seed.fail(fmt.Errorf("iccl: seed stream at rank %d: %w", cfg.Rank, err))
					if busyUntil <= now {
						abort()
					} else {
						sim.After(busyUntil-now, abort)
					}
					return
				}
				// Peek the opcode at arrival: the End frame (or a
				// protocol-violating opcode, which the deferred parse
				// will turn into an error) is the framer's last — detach
				// so later arrivals queue for blocking readers.
				if len(raw) < 4 || binary.BigEndian.Uint32(raw) != opSeedChunk {
					conn.Unhandle()
				}
				readAt := now
				if busyUntil > readAt {
					readAt = busyUntil
				}
				deliverAt := readAt + cfg.PerMsgCost
				busyUntil = deliverAt
				sim.After(deliverAt-now, func() {
					f, perr := parseFrameOp(raw, opSeedChunk, opSeedEnd)
					if perr != nil {
						seed.fail(fmt.Errorf("iccl: seed stream at rank %d: %w", cfg.Rank, perr))
						abort()
						return
					}
					eng.step(f)
				})
			})
			return
		}
		startPump(func() (coll.Frame, error) {
			return readFrameOp(p, cfg.PerMsgCost, conn, opSeedChunk, opSeedEnd)
		})
	}
	return &seedPlumbing{seed: seed, abort: abort, onParent: onParent, onChild: startForwarder}
}

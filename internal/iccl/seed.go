package iccl

import (
	"fmt"
	"sync"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/proctab"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// This file implements the cut-through session-seed stream of the launch
// pipeline: the RPDTAB (plus the piggybacked FEData) flows down the ICCL
// tree as bounded coll-codec chunks *while the tree is still forming*,
// instead of the root buffering the whole table and broadcasting it as
// one monolithic frame after bootstrap completes. Every daemon starts
// receiving as soon as its parent link exists (right after its join is
// sent, before its own subtree's ready wave), and forwards each chunk to
// a child the moment that child's join is accepted — so at no point does
// any node store-and-forward the full table, and the transfer overlaps
// the join/ready waves of the subtree below it.

// Seed-stream opcodes on tree links (the frame layout is the shared
// coll.Frame codec, see writeFrameOp).
const (
	opSeedChunk = 10
	opSeedEnd   = 11
)

// SeedSource yields successive seed frames at the tree root (the master
// daemon pulls them off its front-end connection as they arrive). Frames
// must carry coll.OpSeed with a contiguous Index sequence, closed by an
// End frame; every chunk carries Sum64 of its body and the End frame
// carries the rolling digest of the RPDTAB chunk sums (frames from
// index 1 — index 0 is the FEData preamble, excluded from the digest).
type SeedSource func() (coll.Frame, error)

// SeedRouter enables rank-sliced seed delivery: instead of relaying every
// RPDTAB chunk to every child (each daemon ending up with the full K-entry
// table), every node decodes the chunks it receives, keeps only the
// entries whose host maps to its own daemon rank, and re-packs the rest
// into fresh bounded chunk streams — one per child subtree, each with its
// own index sequence, per-chunk sums, and digest-bearing end marker. No
// daemon ever materializes more than O(chunk + own slice) table bytes.
type SeedRouter struct {
	// RankOf maps an RPDTAB host name to the daemon rank that owns it.
	// The map behind it is shared across the session (modeling a
	// node-local shared segment), so routing costs no per-daemon memory.
	RankOf func(host string) (int, bool)
	// ChunkBytes bounds re-packed chunk bodies per link (<= 0 selects
	// coll.DefaultChunkBytes).
	ChunkBytes int
}

// seedSplitter is the per-node routing state: one ChunkWriter per child
// slot plus one for the locally retained slice, each emitting coll.Frames
// with a fresh contiguous index sequence (FEData stays frame 0 on every
// link, chunks start at 1).
type seedSplitter struct {
	rt     *SeedRouter
	rank   int
	fanout int
	local  *vtime.Chan[coll.Frame]
	outs   []*vtime.Chan[coll.Frame]
	slotOf map[int]int // direct child rank → slot

	locW   *proctab.ChunkWriter
	locIx  uint32
	slotW  []*proctab.ChunkWriter
	slotIx []uint32
}

func newSeedSplitter(rt *SeedRouter, cfg Config, kids []int, local *vtime.Chan[coll.Frame], outs []*vtime.Chan[coll.Frame]) *seedSplitter {
	cb := rt.ChunkBytes
	if cb <= 0 {
		cb = coll.DefaultChunkBytes
	}
	s := &seedSplitter{
		rt: rt, rank: cfg.Rank, fanout: cfg.Fanout,
		local: local, outs: outs,
		slotOf: make(map[int]int, len(kids)),
		slotW:  make([]*proctab.ChunkWriter, len(kids)),
		slotIx: make([]uint32, len(kids)),
	}
	for slot, rk := range kids {
		s.slotOf[rk] = slot
		slot := slot
		s.slotW[slot] = proctab.NewChunkWriter(cb, func(chunk []byte, sum uint64) error {
			s.slotIx[slot]++
			s.outs[slot].Send(coll.Frame{
				H: coll.Header{Op: coll.OpSeed, Index: s.slotIx[slot]}, Body: chunk, Sum: sum,
			})
			return nil
		})
	}
	s.locW = proctab.NewChunkWriter(cb, func(chunk []byte, sum uint64) error {
		s.locIx++
		s.local.Send(coll.Frame{
			H: coll.Header{Op: coll.OpSeed, Index: s.locIx}, Body: chunk, Sum: sum,
		})
		return nil
	})
	return s
}

// slotFor walks rk's ancestor chain up to this node and returns the child
// slot whose subtree holds rk, or -1 when rk is outside the subtree.
func (s *seedSplitter) slotFor(rk int) int {
	for rk > 0 {
		p := Parent(rk, s.fanout)
		if p == s.rank {
			if slot, ok := s.slotOf[rk]; ok {
				return slot
			}
			return -1
		}
		rk = p
	}
	return -1
}

// chunk routes one admitted seed frame. FEData (frame 0) is forwarded
// verbatim everywhere; RPDTAB chunks are decoded and their entries split
// between the local slice and the owning child subtrees.
func (s *seedSplitter) chunk(f coll.Frame) error {
	if f.H.Index == 0 {
		s.local.Send(f)
		for i := range s.outs {
			s.outs[i].Send(f)
		}
		return nil
	}
	entries, err := proctab.Decode(f.Body)
	if err != nil {
		return err
	}
	for _, d := range entries {
		rk, ok := s.rt.RankOf(d.Host)
		if !ok {
			return fmt.Errorf("%w: no daemon rank for host %q in seed route", ErrProtocol, d.Host)
		}
		if rk == s.rank {
			if err := s.locW.Add(d); err != nil {
				return err
			}
			continue
		}
		slot := s.slotFor(rk)
		if slot < 0 {
			return fmt.Errorf("%w: seed entry for rank %d outside rank %d's subtree", ErrProtocol, rk, s.rank)
		}
		if err := s.slotW[slot].Add(d); err != nil {
			return err
		}
	}
	return nil
}

// finish flushes every stream on the incoming End frame, verifies the
// routed entry count against the end marker's claimed total, and closes
// each outgoing stream with its own per-subtree total and digest.
func (s *seedSplitter) finish(f coll.Frame) error {
	if err := s.locW.Flush(); err != nil {
		return err
	}
	routed := uint64(s.locW.Count())
	for i := range s.slotW {
		if err := s.slotW[i].Flush(); err != nil {
			return err
		}
		routed += uint64(s.slotW[i].Count())
	}
	if routed != f.Total {
		return fmt.Errorf("%w: routed %d seed entries at rank %d, end marker says %d",
			ErrProtocol, routed, s.rank, f.Total)
	}
	for i := range s.outs {
		s.outs[i].Send(coll.Frame{
			H:   coll.Header{Op: coll.OpSeed, Index: s.slotIx[i] + 1},
			End: true, Total: uint64(s.slotW[i].Count()), Sum: s.slotW[i].Digest(),
		})
	}
	s.local.Send(coll.Frame{
		H:   coll.Header{Op: coll.OpSeed, Index: s.locIx + 1},
		End: true, Total: uint64(s.locW.Count()), Sum: s.locW.Digest(),
	})
	return nil
}

// Seed is one daemon's handle on an in-flight session-seed stream. Next
// yields the locally delivered frames (forwarding to children happens
// independently, as frames arrive); Wait blocks until every child
// forward has drained, which callers must do before issuing any other
// down-flowing traffic on the communicator.
type Seed struct {
	local *vtime.Chan[coll.Frame]
	wg    *vtime.WaitGroup

	mu  sync.Mutex
	err error
}

// fail records the stream's first error (later ones keep the original).
func (s *Seed) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Seed) firstErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Next returns the next locally delivered seed frame, blocking in virtual
// time. The frame whose End is set is the last one.
func (s *Seed) Next() (coll.Frame, error) {
	f, ok := s.local.Recv()
	if !ok {
		if err := s.firstErr(); err != nil {
			return coll.Frame{}, err
		}
		return coll.Frame{}, fmt.Errorf("%w: seed stream aborted", ErrBootstrap)
	}
	return f, nil
}

// Wait blocks until the pump and every child forwarder have finished and
// returns the stream's first error. After a nil Wait (and a consumed End
// frame from Next) the communicator's links carry no more seed traffic.
func (s *Seed) Wait() error {
	s.wg.Wait()
	return s.firstErr()
}

// BootstrapSeed is Bootstrap with the cut-through session-seed stream
// layered over the forming tree. src must be non-nil exactly at the root
// (rank 0); every other rank receives the stream from its parent. The
// returned Seed delivers the frames locally; the caller must drain it to
// the End frame and then Wait before using the communicator.
//
// On a bootstrap error the seed stream is aborted (Next and Wait report
// it); on a mid-stream link failure — a child's node dying while chunks
// are in flight — the affected forwarder records the error for Wait while
// bootstrap itself surfaces the broken tree.
func BootstrapSeed(p *cluster.Proc, cfg Config, src SeedSource) (*Comm, *Seed, error) {
	return BootstrapSeedRouted(p, cfg, src, nil)
}

// BootstrapSeedRouted is BootstrapSeed with optional rank-slice routing:
// with a non-nil router the locally delivered stream carries only this
// daemon's slice of the RPDTAB (plus the FEData preamble), and children
// receive freshly packed streams covering exactly their subtrees. With a
// nil router every frame is relayed verbatim everywhere (full-table
// mode, the ablation baseline).
func BootstrapSeedRouted(p *cluster.Proc, cfg Config, src SeedSource, rt *SeedRouter) (*Comm, *Seed, error) {
	cfg = cfg.withDefaults()
	if (cfg.Rank == 0) != (src != nil) {
		return nil, nil, fmt.Errorf("%w: seed source must be set at rank 0 only (rank %d)", ErrBootstrap, cfg.Rank)
	}
	sim := p.Sim()
	seed := &Seed{local: vtime.NewChan[coll.Frame](sim), wg: vtime.NewWaitGroup(sim)}
	kids := Children(cfg.Rank, cfg.Size, cfg.Fanout)
	outs := make([]*vtime.Chan[coll.Frame], len(kids))
	conns := make([]*vtime.Chan[*simnet.Conn], len(kids))
	for i := range kids {
		outs[i] = vtime.NewChan[coll.Frame](sim)
		conns[i] = vtime.NewChan[*simnet.Conn](sim)
	}
	abort := func() {
		seed.local.Close()
		for i := range kids {
			outs[i].Close()
			conns[i].Close()
		}
	}

	// Observability handles (nil registry → all no-ops). seed.link.bytes.max
	// is the peak per-link forwarded byte count across the whole tree once
	// harvested — the measured quantity behind the O(table/K · subtree)
	// per-link claim of rank-sliced routing.
	fwdChunks := cfg.Metrics.Counter("seed.fwd.chunks")
	fwdBytes := cfg.Metrics.Counter("seed.fwd.bytes")
	linkMax := cfg.Metrics.Gauge("seed.link.bytes.max")
	queueMax := cfg.Metrics.Gauge("seed.queue.depth.max")
	srcBytes := cfg.Metrics.Gauge("seed.src.bytes")

	// One forwarder per child slot: parked until the child joins, then
	// relaying frames in arrival order. It ends after forwarding the End
	// frame — or when the stream aborts (outbox closed) or the child link
	// dies mid-stream.
	for i := range kids {
		i := i
		seed.wg.Add(1)
		sim.Go(fmt.Sprintf("iccl-seed-fwd-%d-%d", cfg.Rank, kids[i]), func() {
			defer seed.wg.Done()
			var linkBytes uint64
			defer func() { linkMax.SetMax(linkBytes) }()
			conn, ok := conns[i].Recv()
			if !ok {
				return // bootstrap failed before this child joined
			}
			for {
				f, ok := outs[i].Recv()
				if !ok {
					return
				}
				queueMax.SetMax(uint64(outs[i].Len()))
				n, err := writeFrameOp(conn, opSeedChunk, opSeedEnd, f)
				if err != nil {
					seed.fail(fmt.Errorf("iccl: seed forward to rank %d: %w", kids[i], err))
					return
				}
				fwdChunks.Inc()
				fwdBytes.Add(uint64(n))
				linkBytes += uint64(n)
				if f.End {
					return
				}
			}
		})
	}

	// The pump owns the incoming stream — the source callback at the root,
	// the parent link elsewhere — validating the chunk sequence at every
	// rank and fanning each frame out to the local consumer and the child
	// forwarders the moment it arrives.
	pump := func(next func() (coll.Frame, error)) {
		seed.wg.Add(1)
		sim.Go(fmt.Sprintf("iccl-seed-pump-%d", cfg.Rank), func() {
			defer seed.wg.Done()
			var split *seedSplitter
			if rt != nil {
				split = newSeedSplitter(rt, cfg, kids, seed.local, outs)
			}
			var chk coll.SeqCheck
			var pumped uint64
			for {
				f, err := next()
				if err != nil {
					seed.fail(fmt.Errorf("iccl: seed stream at rank %d: %w", cfg.Rank, err))
					abort()
					return
				}
				if cfg.Rank == 0 {
					// Total seed bytes entering the tree at the root: the
					// denominator of the per-link wire-byte invariants.
					pumped += uint64(len(f.Body))
					if f.End {
						srcBytes.SetMax(pumped)
					}
				}
				if f.H.Op != coll.OpSeed {
					seed.fail(fmt.Errorf("%w: %v frame in seed stream", ErrProtocol, f.H.Op))
					abort()
					return
				}
				// Streaming validation: per-chunk sums and, at End, the
				// rolling digest — every rank verifies the stream it saw
				// without retaining it.
				if err := chk.AdmitFrame(f); err != nil {
					seed.fail(err)
					abort()
					return
				}
				if split != nil {
					if f.End {
						err = split.finish(f)
					} else {
						err = split.chunk(f)
					}
					if err != nil {
						seed.fail(err)
						abort()
						return
					}
					if f.End {
						return
					}
					continue
				}
				seed.local.Send(f)
				for i := range outs {
					outs[i].Send(f)
				}
				if f.End {
					return
				}
			}
		})
	}
	if cfg.Rank == 0 {
		pump(src)
	}

	onParent := func(conn *simnet.Conn) {
		pump(func() (coll.Frame, error) {
			return readFrameOp(p, cfg.PerMsgCost, conn, opSeedChunk, opSeedEnd)
		})
	}
	onChild := func(slot int, conn *simnet.Conn) {
		conns[slot].Send(conn)
	}
	c, err := bootstrap(p, cfg, onParent, onChild)
	if err != nil {
		seed.fail(err)
		abort()
		return nil, nil, err
	}
	// Late Close is harmless (queued conns stay receivable); it only
	// unparks forwarders whose child never joined on a failure path above.
	for i := range kids {
		conns[i].Close()
	}
	return c, seed, nil
}

package iccl

import (
	"fmt"
	"sync"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/simnet"
	"launchmon/internal/vtime"
)

// This file implements the cut-through session-seed stream of the launch
// pipeline: the RPDTAB (plus the piggybacked FEData) flows down the ICCL
// tree as bounded coll-codec chunks *while the tree is still forming*,
// instead of the root buffering the whole table and broadcasting it as
// one monolithic frame after bootstrap completes. Every daemon starts
// receiving as soon as its parent link exists (right after its join is
// sent, before its own subtree's ready wave), and forwards each chunk to
// a child the moment that child's join is accepted — so at no point does
// any node store-and-forward the full table, and the transfer overlaps
// the join/ready waves of the subtree below it.

// Seed-stream opcodes on tree links (the frame layout is the shared
// coll.Frame codec, see writeFrameOp).
const (
	opSeedChunk = 10
	opSeedEnd   = 11
)

// SeedSource yields successive seed frames at the tree root (the master
// daemon pulls them off its front-end connection as they arrive). Frames
// must carry coll.OpSeed with a contiguous Index sequence, closed by an
// End frame.
type SeedSource func() (coll.Frame, error)

// Seed is one daemon's handle on an in-flight session-seed stream. Next
// yields the locally delivered frames (forwarding to children happens
// independently, as frames arrive); Wait blocks until every child
// forward has drained, which callers must do before issuing any other
// down-flowing traffic on the communicator.
type Seed struct {
	local *vtime.Chan[coll.Frame]
	wg    *vtime.WaitGroup

	mu  sync.Mutex
	err error
}

// fail records the stream's first error (later ones keep the original).
func (s *Seed) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Seed) firstErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Next returns the next locally delivered seed frame, blocking in virtual
// time. The frame whose End is set is the last one.
func (s *Seed) Next() (coll.Frame, error) {
	f, ok := s.local.Recv()
	if !ok {
		if err := s.firstErr(); err != nil {
			return coll.Frame{}, err
		}
		return coll.Frame{}, fmt.Errorf("%w: seed stream aborted", ErrBootstrap)
	}
	return f, nil
}

// Wait blocks until the pump and every child forwarder have finished and
// returns the stream's first error. After a nil Wait (and a consumed End
// frame from Next) the communicator's links carry no more seed traffic.
func (s *Seed) Wait() error {
	s.wg.Wait()
	return s.firstErr()
}

// BootstrapSeed is Bootstrap with the cut-through session-seed stream
// layered over the forming tree. src must be non-nil exactly at the root
// (rank 0); every other rank receives the stream from its parent. The
// returned Seed delivers the frames locally; the caller must drain it to
// the End frame and then Wait before using the communicator.
//
// On a bootstrap error the seed stream is aborted (Next and Wait report
// it); on a mid-stream link failure — a child's node dying while chunks
// are in flight — the affected forwarder records the error for Wait while
// bootstrap itself surfaces the broken tree.
func BootstrapSeed(p *cluster.Proc, cfg Config, src SeedSource) (*Comm, *Seed, error) {
	cfg = cfg.withDefaults()
	if (cfg.Rank == 0) != (src != nil) {
		return nil, nil, fmt.Errorf("%w: seed source must be set at rank 0 only (rank %d)", ErrBootstrap, cfg.Rank)
	}
	sim := p.Sim()
	seed := &Seed{local: vtime.NewChan[coll.Frame](sim), wg: vtime.NewWaitGroup(sim)}
	kids := Children(cfg.Rank, cfg.Size, cfg.Fanout)
	outs := make([]*vtime.Chan[coll.Frame], len(kids))
	conns := make([]*vtime.Chan[*simnet.Conn], len(kids))
	for i := range kids {
		outs[i] = vtime.NewChan[coll.Frame](sim)
		conns[i] = vtime.NewChan[*simnet.Conn](sim)
	}
	abort := func() {
		seed.local.Close()
		for i := range kids {
			outs[i].Close()
			conns[i].Close()
		}
	}

	// One forwarder per child slot: parked until the child joins, then
	// relaying frames in arrival order. It ends after forwarding the End
	// frame — or when the stream aborts (outbox closed) or the child link
	// dies mid-stream.
	for i := range kids {
		i := i
		seed.wg.Add(1)
		sim.Go(fmt.Sprintf("iccl-seed-fwd-%d-%d", cfg.Rank, kids[i]), func() {
			defer seed.wg.Done()
			conn, ok := conns[i].Recv()
			if !ok {
				return // bootstrap failed before this child joined
			}
			for {
				f, ok := outs[i].Recv()
				if !ok {
					return
				}
				if err := writeFrameOp(conn, opSeedChunk, opSeedEnd, f); err != nil {
					seed.fail(fmt.Errorf("iccl: seed forward to rank %d: %w", kids[i], err))
					return
				}
				if f.End {
					return
				}
			}
		})
	}

	// The pump owns the incoming stream — the source callback at the root,
	// the parent link elsewhere — validating the chunk sequence at every
	// rank and fanning each frame out to the local consumer and the child
	// forwarders the moment it arrives.
	pump := func(next func() (coll.Frame, error)) {
		seed.wg.Add(1)
		sim.Go(fmt.Sprintf("iccl-seed-pump-%d", cfg.Rank), func() {
			defer seed.wg.Done()
			var chk coll.SeqCheck
			for {
				f, err := next()
				if err != nil {
					seed.fail(fmt.Errorf("iccl: seed stream at rank %d: %w", cfg.Rank, err))
					abort()
					return
				}
				if f.H.Op != coll.OpSeed {
					seed.fail(fmt.Errorf("%w: %v frame in seed stream", ErrProtocol, f.H.Op))
					abort()
					return
				}
				if err := chk.Admit(f.H); err != nil {
					seed.fail(err)
					abort()
					return
				}
				seed.local.Send(f)
				for i := range outs {
					outs[i].Send(f)
				}
				if f.End {
					return
				}
			}
		})
	}
	if cfg.Rank == 0 {
		pump(src)
	}

	onParent := func(conn *simnet.Conn) {
		pump(func() (coll.Frame, error) {
			return readFrameOp(p, cfg.PerMsgCost, conn, opSeedChunk, opSeedEnd)
		})
	}
	onChild := func(slot int, conn *simnet.Conn) {
		conns[slot].Send(conn)
	}
	c, err := bootstrap(p, cfg, onParent, onChild)
	if err != nil {
		seed.fail(err)
		abort()
		return nil, nil, err
	}
	// Late Close is harmless (queued conns stay receivable); it only
	// unparks forwarders whose child never joined on a failure path above.
	for i := range kids {
		conns[i].Close()
	}
	return c, seed, nil
}

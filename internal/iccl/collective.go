package iccl

import (
	"fmt"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
)

// This file implements the tool-data collective plane over the ICCL
// tree: chunk streams (codec in internal/coll) routed hop by hop, with
// interior daemons forwarding broadcast/scatter/gather traffic and
// combining reduce contributions — instead of the master daemon relaying
// every byte over the flat FE link. The master bridges the tree to the
// front end through injected up/down frame hooks (internal/core wires
// them to the FE's LMONP connection; tests wire them to in-memory
// queues), so the routing logic is identical at every tree node.
//
// Plane v2 adds two orthogonal mechanisms:
//
//   - Flow control: each chunk on a tree link consumes one credit of the
//     per-(link, tag) window; the receiver returns a credit as it
//     dequeues the chunk (opCredit), so at most window chunks of one
//     stream are ever queued at a receiver — interior depth is bounded
//     by window × chunk bytes regardless of tree size or subtree skew.
//     End markers and credits ride outside the window. Credits apply to
//     tree links only: the FE↔master LMONP hop has exactly one consumer
//     draining into per-tag queues and no fan-in skew, so a window there
//     would serialize the FE against the slowest subtree for no bound
//     it doesn't already have.
//
//   - Tagged streams: the per-connection router (router.go) demuxes
//     frames by tag, so independent tagged collectives — each driven by
//     its own goroutine — multiplex one session tree concurrently. The
//     legacy untagged API keeps the lockstep SPMD discipline on a
//     per-plane sequence; *Tag variants take explicit tags from
//     [coll.MinUserTag, coll.MaxUserTag), and tree-wide lockstep ops
//     (Barrier/AllGather/AllReduce) sequence above coll.MaxUserTag.
//
// One caveat follows from tag demux: a frame whose tag matches no
// running operation parks silently in its tag queue instead of failing
// the current operation, so a cross-tag SPMD divergence on a tree link
// surfaces as the sender's own stream erroring (or a hang under fault-
// free misuse), not as a mismatch error at the receiver. The root's
// down hook is not demuxed by the plane, so FE-originated tag
// divergence still errors eagerly (checkStream).

// Tree link opcodes of the collective plane.
const (
	opCollChunk = 8 // one collective chunk (header + body)
	opCollEnd   = 9 // stream end (header + uint64 total)
)

// UpFn emits one FE-bound frame from the tree root (gather and reduce
// streams, restamped per link).
type UpFn func(coll.Frame) error

// DownFn yields the tagged stream's next FE-originated frame at the
// tree root (broadcast and scatter streams).
type DownFn func(tag uint32) (coll.Frame, error)

// Plane is one daemon's handle on the session's collective tool-data
// plane. The untagged operations follow the lockstep SPMD discipline
// (all daemons invoke the same collectives in the same order, from one
// goroutine per daemon); the *Tag operations are safe to run
// concurrently from multiple goroutines as long as every daemon runs
// the same operation with the same tag.
type Plane struct {
	c          *Comm
	chunkBytes int
	window     int // per-(link, tag) chunk credits; 0 = unlimited
	seq        uint32
	treeSeq    uint32
	up         UpFn
	down       DownFn
	slotOf     map[int]int // direct child rank → slot (flat roots have K-1 children)
}

// NewPlane attaches a collective plane to the communicator. chunkBytes
// bounds one chunk body per link (<= 0 selects coll.DefaultChunkBytes);
// window is the per-(link, tag) outstanding-chunk credit budget (0
// selects coll.DefaultWindow, negative disables flow control — the
// unbounded ablation baseline); up and down bridge the root to the
// front end and must be non-nil at the root only.
func (c *Comm) NewPlane(chunkBytes, window int, up UpFn, down DownFn) *Plane {
	if chunkBytes <= 0 {
		chunkBytes = coll.DefaultChunkBytes
	}
	switch {
	case window == 0:
		window = coll.DefaultWindow
	case window < 0:
		window = 0
	}
	slotOf := make(map[int]int, len(c.childRk))
	for slot, rk := range c.childRk {
		slotOf[rk] = slot
	}
	return &Plane{c: c, chunkBytes: chunkBytes, window: window, up: up, down: down, slotOf: slotOf}
}

// nextTag advances the plane's lockstep FE-collective sequence.
func (pl *Plane) nextTag() uint32 {
	pl.seq++
	return pl.seq
}

// nextTreeTag advances the lockstep sequence of the tree-internal
// collectives (Barrier/AllGather/AllReduce without explicit tags),
// in the reserved space above the user tags.
func (pl *Plane) nextTreeTag() uint32 {
	pl.treeSeq++
	return coll.MaxUserTag + pl.treeSeq
}

// checkUserTag validates an explicitly allocated stream tag.
func checkUserTag(tag uint32) error {
	if tag < coll.MinUserTag || tag >= coll.MaxUserTag {
		return fmt.Errorf("%w: user tag %d outside [%d, %d)", ErrProtocol, tag, coll.MinUserTag, coll.MaxUserTag)
	}
	return nil
}

// writeFrameOp renders f as a tree-link frame under the given chunk/end
// opcode pair and writes it — the single coll.Frame↔link-frame mapping,
// shared by the collective plane and the session-seed stream. Only the
// End frame carries a checksum on the wire: the rolling digest of the
// stream's per-chunk sums. Receivers recompute each chunk's sum from the
// body as it arrives and fold it (coll.SeqCheck), so streaming validation
// covers every chunk at O(chunk) memory without an 8-byte per-frame wire
// tax — on a deep tree those bytes ride every hop of every link.
// It returns the encoded frame size so callers can maintain per-link
// wire-byte metrics.
func writeFrameOp(conn *simnet.Conn, chunkOp, endOp uint32, f coll.Frame) (int, error) {
	var b []byte
	if f.End {
		b = lmonp.AppendUint32(nil, endOp)
		b = lmonp.AppendBytes(b, f.H.Encode())
		b = lmonp.AppendUint64(b, f.Total)
		b = lmonp.AppendUint64(b, f.Sum)
	} else {
		b = lmonp.AppendUint32(nil, chunkOp)
		b = lmonp.AppendBytes(b, f.H.Encode())
		b = lmonp.AppendBytes(b, f.Body)
	}
	if err := lmonp.WriteFrame(conn, b); err != nil {
		return 0, err
	}
	return len(b), nil
}

// readFrameOp reads one frame written by writeFrameOp directly off the
// conn, charging the per-message handling cost. It is only safe before
// ShareLinks (the seed stream flows during bootstrap, well before links
// are shared); afterwards reads must go through Comm.recvRaw.
func readFrameOp(p *cluster.Proc, cost time.Duration, conn *simnet.Conn, chunkOp, endOp uint32) (coll.Frame, error) {
	raw, err := lmonp.ReadFrame(conn)
	if err != nil {
		return coll.Frame{}, err
	}
	p.Compute(cost)
	return parseFrameOp(raw, chunkOp, endOp)
}

// parseFrameOp decodes one raw tree frame produced by writeFrameOp.
func parseFrameOp(raw []byte, chunkOp, endOp uint32) (coll.Frame, error) {
	rd := lmonp.NewReader(raw)
	op, err := rd.Uint32()
	if err != nil {
		return coll.Frame{}, err
	}
	if op != chunkOp && op != endOp {
		return coll.Frame{}, fmt.Errorf("%w: got op %d, want %d or %d", ErrProtocol, op, chunkOp, endOp)
	}
	hraw, err := rd.Bytes()
	if err != nil {
		return coll.Frame{}, err
	}
	h, err := coll.DecodeHeader(lmonp.NewReader(hraw))
	if err != nil {
		return coll.Frame{}, err
	}
	f := coll.Frame{H: h}
	if op == endOp {
		if f.Total, err = rd.Uint64(); err != nil {
			return coll.Frame{}, err
		}
		if f.Sum, err = rd.Uint64(); err != nil {
			return coll.Frame{}, err
		}
		f.End = true
		return f, nil
	}
	if f.Body, err = rd.Bytes(); err != nil {
		return coll.Frame{}, err
	}
	// No on-wire sum for chunks: compute it here so the receiver's rolling
	// digest (checked against the end marker) still covers every chunk it
	// admitted.
	f.Sum = lmonp.Sum64(f.Body)
	return f, nil
}

// sendFrame writes one collective frame to a tree link, holding one
// window credit per chunk (End markers ride outside the window and
// retire the stream's gate).
func (pl *Plane) sendFrame(conn *simnet.Conn, f coll.Frame) error {
	rt := pl.c.routerFor(conn)
	if rt != nil && pl.window > 0 && !f.End {
		if err := rt.gate(f.H.Tag, pl.window).acquire(); err != nil {
			return err
		}
	}
	n, err := writeFrameOp(conn, opCollChunk, opCollEnd, f)
	if err != nil {
		return err
	}
	pl.c.txFrames.Inc()
	pl.c.txBytes.Add(uint64(n))
	pl.c.collTxFrames.Inc()
	pl.c.collTxBytes.Add(uint64(n))
	if rt != nil && f.End {
		rt.dropGate(f.H.Tag)
	}
	return nil
}

// recvTagged dequeues the next frame of one tagged stream from a tree
// link, returning a credit to the sender as the chunk leaves the queue
// (so the sender's window tracks this node's consumption, not its
// arrivals) and retiring the tag queue at the stream's end.
func (pl *Plane) recvTagged(conn *simnet.Conn, tag uint32) (coll.Frame, error) {
	rt := pl.c.routerFor(conn)
	q := rt.tagQ(tag)
	f, ok := q.Recv()
	if !ok {
		return coll.Frame{}, rt.takeErr()
	}
	rt.dequeued(f)
	if f.End {
		rt.dropTag(tag)
	} else if pl.window > 0 {
		if err := pl.c.sendCredit(conn, tag, 1); err != nil {
			return coll.Frame{}, err
		}
	}
	return f, nil
}

// emitUp ships one FE-bound frame: through the up hook at the root,
// up the parent link elsewhere.
func (pl *Plane) emitUp(f coll.Frame) error {
	if pl.c.parent == nil {
		if pl.up == nil {
			return fmt.Errorf("%w: root plane has no up hook", ErrProtocol)
		}
		return pl.up(f)
	}
	return pl.sendFrame(pl.c.parent, f)
}

// recvDown yields the tagged stream's next FE-originated frame: from
// the down hook at the root, from the parent link elsewhere.
func (pl *Plane) recvDown(tag uint32) (coll.Frame, error) {
	if pl.c.parent == nil {
		if pl.down == nil {
			return coll.Frame{}, fmt.Errorf("%w: root plane has no down hook", ErrProtocol)
		}
		return pl.down(tag)
	}
	return pl.recvTagged(pl.c.parent, tag)
}

// checkStream validates that a frame belongs to the current operation.
func (pl *Plane) checkStream(f coll.Frame, op coll.Op, tag uint32) error {
	if f.H.Op != op || f.H.Tag != tag {
		return fmt.Errorf("%w: rank %d: %v frame tag %d during %v tag %d (collective order diverged)",
			ErrProtocol, pl.c.rank, f.H.Op, f.H.Tag, op, tag)
	}
	return nil
}

// Broadcast receives one FE-originated broadcast, forwarding every chunk
// to the children as it arrives, and returns the reassembled payload.
func (pl *Plane) Broadcast() ([]byte, error) {
	pl.c.startRouter()
	return pl.broadcast(pl.nextTag())
}

// BroadcastTag is Broadcast on an explicitly tagged concurrent stream.
func (pl *Plane) BroadcastTag(tag uint32) ([]byte, error) {
	if err := checkUserTag(tag); err != nil {
		return nil, err
	}
	pl.c.startRouter()
	return pl.broadcast(tag)
}

func (pl *Plane) broadcast(tag uint32) ([]byte, error) {
	var asm coll.RawAssembler
	for {
		f, err := pl.recvDown(tag)
		if err != nil {
			return nil, err
		}
		if err := pl.checkStream(f, coll.OpBroadcast, tag); err != nil {
			return nil, err
		}
		for _, conn := range pl.c.children {
			if err := pl.sendFrame(conn, f); err != nil {
				return nil, err
			}
		}
		if f.End {
			return asm.Finish(f.H, f.Total)
		}
		if err := asm.Add(f.H, f.Body); err != nil { // Add copies
			return nil, err
		}
	}
}

// childSlot returns which child slot owns rank r's subtree, or -1 when r
// is outside this node's subtree.
func (pl *Plane) childSlot(r int) int {
	fanout := pl.c.cfg.Fanout
	for r > 0 {
		p := Parent(r, fanout)
		if p == pl.c.rank {
			if slot, ok := pl.slotOf[r]; ok {
				return slot
			}
			return -1
		}
		r = p
	}
	return -1
}

// Scatter receives one FE-originated scatter and returns this rank's
// part. Interior nodes re-bucket the incoming rank-tagged entries by
// child subtree and stream them onward in bounded-size chunks
// (coll.Packer — the shared coalescing implementation).
func (pl *Plane) Scatter() ([]byte, error) {
	pl.c.startRouter()
	return pl.scatter(pl.nextTag())
}

// ScatterTag is Scatter on an explicitly tagged concurrent stream.
func (pl *Plane) ScatterTag(tag uint32) ([]byte, error) {
	if err := checkUserTag(tag); err != nil {
		return nil, err
	}
	pl.c.startRouter()
	return pl.scatter(tag)
}

func (pl *Plane) scatter(tag uint32) ([]byte, error) {
	packers := make([]*coll.Packer, len(pl.c.children))
	for slot, conn := range pl.c.children {
		conn := conn
		packers[slot] = &coll.Packer{
			Op: coll.OpScatter, Tag: tag, ChunkBytes: pl.chunkBytes,
			Emit: func(f coll.Frame) error { return pl.sendFrame(conn, f) },
		}
	}
	var mine []byte
	have := false
	var in coll.SeqCheck // validates the incoming chunk index sequence
	for {
		f, err := pl.recvDown(tag)
		if err != nil {
			return nil, err
		}
		if err := pl.checkStream(f, coll.OpScatter, tag); err != nil {
			return nil, err
		}
		if err := in.Admit(f.H); err != nil {
			return nil, err
		}
		if f.End {
			for _, sp := range packers {
				if err := sp.End(); err != nil {
					return nil, err
				}
			}
			break
		}
		entries, err := coll.DecodeEntries(f.Body)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Rank == pl.c.rank {
				if have {
					return nil, fmt.Errorf("%w: duplicate scatter part for rank %d", ErrProtocol, e.Rank)
				}
				mine = append([]byte(nil), e.Blob...)
				have = true
				continue
			}
			slot := pl.childSlot(e.Rank)
			if slot < 0 {
				return nil, fmt.Errorf("%w: scatter part for rank %d outside rank %d's subtree",
					ErrProtocol, e.Rank, pl.c.rank)
			}
			if err := packers[slot].Add(e); err != nil {
				return nil, err
			}
		}
	}
	if !have {
		return nil, fmt.Errorf("%w: no scatter part for rank %d", ErrProtocol, pl.c.rank)
	}
	return mine, nil
}

// Gather contributes mine to an FE-bound gather. Interior nodes stream
// their own entry first, then drain each child subtree's chunks as they
// arrive, re-coalescing the entries into bounded-size frames — so the
// number of messages on any link is bounded by subtree-bytes/chunk, not
// by the subtree's daemon count, and no link ever carries a monolithic
// K-entry payload.
func (pl *Plane) Gather(mine []byte) error {
	pl.c.startRouter()
	return pl.gather(pl.nextTag(), mine)
}

// GatherTag is Gather on an explicitly tagged concurrent stream.
func (pl *Plane) GatherTag(tag uint32, mine []byte) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	pl.c.startRouter()
	return pl.gather(tag, mine)
}

func (pl *Plane) gather(tag uint32, mine []byte) error {
	pk := &coll.Packer{Op: coll.OpGather, Tag: tag, ChunkBytes: pl.chunkBytes, Emit: pl.emitUp}
	if err := pk.Add(coll.Entry{Rank: pl.c.rank, Blob: mine}); err != nil {
		return err
	}
	if err := pl.gatherChildren(coll.OpGather, tag, pk.Add); err != nil {
		return err
	}
	return pk.End()
}

// gatherChildren drains each child subtree's entry stream in slot
// order, validating per-link sequencing and the entry sub-count, and
// feeds every entry to sink — the shared up-phase of Gather and
// AllGather.
func (pl *Plane) gatherChildren(op coll.Op, tag uint32, sink func(coll.Entry) error) error {
	for slot, conn := range pl.c.children {
		var in coll.SeqCheck
		var sub uint64
		for {
			f, err := pl.recvTagged(conn, tag)
			if err != nil {
				return err
			}
			if err := pl.checkStream(f, op, tag); err != nil {
				return err
			}
			if err := in.Admit(f.H); err != nil {
				return err
			}
			if f.End {
				if sub != f.Total {
					return fmt.Errorf("%w: child %d forwarded %d %v entries, end marker says %d",
						ErrProtocol, pl.c.childRk[slot], sub, op, f.Total)
				}
				break
			}
			entries, err := coll.DecodeEntries(f.Body)
			if err != nil {
				return err
			}
			sub += uint64(len(entries))
			for _, e := range entries {
				if err := sink(e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Reduce contributes mine to an FE-bound reduction: every node folds its
// children's subtree results into its own contribution with the named
// filter (coll.LookupFilter) and ships one combined stream upward, so
// per-link bytes are bounded by the combined result, not the subtree
// size.
func (pl *Plane) Reduce(mine []byte, filter string) error {
	pl.c.startRouter()
	return pl.reduce(pl.nextTag(), mine, filter)
}

// ReduceTag is Reduce on an explicitly tagged concurrent stream.
func (pl *Plane) ReduceTag(tag uint32, mine []byte, filter string) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	pl.c.startRouter()
	return pl.reduce(tag, mine, filter)
}

func (pl *Plane) reduce(tag uint32, mine []byte, filter string) error {
	acc, err := pl.combineChildren(coll.OpReduce, tag, mine, filter)
	if err != nil {
		return err
	}
	for _, f := range coll.RawFrames(coll.OpReduce, tag, filter, acc, pl.chunkBytes) {
		if err := pl.emitUp(f); err != nil {
			return err
		}
	}
	return nil
}

// combineChildren folds every child subtree's combined stream into this
// node's own contribution with the named filter — the shared up-phase
// of Reduce and AllReduce.
func (pl *Plane) combineChildren(op coll.Op, tag uint32, mine []byte, filter string) ([]byte, error) {
	fn, err := coll.LookupFilter(filter)
	if err != nil {
		return nil, err
	}
	acc, err := fn(nil, mine)
	if err != nil {
		return nil, err
	}
	for slot, conn := range pl.c.children {
		var asm coll.RawAssembler
		for {
			f, err := pl.recvTagged(conn, tag)
			if err != nil {
				return nil, err
			}
			if err := pl.checkStream(f, op, tag); err != nil {
				return nil, err
			}
			if f.H.Filter != filter {
				return nil, fmt.Errorf("%w: child %d reduces with filter %q, this node with %q",
					ErrProtocol, pl.c.childRk[slot], f.H.Filter, filter)
			}
			if f.End {
				blob, err := asm.Finish(f.H, f.Total)
				if err != nil {
					return nil, err
				}
				pl.c.p.Compute(pl.c.cfg.PerMsgCost) // combine charge
				if acc, err = fn(acc, blob); err != nil {
					return nil, err
				}
				break
			}
			if err := asm.Add(f.H, f.Body); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// Barrier blocks until every daemon of the tree has entered it: an
// up-phase of end markers gathers at the root, then a release wave
// flows back down (the DAOS crt_barrier two-phase shape). The FE is not
// involved — the root turns the barrier around. Barrier participates in
// the tree-lockstep sequence shared with AllGather/AllReduce.
func (pl *Plane) Barrier() error {
	pl.c.startRouter()
	return pl.barrier(pl.nextTreeTag())
}

// BarrierTag is Barrier on an explicitly tagged concurrent stream.
func (pl *Plane) BarrierTag(tag uint32) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	pl.c.startRouter()
	return pl.barrier(tag)
}

func (pl *Plane) barrier(tag uint32) error {
	end := coll.Frame{H: coll.Header{Op: coll.OpBarrier, Tag: tag}, End: true, Sum: lmonp.SumInit}
	for _, conn := range pl.c.children {
		f, err := pl.recvTagged(conn, tag)
		if err != nil {
			return err
		}
		if err := pl.checkBarrierFrame(f, tag); err != nil {
			return err
		}
	}
	if pl.c.parent != nil {
		if err := pl.sendFrame(pl.c.parent, end); err != nil {
			return err
		}
		f, err := pl.recvTagged(pl.c.parent, tag)
		if err != nil {
			return err
		}
		if err := pl.checkBarrierFrame(f, tag); err != nil {
			return err
		}
	}
	for _, conn := range pl.c.children {
		if err := pl.sendFrame(conn, end); err != nil {
			return err
		}
	}
	return nil
}

func (pl *Plane) checkBarrierFrame(f coll.Frame, tag uint32) error {
	if err := pl.checkStream(f, coll.OpBarrier, tag); err != nil {
		return err
	}
	if !f.End {
		return fmt.Errorf("%w: rank %d: barrier stream carries a chunk", ErrProtocol, pl.c.rank)
	}
	return nil
}

// AllGather contributes mine and returns every daemon's contribution
// indexed by rank: a gather up-phase into the root, then the assembled
// rank table redistributed down the tree in bounded chunks.
func (pl *Plane) AllGather(mine []byte) ([][]byte, error) {
	pl.c.startRouter()
	return pl.allGather(pl.nextTreeTag(), mine)
}

// AllGatherTag is AllGather on an explicitly tagged concurrent stream.
func (pl *Plane) AllGatherTag(tag uint32, mine []byte) ([][]byte, error) {
	if err := checkUserTag(tag); err != nil {
		return nil, err
	}
	pl.c.startRouter()
	return pl.allGather(tag, mine)
}

func (pl *Plane) allGather(tag uint32, mine []byte) ([][]byte, error) {
	if pl.c.parent == nil {
		// Root: assemble the full rank table from the subtree streams...
		byRank := map[int][]byte{pl.c.rank: append([]byte(nil), mine...)}
		err := pl.gatherChildren(coll.OpAllGather, tag, func(e coll.Entry) error {
			if _, dup := byRank[e.Rank]; dup {
				return fmt.Errorf("%w: rank %d contributed twice to allgather", ErrProtocol, e.Rank)
			}
			byRank[e.Rank] = append([]byte(nil), e.Blob...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(byRank) != pl.c.size {
			return nil, fmt.Errorf("%w: allgather assembled %d of %d contributions",
				ErrProtocol, len(byRank), pl.c.size)
		}
		out := make([][]byte, pl.c.size)
		entries := make([]coll.Entry, pl.c.size)
		for rk := 0; rk < pl.c.size; rk++ {
			out[rk] = byRank[rk]
			entries[rk] = coll.Entry{Rank: rk, Blob: byRank[rk]}
		}
		// ...then redistribute it down every child link in bounded chunks.
		for _, conn := range pl.c.children {
			conn := conn
			pk := &coll.Packer{Op: coll.OpAllGather, Tag: tag, ChunkBytes: pl.chunkBytes,
				Emit: func(f coll.Frame) error { return pl.sendFrame(conn, f) }}
			for _, e := range entries {
				if err := pk.Add(e); err != nil {
					return nil, err
				}
			}
			if err := pk.End(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	// Non-root up-phase: own entry first, then each child subtree,
	// re-coalesced upward (the Gather shape).
	pk := &coll.Packer{Op: coll.OpAllGather, Tag: tag, ChunkBytes: pl.chunkBytes,
		Emit: func(f coll.Frame) error { return pl.sendFrame(pl.c.parent, f) }}
	if err := pk.Add(coll.Entry{Rank: pl.c.rank, Blob: mine}); err != nil {
		return nil, err
	}
	if err := pl.gatherChildren(coll.OpAllGather, tag, pk.Add); err != nil {
		return nil, err
	}
	if err := pk.End(); err != nil {
		return nil, err
	}
	// Down-phase: forward the table stream to the children as it
	// arrives and reassemble it locally (the Broadcast shape).
	var in coll.SeqCheck
	var asm coll.RankAssembler
	for {
		f, err := pl.recvTagged(pl.c.parent, tag)
		if err != nil {
			return nil, err
		}
		if err := pl.checkStream(f, coll.OpAllGather, tag); err != nil {
			return nil, err
		}
		if err := in.Admit(f.H); err != nil {
			return nil, err
		}
		for _, conn := range pl.c.children {
			if err := pl.sendFrame(conn, f); err != nil {
				return nil, err
			}
		}
		if f.End {
			return asm.Finish(f.H, f.Total, pl.c.size)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

// AllReduce contributes mine to a reduction with the named filter and
// returns the combined result on every daemon: the Reduce up-phase
// folds into the root, whose final accumulator is redistributed down
// the tree (down-phase reuse of the up-phase combine).
func (pl *Plane) AllReduce(mine []byte, filter string) ([]byte, error) {
	pl.c.startRouter()
	return pl.allReduce(pl.nextTreeTag(), mine, filter)
}

// AllReduceTag is AllReduce on an explicitly tagged concurrent stream.
func (pl *Plane) AllReduceTag(tag uint32, mine []byte, filter string) ([]byte, error) {
	if err := checkUserTag(tag); err != nil {
		return nil, err
	}
	pl.c.startRouter()
	return pl.allReduce(tag, mine, filter)
}

func (pl *Plane) allReduce(tag uint32, mine []byte, filter string) ([]byte, error) {
	acc, err := pl.combineChildren(coll.OpAllReduce, tag, mine, filter)
	if err != nil {
		return nil, err
	}
	if pl.c.parent == nil {
		for _, conn := range pl.c.children {
			for _, f := range coll.RawFrames(coll.OpAllReduce, tag, filter, acc, pl.chunkBytes) {
				if err := pl.sendFrame(conn, f); err != nil {
					return nil, err
				}
			}
		}
		return acc, nil
	}
	for _, f := range coll.RawFrames(coll.OpAllReduce, tag, filter, acc, pl.chunkBytes) {
		if err := pl.sendFrame(pl.c.parent, f); err != nil {
			return nil, err
		}
	}
	var asm coll.RawAssembler
	for {
		f, err := pl.recvTagged(pl.c.parent, tag)
		if err != nil {
			return nil, err
		}
		if err := pl.checkStream(f, coll.OpAllReduce, tag); err != nil {
			return nil, err
		}
		for _, conn := range pl.c.children {
			if err := pl.sendFrame(conn, f); err != nil {
				return nil, err
			}
		}
		if f.End {
			return asm.Finish(f.H, f.Total)
		}
		if err := asm.Add(f.H, f.Body); err != nil {
			return nil, err
		}
	}
}

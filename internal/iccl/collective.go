package iccl

import (
	"fmt"
	"time"

	"launchmon/internal/cluster"
	"launchmon/internal/coll"
	"launchmon/internal/lmonp"
	"launchmon/internal/simnet"
)

// This file implements the tool-data collective plane over the ICCL
// tree: chunk streams (codec in internal/coll) routed hop by hop, with
// interior daemons forwarding broadcast/scatter/gather traffic and
// combining reduce contributions — instead of the master daemon relaying
// every byte over the flat FE link. The master bridges the tree to the
// front end through injected up/down frame hooks (internal/core wires
// them to the FE's LMONP connection; tests wire them to in-memory
// queues), so the routing logic is identical at every tree node.

// Tree link opcodes of the collective plane.
const (
	opCollChunk = 8 // one collective chunk (header + body)
	opCollEnd   = 9 // stream end (header + uint64 total)
)

// UpFn emits one FE-bound frame from the tree root (gather and reduce
// streams, restamped per link).
type UpFn func(coll.Frame) error

// DownFn yields the next FE-originated frame at the tree root (broadcast
// and scatter streams).
type DownFn func() (coll.Frame, error)

// Plane is one daemon's handle on the session's collective tool-data
// plane. All daemons of a session must invoke the same collective
// operations in the same order (SPMD discipline, like the base ICCL
// collectives); the per-operation tag, advanced in lockstep on every
// participant, catches violations as protocol errors instead of silent
// cross-talk.
type Plane struct {
	c          *Comm
	chunkBytes int
	seq        uint32
	up         UpFn
	down       DownFn
	slotOf     map[int]int // direct child rank → slot (flat roots have K-1 children)
}

// NewPlane attaches a collective plane to the communicator. chunkBytes
// bounds one chunk body per link (<= 0 selects coll.DefaultChunkBytes);
// up and down bridge the root to the front end and must be non-nil at
// the root only.
func (c *Comm) NewPlane(chunkBytes int, up UpFn, down DownFn) *Plane {
	if chunkBytes <= 0 {
		chunkBytes = coll.DefaultChunkBytes
	}
	slotOf := make(map[int]int, len(c.childRk))
	for slot, rk := range c.childRk {
		slotOf[rk] = slot
	}
	return &Plane{c: c, chunkBytes: chunkBytes, up: up, down: down, slotOf: slotOf}
}

// nextTag advances the plane's collective sequence.
func (pl *Plane) nextTag() uint32 {
	pl.seq++
	return pl.seq
}

// writeFrameOp renders f as a tree-link frame under the given chunk/end
// opcode pair and writes it — the single coll.Frame↔link-frame mapping,
// shared by the collective plane and the session-seed stream. Only the
// End frame carries a checksum on the wire: the rolling digest of the
// stream's per-chunk sums. Receivers recompute each chunk's sum from the
// body as it arrives and fold it (coll.SeqCheck), so streaming validation
// covers every chunk at O(chunk) memory without an 8-byte per-frame wire
// tax — on a deep tree those bytes ride every hop of every link.
// It returns the encoded frame size so callers can maintain per-link
// wire-byte metrics.
func writeFrameOp(conn *simnet.Conn, chunkOp, endOp uint32, f coll.Frame) (int, error) {
	var b []byte
	if f.End {
		b = lmonp.AppendUint32(nil, endOp)
		b = lmonp.AppendBytes(b, f.H.Encode())
		b = lmonp.AppendUint64(b, f.Total)
		b = lmonp.AppendUint64(b, f.Sum)
	} else {
		b = lmonp.AppendUint32(nil, chunkOp)
		b = lmonp.AppendBytes(b, f.H.Encode())
		b = lmonp.AppendBytes(b, f.Body)
	}
	if err := lmonp.WriteFrame(conn, b); err != nil {
		return 0, err
	}
	return len(b), nil
}

// readFrameOp reads one frame written by writeFrameOp directly off the
// conn, charging the per-message handling cost. It is only safe before
// ShareLinks (the seed stream flows during bootstrap, well before links
// are shared); afterwards reads must go through Comm.recvRaw.
func readFrameOp(p *cluster.Proc, cost time.Duration, conn *simnet.Conn, chunkOp, endOp uint32) (coll.Frame, error) {
	raw, err := lmonp.ReadFrame(conn)
	if err != nil {
		return coll.Frame{}, err
	}
	p.Compute(cost)
	return parseFrameOp(raw, chunkOp, endOp)
}

// parseFrameOp decodes one raw tree frame produced by writeFrameOp.
func parseFrameOp(raw []byte, chunkOp, endOp uint32) (coll.Frame, error) {
	rd := lmonp.NewReader(raw)
	op, err := rd.Uint32()
	if err != nil {
		return coll.Frame{}, err
	}
	if op != chunkOp && op != endOp {
		return coll.Frame{}, fmt.Errorf("%w: got op %d, want %d or %d", ErrProtocol, op, chunkOp, endOp)
	}
	hraw, err := rd.Bytes()
	if err != nil {
		return coll.Frame{}, err
	}
	h, err := coll.DecodeHeader(lmonp.NewReader(hraw))
	if err != nil {
		return coll.Frame{}, err
	}
	f := coll.Frame{H: h}
	if op == endOp {
		if f.Total, err = rd.Uint64(); err != nil {
			return coll.Frame{}, err
		}
		if f.Sum, err = rd.Uint64(); err != nil {
			return coll.Frame{}, err
		}
		f.End = true
		return f, nil
	}
	if f.Body, err = rd.Bytes(); err != nil {
		return coll.Frame{}, err
	}
	// No on-wire sum for chunks: compute it here so the receiver's rolling
	// digest (checked against the end marker) still covers every chunk it
	// admitted.
	f.Sum = lmonp.Sum64(f.Body)
	return f, nil
}

// sendFrame writes one collective frame to a tree link.
func (pl *Plane) sendFrame(conn *simnet.Conn, f coll.Frame) error {
	n, err := writeFrameOp(conn, opCollChunk, opCollEnd, f)
	if err != nil {
		return err
	}
	pl.c.txFrames.Inc()
	pl.c.txBytes.Add(uint64(n))
	pl.c.collTxFrames.Inc()
	pl.c.collTxBytes.Add(uint64(n))
	return nil
}

// recvFrame reads one collective frame from a tree link (demuxed when
// the link is shared with the health plane).
func (pl *Plane) recvFrame(conn *simnet.Conn) (coll.Frame, error) {
	raw, err := pl.c.recvRaw(conn)
	if err != nil {
		return coll.Frame{}, err
	}
	return parseFrameOp(raw, opCollChunk, opCollEnd)
}

// emitUp ships one FE-bound frame: through the up hook at the root,
// up the parent link elsewhere.
func (pl *Plane) emitUp(f coll.Frame) error {
	if pl.c.parent == nil {
		if pl.up == nil {
			return fmt.Errorf("%w: root plane has no up hook", ErrProtocol)
		}
		return pl.up(f)
	}
	return pl.sendFrame(pl.c.parent, f)
}

// recvDown yields the next FE-originated frame: from the down hook at
// the root, from the parent link elsewhere.
func (pl *Plane) recvDown() (coll.Frame, error) {
	if pl.c.parent == nil {
		if pl.down == nil {
			return coll.Frame{}, fmt.Errorf("%w: root plane has no down hook", ErrProtocol)
		}
		return pl.down()
	}
	return pl.recvFrame(pl.c.parent)
}

// checkStream validates that a frame belongs to the current operation.
func checkStream(f coll.Frame, op coll.Op, tag uint32) error {
	if f.H.Op != op || f.H.Tag != tag {
		return fmt.Errorf("%w: %v frame tag %d during %v tag %d (collective order diverged)",
			ErrProtocol, f.H.Op, f.H.Tag, op, tag)
	}
	return nil
}

// Broadcast receives one FE-originated broadcast, forwarding every chunk
// to the children as it arrives, and returns the reassembled payload.
func (pl *Plane) Broadcast() ([]byte, error) {
	tag := pl.nextTag()
	var asm coll.RawAssembler
	for {
		f, err := pl.recvDown()
		if err != nil {
			return nil, err
		}
		if err := checkStream(f, coll.OpBroadcast, tag); err != nil {
			return nil, err
		}
		for _, conn := range pl.c.children {
			if err := pl.sendFrame(conn, f); err != nil {
				return nil, err
			}
		}
		if f.End {
			return asm.Finish(f.H, f.Total)
		}
		if err := asm.Add(f.H, f.Body); err != nil { // Add copies
			return nil, err
		}
	}
}

// childSlot returns which child slot owns rank r's subtree, or -1 when r
// is outside this node's subtree.
func (pl *Plane) childSlot(r int) int {
	fanout := pl.c.cfg.Fanout
	for r > 0 {
		p := Parent(r, fanout)
		if p == pl.c.rank {
			if slot, ok := pl.slotOf[r]; ok {
				return slot
			}
			return -1
		}
		r = p
	}
	return -1
}

// Scatter receives one FE-originated scatter and returns this rank's
// part. Interior nodes re-bucket the incoming rank-tagged entries by
// child subtree and stream them onward in bounded-size chunks
// (coll.Packer — the shared coalescing implementation).
func (pl *Plane) Scatter() ([]byte, error) {
	tag := pl.nextTag()
	packers := make([]*coll.Packer, len(pl.c.children))
	for slot, conn := range pl.c.children {
		conn := conn
		packers[slot] = &coll.Packer{
			Op: coll.OpScatter, Tag: tag, ChunkBytes: pl.chunkBytes,
			Emit: func(f coll.Frame) error { return pl.sendFrame(conn, f) },
		}
	}
	var mine []byte
	have := false
	var in coll.SeqCheck // validates the incoming chunk index sequence
	for {
		f, err := pl.recvDown()
		if err != nil {
			return nil, err
		}
		if err := checkStream(f, coll.OpScatter, tag); err != nil {
			return nil, err
		}
		if err := in.Admit(f.H); err != nil {
			return nil, err
		}
		if f.End {
			for _, sp := range packers {
				if err := sp.End(); err != nil {
					return nil, err
				}
			}
			break
		}
		entries, err := coll.DecodeEntries(f.Body)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Rank == pl.c.rank {
				if have {
					return nil, fmt.Errorf("%w: duplicate scatter part for rank %d", ErrProtocol, e.Rank)
				}
				mine = append([]byte(nil), e.Blob...)
				have = true
				continue
			}
			slot := pl.childSlot(e.Rank)
			if slot < 0 {
				return nil, fmt.Errorf("%w: scatter part for rank %d outside rank %d's subtree",
					ErrProtocol, e.Rank, pl.c.rank)
			}
			if err := packers[slot].Add(e); err != nil {
				return nil, err
			}
		}
	}
	if !have {
		return nil, fmt.Errorf("%w: no scatter part for rank %d", ErrProtocol, pl.c.rank)
	}
	return mine, nil
}

// Gather contributes mine to an FE-bound gather. Interior nodes stream
// their own entry first, then drain each child subtree's chunks as they
// arrive, re-coalescing the entries into bounded-size frames — so the
// number of messages on any link is bounded by subtree-bytes/chunk, not
// by the subtree's daemon count, and no link ever carries a monolithic
// K-entry payload.
func (pl *Plane) Gather(mine []byte) error {
	tag := pl.nextTag()
	pk := &coll.Packer{Op: coll.OpGather, Tag: tag, ChunkBytes: pl.chunkBytes, Emit: pl.emitUp}
	if err := pk.Add(coll.Entry{Rank: pl.c.rank, Blob: mine}); err != nil {
		return err
	}
	for slot, conn := range pl.c.children {
		var in coll.SeqCheck
		var sub uint64
		for {
			f, err := pl.recvFrame(conn)
			if err != nil {
				return err
			}
			if err := checkStream(f, coll.OpGather, tag); err != nil {
				return err
			}
			if err := in.Admit(f.H); err != nil {
				return err
			}
			if f.End {
				if sub != f.Total {
					return fmt.Errorf("%w: child %d forwarded %d gather entries, end marker says %d",
						ErrProtocol, pl.c.childRk[slot], sub, f.Total)
				}
				break
			}
			entries, err := coll.DecodeEntries(f.Body)
			if err != nil {
				return err
			}
			sub += uint64(len(entries))
			for _, e := range entries {
				if err := pk.Add(e); err != nil {
					return err
				}
			}
		}
	}
	return pk.End()
}

// Reduce contributes mine to an FE-bound reduction: every node folds its
// children's subtree results into its own contribution with the named
// filter (coll.LookupFilter) and ships one combined stream upward, so
// per-link bytes are bounded by the combined result, not the subtree
// size.
func (pl *Plane) Reduce(mine []byte, filter string) error {
	tag := pl.nextTag()
	fn, err := coll.LookupFilter(filter)
	if err != nil {
		return err
	}
	acc, err := fn(nil, mine)
	if err != nil {
		return err
	}
	for slot, conn := range pl.c.children {
		var asm coll.RawAssembler
		for {
			f, err := pl.recvFrame(conn)
			if err != nil {
				return err
			}
			if err := checkStream(f, coll.OpReduce, tag); err != nil {
				return err
			}
			if f.H.Filter != filter {
				return fmt.Errorf("%w: child %d reduces with filter %q, this node with %q",
					ErrProtocol, pl.c.childRk[slot], f.H.Filter, filter)
			}
			if f.End {
				blob, err := asm.Finish(f.H, f.Total)
				if err != nil {
					return err
				}
				pl.c.p.Compute(pl.c.cfg.PerMsgCost) // combine charge
				if acc, err = fn(acc, blob); err != nil {
					return err
				}
				break
			}
			if err := asm.Add(f.H, f.Body); err != nil {
				return err
			}
		}
	}
	for _, f := range coll.RawFrames(coll.OpReduce, tag, filter, acc, pl.chunkBytes) {
		if err := pl.emitUp(f); err != nil {
			return err
		}
	}
	return nil
}
